// Command sqe-inspect prints per-query diagnostics for the reproduction
// environment: the query, its entities (manual and automatically
// linked), the motif expansion features, the ground-truth features and
// the top results of each configuration with relevance marks.
//
// Usage:
//
//	sqe-inspect [-scale small|default] [-dataset imageclef|chic2012|chic2013] [-n 3] [-top 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/search"
)

// indent prefixes every line for nested display.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-inspect: ")
	scaleFlag := flag.String("scale", "default", "small|default")
	dsFlag := flag.String("dataset", "imageclef", "imageclef|chic2012|chic2013")
	nFlag := flag.Int("n", 3, "number of queries to inspect")
	topFlag := flag.Int("top", 10, "results to show per run")
	explainFlag := flag.Bool("explain", false, "print per-leaf score explanations for the top result of SQE_T&S")
	dotFlag := flag.String("dot", "", "write each inspected query's T&S query graph to <dir>/<queryID>.dot (Graphviz; reproduces the paper's Figure 4 drawings)")
	flag.Parse()

	scale := dataset.ScaleDefault
	if *scaleFlag == "small" {
		scale = dataset.ScaleSmall
	}
	suite, err := experiments.NewSuite(scale)
	if err != nil {
		log.Fatal(err)
	}
	var inst *dataset.Instance
	switch *dsFlag {
	case "imageclef":
		inst = suite.ImageCLEF
	case "chic2012":
		inst = suite.CHiC2012
	case "chic2013":
		inst = suite.CHiC2013
	default:
		log.Fatalf("unknown -dataset %q", *dsFlag)
	}
	r := suite.NewRunner(inst)
	g := suite.World.Graph

	titles := func(ids []kb.NodeID) string {
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprintf("%q", g.Title(id))
		}
		return strings.Join(parts, ", ")
	}
	showRun := func(q *dataset.Query, name string, node search.Node) {
		res := r.Searcher.Search(node, *topFlag)
		rel := inst.Qrels[q.ID]
		marks := make([]string, len(res))
		hits := 0
		for i, d := range res {
			if rel[d.Name] {
				marks[i] = "R"
				hits++
			} else {
				marks[i] = "."
			}
		}
		fmt.Printf("  %-8s top%d=[%s] (%d rel)\n", name, *topFlag, strings.Join(marks, ""), hits)
	}

	for qi := 0; qi < *nFlag && qi < len(inst.Queries); qi++ {
		q := &inst.Queries[qi]
		fmt.Printf("%s: %q  topic=%d rel=%d mentionP=%.2f aliasP=%.2f\n",
			q.ID, q.Text, q.Topic, q.NumRelevant, q.TitleMentionProb, q.AliasDocProb)
		fmt.Printf("  entities (M): %s\n", titles(q.Entities))
		fmt.Printf("  entities (A): %s\n", titles(r.Linker.LinkArticles(q.Text)))
		for _, set := range []motif.Set{motif.SetT, motif.SetTS, motif.SetS} {
			qg := r.Expander.BuildQueryGraph(q.Entities, set)
			fmt.Printf("  motifs %-4s: %d features: %s\n", set, len(qg.Features), r.Expander.DescribeGraph(qg, 8))
		}
		gt := inst.GroundTruth[q.ID]
		fmt.Printf("  ground truth (%d): ", len(gt))
		for i, f := range gt {
			if i >= 8 {
				fmt.Printf(" …")
				break
			}
			fmt.Printf(" %q(%.0f)", g.Title(f.Article), f.Weight)
		}
		fmt.Println()
		showRun(q, "QL_Q", r.Expander.QLQuery(q.Text))
		showRun(q, "QL_E", r.Expander.QLEntities(q.Entities))
		showRun(q, "QL_Q&E", r.Expander.QLQueryEntities(q.Text, q.Entities))
		qgT := r.Expander.BuildQueryGraph(q.Entities, motif.SetT)
		showRun(q, "SQE_T", r.Expander.BuildQuery(q.Text, qgT))
		qgTS := r.Expander.BuildQueryGraph(q.Entities, motif.SetTS)
		showRun(q, "SQE_T&S", r.Expander.BuildQuery(q.Text, qgTS))
		ub := core.GroundTruthGraph(q.Entities, gt)
		showRun(q, "SQE_UB", r.Expander.BuildQuery(q.Text, ub))
		if *explainFlag {
			node := r.Expander.BuildQuery(q.Text, qgTS)
			if top := r.Searcher.Search(node, 1); len(top) > 0 {
				fmt.Printf("  explanation of SQE_T&S top result:\n%s", indent(r.Searcher.Explain(node, top[0].Doc).String()))
			}
		}
		if *dotFlag != "" {
			if err := os.MkdirAll(*dotFlag, 0o755); err != nil {
				log.Fatal(err)
			}
			// Induce the query graph plus the categories that justify
			// the motifs — the node set the paper draws in Figure 4.
			nodes := append([]kb.NodeID{}, q.Entities...)
			nodes = append(nodes, qgTS.ExpansionArticles()...)
			allowed := motif.InducedNodes(g, q.Entities[0], qgTS.ExpansionArticles())
			for n := range allowed {
				nodes = append(nodes, n)
			}
			path := filepath.Join(*dotFlag, q.ID+".dot")
			df, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := kb.WriteDOT(df, g, nodes, q.Entities); err != nil {
				log.Fatal(err)
			}
			if err := df.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
		fmt.Println()
	}
}

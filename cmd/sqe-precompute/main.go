// Command sqe-precompute builds the offline expansion store served by
// sqe-serve's -precomputed flag (DESIGN.md §5h): it enumerates entity
// sets, runs motif expansion once for each (entity set, motif set)
// pair, and writes the resulting query graphs to a checksummed binary
// store keyed by the complete expansion configuration. A server with
// the store attached answers those expansions with a hash lookup —
// byte-identical to live motif search — and falls through to a live
// build for anything else.
//
// Usage:
//
//	sqe-precompute -out expansions.store [-scale small|default | -kb kb.graph]
//	               [-querylog queries.tsv] [-force] [-selfcheck]
//
// The KB comes from either -kb (a binary graph written by sqe-gen) or
// -scale (the deterministic demo generator — the same KB sqe-serve
// boots, so the store's content hash matches a demo server's graph).
//
// Enumerated entity sets: every article in the KB as a singleton, the
// demo benchmark queries' manual entity sets (in -scale mode), and the
// entity sets observed in -querylog — a TSV whose last tab-separated
// field is the |-joined entity titles, exactly the queries.tsv format
// sqe-gen emits. Log lines naming unknown titles are skipped with a
// warning count, not fatal: a query log routinely outlives KB edits.
//
// Incremental rebuild: when -out already holds a store whose recorded
// KB content hash matches the current graph, the build is skipped
// ("up to date") unless -force is given. The store format is
// deterministic, so rebuilding identical content produces identical
// bytes anyway; the hash check just saves the expansion work.
//
// -selfcheck reopens the written store and replays every enumerated
// (entity set, motif set) pair against a fresh live expansion,
// demanding byte-identical graphs — the same parity invariant the
// serving smoke (`make precompute-smoke`) enforces end to end.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"strings"

	sqe "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/motif"
)

// storeSets are the motif configurations precomputed per entity set:
// SQE_C's three runs, which also cover every explicit single-set
// request the serving API accepts.
var storeSets = []motif.Set{motif.SetT, motif.SetTS, motif.SetS}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-precompute: ")
	outFlag := flag.String("out", "", "output store path (required)")
	kbFlag := flag.String("kb", "", "binary KB graph (written by sqe-gen); mutually exclusive with -scale")
	scaleFlag := flag.String("scale", "small", "demo KB scale: small|default (ignored when -kb is given)")
	querylog := flag.String("querylog", "", "TSV query log; last tab-separated field is |-joined entity titles")
	force := flag.Bool("force", false, "rebuild even when the existing store's KB hash matches")
	selfcheck := flag.Bool("selfcheck", false, "reopen the written store and verify every entry against live expansion")
	flag.Parse()
	if *outFlag == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, entitySets, err := loadKB(*kbFlag, *scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	hash := g.ContentHash()
	log.Printf("KB: %d articles, content hash %016x", g.NumArticles(), hash)

	if !*force {
		if prev, err := core.OpenStoreFile(*outFlag); err == nil {
			if prev.KBHash() == hash {
				log.Printf("%s is up to date (%d entries, matching KB hash); use -force to rebuild", *outFlag, prev.Len())
				return
			}
			log.Printf("existing store has stale KB hash %016x; rebuilding", prev.KBHash())
		}
	}

	// Every article as a singleton entity set: expansion depends only on
	// the KB, so the whole per-entity expansion table is enumerable.
	g.Articles(func(id kb.NodeID) bool {
		entitySets = append(entitySets, []kb.NodeID{id})
		return true
	})
	if *querylog != "" {
		logSets, skipped, err := readQueryLog(*querylog, g)
		if err != nil {
			log.Fatal(err)
		}
		if skipped > 0 {
			log.Printf("query log: skipped %d lines with unknown entity titles", skipped)
		}
		log.Printf("query log: %d entity sets", len(logSets))
		entitySets = append(entitySets, logSets...)
	}

	expander := core.NewExpander(g, analysis.Standard())
	entries := core.PrecomputeEntries(expander, entitySets, storeSets)
	if err := core.WriteStoreFile(*outFlag, hash, entries); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*outFlag)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: %d entries (%d entity sets × %d motif sets, deduplicated), %d bytes",
		*outFlag, len(entries), len(entitySets), len(storeSets), info.Size())

	if *selfcheck {
		if err := runSelfcheck(*outFlag, hash, expander, entitySets); err != nil {
			log.Fatalf("SELFCHECK FAIL: %v", err)
		}
		log.Println("SELFCHECK OK")
	}
}

// loadKB returns the graph plus any entity sets that come with it (the
// demo benchmark queries' manual entities, in -scale mode).
func loadKB(kbPath, scale string) (*kb.Graph, [][]kb.NodeID, error) {
	if kbPath != "" {
		f, err := os.Open(kbPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		g, err := kb.Decode(f)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", kbPath, err)
		}
		return g, nil, nil
	}
	demoScale := sqe.DemoSmall
	switch scale {
	case "small":
	case "default":
		demoScale = sqe.DemoDefault
	default:
		return nil, nil, fmt.Errorf("unknown scale %q (want small or default)", scale)
	}
	log.Println("generating demo environment …")
	env, err := sqe.GenerateDemo(demoScale)
	if err != nil {
		return nil, nil, err
	}
	g := env.Engine.Graph()
	var sets [][]kb.NodeID
	for i := range env.Queries {
		if nodes, ok := resolveTitles(g, env.Queries[i].EntityTitles); ok {
			sets = append(sets, nodes)
		}
	}
	return g, sets, nil
}

// readQueryLog extracts the entity sets observed in a TSV query log:
// one query per line, entity titles |-joined in the last tab-separated
// field (sqe-gen's queries.tsv layout). Lines with no titles or with
// titles the KB does not know are skipped, not fatal.
func readQueryLog(path string, g *kb.Graph) (sets [][]kb.NodeID, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		titles := strings.Split(fields[len(fields)-1], "|")
		nodes, ok := resolveTitles(g, titles)
		if !ok {
			skipped++
			continue
		}
		if len(nodes) > 0 {
			sets = append(sets, nodes)
		}
	}
	return sets, skipped, sc.Err()
}

// resolveTitles maps titles to article nodes; ok is false when any
// title is unknown or not an article (blank titles are ignored).
func resolveTitles(g *kb.Graph, titles []string) ([]kb.NodeID, bool) {
	nodes := make([]kb.NodeID, 0, len(titles))
	for _, t := range titles {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		id := g.ByTitle(t)
		if id == kb.Invalid || g.Kind(id) != kb.KindArticle {
			return nil, false
		}
		nodes = append(nodes, id)
	}
	return nodes, true
}

// runSelfcheck reopens the store and replays every enumerated pair
// against a fresh live expansion, comparing byte for byte.
func runSelfcheck(path string, wantHash uint64, e *core.Expander, entitySets [][]kb.NodeID) error {
	st, err := core.OpenStoreFile(path)
	if err != nil {
		return err
	}
	if st.KBHash() != wantHash {
		return fmt.Errorf("store KB hash %016x, want %016x", st.KBHash(), wantHash)
	}
	checked := 0
	for _, nodes := range entitySets {
		for _, set := range storeSets {
			live := e.BuildQueryGraph(nodes, set)
			stored := e.BuildQueryGraphStored(nodes, set, nil, st)
			if !reflect.DeepEqual(live, stored) {
				return fmt.Errorf("entity set %v, motif set %v: stored expansion differs from live", nodes, set)
			}
			checked++
		}
	}
	if stats := st.Stats(); stats.Misses > 0 {
		return fmt.Errorf("%d lookups missed a store that should cover every enumerated pair", stats.Misses)
	}
	log.Printf("  verified %d (entity set, motif set) pairs byte-identical to live expansion", checked)
	return nil
}

// Command sqe-eval evaluates TREC-format run files against TREC-format
// qrels, trec_eval-style: precision at the standard tops, MAP, MRR,
// nDCG@10, R-precision and recall, plus a paired significance test
// between two runs.
//
// Usage:
//
//	sqe-eval -qrels file.qrels run1.run [run2.run ...]
//	sqe-eval -qrels file.qrels -compare base.run treatment.run
//
// Files in these formats round-trip with `sqe-bench -trec <dir>`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-eval: ")
	qrelsFlag := flag.String("qrels", "", "TREC qrels file (required)")
	compareFlag := flag.Bool("compare", false, "treat the two runs as base and treatment; print paired t-test")
	flag.Parse()
	if *qrelsFlag == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	qf, err := os.Open(*qrelsFlag)
	if err != nil {
		log.Fatal(err)
	}
	qrels, err := eval.ReadQrelsTREC(qf)
	qf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qrels: %d queries, %.1f relevant/query\n\n", len(qrels), qrels.AvgRelevant())

	loadRun := func(path string) eval.Run {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		run, err := eval.ReadRunTREC(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		return run
	}

	if *compareFlag {
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two run files (base, treatment)")
		}
		base := loadRun(flag.Arg(0))
		treat := loadRun(flag.Arg(1))
		printSummary(filepath.Base(flag.Arg(0)), qrels, base)
		printSummary(filepath.Base(flag.Arg(1)), qrels, treat)
		fmt.Println("paired two-tailed t-test, treatment vs base:")
		for _, k := range []int{5, 10, 30, 100} {
			a := eval.PerQuery(qrels, treat, k)
			b := eval.PerQuery(qrels, base, k)
			tstat, p := eval.PairedTTest(a, b)
			marker := ""
			if tstat > 0 && p < 0.05 {
				marker = " †"
			}
			fmt.Printf("  P@%-4d Δ=%+.4f  t=%+.3f  p=%.4f%s\n",
				k, eval.Mean(a)-eval.Mean(b), tstat, p, marker)
		}
		fmt.Printf("robustness index at P@10: %+.2f\n", eval.RobustnessIndex(qrels, treat, base, 10))
		return
	}

	for _, path := range flag.Args() {
		printSummary(filepath.Base(path), qrels, loadRun(path))
	}
}

func printSummary(name string, qrels eval.Qrels, run eval.Run) {
	s := eval.Summarize(name, qrels, run)
	fmt.Printf("%s:\n", name)
	fmt.Printf("  MAP %.4f  MRR %.4f  nDCG@10 %.4f  Rprec %.4f\n", s.MAP, s.MRR, s.NDCG10, s.RPrec)
	fmt.Printf("  P@k   ")
	for _, k := range eval.Tops {
		fmt.Printf(" %d:%.3f", k, s.P[k])
	}
	fmt.Println()
	fmt.Printf("  R@k   ")
	for _, k := range eval.Tops {
		fmt.Printf(" %d:%.3f", k, s.Recall[k])
	}
	fmt.Println()
	fmt.Println()
}

// Command sqe-search is an interactive retrieval shell over the demo
// environment, built entirely on the public sqe API. Type a query to see
// the automatic entity links, the motif expansion and the top results of
// the baseline vs. the SQE_C pipeline; prefix a query with "q:" followed
// by a benchmark query ID (e.g. "q:IC-07") to run a benchmark query with
// relevance marks.
//
// Usage:
//
//	sqe-search [-scale small|default] [-top 10]
//
// Commands inside the shell:
//
//	<free text>       search with automatic entity linking
//	q:<query-id>      run a benchmark query (shows R/. relevance marks)
//	queries           list the benchmark queries
//	stats             toggle per-stage timings after each search
//	quit              exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	sqe "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-search: ")
	scaleFlag := flag.String("scale", "small", "small|default")
	topFlag := flag.Int("top", 10, "results to display")
	flag.Parse()

	scale := sqe.DemoSmall
	if *scaleFlag == "default" {
		scale = sqe.DemoDefault
	}
	fmt.Println("generating demo environment …")
	env, err := sqe.GenerateDemo(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ready: %s, %d benchmark queries. Type 'queries' to list them, 'quit' to exit.\n",
		env.DatasetName, len(env.Queries))

	showStats := false
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sqe> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "quit" || line == "exit":
			return
		case line == "stats":
			showStats = !showStats
			fmt.Printf("stage timings %s\n", map[bool]string{true: "on", false: "off"}[showStats])
		case line == "queries":
			for _, q := range env.Queries {
				fmt.Printf("  %s  %q  entities=%v  (%d relevant)\n", q.ID, q.Text, q.EntityTitles, len(q.Relevant))
			}
		case strings.HasPrefix(line, "q:"):
			runBenchmark(env, strings.TrimPrefix(line, "q:"), *topFlag, showStats)
		default:
			runFreeText(env, line, *topFlag, showStats)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func runFreeText(env *sqe.DemoEnv, text string, top int, showStats bool) {
	// One Do call runs the SQE_C pipeline and returns the combined
	// (T&S) run's expansion alongside the results.
	resp, err := env.Engine.Do(context.Background(), sqe.SearchRequest{
		Query: text, K: top, CollectStats: showStats,
	})
	if err != nil {
		fmt.Println("search:", err)
		return
	}
	if exp := resp.Expansion; exp != nil {
		fmt.Printf("entities: %v\n", exp.QueryNodeTitles)
		fmt.Printf("expansion features (%d):", len(exp.Features))
		for i, f := range exp.Features {
			if i == 8 {
				fmt.Print(" …")
				break
			}
			fmt.Printf(" %q(%.0f)", f.Title, f.Weight)
		}
		fmt.Println()
	}
	for i, r := range resp.Results {
		fmt.Printf("  %2d. %-12s %.4f\n", i+1, r.Name, r.Score)
	}
	if resp.Stats != nil {
		fmt.Println(resp.Stats)
	}
}

func runBenchmark(env *sqe.DemoEnv, id string, top int, showStats bool) {
	var q *sqe.DemoQuery
	for i := range env.Queries {
		if env.Queries[i].ID == id {
			q = &env.Queries[i]
			break
		}
	}
	if q == nil {
		fmt.Printf("unknown query id %q\n", id)
		return
	}
	fmt.Printf("%s: %q entities=%v\n", q.ID, q.Text, q.EntityTitles)
	ctx := context.Background()
	baseResp, err := env.Engine.Do(ctx, sqe.SearchRequest{Query: q.Text, K: top, Baseline: true})
	if err != nil {
		fmt.Println("baseline:", err)
		return
	}
	sqeResp, err := env.Engine.Do(ctx, sqe.SearchRequest{
		Query: q.Text, EntityTitles: q.EntityTitles, K: top, CollectStats: showStats,
	})
	if err != nil {
		fmt.Println("search:", err)
		return
	}
	show := func(name string, rs []sqe.Result) {
		marks := make([]byte, 0, len(rs))
		for _, r := range rs {
			if q.Relevant[r.Name] {
				marks = append(marks, 'R')
			} else {
				marks = append(marks, '.')
			}
		}
		fmt.Printf("  %-8s P@%d=%.2f [%s]\n", name, top, sqe.PrecisionAt(rs, q.Relevant, top), marks)
	}
	show("QL_Q", baseResp.Results)
	show("SQE_C", sqeResp.Results)
	if sqeResp.Stats != nil {
		fmt.Println(sqeResp.Stats)
	}
}

// Command kb-stats prints the structural statistics of a knowledge-base
// graph in the format of the paper's Section 3 ("9,483,031 articles and
// 99,675,360 links among articles, …"), plus motif-relevant numbers: the
// reciprocal-pair pool and the per-motif match counts from the query
// entities of the generated benchmark.
//
// With -save, the generated graph is also written to disk in the binary
// graph format (and -load reads one back instead of generating).
//
// Usage:
//
//	kb-stats [-scale small|default] [-save path] [-load path]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/wikigen"
	"repro/internal/wikixml"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kb-stats: ")
	scaleFlag := flag.String("scale", "default", "small|default")
	saveFlag := flag.String("save", "", "write the graph to this file")
	loadFlag := flag.String("load", "", "read a graph from this file instead of generating")
	wikiFlag := flag.String("wikixml", "", "import a MediaWiki XML export instead of generating")
	maxPagesFlag := flag.Int("maxpages", 0, "with -wikixml: stop after this many pages (0 = all)")
	analyzeFlag := flag.Bool("analyze", false, "print the full structural profile (degrees, components)")
	flag.Parse()

	var g *kb.Graph
	var world *wikigen.World
	switch {
	case *wikiFlag != "":
		f, err := os.Open(*wikiFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		res, err := wikixml.Parse(f, wikixml.Options{MaxPages: *maxPagesFlag})
		if err != nil {
			log.Fatal(err)
		}
		g = res.Graph
		fmt.Printf("imported %s: %d pages read, %d redirects, %d skipped namespaces, %d red links, %d anchor surfaces\n",
			*wikiFlag, res.Stats.PagesRead, res.Stats.Redirects, res.Stats.SkippedNS, res.Stats.LinksRed, res.Stats.AnchorSurfaces)
	case *loadFlag != "":
		f, err := os.Open(*loadFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err = kb.Decode(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s\n", *loadFlag)
	default:
		cfg := wikigen.DefaultConfig()
		if *scaleFlag == "small" {
			cfg = wikigen.SmallConfig()
		}
		var err error
		world, err = wikigen.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		g = world.Graph
	}

	if *analyzeFlag {
		fmt.Print(kb.Analyze(g))
	} else {
		fmt.Println("graph:", kb.ComputeStats(g))
	}

	if world != nil {
		// Motif footprint from every topic entity, mirroring the paper's
		// "expansion features per query" numbers.
		m := motif.NewMatcher(g)
		var sums [3]float64
		sets := []motif.Set{motif.SetT, motif.SetTS, motif.SetS}
		for _, t := range world.Topics {
			for i, set := range sets {
				sums[i] += float64(len(m.Expand([]kb.NodeID{t.Entity()}, set)))
			}
		}
		n := float64(len(world.Topics))
		fmt.Printf("avg expansion features per entity: T=%.2f T&S=%.2f S=%.2f\n",
			sums[0]/n, sums[1]/n, sums[2]/n)
	}

	if *saveFlag != "" {
		f, err := os.Create(*saveFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := kb.Encode(f, g); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, err := os.Stat(*saveFlag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %s (%d bytes)\n", *saveFlag, info.Size())
	}
}

// Command sqe-gen materialises the synthetic benchmark to disk so
// external retrieval systems (a real Indri, Terrier, Anserini, …) can
// run the same experiments: the corpus as JSON lines, the query sets as
// TSV, the relevance judgments as TREC qrels, and the KB graph in the
// binary graph format.
//
// Usage:
//
//	sqe-gen -out dir [-scale small|default] [-collection imageclef|chic|all]
//
// Layout under -out:
//
//	imageclef.docs.jsonl      {"name": "...", "text": "..."} per line
//	imageclef.queries.tsv     id <tab> text <tab> entity titles (|-joined)
//	imageclef.qrels            TREC qrels
//	chic.docs.jsonl, chic2012.queries.tsv, chic2012.qrels, chic2013.…
//	kb.graph                   binary KB graph (kb.Decode reads it)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/wikigen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-gen: ")
	outFlag := flag.String("out", "", "output directory (required)")
	scaleFlag := flag.String("scale", "default", "small|default")
	collFlag := flag.String("collection", "all", "imageclef|chic|all")
	flag.Parse()
	if *outFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		log.Fatal(err)
	}
	scale := dataset.ScaleDefault
	cfg := wikigen.DefaultConfig()
	if *scaleFlag == "small" {
		scale = dataset.ScaleSmall
		cfg = wikigen.SmallConfig()
	}
	world, err := wikigen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *collFlag == "imageclef" || *collFlag == "all" {
		export(world, dataset.ImageCLEFProfile(scale), *outFlag, "imageclef")
	}
	if *collFlag == "chic" || *collFlag == "all" {
		export(world, dataset.CHiCProfile(scale), *outFlag, "chic")
	}

	graphPath := filepath.Join(*outFlag, "kb.graph")
	f, err := os.Create(graphPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := kb.Encode(f, world.Graph); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", graphPath)
}

// export writes one collection: corpus JSONL plus per-query-set queries
// and qrels.
func export(world *wikigen.World, p dataset.CollectionProfile, dir, base string) {
	docsPath := filepath.Join(dir, base+".docs.jsonl")
	df, err := os.Create(docsPath)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriter(df)
	enc := json.NewEncoder(bw)
	type docLine struct {
		Name string `json:"name"`
		Text string `json:"text"`
	}
	docs := 0
	instances, err := dataset.BuildWithSink(world, p, func(name, text string) {
		docs++
		if err := enc.Encode(docLine{Name: name, Text: text}); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := df.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d docs)\n", docsPath, docs)

	for _, inst := range instances {
		tag := strings.ToLower(strings.ReplaceAll(inst.Name, " ", ""))
		qPath := filepath.Join(dir, tag+".queries.tsv")
		qf, err := os.Create(qPath)
		if err != nil {
			log.Fatal(err)
		}
		qw := bufio.NewWriter(qf)
		for _, q := range inst.Queries {
			titles := make([]string, len(q.Entities))
			for i, e := range q.Entities {
				titles[i] = world.Graph.Title(e)
			}
			fmt.Fprintf(qw, "%s\t%s\t%s\n", q.ID, q.Text, strings.Join(titles, "|"))
		}
		if err := qw.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := qf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d queries)\n", qPath, len(inst.Queries))

		rPath := filepath.Join(dir, tag+".qrels")
		rf, err := os.Create(rPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := eval.WriteQrelsTREC(rf, inst.Qrels); err != nil {
			log.Fatal(err)
		}
		if err := rf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", rPath)
	}
}

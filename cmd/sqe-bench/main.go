// Command sqe-bench regenerates every table and figure of the paper's
// evaluation section against the synthetic reproduction environment.
//
// Usage:
//
//	sqe-bench [-scale small|default] [-exp all|fig2|tab1|fig5|tab2|fig6|tab3|tab4|stages|shards|pruning|expansion|blockmax|hotpath]
//	          [-shards 1,2,4,8] [-shards-json BENCH_shards.json]
//	          [-pruning-json BENCH_pruning.json]
//	          [-expansion-json BENCH_expansion.json]
//	          [-blockmax-json BENCH_blockmax.json]
//	          [-hotpath-json BENCH_hotpath.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-bench: ")
	scaleFlag := flag.String("scale", "default", "environment scale: small|default")
	expFlag := flag.String("exp", "all", "experiment: all or substring list of fig2,tab1,fig5,tab2,fig6,tab3,tab4,stages,ablation,mining,summary,shards,pruning,expansion,blockmax,hotpath")
	trecFlag := flag.String("trec", "", "directory to export TREC qrels/run files into")
	shardsFlag := flag.String("shards", "1,2,4,8", "comma-separated shard counts for -exp shards")
	shardsJSON := flag.String("shards-json", "", "file to write the shard bench result to as JSON")
	pruningJSON := flag.String("pruning-json", "", "file to write the pruning bench result to as JSON")
	expansionJSON := flag.String("expansion-json", "", "file to write the expansion bench result to as JSON")
	blockmaxJSON := flag.String("blockmax-json", "", "file to write the block-max bench result to as JSON")
	hotpathJSON := flag.String("hotpath-json", "", "file to write the hot-path bench result to as JSON")
	flag.Parse()

	scale := dataset.ScaleDefault
	switch *scaleFlag {
	case "default":
	case "small":
		scale = dataset.ScaleSmall
	default:
		log.Fatalf("unknown -scale %q", *scaleFlag)
	}

	start := time.Now()
	suite, err := experiments.NewSuite(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("environment: %s\n", suite.World.Describe())
	for _, inst := range suite.Instances() {
		fmt.Printf("dataset %-12s: %s; %d queries, avg %.1f relevant/query\n",
			inst.Name, inst.Index, len(inst.Queries), inst.Qrels.AvgRelevant())
	}
	fmt.Printf("generated in %v\n\n", time.Since(start).Round(time.Millisecond))

	want := func(name string) bool { return *expFlag == "all" || strings.Contains(*expFlag, name) }

	var t1 *experiments.Table1Result
	if want("tab1") || want("fig5") {
		t1 = experiments.Table1(suite)
	}
	if want("fig2") {
		fmt.Println(experiments.Figure2(suite))
	}
	if want("tab1") {
		fmt.Println(t1.Table.String())
		fmt.Printf("SQE vs upper bound: worst %.2f%%, average %.2f%%\n\n", t1.UBRatioWorst*100, t1.UBRatioAvg*100)
	}
	if want("fig5") {
		fmt.Println(experiments.Figure5(t1))
	}
	var t2s []*experiments.Table2Result
	if want("tab2") || want("fig6") || want("tab3") {
		for _, inst := range suite.Instances() {
			t2s = append(t2s, experiments.Table2(suite, inst))
		}
	}
	if want("tab2") {
		for _, t2 := range t2s {
			fmt.Println(t2.Table.String())
		}
	}
	if want("fig6") {
		for _, t2 := range t2s {
			fmt.Println(experiments.Figure6(t2))
		}
	}
	if want("tab3") {
		for i, inst := range suite.Instances() {
			fmt.Println(experiments.Table3(suite, inst, t2s[i]).Table.String())
		}
	}
	if want("tab4") {
		fmt.Println(experiments.Table4(suite))
	}
	if want("stages") {
		// Per-stage cost attribution of the SQE_C workload (see README
		// "Reading the stage timings").
		for _, inst := range suite.Instances() {
			fmt.Println(experiments.StageProfile(suite, inst))
		}
	}
	if want("models") {
		fmt.Println(experiments.ModelComparison(suite, suite.ImageCLEF))
	}
	if want("ablation") {
		fmt.Println(experiments.Ablations(suite, suite.ImageCLEF).Table.String())
		fmt.Println(experiments.MuSweep(suite, suite.ImageCLEF, []float64{100, 500, 1000, 2500, 5000}))
	}
	if want("mining") {
		cross, err := experiments.CrossKBMining(suite, scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cross)
	}
	if want("summary") {
		for _, inst := range suite.Instances() {
			fmt.Println(experiments.SummaryMetrics(suite, inst))
		}
		if len(t2s) > 0 {
			fmt.Println(experiments.SigMatrix(t2s[0], 10))
		}
	}
	if want("shards") {
		var counts []int
		for _, f := range strings.Split(*shardsFlag, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil {
				log.Fatalf("bad -shards %q", *shardsFlag)
			}
			counts = append(counts, n)
		}
		sb := experiments.ShardBench(suite, suite.ImageCLEF, counts, 10, 3)
		fmt.Println(sb)
		if *shardsJSON != "" {
			data, err := sb.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*shardsJSON, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *shardsJSON)
		}
	}
	if want("pruning") {
		// MaxScore pruning effectiveness on the expanded-query workload
		// (single-core honest numbers; see README "Dynamic pruning").
		pr := experiments.PruningBench(suite, suite.ImageCLEF, 10, 3)
		fmt.Println(pr)
		if *pruningJSON != "" {
			data, err := pr.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*pruningJSON, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *pruningJSON)
		}
	}
	if want("expansion") {
		// Cold vs warm-LRU vs precomputed-store expansion latency (see
		// README "Precomputed expansions").
		eb := experiments.ExpansionBench(suite, suite.ImageCLEF, 3)
		fmt.Println(eb)
		if *expansionJSON != "" {
			data, err := eb.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*expansionJSON, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *expansionJSON)
		}
	}
	if want("blockmax") {
		// Block-Max MaxScore vs exhaustive DAAT over an mmap'd FormatV2
		// file, on the suite's largest corpus — block skipping is a
		// long-postings-list mechanism (see README "Block-Max pruning").
		bm, err := experiments.BlockMaxBench(suite, experiments.DefaultBlockMaxInstance(suite), 10, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bm)
		if *blockmaxJSON != "" {
			data, err := bm.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*blockmaxJSON, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *blockmaxJSON)
		}
	}
	if want("hotpath") {
		// Streaming per-block cursors + pooled evaluation scratch vs the
		// eager whole-term hot path, on CHiC 2012 (see README "Streaming
		// hot path").
		hp, err := experiments.HotpathBench(suite, experiments.DefaultHotpathInstance(suite), 10, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(hp)
		if *hotpathJSON != "" {
			data, err := hp.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*hotpathJSON, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *hotpathJSON)
		}
	}
	if *trecFlag != "" {
		if err := os.MkdirAll(*trecFlag, 0o755); err != nil {
			log.Fatal(err)
		}
		files, err := experiments.ExportTREC(suite, *trecFlag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d TREC files to %s\n", len(files), *trecFlag)
	}
	fmt.Fprintf(os.Stderr, "total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"time"

	sqe "repro"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/rpc"
	"repro/internal/search"
	"repro/internal/serve"
)

// runShardServer is -mode shard: it obtains the corpus index — from an
// on-disk file via index.Open when indexPath is set (mmap'd, lazily
// decoded for v2), by regenerating the (deterministic) demo corpus
// otherwise — carves out slice i of an N-way round-robin partition (the
// same partition function the coordinator's parity baseline uses) and
// serves it over the RPC protocol until SIGINT/SIGTERM. The bound
// address is printed to stdout as "LISTEN <addr>" so a supervisor (or
// the distributed smoke) can pass :0 and discover the port.
func runShardServer(scale sqe.DemoScale, spec, addr, indexPath string) error {
	shard, numShards, err := parseShardSpec(spec)
	if err != nil {
		return err
	}
	var full *index.Index
	if indexPath != "" {
		if full, err = index.Open(indexPath); err != nil {
			return fmt.Errorf("-index %s: %w", indexPath, err)
		}
		defer full.Close()
		log.Printf("shard %d/%d serving from on-disk index %s (%d docs)",
			shard, numShards, indexPath, full.NumDocs())
	} else {
		log.Printf("generating demo environment for shard %d/%d …", shard, numShards)
		env, err := sqe.GenerateDemo(scale)
		if err != nil {
			return err
		}
		full = env.Engine.Index()
	}
	sh := index.NewSharded(full, numShards)
	srv := rpc.NewServer()
	search.NewShardService(sh.Shard(shard), shard, numShards).Register(srv)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	log.Printf("shard %d/%d serving RPC on %s (%d local docs)",
		shard, numShards, ln.Addr(), sh.Shard(shard).NumDocs())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Println("shutting down …")
		srv.Close()
		return nil
	}
}

// parseShardSpec parses "i/N".
func parseShardSpec(spec string) (shard, numShards int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q: want i/N (e.g. 0/2)", spec)
	}
	if shard, err = strconv.Atoi(i); err == nil {
		numShards, err = strconv.Atoi(n)
	}
	if err != nil || shard < 0 || numShards <= 0 || shard >= numShards {
		return 0, 0, fmt.Errorf("-shard %q: want i/N with 0 <= i < N", spec)
	}
	return shard, numShards, nil
}

// dialShardGroups is -mode coordinator's topology parser and handshake:
// spec is a comma-separated list of shard addresses in shard order;
// replicas of one shard are separated by "|". Client-level retry is
// disabled — the engine's degradation policy owns retries, so a failure
// is counted and classified exactly once.
func dialShardGroups(spec string) (*search.RemoteSharded, error) {
	var groups []*rpc.Group
	for _, g := range strings.Split(spec, ",") {
		var replicas []*rpc.Client
		for _, a := range strings.Split(g, "|") {
			if a = strings.TrimSpace(a); a != "" {
				replicas = append(replicas, rpc.NewClient(a, rpc.ClientOptions{MaxRetries: -1}))
			}
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("-shards %q: empty shard group", spec)
		}
		groups = append(groups, rpc.NewGroup(replicas, rpc.GroupOptions{}))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rs, err := search.NewRemoteSharded(ctx, groups)
	if err != nil {
		for _, g := range groups {
			g.Close()
		}
		return nil, err
	}
	log.Printf("coordinator connected to %d shard groups", rs.NumShards())
	return rs, nil
}

// shardProc is one re-exec'd shard server child process.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *shardProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

// spawnShard re-execs this binary as a shard server on an ephemeral
// port and waits for its LISTEN line.
func spawnShard(exe, scaleFlag, spec string, extraArgs ...string) (*shardProc, error) {
	args := append([]string{"-mode", "shard", "-shard", spec, "-addr", "127.0.0.1:0", "-scale", scaleFlag}, extraArgs...)
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &shardProc{cmd: cmd}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				addrc <- a
				break
			}
		}
		close(addrc)
	}()
	select {
	case a, ok := <-addrc:
		if !ok || a == "" {
			p.kill()
			return nil, fmt.Errorf("shard %s exited before listening", spec)
		}
		p.addr = a
		return p, nil
	case <-time.After(2 * time.Minute):
		p.kill()
		return nil, fmt.Errorf("shard %s never printed its listen address", spec)
	}
}

// runDistributedSmoke is the multi-process gate behind `make
// distributed-smoke`. It re-execs this binary as real shard server
// processes (shard 0 with two replicas, shard 1 with one), boots a
// coordinator engine over them, and checks, in order:
//
//  1. parity — SQE_C, single-set and baseline rankings bit-identical
//     to a single-process WithShards(2) engine over every demo query;
//  2. end-to-end serving — /v1/search over real HTTP answers 200 with
//     the same ranking and no degradation;
//  3. chaos — with faults injected at the coordinator's rpc.client_call
//     point, every HTTP response is 200-with-results (degraded or not)
//     or a clean typed 5xx envelope, and full fidelity returns after
//     disarm;
//  4. replica failover — killing one replica of shard 0 leaves
//     responses complete (the group fails over), not degraded;
//  5. dead shard — killing shard 1's only server degrades responses per
//     the PR 5 semantics (stats-phase exclusion, surfaced end to end:
//     Degraded JSON field, X-SQE-Degraded header, 200 status);
//  6. on-disk v2 leg — the index is written to a FormatV2 file, a fresh
//     shard topology boots with -index (each process index.Opens the
//     mmap'd file instead of regenerating the corpus), and rankings
//     stay bit-identical to the single-process engine.
func runDistributedSmoke(scale sqe.DemoScale, scaleFlag string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	log.Println("spawning shard servers (shard 0 ×2 replicas, shard 1 ×1) …")
	var procs []*shardProc
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()
	specs := []string{"0/2", "0/2", "1/2"}
	for _, spec := range specs {
		p, err := spawnShard(exe, scaleFlag, spec)
		if err != nil {
			return err
		}
		procs = append(procs, p)
		log.Printf("  shard %s up on %s", spec, p.addr)
	}

	remote, err := dialShardGroups(procs[0].addr + "|" + procs[1].addr + "," + procs[2].addr)
	if err != nil {
		return err
	}
	defer remote.Close()

	log.Println("generating coordinator + parity environments …")
	env, err := sqe.GenerateDemo(scale, sqe.WithShards(2))
	if err != nil {
		return err
	}
	dist := sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(),
		sqe.WithDistributedSearcher(remote),
		sqe.WithDegradation(sqe.DefaultDegradation()))

	// 1. Bit-identity against single-process sharding, across request
	// shapes: the full SQE_C pipeline, one explicit motif set, and the
	// baseline, for every demo query.
	ctx := context.Background()
	compared := 0
	for i := range env.Queries {
		q := &env.Queries[i]
		reqs := []sqe.SearchRequest{
			{Query: q.Text, EntityTitles: q.EntityTitles, K: 10},
			{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: sqe.MotifT, K: 10},
			{Query: q.Text, K: 10, Baseline: true},
		}
		for _, req := range reqs {
			want, err := env.Engine.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("parity: single-process %s: %v", q.ID, err)
			}
			got, err := dist.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("parity: distributed %s: %v", q.ID, err)
			}
			if got.Degraded != nil {
				return fmt.Errorf("parity: %s degraded with all shards up: %+v", q.ID, got.Degraded)
			}
			if !reflect.DeepEqual(want.Results, got.Results) {
				return fmt.Errorf("parity: query %s: distributed ranking differs from single-process WithShards(2)", q.ID)
			}
			compared++
		}
	}
	log.Printf("  ok parity        %d request configurations bit-identical across processes", compared)

	// 2. End to end over real HTTP.
	srv := serve.New(serve.Config{Engine: dist})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}
	q := env.Queries[0]
	searchPath := "/v1/search?q=" + url.QueryEscape(q.Text) +
		"&entities=" + url.QueryEscape(strings.Join(q.EntityTitles, ",")) + "&k=10"

	get := func(path string) (int, http.Header, []byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return 0, nil, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header, body, err
	}
	code, hdr, body, err := get(searchPath)
	if err != nil {
		return fmt.Errorf("http: %v", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("http: status %d: %s", code, body)
	}
	if err := wantResults(body); err != nil {
		return fmt.Errorf("http: %v", err)
	}
	if hdr.Get(serve.DegradedHeader) != "" {
		return fmt.Errorf("http: degraded with all shards up: %q", hdr.Get(serve.DegradedHeader))
	}
	log.Printf("  ok http          coordinator serves /v1/search over %d shard processes", remote.NumShards())

	// 3. Chaos at the coordinator's RPC boundary: transient transport
	// faults on outgoing calls must degrade or fail cleanly, never hang
	// or corrupt, and fidelity must return after disarm.
	fault.Arm(fault.NewRegistry(11).Set(fault.RPCClient,
		fault.Policy{ErrRate: 0.3, Transient: true}))
	okN, degradedN, failedN := 0, 0, 0
	for i := 0; i < 40; i++ {
		code, hdr, body, err := get(searchPath)
		if err != nil {
			fault.Disarm()
			return fmt.Errorf("chaos: %v", err)
		}
		switch {
		case code == http.StatusOK:
			if err := wantResults(body); err != nil {
				fault.Disarm()
				return fmt.Errorf("chaos: 200 but %v", err)
			}
			okN++
			if hdr.Get(serve.DegradedHeader) != "" {
				degradedN++
			}
		case code >= 500:
			var envl struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &envl); err != nil || envl.Error.Code == "" {
				fault.Disarm()
				return fmt.Errorf("chaos: HTTP %d with malformed envelope %q", code, body)
			}
			failedN++
		default:
			fault.Disarm()
			return fmt.Errorf("chaos: unexpected HTTP %d: %s", code, body)
		}
	}
	fault.Disarm()
	log.Printf("  ok chaos         40 requests under rpc.client_call faults — %d ok (%d degraded), %d clean 5xx",
		okN, degradedN, failedN)
	if code, hdr, _, err := get(searchPath); err != nil || code != http.StatusOK || hdr.Get(serve.DegradedHeader) != "" {
		return fmt.Errorf("chaos: post-disarm replay not clean (err=%v code=%d degraded=%q)",
			err, code, hdr.Get(serve.DegradedHeader))
	}

	// 4. Replica failover: shard 0 loses one of its two replicas; the
	// group fails over and responses stay complete and bit-identical.
	procs[0].kill()
	want, err := env.Engine.Do(ctx, sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10})
	if err != nil {
		return err
	}
	got, err := dist.Do(ctx, sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10})
	if err != nil {
		return fmt.Errorf("failover: %v", err)
	}
	if got.Degraded.Degraded() {
		return fmt.Errorf("failover: degraded despite a live replica: %+v", got.Degraded)
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		return errors.New("failover: ranking changed after losing a redundant replica")
	}
	log.Println("  ok failover      shard 0 replica killed; group failed over, results bit-identical")

	// 5. Dead shard: shard 1 has no replicas left, so its stats phase
	// fails and PR 5's degradation excludes it from the corpus — and the
	// serving layer surfaces that end to end.
	procs[2].kill()
	code, hdr, body, err = get(searchPath)
	if err != nil {
		return fmt.Errorf("dead shard: %v", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("dead shard: status %d, want degraded 200: %s", code, body)
	}
	if err := wantResults(body); err != nil {
		return fmt.Errorf("dead shard: %v", err)
	}
	if !strings.Contains(hdr.Get(serve.DegradedHeader), "shards=") {
		return fmt.Errorf("dead shard: %s header = %q, want a shard drop", serve.DegradedHeader, hdr.Get(serve.DegradedHeader))
	}
	var dresp struct {
		Degraded *sqe.Degradation `json:"degraded"`
	}
	if err := json.Unmarshal(body, &dresp); err != nil {
		return fmt.Errorf("dead shard: %v", err)
	}
	if dresp.Degraded == nil || len(dresp.Degraded.DroppedShards) == 0 {
		return fmt.Errorf("dead shard: no degraded field in body: %s", body)
	}
	for _, sh := range dresp.Degraded.DroppedShards {
		if sh != 1 {
			return fmt.Errorf("dead shard: dropped shard %d, want only shard 1: %+v", sh, dresp.Degraded)
		}
	}
	statsTier := false
	for _, e := range dresp.Degraded.ShardErrors {
		if strings.HasPrefix(e, "stats phase: ") {
			statsTier = true
		}
	}
	if !statsTier {
		return fmt.Errorf("dead shard: expected a stats-phase exclusion, got %v", dresp.Degraded.ShardErrors)
	}
	log.Println("  ok degradation   dead shard excluded per PR 5 semantics, surfaced in header + body")

	// 6. The on-disk leg: same coordinator topology, but every shard
	// process serves slices of an mmap'd FormatV2 file instead of a
	// regenerated in-memory corpus.
	dir, err := os.MkdirTemp("", "sqe-dist-v2")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	v2Path := filepath.Join(dir, "index.v2")
	if err := index.WriteFile(v2Path, env.Engine.Index(), index.FormatV2); err != nil {
		return err
	}
	log.Printf("spawning v2-file shard servers over %s …", v2Path)
	var v2procs []*shardProc
	defer func() {
		for _, p := range v2procs {
			p.kill()
		}
	}()
	for _, spec := range []string{"0/2", "1/2"} {
		p, err := spawnShard(exe, scaleFlag, spec, "-index", v2Path)
		if err != nil {
			return err
		}
		v2procs = append(v2procs, p)
		log.Printf("  shard %s up on %s (v2 file)", spec, p.addr)
	}
	v2remote, err := dialShardGroups(v2procs[0].addr + "," + v2procs[1].addr)
	if err != nil {
		return err
	}
	defer v2remote.Close()
	v2dist := sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(),
		sqe.WithDistributedSearcher(v2remote),
		sqe.WithDegradation(sqe.DefaultDegradation()))
	v2compared := 0
	for i := range env.Queries {
		qq := &env.Queries[i]
		for _, req := range []sqe.SearchRequest{
			{Query: qq.Text, EntityTitles: qq.EntityTitles, K: 10},
			{Query: qq.Text, K: 10, Baseline: true},
		} {
			want, err := env.Engine.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("v2 parity: single-process %s: %v", qq.ID, err)
			}
			got, err := v2dist.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("v2 parity: distributed %s: %v", qq.ID, err)
			}
			if got.Degraded != nil {
				return fmt.Errorf("v2 parity: %s degraded with all shards up: %+v", qq.ID, got.Degraded)
			}
			if !reflect.DeepEqual(want.Results, got.Results) {
				return fmt.Errorf("v2 parity: query %s: v2-file shard ranking differs from single-process", qq.ID)
			}
			v2compared++
		}
	}
	log.Printf("  ok v2 index      %d request configurations bit-identical over mmap'd v2 shard processes", v2compared)
	return nil
}

// Command sqe-serve boots the HTTP serving layer (internal/serve) over
// the demo environment: the full SQE_C pipeline with parallel motif-set
// runs, an expansion cache, per-request deadlines, admission control
// and Prometheus metrics.
//
// Usage:
//
//	sqe-serve [-mode serve|shard|coordinator] [-addr :8344]
//	          [-scale small|default] [-timeout 10s] [-max-inflight 64]
//	          [-queue 0] [-cache 4096] [-workers 0] [-shards 1]
//	          [-degrade] [-smoke] [-chaos] [-chaos-seed 1]
//	          [-distributed-smoke]
//	          [-index file] [-write-index file] [-index-format v2]
//	          [-ingest] [-segments dir] [-flush-docs 0] [-ingest-smoke]
//
// On-disk index (DESIGN.md §5j): -write-index builds the demo corpus,
// writes its index to the given path in -index-format (v1 or v2,
// default v2) and exits. -index makes -mode serve and -mode shard
// retrieve from that file via index.Open — for v2 an mmap with lazy
// per-block decode — instead of the in-memory demo index; everything
// else (knowledge graph, expansion, queries) still comes from the
// deterministic demo environment, so the file must describe the same
// corpus at the same -scale (checked at boot).
//
// Modes (the tentpole topology — see DESIGN.md §5i):
//
//	-mode serve        (default) one process, optional in-process shards
//	                   (-shards N).
//	-mode shard -shard i/N
//	                   serve slice i of an N-way round-robin partition
//	                   over the RPC protocol (shard.info/stats/eval) on
//	                   -addr. No HTTP; one process per shard.
//	-mode coordinator -shards host:a,host:b,...
//	                   serve the HTTP API, fanning retrieval out to the
//	                   listed shard servers (order = shard index).
//	                   Replicas of one shard are separated by "|":
//	                   "a1|a2,b" is shard 0 on {a1,a2}, shard 1 on b.
//
// HTTP endpoints (see internal/serve); the unversioned paths still work
// but answer with a Deprecation header:
//
//	GET  /v1/search?q=cable+cars&entities=Cable+car&k=10  SQE_C search
//	GET  /v1/expand?q=…&entities=…&set=TS                 expansion only
//	GET  /v1/baseline?q=…&k=10                            QL_Q baseline
//	POST /v1/ingest                                       live mutations (-ingest)
//	GET  /healthz                                         liveness
//	GET  /metrics                                         Prometheus text
//
// All work endpoints also accept POST with a JSON body
// {"query": …, "entities": […], "k": …, "set": …}.
//
// -smoke runs the self-test instead of serving: it binds an ephemeral
// port, issues one in-process request per endpoint, checks HTTP 200 and
// non-empty payloads, and exits 0/1. The Makefile's serve-smoke target
// (part of `make verify`) runs exactly this — no curl required.
//
// -chaos runs the chaos smoke instead of serving: with graceful
// degradation enabled it arms the fault-injection registry (seeded by
// -chaos-seed) with error, latency and panic policies at every
// registered point, hammers /v1/search and /v1/baseline, and demands
// every response be well-formed — 200 with results (degraded or not) or
// a clean 5xx typed error envelope; no hangs, no crashes. It then
// disarms the registry, replays a request, and verifies the response is
// fault-free again. The Makefile's chaos target runs this after the
// -race chaos tests.
//
// -ingest serves a live segmented engine (DESIGN.md §5l) instead of an
// immutable one: the deterministic demo corpus is streamed into an LSM
// index rooted at -segments (a fresh temp directory when unset) and
// POST /v1/ingest then accepts live adds, deletes, flushes and
// compactions. Passing a persistent -segments path makes the committed
// segments durable: reopening the directory recovers them from the
// manifest (including deletes) and skips re-seeding the demo corpus.
// -flush-docs bounds the in-memory buffer before an automatic flush.
//
// -ingest-smoke runs the live-indexing gate instead of serving: it
// boots a live engine over an empty segment directory on an ephemeral
// port, streams the demo corpus through POST /v1/ingest in batches
// while a concurrent reader hammers the search endpoints, then demands
// bit-identical rankings against the monolithic demo engine, exercises
// delete+compact through the endpoint against a survivors oracle, and
// checks the sqe_live_* metrics family. The Makefile's ingest-smoke
// target (part of `make verify`) runs exactly this.
//
// -distributed-smoke re-execs this binary as real shard server
// processes (os.Executable), boots a coordinator over them, and runs
// the multi-process gate: bit-identity against single-process sharding,
// replica failover, and dead-shard degradation surfaced end to end over
// HTTP. The Makefile's distributed-smoke target runs exactly this.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	sqe "repro"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/serve"
)

// runWriteIndex is -write-index: build the deterministic demo corpus,
// write its index image to path in the requested on-disk format
// (atomic temp+fsync+rename inside index.WriteFile) and exit.
func runWriteIndex(scale sqe.DemoScale, path, format string) error {
	var f index.Format
	switch format {
	case "v1":
		f = index.FormatV1
	case "v2":
		f = index.FormatV2
	default:
		return fmt.Errorf("-index-format %q: want v1 or v2", format)
	}
	log.Println("generating demo environment …")
	env, err := sqe.GenerateDemo(scale)
	if err != nil {
		return err
	}
	if err := index.WriteFile(path, env.Engine.Index(), f); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	log.Printf("wrote %s index of %s (%d docs) to %s (%d bytes)",
		format, env.DatasetName, env.Engine.Index().NumDocs(), path, fi.Size())
	return nil
}

// openServingIndex opens an on-disk index for serving and insists it
// describes the same corpus as the demo environment the rest of the
// pipeline (graph, expansion, queries) was generated from — serving a
// mismatched file would return confidently wrong rankings.
func openServingIndex(path string, want *index.Index) (*index.Index, error) {
	disk, err := index.Open(path)
	if err != nil {
		return nil, fmt.Errorf("-index %s: %w", path, err)
	}
	if disk.NumDocs() != want.NumDocs() {
		disk.Close()
		return nil, fmt.Errorf("-index %s: %d docs, demo corpus at this -scale has %d — wrong file or wrong -scale",
			path, disk.NumDocs(), want.NumDocs())
	}
	log.Printf("serving retrieval from on-disk index %s (%d docs)", path, disk.NumDocs())
	return disk, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-serve: ")
	mode := flag.String("mode", "serve", "process role: serve | shard | coordinator")
	addr := flag.String("addr", ":8344", "listen address")
	scaleFlag := flag.String("scale", "small", "demo corpus scale: small|default")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline (0 = default, negative = off)")
	maxInFlight := flag.Int("max-inflight", 64, "work requests evaluating concurrently before shedding 429s")
	queueDepth := flag.Int("queue", 0, "admission-queue depth: requests that wait for a slot instead of shedding (0 = shed immediately)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max time a queued request waits for a slot (0 = 100ms default when -queue > 0)")
	cacheSize := flag.Int("cache", 4096, "expansion cache entries (0 = off)")
	workers := flag.Int("workers", 0, "concurrent SQE_C runs engine-wide (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.String("shards", "1", "mode=serve: in-process shard count; mode=coordinator: comma-separated shard server addresses (replicas of one shard separated by |)")
	shardSpec := flag.String("shard", "", "mode=shard: which partition slice this process serves, as i/N (e.g. 0/2)")
	degrade := flag.Bool("degrade", true, "enable graceful degradation (partial shard merges, expansion fallback, partial SQE_C, transient retries)")
	precomputed := flag.String("precomputed", "", "path to a precomputed expansion store built by sqe-precompute (dropped with a warning if its KB hash mismatches)")
	indexPath := flag.String("index", "", "serve retrieval from this on-disk index file (written by -write-index) instead of the in-memory demo index")
	writeIndex := flag.String("write-index", "", "write the demo corpus index to this path and exit")
	indexFormat := flag.String("index-format", "v2", "on-disk format for -write-index: v1|v2")
	smoke := flag.Bool("smoke", false, "boot on an ephemeral port, self-test every endpoint, exit")
	chaos := flag.Bool("chaos", false, "boot on an ephemeral port, hammer the work endpoints under fault injection, exit")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-schedule seed for -chaos")
	distSmoke := flag.Bool("distributed-smoke", false, "spawn shard processes + coordinator, run the multi-process parity and chaos gate, exit")
	ingest := flag.Bool("ingest", false, "serve a live segmented engine: seed the demo corpus into an LSM index at -segments and accept POST /v1/ingest")
	segmentsDir := flag.String("segments", "", "-ingest: segment directory (empty = fresh temp dir; a persistent path recovers committed segments across restarts)")
	flushDocs := flag.Int("flush-docs", 0, "-ingest: buffered documents that trigger an automatic segment flush (0 = package default)")
	ingestSmoke := flag.Bool("ingest-smoke", false, "boot a live engine on an ephemeral port, stream the corpus via /v1/ingest under concurrent queries, verify parity with the monolithic engine, exit")
	flag.Parse()

	scale := sqe.DemoSmall
	if *scaleFlag == "default" {
		scale = sqe.DemoDefault
	}

	if *writeIndex != "" {
		if err := runWriteIndex(scale, *writeIndex, *indexFormat); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *distSmoke {
		if err := runDistributedSmoke(scale, *scaleFlag); err != nil {
			log.Fatalf("DISTRIBUTED SMOKE FAIL: %v", err)
		}
		log.Println("DISTRIBUTED SMOKE OK")
		return
	}
	if *ingestSmoke {
		if err := runIngestSmoke(scale, *cacheSize); err != nil {
			log.Fatalf("INGEST SMOKE FAIL: %v", err)
		}
		log.Println("INGEST SMOKE OK")
		return
	}
	if *mode == "shard" {
		if err := runShardServer(scale, *shardSpec, *addr, *indexPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	log.Println("generating demo environment …")
	opts := []sqe.Option{sqe.WithExpansionCache(*cacheSize)}
	if *workers != 0 {
		opts = append(opts, sqe.WithSQECWorkers(*workers))
	}
	var remote *search.RemoteSharded
	switch *mode {
	case "serve":
		n, err := strconv.Atoi(*shards)
		if err != nil {
			log.Fatalf("-shards %q: mode=serve wants an in-process shard count", *shards)
		}
		if n > 1 {
			opts = append(opts, sqe.WithShards(n))
		}
	case "coordinator":
		var err error
		if remote, err = dialShardGroups(*shards); err != nil {
			log.Fatal(err)
		}
		defer remote.Close()
		opts = append(opts, sqe.WithDistributedSearcher(remote))
	default:
		log.Fatalf("unknown -mode %q (serve, shard or coordinator)", *mode)
	}
	if *degrade || *chaos {
		opts = append(opts, sqe.WithDegradation(sqe.DefaultDegradation()))
	}
	if *precomputed != "" {
		store, err := sqe.OpenExpansionStore(*precomputed)
		if err != nil {
			log.Fatalf("precomputed store: %v", err)
		}
		log.Printf("loaded precomputed expansion store %s (%d entries)", *precomputed, store.Len())
		opts = append(opts, sqe.WithPrecomputedExpansions(store))
	}
	var env *sqe.DemoEnv
	var err error
	if *ingest {
		if *mode != "serve" {
			log.Fatalf("-ingest applies to -mode serve, not %q", *mode)
		}
		if *indexPath != "" || *shards != "1" {
			log.Fatal("-ingest is incompatible with -index and -shards (the live engine searches its own segments)")
		}
		env, err = buildLiveServing(scale, *segmentsDir, *flushDocs, opts)
	} else {
		env, err = sqe.GenerateDemo(scale, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	if live := env.Engine.Live(); live != nil {
		defer live.Close()
	}
	if *indexPath != "" {
		if *mode != "serve" {
			log.Fatalf("-index applies to -mode serve and -mode shard, not %q", *mode)
		}
		disk, err := openServingIndex(*indexPath, env.Engine.Index())
		if err != nil {
			log.Fatal(err)
		}
		defer disk.Close()
		env.Engine = sqe.NewEngine(env.Engine.Graph(), disk, opts...)
	}
	if st, ok := env.Engine.ExpansionStoreStats(); ok && st.Stale {
		log.Printf("WARNING: precomputed store %s was built over a different KB; dropped (serving live expansions)", *precomputed)
	}
	srv := serve.New(serve.Config{
		Engine:       env.Engine,
		Timeout:      *timeout,
		MaxInFlight:  *maxInFlight,
		QueueDepth:   *queueDepth,
		QueueTimeout: *queueTimeout,
	})

	if *smoke {
		if err := runSmoke(srv, env, *precomputed != ""); err != nil {
			log.Fatalf("SMOKE FAIL: %v", err)
		}
		log.Println("SMOKE OK")
		return
	}
	if *chaos {
		if err := runChaos(srv, env, *chaosSeed); err != nil {
			log.Fatalf("CHAOS FAIL: %v", err)
		}
		log.Println("CHAOS OK")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	role := "single-process"
	if remote != nil {
		role = fmt.Sprintf("coordinator over %d shard servers", remote.NumShards())
	}
	log.Printf("serving %s on %s as %s (%d queries in corpus; try /v1/search?q=%s)",
		env.DatasetName, *addr, role, len(env.Queries), url.QueryEscape(env.Queries[0].Text))
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests finish
		// under a bounded deadline, then exit.
		log.Println("shutting down …")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		// A live index buffers unflushed documents in memory; make them
		// durable before Close so a graceful restart loses nothing.
		if live := env.Engine.Live(); live != nil {
			if err := live.Flush(); err != nil {
				log.Printf("WARNING: final flush: %v", err)
			}
		}
	}
}

// runSmoke boots the server on an ephemeral loopback port and drives one
// request through every endpoint, checking status and payload shape.
// With a precomputed store attached (hasStore) it additionally demands
// the store be non-stale, byte-identical to live expansion over every
// demo query, actually consulted (hits > 0), and visible in /metrics —
// the Makefile's precompute-smoke target runs exactly this.
func runSmoke(srv *serve.Server, env *sqe.DemoEnv, hasStore bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	q := env.Queries[0]
	params := "q=" + url.QueryEscape(q.Text) + "&entities=" + url.QueryEscape(strings.Join(q.EntityTitles, ","))

	checks := []struct {
		name, path string
		check      func(body []byte) error
	}{
		{"search", "/v1/search?" + params + "&k=10", wantResults},
		{"search set=T", "/v1/search?" + params + "&k=5&set=T", wantResults},
		{"expand", "/v1/expand?" + params, func(b []byte) error {
			var resp struct {
				QueryNodeTitles []string `json:"query_node_titles"`
			}
			if err := json.Unmarshal(b, &resp); err != nil {
				return err
			}
			if len(resp.QueryNodeTitles) == 0 {
				return errors.New("no query nodes resolved")
			}
			return nil
		}},
		{"baseline", "/v1/baseline?" + params + "&k=10", wantResults},
		{"legacy alias", "/search?" + params + "&k=10", wantResults},
		{"healthz", "/healthz", func(b []byte) error {
			if !strings.Contains(string(b), `"ok"`) {
				return fmt.Errorf("unexpected body %s", b)
			}
			return nil
		}},
		{"metrics", "/metrics", func(b []byte) error {
			want := []string{"sqe_http_requests_total", "sqe_pipeline_retrievals_total"}
			if _, ok := env.Engine.ExpansionCacheStats(); ok {
				want = append(want, "sqe_expansion_cache_hits_total")
			}
			if hasStore {
				want = append(want,
					"sqe_expansion_store_hits_total",
					"sqe_expansion_store_misses_total",
					"sqe_expansion_store_entries",
					"sqe_expansion_store_stale 0")
			}
			if env.Engine.Shards() > 1 {
				want = append(want, `sqe_search_shard_seconds_total{shard="0"}`)
			}
			for _, m := range want {
				if !strings.Contains(string(b), m) {
					return fmt.Errorf("metric %s missing", m)
				}
			}
			return nil
		}},
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, c := range checks {
		resp, err := client.Get(base + c.path)
		if err != nil {
			return fmt.Errorf("%s: %v", c.name, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: read: %v", c.name, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %d: %s", c.name, resp.StatusCode, body)
		}
		if err := c.check(body); err != nil {
			return fmt.Errorf("%s: %v", c.name, err)
		}
		log.Printf("  ok %-12s %s", c.name, c.path)
	}
	if hasStore {
		if err := checkStoreParity(env); err != nil {
			return err
		}
	}
	return nil
}

// checkStoreParity compares the store-backed serving engine against a
// freshly built live-expansion engine over the same graph and index:
// every demo query, every motif configuration (SQE_C plus the three
// explicit sets), byte-identical results. It then demands the store (or
// the cache warmed from it) actually served lookups.
func checkStoreParity(env *sqe.DemoEnv) error {
	st, ok := env.Engine.ExpansionStoreStats()
	if !ok {
		return errors.New("precomputed: flag set but engine reports no store")
	}
	if st.Stale {
		return errors.New("precomputed: store is stale for this KB")
	}
	live := sqe.NewEngine(env.Engine.Graph(), env.Engine.Index())
	ctx := context.Background()
	compared := 0
	for i := range env.Queries {
		q := &env.Queries[i]
		if len(q.EntityTitles) == 0 {
			continue
		}
		for _, set := range []sqe.MotifSet{0 /* SQE_C */, sqe.MotifT, sqe.MotifTS, sqe.MotifS} {
			req := sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: set, K: 20}
			want, err := live.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("precomputed: live %s: %v", q.ID, err)
			}
			got, err := env.Engine.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("precomputed: stored %s: %v", q.ID, err)
			}
			if !reflect.DeepEqual(want.Results, got.Results) {
				return fmt.Errorf("precomputed: query %s set %v: store-served results differ from live expansion", q.ID, set)
			}
			compared++
		}
	}
	if compared == 0 {
		return errors.New("precomputed: no demo queries with entities to compare")
	}
	st, _ = env.Engine.ExpansionStoreStats()
	if st.Hits == 0 {
		// With an expansion cache configured the engine warms it from the
		// store at boot, so lookups legitimately land there instead.
		if cs, ok := env.Engine.ExpansionCacheStats(); !ok || cs.Hits == 0 {
			return errors.New("precomputed: store attached but never consulted")
		}
	}
	log.Printf("  ok precomputed  parity over %d request configurations (%d store hits)", compared, st.Hits)
	return nil
}

func wantResults(b []byte) error {
	var resp struct {
		Results []struct {
			Name string `json:"name"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &resp); err != nil {
		return err
	}
	if len(resp.Results) == 0 {
		return errors.New("empty results")
	}
	return nil
}

// runChaos boots the server on an ephemeral loopback port, arms the
// fault-injection registry with a policy at every registered point, and
// hammers the work endpoints. Every response must be well-formed: 200
// with results (degraded or not) or a clean 5xx JSON error envelope.
// The client timeout is the watchdog — a hang fails the smoke. Finally
// it disarms the registry and verifies a replayed request is fault-free.
func runChaos(srv *serve.Server, env *sqe.DemoEnv, seed int64) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	reg := fault.NewRegistry(seed)
	for _, p := range fault.Points() {
		pol := fault.Policy{ErrRate: 0.02, Transient: true, LatencyRate: 0.01, Latency: 200 * time.Microsecond}
		switch p {
		case fault.ShardEval, fault.SQECRun:
			pol.ErrRate, pol.PanicRate = 0.15, 0.05
		case fault.MotifExpand:
			pol.ErrRate, pol.Transient = 0.25, false
		case fault.ExpansionCache:
			pol.ErrRate = 0.30
		}
		reg.Set(p, pol)
	}
	fault.Arm(reg)
	defer fault.Disarm()

	client := &http.Client{Timeout: 30 * time.Second}
	q := env.Queries[0]
	params := "q=" + url.QueryEscape(q.Text) + "&entities=" + url.QueryEscape(strings.Join(q.EntityTitles, ","))
	paths := []string{
		"/v1/search?" + params + "&k=10",
		"/v1/search?" + params + "&k=5&set=T",
		"/v1/baseline?" + params + "&k=10",
	}

	const iters = 60
	type tally struct{ ok, degraded, failed int }
	var counts tally
	hit := func(path string) error {
		resp, err := client.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("GET %s: read: %v", path, err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if err := wantResults(body); err != nil {
				return fmt.Errorf("GET %s: 200 but %v", path, err)
			}
			counts.ok++
			if resp.Header.Get(serve.DegradedHeader) != "" {
				counts.degraded++
			}
		case resp.StatusCode >= 500:
			var envl struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &envl); err != nil || envl.Error.Code == "" || envl.Error.Message == "" {
				return fmt.Errorf("GET %s: HTTP %d with malformed error envelope %q", path, resp.StatusCode, body)
			}
			counts.failed++
		default:
			return fmt.Errorf("GET %s: unexpected HTTP %d: %s", path, resp.StatusCode, body)
		}
		return nil
	}
	for i := 0; i < iters; i++ {
		if err := hit(paths[i%len(paths)]); err != nil {
			return err
		}
	}
	log.Printf("  chaos: %d requests — %d ok (%d degraded), %d clean 5xx",
		iters, counts.ok, counts.degraded, counts.failed)
	if reg.TotalInjected() == 0 {
		return errors.New("registry injected no faults; chaos exercised nothing")
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics: read: %v", err)
	}
	if !strings.Contains(string(body), "sqe_fault_injected_total") {
		return errors.New("metrics: sqe_fault_injected_total family missing while registry armed")
	}

	// Disarm and replay: the engine must return to full-fidelity serving.
	fault.Disarm()
	resp, err = client.Get(base + paths[0])
	if err != nil {
		return fmt.Errorf("post-disarm: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("post-disarm: read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("post-disarm: HTTP %d: %s", resp.StatusCode, body)
	}
	if err := wantResults(body); err != nil {
		return fmt.Errorf("post-disarm: %v", err)
	}
	if resp.Header.Get(serve.DegradedHeader) != "" {
		return errors.New("post-disarm: response still marked degraded")
	}
	log.Printf("  ok post-disarm replay fault-free")
	return nil
}

// buildLiveServing is -ingest: open (or create) the segmented index at
// dir and wrap it in a live engine over the demo knowledge graph. A
// fresh index is seeded with the demo corpus so the process is
// immediately searchable; a reopened directory keeps whatever its
// manifest holds — the corpus is NOT re-seeded, so deletes made through
// /v1/ingest survive restarts.
func buildLiveServing(scale sqe.DemoScale, dir string, flushDocs int, opts []sqe.Option) (*sqe.DemoEnv, error) {
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "sqe-segments-"); err != nil {
			return nil, err
		}
		log.Printf("segment directory %s (pass -segments to persist across restarts)", dir)
	}
	env, docs, err := sqe.GenerateDemoLive(scale, dir, flushDocs, opts...)
	if err != nil {
		return nil, err
	}
	ls, _ := env.Engine.LiveStats()
	if ls.LiveDocs == 0 && ls.BufferDocs == 0 {
		log.Printf("seeding live index with %d demo documents …", len(docs))
		for _, d := range docs {
			if err := env.Engine.Ingest(d.Name, d.Text); err != nil {
				return nil, fmt.Errorf("seed %s: %w", d.Name, err)
			}
		}
		if err := env.Engine.Flush(); err != nil {
			return nil, err
		}
		ls, _ = env.Engine.LiveStats()
	} else {
		log.Printf("recovered live index from %s", dir)
	}
	log.Printf("live index: %d docs in %d segments (%d tombstones)",
		ls.LiveDocs, ls.DiskSegments, ls.Tombstones)
	return env, nil
}

// runIngestSmoke is the live-indexing gate (the Makefile's ingest-smoke
// target, part of `make verify`). It boots a live engine over an EMPTY
// segment directory on an ephemeral loopback port, streams the demo
// corpus through POST /v1/ingest in batches while a concurrent reader
// hammers the search endpoints (every response it sees — over any
// half-ingested snapshot — must be well-formed), and then:
//
//   - demands bit-identical /v1/search and /v1/baseline rankings
//     against the monolithic GenerateDemo engine over the same corpus,
//   - deletes every 7th document and compacts through the endpoint,
//     re-checking bit-identity against a monolithic survivors oracle
//     and that no deleted document is still ranked,
//   - verifies the sqe_live_* metrics family and the ingest endpoint
//     counters, and the typed 405 envelope on GET.
func runIngestSmoke(scale sqe.DemoScale, cacheSize int) error {
	dir, err := os.MkdirTemp("", "sqe-ingest-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	opts := []sqe.Option{sqe.WithExpansionCache(cacheSize)}
	log.Println("generating demo environment …")
	env, docs, err := sqe.GenerateDemoLive(scale, dir, 64, opts...)
	if err != nil {
		return err
	}
	defer env.Engine.Live().Close()
	ref, err := sqe.GenerateDemo(scale, opts...)
	if err != nil {
		return err
	}

	srv := serve.New(serve.Config{Engine: env.Engine})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	type addDoc struct {
		Name string `json:"name"`
		Text string `json:"text"`
	}
	type ingestReq struct {
		Add     []addDoc `json:"add,omitempty"`
		Delete  []string `json:"delete,omitempty"`
		Flush   bool     `json:"flush,omitempty"`
		Compact bool     `json:"compact,omitempty"`
	}
	type ingestWire struct {
		Added      int `json:"added"`
		Deleted    int `json:"deleted"`
		Segments   int `json:"segments"`
		BufferDocs int `json:"buffer_docs"`
		LiveDocs   int `json:"live_docs"`
		Tombstones int `json:"tombstones"`
	}
	post := func(req ingestReq) (ingestWire, error) {
		var out ingestWire
		body, err := json.Marshal(req)
		if err != nil {
			return out, err
		}
		resp, err := client.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return out, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return out, err
		}
		if resp.StatusCode != http.StatusOK {
			return out, fmt.Errorf("POST /v1/ingest: HTTP %d: %s", resp.StatusCode, b)
		}
		return out, json.Unmarshal(b, &out)
	}

	// Concurrent reader: search must stay available and well-formed over
	// every intermediate snapshot while the corpus streams in. Result
	// sets legitimately grow request to request; an error status or a
	// malformed body fails the smoke.
	q0 := env.Queries[0]
	params := "q=" + url.QueryEscape(q0.Text) + "&entities=" + url.QueryEscape(strings.Join(q0.EntityTitles, ","))
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	readerErr := make(chan error, 1)
	var probes atomic.Int64
	go func() {
		defer close(readerDone)
		paths := []string{"/v1/search?" + params + "&k=10", "/v1/baseline?" + params + "&k=10"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(base + paths[i%len(paths)])
			if err != nil {
				readerErr <- fmt.Errorf("concurrent reader: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				readerErr <- fmt.Errorf("concurrent reader: HTTP %d (read err %v): %s", resp.StatusCode, err, body)
				return
			}
			var sr struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(body, &sr); err != nil {
				readerErr <- fmt.Errorf("concurrent reader: malformed body: %v", err)
				return
			}
			probes.Add(1)
		}
	}()

	// Stream the corpus in batches, then flush the tail.
	const batch = 40
	total := 0
	for i := 0; i < len(docs); i += batch {
		end := i + batch
		if end > len(docs) {
			end = len(docs)
		}
		add := make([]addDoc, 0, end-i)
		for _, d := range docs[i:end] {
			add = append(add, addDoc{Name: d.Name, Text: d.Text})
		}
		r, err := post(ingestReq{Add: add})
		if err != nil {
			return err
		}
		total += r.Added
	}
	r, err := post(ingestReq{Flush: true})
	if err != nil {
		return err
	}
	close(stop)
	<-readerDone
	select {
	case err := <-readerErr:
		return err
	default:
	}
	if total != len(docs) || r.LiveDocs != len(docs) || r.BufferDocs != 0 {
		return fmt.Errorf("streamed %d/%d docs but index reports %d live, %d buffered",
			total, len(docs), r.LiveDocs, r.BufferDocs)
	}
	log.Printf("  ok streamed %d docs in %d-doc batches under %d concurrent query probes (%d segments)",
		total, batch, probes.Load(), r.Segments)

	// checkParity compares live HTTP rankings bit-for-bit (names AND
	// scores — Go's JSON float encoding round-trips float64 exactly)
	// against a monolithic oracle engine evaluated in-process.
	checkParity := func(leg string, oracle *sqe.Engine, deleted map[string]bool) error {
		ctx := context.Background()
		compared := 0
		for i := range env.Queries {
			q := &env.Queries[i]
			for _, endpoint := range []string{"search", "baseline"} {
				p := "q=" + url.QueryEscape(q.Text) + "&k=10"
				req := sqe.SearchRequest{Query: q.Text, K: 10, Baseline: true}
				if endpoint == "search" {
					if len(q.EntityTitles) == 0 {
						continue
					}
					p += "&entities=" + url.QueryEscape(strings.Join(q.EntityTitles, ","))
					req.EntityTitles = q.EntityTitles
					req.Baseline = false
				}
				want, err := oracle.Do(ctx, req)
				if err != nil {
					return fmt.Errorf("%s: oracle %s: %v", leg, q.ID, err)
				}
				resp, err := client.Get(base + "/v1/" + endpoint + "?" + p)
				if err != nil {
					return fmt.Errorf("%s: GET /v1/%s: %v", leg, endpoint, err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return fmt.Errorf("%s: read: %v", leg, err)
				}
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("%s: GET /v1/%s: HTTP %d: %s", leg, endpoint, resp.StatusCode, body)
				}
				var got struct {
					Results []struct {
						Name  string  `json:"name"`
						Score float64 `json:"score"`
					} `json:"results"`
				}
				if err := json.Unmarshal(body, &got); err != nil {
					return fmt.Errorf("%s: GET /v1/%s: %v", leg, endpoint, err)
				}
				if len(got.Results) != len(want.Results) {
					return fmt.Errorf("%s: %s /v1/%s: %d results, oracle has %d",
						leg, q.ID, endpoint, len(got.Results), len(want.Results))
				}
				for j, gr := range got.Results {
					if deleted[gr.Name] {
						return fmt.Errorf("%s: %s /v1/%s: deleted document %s still ranked at %d",
							leg, q.ID, endpoint, gr.Name, j+1)
					}
					if gr.Name != want.Results[j].Name || gr.Score != want.Results[j].Score {
						return fmt.Errorf("%s: %s /v1/%s rank %d: live %s %v, oracle %s %v",
							leg, q.ID, endpoint, j+1, gr.Name, gr.Score,
							want.Results[j].Name, want.Results[j].Score)
					}
				}
				compared++
			}
		}
		if compared == 0 {
			return fmt.Errorf("%s: no query/endpoint pairs compared", leg)
		}
		log.Printf("  ok %s parity over %d endpoint/query pairs", leg, compared)
		return nil
	}
	if err := checkParity("post-ingest", ref.Engine, nil); err != nil {
		return err
	}

	// Delete every 7th document and compact the tombstones away, then
	// re-check bit-identity against a monolithic index over the
	// survivors only.
	deleted := map[string]bool{}
	var delNames []string
	for i, d := range docs {
		if i%7 == 0 {
			deleted[d.Name] = true
			delNames = append(delNames, d.Name)
		}
	}
	if r, err = post(ingestReq{Delete: delNames, Compact: true}); err != nil {
		return err
	}
	if r.Deleted != len(delNames) || r.Tombstones != 0 || r.Segments != 1 || r.LiveDocs != len(docs)-len(delNames) {
		return fmt.Errorf("delete+compact: unexpected state %+v (deleted %d of %d)", r, r.Deleted, len(delNames))
	}
	b := sqe.NewIndexBuilder()
	for _, d := range docs {
		if !deleted[d.Name] {
			b.Add(d.Name, d.Text)
		}
	}
	oracle := sqe.NewEngine(ref.Engine.Graph(), b.Build(), opts...)
	if err := checkParity("post-delete", oracle, deleted); err != nil {
		return err
	}
	log.Printf("  ok delete+compact: %d deleted, %d survivors in %d segment(s)",
		len(delNames), r.LiveDocs, r.Segments)

	// The live gauge/counter family and the ingest endpoint counters
	// must be exported.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	mbody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics: read: %v", err)
	}
	for _, m := range []string{
		fmt.Sprintf("sqe_live_docs %d", len(docs)-len(delNames)),
		fmt.Sprintf("sqe_live_ingested_total %d", len(docs)),
		fmt.Sprintf("sqe_live_deleted_total %d", len(delNames)),
		"sqe_live_segments 1",
		"sqe_live_tombstones 0",
		"sqe_live_compactions_total 1",
		`sqe_http_requests_total{endpoint="ingest"}`,
	} {
		if !strings.Contains(string(mbody), m) {
			return fmt.Errorf("metrics: %q missing", m)
		}
	}
	log.Printf("  ok metrics: sqe_live_* family exported")

	// Mutations must be POST-only, with the typed envelope.
	resp, err = client.Get(base + "/v1/ingest")
	if err != nil {
		return fmt.Errorf("GET /v1/ingest: %v", err)
	}
	ebody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("GET /v1/ingest: read: %v", err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		return fmt.Errorf("GET /v1/ingest: HTTP %d, want 405", resp.StatusCode)
	}
	var envl struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(ebody, &envl); err != nil || envl.Error.Code == "" {
		return fmt.Errorf("GET /v1/ingest: malformed 405 envelope %q", ebody)
	}
	log.Printf("  ok GET rejected with typed 405 envelope (%s)", envl.Error.Code)
	return nil
}

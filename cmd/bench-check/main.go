// Command bench-check is the repository's benchmark regression gate,
// run by `make verify`. It validates the committed benchmark artifacts
// (BENCH_pruning.json, BENCH_blockmax.json, BENCH_shards.json,
// BENCH_expansion.json, BENCH_distributed.json, BENCH_hotpath.json)
// and — unless -fresh=false — re-runs the pruning, block-max and
// hot-path benches to compare their DETERMINISTIC counters against the
// committed numbers.
//
// What is gated, and how hard:
//
//   - Correctness flags are absolute: every committed row must report
//     bit-identical results (pruned vs exhaustive, sharded vs
//     unsharded). A false flag fails the build.
//   - Documents-scored reduction is a hard floor (-min-reduction,
//     default 2x): pruning that stops paying for itself is a
//     regression even if nothing is wrong numerically.
//   - The committed block-max wall-clock speedup is a hard floor
//     (-min-blockmax-speedup, default 1x): the artifact's claim is that
//     Block-Max pruning never loses to exhaustive DAAT on the benchmark
//     corpus, for any model. The ratio is min-of-rounds interleaved on
//     one machine, so load cancels out of it.
//   - The deterministic work counters (documents scored, postings
//     skipped) of a fresh run must EXACTLY match the committed
//     artifact: the synthetic environment is seeded, so any drift
//     means evaluator behaviour changed without regenerating the
//     artifact (`make bench-pruning`).
//   - The precomputed-expansion store's lookup speedup is a hard floor
//     (-min-store-speedup, default 10x): the store exists to make
//     expansion a hash lookup, and a lookup in the cold-expansion cost
//     class means the subsystem regressed. The ratio comes from one
//     machine in one run, so load largely cancels out of it.
//   - The committed hot-path artifact carries the streaming-cursor
//     claims: bit-identity absolute on every row; the decoded-block
//     fraction must stay under -max-decoded-fraction (default 0.60) and
//     the cold streaming-vs-eager speedup at or above
//     -min-hotpath-speedup (default 1.3) on the quoted (Dirichlet) row;
//     the pooled-scratch allocation reduction must hold
//     -min-alloc-reduction (default 10x) on every row. The ratios are
//     min-of-rounds interleaved on one machine, so load cancels out.
//   - Wall-clock gets only a wide sanity band (-max-slowdown, default
//     3x, fresh run only): ns/query on a loaded CI box routinely
//     swings 2x either way, so the band exists to catch catastrophic
//     slowdowns (an accidental O(n^2)), not to measure performance.
//     Committed ns values are never compared across machines.
//
// Exit status is non-zero on any failure, with one line per check so
// the log shows exactly which gate tripped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-check: ")
	pruningPath := flag.String("pruning", "BENCH_pruning.json", "committed pruning bench artifact")
	blockmaxPath := flag.String("blockmax", "BENCH_blockmax.json", "committed block-max bench artifact")
	shardsPath := flag.String("shards", "BENCH_shards.json", "committed shard bench artifact")
	expansionPath := flag.String("expansion", "BENCH_expansion.json", "committed expansion bench artifact")
	distributedPath := flag.String("distributed", "BENCH_distributed.json", "committed sqe-load artifact (empty = skip)")
	hotpathPath := flag.String("hotpath", "BENCH_hotpath.json", "committed streaming hot-path bench artifact")
	minReduction := flag.Float64("min-reduction", 2.0, "documents-scored reduction floor every model must sustain")
	minStoreSpeedup := flag.Float64("min-store-speedup", 10.0, "precomputed-store lookup must beat cold expansion by at least this factor")
	minBlockMaxSpeedup := flag.Float64("min-blockmax-speedup", 1.0, "committed block-max wall-clock speedup floor: pruned must not lose to exhaustive for any model")
	minHotpathSpeedup := flag.Float64("min-hotpath-speedup", 1.3, "committed cold streaming-vs-eager speedup floor on the quoted (dirichlet) hot-path row")
	maxDecodedFraction := flag.Float64("max-decoded-fraction", 0.60, "committed decoded-block fraction ceiling on the quoted (dirichlet) hot-path row")
	minAllocReduction := flag.Float64("min-alloc-reduction", 10.0, "pooled scratch must cut allocations per query by at least this factor, every model")
	maxSlowdown := flag.Float64("max-slowdown", 3.0, "fresh-run wall-clock band: pruned ns/query must stay under full x this")
	fresh := flag.Bool("fresh", true, "re-run the pruning bench and compare deterministic counters")
	flag.Parse()

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL  "+format+"\n", args...)
	}
	ok := func(format string, args ...any) {
		fmt.Printf("ok    "+format+"\n", args...)
	}

	// Committed pruning artifact.
	var committed experiments.PruningBenchResult
	if err := loadJSON(*pruningPath, &committed); err != nil {
		log.Fatal(err)
	}
	if len(committed.Rows) == 0 {
		fail("%s: no rows", *pruningPath)
	}
	for _, row := range committed.Rows {
		switch {
		case !row.Identical:
			fail("%s/%s: committed run was not bit-identical to the exhaustive evaluator", *pruningPath, row.Model)
		case row.DocsScoredPruned > row.DocsScoredFull:
			fail("%s/%s: pruned path scored more documents (%d) than the exhaustive one (%d)",
				*pruningPath, row.Model, row.DocsScoredPruned, row.DocsScoredFull)
		case row.Reduction < *minReduction:
			fail("%s/%s: documents-scored reduction %.2fx below the %.2fx floor",
				*pruningPath, row.Model, row.Reduction, *minReduction)
		case row.DocsSkipped == 0:
			fail("%s/%s: pruning skipped no postings at all", *pruningPath, row.Model)
		default:
			ok("%s/%s: bit-identical, %.2fx fewer documents scored (floor %.2fx)",
				*pruningPath, row.Model, row.Reduction, *minReduction)
		}
	}

	// Committed block-max artifact. The identity flag and the
	// work-counter sanity are absolute, like the pruning rows. The
	// wall-clock speedup ALSO gets a hard floor here — the one committed
	// ratio gate in the file — because the artifact's reason to exist is
	// the claim that Block-Max pruning does not lose to the exhaustive
	// evaluator on the benchmark corpus for any retrieval model. The
	// ratio comes from interleaved min-of-rounds passes on one machine,
	// so machine load largely cancels out of it (same policy as the
	// store speedup floor above).
	var blockmax experiments.BlockMaxBenchResult
	if err := loadJSON(*blockmaxPath, &blockmax); err != nil {
		log.Fatal(err)
	}
	if len(blockmax.Rows) == 0 {
		fail("%s: no rows", *blockmaxPath)
	}
	for _, row := range blockmax.Rows {
		switch {
		case !row.Identical:
			fail("%s/%s: committed run was not bit-identical (pruned vs exhaustive vs in-memory)", *blockmaxPath, row.Model)
		case row.DocsScoredPruned > row.DocsScoredFull:
			fail("%s/%s: pruned path scored more documents (%d) than the exhaustive one (%d)",
				*blockmaxPath, row.Model, row.DocsScoredPruned, row.DocsScoredFull)
		case row.Reduction < *minReduction:
			fail("%s/%s: documents-scored reduction %.2fx below the %.2fx floor",
				*blockmaxPath, row.Model, row.Reduction, *minReduction)
		case row.BlockBoundEvals == 0:
			fail("%s/%s: per-block bounds were never consulted — the Block-Max tier is dead on this workload",
				*blockmaxPath, row.Model)
		case row.Speedup < *minBlockMaxSpeedup:
			fail("%s/%s: wall-clock speedup %.2fx below the %.2fx floor — pruning lost to the exhaustive evaluator",
				*blockmaxPath, row.Model, row.Speedup, *minBlockMaxSpeedup)
		default:
			ok("%s/%s: bit-identical, %.2fx fewer documents scored, %.2fx faster (floor %.2fx)",
				*blockmaxPath, row.Model, row.Reduction, row.Speedup, *minBlockMaxSpeedup)
		}
	}

	// Committed shard artifact: the identity flags are the contract;
	// shard-count wall clocks are machine-dependent and not gated.
	var shards experiments.ShardBenchResult
	if err := loadJSON(*shardsPath, &shards); err != nil {
		log.Fatal(err)
	}
	if len(shards.Rows) == 0 {
		fail("%s: no rows", *shardsPath)
	}
	for _, row := range shards.Rows {
		if !row.Identical {
			fail("%s/S=%d: committed run was not identical to unsharded retrieval", *shardsPath, row.Shards)
		} else {
			ok("%s/S=%d: identical to unsharded", *shardsPath, row.Shards)
		}
	}

	// Committed expansion artifact: byte-identity of the lookup paths is
	// absolute; the store-vs-cold speedup is a ratio measured on one
	// machine in one run (load cancels out of the ratio), so it gets a
	// hard floor rather than an exact match. No fresh re-run: the bench
	// has no deterministic work counters beyond the identity flag, and
	// the serving-layer parity is exercised by `make precompute-smoke`.
	var expansion experiments.ExpansionBenchResult
	if err := loadJSON(*expansionPath, &expansion); err != nil {
		log.Fatal(err)
	}
	switch {
	case !expansion.Identical:
		fail("%s: committed run's lookup paths were not bit-identical to cold expansion", *expansionPath)
	case expansion.Entries == 0 || expansion.Workload == 0:
		fail("%s: empty workload (%d pairs, %d entries)", *expansionPath, expansion.Workload, expansion.Entries)
	case expansion.SpeedupStoreVsCold < *minStoreSpeedup:
		fail("%s: precomputed lookup only %.1fx faster than cold expansion — below the %.1fx floor",
			*expansionPath, expansion.SpeedupStoreVsCold, *minStoreSpeedup)
	default:
		ok("%s: bit-identical, store %.1fx and warm LRU %.1fx vs cold (floor %.1fx)",
			*expansionPath, expansion.SpeedupStoreVsCold, expansion.SpeedupLRUVsCold, *minStoreSpeedup)
	}

	// Committed distributed-load artifact (written by sqe-load, usually
	// via `make load-smoke`): the correctness fields are the contract —
	// an open-loop run with zero transport errors, zero degradation on a
	// healthy topology, and the p99 SLO verdict holding. The latency
	// numbers themselves are one machine's measurement and are only
	// gated through that (generous) SLO flag, mirroring the wall-clock
	// policy above.
	if *distributedPath != "" {
		var dist experiments.LoadBenchResult
		if err := loadJSON(*distributedPath, &dist); err != nil {
			log.Fatal(err)
		}
		switch {
		case !dist.OpenLoop:
			fail("%s: run was not open-loop; the offered-rate discipline is part of the artifact's meaning", *distributedPath)
		case dist.Requests == 0 || dist.Completed == 0:
			fail("%s: empty run (%d requests, %d completed)", *distributedPath, dist.Requests, dist.Completed)
		case dist.Errors > 0:
			fail("%s: %d transport/status errors — a healthy topology must serve every request", *distributedPath, dist.Errors)
		case dist.Degraded > 0:
			fail("%s: %d degraded responses with every shard up", *distributedPath, dist.Degraded)
		case !dist.SLOMet || dist.P99Ms > dist.SLOp99Ms:
			fail("%s: p99 %.2fms missed the %.0fms SLO", *distributedPath, dist.P99Ms, dist.SLOp99Ms)
		default:
			ok("%s: %d/%d open-loop requests ok, p99 %.2fms within the %.0fms SLO",
				*distributedPath, dist.Completed, dist.Requests, dist.P99Ms, dist.SLOp99Ms)
		}
	}

	// Committed hot-path artifact: three-way bit-identity (streaming
	// pruned vs exhaustive-over-v2 vs exhaustive-over-memory) is
	// absolute on every row, as is the pooled-scratch allocation floor —
	// the pool either eliminates per-query allocation or it regressed.
	// The decode-granularity claims — most blocks never decoded, cold
	// first-result faster than the eager whole-term materialiser — are
	// gated on the row the README quotes (Dirichlet, the paper's primary
	// model): the other models keep their fractions printed here, but
	// their block-visit pattern is a property of the scoring
	// distribution, not of the cursor machinery under test. Both ratios
	// are interleaved min-of-rounds numbers from one machine, so load
	// cancels out (same policy as the block-max speedup floor).
	var hot experiments.HotpathBenchResult
	if err := loadJSON(*hotpathPath, &hot); err != nil {
		log.Fatal(err)
	}
	if len(hot.Rows) == 0 {
		fail("%s: no rows", *hotpathPath)
	}
	for _, row := range hot.Rows {
		quoted := row.Model == "dirichlet"
		switch {
		case !row.Identical:
			fail("%s/%s: committed run was not bit-identical (streaming vs exhaustive vs in-memory)", *hotpathPath, row.Model)
		case row.BlocksTotal == 0 || row.BlocksDecoded == 0:
			fail("%s/%s: streaming decoded no blocks at all — the cursor tier is dead on this workload", *hotpathPath, row.Model)
		case row.AllocReduction < *minAllocReduction:
			fail("%s/%s: pooled scratch only cut allocations %.1fx (%.1f -> %.1f per query) — below the %.1fx floor",
				*hotpathPath, row.Model, row.AllocReduction, row.AllocsUnpooled, row.AllocsPooled, *minAllocReduction)
		case quoted && row.DecodedFraction >= *maxDecodedFraction:
			fail("%s/%s: streaming decoded %.1f%% of blocks — at or above the %.0f%% ceiling",
				*hotpathPath, row.Model, 100*row.DecodedFraction, 100**maxDecodedFraction)
		case quoted && row.SpeedupCold < *minHotpathSpeedup:
			fail("%s/%s: cold streaming speedup %.2fx below the %.2fx floor — block cursors lost to eager materialisation",
				*hotpathPath, row.Model, row.SpeedupCold, *minHotpathSpeedup)
		default:
			ok("%s/%s: bit-identical, %.1f%% of blocks decoded, cold %.2fx vs eager, allocs/query %.1fx down",
				*hotpathPath, row.Model, 100*row.DecodedFraction, row.SpeedupCold, row.AllocReduction)
		}
	}

	// Fresh run: regenerate the seeded environment and demand the
	// deterministic counters match the artifact exactly. One rep is
	// enough — reps only smooth the (ungated) wall clock.
	if *fresh {
		suite, err := experiments.NewSuite(dataset.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		got := experiments.PruningBench(suite, suite.ImageCLEF, committed.K, 1)
		if len(got.Rows) != len(committed.Rows) {
			fail("fresh run produced %d rows, artifact has %d", len(got.Rows), len(committed.Rows))
		}
		for i, row := range got.Rows {
			if i >= len(committed.Rows) {
				break
			}
			want := committed.Rows[i]
			switch {
			case row.Model != want.Model:
				fail("fresh/%s: artifact row %d is %s — row order changed", row.Model, i, want.Model)
			case !row.Identical:
				fail("fresh/%s: pruned results diverged from the exhaustive evaluator", row.Model)
			case row.DocsScoredFull != want.DocsScoredFull ||
				row.DocsScoredPruned != want.DocsScoredPruned ||
				row.DocsSkipped != want.DocsSkipped:
				fail("fresh/%s: counters (full=%d pruned=%d skipped=%d) != artifact (full=%d pruned=%d skipped=%d); evaluator behaviour changed — regenerate with `make bench-pruning`",
					row.Model, row.DocsScoredFull, row.DocsScoredPruned, row.DocsSkipped,
					want.DocsScoredFull, want.DocsScoredPruned, want.DocsSkipped)
			case row.NsPrunedPerQry > row.NsFullPerQry*(*maxSlowdown):
				fail("fresh/%s: pruned %.0f ns/query vs full %.0f — beyond the %.1fx sanity band",
					row.Model, row.NsPrunedPerQry, row.NsFullPerQry, *maxSlowdown)
			default:
				ok("fresh/%s: counters match artifact, wall clock within %.1fx band", row.Model, *maxSlowdown)
			}
		}
	}

	// Fresh block-max run, at the artifact's own (benchmark) scale: the
	// deterministic counters — documents scored, postings skipped, block
	// bounds consulted — must match the committed artifact exactly, and
	// the identity flag must hold over the freshly written v2 file. The
	// wall clock gets only the sanity band; the ≥1x speedup floor above
	// applies to the committed min-of-rounds numbers, not to a one-round
	// run on a possibly loaded box.
	if *fresh {
		suite, err := experiments.NewSuite(dataset.ScaleDefault)
		if err != nil {
			log.Fatal(err)
		}
		got, err := experiments.BlockMaxBench(suite, experiments.DefaultBlockMaxInstance(suite), blockmax.K, 1)
		if err != nil {
			log.Fatal(err)
		}
		if got.Dataset != blockmax.Dataset {
			fail("fresh-blockmax: instance %q, artifact has %q", got.Dataset, blockmax.Dataset)
		}
		if len(got.Rows) != len(blockmax.Rows) {
			fail("fresh-blockmax: %d rows, artifact has %d", len(got.Rows), len(blockmax.Rows))
		}
		for i, row := range got.Rows {
			if i >= len(blockmax.Rows) {
				break
			}
			want := blockmax.Rows[i]
			switch {
			case row.Model != want.Model:
				fail("fresh-blockmax/%s: artifact row %d is %s — row order changed", row.Model, i, want.Model)
			case !row.Identical:
				fail("fresh-blockmax/%s: results diverged (pruned vs exhaustive vs in-memory)", row.Model)
			case row.DocsScoredFull != want.DocsScoredFull ||
				row.DocsScoredPruned != want.DocsScoredPruned ||
				row.DocsSkipped != want.DocsSkipped ||
				row.BlockBoundEvals != want.BlockBoundEvals:
				fail("fresh-blockmax/%s: counters (full=%d pruned=%d skipped=%d blocks=%d) != artifact (full=%d pruned=%d skipped=%d blocks=%d); evaluator behaviour changed — regenerate with `make bench-blockmax`",
					row.Model, row.DocsScoredFull, row.DocsScoredPruned, row.DocsSkipped, row.BlockBoundEvals,
					want.DocsScoredFull, want.DocsScoredPruned, want.DocsSkipped, want.BlockBoundEvals)
			case row.NsPrunedPerQry > row.NsFullPerQry*(*maxSlowdown):
				fail("fresh-blockmax/%s: pruned %.0f ns/query vs full %.0f — beyond the %.1fx sanity band",
					row.Model, row.NsPrunedPerQry, row.NsFullPerQry, *maxSlowdown)
			default:
				ok("fresh-blockmax/%s: counters match artifact, wall clock within %.1fx band", row.Model, *maxSlowdown)
			}
		}

		// Fresh hot-path run over the same benchmark-scale suite: the
		// decoded/total block counters are fully deterministic (seeded
		// corpus, fixed bench block size, pruning decisions made on exact
		// counters), so they must match the committed artifact exactly,
		// as must the bench's block size and projected-workload width.
		// Ratios and percentiles are this machine's one-round numbers:
		// the cold legs get only the sanity band, the committed floors
		// above stay the real gate.
		hotFresh, err := experiments.HotpathBench(suite, experiments.DefaultHotpathInstance(suite), hot.K, 1)
		if err != nil {
			log.Fatal(err)
		}
		if hotFresh.Dataset != hot.Dataset {
			fail("fresh-hotpath: instance %q, artifact has %q", hotFresh.Dataset, hot.Dataset)
		}
		if hotFresh.BlockSize != hot.BlockSize || hotFresh.TermQueries != hot.TermQueries {
			fail("fresh-hotpath: bench shape (block size %d, %d projected queries) != artifact (%d, %d); regenerate with `make bench-hotpath`",
				hotFresh.BlockSize, hotFresh.TermQueries, hot.BlockSize, hot.TermQueries)
		}
		if len(hotFresh.Rows) != len(hot.Rows) {
			fail("fresh-hotpath: %d rows, artifact has %d", len(hotFresh.Rows), len(hot.Rows))
		}
		for i, row := range hotFresh.Rows {
			if i >= len(hot.Rows) {
				break
			}
			want := hot.Rows[i]
			switch {
			case row.Model != want.Model:
				fail("fresh-hotpath/%s: artifact row %d is %s — row order changed", row.Model, i, want.Model)
			case !row.Identical:
				fail("fresh-hotpath/%s: results diverged (streaming vs exhaustive vs in-memory)", row.Model)
			case row.BlocksDecoded != want.BlocksDecoded || row.BlocksTotal != want.BlocksTotal:
				fail("fresh-hotpath/%s: decoded %d of %d blocks, artifact says %d of %d; cursor behaviour changed — regenerate with `make bench-hotpath`",
					row.Model, row.BlocksDecoded, row.BlocksTotal, want.BlocksDecoded, want.BlocksTotal)
			case row.NsColdStreamPerQry > row.NsColdEagerPerQry*(*maxSlowdown):
				fail("fresh-hotpath/%s: cold streaming %.0f ns/query vs eager %.0f — beyond the %.1fx sanity band",
					row.Model, row.NsColdStreamPerQry, row.NsColdEagerPerQry, *maxSlowdown)
			default:
				ok("fresh-hotpath/%s: %.1f%% of blocks decoded matches artifact, wall clock within %.1fx band",
					row.Model, 100*row.DecodedFraction, *maxSlowdown)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("bench-check: OK")
}

func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

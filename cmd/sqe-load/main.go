// Command sqe-load is an open-loop load generator for the sqe serving
// layer: it fires /v1/search and /v1/baseline requests on a fixed clock
// — NOT waiting for completions, so a slowing server faces the same
// offered rate a real client population would — and reports the latency
// distribution (p50/p90/p99, cumulative histogram) plus error, shed and
// degraded counts as a JSON artifact.
//
// Usage:
//
//	sqe-load -url http://host:8344 [-rate 100] [-duration 10s] [-k 10]
//	         [-scale small] [-slo-p99 500ms] [-out BENCH_distributed.json]
//	sqe-load -self-serve [-shards 2] ...
//
// -url targets a running sqe-serve (any mode). -self-serve instead
// boots the full distributed stack in this process: N shard servers on
// loopback TCP (the real RPC wire protocol), a coordinator engine over
// them, and the HTTP layer — so `make load-smoke` measures the whole
// serving path with zero external orchestration. The artifact
// (BENCH_distributed.json) is gated by cmd/bench-check: zero errors,
// zero degradation on a healthy topology, and p99 within the SLO.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sqe "repro"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/rpc"
	"repro/internal/search"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqe-load: ")
	target := flag.String("url", "", "base URL of a running sqe-serve (e.g. http://127.0.0.1:8344)")
	selfServe := flag.Bool("self-serve", false, "boot shard servers + coordinator + HTTP in-process and load-test that")
	shards := flag.Int("shards", 2, "shard count for -self-serve")
	rate := flag.Float64("rate", 100, "offered request rate per second (open loop)")
	duration := flag.Duration("duration", 10*time.Second, "generation window")
	k := flag.Int("k", 10, "result depth per request")
	scaleFlag := flag.String("scale", "small", "demo corpus scale: small|default (supplies the query mix)")
	sloP99 := flag.Duration("slo-p99", 500*time.Millisecond, "p99 latency SLO the run is gated against")
	out := flag.String("out", "", "write the JSON artifact here (e.g. BENCH_distributed.json)")
	flag.Parse()

	if (*target == "") == !*selfServe {
		log.Fatal("exactly one of -url or -self-serve is required")
	}
	scale := sqe.DemoSmall
	if *scaleFlag == "default" {
		scale = sqe.DemoDefault
	}
	log.Println("generating demo environment …")
	env, err := sqe.GenerateDemo(scale)
	if err != nil {
		log.Fatal(err)
	}

	base := *target
	targetDesc := *target
	if *selfServe {
		var cleanup func()
		base, cleanup, err = bootSelfServe(env, *shards)
		if err != nil {
			log.Fatal(err)
		}
		defer cleanup()
		targetDesc = fmt.Sprintf("self-serve distributed S=%d", *shards)
	}

	res := run(base, targetDesc, env, *rate, *duration, *k, *sloP99)
	fmt.Print(res.String())
	if *out != "" {
		data, err := res.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if !res.SLOMet {
		log.Fatalf("SLO MISSED: p99 %.2fms > %.0fms or errors present", res.P99Ms, res.SLOp99Ms)
	}
}

// bootSelfServe stands up the whole distributed serving path in one
// process: real RPC shard servers on loopback TCP, a coordinator engine
// over replica groups, and the HTTP layer on an ephemeral port.
func bootSelfServe(env *sqe.DemoEnv, shards int) (base string, cleanup func(), err error) {
	var closers []func()
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	sh := index.NewSharded(env.Engine.Index(), shards)
	groups := make([]*rpc.Group, sh.NumShards())
	for i := range groups {
		srv := rpc.NewServer()
		search.NewShardService(sh.Shard(i), i, sh.NumShards()).Register(srv)
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			cleanup()
			return "", nil, lerr
		}
		go func() { _ = srv.Serve(ln) }()
		closers = append(closers, srv.Close)
		c := rpc.NewClient(ln.Addr().String(), rpc.ClientOptions{MaxRetries: -1})
		closers = append(closers, c.Close)
		groups[i] = rpc.NewGroup([]*rpc.Client{c}, rpc.GroupOptions{})
	}
	remote, err := search.NewRemoteSharded(context.Background(), groups)
	if err != nil {
		cleanup()
		return "", nil, err
	}
	eng := sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(),
		sqe.WithExpansionCache(4096),
		sqe.WithDistributedSearcher(remote),
		sqe.WithDegradation(sqe.DefaultDegradation()))
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: serve.New(serve.Config{Engine: eng})}
	go func() { _ = httpSrv.Serve(httpLn) }()
	closers = append(closers, func() { _ = httpSrv.Close() })
	log.Printf("self-serve: %d shard servers + coordinator + HTTP on %s", shards, httpLn.Addr())
	return "http://" + httpLn.Addr().String(), cleanup, nil
}

// sample is one request's outcome.
type sample struct {
	ms       float64
	status   int
	degraded bool
	err      bool
}

// run drives the open loop: one request per tick for the duration, each
// in its own goroutine, then drains and summarises.
func run(base, targetDesc string, env *sqe.DemoEnv, rate float64, duration time.Duration, k int, sloP99 time.Duration) *experiments.LoadBenchResult {
	// Pre-build the request mix: SQE_C searches over every demo query
	// plus baselines, round-robined by the ticker.
	var paths []string
	for i := range env.Queries {
		q := &env.Queries[i]
		params := fmt.Sprintf("q=%s&entities=%s&k=%d",
			url.QueryEscape(q.Text), url.QueryEscape(strings.Join(q.EntityTitles, ",")), k)
		paths = append(paths,
			"/v1/search?"+params,
			"/v1/baseline?q="+url.QueryEscape(q.Text)+fmt.Sprintf("&k=%d", k))
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		// The open loop can hold many requests in flight; do not let the
		// default two-per-host idle cap serialise them.
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	}
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(duration)

	var wg sync.WaitGroup
	var fired atomic.Int64
	samples := make(chan sample, int(rate*duration.Seconds())*2+16)
	log.Printf("offering %.0f req/s for %s against %s …", rate, duration, base)
loop:
	for i := 0; ; i++ {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			fired.Add(1)
			path := paths[i%len(paths)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				resp, err := client.Get(base + path)
				s := sample{ms: float64(time.Since(start).Microseconds()) / 1000}
				if err != nil {
					s.err = true
				} else {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					s.status = resp.StatusCode
					s.degraded = resp.Header.Get(serve.DegradedHeader) != ""
					// Latency is re-measured after the body drain so the
					// sample covers the full response, not just headers.
					s.ms = float64(time.Since(start).Microseconds()) / 1000
				}
				samples <- s
			}()
		}
	}
	wg.Wait()
	close(samples)

	res := &experiments.LoadBenchResult{
		Target:     targetDesc,
		OpenLoop:   true,
		RateHz:     rate,
		DurationS:  duration.Seconds(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Requests:   fired.Load(),
		SLOp99Ms:   float64(sloP99.Microseconds()) / 1000,
	}
	var okMs []float64
	for s := range samples {
		switch {
		case s.err:
			res.Errors++
		case s.status == http.StatusOK:
			res.Completed++
			okMs = append(okMs, s.ms)
			if s.degraded {
				res.Degraded++
			}
		case s.status == http.StatusTooManyRequests:
			res.Shed++
		default:
			res.Errors++
		}
	}
	sort.Float64s(okMs)
	res.LoadPercentiles(okMs)
	return res
}

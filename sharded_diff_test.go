package sqe

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// shardedPair builds an unsharded reference engine and a sharded engine
// over the shared demo substrates with identical retrieval options.
func shardedPair(t *testing.T, shards int, opts ...Option) (*Engine, *Engine) {
	t.Helper()
	e := demo(t)
	ref := NewEngine(e.Engine.Graph(), e.Engine.Index(), opts...)
	sharded := NewEngine(e.Engine.Graph(), e.Engine.Index(), append([]Option{WithShards(shards)}, opts...)...)
	return ref, sharded
}

// TestEngineShardedBitIdentical is the engine-level differential gate
// for the tentpole: for S ∈ {1,2,4,8} and all three retrieval models,
// every pipeline configuration must return rankings and scores
// bit-identical (DeepEqual, no tolerance) to the unsharded engine.
func TestEngineShardedBitIdentical(t *testing.T) {
	e := demo(t)
	models := []struct {
		name string
		opts []Option
	}{
		{"dirichlet", nil},
		{"jelinek-mercer", []Option{WithRetrievalModel(ModelJelinekMercer, ModelParams{Lambda: 0.4})}},
		{"bm25", []Option{WithRetrievalModel(ModelBM25, ModelParams{})}},
	}
	for _, m := range models {
		for _, s := range []int{1, 2, 4, 8} {
			ref, sh := shardedPair(t, s, m.opts...)
			if s > 1 && sh.Shards() != s {
				t.Fatalf("%s S=%d: Shards()=%d", m.name, s, sh.Shards())
			}
			for _, q := range e.Queries {
				for _, req := range []SearchRequest{
					{Query: q.Text, EntityTitles: q.EntityTitles, K: 10},                    // SQE_C
					{Query: q.Text, EntityTitles: q.EntityTitles, K: 300},                   // SQE_C past the splice ranks
					{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 25}, // single set
					{Query: q.Text, K: 25, Baseline: true},                                  // QL_Q
				} {
					want, err := ref.Do(context.Background(), req)
					if err != nil {
						t.Fatalf("%s S=%d %s: unsharded: %v", m.name, s, q.ID, err)
					}
					got, err := sh.Do(context.Background(), req)
					if err != nil {
						t.Fatalf("%s S=%d %s: sharded: %v", m.name, s, q.ID, err)
					}
					if !reflect.DeepEqual(want.Results, got.Results) {
						t.Fatalf("%s S=%d %s k=%d set=%v baseline=%v: sharded results diverge",
							m.name, s, q.ID, req.K, req.MotifSet, req.Baseline)
					}
					if !reflect.DeepEqual(want.Expansion, got.Expansion) {
						t.Fatalf("%s S=%d %s: expansions diverge", m.name, s, q.ID)
					}
				}
			}
		}
	}
}

// TestEngineShardedPRFBitIdentical covers the PRF reformulation path:
// the feedback pass runs unsharded on both engines, so the final
// retrieval must agree exactly.
func TestEngineShardedPRFBitIdentical(t *testing.T) {
	e := demo(t)
	ref, sh := shardedPair(t, 4)
	cfg := PRFConfig{FbDocs: 5, FbTerms: 10, OrigWeight: 0.5}
	for _, q := range e.Queries[:3] {
		want, err := ref.Do(context.Background(), SearchRequest{
			Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifT, K: 20, PRF: &cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Do(context.Background(), SearchRequest{
			Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifT, K: 20, PRF: &cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Fatalf("%s: sharded PRF results diverge", q.ID)
		}
	}
}

// TestEngineShardedDeprecatedPaths drives the deprecated wrappers on a
// sharded engine — they route retrieval through the shards too.
func TestEngineShardedDeprecatedPaths(t *testing.T) {
	e := demo(t)
	ref, sh := shardedPair(t, 4)
	q := e.Queries[0]
	ws, _ := ref.Search(q.Text, q.EntityTitles, 15)
	gs, err := sh.Search(q.Text, q.EntityTitles, 15)
	if err != nil || !reflect.DeepEqual(ws, gs) {
		t.Fatalf("Search diverges on sharded engine (err=%v)", err)
	}
	wb, _ := ref.BaselineSearch(q.Text, 15)
	gb, err := sh.BaselineSearch(q.Text, 15)
	if err != nil || !reflect.DeepEqual(wb, gb) {
		t.Fatalf("BaselineSearch diverges on sharded engine (err=%v)", err)
	}
	wp, err := ref.ParseQuery("#weight(0.7 cable 0.3 car)", 15)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := sh.ParseQuery("#weight(0.7 cable 0.3 car)", 15)
	if err != nil || !reflect.DeepEqual(wp, gp) {
		t.Fatalf("ParseQuery diverges on sharded engine (err=%v)", err)
	}
}

// TestEngineShardedLegacyScorer: the legacy scorer has no sharded
// variant; WithShards + WithLegacyScorer must keep the reference
// (unsharded legacy) results.
func TestEngineShardedLegacyScorer(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	ref := NewEngine(e.Engine.Graph(), e.Engine.Index())
	leg := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithShards(4), WithLegacyScorer())
	req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10}
	want, _ := ref.Do(context.Background(), req)
	got, err := leg.Do(context.Background(), req)
	if err != nil || !reflect.DeepEqual(want.Results, got.Results) {
		t.Fatalf("legacy+sharded diverges (err=%v)", err)
	}
}

// TestEngineShardedStats: on a sharded engine CollectStats must expose
// one ShardStats entry per shard per retrieval, and the deterministic
// counters must match the unsharded engine's.
func TestEngineShardedStats(t *testing.T) {
	e := demo(t)
	// The exact-partition property below ("shards split the candidate
	// set") only holds for exhaustive evaluation: with pruning on, each
	// shard prunes against its own threshold and does incomparable
	// amounts of work. Pruned-mode stats invariants are covered in
	// TestEnginePruningStats.
	ref, sh := shardedPair(t, 4, WithPruning(false))
	q := e.Queries[0]
	req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 10, CollectStats: true}
	want, err := ref.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats == nil {
		t.Fatal("CollectStats returned nil Stats")
	}
	if len(got.Stats.Search.Shards) != 4 {
		t.Fatalf("Shards stats entries = %d, want 4", len(got.Stats.Search.Shards))
	}
	if len(want.Stats.Search.Shards) != 0 {
		t.Fatalf("unsharded engine reported shard stats: %d", len(want.Stats.Search.Shards))
	}
	// Work counters partition exactly across shards.
	if got.Stats.Search.CandidatesExamined != want.Stats.Search.CandidatesExamined ||
		got.Stats.Search.PostingsAdvanced != want.Stats.Search.PostingsAdvanced ||
		got.Stats.Search.Leaves != want.Stats.Search.Leaves {
		t.Fatalf("sharded counters diverge: sharded=%+v unsharded=%+v", got.Stats.Search, want.Stats.Search)
	}
	var cands int64
	for _, s := range got.Stats.Search.Shards {
		cands += s.CandidatesExamined
	}
	if cands != got.Stats.Search.CandidatesExamined {
		t.Fatalf("per-shard candidates %d != aggregate %d", cands, got.Stats.Search.CandidatesExamined)
	}
}

// TestWithShardsClamp: shard counts beyond the corpus clamp; 0 and 1
// keep the unsharded path.
func TestWithShardsClamp(t *testing.T) {
	e := demo(t)
	docs := e.Engine.Index().NumDocs()
	if got := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithShards(docs+100)).Shards(); got != docs {
		t.Fatalf("Shards()=%d, want clamp to NumDocs=%d", got, docs)
	}
	for _, n := range []int{0, 1, -3} {
		if got := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithShards(n)).Shards(); got != 1 {
			t.Fatalf("WithShards(%d): Shards()=%d, want 1", n, got)
		}
	}
}

// TestEngineShardedCancellation: cancellation surfaces from a sharded
// engine's Do.
func TestEngineShardedCancellation(t *testing.T) {
	e := demo(t)
	_, sh := shardedPair(t, 4)
	q := e.Queries[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sh.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

package sqe

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/motif"
)

// ablation names one expander/matcher configuration under test.
type ablation struct {
	name  string
	apply func(e *core.Expander)
}

var parityAblations = []ablation{
	{"paper-defaults", func(e *core.Expander) {}},
	{"single-link", func(e *core.Expander) { e.Matcher().RequireReciprocal = false }},
	{"no-categories", func(e *core.Expander) { e.Matcher().UseCategories = false }},
	{"uniform-capped", func(e *core.Expander) {
		e.UniformFeatureWeights = true
		e.MaxFeatures = 4
	}},
}

// demoEntitySets resolves every demo query's manual entity titles into
// node sets, the workload sqe-precompute enumerates from a query log.
func demoEntitySets(t *testing.T, env *DemoEnv) [][]NodeID {
	t.Helper()
	sets := make([][]NodeID, 0, len(env.Queries))
	for i := range env.Queries {
		q := &env.Queries[i]
		nodes, err := env.Engine.resolveEntities(q.Text, q.EntityTitles)
		if err != nil {
			t.Fatalf("query %s: %v", q.ID, err)
		}
		if len(nodes) > 0 {
			sets = append(sets, nodes)
		}
	}
	if len(sets) == 0 {
		t.Fatal("demo produced no entity sets")
	}
	return sets
}

// buildDemoStore precomputes a store file for the demo workload under
// the given ablation and reopens it through the public API.
func buildDemoStore(t *testing.T, env *DemoEnv, ab ablation) *ExpansionStore {
	t.Helper()
	// Build entries with a scratch engine so the serving engines' own
	// expanders stay untouched until the test configures them.
	scratch := NewEngine(env.Engine.Graph(), env.Engine.Index())
	ab.apply(scratch.Expander())
	entries := core.PrecomputeEntries(scratch.Expander(), demoEntitySets(t, env), []MotifSet{MotifT, MotifTS, MotifS})
	path := filepath.Join(t.TempDir(), "expansions.store")
	if err := core.WriteStoreFile(path, env.Engine.Graph().ContentHash(), entries); err != nil {
		t.Fatal(err)
	}
	st, err := OpenExpansionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPrecomputedStoreParity is the PR's acceptance criterion: a query
// served from the precomputed store must be byte-identical — scores,
// ordering, feature lists — to the same query served by live expansion,
// across every motif set (including the SQE_C splice) and every
// matcher/expander ablation combination.
func TestPrecomputedStoreParity(t *testing.T) {
	base := MustGenerateDemo(DemoSmall)
	for _, ab := range parityAblations {
		t.Run(ab.name, func(t *testing.T) {
			store := buildDemoStore(t, base, ab)

			live := MustGenerateDemo(DemoSmall)
			ab.apply(live.Engine.Expander())

			// GenerateDemo is deterministic, so the second environment's KB
			// hashes identically and the engine keeps the store.
			stored := MustGenerateDemo(DemoSmall, WithPrecomputedExpansions(store))
			ab.apply(stored.Engine.Expander())
			if st, ok := stored.Engine.ExpansionStoreStats(); !ok || st.Stale {
				t.Fatalf("store not attached or stale: %+v ok=%v", st, ok)
			}

			ctx := context.Background()
			for _, set := range []MotifSet{0 /* SQE_C */, MotifT, MotifTS, MotifS} {
				for i := range base.Queries {
					q := &base.Queries[i]
					req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: set, K: 50}
					want, err := live.Engine.Do(ctx, req)
					if err != nil {
						t.Fatalf("live %s set %v: %v", q.ID, set, err)
					}
					got, err := stored.Engine.Do(ctx, req)
					if err != nil {
						t.Fatalf("stored %s set %v: %v", q.ID, set, err)
					}
					if !reflect.DeepEqual(want.Results, got.Results) {
						t.Fatalf("query %s set %v: store-served ranking differs\nlive:   %+v\nstored: %+v",
							q.ID, set, want.Results, got.Results)
					}
					if !reflect.DeepEqual(want.Expansion, got.Expansion) {
						t.Fatalf("query %s set %v: store-served expansion differs", q.ID, set)
					}
				}
			}
			// The runs above must actually have exercised the store (the
			// demo engine has no LRU cache, so every manual-entity query
			// hits it directly).
			if st, _ := stored.Engine.ExpansionStoreStats(); st.Hits == 0 {
				t.Fatalf("parity run never hit the store: %+v", st)
			}
		})
	}
}

// TestPrecomputedStoreConfigMismatchMisses: a store built under one
// configuration simply misses for an engine serving another — it never
// serves the wrong graphs, and parity against live expansion holds
// through the fall-through build.
func TestPrecomputedStoreConfigMismatchMisses(t *testing.T) {
	base := MustGenerateDemo(DemoSmall)
	store := buildDemoStore(t, base, parityAblations[0]) // paper defaults

	flip := parityAblations[1] // single-link: changes the key's condition bits
	live := MustGenerateDemo(DemoSmall)
	flip.apply(live.Engine.Expander())
	stored := MustGenerateDemo(DemoSmall, WithPrecomputedExpansions(store))
	flip.apply(stored.Engine.Expander())

	ctx := context.Background()
	q := &base.Queries[0]
	req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 20}
	want, err := live.Engine.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stored.Engine.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Fatal("fall-through build differs from live expansion")
	}
	st, _ := stored.Engine.ExpansionStoreStats()
	if st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("default-config store must miss under flipped ablation: %+v", st)
	}
}

// TestPrecomputedStoreStaleKBDropped: a store whose recorded KB hash
// does not match the serving graph is dropped at construction — the
// engine serves live expansions (parity with a plain engine) and
// surfaces the staleness through ExpansionStoreStats.
func TestPrecomputedStoreStaleKBDropped(t *testing.T) {
	base := MustGenerateDemo(DemoSmall)
	entries := core.PrecomputeEntries(base.Engine.Expander(), demoEntitySets(t, base), []MotifSet{MotifTS})
	path := filepath.Join(t.TempDir(), "stale.store")
	wrongHash := base.Engine.Graph().ContentHash() + 1
	if err := core.WriteStoreFile(path, wrongHash, entries); err != nil {
		t.Fatal(err)
	}
	store, err := OpenExpansionStore(path)
	if err != nil {
		t.Fatal(err)
	}

	stored := MustGenerateDemo(DemoSmall, WithPrecomputedExpansions(store))
	st, ok := stored.Engine.ExpansionStoreStats()
	if !ok || !st.Stale {
		t.Fatalf("stale store should be reported: %+v ok=%v", st, ok)
	}
	if st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("dropped store must report zero counters: %+v", st)
	}

	live := MustGenerateDemo(DemoSmall)
	ctx := context.Background()
	q := &base.Queries[0]
	req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 20}
	want, err := live.Engine.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stored.Engine.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Fatal("engine with dropped store differs from plain engine")
	}
}

// TestPrecomputedStoreWarmsCache: with both tiers configured, boot
// warming copies store entries into the LRU so the first request is
// already a cache hit (the store itself is only consulted for keys the
// cache has dropped).
func TestPrecomputedStoreWarmsCache(t *testing.T) {
	base := MustGenerateDemo(DemoSmall)
	store := buildDemoStore(t, base, parityAblations[0])

	eng := NewEngine(base.Engine.Graph(), base.Engine.Index(),
		WithExpansionCache(4096),
		WithPrecomputedExpansions(store))
	if cs, ok := eng.ExpansionCacheStats(); !ok || cs.Entries != int64(store.Len()) {
		t.Fatalf("cache not warmed from store: %+v (store has %d)", cs, store.Len())
	}

	nodes := demoEntitySets(t, base)[0]
	_ = eng.Expander() // configuration untouched: keys match the store's
	qg := eng.Expander().BuildQueryGraphStored(nodes, motif.SetTS, eng.cache, eng.precomputed)
	if len(qg.QueryNodes) == 0 {
		t.Fatal("warmed lookup returned empty graph")
	}
	cs, _ := eng.ExpansionCacheStats()
	st, _ := eng.ExpansionStoreStats()
	if cs.Hits != 1 || st.Hits != 0 {
		t.Fatalf("first request should hit the warmed cache, not the store: cache %+v store %+v", cs, st)
	}
}

package sqe

import (
	"context"
	"strings"
	"testing"
)

const miniDump = `<?xml version="1.0"?>
<mediawiki>
  <page><title>Cable car</title><ns>0</ns>
    <revision><text>See the [[funicular]]. [[Category:Cable railways]]</text></revision></page>
  <page><title>Funicular</title><ns>0</ns>
    <revision><text>Like a [[cable car|cable railway car]]. [[Category:Cable railways]]</text></revision></page>
  <page><title>Category:Cable railways</title><ns>14</ns>
    <revision><text></text></revision></page>
</mediawiki>`

func TestImportWikiXMLEndToEnd(t *testing.T) {
	imp, err := ImportWikiXML(strings.NewReader(miniDump), WikiImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if imp.Graph.NumArticles() != 2 || imp.Graph.NumCategories() != 1 {
		t.Fatalf("graph shape: %d articles, %d categories", imp.Graph.NumArticles(), imp.Graph.NumCategories())
	}

	ib := NewIndexBuilder()
	ib.Add("d1", "the funicular railway climbs steeply")
	ib.Add("d2", "a cable car in the fog")
	ib.Add("d3", "boats in the harbor")
	eng := NewEngine(imp.Graph, ib.Build(),
		WithLinker(imp.Dictionary), WithDirichletMu(10))

	// Automatic linking through the anchor dictionary ("cable railway
	// car" was an anchor for Cable car; the title itself links too).
	exp, err := eng.Expand("cable car rides", nil, MotifTS)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.QueryNodes) == 0 {
		t.Fatal("linker found no entities")
	}
	if exp.QueryNodeTitles[0] != "Cable car" {
		t.Errorf("linked %v", exp.QueryNodeTitles)
	}
	// The triangular motif fires on the imported structure: doubly
	// linked + same category.
	found := false
	for _, f := range exp.Features {
		if f.Title == "Funicular" {
			found = true
		}
	}
	if !found {
		t.Errorf("Funicular not among features: %+v", exp.Features)
	}

	resp, err := eng.Do(context.Background(), SearchRequest{Query: "cable car rides", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range resp.Results {
		names[r.Name] = true
	}
	if !names["d1"] || !names["d2"] {
		t.Errorf("expanded search missed documents: %v", resp.Results)
	}
}

func TestImportWikiXMLErrors(t *testing.T) {
	if _, err := ImportWikiXML(strings.NewReader("<mediawiki><page>"), WikiImportOptions{}); err == nil {
		t.Error("malformed dump should error")
	}
}

package sqe

import (
	"repro/internal/dataset"
	"repro/internal/entitylink"
	"repro/internal/wikigen"
)

// DemoScale selects the size of the generated demo environment.
type DemoScale int

const (
	// DemoSmall generates in well under a second; used by examples and
	// tests.
	DemoSmall DemoScale = iota
	// DemoDefault is the benchmark-harness scale (a few seconds).
	DemoDefault
)

// DemoQuery is one benchmark query of a demo environment, with its
// manually selected entity titles and relevance judgments.
type DemoQuery struct {
	ID string
	// Text is what the user typed.
	Text string
	// EntityTitles are the manually selected query entities.
	EntityTitles []string
	// Relevant is the set of relevant document names.
	Relevant map[string]bool
}

// DemoEnv is a ready-to-search environment: a synthetic Wikipedia-like
// KB, an indexed caption collection coupled to it, an engine wired over
// both (with an entity linker installed) and an evaluable query set.
//
// The real assets of the paper (the 2012 Wikipedia dump and the Image
// CLEF / CHiC collections) are not redistributable; DESIGN.md §2
// explains why this synthetic environment preserves the behaviours SQE
// depends on.
type DemoEnv struct {
	Engine  *Engine
	Queries []DemoQuery
	// DatasetName names the generated instance ("Image CLEF").
	DatasetName string
}

// GenerateDemo builds the Image CLEF-like demo environment. Generation
// is deterministic: the same scale always yields the same environment.
// Engine options (WithExpansionCache, WithSQECWorkers, …) are applied to
// the environment's engine; the demo linker is installed regardless.
func GenerateDemo(scale DemoScale, opts ...Option) (*DemoEnv, error) {
	cfg := wikigen.DefaultConfig()
	ds := dataset.ScaleDefault
	if scale == DemoSmall {
		cfg = wikigen.SmallConfig()
		ds = dataset.ScaleSmall
	}
	world, err := wikigen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	inst, err := dataset.BuildImageCLEF(world, ds)
	if err != nil {
		return nil, err
	}
	eng := NewEngine(world.Graph, inst.Index, opts...)
	eng.linker = dataset.BuildLinker(world, dataset.DefaultLinkerOptions())

	env := &DemoEnv{Engine: eng, DatasetName: inst.Name}
	for _, q := range inst.Queries {
		dq := DemoQuery{ID: q.ID, Text: q.Text, Relevant: inst.Qrels[q.ID]}
		for _, e := range q.Entities {
			dq.EntityTitles = append(dq.EntityTitles, world.Graph.Title(e))
		}
		env.Queries = append(env.Queries, dq)
	}
	return env, nil
}

// MustGenerateDemo is GenerateDemo but panics on error; the error paths
// are configuration mistakes that cannot happen with the built-in
// scales.
func MustGenerateDemo(scale DemoScale, opts ...Option) *DemoEnv {
	env, err := GenerateDemo(scale, opts...)
	if err != nil {
		panic(err)
	}
	return env
}

// PrecisionAt computes precision-at-k of a ranked result list against a
// relevance set, TrecEval-style (lists shorter than k count the missing
// ranks as non-relevant).
func PrecisionAt(results []Result, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i, r := range results {
		if i >= k {
			break
		}
		if relevant[r.Name] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// NewEntityDictionary returns an empty entity-linking dictionary using
// the engine's text pipeline; fill it with AddTitle/AddSurface and
// install it with the WithLinker option.
func NewEntityDictionary(e *Engine) *entitylink.Dictionary {
	return entitylink.NewDictionary(e.Index().Analyzer())
}

package sqe

import (
	"repro/internal/dataset"
	"repro/internal/entitylink"
	"repro/internal/wikigen"
)

// DemoScale selects the size of the generated demo environment.
type DemoScale int

const (
	// DemoSmall generates in well under a second; used by examples and
	// tests.
	DemoSmall DemoScale = iota
	// DemoDefault is the benchmark-harness scale (a few seconds).
	DemoDefault
)

// DemoQuery is one benchmark query of a demo environment, with its
// manually selected entity titles and relevance judgments.
type DemoQuery struct {
	ID string
	// Text is what the user typed.
	Text string
	// EntityTitles are the manually selected query entities.
	EntityTitles []string
	// Relevant is the set of relevant document names.
	Relevant map[string]bool
}

// DemoEnv is a ready-to-search environment: a synthetic Wikipedia-like
// KB, an indexed caption collection coupled to it, an engine wired over
// both (with an entity linker installed) and an evaluable query set.
//
// The real assets of the paper (the 2012 Wikipedia dump and the Image
// CLEF / CHiC collections) are not redistributable; DESIGN.md §2
// explains why this synthetic environment preserves the behaviours SQE
// depends on.
type DemoEnv struct {
	Engine  *Engine
	Queries []DemoQuery
	// DatasetName names the generated instance ("Image CLEF").
	DatasetName string
}

// GenerateDemo builds the Image CLEF-like demo environment. Generation
// is deterministic: the same scale always yields the same environment.
// Engine options (WithExpansionCache, WithSQECWorkers, …) are applied to
// the environment's engine; the demo linker is installed regardless.
func GenerateDemo(scale DemoScale, opts ...Option) (*DemoEnv, error) {
	env, _, err := generateDemo(scale, nil, opts...)
	return env, err
}

// DemoDoc is one document of the demo corpus, exactly as it was (or is
// to be) indexed.
type DemoDoc struct {
	Name, Text string
}

// GenerateDemoCorpus is GenerateDemo plus the raw document stream: the
// returned docs are every indexed document in index order, so a caller
// can rebuild (or incrementally re-ingest) a corpus guaranteed
// identical to the environment's index. The ingest smoke and the
// segment differential tests are built on this.
func GenerateDemoCorpus(scale DemoScale, opts ...Option) (*DemoEnv, []DemoDoc, error) {
	return generateDemo(scale, &[]DemoDoc{}, opts...)
}

// generateDemo builds the demo world and instance, capturing the
// document stream when docs is non-nil.
func generateDemo(scale DemoScale, docs *[]DemoDoc, opts ...Option) (*DemoEnv, []DemoDoc, error) {
	world, inst, captured, err := generateDemoInstance(scale, docs)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(world.Graph, inst.Index, opts...)
	eng.linker = dataset.BuildLinker(world, dataset.DefaultLinkerOptions())
	return demoEnvFrom(world, inst, eng), captured, nil
}

// GenerateDemoLive builds a demo environment whose engine serves a live
// (segmented) index rooted at dir instead of the prebuilt immutable
// one. The live index starts with whatever dir already holds (empty for
// a fresh directory) — the returned docs are the demo corpus in index
// order, ready to be streamed in through Engine.Ingest or /v1/ingest;
// once all are ingested, retrieval is bit-identical to GenerateDemo's
// engine. flushDocs <= 0 keeps the default flush threshold.
func GenerateDemoLive(scale DemoScale, dir string, flushDocs int, opts ...Option) (*DemoEnv, []DemoDoc, error) {
	world, inst, docs, err := generateDemoInstance(scale, &[]DemoDoc{})
	if err != nil {
		return nil, nil, err
	}
	live, err := OpenLiveIndex(dir, flushDocs)
	if err != nil {
		return nil, nil, err
	}
	eng := NewLiveEngine(world.Graph, live, opts...)
	eng.linker = dataset.BuildLinker(world, dataset.DefaultLinkerOptions())
	return demoEnvFrom(world, inst, eng), docs, nil
}

// generateDemoInstance generates the world and dataset instance,
// appending the document stream to docs when non-nil.
func generateDemoInstance(scale DemoScale, docs *[]DemoDoc) (*wikigen.World, *dataset.Instance, []DemoDoc, error) {
	cfg := wikigen.DefaultConfig()
	ds := dataset.ScaleDefault
	if scale == DemoSmall {
		cfg = wikigen.SmallConfig()
		ds = dataset.ScaleSmall
	}
	world, err := wikigen.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var sink dataset.DocSink
	if docs != nil {
		sink = func(name, text string) { *docs = append(*docs, DemoDoc{Name: name, Text: text}) }
	}
	ins, err := dataset.BuildWithSink(world, dataset.ImageCLEFProfile(ds), sink)
	if err != nil {
		return nil, nil, nil, err
	}
	var captured []DemoDoc
	if docs != nil {
		captured = *docs
	}
	return world, ins[0], captured, nil
}

// demoEnvFrom assembles the public environment from a generated world,
// instance and engine.
func demoEnvFrom(world *wikigen.World, inst *dataset.Instance, eng *Engine) *DemoEnv {
	env := &DemoEnv{Engine: eng, DatasetName: inst.Name}
	for _, q := range inst.Queries {
		dq := DemoQuery{ID: q.ID, Text: q.Text, Relevant: inst.Qrels[q.ID]}
		for _, e := range q.Entities {
			dq.EntityTitles = append(dq.EntityTitles, world.Graph.Title(e))
		}
		env.Queries = append(env.Queries, dq)
	}
	return env
}

// MustGenerateDemo is GenerateDemo but panics on error; the error paths
// are configuration mistakes that cannot happen with the built-in
// scales.
func MustGenerateDemo(scale DemoScale, opts ...Option) *DemoEnv {
	env, err := GenerateDemo(scale, opts...)
	if err != nil {
		panic(err)
	}
	return env
}

// PrecisionAt computes precision-at-k of a ranked result list against a
// relevance set, TrecEval-style (lists shorter than k count the missing
// ranks as non-relevant).
func PrecisionAt(results []Result, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i, r := range results {
		if i >= k {
			break
		}
		if relevant[r.Name] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// NewEntityDictionary returns an empty entity-linking dictionary using
// the engine's text pipeline; fill it with AddTitle/AddSurface and
// install it with the WithLinker option.
func NewEntityDictionary(e *Engine) *entitylink.Dictionary {
	return entitylink.NewDictionary(e.Index().Analyzer())
}

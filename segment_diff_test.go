package sqe

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/index"
)

// The segment differential gate: an engine over a live (segmented)
// index must return rankings and scores bit-identical to an engine over
// a monolithic index built from the same surviving documents — across
// retrieval models, raw and expanded query shapes, flush sizes (all
// buffered, many small segments), delete schedules, and before and
// after compaction. The monolithic side is additionally checked sharded
// (S ∈ {1,2,4}), closing the triangle live ≡ monolithic ≡ sharded.

var (
	segDemoOnce sync.Once
	segDemoEnv  *DemoEnv
	segDemoDocs []DemoDoc
	segDemoErr  error
)

// segExpCache is shared across every engine in the matrix: expansion
// depends only on the graph and the query entities, never on the index,
// so sharing it collapses hundreds of identical motif minings into one
// each without weakening the retrieval diff.
var segExpCache = core.NewExpansionCache(4096)

// withSharedExpansionCache installs the shared cross-engine cache.
func withSharedExpansionCache() Option {
	return func(e *Engine) { e.cache = segExpCache }
}

// segDemo returns the shared demo environment plus its captured corpus
// (every indexed document in index order).
func segDemo(t *testing.T) (*DemoEnv, []DemoDoc) {
	t.Helper()
	segDemoOnce.Do(func() { segDemoEnv, segDemoDocs, segDemoErr = GenerateDemoCorpus(DemoSmall) })
	if segDemoErr != nil {
		t.Fatal(segDemoErr)
	}
	if len(segDemoDocs) == 0 {
		t.Fatal("GenerateDemoCorpus captured no documents")
	}
	return segDemoEnv, segDemoDocs
}

// buildLiveEngine opens a fresh live index, streams docs through
// Engine.Ingest, deletes every doc named in deletes, and optionally
// compacts the committed segments.
func buildLiveEngine(t *testing.T, g *Graph, docs []DemoDoc, flushDocs int, deletes []string, compact bool, opts ...Option) *Engine {
	t.Helper()
	live, err := OpenLiveIndex(t.TempDir(), flushDocs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })
	eng := NewLiveEngine(g, live, append([]Option{withSharedExpansionCache()}, opts...)...)
	for _, d := range docs {
		if err := eng.Ingest(d.Name, d.Text); err != nil {
			t.Fatalf("ingest %q: %v", d.Name, err)
		}
	}
	for _, name := range deletes {
		if _, err := eng.Delete(name); err != nil {
			t.Fatalf("delete %q: %v", name, err)
		}
	}
	if compact {
		if err := eng.CompactSegments(); err != nil {
			t.Fatalf("compact: %v", err)
		}
	}
	return eng
}

// monolithicEngine builds a classic immutable engine over exactly the
// given documents, indexed with the same pipeline OpenLiveIndex uses.
func monolithicEngine(g *Graph, docs []DemoDoc, opts ...Option) *Engine {
	b := index.NewBuilder(analysis.Standard())
	for _, d := range docs {
		b.Add(d.Name, d.Text)
	}
	return NewEngine(g, b.Build(), append([]Option{withSharedExpansionCache()}, opts...)...)
}

// survivors drops every document whose name is in deletes (matching
// tombstone semantics: all occurrences of the name die).
func survivors(docs []DemoDoc, deletes []string) []DemoDoc {
	dead := make(map[string]bool, len(deletes))
	for _, n := range deletes {
		dead[n] = true
	}
	out := make([]DemoDoc, 0, len(docs))
	for _, d := range docs {
		if !dead[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// everyNth returns the names of every n-th document, a deterministic
// mid-corpus delete schedule.
func everyNth(docs []DemoDoc, n int) []string {
	var out []string
	for i := n - 1; i < len(docs); i += n {
		out = append(out, docs[i].Name)
	}
	return out
}

// segRequests is the request-shape leg of the matrix: expanded SQE_C,
// a single motif set, and the raw baseline.
func segRequests(q DemoQuery) []SearchRequest {
	return []SearchRequest{
		{Query: q.Text, EntityTitles: q.EntityTitles, K: 10},
		{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 25},
		{Query: q.Text, K: 25, Baseline: true},
	}
}

// TestSegmentedEngineBitIdentical is the root of the differential
// matrix: retrieval models × flush sizes × delete schedules × pre/post
// compaction, every leg diffed result-for-result (names, order, float64
// bit patterns) against a monolithic engine over the survivors.
func TestSegmentedEngineBitIdentical(t *testing.T) {
	env, docs := segDemo(t)
	g := env.Engine.Graph()
	queries := env.Queries
	if len(queries) > 3 {
		queries = queries[:3]
	}
	models := []struct {
		name string
		opts []Option
	}{
		{"dirichlet", nil},
		{"jelinek-mercer", []Option{WithRetrievalModel(ModelJelinekMercer, ModelParams{Lambda: 0.4})}},
		{"bm25", []Option{WithRetrievalModel(ModelBM25, ModelParams{})}},
	}
	// flush=7 → many small segments plus a buffer tail; a huge threshold
	// keeps the whole corpus in the mutable buffer.
	flushes := []int{7, len(docs) + 1}
	deleteSets := [][]string{nil, everyNth(docs, 5)}

	for _, m := range models {
		for _, flush := range flushes {
			for di, deletes := range deleteSets {
				for _, compact := range []bool{false, true} {
					if compact && flush > len(docs) {
						// Nothing is committed at this flush size, so
						// compaction is a no-op — an identical leg.
						continue
					}
					ref := monolithicEngine(g, survivors(docs, deletes), m.opts...)
					liveEng := buildLiveEngine(t, g, docs, flush, deletes, compact, m.opts...)
					for _, q := range queries {
						for _, req := range segRequests(q) {
							want, err := ref.Do(context.Background(), req)
							if err != nil {
								t.Fatalf("%s flush=%d del=%d compact=%v %s: monolithic: %v", m.name, flush, di, compact, q.ID, err)
							}
							got, err := liveEng.Do(context.Background(), req)
							if err != nil {
								t.Fatalf("%s flush=%d del=%d compact=%v %s: live: %v", m.name, flush, di, compact, q.ID, err)
							}
							if !reflect.DeepEqual(want.Results, got.Results) {
								t.Fatalf("%s flush=%d del=%d compact=%v %s k=%d set=%v baseline=%v: live results diverge from monolithic",
									m.name, flush, di, compact, q.ID, req.K, req.MotifSet, req.Baseline)
							}
							if !reflect.DeepEqual(want.Expansion, got.Expansion) {
								t.Fatalf("%s flush=%d del=%d compact=%v %s: expansions diverge", m.name, flush, di, compact, q.ID)
							}
						}
					}
				}
			}
		}
	}
}

// TestSegmentedEngineMatchesSharded closes the triangle: one live
// configuration (small flushes, deletes applied, then compacted) must
// agree bit-for-bit with sharded monolithic engines at S ∈ {1,2,4}.
func TestSegmentedEngineMatchesSharded(t *testing.T) {
	env, docs := segDemo(t)
	g := env.Engine.Graph()
	deletes := everyNth(docs, 7)
	liveEng := buildLiveEngine(t, g, docs, 16, deletes, true)
	queries := env.Queries
	if len(queries) > 3 {
		queries = queries[:3]
	}
	for _, s := range []int{1, 2, 4} {
		ref := monolithicEngine(g, survivors(docs, deletes), WithShards(s))
		for _, q := range queries {
			for _, req := range segRequests(q) {
				want, err := ref.Do(context.Background(), req)
				if err != nil {
					t.Fatalf("S=%d %s: sharded: %v", s, q.ID, err)
				}
				got, err := liveEng.Do(context.Background(), req)
				if err != nil {
					t.Fatalf("S=%d %s: live: %v", s, q.ID, err)
				}
				if !reflect.DeepEqual(want.Results, got.Results) {
					t.Fatalf("S=%d %s k=%d: live diverges from sharded monolithic", s, q.ID, req.K)
				}
			}
		}
	}
}

// TestSegmentedEngineMutationVisibility: results must track the
// document set as it changes — after deleting every doc ranked in a
// result page, none of them may appear in a re-run of the same query,
// and re-ingesting them restores the original ranking exactly.
func TestSegmentedEngineMutationVisibility(t *testing.T) {
	env, docs := segDemo(t)
	g := env.Engine.Graph()
	liveEng := buildLiveEngine(t, g, docs, 32, nil, false)
	q := env.Queries[0]
	req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 5}
	before, err := liveEng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Results) == 0 {
		t.Fatal("no results to delete")
	}
	byName := make(map[string]DemoDoc, len(docs))
	for _, d := range docs {
		byName[d.Name] = d
	}
	for _, r := range before.Results {
		if _, err := liveEng.Delete(r.Name); err != nil {
			t.Fatal(err)
		}
	}
	after, err := liveEng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	gone := make(map[string]bool)
	for _, r := range before.Results {
		gone[r.Name] = true
	}
	for _, r := range after.Results {
		if gone[r.Name] {
			t.Fatalf("deleted doc %q still ranked", r.Name)
		}
	}
	// Restore in original index order and compare against a monolithic
	// engine over the corpus with the restored docs appended at the end
	// (their new index positions).
	rest := survivors(docs, resultNames(before.Results))
	for _, r := range before.Results {
		d := byName[r.Name]
		if err := liveEng.Ingest(d.Name, d.Text); err != nil {
			t.Fatal(err)
		}
		rest = append(rest, d)
	}
	ref := monolithicEngine(g, rest)
	want, err := ref.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := liveEng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Fatal("post-reingest results diverge from monolithic over the same docs")
	}
}

// resultNames lists the names of a ranked result list.
func resultNames(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

// TestSegmentedEngineRejectsPRF: PRF would silently run its feedback
// pass against the live engine's placeholder index, so Do must refuse
// it loudly.
func TestSegmentedEngineRejectsPRF(t *testing.T) {
	env, docs := segDemo(t)
	liveEng := buildLiveEngine(t, env.Engine.Graph(), docs[:10], 4, nil, false)
	q := env.Queries[0]
	_, err := liveEng.Do(context.Background(), SearchRequest{
		Query: q.Text, EntityTitles: q.EntityTitles, K: 5,
		PRF: &PRFConfig{FbDocs: 3, FbTerms: 5, OrigWeight: 0.5},
	})
	if err == nil {
		t.Fatal("PRF on a live engine succeeded; want rejection")
	}
}

// TestSegmentedGoldenRetrieval diffs the live engine against the same
// pinned golden corpus the monolithic and sharded engines answer to:
// after ingesting the full demo corpus (no deletes), every model ×
// raw/expanded leg must reproduce testdata/golden byte-for-byte.
func TestSegmentedGoldenRetrieval(t *testing.T) {
	const k = 10
	env, docs := segDemo(t)
	queries := env.Queries
	if len(queries) > 3 {
		queries = queries[:3]
	}
	models := []struct {
		name   string
		model  RetrievalModel
		params ModelParams
	}{
		{"dirichlet", ModelDirichlet, ModelParams{}},
		{"jm", ModelJelinekMercer, ModelParams{}},
		{"bm25", ModelBM25, ModelParams{}},
	}
	modes := []struct {
		name string
		req  func(q DemoQuery) SearchRequest
	}{
		{"raw", func(q DemoQuery) SearchRequest {
			return SearchRequest{Query: q.Text, K: k, Baseline: true}
		}},
		{"expanded", func(q DemoQuery) SearchRequest {
			return SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: k}
		}},
	}
	for _, m := range models {
		liveEng := buildLiveEngine(t, env.Engine.Graph(), docs, 32, nil, false,
			WithRetrievalModel(m.model, m.params))
		for _, mode := range modes {
			path := filepath.Join("testdata", "golden", m.name+"_"+mode.name+".json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s: %v", path, err)
			}
			var want goldenFile
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}
			for i, q := range queries {
				if i >= len(want.Queries) {
					break
				}
				resp, err := liveEng.Do(context.Background(), mode.req(q))
				if err != nil {
					t.Fatalf("%s/%s %q: %v", m.name, mode.name, q.Text, err)
				}
				if want.Queries[i].Query != q.Text {
					t.Fatalf("golden %s query %d is %q, demo has %q", path, i, want.Queries[i].Query, q.Text)
				}
				if err := diffGolden(want.Queries[i].Results, goldenResults(resp.Results)); err != nil {
					t.Errorf("%s, query %q: live engine diverges from golden: %v", path, q.Text, err)
				}
			}
		}
	}
}

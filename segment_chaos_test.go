package sqe

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/search"
)

// The index-while-chaos harness (the tentpole's adversarial gate):
// a live segmented index is hammered with ingests, deletes, flushes and
// compactions while injected faults fail disk writes, merges and
// manifest commits — and while concurrent readers pin snapshots and
// diff every query bit-for-bit against a monolithic index rebuilt from
// that snapshot's own surviving documents. The runs are seeded and
// replayable: every schedule derives from -segchaos.seed, which the
// test logs.

var segChaosSeed = flag.Int64("segchaos.seed", 20260808, "seed for the index-while-chaos schedules (logged by the tests for replay)")

// chaosVocab is a small skewed vocabulary so postings overlap heavily
// across documents (ties, shared terms, phrase matches).
var chaosVocab = []string{
	"alpha", "alpha", "alpha", "beta", "beta", "gamma", "gamma",
	"delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
}

// chaosText builds one document body from the seeded stream.
func chaosText(rng *rand.Rand) string {
	n := 5 + rng.Intn(26)
	words := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			words = append(words, ' ')
		}
		words = append(words, chaosVocab[rng.Intn(len(chaosVocab))]...)
	}
	return string(words)
}

// chaosQueries is the query mix the readers replay: a bare term, a
// weighted combination with an out-of-vocabulary child, and a weighted
// phrase + term tree.
func chaosQueries() []search.Node {
	return []search.Node{
		search.Term{Text: "alpha"},
		search.Weighted{Children: []search.Child{
			{Weight: 0.6, Node: search.Term{Text: "beta"}},
			{Weight: 0.3, Node: search.Term{Text: "theta"}},
			{Weight: 0.1, Node: search.Term{Text: "missingterm"}},
		}},
		search.Weighted{Children: []search.Child{
			{Weight: 0.7, Node: search.Phrase{Terms: []string{"alpha", "beta"}}},
			{Weight: 0.3, Node: search.Term{Text: "gamma"}},
		}},
	}
}

// monoFromSnapshot rebuilds a monolithic index holding exactly the
// snapshot's surviving documents in ingestion order — the oracle a
// pinned snapshot must score identically to.
func monoFromSnapshot(sn *index.Snapshot, textOf map[string]string) *index.Index {
	b := index.NewBuilder(analysis.Standard())
	for _, name := range sn.LiveDocNames() {
		b.Add(name, textOf[name])
	}
	return b.Build()
}

// TestIndexWhileChaos: one writer mutates the live index under injected
// flush/merge/manifest faults (every error must be an injected one —
// anything else is a real bug) while two readers continuously pin
// snapshots and verify them against monolithic rebuilds. Query-path
// faults are armed too (ShardEval fires per segment), so reads also
// exercise the failure path; a failed read must be injected, a
// successful read must be exact.
func TestIndexWhileChaos(t *testing.T) {
	seed := *segChaosSeed
	t.Logf("chaos seed %d (replay with -segchaos.seed=%d)", seed, seed)

	reg := fault.NewRegistry(seed).
		Set(fault.SegmentFlush, fault.Policy{ErrRate: 0.25}).
		Set(fault.SegmentMerge, fault.Policy{ErrRate: 0.25}).
		Set(fault.SegmentManifest, fault.Policy{ErrRate: 0.20}).
		Set(fault.ShardEval, fault.Policy{ErrRate: 0.02})
	fault.Arm(reg)
	defer fault.Disarm()

	baseRegions := index.MappedRegions()
	live, err := index.OpenSegmented(t.TempDir(), analysis.Standard(), index.WithFlushDocs(8))
	if err != nil {
		t.Fatal(err)
	}
	gs := search.NewSegmentedSearcher(live)

	// Fixed name pool with fixed texts: deletes and re-ingests recycle
	// the same documents, so readers can rebuild any snapshot from its
	// LiveDocNames alone.
	textRng := rand.New(rand.NewSource(seed))
	textOf := make(map[string]string)
	names := make([]string, 48)
	for i := range names {
		names[i] = fmt.Sprintf("d%03d", i)
		textOf[names[i]] = chaosText(textRng)
	}
	for _, name := range names[:24] {
		if err := live.Ingest(name, textOf[name]); err != nil && !fault.IsInjected(err) {
			t.Fatal(err)
		}
	}

	const writerOps = 500
	var done atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		wrng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < writerOps; i++ {
			var err error
			switch p := wrng.Float64(); {
			case p < 0.62:
				name := names[wrng.Intn(len(names))]
				err = live.Ingest(name, textOf[name])
			case p < 0.80:
				_, err = live.Delete(names[wrng.Intn(len(names))])
			case p < 0.90:
				err = live.Flush()
			default:
				err = live.Compact()
			}
			if err != nil && !fault.IsInjected(err) {
				t.Errorf("writer op %d: non-injected error: %v", i, err)
				return
			}
		}
	}()

	var comparisons, injectedReads atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			queries := chaosQueries()
			for !done.Load() {
				sn := live.Acquire()
				if sn == nil {
					return
				}
				mono := search.NewSearcher(monoFromSnapshot(sn, textOf))
				for qi, q := range queries {
					got, err := gs.SearchSnapshot(ctx, sn, q, 10)
					if err != nil {
						if !fault.IsInjected(err) {
							t.Errorf("reader %d query %d: non-injected error: %v", r, qi, err)
						}
						injectedReads.Add(1)
						continue
					}
					want := mono.Search(q, 10)
					if !reflect.DeepEqual(want, got) {
						t.Errorf("reader %d query %d gen %d: pinned snapshot diverges from monolithic rebuild\n got: %v\nwant: %v",
							r, qi, sn.Gen(), got, want)
					}
					comparisons.Add(1)
				}
				sn.Release()
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if comparisons.Load() < 20 {
		t.Fatalf("only %d snapshot/monolithic comparisons ran; the harness never got going", comparisons.Load())
	}

	// The chaos must actually have happened: each segment point was
	// consulted and faults were injected somewhere.
	st := reg.Stats()
	for _, p := range []fault.Point{fault.SegmentFlush, fault.SegmentMerge, fault.SegmentManifest} {
		if st[p].Hits == 0 {
			t.Errorf("fault point %s was never consulted during the chaos run", p)
		}
	}
	if reg.TotalInjected() == 0 {
		t.Error("no faults were injected; the run was not chaotic")
	}

	// Quiesce: with faults disarmed every retried mutation must succeed,
	// and the settled index must agree with its monolithic rebuild under
	// all three retrieval models.
	fault.Disarm()
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	sn := live.Acquire()
	if sn == nil {
		t.Fatal("no snapshot after quiesce")
	}
	monoIx := monoFromSnapshot(sn, textOf)
	for _, m := range []search.Model{search.ModelDirichlet, search.ModelJelinekMercer, search.ModelBM25} {
		gs.Model = m
		mono := search.NewSearcher(monoIx)
		mono.Model = m
		for qi, q := range chaosQueries() {
			got, err := gs.SearchSnapshot(context.Background(), sn, q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if want := mono.Search(q, 10); !reflect.DeepEqual(want, got) {
				t.Errorf("settled model %v query %d: diverges from monolithic rebuild", m, qi)
			}
		}
	}
	sn.Release()
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if got := index.MappedRegions(); got != baseRegions {
		t.Fatalf("MappedRegions = %d after chaos run, want %d (leaked a segment mapping)", got, baseRegions)
	}
}

// chaosDoc is one ingested document instance in the differential model.
type chaosDoc struct {
	name, text string
	alive      bool
}

// chaosModel mirrors what the live index must durably hold, driven
// purely by the return values of the mutation calls: an operation that
// returned an injected error changed nothing; one that returned nil
// changed exactly what its contract says. Buffered documents are
// volatile — Close drops them.
type chaosModel struct {
	committed []chaosDoc
	buffer    []chaosDoc
	flushDocs int
}

func (m *chaosModel) ingest(name, text string, err error) {
	m.buffer = append(m.buffer, chaosDoc{name: name, text: text, alive: true})
	if err == nil && len(m.buffer) >= m.flushDocs {
		m.flush(nil)
	}
}

func (m *chaosModel) flush(err error) {
	if err != nil {
		return
	}
	m.committed = append(m.committed, m.buffer...)
	m.buffer = nil
}

func (m *chaosModel) delete(name string, n int, err error) error {
	if err != nil {
		return nil
	}
	marked := 0
	for i := range m.committed {
		if m.committed[i].alive && m.committed[i].name == name {
			m.committed[i].alive = false
			marked++
		}
	}
	for i := range m.buffer {
		if m.buffer[i].alive && m.buffer[i].name == name {
			m.buffer[i].alive = false
			marked++
		}
	}
	if marked != n {
		return fmt.Errorf("Delete(%q) reported %d docs, model holds %d", name, n, marked)
	}
	return nil
}

func (m *chaosModel) compact(err error) {
	if err != nil {
		return
	}
	kept := m.committed[:0]
	for _, d := range m.committed {
		if d.alive {
			kept = append(kept, d)
		}
	}
	m.committed = kept
}

// close models Close: the unflushed buffer is volatile by design.
func (m *chaosModel) close() { m.buffer = nil }

// survivors returns the alive committed documents in ingestion order.
func (m *chaosModel) survivors() []chaosDoc {
	var out []chaosDoc
	for _, d := range m.committed {
		if d.alive {
			out = append(out, d)
		}
	}
	return out
}

// TestSegmentedCrashRestartDifferential drives several epochs of
// faulted mutations against a return-value-tracking model, crashes
// (Close without Flush) and reopens between epochs, and requires the
// recovered index to hold exactly the model's durable state — then
// tears a committed segment file to prove a torn file fails recovery
// loudly, and restores it to prove recovery then succeeds with nothing
// lost. Single-goroutine and fully deterministic from the seed.
func TestSegmentedCrashRestartDifferential(t *testing.T) {
	seed := *segChaosSeed
	t.Logf("chaos seed %d (replay with -segchaos.seed=%d)", seed, seed)
	dir := t.TempDir()
	const flushDocs = 8

	model := &chaosModel{flushDocs: flushDocs}
	rng := rand.New(rand.NewSource(seed + 100))
	names := make([]string, 24)
	for i := range names {
		names[i] = fmt.Sprintf("c%03d", i)
	}

	checkState := func(live *index.Segmented, when string) {
		t.Helper()
		surv := model.survivors()
		var wantNames []string
		for _, d := range surv {
			wantNames = append(wantNames, d.name)
		}
		for _, d := range model.buffer {
			if d.alive {
				wantNames = append(wantNames, d.name)
			}
		}
		sn := live.Acquire()
		if sn == nil {
			t.Fatalf("%s: no snapshot", when)
		}
		defer sn.Release()
		if got := sn.LiveDocNames(); !reflect.DeepEqual(got, wantNames) {
			t.Fatalf("%s: live docs diverge from model\n got: %v\nwant: %v", when, got, wantNames)
		}
	}

	live, err := index.OpenSegmented(dir, analysis.Standard(), index.WithFlushDocs(flushDocs))
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 4; epoch++ {
		reg := fault.NewRegistry(seed+int64(epoch)).
			Set(fault.SegmentFlush, fault.Policy{ErrRate: 0.30}).
			Set(fault.SegmentMerge, fault.Policy{ErrRate: 0.30}).
			Set(fault.SegmentManifest, fault.Policy{ErrRate: 0.25})
		fault.Arm(reg)
		for i := 0; i < 120; i++ {
			switch p := rng.Float64(); {
			case p < 0.60:
				name := names[rng.Intn(len(names))]
				text := chaosText(rng)
				err := live.Ingest(name, text)
				if err != nil && !fault.IsInjected(err) {
					t.Fatalf("epoch %d op %d: ingest: %v", epoch, i, err)
				}
				model.ingest(name, text, err)
			case p < 0.80:
				name := names[rng.Intn(len(names))]
				n, err := live.Delete(name)
				if err != nil && !fault.IsInjected(err) {
					t.Fatalf("epoch %d op %d: delete: %v", epoch, i, err)
				}
				if merr := model.delete(name, n, err); merr != nil {
					t.Fatalf("epoch %d op %d: %v", epoch, i, merr)
				}
			case p < 0.90:
				err := live.Flush()
				if err != nil && !fault.IsInjected(err) {
					t.Fatalf("epoch %d op %d: flush: %v", epoch, i, err)
				}
				model.flush(err)
			default:
				err := live.Compact()
				if err != nil && !fault.IsInjected(err) {
					t.Fatalf("epoch %d op %d: compact: %v", epoch, i, err)
				}
				model.compact(err)
			}
		}
		fault.Disarm()
		checkState(live, fmt.Sprintf("epoch %d pre-crash", epoch))

		// Crash: no Flush, the buffer dies with the process. Reopen must
		// recover exactly the committed state — including any epoch where
		// a merge "crashed" after writing its output but before the
		// manifest commit (the orphan file is swept at open).
		if err := live.Close(); err != nil {
			t.Fatal(err)
		}
		model.close()
		live, err = index.OpenSegmented(dir, analysis.Standard(), index.WithFlushDocs(flushDocs))
		if err != nil {
			t.Fatalf("epoch %d: reopen after crash: %v", epoch, err)
		}
		checkState(live, fmt.Sprintf("epoch %d post-restart", epoch))
	}

	// Retrieval differential on the final recovered state: every model,
	// against a monolithic index of the model's survivors.
	b := index.NewBuilder(analysis.Standard())
	for _, d := range model.survivors() {
		b.Add(d.name, d.text)
	}
	monoIx := b.Build()
	gs := search.NewSegmentedSearcher(live)
	for _, m := range []search.Model{search.ModelDirichlet, search.ModelJelinekMercer, search.ModelBM25} {
		gs.Model = m
		mono := search.NewSearcher(monoIx)
		mono.Model = m
		for qi, q := range chaosQueries() {
			got, err := gs.SearchContext(context.Background(), q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if want := mono.Search(q, 10); !reflect.DeepEqual(want, got) {
				t.Errorf("recovered model %v query %d: diverges from monolithic rebuild", m, qi)
			}
		}
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn-file leg: truncating a committed segment must fail recovery
	// with a loud error naming the segment — silent data loss is the one
	// forbidden outcome — and restoring the bytes must fully recover.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.v2"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no committed segment files to tear (err=%v)", err)
	}
	victim := segs[len(segs)-1]
	whole, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := index.OpenSegmented(dir, analysis.Standard()); err == nil {
		t.Fatal("open succeeded over a torn segment file")
	}
	if err := os.WriteFile(victim, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	live, err = index.OpenSegmented(dir, analysis.Standard(), index.WithFlushDocs(flushDocs))
	if err != nil {
		t.Fatalf("reopen after restoring the torn file: %v", err)
	}
	checkState(live, "post-restore")
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
}

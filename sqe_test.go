package sqe

import (
	"context"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	env     *DemoEnv
	envErr  error
)

func demo(t *testing.T) *DemoEnv {
	t.Helper()
	envOnce.Do(func() { env, envErr = GenerateDemo(DemoSmall) })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return env
}

func TestGenerateDemo(t *testing.T) {
	e := demo(t)
	if e.Engine == nil || len(e.Queries) == 0 {
		t.Fatal("demo environment incomplete")
	}
	if e.DatasetName == "" {
		t.Error("dataset name missing")
	}
	for _, q := range e.Queries {
		if q.ID == "" || q.Text == "" {
			t.Fatalf("query incomplete: %+v", q)
		}
		if len(q.EntityTitles) == 0 {
			t.Fatalf("%s: no entity titles", q.ID)
		}
	}
}

func TestExpandReturnsFeatures(t *testing.T) {
	e := demo(t)
	withFeatures := 0
	for _, q := range e.Queries {
		exp, err := e.Engine.Expand(q.Text, q.EntityTitles, MotifTS)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if len(exp.QueryNodes) != len(q.EntityTitles) {
			t.Fatalf("%s: query nodes %d != entities %d", q.ID, len(exp.QueryNodes), len(q.EntityTitles))
		}
		if len(exp.Features) > 0 {
			withFeatures++
			for i := 1; i < len(exp.Features); i++ {
				if exp.Features[i-1].Weight < exp.Features[i].Weight {
					t.Fatalf("%s: features not sorted", q.ID)
				}
			}
			for _, f := range exp.Features {
				if f.Title == "" {
					t.Fatalf("%s: feature without title", q.ID)
				}
			}
		}
	}
	if withFeatures < len(e.Queries)/2 {
		t.Errorf("only %d/%d queries expanded", withFeatures, len(e.Queries))
	}
}

func TestSearchImprovesOverBaseline(t *testing.T) {
	e := demo(t)
	ctx := context.Background()
	var base, sqe float64
	for _, q := range e.Queries {
		b, err := e.Engine.Do(ctx, SearchRequest{Query: q.Text, K: 10, Baseline: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.Engine.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		base += PrecisionAt(b.Results, q.Relevant, 10)
		sqe += PrecisionAt(s.Results, q.Relevant, 10)
	}
	if sqe <= base {
		t.Errorf("SQE P@10 sum %.2f not above baseline %.2f", sqe, base)
	}
}

func TestSearchSetConfigurations(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	for _, set := range []MotifSet{MotifT, MotifS, MotifTS} {
		resp, err := e.Engine.Do(context.Background(), SearchRequest{
			Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: set, K: 20,
		})
		if err != nil {
			t.Fatalf("set %v: %v", set, err)
		}
		res := resp.Results
		if len(res) == 0 {
			t.Fatalf("set %v returned nothing", set)
		}
		for i := 1; i < len(res); i++ {
			if res[i-1].Score < res[i].Score {
				t.Fatalf("set %v: results not sorted", set)
			}
		}
	}
}

func TestSearchSplicesWithoutDuplicates(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	resp, err := e.Engine.Do(context.Background(), SearchRequest{
		Query: q.Text, EntityTitles: q.EntityTitles, K: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range resp.Results {
		if seen[r.Name] {
			t.Fatalf("duplicate %s in spliced results", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestAutomaticEntityLinking(t *testing.T) {
	e := demo(t)
	linked := 0
	for _, q := range e.Queries {
		exp, err := e.Engine.Expand(q.Text, nil, MotifTS) // nil titles → linker
		if err != nil {
			t.Fatal(err)
		}
		if len(exp.QueryNodes) > 0 {
			linked++
		}
	}
	if linked < len(e.Queries)/2 {
		t.Errorf("linker resolved only %d/%d queries", linked, len(e.Queries))
	}
}

func TestUnknownEntityTitle(t *testing.T) {
	e := demo(t)
	if _, err := e.Engine.Expand("x", []string{"No Such Article"}, MotifT); err == nil {
		t.Error("unknown entity title should error")
	}
	if _, err := e.Engine.Do(context.Background(), SearchRequest{
		Query: "x", EntityTitles: []string{"No Such Article"}, K: 5,
	}); err == nil {
		t.Error("unknown entity title should error in Do")
	}
}

func TestCategoryAsEntityRejected(t *testing.T) {
	e := demo(t)
	g := e.Engine.Graph()
	var catTitle string
	g.CategoriesAll(func(id NodeID) bool {
		catTitle = g.Title(id)
		return false
	})
	if catTitle == "" {
		t.Fatal("no categories in demo graph")
	}
	if _, err := e.Engine.Expand("x", []string{catTitle}, MotifT); err == nil ||
		!strings.Contains(err.Error(), "category") {
		t.Errorf("category entity should be rejected, got %v", err)
	}
}

func TestSearchPRF(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	resp, err := e.Engine.Do(context.Background(), SearchRequest{
		Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 10,
		PRF: &PRFConfig{FbDocs: 5, FbTerms: 10, OrigWeight: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Error("PRF search returned nothing")
	}
}

func TestPrecisionAtHelper(t *testing.T) {
	rel := map[string]bool{"a": true}
	res := []Result{{Name: "a"}, {Name: "b"}}
	if got := PrecisionAt(res, rel, 2); got != 0.5 {
		t.Errorf("PrecisionAt = %f", got)
	}
	if got := PrecisionAt(res, rel, 0); got != 0 {
		t.Errorf("PrecisionAt k=0 = %f", got)
	}
	if got := PrecisionAt(nil, rel, 5); got != 0 {
		t.Errorf("PrecisionAt empty = %f", got)
	}
}

// TestWithDirichletMu checks the μ option actually reaches the scorer:
// two engines over the same corpus differing only in μ must score
// differently.
func TestWithDirichletMu(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	ctx := context.Background()
	req := SearchRequest{Query: q.Text, K: 5, Baseline: true}
	before, err := e.Engine.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	tuned := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithDirichletMu(10))
	after, err := tuned.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Results) == 0 || len(after.Results) == 0 {
		t.Fatal("searches returned nothing")
	}
	if before.Results[0].Score == after.Results[0].Score {
		t.Error("changing μ should change scores")
	}
}

func TestNewEntityDictionary(t *testing.T) {
	e := MustGenerateDemo(DemoSmall)
	d := NewEntityDictionary(e.Engine)
	var title string
	g := e.Engine.Graph()
	g.Articles(func(id NodeID) bool { title = g.Title(id); return false })
	d.AddTitle(title, g.ByTitle(title), 1)
	// The linker is construction-time configuration; build an engine over
	// the same graph and index that links through the custom dictionary.
	eng := NewEngine(g, e.Engine.Index(), WithLinker(d))
	exp, err := eng.Expand(title, nil, MotifTS)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.QueryNodes) != 1 {
		t.Errorf("custom dictionary failed to link %q", title)
	}
}

func TestWithRetrievalModel(t *testing.T) {
	e := MustGenerateDemo(DemoSmall)
	q := e.Queries[0]
	ctx := context.Background()
	req := SearchRequest{Query: q.Text, K: 5, Baseline: true}
	dirichlet, err := e.Engine.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	bm25Eng := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithRetrievalModel(ModelBM25, ModelParams{}))
	bm25, err := bm25Eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirichlet.Results) == 0 || len(bm25.Results) == 0 {
		t.Fatal("searches returned nothing")
	}
	if dirichlet.Results[0].Score == bm25.Results[0].Score {
		t.Error("model switch had no effect on scores")
	}
	// SQE still works under BM25.
	resp, err := bm25Eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Error("SQE under BM25 returned nothing")
	}
}

func TestParseQuery(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	words := strings.Fields(q.Text)
	res, err := e.Engine.ParseQuery("#weight(2 "+words[0]+" 1 "+words[1]+")", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("parsed query retrieved nothing")
	}
	if _, err := e.Engine.ParseQuery("#weight(", 5); err == nil {
		t.Error("bad query should error")
	}
}

// Package sqe is the public API of this reproduction of "Structural
// Query Expansion via motifs from Wikipedia" (Guisado-Gámez, Prat-Pérez,
// Larriba-Pey; ExploreDB'17). It exposes the complete pipeline:
//
//	KB graph  ──►  motif search  ──►  expanded query  ──►  retrieval
//
// The heavy lifting lives in the internal packages (see DESIGN.md for
// the system inventory); this package re-exports the types a downstream
// user needs and wires them into an Engine with the paper's defaults:
// triangular + square motifs, |m_a|-weighted expansion features, a
// Dirichlet-smoothed query-likelihood retrieval model and the SQE_C
// result combination.
//
// Quickstart:
//
//	env := sqe.GenerateDemo(sqe.DemoSmall)   // synthetic Wikipedia + corpus
//	eng := env.Engine
//	res := eng.Search("cable cars", []string{"cable car"}, 10)
//	for _, r := range res {
//		fmt.Println(r.Name, r.Score)
//	}
package sqe

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/entitylink"
	"repro/internal/index"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/prf"
	"repro/internal/search"
)

// Re-exported substrate types. The KB graph and the inverted index are
// constructed with their own builders (GraphBuilder, IndexBuilder below)
// or by the demo generator.
type (
	// Graph is the knowledge-base graph (articles, categories, links).
	Graph = kb.Graph
	// NodeID identifies a node in a Graph.
	NodeID = kb.NodeID
	// Index is the positional inverted index of a document collection.
	Index = index.Index
	// Result is one ranked document.
	Result = search.Result
	// MotifSet selects which structural motifs drive the expansion.
	MotifSet = motif.Set
	// GraphBuilder constructs immutable Graphs.
	GraphBuilder = kb.Builder
	// PRFConfig parameterises pseudo-relevance feedback.
	PRFConfig = prf.Config
	// RetrievalModel selects the scoring function (Dirichlet QL, JM,
	// BM25).
	RetrievalModel = search.Model
	// ModelParams holds the retrieval models' parameters.
	ModelParams = search.ModelParams
	// SearchStats carries the retrieval evaluator's per-query counters.
	SearchStats = search.SearchStats
	// PipelineStats aggregates per-stage timings (entity linking, motif
	// search, query build, retrieval) and evaluator counters.
	PipelineStats = core.PipelineStats
	// StageTimings is the per-stage wall-clock breakdown inside
	// PipelineStats.
	StageTimings = core.StageTimings
)

// Retrieval models.
const (
	// ModelDirichlet is the paper's Dirichlet-smoothed query likelihood.
	ModelDirichlet = search.ModelDirichlet
	// ModelJelinekMercer is JM-smoothed query likelihood.
	ModelJelinekMercer = search.ModelJelinekMercer
	// ModelBM25 is Okapi BM25.
	ModelBM25 = search.ModelBM25
)

// Motif configurations, named after the paper's runs.
const (
	// MotifT uses the triangular motif only (best for small tops).
	MotifT = motif.SetT
	// MotifS uses the square motif only (best for large tops).
	MotifS = motif.SetS
	// MotifTS combines both motifs (best in between).
	MotifTS = motif.SetTS
)

// NewGraphBuilder returns a builder for a KB graph, with a capacity hint
// for the expected number of nodes.
func NewGraphBuilder(nodeHint int) *GraphBuilder { return kb.NewBuilder(nodeHint) }

// NewIndexBuilder returns a builder for the document index using the
// standard analyzer (stopwords + Porter stemming) — the same pipeline
// queries go through.
func NewIndexBuilder() *index.Builder { return index.NewBuilder(analysis.Standard()) }

// Feature is one expansion feature of an expanded query.
type Feature struct {
	// Article is the expansion node.
	Article NodeID
	// Title is the article's title; it enters the query as an exact
	// phrase.
	Title string
	// Weight is |m_a|, the number of motif instances the article
	// appeared in.
	Weight float64
}

// Expansion is the result of running SQE's query-graph builder.
type Expansion struct {
	// QueryNodes are the resolved query entities.
	QueryNodes []NodeID
	// QueryNodeTitles are their titles.
	QueryNodeTitles []string
	// Features are the expansion features, sorted by descending weight.
	Features []Feature
}

// Engine bundles a KB graph and a document index into the full SQE
// retrieval pipeline.
type Engine struct {
	graph    *Graph
	searcher *search.Searcher
	expander *core.Expander
	linker   *entitylink.Linker
}

// NewEngine builds an Engine over a KB graph and a document index.
func NewEngine(g *Graph, ix *Index) *Engine {
	return &Engine{
		graph:    g,
		searcher: search.NewSearcher(ix),
		expander: core.NewExpander(g, ix.Analyzer()),
	}
}

// Graph returns the engine's KB graph.
func (e *Engine) Graph() *Graph { return e.graph }

// Index returns the engine's document index.
func (e *Engine) Index() *Index { return e.searcher.Index() }

// SetLinker installs an entity-linking dictionary so that Search and
// Expand can resolve entities from free text when no explicit entity
// titles are given.
func (e *Engine) SetLinker(dict *entitylink.Dictionary) {
	e.linker = entitylink.NewLinker(dict)
}

// SetDirichletMu overrides the retrieval model's smoothing parameter μ
// (default 2500).
func (e *Engine) SetDirichletMu(mu float64) { e.searcher.Mu = mu }

// SetRetrievalModel switches the scoring function. The paper's model is
// ModelDirichlet (the default); ModelJelinekMercer and ModelBM25 are
// provided for comparison studies — SQE's expansions are model-agnostic.
func (e *Engine) SetRetrievalModel(m RetrievalModel, params ModelParams) {
	e.searcher.Model = m
	e.searcher.Params = params
}

// SetLegacyScorer switches retrieval back to the pre-DAAT map-and-sort
// evaluator (the reference oracle used by the differential tests).
// Rankings and scores are identical either way; only cost differs.
func (e *Engine) SetLegacyScorer(on bool) { e.searcher.UseLegacyScorer = on }

// ParseQuery parses an Indri-like structured query (#weight/#combine/
// #1/#uwN/quotes) with the engine's analyzer and retrieves the top k.
func (e *Engine) ParseQuery(query string, k int) ([]Result, error) {
	node, err := search.Parse(e.searcher.Index().Analyzer(), query)
	if err != nil {
		return nil, err
	}
	return e.searcher.Search(node, k), nil
}

// resolveEntities maps entity titles to query nodes; unknown titles are
// reported, not silently dropped. With no titles and a configured
// linker, entities are linked automatically from the query text.
func (e *Engine) resolveEntities(query string, entityTitles []string) ([]NodeID, error) {
	if len(entityTitles) == 0 {
		if e.linker == nil {
			return nil, nil
		}
		return e.linker.LinkArticles(query), nil
	}
	nodes := make([]NodeID, 0, len(entityTitles))
	for _, t := range entityTitles {
		id := e.graph.ByTitle(t)
		if id == kb.Invalid {
			return nil, fmt.Errorf("sqe: unknown entity title %q", t)
		}
		if e.graph.Kind(id) != kb.KindArticle {
			return nil, fmt.Errorf("sqe: entity %q is a category, not an article", t)
		}
		nodes = append(nodes, id)
	}
	return nodes, nil
}

// Expand runs the query-graph builder from the given entities (titles
// resolved against the graph; empty means "link automatically") and
// returns the expansion features.
func (e *Engine) Expand(query string, entityTitles []string, set MotifSet) (*Expansion, error) {
	nodes, err := e.resolveEntities(query, entityTitles)
	if err != nil {
		return nil, err
	}
	qg := e.expander.BuildQueryGraph(nodes, set)
	exp := &Expansion{QueryNodes: qg.QueryNodes}
	for _, n := range qg.QueryNodes {
		exp.QueryNodeTitles = append(exp.QueryNodeTitles, e.graph.Title(n))
	}
	for _, f := range qg.Features {
		exp.Features = append(exp.Features, Feature{
			Article: f.Article,
			Title:   e.graph.Title(f.Article),
			Weight:  f.Weight,
		})
	}
	return exp, nil
}

// SearchSet runs the full SQE pipeline with one motif configuration:
// expansion, three-part query construction, retrieval.
func (e *Engine) SearchSet(set MotifSet, query string, entityTitles []string, k int) ([]Result, error) {
	return e.SearchSetStats(set, query, entityTitles, k, nil)
}

// SearchSetStats is SearchSet with per-stage instrumentation: entity
// linking, motif search, query build and retrieval timings plus the
// evaluator's counters are accumulated into ps (which may be nil).
func (e *Engine) SearchSetStats(set MotifSet, query string, entityTitles []string, k int, ps *PipelineStats) ([]Result, error) {
	start := time.Now()
	nodes, err := e.resolveEntities(query, entityTitles)
	if ps != nil {
		ps.Stages.EntityLink += time.Since(start)
	}
	if err != nil {
		return nil, err
	}
	qg := e.expander.BuildQueryGraphStats(nodes, set, ps)
	node := e.expander.BuildQueryStats(query, qg, ps)
	if ps == nil {
		return e.searcher.Search(node, k), nil
	}
	start = time.Now()
	res, st := e.searcher.SearchWithStats(node, k)
	ps.Stages.Retrieval += time.Since(start)
	ps.Search.Add(st)
	ps.Retrievals++
	return res, nil
}

// Search runs the paper's SQE_C configuration: the first five results
// come from the triangular-motif expansion, results through rank 200
// from the combined expansion, and the remainder from the square-motif
// expansion.
func (e *Engine) Search(query string, entityTitles []string, k int) ([]Result, error) {
	return e.SearchWithStats(query, entityTitles, k, nil)
}

// SearchWithStats is Search (the full SQE_C pipeline) with per-stage
// instrumentation accumulated into ps (which may be nil): the three
// per-set expansions and retrievals are all attributed to their stages.
func (e *Engine) SearchWithStats(query string, entityTitles []string, k int, ps *PipelineStats) ([]Result, error) {
	runT, err := e.SearchSetStats(MotifT, query, entityTitles, k, ps)
	if err != nil {
		return nil, err
	}
	runTS, err := e.SearchSetStats(MotifTS, query, entityTitles, k, ps)
	if err != nil {
		return nil, err
	}
	runS, err := e.SearchSetStats(MotifS, query, entityTitles, k, ps)
	if err != nil {
		return nil, err
	}
	if ps != nil {
		ps.Queries++
	}
	names := core.SpliceC(k, core.ResultNames(runT), core.ResultNames(runTS), core.ResultNames(runS))
	byName := make(map[string]Result, len(runT)+len(runTS)+len(runS))
	for _, rs := range [][]Result{runT, runTS, runS} {
		for _, r := range rs {
			if _, ok := byName[r.Name]; !ok {
				byName[r.Name] = r
			}
		}
	}
	out := make([]Result, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out, nil
}

// BaselineSearch runs the plain query-likelihood baseline (QL_Q): the
// user's query with no expansion.
func (e *Engine) BaselineSearch(query string, k int) []Result {
	return e.searcher.Search(e.expander.QLQuery(query), k)
}

// SearchPRF applies pseudo-relevance feedback (Lavrenko relevance model)
// on top of the SQE expansion for one motif set — the paper's
// orthogonality experiment (Section 4.3).
func (e *Engine) SearchPRF(set MotifSet, query string, entityTitles []string, cfg PRFConfig, k int) ([]Result, error) {
	nodes, err := e.resolveEntities(query, entityTitles)
	if err != nil {
		return nil, err
	}
	qg := e.expander.BuildQueryGraph(nodes, set)
	node := prf.Reformulate(e.searcher, e.expander.BuildQuery(query, qg), cfg)
	return e.searcher.Search(node, k), nil
}

// BaselineSearchPRF applies pseudo-relevance feedback to the plain
// user query with no expansion — the paper's PRF_Q configuration, whose
// collapse on vocabulary-mismatched collections Section 4.3 demonstrates.
func (e *Engine) BaselineSearchPRF(query string, cfg PRFConfig, k int) []Result {
	node := prf.Reformulate(e.searcher, e.expander.QLQuery(query), cfg)
	return e.searcher.Search(node, k)
}

// Expander exposes the underlying expander for advanced configuration
// (part weights, feature caps, motif-condition ablations).
func (e *Engine) Expander() *core.Expander { return e.expander }

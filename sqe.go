// Package sqe is the public API of this reproduction of "Structural
// Query Expansion via motifs from Wikipedia" (Guisado-Gámez, Prat-Pérez,
// Larriba-Pey; ExploreDB'17). It exposes the complete pipeline:
//
//	KB graph  ──►  motif search  ──►  expanded query  ──►  retrieval
//
// The heavy lifting lives in the internal packages (see DESIGN.md for
// the system inventory); this package re-exports the types a downstream
// user needs and wires them into an Engine with the paper's defaults:
// triangular + square motifs, |m_a|-weighted expansion features, a
// Dirichlet-smoothed query-likelihood retrieval model and the SQE_C
// result combination.
//
// Quickstart:
//
//	env := sqe.GenerateDemo(sqe.DemoSmall)   // synthetic Wikipedia + corpus
//	eng := env.Engine
//	resp, err := eng.Do(ctx, sqe.SearchRequest{
//		Query:        "cable cars",
//		EntityTitles: []string{"cable car"},
//		K:            10,
//	})
//	for _, r := range resp.Results {
//		fmt.Println(r.Name, r.Score)
//	}
//
// An Engine is configured at construction with functional options and is
// immutable and safe for concurrent use afterwards:
//
//	eng := sqe.NewEngine(graph, ix,
//		sqe.WithLinker(dict),
//		sqe.WithDirichletMu(500),
//		sqe.WithExpansionCache(4096),
//		sqe.WithShards(4),
//	)
//
// Engine.Do is the primary retrieval entry point: one context-first
// call whose SearchRequest selects the configuration (SQE_C by default;
// an explicit MotifSet, the QL baseline, or PRF on top of either) and
// whose SearchResponse carries the ranking, the expansion used, and
// optional per-stage instrumentation. The pre-Do method matrix
// (Search/SearchSet/SearchWithStats/SearchPRF × Context × Stats) remains
// as deprecated wrappers over the same machinery. Expansion without
// retrieval stays on Expand/ExpandContext.
//
// WithShards(n) partitions the index into n round-robin shards whose
// retrievals evaluate in parallel and merge into a final top-k —
// bit-identical to the unsharded engine for every retrieval model.
package sqe

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/entitylink"
	"repro/internal/index"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/prf"
	"repro/internal/search"
)

// Re-exported substrate types. The KB graph and the inverted index are
// constructed with their own builders (GraphBuilder, IndexBuilder below)
// or by the demo generator.
type (
	// Graph is the knowledge-base graph (articles, categories, links).
	Graph = kb.Graph
	// NodeID identifies a node in a Graph.
	NodeID = kb.NodeID
	// Index is the positional inverted index of a document collection.
	Index = index.Index
	// Result is one ranked document.
	Result = search.Result
	// MotifSet selects which structural motifs drive the expansion.
	MotifSet = motif.Set
	// GraphBuilder constructs immutable Graphs.
	GraphBuilder = kb.Builder
	// PRFConfig parameterises pseudo-relevance feedback.
	PRFConfig = prf.Config
	// RetrievalModel selects the scoring function (Dirichlet QL, JM,
	// BM25).
	RetrievalModel = search.Model
	// ModelParams holds the retrieval models' parameters.
	ModelParams = search.ModelParams
	// SearchStats carries the retrieval evaluator's per-query counters.
	SearchStats = search.SearchStats
	// ShardSearchStats is one shard's slice of a sharded retrieval's
	// counters (SearchStats.Shards).
	ShardSearchStats = search.ShardStats
	// PipelineStats aggregates per-stage timings (entity linking, motif
	// search, query build, retrieval) and evaluator counters.
	PipelineStats = core.PipelineStats
	// StageTimings is the per-stage wall-clock breakdown inside
	// PipelineStats.
	StageTimings = core.StageTimings
	// CacheStats are the expansion cache's hit/miss/eviction counters
	// (see WithExpansionCache).
	CacheStats = core.CacheStats
	// ExpansionStore is a precomputed entity→expansion store built
	// offline by cmd/sqe-precompute (see WithPrecomputedExpansions).
	ExpansionStore = core.PrecomputedStore
	// StoreStats are the precomputed store's hit/miss counters (see
	// Engine.ExpansionStoreStats).
	StoreStats = core.StoreStats
)

// Retrieval models.
const (
	// ModelDirichlet is the paper's Dirichlet-smoothed query likelihood.
	ModelDirichlet = search.ModelDirichlet
	// ModelJelinekMercer is JM-smoothed query likelihood.
	ModelJelinekMercer = search.ModelJelinekMercer
	// ModelBM25 is Okapi BM25.
	ModelBM25 = search.ModelBM25
)

// Motif configurations, named after the paper's runs.
const (
	// MotifT uses the triangular motif only (best for small tops).
	MotifT = motif.SetT
	// MotifS uses the square motif only (best for large tops).
	MotifS = motif.SetS
	// MotifTS combines both motifs (best in between).
	MotifTS = motif.SetTS
)

// NewGraphBuilder returns a builder for a KB graph, with a capacity hint
// for the expected number of nodes.
func NewGraphBuilder(nodeHint int) *GraphBuilder { return kb.NewBuilder(nodeHint) }

// NewIndexBuilder returns a builder for the document index using the
// standard analyzer (stopwords + Porter stemming) — the same pipeline
// queries go through.
func NewIndexBuilder() *index.Builder { return index.NewBuilder(analysis.Standard()) }

// Feature is one expansion feature of an expanded query.
type Feature struct {
	// Article is the expansion node.
	Article NodeID
	// Title is the article's title; it enters the query as an exact
	// phrase.
	Title string
	// Weight is |m_a|, the number of motif instances the article
	// appeared in.
	Weight float64
}

// Expansion is the result of running SQE's query-graph builder.
type Expansion struct {
	// QueryNodes are the resolved query entities.
	QueryNodes []NodeID
	// QueryNodeTitles are their titles.
	QueryNodeTitles []string
	// Features are the expansion features, sorted by descending weight.
	Features []Feature
}

// Engine bundles a KB graph and a document index into the full SQE
// retrieval pipeline.
//
// An Engine is configured through the Options passed to NewEngine and is
// immutable afterwards: any number of goroutines may call its Search,
// Expand and Baseline methods concurrently. (The deprecated Set*
// mutators remain for old callers; they are construction-time-only and
// not synchronised.)
type Engine struct {
	graph    *Graph
	searcher *search.Searcher
	expander *core.Expander
	linker   *entitylink.Linker
	// cache memoises motif expansions across requests; nil when caching
	// is off (the default outside serving).
	cache *core.ExpansionCache
	// precomputed is the offline expansion store consulted between the
	// cache and a live motif search; nil when none is attached (or when
	// the attached store was dropped as stale — see precomputedStale).
	precomputed *core.PrecomputedStore
	// precomputedStale records that WithPrecomputedExpansions supplied a
	// store whose KB hash did not match this engine's graph: the store
	// was dropped (serving stale expansions would silently break the
	// byte-identity guarantee) and the mismatch is surfaced through
	// ExpansionStoreStats and the /metrics staleness gauge.
	precomputedStale bool
	// workers bounds how many of an SQE_C call's three runs evaluate
	// concurrently, engine-wide across requests; <= 1 runs them
	// sequentially on the caller's goroutine.
	workers int
	// sem is the engine-wide worker semaphore (nil when workers <= 1).
	// SQE_C runs block on it; shard fan-outs only try-acquire it (see
	// search.ShardedSearcher.Sem), so sharing one pool cannot deadlock.
	sem chan struct{}
	// shards is the shard count requested via WithShards (0/1 =
	// unsharded).
	shards int
	// sharded is the parallel per-shard retrieval path; nil when the
	// engine is unsharded. It is either the in-process ShardedSearcher
	// (WithShards) or an RPC coordinator over shard-server processes
	// (WithDistributedSearcher); both return results bit-identical to
	// the unsharded searcher — see internal/search.Distributed.
	sharded search.Distributed
	// degrade, when non-nil, enables graceful degradation in Do (see
	// WithDegradation and DegradationPolicy); nil keeps the strict
	// all-or-nothing behaviour.
	degrade *DegradationPolicy
	// live, when non-nil, is the segmented index a live engine serves
	// and mutates (see NewLiveEngine); retrieval then routes through
	// sharded (a snapshot-pinning segmented searcher) and searcher wraps
	// an empty placeholder.
	live *LiveIndex
}

// Option configures an Engine at construction (see NewEngine).
type Option func(*Engine)

// WithLinker installs an entity-linking dictionary so that Search and
// Expand can resolve entities from free text when no explicit entity
// titles are given.
func WithLinker(dict *entitylink.Dictionary) Option {
	return func(e *Engine) { e.linker = entitylink.NewLinker(dict) }
}

// WithRetrievalModel switches the scoring function. The paper's model is
// ModelDirichlet (the default); ModelJelinekMercer and ModelBM25 are
// provided for comparison studies — SQE's expansions are model-agnostic.
func WithRetrievalModel(m RetrievalModel, params ModelParams) Option {
	return func(e *Engine) {
		e.searcher.Model = m
		e.searcher.Params = params
	}
}

// WithDirichletMu overrides the retrieval model's smoothing parameter μ
// (default 2500).
func WithDirichletMu(mu float64) Option {
	return func(e *Engine) { e.searcher.Mu = mu }
}

// WithLegacyScorer switches retrieval to the pre-DAAT map-and-sort
// evaluator (the reference oracle used by the differential tests).
// Rankings and scores are identical either way; only cost differs.
func WithLegacyScorer() Option {
	return func(e *Engine) { e.searcher.UseLegacyScorer = true }
}

// WithPruning toggles MaxScore-style score-safe dynamic pruning in the
// document-at-a-time evaluator (default on). With pruning, candidates
// that provably cannot enter the current top-k — judged against
// per-leaf score upper bounds derived from index metadata at
// query-compile time — are skipped without being scored; rankings and
// scores stay bit-identical to the unpruned evaluator for every
// retrieval model and shard count (the differential tests in
// pruning_diff_test.go enforce this). WithPruning(false) is the escape
// hatch for debugging and the full-evaluation side of
// `sqe-bench -exp pruning`; the legacy scorer ignores the flag.
func WithPruning(on bool) Option {
	return func(e *Engine) { e.searcher.DisablePruning = !on }
}

// WithExpansionCache bounds a sharded LRU cache over motif expansions
// to the given number of entries, keyed by the sorted query nodes, the
// motif set and the complete expander/matcher configuration (see
// core.(*Expander).ExpansionKey). Repeated queries — including the
// three runs of a repeated SQE_C call — skip motif search entirely;
// hits are bit-identical to the expansion that populated them.
// entries <= 0 disables caching.
func WithExpansionCache(entries int) Option {
	return func(e *Engine) {
		if entries > 0 {
			e.cache = core.NewExpansionCache(entries)
		} else {
			e.cache = nil
		}
	}
}

// WithPrecomputedExpansions attaches a precomputed expansion store
// (built offline by cmd/sqe-precompute, opened with OpenExpansionStore)
// to the engine. Requests whose (entity set, motif set, configuration)
// key is in the store skip motif search entirely; the served graphs are
// byte-identical to live expansion — the store holds canonical graphs
// under the same complete keys as the LRU cache, and a hit rebinds the
// caller's node order exactly as a cache hit does. Keys absent from the
// store fall through to the cache/live-build path unchanged.
//
// The store records the content hash of the KB it was built over
// (kb.ContentHash); NewEngine drops a store whose hash does not match
// the engine's graph rather than serve expansions of a KB that no
// longer exists. The mismatch is observable through
// ExpansionStoreStats (Stale) and the serving layer's
// sqe_expansion_store_stale gauge.
//
// When an expansion cache is also configured, NewEngine warms it from
// the store at construction, so even LRU-evicted entries still hit the
// store afterwards. A nil store is a no-op.
func WithPrecomputedExpansions(store *ExpansionStore) Option {
	return func(e *Engine) { e.precomputed = store }
}

// OpenExpansionStore opens and fully validates a store file written by
// cmd/sqe-precompute (truncation and corruption are detected up front —
// record checksums, bounds-checked lengths — never at serving time).
func OpenExpansionStore(path string) (*ExpansionStore, error) {
	return core.OpenStoreFile(path)
}

// WithSQECWorkers bounds how many of SQE_C's three independent runs
// (T, T&S, S) evaluate concurrently, shared engine-wide across requests.
// n <= 1 forces the sequential path; the default is GOMAXPROCS. Parallel
// and sequential paths return byte-identical results — the runs are
// independent and the combination is deterministic.
func WithSQECWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithShards partitions the document index across n round-robin shards
// at engine construction and evaluates every retrieval as a parallel
// per-shard document-at-a-time scan with a final top-k merge. Each query
// leaf's collection statistics are replaced by their exact cross-shard
// sums before scoring, so rankings and scores are bit-identical to the
// unsharded engine for every retrieval model (the differential tests in
// sharded_diff_test.go enforce this). n is clamped to the document
// count; n <= 1 keeps the single-index path. Shard evaluations share the
// engine-wide worker semaphore with SQE_C runs (see WithSQECWorkers),
// falling back to inline evaluation when the pool is saturated.
func WithShards(n int) Option {
	return func(e *Engine) { e.shards = n }
}

// DistributedSearcher is the engine-facing contract of sharded
// retrieval: the in-process sharded searcher and the RPC coordinator
// over shard-server processes both satisfy it, and both are
// bit-identical to the unsharded engine.
type DistributedSearcher = search.Distributed

// WithDistributedSearcher installs a pre-built distributed retrieval
// backend — typically an RPC coordinator over shard-server processes
// (search.NewRemoteSharded; see cmd/sqe-serve's coordinator mode). The
// engine mirrors its retrieval configuration (model, parameters,
// pruning, worker pool) onto the backend at construction, exactly as it
// does for WithShards, so distributed scores stay bit-identical to the
// single-process engine over the same corpus and shard count.
//
// The shard servers must hold the same corpus partitioned with the same
// round-robin function (index.NewSharded) and the same analyzer — the
// coordinator verifies shard identity at handshake and leaf-count
// agreement per query, and `make distributed-smoke` enforces the full
// bit-identity end to end. Takes precedence over WithShards.
func WithDistributedSearcher(d DistributedSearcher) Option {
	return func(e *Engine) { e.sharded = d }
}

// NewEngine builds an Engine over a KB graph and a document index,
// configured by the given options. The returned Engine is safe for
// concurrent use.
func NewEngine(g *Graph, ix *Index, opts ...Option) *Engine {
	e := &Engine{
		graph:    g,
		searcher: search.NewSearcher(ix),
		expander: core.NewExpander(g, ix.Analyzer()),
		workers:  runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.workers > 1 {
		e.sem = make(chan struct{}, e.workers)
	}
	if e.precomputed != nil {
		if e.precomputed.KBHash() != kb.ContentHash(g) {
			// The store was built over a different KB; serving its graphs
			// would be silently wrong. Drop it and surface the mismatch.
			e.precomputed = nil
			e.precomputedStale = true
		} else if e.cache != nil {
			// Warm the LRU from the store so the first requests after boot
			// hit the cache tier directly. Capacity bounds still apply —
			// the cache keeps whatever fits.
			e.precomputed.Range(func(key string, qg core.QueryGraph) bool {
				e.cache.Put(key, qg)
				return true
			})
		}
	}
	if e.sharded == nil && e.shards > 1 {
		if sh := index.NewSharded(ix, e.shards); sh.NumShards() > 1 {
			e.sharded = search.NewShardedSearcher(sh)
		}
	}
	if e.sharded != nil {
		// Mirror the retrieval configuration the options set on the
		// unsharded searcher; the two paths must score identically.
		e.sharded.Configure(search.ShardConfig{
			Mu:             e.searcher.Mu,
			Model:          e.searcher.Model,
			Params:         e.searcher.Params,
			DisablePruning: e.searcher.DisablePruning,
			Sem:            e.sem,
		})
	}
	return e
}

// Shards returns the engine's effective shard count (1 when unsharded).
func (e *Engine) Shards() int {
	if e.sharded != nil {
		return e.sharded.NumShards()
	}
	return 1
}

// Graph returns the engine's KB graph.
func (e *Engine) Graph() *Graph { return e.graph }

// Index returns the engine's document index.
func (e *Engine) Index() *Index { return e.searcher.Index() }

// ExpansionCacheStats reports the expansion cache's counters; ok is
// false when the engine was built without WithExpansionCache.
func (e *Engine) ExpansionCacheStats() (stats CacheStats, ok bool) {
	if e.cache == nil {
		return CacheStats{}, false
	}
	return e.cache.Stats(), true
}

// ExpansionStoreStats reports the precomputed expansion store's
// counters; ok is false when the engine was built without
// WithPrecomputedExpansions. A store dropped at construction for a KB
// hash mismatch reports ok = true with zero counters and Stale set.
func (e *Engine) ExpansionStoreStats() (stats StoreStats, ok bool) {
	switch {
	case e.precomputed != nil:
		return e.precomputed.Stats(), true
	case e.precomputedStale:
		return StoreStats{Stale: true}, true
	default:
		return StoreStats{}, false
	}
}

// ParseQuery parses an Indri-like structured query (#weight/#combine/
// #1/#uwN/quotes) with the engine's analyzer and retrieves the top k.
func (e *Engine) ParseQuery(query string, k int) ([]Result, error) {
	return e.ParseQueryContext(context.Background(), query, k)
}

// ParseQueryContext is ParseQuery under a context deadline.
func (e *Engine) ParseQueryContext(ctx context.Context, query string, k int) ([]Result, error) {
	node, err := search.Parse(e.searcher.Index().Analyzer(), query)
	if err != nil {
		return nil, err
	}
	return e.retrieve(ctx, node, k, nil)
}

// resolveEntities maps entity titles to query nodes; unknown titles are
// reported, not silently dropped. With no titles and a configured
// linker, entities are linked automatically from the query text.
func (e *Engine) resolveEntities(query string, entityTitles []string) ([]NodeID, error) {
	if len(entityTitles) == 0 {
		if e.linker == nil {
			return nil, nil
		}
		return e.linker.LinkArticles(query), nil
	}
	nodes := make([]NodeID, 0, len(entityTitles))
	for _, t := range entityTitles {
		id := e.graph.ByTitle(t)
		if id == kb.Invalid {
			return nil, fmt.Errorf("sqe: unknown entity title %q", t)
		}
		if e.graph.Kind(id) != kb.KindArticle {
			return nil, fmt.Errorf("sqe: entity %q is a category, not an article", t)
		}
		nodes = append(nodes, id)
	}
	return nodes, nil
}

// Expand runs the query-graph builder from the given entities (titles
// resolved against the graph; empty means "link automatically") and
// returns the expansion features.
func (e *Engine) Expand(query string, entityTitles []string, set MotifSet) (*Expansion, error) {
	return e.ExpandContext(context.Background(), query, entityTitles, set)
}

// ExpandContext is Expand under a context: the check happens before the
// motif search starts (motif search itself is not interruptible — it is
// bounded by the query's neighbourhood, not the corpus).
func (e *Engine) ExpandContext(ctx context.Context, query string, entityTitles []string, set MotifSet) (*Expansion, error) {
	nodes, err := e.resolveEntities(query, entityTitles)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qg := e.expander.BuildQueryGraphStored(nodes, set, e.cache, e.precomputed)
	return e.expansionOf(qg), nil
}

// Expander exposes the underlying expander for advanced configuration
// (part weights, feature caps, motif-condition ablations). Reconfigure
// it only before the Engine starts serving concurrent traffic. Every
// knob — including the matcher-level ablation toggles — is part of the
// expansion cache/store key (see core.(*Expander).ExpansionKey), so
// reconfiguring never serves entries built under the old configuration;
// it only turns them into misses.
func (e *Engine) Expander() *core.Expander { return e.expander }

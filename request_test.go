package sqe

import (
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestSearchRequestValidation is the table gate for Do's up-front
// request validation.
func TestSearchRequestValidation(t *testing.T) {
	valid := SearchRequest{Query: "cable cars", K: 10}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		req  SearchRequest
		want string // substring of the error
	}{
		{"zero k", SearchRequest{Query: "q"}, "K must be positive"},
		{"negative k", SearchRequest{Query: "q", K: -5}, "K must be positive"},
		{"unknown motif set", SearchRequest{Query: "q", K: 5, MotifSet: MotifSet(7)}, "unknown motif set"},
		{"baseline with set", SearchRequest{Query: "q", K: 5, Baseline: true, MotifSet: MotifT}, "Baseline excludes MotifSet"},
		{"baseline with entities", SearchRequest{Query: "q", K: 5, Baseline: true, EntityTitles: []string{"X"}}, "Baseline excludes EntityTitles"},
		{"prf without set", SearchRequest{Query: "q", K: 5, PRF: &PRFConfig{}}, "PRF requires"},
		{"negative fbdocs", SearchRequest{Query: "q", K: 5, MotifSet: MotifT, PRF: &PRFConfig{FbDocs: -1}}, "FbDocs"},
		{"negative fbterms", SearchRequest{Query: "q", K: 5, MotifSet: MotifT, PRF: &PRFConfig{FbTerms: -2}}, "FbTerms"},
		{"origweight above one", SearchRequest{Query: "q", K: 5, MotifSet: MotifT, PRF: &PRFConfig{OrigWeight: 1.5}}, "OrigWeight"},
		{"origweight nan", SearchRequest{Query: "q", K: 5, MotifSet: MotifT, PRF: &PRFConfig{OrigWeight: math.NaN()}}, "OrigWeight"},
	}
	e := demo(t)
	for _, c := range cases {
		err := c.req.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want substring %q", c.name, err, c.want)
		}
		// Do must reject identically, before touching the pipeline.
		if _, derr := e.Engine.Do(context.Background(), c.req); derr == nil || derr.Error() != err.Error() {
			t.Errorf("%s: Do error %v != Validate error %v", c.name, derr, err)
		}
	}
	// Valid PRF configurations pass.
	for _, p := range []PRFConfig{{}, {FbDocs: 5, FbTerms: 10}, {OrigWeight: 1}} {
		req := SearchRequest{Query: "q", K: 5, MotifSet: MotifT, PRF: &p}
		if err := req.Validate(); err != nil {
			t.Errorf("PRF %+v rejected: %v", p, err)
		}
	}
}

// TestDoParityWithDeprecatedMethods is the wrapper parity gate: every
// deprecated method must return exactly what the equivalent Do request
// returns, for every demo query.
func TestDoParityWithDeprecatedMethods(t *testing.T) {
	e := demo(t)
	eng := e.Engine
	ctx := context.Background()
	cfg := PRFConfig{FbDocs: 5, FbTerms: 10}
	for _, q := range e.Queries {
		// SQE_C.
		do, err := eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 20})
		if err != nil {
			t.Fatalf("%s: Do: %v", q.ID, err)
		}
		old, err := eng.Search(q.Text, q.EntityTitles, 20)
		if err != nil || !reflect.DeepEqual(do.Results, old) {
			t.Fatalf("%s: Search != Do (err=%v)", q.ID, err)
		}
		// Single sets.
		for _, set := range []MotifSet{MotifT, MotifTS, MotifS} {
			do, err := eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: set, K: 20})
			if err != nil {
				t.Fatalf("%s set=%v: Do: %v", q.ID, set, err)
			}
			old, err := eng.SearchSet(set, q.Text, q.EntityTitles, 20)
			if err != nil || !reflect.DeepEqual(do.Results, old) {
				t.Fatalf("%s set=%v: SearchSet != Do (err=%v)", q.ID, set, err)
			}
		}
		// Baseline.
		do, err = eng.Do(ctx, SearchRequest{Query: q.Text, K: 20, Baseline: true})
		if err != nil {
			t.Fatalf("%s: Do baseline: %v", q.ID, err)
		}
		old, err = eng.BaselineSearch(q.Text, 20)
		if err != nil || !reflect.DeepEqual(do.Results, old) {
			t.Fatalf("%s: BaselineSearch != Do (err=%v)", q.ID, err)
		}
		// PRF over a set and over the baseline.
		do, err = eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 20, PRF: &cfg})
		if err != nil {
			t.Fatalf("%s: Do PRF: %v", q.ID, err)
		}
		old, err = eng.SearchPRF(MotifTS, q.Text, q.EntityTitles, cfg, 20)
		if err != nil || !reflect.DeepEqual(do.Results, old) {
			t.Fatalf("%s: SearchPRF != Do (err=%v)", q.ID, err)
		}
		do, err = eng.Do(ctx, SearchRequest{Query: q.Text, K: 20, Baseline: true, PRF: &cfg})
		if err != nil {
			t.Fatalf("%s: Do baseline PRF: %v", q.ID, err)
		}
		old, err = eng.BaselineSearchPRF(q.Text, cfg, 20)
		if err != nil || !reflect.DeepEqual(do.Results, old) {
			t.Fatalf("%s: BaselineSearchPRF != Do (err=%v)", q.ID, err)
		}
	}
}

// TestDoStatsParity pins the stats contracts: Do counts one query per
// call and every deprecated wrapper — the set path included — counts
// the same way, so aggregating across entry points into one
// PipelineStats stays coherent.
func TestDoStatsParity(t *testing.T) {
	e := demo(t)
	eng := e.Engine
	q := e.Queries[0]
	ctx := context.Background()

	do, err := eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 20, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if do.Stats == nil || do.Stats.Queries != 1 || do.Stats.Retrievals != 3 {
		t.Fatalf("Do SQE_C stats: %+v", do.Stats)
	}
	var ps PipelineStats
	if _, err := eng.SearchWithStats(q.Text, q.EntityTitles, 20, &ps); err != nil {
		t.Fatal(err)
	}
	if ps.Queries != do.Stats.Queries || ps.Retrievals != do.Stats.Retrievals || ps.Features != do.Stats.Features {
		t.Fatalf("SearchWithStats counters %+v != Do %+v", ps, *do.Stats)
	}
	if ps.Search.CandidatesExamined != do.Stats.Search.CandidatesExamined {
		t.Fatalf("evaluator counters diverge: %d != %d", ps.Search.CandidatesExamined, do.Stats.Search.CandidatesExamined)
	}

	doSet, err := eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 20, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if doSet.Stats.Queries != 1 || doSet.Stats.Retrievals != 1 {
		t.Fatalf("Do set stats: %+v", doSet.Stats)
	}
	var psSet PipelineStats
	if _, err := eng.SearchSetStats(MotifTS, q.Text, q.EntityTitles, 20, &psSet); err != nil {
		t.Fatal(err)
	}
	if psSet.Queries != 1 {
		t.Fatalf("legacy set path must count one query like Do, got %d", psSet.Queries)
	}
	if psSet.Retrievals != 1 || psSet.Features != doSet.Stats.Features ||
		psSet.Search.CandidatesExamined != doSet.Stats.Search.CandidatesExamined {
		t.Fatalf("legacy set counters %+v != Do %+v", psSet, *doSet.Stats)
	}

	// The legacy quirk paths (k <= 0, set == 0) bypass Do but must count
	// queries identically.
	var psQuirk PipelineStats
	if _, err := eng.SearchSetStats(MotifTS, q.Text, q.EntityTitles, 0, &psQuirk); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SearchSetStats(0, q.Text, q.EntityTitles, 20, &psQuirk); err != nil {
		t.Fatal(err)
	}
	if psQuirk.Queries != 2 {
		t.Fatalf("legacy quirk paths must count one query each, got %d", psQuirk.Queries)
	}
}

// TestDoExpansion: Do returns the expansion used — the single run's for
// an explicit set (identical to Expand), the combined run's for SQE_C,
// none for the baseline.
func TestDoExpansion(t *testing.T) {
	e := demo(t)
	eng := e.Engine
	q := e.Queries[0]
	ctx := context.Background()
	doSet, err := eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Expand(q.Text, q.EntityTitles, MotifTS)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doSet.Expansion, want) {
		t.Fatal("Do(set=TS).Expansion != Expand(TS)")
	}
	doC, err := eng.Do(ctx, SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doC.Expansion, want) {
		t.Fatal("Do(SQE_C).Expansion should be the combined (T&S) run's")
	}
	doB, err := eng.Do(ctx, SearchRequest{Query: q.Text, K: 10, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if doB.Expansion != nil {
		t.Fatal("baseline request returned an expansion")
	}
	if doSet.Stats != nil || doC.Stats != nil {
		t.Fatal("Stats must be nil without CollectStats")
	}
}

// TestDoUnknownEntity: entity-resolution failures surface from Do like
// they did from the deprecated methods.
func TestDoUnknownEntity(t *testing.T) {
	e := demo(t)
	_, err := e.Engine.Do(context.Background(), SearchRequest{
		Query: "anything", EntityTitles: []string{"No Such Article XYZ"}, K: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "unknown entity title") {
		t.Fatalf("want unknown-entity error, got %v", err)
	}
}

// FuzzSearchRequestValidation fuzzes the request validator and, for
// requests that validate, drives Do end to end on a sharded engine: Do
// must never panic, must reject exactly when Validate rejects, and must
// return at most K results.
func FuzzSearchRequestValidation(f *testing.F) {
	f.Add("cable cars", 10, uint8(0), false, false, 10, 20, 0.0)
	f.Add("", -1, uint8(3), true, true, -1, -1, 1.5)
	f.Add("tram", 0, uint8(7), false, true, 0, 0, math.Inf(1))
	f.Add("q", 5, uint8(1), true, false, 3, 3, 0.5)
	f.Add("harbour", 1000000, uint8(2), false, true, 100, 100, 1.0)
	f.Fuzz(func(t *testing.T, query string, k int, set uint8, baseline, withPRF bool, fbDocs, fbTerms int, origW float64) {
		req := SearchRequest{Query: query, K: k, MotifSet: MotifSet(set), Baseline: baseline}
		if withPRF {
			req.PRF = &PRFConfig{FbDocs: fbDocs, FbTerms: fbTerms, OrigWeight: origW}
		}
		err := req.Validate()
		// Invariants the validator must enforce regardless of input.
		if k <= 0 && err == nil {
			t.Fatalf("K=%d accepted", k)
		}
		if set > 3 && err == nil {
			t.Fatalf("motif set %d accepted", set)
		}
		if withPRF && (fbDocs < 0 || fbTerms < 0 || math.IsNaN(origW) || origW < 0 || origW > 1) && err == nil {
			t.Fatalf("invalid PRF %+v accepted", req.PRF)
		}
		e := demo(t)
		eng := fuzzEngine(t)
		resp, derr := eng.Do(context.Background(), req)
		if (derr != nil) != (err != nil) && err != nil {
			t.Fatalf("Validate err=%v but Do err=%v", err, derr)
		}
		if derr == nil {
			if resp == nil || len(resp.Results) > k {
				t.Fatalf("Do returned %d results for K=%d", len(resp.Results), k)
			}
		}
		_ = e
	})
}

var (
	fuzzEngOnce sync.Once
	fuzzEng     *Engine
)

// fuzzEngine is a shared sharded engine without a linker (arbitrary
// fuzzed queries resolve no entities and exercise the retrieval paths
// cheaply).
func fuzzEngine(t *testing.T) *Engine {
	t.Helper()
	e := demo(t)
	fuzzEngOnce.Do(func() {
		fuzzEng = NewEngine(e.Engine.Graph(), e.Engine.Index(), WithShards(4), WithExpansionCache(64))
	})
	return fuzzEng
}

// TestDoCacheHitByteIdentical: on a cache-enabled engine, a request
// whose expansion is served from the cache — including via a *permuted*
// entity list that shares the entry — must return results and expansion
// byte-identical to a cache-less engine's cold run of the same request.
func TestDoCacheHitByteIdentical(t *testing.T) {
	e := demo(t)
	cold := NewEngine(e.Engine.Graph(), e.Engine.Index())
	cached := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithExpansionCache(128))
	ctx := context.Background()
	for _, q := range e.Queries {
		if len(q.EntityTitles) < 2 {
			continue
		}
		perm := make([]string, len(q.EntityTitles))
		for i, t := range q.EntityTitles {
			perm[len(perm)-1-i] = t
		}
		for _, titles := range [][]string{q.EntityTitles, perm} {
			req := SearchRequest{Query: q.Text, EntityTitles: titles, MotifSet: MotifTS, K: 25}
			want, err := cold.Do(ctx, req)
			if err != nil {
				t.Fatalf("%s: cold: %v", q.ID, err)
			}
			// Twice: first call may miss, second is a guaranteed hit.
			for pass := 0; pass < 2; pass++ {
				got, err := cached.Do(ctx, req)
				if err != nil {
					t.Fatalf("%s pass %d: cached: %v", q.ID, pass, err)
				}
				if !reflect.DeepEqual(want.Results, got.Results) {
					t.Fatalf("%s pass %d titles=%v: cached results diverge from cold run", q.ID, pass, titles)
				}
				if !reflect.DeepEqual(want.Expansion, got.Expansion) {
					t.Fatalf("%s pass %d titles=%v: cached expansion diverges from cold run", q.ID, pass, titles)
				}
			}
		}
	}
	if st, ok := cached.ExpansionCacheStats(); !ok || st.Hits == 0 {
		t.Fatalf("test never exercised a cache hit: %+v", st)
	}
}

// TestDoConcurrentSharded hammers Do on one shared sharded engine from
// many goroutines mixing configurations; under -race (Makefile `race`
// target) this is the data-race gate for the sharded fan-out sharing
// the engine semaphore with parallel SQE_C runs.
func TestDoConcurrentSharded(t *testing.T) {
	e := demo(t)
	eng := NewEngine(e.Engine.Graph(), e.Engine.Index(),
		WithShards(4), WithSQECWorkers(2), WithExpansionCache(128))
	queries := e.Queries
	ctx := context.Background()
	reqs := func(q DemoQuery) []SearchRequest {
		return []SearchRequest{
			{Query: q.Text, EntityTitles: q.EntityTitles, K: 20},
			{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 20, CollectStats: true},
			{Query: q.Text, K: 20, Baseline: true},
		}
	}
	want := make(map[string][]Result)
	for _, q := range queries {
		for ri, req := range reqs(q) {
			resp, err := eng.Do(ctx, req)
			if err != nil {
				t.Fatalf("%s/%d: %v", q.ID, ri, err)
			}
			want[q.ID+string(rune('0'+ri))] = resp.Results
		}
	}
	const goroutines = 8
	iters := 15
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				q := queries[(w+it)%len(queries)]
				ri := it % 3
				req := reqs(q)[ri]
				resp, err := eng.Do(ctx, req)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !reflect.DeepEqual(resp.Results, want[q.ID+string(rune('0'+ri))]) {
					t.Errorf("worker %d: Do diverged on %s/%d", w, q.ID, ri)
					return
				}
				if req.CollectStats && len(resp.Stats.Search.Shards) != 4 {
					t.Errorf("worker %d: missing shard stats", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

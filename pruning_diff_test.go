package sqe

import (
	"context"
	"reflect"
	"testing"
)

// TestEnginePruningBitIdentical is the engine-level differential gate
// for the tentpole: with pruning on (the default) every pipeline
// configuration — all three retrieval models, raw (QL baseline) and
// expanded (SQE_C, single motif set) queries, shard counts 1/2/4/8 —
// must return rankings and scores bit-identical (DeepEqual, no
// tolerance) to a WithPruning(false) engine.
func TestEnginePruningBitIdentical(t *testing.T) {
	e := demo(t)
	models := []struct {
		name string
		opts []Option
	}{
		{"dirichlet", nil},
		{"jelinek-mercer", []Option{WithRetrievalModel(ModelJelinekMercer, ModelParams{Lambda: 0.4})}},
		{"bm25", []Option{WithRetrievalModel(ModelBM25, ModelParams{})}},
	}
	for _, m := range models {
		for _, s := range []int{1, 2, 4, 8} {
			shardOpt := []Option{WithShards(s)}
			full := NewEngine(e.Engine.Graph(), e.Engine.Index(), append(append([]Option{WithPruning(false)}, shardOpt...), m.opts...)...)
			pruned := NewEngine(e.Engine.Graph(), e.Engine.Index(), append(append([]Option{}, shardOpt...), m.opts...)...)
			for _, q := range e.Queries {
				for _, req := range []SearchRequest{
					{Query: q.Text, EntityTitles: q.EntityTitles, K: 10},                    // SQE_C, expanded
					{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 25}, // single set, expanded
					{Query: q.Text, K: 25, Baseline: true},                                  // QL_Q, raw
					{Query: q.Text, K: 1000, Baseline: true},                                // raw, k past the corpus
				} {
					want, err := full.Do(context.Background(), req)
					if err != nil {
						t.Fatalf("%s S=%d %s: unpruned: %v", m.name, s, q.ID, err)
					}
					got, err := pruned.Do(context.Background(), req)
					if err != nil {
						t.Fatalf("%s S=%d %s: pruned: %v", m.name, s, q.ID, err)
					}
					if !reflect.DeepEqual(want.Results, got.Results) {
						t.Fatalf("%s S=%d %s k=%d set=%v baseline=%v: pruned results diverge",
							m.name, s, q.ID, req.K, req.MotifSet, req.Baseline)
					}
				}
			}
		}
	}
}

// TestEnginePruningStats: the pruned engine reports its skip work
// through Do's stats, and the accounting identity against the unpruned
// engine holds end-to-end (advanced + skipped = unpruned advanced).
func TestEnginePruningStats(t *testing.T) {
	e := demo(t)
	full := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithPruning(false))
	pruned := NewEngine(e.Engine.Graph(), e.Engine.Index())
	var sawSkip bool
	for _, q := range e.Queries {
		req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 10, CollectStats: true}
		want, err := full.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pruned.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		ps, fs := got.Stats.Search, want.Stats.Search
		if ps.PostingsAdvanced+ps.DocsSkipped != fs.PostingsAdvanced {
			t.Fatalf("%s: advanced %d + skipped %d != full postings mass %d",
				q.ID, ps.PostingsAdvanced, ps.DocsSkipped, fs.PostingsAdvanced)
		}
		if ps.CandidatesExamined > fs.CandidatesExamined {
			t.Fatalf("%s: pruned candidates %d > full %d", q.ID, ps.CandidatesExamined, fs.CandidatesExamined)
		}
		if fs.DocsSkipped != 0 {
			t.Fatalf("%s: WithPruning(false) engine reported skips", q.ID)
		}
		if ps.DocsSkipped > 0 {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Fatal("pruning never skipped a posting across the demo workload")
	}
}

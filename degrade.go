package sqe

import (
	"context"
	"runtime/debug"
	"time"

	"repro/internal/fault"
	"repro/internal/search"
)

// DegradationPolicy configures graceful degradation for Engine.Do: what
// the pipeline does when a stage fails or stalls instead of failing the
// whole request. The zero value degrades nothing (but still contains
// panics in pipeline stages, turning them into errors). Install it with
// WithDegradation; DefaultDegradation is the recommended serving
// configuration.
type DegradationPolicy struct {
	// PartialShards merges the surviving shards' results when a shard's
	// evaluation fails (error, panic, or ShardDeadline), reporting the
	// dropped shards in SearchResponse.Degraded. Surviving shards'
	// scores are unaffected — shards fail only after the cross-shard
	// statistics override, so the partial ranking is exactly the
	// complete ranking minus the dropped shards' documents.
	PartialShards bool
	// ShardDeadline bounds each shard evaluation attempt (0 = none).
	ShardDeadline time.Duration
	// ExpansionFallback retries a failed motif expansion as the plain
	// unexpanded query (QL_Q over the same text). The response then
	// carries no Expansion and Degraded.ExpansionFallbacks counts the
	// substitution.
	ExpansionFallback bool
	// PartialSQEC lets an SQE_C request continue when one of its three
	// runs (T, T&S, S) fails: the splice combines the surviving run
	// lists and Degraded.DroppedRuns names the missing ones. All three
	// failing fails the request with the first run's error.
	PartialSQEC bool
	// MaxRetries re-runs a stage that failed with a transient fault
	// (fault.IsTransient) up to this many extra times before the
	// failure is degraded or surfaced.
	MaxRetries int
	// RetryBackoff is the base delay between retries; attempt i waits
	// i×RetryBackoff.
	RetryBackoff time.Duration
}

// DefaultDegradation is the recommended serving policy: every
// degradation mechanism on, one retry with a small backoff, and a
// generous per-shard deadline.
func DefaultDegradation() DegradationPolicy {
	return DegradationPolicy{
		PartialShards:     true,
		ShardDeadline:     2 * time.Second,
		ExpansionFallback: true,
		PartialSQEC:       true,
		MaxRetries:        1,
		RetryBackoff:      2 * time.Millisecond,
	}
}

// WithDegradation enables graceful degradation under the given policy.
// Without this option the engine keeps its strict all-or-nothing
// behaviour: any stage failure fails the request.
func WithDegradation(p DegradationPolicy) Option {
	return func(e *Engine) {
		pol := p
		e.degrade = &pol
	}
}

// Degradation reports what graceful degradation did to one request; it
// appears as SearchResponse.Degraded only when at least one field is
// non-zero. Parent-context cancellation is never degraded away: a
// cancelled request fails with the context's error, not a partial
// response.
type Degradation struct {
	// DroppedShards lists the index shards whose results are missing
	// from the ranking. For SQE_C requests the three runs retrieve
	// independently, so a shard index may appear once per run that
	// dropped it.
	DroppedShards []int `json:"dropped_shards,omitempty"`
	// ShardErrors[i] is the failure that dropped DroppedShards[i].
	ShardErrors []string `json:"shard_errors,omitempty"`
	// DroppedRuns names the SQE_C runs ("T", "TS", "S") whose lists are
	// missing from the splice.
	DroppedRuns []string `json:"dropped_runs,omitempty"`
	// ExpansionFallbacks counts motif expansions replaced by the plain
	// unexpanded query.
	ExpansionFallbacks int `json:"expansion_fallbacks,omitempty"`
	// Retries counts stage re-runs after transient faults, successful
	// or not. Retries alone do not make a response degraded — a request
	// that succeeded on a retry is complete and exact.
	Retries int `json:"retries,omitempty"`
}

// Degraded reports whether the response's results were actually
// affected — shards or runs dropped, or an expansion replaced by its
// fallback. Retries alone return false.
func (d *Degradation) Degraded() bool {
	return d != nil && (len(d.DroppedShards) > 0 || len(d.DroppedRuns) > 0 || d.ExpansionFallbacks > 0)
}

// empty reports whether nothing at all happened (the response omits the
// struct entirely then).
func (d *Degradation) empty() bool {
	return len(d.DroppedShards) == 0 && len(d.DroppedRuns) == 0 &&
		d.ExpansionFallbacks == 0 && d.Retries == 0
}

// add folds o into d; doC merges the per-run records in run order, so
// parallel and sequential SQE_C report identically.
func (d *Degradation) add(o *Degradation) {
	if o == nil {
		return
	}
	d.DroppedShards = append(d.DroppedShards, o.DroppedShards...)
	d.ShardErrors = append(d.ShardErrors, o.ShardErrors...)
	d.DroppedRuns = append(d.DroppedRuns, o.DroppedRuns...)
	d.ExpansionFallbacks += o.ExpansionFallbacks
	d.Retries += o.Retries
}

// absorb folds a sharded search's partial-result report into d.
func (d *Degradation) absorb(pi search.PartialInfo) {
	d.DroppedShards = append(d.DroppedShards, pi.DroppedShards...)
	d.ShardErrors = append(d.ShardErrors, pi.ShardErrors...)
	d.Retries += pi.Retries
}

// searchDegradeOptions maps the engine policy onto the sharded
// searcher's knobs.
func (e *Engine) searchDegradeOptions() search.DegradeOptions {
	return search.DegradeOptions{
		AllowPartial:  e.degrade.PartialShards,
		ShardDeadline: e.degrade.ShardDeadline,
		MaxRetries:    e.degrade.MaxRetries,
		RetryBackoff:  e.degrade.RetryBackoff,
	}
}

// guardPanic runs f, converting a panic — injected or genuine — into an
// error carrying the panic value and stack.
func guardPanic(f func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fault.AsPanicError(v, debug.Stack())
		}
	}()
	return f()
}

// retryTransient runs f, re-running it after transient faults up to
// pol.MaxRetries extra times with linear backoff. Retries are counted
// into deg; parent-context cancellation aborts the loop immediately.
func retryTransient(ctx context.Context, pol *DegradationPolicy, deg *Degradation, f func() error) error {
	var err error
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		if attempt > 0 {
			deg.Retries++
			if pol.RetryBackoff > 0 {
				t := time.NewTimer(time.Duration(attempt) * pol.RetryBackoff)
				select {
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				case <-t.C:
				}
			}
		}
		err = f()
		if err == nil || !fault.IsTransient(err) || ctx.Err() != nil {
			break
		}
	}
	return err
}

// buildQuery runs entity expansion and query construction for one motif
// set. With degradation enabled (deg non-nil) the stage is guarded —
// fault hook, panic containment, transient retry — and, under
// ExpansionFallback, a failed expansion degrades to the plain
// unexpanded query (nil Expansion) instead of failing the request.
func (e *Engine) buildQuery(ctx context.Context, query string, nodes []NodeID, set MotifSet, ps *PipelineStats, deg *Degradation) (search.Node, *Expansion, error) {
	if deg == nil || e.degrade == nil {
		qg := e.expander.BuildQueryGraphStoredStats(nodes, set, e.cache, e.precomputed, ps)
		return e.expander.BuildQueryStats(query, qg, ps), e.expansionOf(qg), nil
	}
	var node search.Node
	var exp *Expansion
	err := retryTransient(ctx, e.degrade, deg, func() error {
		return guardPanic(func() error {
			if err := fault.Check(fault.MotifExpand); err != nil {
				return err
			}
			qg := e.expander.BuildQueryGraphStoredStats(nodes, set, e.cache, e.precomputed, ps)
			exp = e.expansionOf(qg)
			node = e.expander.BuildQueryStats(query, qg, ps)
			return nil
		})
	})
	if err != nil {
		if e.degrade.ExpansionFallback && ctx.Err() == nil {
			deg.ExpansionFallbacks++
			return e.expander.QLQuery(query), nil, nil
		}
		return nil, nil, err
	}
	return node, exp, nil
}

package sqe

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkFigure2          — ground-truth cycle analysis (Fig. 2a/2b/2c)
//	BenchmarkTable1           — configuration study on Image CLEF (Table 1)
//	BenchmarkFigure5          — % improvement per motif config (Fig. 5)
//	BenchmarkTable2*          — SQE_C evaluation per dataset (Tables 2a-c)
//	BenchmarkFigure6*         — % improvement of SQE_C per dataset (Fig. 6)
//	BenchmarkTable3*          — PRF comparison per dataset (Tables 3a-c)
//	BenchmarkTable4           — expansion wall-clock times (Table 4)
//
// Precision shapes are exported through b.ReportMetric (P@5, P@100, …),
// so `go test -bench . -benchmem` reproduces both the numbers and the
// costs. Ablation benches cover the design choices DESIGN.md §5 calls
// out, and micro-benches cover the substrates.

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/search"
	"repro/internal/wikigen"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

// suite returns the shared default-scale experimental environment;
// generated once, deterministic.
func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() { benchSuite, benchErr = experiments.NewSuite(dataset.ScaleDefault) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

func reportPrecision(b *testing.B, rep *eval.Report) {
	b.Helper()
	b.ReportMetric(rep.Mean[5], "P@5")
	b.ReportMetric(rep.Mean[30], "P@30")
	b.ReportMetric(rep.Mean[1000]*1000, "relret@1000")
}

// BenchmarkFigure2 regenerates the structural analysis of the
// ground-truth query graphs (paper Figure 2).
func BenchmarkFigure2(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		f2 := experiments.Figure2(s)
		b.ReportMetric(f2.CategoryRatio[3], "catRatio@3")
		b.ReportMetric(f2.Contribution[3], "contrib@3")
		b.ReportMetric(f2.GroundTruthP[5], "gtP@5")
	}
}

// BenchmarkTable1 regenerates the configuration study (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		t1 := experiments.Table1(s)
		b.ReportMetric(t1.Reports["SQE_T"].Mean[5], "SQE_T:P@5")
		b.ReportMetric(t1.Reports["QL_Q"].Mean[5], "QL_Q:P@5")
		b.ReportMetric(t1.UBRatioAvg*100, "%ofUB")
	}
}

// BenchmarkFigure5 regenerates the per-configuration improvement curves
// (paper Figure 5).
func BenchmarkFigure5(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		t1 := experiments.Table1(s)
		f5 := experiments.Figure5(t1)
		for _, series := range f5.Series {
			if series.Name == "SQE_T" {
				b.ReportMetric(series.Values[5], "SQE_T:%impr@5")
			}
		}
	}
}

func benchTable2(b *testing.B, pick func(*experiments.Suite) *dataset.Instance) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		t2 := experiments.Table2(s, pick(s))
		reportPrecision(b, t2.Reports["SQE_C (M)"])
	}
}

// BenchmarkTable2ImageCLEF regenerates paper Table 2a.
func BenchmarkTable2ImageCLEF(b *testing.B) {
	benchTable2(b, func(s *experiments.Suite) *dataset.Instance { return s.ImageCLEF })
}

// BenchmarkTable2CHiC2012 regenerates paper Table 2b.
func BenchmarkTable2CHiC2012(b *testing.B) {
	benchTable2(b, func(s *experiments.Suite) *dataset.Instance { return s.CHiC2012 })
}

// BenchmarkTable2CHiC2013 regenerates paper Table 2c.
func BenchmarkTable2CHiC2013(b *testing.B) {
	benchTable2(b, func(s *experiments.Suite) *dataset.Instance { return s.CHiC2013 })
}

// BenchmarkFigure6 regenerates the SQE_C improvement curves for every
// dataset (paper Figure 6a/6b/6c).
func BenchmarkFigure6(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		for _, inst := range s.Instances() {
			t2 := experiments.Table2(s, inst)
			f6 := experiments.Figure6(t2)
			for _, series := range f6.Series {
				if series.Name == "SQE_C (M)" && inst == s.ImageCLEF {
					b.ReportMetric(series.Values[5], "IC:%impr@5")
				}
			}
		}
	}
}

func benchTable3(b *testing.B, pick func(*experiments.Suite) *dataset.Instance) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		inst := pick(s)
		t2 := experiments.Table2(s, inst)
		t3 := experiments.Table3(s, inst, t2)
		b.ReportMetric(t3.Reports["PRF_Q"].Mean[5], "PRF_Q:P@5")
		b.ReportMetric(t3.Reports["SQE_C/PRF"].Mean[5], "SQE∘PRF:P@5")
	}
}

// BenchmarkTable3ImageCLEF regenerates paper Table 3a.
func BenchmarkTable3ImageCLEF(b *testing.B) {
	benchTable3(b, func(s *experiments.Suite) *dataset.Instance { return s.ImageCLEF })
}

// BenchmarkTable3CHiC2012 regenerates paper Table 3b.
func BenchmarkTable3CHiC2012(b *testing.B) {
	benchTable3(b, func(s *experiments.Suite) *dataset.Instance { return s.CHiC2012 })
}

// BenchmarkTable3CHiC2013 regenerates paper Table 3c.
func BenchmarkTable3CHiC2013(b *testing.B) {
	benchTable3(b, func(s *experiments.Suite) *dataset.Instance { return s.CHiC2013 })
}

// BenchmarkTable4 regenerates the expansion-time measurements (paper
// Table 4); the per-dataset expansion time is also this benchmark's own
// wall-clock, reported as ms per query set.
func BenchmarkTable4(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		t4 := experiments.Table4(s)
		b.ReportMetric(float64(t4.Expansion[motif.SetTS][s.ImageCLEF.Name].Microseconds())/1000, "IC:T&S_ms")
		b.ReportMetric(float64(t4.Total[s.ImageCLEF.Name].Microseconds())/1000, "IC:total_ms")
	}
}

// --- Ablation benches (DESIGN.md §5) -----------------------------------

func benchAblation(b *testing.B, row string) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Ablations(s, s.ImageCLEF)
		rep := res.Reports[row]
		if rep == nil {
			b.Fatalf("no ablation row %q", row)
		}
		b.ReportMetric(rep.Mean[5], "P@5")
		b.ReportMetric(rep.Mean[100], "P@100")
	}
}

// BenchmarkAblationFull is the reference SQE_T&S configuration.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, "full") }

// BenchmarkAblationUniformWeights drops the |m_a|-proportional feature
// weighting.
func BenchmarkAblationUniformWeights(b *testing.B) { benchAblation(b, "uniform-weights") }

// BenchmarkAblationSingleLink drops the double-link requirement.
func BenchmarkAblationSingleLink(b *testing.B) { benchAblation(b, "single-link") }

// BenchmarkAblationNoCategories drops the category conditions.
func BenchmarkAblationNoCategories(b *testing.B) { benchAblation(b, "no-categories") }

// BenchmarkAblationSpliceCuts moves the SQE_C cut points to 2/50.
func BenchmarkAblationSpliceCuts(b *testing.B) { benchAblation(b, "splice-2/50") }

// BenchmarkAblationSmallMu runs the retrieval model with μ=250.
func BenchmarkAblationSmallMu(b *testing.B) { benchAblation(b, "mu-250") }

// --- Substrate micro-benches -------------------------------------------

// BenchmarkMotifExpansionPerQuery measures one query-graph construction
// (the unit behind Table 4's per-set times).
func BenchmarkMotifExpansionPerQuery(b *testing.B) {
	s := suite(b)
	r := s.NewRunner(s.ImageCLEF)
	queries := s.ImageCLEF.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := &queries[i%len(queries)]
		_ = r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
	}
}

// BenchmarkParallelExpansion measures the paper's parallelisation remark:
// all query graphs of a set built on all cores.
func BenchmarkParallelExpansion(b *testing.B) {
	s := suite(b)
	r := s.NewRunner(s.ImageCLEF)
	var nodeSets [][]kb.NodeID
	for qi := range s.ImageCLEF.Queries {
		nodeSets = append(nodeSets, r.Entities(&s.ImageCLEF.Queries[qi], true))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Expander.BuildQueryGraphs(nodeSets, motif.SetTS, 0)
	}
}

// BenchmarkSearchBaseline measures one plain query-likelihood retrieval.
func BenchmarkSearchBaseline(b *testing.B) {
	s := suite(b)
	r := s.NewRunner(s.ImageCLEF)
	queries := s.ImageCLEF.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := &queries[i%len(queries)]
		_ = r.Searcher.Search(r.Expander.QLQuery(q.Text), 1000)
	}
}

// benchSearchTopK measures top-k (k=10) retrieval alone on the fully
// expanded SQE_T&S queries — the many-phrase-feature workload the
// document-at-a-time evaluator targets — under either evaluator.
// Compare the DAAT and Legacy variants with -benchmem: DAAT must show
// fewer allocations and lower ns/op at identical rankings.
func benchSearchTopK(b *testing.B, legacy bool) {
	s := suite(b)
	r := s.NewRunner(s.ImageCLEF)
	r.Searcher.UseLegacyScorer = legacy
	queries := s.ImageCLEF.Queries
	nodes := make([]search.Node, len(queries))
	for qi := range queries {
		q := &queries[qi]
		qg := r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
		nodes[qi] = r.Expander.BuildQuery(q.Text, qg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Searcher.Search(nodes[i%len(nodes)], 10)
	}
}

// BenchmarkSearchExpandedTopKDAAT is the document-at-a-time evaluator.
func BenchmarkSearchExpandedTopKDAAT(b *testing.B) { benchSearchTopK(b, false) }

// BenchmarkSearchExpandedTopKLegacy is the retained map-and-sort oracle.
func BenchmarkSearchExpandedTopKLegacy(b *testing.B) { benchSearchTopK(b, true) }

// benchSearchTopKSharded is benchSearchTopK routed through S index
// shards. On a multi-core runner the per-shard evaluations overlap; on
// one core the numbers expose the fan-out's coordination overhead.
func benchSearchTopKSharded(b *testing.B, shards int) {
	s := suite(b)
	r := s.NewRunner(s.ImageCLEF)
	queries := s.ImageCLEF.Queries
	nodes := make([]search.Node, len(queries))
	for qi := range queries {
		q := &queries[qi]
		qg := r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
		nodes[qi] = r.Expander.BuildQuery(q.Text, qg)
	}
	ss := search.NewShardedSearcher(index.NewSharded(s.ImageCLEF.Index, shards))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ss.Search(nodes[i%len(nodes)], 10)
	}
}

func BenchmarkSearchExpandedTopKSharded2(b *testing.B) { benchSearchTopKSharded(b, 2) }
func BenchmarkSearchExpandedTopKSharded4(b *testing.B) { benchSearchTopKSharded(b, 4) }
func BenchmarkSearchExpandedTopKSharded8(b *testing.B) { benchSearchTopKSharded(b, 8) }

// BenchmarkSearchExpanded measures one full SQE_T&S retrieval including
// expansion and query construction.
func BenchmarkSearchExpanded(b *testing.B) {
	s := suite(b)
	r := s.NewRunner(s.ImageCLEF)
	queries := s.ImageCLEF.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := &queries[i%len(queries)]
		qg := r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
		_ = r.Searcher.Search(r.Expander.BuildQuery(q.Text, qg), 1000)
	}
}

// BenchmarkEntityLinking measures the Dexter+Alchemy-like linker on
// query text.
func BenchmarkEntityLinking(b *testing.B) {
	s := suite(b)
	queries := s.ImageCLEF.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Linker.LinkArticles(queries[i%len(queries)].Text)
	}
}

// BenchmarkWorldGeneration measures synthetic-Wikipedia generation at the
// default scale.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := wikigen.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := wikigen.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphEncodeDecode measures KB graph (de)serialisation.
func BenchmarkGraphEncodeDecode(b *testing.B) {
	s := suite(b)
	var buf bytes.Buffer
	if err := kb.Encode(&buf, s.World.Graph); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kb.Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPorterStem measures the stemmer on a representative word mix.
func BenchmarkPorterStem(b *testing.B) {
	words := []string{"generalizations", "running", "cars", "relational", "sky", "hopefulness", "funicular"}
	for i := 0; i < b.N; i++ {
		_ = analysis.PorterStem(words[i%len(words)])
	}
}

// BenchmarkPhrasePostings measures exact-phrase materialisation on the
// benchmark index.
func BenchmarkPhrasePostings(b *testing.B) {
	s := suite(b)
	ix := s.ImageCLEF.Index
	g := s.World.Graph
	// Use real two-word entity titles as phrases.
	var phrases [][]string
	a := analysis.Standard()
	for _, t := range s.World.Topics[:32] {
		phrases = append(phrases, a.AnalyzeTerms(g.Title(t.Entity())))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.PhrasePostings(phrases[i%len(phrases)])
	}
}

// BenchmarkMotifMining measures the future-work template miner over the
// full ground truth.
func BenchmarkMotifMining(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.MineMotifs(s, s.ImageCLEF)
	}
}

// BenchmarkModelComparison runs the retrieval-model study (Dirichlet vs
// JM vs BM25 under the same expansion).
func BenchmarkModelComparison(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := experiments.ModelComparison(s, s.ImageCLEF)
		b.ReportMetric(res.Gain["dirichlet"], "dirichlet:%gain@10")
		b.ReportMetric(res.Gain["bm25"], "bm25:%gain@10")
	}
}

// BenchmarkCrossKBMining runs the template miner on both KB profiles
// (the paper's "other KBs, other structures" conjecture).
func BenchmarkCrossKBMining(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossKBMining(s, dataset.ScaleDefault); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchBM25 measures one plain retrieval under BM25.
func BenchmarkSearchBM25(b *testing.B) {
	s := suite(b)
	r := s.NewRunner(s.ImageCLEF)
	r.Searcher.Model = search.ModelBM25
	queries := s.ImageCLEF.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := &queries[i%len(queries)]
		_ = r.Searcher.Search(r.Expander.QLQuery(q.Text), 1000)
	}
}

// BenchmarkParseQuery measures the structured-query parser.
func BenchmarkParseQuery(b *testing.B) {
	a := analysis.Standard()
	q := `#weight(2 #combine(cable car rides) 1 #1(san francisco) 1 #uw8(golden gate bridge))`
	for i := 0; i < b.N; i++ {
		if _, err := search.Parse(a, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnorderedWindow measures #uwN postings materialisation.
func BenchmarkUnorderedWindow(b *testing.B) {
	s := suite(b)
	ix := s.ImageCLEF.Index
	a := analysis.Standard()
	var windows [][]string
	for _, t := range s.World.Topics[:32] {
		terms := a.AnalyzeTerms(s.World.Graph.Title(t.Entity()))
		if len(terms) >= 2 {
			windows = append(windows, terms)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := windows[i%len(windows)]
		_ = ix.UnorderedWindowPostings(w, len(w)+2)
	}
}

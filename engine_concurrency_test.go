package sqe

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// parallelEngine builds a second Engine over the shared demo env's
// substrates with the serving options on: forced-parallel SQE_C plus an
// expansion cache. The demo linker is not re-installed — these tests use
// explicit entity titles.
func parallelEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := demo(t)
	return NewEngine(e.Engine.Graph(), e.Engine.Index(), opts...)
}

// TestParallelSQECMatchesSequential is the parity gate for the
// concurrent serving layer: the parallel SQE_C path must return
// byte-identical rankings AND scores to the sequential path for every
// demo query, with and without the expansion cache.
func TestParallelSQECMatchesSequential(t *testing.T) {
	e := demo(t)
	seq := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithSQECWorkers(1))
	par := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithSQECWorkers(3))
	parCached := NewEngine(e.Engine.Graph(), e.Engine.Index(),
		WithSQECWorkers(3), WithExpansionCache(1024))
	for _, k := range []int{10, 300} {
		for _, q := range e.Queries {
			want, err := seq.Search(q.Text, q.EntityTitles, k)
			if err != nil {
				t.Fatalf("%s: sequential: %v", q.ID, err)
			}
			for name, eng := range map[string]*Engine{"parallel": par, "parallel+cache": parCached} {
				got, err := eng.Search(q.Text, q.EntityTitles, k)
				if err != nil {
					t.Fatalf("%s/%s: %v", q.ID, name, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s/%s k=%d: results diverge from sequential path", q.ID, name, k)
				}
			}
		}
	}
}

// TestParallelSQECStats asserts the parallel path accumulates the same
// deterministic counters as the sequential one (timings differ; counts
// must not).
func TestParallelSQECStats(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	seq := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithSQECWorkers(1))
	par := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithSQECWorkers(3))
	var psSeq, psPar PipelineStats
	if _, err := seq.SearchWithStats(q.Text, q.EntityTitles, 50, &psSeq); err != nil {
		t.Fatal(err)
	}
	if _, err := par.SearchWithStatsContext(context.Background(), q.Text, q.EntityTitles, 50, &psPar); err != nil {
		t.Fatal(err)
	}
	if psSeq.Queries != psPar.Queries || psSeq.Retrievals != psPar.Retrievals ||
		psSeq.Features != psPar.Features {
		t.Errorf("pipeline counters diverge: seq=%+v par=%+v", psSeq, psPar)
	}
	if psSeq.Search.CandidatesExamined != psPar.Search.CandidatesExamined ||
		psSeq.Search.PostingsAdvanced != psPar.Search.PostingsAdvanced ||
		psSeq.Search.Leaves != psPar.Search.Leaves {
		t.Errorf("search counters diverge: seq=%+v par=%+v", psSeq.Search, psPar.Search)
	}
}

// TestEngineConcurrentStress hammers one shared Engine from many
// goroutines mixing every entry point; run under -race (Makefile `race`
// target) this is the data-race gate for the options-based immutable
// Engine. Results are verified against single-threaded expectations.
func TestEngineConcurrentStress(t *testing.T) {
	e := demo(t)
	eng := NewEngine(e.Engine.Graph(), e.Engine.Index(),
		WithSQECWorkers(2), WithExpansionCache(128))
	queries := e.Queries
	type expect struct {
		search   []Result
		baseline []Result
		expand   *Expansion
	}
	want := make([]expect, len(queries))
	for i, q := range queries {
		s, err := eng.Search(q.Text, q.EntityTitles, 20)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.BaselineSearch(q.Text, 20)
		if err != nil {
			t.Fatal(err)
		}
		x, err := eng.Expand(q.Text, q.EntityTitles, MotifTS)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = expect{search: s, baseline: b, expand: x}
	}
	const goroutines = 8
	iters := 20
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (w + it) % len(queries)
				q := queries[qi]
				switch it % 4 {
				case 0:
					got, err := eng.Search(q.Text, q.EntityTitles, 20)
					if err != nil || !reflect.DeepEqual(got, want[qi].search) {
						t.Errorf("worker %d: Search diverged (err=%v)", w, err)
						return
					}
				case 1:
					got, err := eng.BaselineSearch(q.Text, 20)
					if err != nil || !reflect.DeepEqual(got, want[qi].baseline) {
						t.Errorf("worker %d: BaselineSearch diverged (err=%v)", w, err)
						return
					}
				case 2:
					got, err := eng.Expand(q.Text, q.EntityTitles, MotifTS)
					if err != nil || !reflect.DeepEqual(got, want[qi].expand) {
						t.Errorf("worker %d: Expand diverged (err=%v)", w, err)
						return
					}
				case 3:
					if _, err := eng.SearchSet(MotifT, q.Text, q.EntityTitles, 10); err != nil {
						t.Errorf("worker %d: SearchSet: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st, ok := eng.ExpansionCacheStats(); !ok || st.Hits == 0 {
		t.Errorf("expected cache hits under stress, got %+v (ok=%v)", st, ok)
	}
}

// TestEngineExpansionCache checks the cache through the public API: a
// repeated Expand hits, the expansion is identical, and counters are
// visible via ExpansionCacheStats.
func TestEngineExpansionCache(t *testing.T) {
	e := demo(t)
	eng := NewEngine(e.Engine.Graph(), e.Engine.Index(), WithExpansionCache(64))
	q := e.Queries[0]
	first, err := eng.Expand(q.Text, q.EntityTitles, MotifTS)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Expand(q.Text, q.EntityTitles, MotifTS)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached expansion differs from original")
	}
	st, ok := eng.ExpansionCacheStats()
	if !ok {
		t.Fatal("ExpansionCacheStats reported no cache")
	}
	if st.Hits < 1 || st.Misses < 1 {
		t.Errorf("expected at least one hit and one miss, got %+v", st)
	}
	if _, ok := NewEngine(e.Engine.Graph(), e.Engine.Index()).ExpansionCacheStats(); ok {
		t.Error("engine without cache should report ok=false")
	}
}

// TestEngineOptions covers the functional options the deprecated Set*
// tests used to cover via mutation.
func TestEngineOptions(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	def := parallelEngine(t)
	small := parallelEngine(t, WithDirichletMu(10))
	bm25 := parallelEngine(t, WithRetrievalModel(ModelBM25, ModelParams{}))
	legacy := parallelEngine(t, WithLegacyScorer())
	rd, err := def.BaselineSearch(q.Text, 5)
	if err != nil || len(rd) == 0 {
		t.Fatalf("default engine: %v (%d results)", err, len(rd))
	}
	rs, err := small.BaselineSearch(q.Text, 5)
	if err != nil || len(rs) == 0 || rs[0].Score == rd[0].Score {
		t.Errorf("WithDirichletMu had no effect: err=%v", err)
	}
	rb, err := bm25.BaselineSearch(q.Text, 5)
	if err != nil || len(rb) == 0 || rb[0].Score == rd[0].Score {
		t.Errorf("WithRetrievalModel had no effect: err=%v", err)
	}
	rl, err := legacy.BaselineSearch(q.Text, 5)
	if err != nil || !reflect.DeepEqual(rd, rl) {
		t.Errorf("WithLegacyScorer must not change rankings: err=%v", err)
	}
}

// TestSearchContextCancellation asserts a cancelled context surfaces
// from the engine's context-accepting entry points.
func TestSearchContextCancellation(t *testing.T) {
	e := demo(t)
	q := e.Queries[0]
	for _, workers := range []int{1, 3} {
		eng := parallelEngine(t, WithSQECWorkers(workers))
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.SearchContext(ctx, q.Text, q.EntityTitles, 10); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: SearchContext want context.Canceled, got %v", workers, err)
		}
		if _, err := eng.BaselineSearchContext(ctx, q.Text, 10); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: BaselineSearchContext want context.Canceled, got %v", workers, err)
		}
		if _, err := eng.ExpandContext(ctx, q.Text, q.EntityTitles, MotifTS); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: ExpandContext want context.Canceled, got %v", workers, err)
		}
	}
	// A generous deadline must not interfere with a normal search.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	eng := parallelEngine(t, WithSQECWorkers(3))
	res, err := eng.SearchContext(ctx, q.Text, q.EntityTitles, 10)
	if err != nil || len(res) == 0 {
		t.Fatalf("deadline search failed: %v (%d results)", err, len(res))
	}
}

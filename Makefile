GO ?= go

.PHONY: build test race vet fmt bench bench-shards bench-pruning bench-expansion bench-blockmax bench-hotpath bench-check shard-parity index-parity segment-parity serve-smoke precompute-smoke ingest-smoke distributed-smoke load-smoke chaos fuzz verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race-checks the packages with concurrency: parallel expansion, the
# retrieval hot path, the HTTP serving layer, and the root package's
# parallel-SQE_C / shared-Engine stress tests.
race:
	$(GO) test -race . ./internal/core/... ./internal/search/... ./internal/serve/...

bench:
	$(GO) test -run NONE -bench 'SearchExpandedTopK' -benchmem .

# Sharded-retrieval throughput at 1/2/4/8 shards on the expanded-query
# workload; writes the measurements (including GOMAXPROCS, so readers
# can judge whether parallel speedup was even possible) to
# BENCH_shards.json.
bench-shards:
	$(GO) run ./cmd/sqe-bench -scale small -exp shards -shards 1,2,4,8 -shards-json BENCH_shards.json

# MaxScore pruning effectiveness (documents scored, postings skipped,
# single-core wall clock) on the expanded-query workload; regenerates
# the committed BENCH_pruning.json artifact that bench-check gates on.
bench-pruning:
	$(GO) run ./cmd/sqe-bench -scale small -exp pruning -pruning-json BENCH_pruning.json

# Cold vs warm-LRU vs precomputed-store expansion latency on the
# expanded-query workload, with the store round-tripped through its
# binary format; regenerates the committed BENCH_expansion.json
# artifact that bench-check gates on (>=10x store-vs-cold floor).
bench-expansion:
	$(GO) run ./cmd/sqe-bench -scale small -exp expansion -expansion-json BENCH_expansion.json

# Block-Max MaxScore vs exhaustive DAAT over an mmap'd FormatV2 file,
# on the suite's largest corpus at benchmark (default) scale — block
# skipping is a long-postings-list mechanism, so this is the scale the
# speedup claim is made at. Regenerates the committed
# BENCH_blockmax.json artifact that bench-check gates on (bit-identity,
# >=2x documents-scored reduction, >=1x wall-clock speedup floor).
bench-blockmax:
	$(GO) run ./cmd/sqe-bench -scale default -exp blockmax -blockmax-json BENCH_blockmax.json

# Streaming per-block cursors + pooled scratch vs the eager whole-term
# hot path (PR 8's configuration), on CHiC 2012 at benchmark (default)
# scale: cold time-to-first-result per leg, warm p50/p99, allocs/query
# with the scratch pool off vs on, and the decoded-block fraction.
# Regenerates the committed BENCH_hotpath.json artifact that
# bench-check gates on (three-way bit-identity, <60% of blocks decoded
# and >=1.3x cold speedup on the quoted Dirichlet row, >=10x allocation
# reduction); bench-check's fresh leg re-runs this bench inside
# `make verify`, so the wiring into verify and CI is through it.
bench-hotpath:
	$(GO) run ./cmd/sqe-bench -scale default -exp hotpath -hotpath-json BENCH_hotpath.json

# The benchmark regression gate: validates the committed BENCH_*.json
# artifacts (bit-identity flags, >=2x documents-scored reduction) and
# re-runs the pruning bench to demand its deterministic counters match
# the artifact exactly. See cmd/bench-check for what is gated how hard.
bench-check:
	$(GO) run ./cmd/bench-check

# The bit-identity gates for sharded retrieval: evaluator-level and
# engine-level differential tests across shard counts and models.
shard-parity:
	$(GO) test -run 'Sharded' -count=1 . ./internal/index/... ./internal/search/...

# The on-disk format gate: the v1-vs-v2-vs-memory differential tests
# (engine-level across models, request shapes and shard counts; plus
# the Block-Max-over-v2 evaluator differentials), then sqe-serve
# serving the demo corpus from freshly written v1 and v2 files through
# index.Open — the v2 one an mmap with lazy per-block decode.
index-parity:
	$(GO) test -count=1 -run 'TestEngineFormatParity' .
	$(GO) test -count=1 -run 'TestV2|TestOpen|TestBuilderWriteFile|TestBuildHelper|TestBlockMax' ./internal/index/ ./internal/search/
	$(GO) run ./cmd/sqe-serve -write-index /tmp/sqe-index-parity.v1 -index-format v1
	$(GO) run ./cmd/sqe-serve -smoke -index /tmp/sqe-index-parity.v1
	$(GO) run ./cmd/sqe-serve -write-index /tmp/sqe-index-parity.v2 -index-format v2
	$(GO) run ./cmd/sqe-serve -smoke -shards 2 -index /tmp/sqe-index-parity.v2
	@rm -f /tmp/sqe-index-parity.v1 /tmp/sqe-index-parity.v2

# The live-index bit-identity gate (DESIGN.md §5l): the LSM segmented
# engine vs a monolithic index over the same surviving documents —
# models × raw/expanded × shard counts × flush sizes, post-delete and
# post-compaction, mutation visibility, the golden-corpus leg — plus
# the index-while-chaos harness and the crash/restart/torn-file
# differential under -race, and the segment/manifest/mmap-leak unit
# tests (manifest corruption, orphan recovery, snapshot pinning,
# tombstone stats correction).
segment-parity:
	$(GO) test -count=1 -run 'TestSegmented' .
	$(GO) test -race -count=1 -run 'TestIndexWhileChaos|TestSegmentedCrashRestart' .
	$(GO) test -count=1 -run 'TestSegmented|TestManifest|TestWriteReadManifest|TestReadManifest|TestCleanOrphans|TestCloseIdempotent|TestOpenCloseLeakFree' ./internal/index/ ./internal/search/

# Boots sqe-serve on the demo corpus with a sharded engine, drives one
# in-process request through every endpoint (200 + non-empty payload
# checks, including per-shard metrics) and exits.
serve-smoke:
	$(GO) run ./cmd/sqe-serve -smoke -shards 4

# The offline-precompute gate: builds an expansion store over the tiny
# demo KB (with self-check: every stored entry re-verified against live
# expansion), then boots sqe-serve with the store attached — once
# uncached so the store serves lookups directly, once with the default
# cache so boot-time warming is exercised — and demands byte-identical
# results vs live expansion over every demo query (see runSmoke's
# precomputed check in cmd/sqe-serve).
precompute-smoke:
	$(GO) run ./cmd/sqe-precompute -scale small -out /tmp/sqe-precompute-smoke.store -force -selfcheck
	$(GO) run ./cmd/sqe-serve -smoke -cache 0 -precomputed /tmp/sqe-precompute-smoke.store
	$(GO) run ./cmd/sqe-serve -smoke -shards 2 -precomputed /tmp/sqe-precompute-smoke.store
	@rm -f /tmp/sqe-precompute-smoke.store

# The live-ingest serving gate: boots sqe-serve's live segmented
# engine over an empty segment directory, streams the demo corpus
# through POST /v1/ingest in batches under concurrent queries, and
# demands bit-identical rankings vs the monolithic demo engine, a
# delete+compact leg against a survivors oracle, the sqe_live_*
# metrics family, and the POST-only typed envelope (see runIngestSmoke
# in cmd/sqe-serve).
ingest-smoke:
	$(GO) run ./cmd/sqe-serve -ingest-smoke

# The multi-process gate: re-execs sqe-serve as real shard server
# processes (shard 0 with two replicas, shard 1 with one), boots a
# coordinator over them, and demands bit-identity against single-
# process WithShards(2), clean behaviour under RPC-boundary chaos,
# replica failover without degradation, and dead-shard degradation
# surfaced end to end over HTTP (see runDistributedSmoke in
# cmd/sqe-serve).
distributed-smoke:
	$(GO) run ./cmd/sqe-serve -distributed-smoke

# The serving-layer load gate: sqe-load boots the full distributed
# stack in-process (real RPC shard servers on loopback TCP + the
# coordinator + HTTP), offers a fixed open-loop rate, regenerates the
# committed BENCH_distributed.json latency/SLO artifact, and
# bench-check validates it (zero errors, zero degradation, p99 SLO).
load-smoke:
	$(GO) run ./cmd/sqe-load -self-serve -rate 150 -duration 3s -out BENCH_distributed.json
	$(GO) run ./cmd/bench-check -fresh=false

# The chaos gate: the fault-injection registry's unit tests plus the
# chaos harness (seeded random faults at every registered point against
# a sharded, cached, degradation-enabled engine) under -race, then the
# sqe-serve chaos smoke over HTTP. See DESIGN.md §5g.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Schedule|Degrad|MaxFaults|Disarmed|Panic|ErrorClassification|Points' ./internal/fault/
	$(GO) test -race -count=1 -run 'Degrad|Backend|ErrorPaths' ./internal/serve/
	$(GO) test -count=1 -run 'TestGoldenRetrieval' .
	$(GO) run ./cmd/sqe-serve -chaos -shards 4

# Short fuzz rounds over every fuzz target with a committed seed corpus
# (wikixml parser, index decoder). Not part of verify — run on demand or
# in CI's cron lane.
fuzz:
	$(GO) test -fuzz FuzzWikiXMLParse -fuzztime 30s -run '^$$' ./internal/wikixml/
	$(GO) test -fuzz FuzzIndexDecode -fuzztime 30s -run '^$$' ./internal/index/
	$(GO) test -fuzz FuzzBlockDecode -fuzztime 30s -run '^$$' ./internal/index/
	$(GO) test -fuzz FuzzOpenV2 -fuzztime 30s -run '^$$' ./internal/index/
	$(GO) test -fuzz FuzzSegmentManifest -fuzztime 30s -run '^$$' ./internal/index/

# The full gate run before every commit.
verify: vet fmt build race test shard-parity index-parity segment-parity bench-check serve-smoke precompute-smoke ingest-smoke distributed-smoke load-smoke chaos
	@echo "verify: OK"

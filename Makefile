GO ?= go

.PHONY: build test race vet bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checks the packages with concurrency (parallel expansion) and the
# retrieval hot path.
race:
	$(GO) test -race ./internal/core/... ./internal/search/...

bench:
	$(GO) test -run NONE -bench 'SearchExpandedTopK' -benchmem .

# The full gate run before every commit.
verify: vet build race test
	@echo "verify: OK"

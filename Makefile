GO ?= go

.PHONY: build test race vet bench serve-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checks the packages with concurrency: parallel expansion, the
# retrieval hot path, the HTTP serving layer, and the root package's
# parallel-SQE_C / shared-Engine stress tests.
race:
	$(GO) test -race . ./internal/core/... ./internal/search/... ./internal/serve/...

bench:
	$(GO) test -run NONE -bench 'SearchExpandedTopK' -benchmem .

# Boots sqe-serve on the demo corpus, drives one in-process request
# through every endpoint (200 + non-empty payload checks) and exits.
serve-smoke:
	$(GO) run ./cmd/sqe-serve -smoke

# The full gate run before every commit.
verify: vet build race test serve-smoke
	@echo "verify: OK"

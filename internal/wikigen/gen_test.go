package wikigen

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/kb"
)

func small(t *testing.T) *World {
	t.Helper()
	w, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := small(t)
	w2 := small(t)
	s1 := kb.ComputeStats(w1.Graph)
	s2 := kb.ComputeStats(w2.Graph)
	if s1 != s2 {
		t.Errorf("same config, different graphs: %+v vs %+v", s1, s2)
	}
	if len(w1.Topics) != len(w2.Topics) {
		t.Fatal("topic counts differ")
	}
	for i := range w1.Topics {
		if !reflect.DeepEqual(w1.Topics[i].CoreTerms, w2.Topics[i].CoreTerms) {
			t.Fatalf("topic %d core terms differ", i)
		}
	}
}

func TestGenerateSeedChangesWorld(t *testing.T) {
	cfg := SmallConfig()
	w1 := MustGenerate(cfg)
	cfg.Seed = 999
	w2 := MustGenerate(cfg)
	if kb.ComputeStats(w1.Graph) == kb.ComputeStats(w2.Graph) {
		t.Error("different seeds produced identical stats (vanishingly unlikely)")
	}
}

func TestWorldShape(t *testing.T) {
	cfg := SmallConfig()
	w := small(t)
	if len(w.Domains) != cfg.Domains {
		t.Errorf("domains = %d", len(w.Domains))
	}
	if len(w.Topics) != cfg.NumTopics() {
		t.Errorf("topics = %d", len(w.Topics))
	}
	if len(w.Hubs) != cfg.HubArticles {
		t.Errorf("hubs = %d, want %d", len(w.Hubs), cfg.HubArticles)
	}
	for _, tp := range w.Topics {
		if len(tp.Articles) < 2 {
			t.Fatalf("topic %d has %d articles", tp.ID, len(tp.Articles))
		}
		if len(tp.CoreTerms) != cfg.CoreTermsPerTopic {
			t.Fatalf("topic %d core terms = %d", tp.ID, len(tp.CoreTerms))
		}
		if len(tp.AliasTerms) != cfg.AliasTermsPerTopic {
			t.Fatalf("topic %d alias terms = %d", tp.ID, len(tp.AliasTerms))
		}
		if w.Graph.Kind(tp.Entity()) != kb.KindArticle {
			t.Fatal("entity is not an article")
		}
		if w.Graph.Kind(tp.Category) != kb.KindCategory {
			t.Fatal("topic category is not a category")
		}
	}
}

func TestTopicOf(t *testing.T) {
	w := small(t)
	for ti := range w.Topics {
		for _, a := range w.Topics[ti].Articles {
			got, ok := w.TopicOf(a)
			if !ok || got != ti {
				t.Fatalf("TopicOf(%d) = %d,%v want %d", a, got, ok, ti)
			}
		}
	}
	// Hubs belong to no topic.
	for _, h := range w.Hubs {
		if _, ok := w.TopicOf(h); ok {
			t.Fatal("hub has a topic")
		}
	}
}

func TestArticlesBelongToTopicCategory(t *testing.T) {
	w := small(t)
	for _, tp := range w.Topics {
		for _, a := range tp.Articles {
			if !w.Graph.InCategory(a, tp.Category) {
				t.Fatalf("article %q not in its topic category", w.Graph.Title(a))
			}
		}
	}
}

func TestCategoryHierarchy(t *testing.T) {
	w := small(t)
	for _, tp := range w.Topics {
		dom := w.Domains[tp.Domain]
		if !w.Graph.IsParentCategory(dom.Category, tp.Category) {
			t.Fatalf("topic category %q not under its domain", w.Graph.Title(tp.Category))
		}
		if tp.Subtopic != kb.Invalid && !w.Graph.IsParentCategory(tp.Category, tp.Subtopic) {
			t.Fatal("subtopic not under topic category")
		}
	}
	for _, d := range w.Domains {
		for _, f := range d.Facets {
			if !w.Graph.IsParentCategory(d.Category, f) {
				t.Fatal("facet not under domain category")
			}
		}
	}
}

func TestEntityHasExactlyOneFacet(t *testing.T) {
	w := small(t)
	for _, tp := range w.Topics {
		cats := w.Graph.Categories(tp.Entity())
		facets := 0
		for _, c := range cats {
			for _, f := range w.Domains[tp.Domain].Facets {
				if c == f {
					facets++
				}
			}
		}
		if facets != 1 {
			t.Fatalf("entity of topic %d has %d facets, want 1", tp.ID, facets)
		}
	}
}

func TestIntraTopicReciprocity(t *testing.T) {
	// The generated graph must contain substantially more reciprocal
	// pairs within topics than across topics — the structural premise of
	// the motifs.
	w := small(t)
	intra, cross := 0, 0
	w.Graph.Articles(func(a kb.NodeID) bool {
		ta, aok := w.TopicOf(a)
		for _, b := range w.Graph.OutLinks(a) {
			if b <= a || !w.Graph.HasLink(b, a) {
				continue
			}
			tb, bok := w.TopicOf(b)
			if aok && bok && ta == tb {
				intra++
			} else {
				cross++
			}
		}
		return true
	})
	if intra == 0 || cross == 0 {
		t.Fatalf("degenerate link structure: intra=%d cross=%d", intra, cross)
	}
	if intra < cross {
		t.Errorf("intra-topic reciprocal pairs (%d) should dominate cross-topic (%d)", intra, cross)
	}
}

func TestHubMemberships(t *testing.T) {
	cfg := SmallConfig()
	w := small(t)
	for _, h := range w.Hubs {
		cats := w.Graph.Categories(h)
		if len(cats) != cfg.HubDomainMemberships {
			t.Fatalf("hub %q has %d categories, want %d", w.Graph.Title(h), len(cats), cfg.HubDomainMemberships)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Domains = 0 },
		func(c *Config) { c.TopicsPerDomain = -1 },
		func(c *Config) { c.ArticlesPerTopic = 1 },
		func(c *Config) { c.CoreTermsPerTopic = 1 },
		func(c *Config) { c.AliasTermsPerTopic = 0 },
		func(c *Config) { c.BackgroundTerms = 5 },
		func(c *Config) { c.FacetsPerDomain = 0 },
		func(c *Config) { c.MaxFacetsPerArticle = -1 },
		func(c *Config) { c.SubtopicFraction = 1.5 },
		func(c *Config) { c.DomainDirectFraction = -0.1 },
		func(c *Config) { c.IntraReciprocalProb = 2 },
		func(c *Config) { c.CrossReciprocalProb = -1 },
		func(c *Config) { c.HubArticles = -1 },
		func(c *Config) { c.HubLinkProb = 1.5 },
		func(c *Config) { c.HubReciprocalProb = -0.5 },
	}
	for i, mutate := range bad {
		cfg := SmallConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestVocabUnique(t *testing.T) {
	v := NewVocab(rand.New(rand.NewSource(1)))
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		w := v.Word()
		if w == "" {
			t.Fatal("empty word")
		}
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
	if v.Size() != 5000 {
		t.Errorf("Size = %d", v.Size())
	}
}

func TestVocabWordsLowercaseASCII(t *testing.T) {
	v := NewVocab(rand.New(rand.NewSource(2)))
	f := func(_ int) bool {
		w := v.Word()
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] > 'z' {
				return false
			}
		}
		return len(w) >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	w := small(t)
	if w.Describe() == "" {
		t.Error("Describe empty")
	}
}

func TestOntologyConfigGenerates(t *testing.T) {
	cfg := OntologyConfig()
	// Shrink to test size while keeping the profile's shape.
	cfg.Domains = 4
	cfg.TopicsPerDomain = 5
	cfg.ArticlesPerTopic = 10
	cfg.BackgroundTerms = 300
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The taxonomy profile: every topic has a subtopic category.
	for _, tp := range w.Topics {
		if tp.Subtopic == kb.Invalid {
			t.Fatalf("topic %d missing subtopic under OntologyConfig", tp.ID)
		}
	}
	// Sparser reciprocity than the default profile.
	st := kb.ComputeStats(w.Graph)
	if st.ReciprocalPairs == 0 || st.ReciprocalPairs >= st.ArticleLinks {
		t.Errorf("implausible reciprocity: %+v", st)
	}
}

func TestMustGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on invalid config")
		}
	}()
	cfg := SmallConfig()
	cfg.Domains = 0
	MustGenerate(cfg)
}

func TestGenerateWithoutHubs(t *testing.T) {
	cfg := SmallConfig()
	cfg.HubArticles = 0
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Hubs) != 0 {
		t.Errorf("hubs = %d, want 0", len(w.Hubs))
	}
	// The graph must still be fully functional.
	if kb.ComputeStats(w.Graph).Articles == 0 {
		t.Error("no articles generated")
	}
}

func TestHubDomainMembershipFloor(t *testing.T) {
	cfg := SmallConfig()
	cfg.HubArticles = 3
	cfg.HubDomainMemberships = 0 // must floor to 1
	w := MustGenerate(cfg)
	for _, h := range w.Hubs {
		if len(w.Graph.Categories(h)) < 1 {
			t.Fatal("hub with no domain membership")
		}
	}
}

func TestExplicitCoreTermPool(t *testing.T) {
	cfg := SmallConfig()
	cfg.CoreTermPool = cfg.CoreTermsPerTopic // minimal legal pool
	w := MustGenerate(cfg)
	// With a pool exactly one topic wide, every topic shares the same
	// term set (maximum ambiguity) — generation must still succeed with
	// unique titles.
	titles := map[string]bool{}
	w.Graph.Articles(func(a kb.NodeID) bool {
		title := w.Graph.Title(a)
		if titles[title] {
			t.Fatalf("duplicate title %q", title)
		}
		titles[title] = true
		return true
	})
}

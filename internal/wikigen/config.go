package wikigen

import "fmt"

// Config controls the shape of the generated world. DefaultConfig matches
// the scale used by the benchmark harness; SmallConfig keeps unit tests
// fast. All randomness flows from Seed.
type Config struct {
	// Seed drives every random choice; equal configs generate equal
	// worlds.
	Seed int64

	// Domains is the number of top-level knowledge domains (each gets a
	// domain category).
	Domains int
	// TopicsPerDomain is the number of topics under each domain. Each
	// topic gets its own category, child of the domain category.
	TopicsPerDomain int
	// ArticlesPerTopic is the mean number of articles per topic; actual
	// counts vary ±30%.
	ArticlesPerTopic int

	// CoreTermsPerTopic is the size of each topic's core vocabulary —
	// the words its article titles and its relevant documents are built
	// from.
	CoreTermsPerTopic int
	// CoreTermPool is the size of the shared content-word pool topics
	// sample their core terms from. Because the pool is smaller than
	// Domains·TopicsPerDomain·CoreTermsPerTopic, words belong to more
	// than one topic on average — the lexical ambiguity that makes
	// single-term matching noisy (and query expansion worthwhile), just
	// like "car" or "wall" in real text. Zero derives a pool ~60% of
	// the total demand.
	CoreTermPool int
	// AliasTermsPerTopic is the size of each topic's user-facing alias
	// vocabulary: words users type in queries but that rarely occur in
	// documents (the paper's "vocabulary mismatch").
	AliasTermsPerTopic int
	// BackgroundTerms is the size of the shared noise vocabulary.
	BackgroundTerms int

	// FacetsPerDomain is the number of facet categories per domain
	// (children of the domain category). Facets make the triangular
	// motif's exact-category condition selective.
	FacetsPerDomain int
	// MaxFacetsPerArticle bounds how many facet categories an article
	// belongs to (uniform in [0, MaxFacetsPerArticle]).
	MaxFacetsPerArticle int
	// SubtopicFraction is the fraction of topics that get a subtopic
	// category (child of the topic category) holding part of their
	// articles; these power square-motif matches downward.
	SubtopicFraction float64
	// DomainDirectFraction is the probability that an article is also a
	// direct member of its domain category; these power square-motif
	// matches upward.
	DomainDirectFraction float64

	// IntraTopicLinks is the mean number of outgoing links from an
	// article to other articles of the same topic.
	IntraTopicLinks int
	// IntraReciprocalProb is the probability that an intra-topic link is
	// reciprocated.
	IntraReciprocalProb float64
	// CrossTopicLinks is the mean number of links to articles of other
	// topics in the same domain.
	CrossTopicLinks int
	// CrossReciprocalProb is the probability a cross-topic link is
	// reciprocated.
	CrossReciprocalProb float64
	// NoiseLinks is the mean number of links to random articles
	// anywhere (rarely reciprocated; reciprocation happens only by the
	// chance of the reverse noise link).
	NoiseLinks int

	// HubArticles is the number of generic hub articles ("United
	// States"-style): topic-less, heavily and reciprocally linked from
	// everywhere, and members of several domain categories — so they
	// square-match almost any query node. Hubs are the principal source
	// of *bad* expansion features, the reason expansion features alone
	// (the paper's Q_X run) degrade retrieval.
	HubArticles int
	// HubLinkProb is the probability an article links to a random hub.
	HubLinkProb float64
	// HubReciprocalProb is the probability a hub links back.
	HubReciprocalProb float64
	// HubDomainMemberships is how many domain categories each hub
	// belongs to.
	HubDomainMemberships int
}

// DefaultConfig is the world used by benches, examples and experiments.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Domains:              12,
		TopicsPerDomain:      16,
		ArticlesPerTopic:     30,
		CoreTermsPerTopic:    28,
		AliasTermsPerTopic:   4,
		BackgroundTerms:      2500,
		FacetsPerDomain:      8,
		MaxFacetsPerArticle:  2,
		SubtopicFraction:     0.5,
		DomainDirectFraction: 0.30,
		IntraTopicLinks:      10,
		IntraReciprocalProb:  0.75,
		CrossTopicLinks:      5,
		CrossReciprocalProb:  0.40,
		NoiseLinks:           2,
		HubArticles:          48,
		HubLinkProb:          0.35,
		HubReciprocalProb:    0.5,
		HubDomainMemberships: 3,
	}
}

// OntologyConfig is an alternative KB profile: a taxonomy-like knowledge
// base (DBpedia/WordNet flavour) rather than an encyclopedia — every
// topic has a subtopic layer, there are no facet categories, and
// hyperlinking is sparser and less reciprocal. The paper's conclusion
// conjectures that "each KB probably has its own relevant structures";
// mining motif templates on this profile vs the Wikipedia-like default
// makes that concrete (see experiments.CrossKBMining).
func OntologyConfig() Config {
	c := DefaultConfig()
	c.Seed = 2
	c.FacetsPerDomain = 1
	c.MaxFacetsPerArticle = 0
	c.SubtopicFraction = 1.0
	c.IntraTopicLinks = 5
	c.IntraReciprocalProb = 0.35
	c.CrossTopicLinks = 3
	c.CrossReciprocalProb = 0.2
	c.HubArticles = 12
	return c
}

// SmallConfig is a miniature world for unit tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Domains = 6
	c.TopicsPerDomain = 8
	c.ArticlesPerTopic = 14
	c.BackgroundTerms = 600
	c.HubArticles = 16
	return c
}

// NumTopics returns the total number of topics the config yields.
func (c Config) NumTopics() int { return c.Domains * c.TopicsPerDomain }

// validate reports configuration errors early with a descriptive message.
func (c Config) validate() error {
	switch {
	case c.Domains <= 0:
		return cfgErr("Domains", c.Domains)
	case c.TopicsPerDomain <= 0:
		return cfgErr("TopicsPerDomain", c.TopicsPerDomain)
	case c.ArticlesPerTopic < 2:
		return cfgErr("ArticlesPerTopic", c.ArticlesPerTopic)
	case c.CoreTermsPerTopic < 2:
		return cfgErr("CoreTermsPerTopic", c.CoreTermsPerTopic)
	case c.AliasTermsPerTopic < 1:
		return cfgErr("AliasTermsPerTopic", c.AliasTermsPerTopic)
	case c.BackgroundTerms < 10:
		return cfgErr("BackgroundTerms", c.BackgroundTerms)
	case c.FacetsPerDomain < 1:
		return cfgErr("FacetsPerDomain", c.FacetsPerDomain)
	case c.MaxFacetsPerArticle < 0:
		return cfgErr("MaxFacetsPerArticle", c.MaxFacetsPerArticle)
	case c.SubtopicFraction < 0 || c.SubtopicFraction > 1:
		return cfgErr("SubtopicFraction", c.SubtopicFraction)
	case c.DomainDirectFraction < 0 || c.DomainDirectFraction > 1:
		return cfgErr("DomainDirectFraction", c.DomainDirectFraction)
	case c.IntraReciprocalProb < 0 || c.IntraReciprocalProb > 1:
		return cfgErr("IntraReciprocalProb", c.IntraReciprocalProb)
	case c.CrossReciprocalProb < 0 || c.CrossReciprocalProb > 1:
		return cfgErr("CrossReciprocalProb", c.CrossReciprocalProb)
	case c.HubArticles < 0:
		return cfgErr("HubArticles", c.HubArticles)
	case c.HubLinkProb < 0 || c.HubLinkProb > 1:
		return cfgErr("HubLinkProb", c.HubLinkProb)
	case c.HubReciprocalProb < 0 || c.HubReciprocalProb > 1:
		return cfgErr("HubReciprocalProb", c.HubReciprocalProb)
	}
	return nil
}

func cfgErr(field string, value any) error {
	return fmt.Errorf("wikigen: invalid config: %s = %v", field, value)
}

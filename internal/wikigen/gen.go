package wikigen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kb"
)

// World is a generated knowledge base plus the topic model behind it. The
// topic model is what the dataset generator (internal/dataset) uses to
// produce corpora and queries that are semantically coupled to the KB,
// mirroring how real Wikipedia vocabulary overlaps real document
// collections.
type World struct {
	Config  Config
	Graph   *kb.Graph
	Domains []Domain
	Topics  []Topic

	// topicOf maps every article node to its topic index.
	topicOf map[kb.NodeID]int
	// Background is the shared noise vocabulary used by document
	// generators.
	Background []string
	// Hubs are the generic hub articles (see Config.HubArticles); they
	// belong to no topic.
	Hubs []kb.NodeID
	// corePool is the shared content-word pool topics draw their core
	// terms from (see Config.CoreTermPool).
	corePool []string
}

// Domain is a top-level knowledge area: a domain category plus facet
// categories and member topics.
type Domain struct {
	ID       int
	Name     string
	Category kb.NodeID
	Facets   []kb.NodeID
	Topics   []int
}

// Topic is a coherent subject: a set of articles sharing a category and a
// core vocabulary.
type Topic struct {
	ID     int
	Domain int
	Name   string
	// CoreTerms is the topic's document/title vocabulary.
	CoreTerms []string
	// AliasTerms is the topic's query-side vocabulary (the words users
	// type; they rarely occur in documents — vocabulary mismatch).
	AliasTerms []string
	// Articles are all article nodes of the topic; Articles[0] is the
	// topic's canonical entity article.
	Articles []kb.NodeID
	// Category is the topic category node.
	Category kb.NodeID
	// Subtopic is a child category of Category holding a subset of the
	// topic's articles, or kb.Invalid when the topic has none.
	Subtopic kb.NodeID
}

// Entity returns the topic's canonical entity article — the node an
// entity linker should resolve the topic's aliases to.
func (t *Topic) Entity() kb.NodeID { return t.Articles[0] }

// TopicOf returns the topic index of an article node and whether the node
// is a generated topic article.
func (w *World) TopicOf(a kb.NodeID) (int, bool) {
	t, ok := w.topicOf[a]
	return t, ok
}

// Generate builds a world from cfg. Identical configs produce identical
// worlds.
func Generate(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := NewVocab(rng)

	w := &World{
		Config:     cfg,
		Background: vocab.Words(cfg.BackgroundTerms),
		topicOf:    make(map[kb.NodeID]int),
	}

	poolSize := cfg.CoreTermPool
	if poolSize <= 0 {
		poolSize = cfg.NumTopics() * cfg.CoreTermsPerTopic * 4 / 10
	}
	if poolSize < cfg.CoreTermsPerTopic {
		poolSize = cfg.CoreTermsPerTopic
	}
	w.corePool = vocab.Words(poolSize)

	numTopics := cfg.NumTopics()
	estArticles := numTopics * cfg.ArticlesPerTopic
	b := kb.NewBuilder(estArticles + numTopics*2 + cfg.Domains*(cfg.FacetsPerDomain+1))

	// Category layer.
	if err := w.genCategories(cfg, rng, vocab, b); err != nil {
		return nil, err
	}
	// Topics and their articles.
	if err := w.genArticles(cfg, rng, vocab, b); err != nil {
		return nil, err
	}
	// Generic hub articles.
	if err := w.genHubs(cfg, rng, vocab, b); err != nil {
		return nil, err
	}
	// Hyperlinks.
	if err := w.genLinks(cfg, rng, b); err != nil {
		return nil, err
	}

	w.Graph = b.Build()
	return w, nil
}

// MustGenerate is Generate but panics on error; convenient in tests and
// examples where the config is a compile-time constant.
func MustGenerate(cfg Config) *World {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *World) genCategories(cfg Config, rng *rand.Rand, vocab *Vocab, b *kb.Builder) error {
	for d := 0; d < cfg.Domains; d++ {
		name := vocab.Word()
		cat, err := b.AddCategory("Category:" + name)
		if err != nil {
			return err
		}
		dom := Domain{ID: d, Name: name, Category: cat}
		for f := 0; f < cfg.FacetsPerDomain; f++ {
			fc, err := b.AddCategory("Category:" + name + " " + vocab.Word())
			if err != nil {
				return err
			}
			if err := b.AddContainment(cat, fc); err != nil {
				return err
			}
			dom.Facets = append(dom.Facets, fc)
		}
		w.Domains = append(w.Domains, dom)
	}

	usedNames := make(map[string]struct{})
	for d := 0; d < cfg.Domains; d++ {
		for i := 0; i < cfg.TopicsPerDomain; i++ {
			id := len(w.Topics)
			t := Topic{
				ID:         id,
				Domain:     d,
				CoreTerms:  w.sampleCoreTerms(cfg, rng),
				AliasTerms: vocab.Words(cfg.AliasTermsPerTopic),
				Subtopic:   kb.Invalid,
			}
			// The topic (and its entity article) is named by its two
			// leading core terms; because core terms come from a shared
			// pool, qualify on collision to keep titles unique.
			t.Name = t.CoreTerms[0] + " " + t.CoreTerms[1]
			for {
				if _, dup := usedNames[t.Name]; !dup {
					break
				}
				t.Name += " " + vocab.Word()
			}
			usedNames[t.Name] = struct{}{}
			cat, err := b.AddCategory("Category:" + t.Name)
			if err != nil {
				return err
			}
			t.Category = cat
			if err := b.AddContainment(w.Domains[d].Category, cat); err != nil {
				return err
			}
			if rng.Float64() < cfg.SubtopicFraction {
				sub, err := b.AddCategory("Category:" + t.Name + " " + vocab.Word())
				if err != nil {
					return err
				}
				if err := b.AddContainment(cat, sub); err != nil {
					return err
				}
				t.Subtopic = sub
			}
			w.Domains[d].Topics = append(w.Domains[d].Topics, id)
			w.Topics = append(w.Topics, t)
		}
	}
	return nil
}

func (w *World) genArticles(cfg Config, rng *rand.Rand, vocab *Vocab, b *kb.Builder) error {
	usedTitles := make(map[string]struct{})
	for ti := range w.Topics {
		t := &w.Topics[ti]
		dom := &w.Domains[t.Domain]
		// Actual article count varies ±30% around the mean.
		n := cfg.ArticlesPerTopic
		jitter := int(float64(n) * 0.3)
		if jitter > 0 {
			n += rng.Intn(2*jitter+1) - jitter
		}
		if n < 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			title := w.articleTitle(t, i, rng, vocab, usedTitles)
			a, err := b.AddArticle(title)
			if err != nil {
				return err
			}
			t.Articles = append(t.Articles, a)
			w.topicOf[a] = ti

			// Category memberships. Every article carries its topic
			// category; the entity article gets exactly one facet so
			// the triangular motif's superset condition has a realistic
			// (small, non-zero) match rate.
			if err := b.AddMembership(a, t.Category); err != nil {
				return err
			}
			var facets int
			if i == 0 {
				facets = 1
			} else {
				facets = rng.Intn(cfg.MaxFacetsPerArticle + 1)
			}
			for _, f := range pickDistinct(rng, len(dom.Facets), facets) {
				if err := b.AddMembership(a, dom.Facets[f]); err != nil {
					return err
				}
			}
			if t.Subtopic != kb.Invalid && i > 0 && rng.Float64() < 1.0/3 {
				if err := b.AddMembership(a, t.Subtopic); err != nil {
					return err
				}
			}
			if rng.Float64() < cfg.DomainDirectFraction {
				if err := b.AddMembership(a, dom.Category); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// articleTitle builds a unique title over the topic's core vocabulary:
// the entity article is named by the topic's two leading core terms, the
// rest sample 1–3 core terms, qualified with a fresh word on collision.
func (w *World) articleTitle(t *Topic, i int, rng *rand.Rand, vocab *Vocab, used map[string]struct{}) string {
	var title string
	if i == 0 {
		title = t.Name
	} else {
		k := 1 + rng.Intn(3)
		idx := pickDistinct(rng, len(t.CoreTerms), k)
		parts := make([]string, k)
		for j, ix := range idx {
			parts[j] = t.CoreTerms[ix]
		}
		title = strings.Join(parts, " ")
	}
	for {
		if _, dup := used[title]; !dup {
			break
		}
		title += " " + vocab.Word()
	}
	used[title] = struct{}{}
	return title
}

// genHubs creates the generic hub articles: named from the background
// vocabulary (their titles are everyday phrases, not topic terminology)
// and members of several domain categories, which is what lets them
// square-match query nodes of many topics.
func (w *World) genHubs(cfg Config, rng *rand.Rand, vocab *Vocab, b *kb.Builder) error {
	for i := 0; i < cfg.HubArticles; i++ {
		title := vocab.Word() + " " + vocab.Word()
		a, err := b.AddArticle(title)
		if err != nil {
			return err
		}
		w.Hubs = append(w.Hubs, a)
		k := cfg.HubDomainMemberships
		if k < 1 {
			k = 1
		}
		for _, d := range pickDistinct(rng, len(w.Domains), k) {
			if err := b.AddMembership(a, w.Domains[d].Category); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *World) genLinks(cfg Config, rng *rand.Rand, b *kb.Builder) error {
	allArticles := make([]kb.NodeID, 0, len(w.topicOf))
	for ti := range w.Topics {
		allArticles = append(allArticles, w.Topics[ti].Articles...)
	}
	addLink := func(from, to kb.NodeID, reciprocalProb float64) error {
		if from == to {
			return nil
		}
		if err := b.AddLink(from, to); err != nil {
			return err
		}
		if rng.Float64() < reciprocalProb {
			if err := b.AddLink(to, from); err != nil {
				return err
			}
		}
		return nil
	}
	for ti := range w.Topics {
		t := &w.Topics[ti]
		dom := &w.Domains[t.Domain]
		for ai, a := range t.Articles {
			// Intra-topic links: dense, often reciprocal. The entity
			// article is a hub: every article links to it and it links
			// back to a share of them, matching Wikipedia's main-article
			// centrality.
			if a != t.Entity() {
				if err := addLink(a, t.Entity(), cfg.IntraReciprocalProb); err != nil {
					return err
				}
			}
			for k := 0; k < cfg.IntraTopicLinks; k++ {
				to := t.Articles[rng.Intn(len(t.Articles))]
				if err := addLink(a, to, cfg.IntraReciprocalProb); err != nil {
					return err
				}
			}
			// Cross-topic (same domain) links: sparser, less reciprocal.
			for k := 0; k < cfg.CrossTopicLinks; k++ {
				other := &w.Topics[dom.Topics[rng.Intn(len(dom.Topics))]]
				if other.ID == t.ID {
					continue
				}
				to := other.Articles[rng.Intn(len(other.Articles))]
				if err := addLink(a, to, cfg.CrossReciprocalProb); err != nil {
					return err
				}
			}
			// Noise links: anywhere, never deliberately reciprocated.
			for k := 0; k < cfg.NoiseLinks; k++ {
				to := allArticles[rng.Intn(len(allArticles))]
				if err := addLink(a, to, 0); err != nil {
					return err
				}
			}
			// Hub links: everything points at the generic hubs, and the
			// hubs (being list-like overview articles) often link back —
			// especially to a topic's head articles, which overview
			// pages enumerate.
			if len(w.Hubs) > 0 {
				if rng.Float64() < cfg.HubLinkProb {
					hub := w.Hubs[rng.Intn(len(w.Hubs))]
					if err := addLink(a, hub, cfg.HubReciprocalProb); err != nil {
						return err
					}
				}
				if ai < 2 {
					for k := 0; k < 2; k++ {
						hub := w.Hubs[rng.Intn(len(w.Hubs))]
						if err := addLink(a, hub, 0.8); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// sampleCoreTerms draws a topic's core vocabulary: distinct words from
// the shared pool.
func (w *World) sampleCoreTerms(cfg Config, rng *rand.Rand) []string {
	idx := pickDistinct(rng, len(w.corePool), cfg.CoreTermsPerTopic)
	out := make([]string, len(idx))
	for i, ix := range idx {
		out[i] = w.corePool[ix]
	}
	return out
}

// pickDistinct returns k distinct indices from [0,n) in random order.
// When k >= n it returns all n indices.
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k >= n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// Describe returns a short human-readable summary of the world.
func (w *World) Describe() string {
	st := kb.ComputeStats(w.Graph)
	return fmt.Sprintf("world: %d domains, %d topics; %s", len(w.Domains), len(w.Topics), st)
}

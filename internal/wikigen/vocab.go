// Package wikigen generates a synthetic Wikipedia-like knowledge base.
//
// The paper runs SQE against the English Wikipedia dump of 2012-07-02.
// That asset (9.5M articles, ~145M links) is not available here, so we
// substitute a deterministic generative model that reproduces the
// structural regularities SQE exploits (see DESIGN.md §2):
//
//   - articles cluster into topics; topics cluster into domains;
//   - semantically related (same-topic) articles are densely and often
//     reciprocally hyperlinked, unrelated articles rarely are;
//   - every article belongs to a topic category plus a few facet
//     categories; categories form a containment DAG
//     (facet/topic → domain → root);
//   - article titles are short n-grams over the topic's core vocabulary,
//     which is exactly why titles of structurally related articles make
//     good expansion features.
//
// Everything is driven by a seeded PRNG, so a given Config always yields
// the identical world — tests and benchmarks are reproducible.
package wikigen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocab deterministically manufactures unique pronounceable pseudo-words.
// Using an invented vocabulary (rather than English) keeps term-topic
// assignment exact: a term belongs to precisely the topics we give it to,
// so vocabulary mismatch between queries and documents is controlled, not
// accidental.
type Vocab struct {
	rng  *rand.Rand
	seen map[string]struct{}
}

// NewVocab returns a vocabulary generator seeded with rng.
func NewVocab(rng *rand.Rand) *Vocab {
	return &Vocab{rng: rng, seen: make(map[string]struct{})}
}

var (
	onsets  = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "cr", "dr", "gr", "pr", "tr", "st", "sl", "pl", "fl", "gl"}
	nuclei  = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou", "ia"}
	codas   = []string{"", "", "", "n", "r", "s", "l", "t", "m", "nd", "rk", "st"}
	maxTrys = 10000
)

// Word returns a fresh unique word of 2–4 syllables.
func (v *Vocab) Word() string {
	for try := 0; try < maxTrys; try++ {
		sylls := 2 + v.rng.Intn(3)
		var sb strings.Builder
		for s := 0; s < sylls; s++ {
			sb.WriteString(onsets[v.rng.Intn(len(onsets))])
			sb.WriteString(nuclei[v.rng.Intn(len(nuclei))])
			if s == sylls-1 {
				sb.WriteString(codas[v.rng.Intn(len(codas))])
			}
		}
		w := sb.String()
		if _, dup := v.seen[w]; !dup {
			v.seen[w] = struct{}{}
			return w
		}
	}
	// The syllable space is ~10^5 per word length; exhausting it would
	// require a far larger world than any Config we build.
	panic(fmt.Sprintf("wikigen: vocabulary exhausted after %d words", len(v.seen)))
}

// Words returns n fresh unique words.
func (v *Vocab) Words(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v.Word()
	}
	return out
}

// Size reports how many distinct words have been issued.
func (v *Vocab) Size() int { return len(v.seen) }

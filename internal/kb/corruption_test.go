package kb

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecodeCorruptionRobust flips bytes of a valid encoding at random
// offsets and asserts the decoder fails cleanly (error, not panic) or
// decodes to *some* valid graph — truncations and corruptions never
// crash the process. This is the failure-injection counterpart to the
// round-trip tests.
func TestDecodeCorruptionRobust(t *testing.T) {
	g, _ := buildTestGraph(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), valid...)
		switch trial % 3 {
		case 0: // flip a byte
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		case 1: // truncate
			data = data[:rng.Intn(len(data))]
		case 2: // flip several bytes
			for i := 0; i < 4; i++ {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			_, _ = Decode(bytes.NewReader(data))
		}()
	}
}

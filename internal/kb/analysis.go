package kb

import (
	"fmt"
	"sort"
	"strings"
)

// Graph analysis utilities behind the paper's Section 2.1 ("analysis of
// the Wikipedia structure"): degree distributions, connectivity and
// distance profiles of the article graph. cmd/kb-stats surfaces them.

// DegreeStats summarises a degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// P50, P90, P99 are percentiles of the distribution.
	P50, P90, P99 int
}

// computeDegreeStats builds stats from raw degrees (consumed, sorted).
func computeDegreeStats(degrees []int) DegreeStats {
	if len(degrees) == 0 {
		return DegreeStats{}
	}
	sort.Ints(degrees)
	var sum int
	for _, d := range degrees {
		sum += d
	}
	pct := func(p float64) int {
		i := int(p * float64(len(degrees)-1))
		return degrees[i]
	}
	return DegreeStats{
		Min:  degrees[0],
		Max:  degrees[len(degrees)-1],
		Mean: float64(sum) / float64(len(degrees)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
	}
}

// String implements fmt.Stringer.
func (d DegreeStats) String() string {
	return fmt.Sprintf("min %d, p50 %d, mean %.1f, p90 %d, p99 %d, max %d",
		d.Min, d.P50, d.Mean, d.P90, d.P99, d.Max)
}

// OutDegreeStats profiles article out-degrees (hyperlinks).
func OutDegreeStats(g *Graph) DegreeStats {
	var degrees []int
	g.Articles(func(a NodeID) bool {
		degrees = append(degrees, len(g.OutLinks(a)))
		return true
	})
	return computeDegreeStats(degrees)
}

// InDegreeStats profiles article in-degrees.
func InDegreeStats(g *Graph) DegreeStats {
	var degrees []int
	g.Articles(func(a NodeID) bool {
		degrees = append(degrees, len(g.InLinks(a)))
		return true
	})
	return computeDegreeStats(degrees)
}

// CategoryFanoutStats profiles how many categories each article belongs
// to — the quantity that makes the triangular motif's exact-superset
// condition selective.
func CategoryFanoutStats(g *Graph) DegreeStats {
	var degrees []int
	g.Articles(func(a NodeID) bool {
		degrees = append(degrees, len(g.Categories(a)))
		return true
	})
	return computeDegreeStats(degrees)
}

// ConnectedComponents returns the sizes of the weakly connected
// components of the article graph (hyperlinks only, direction ignored),
// largest first.
func ConnectedComponents(g *Graph) []int {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	var queue []NodeID
	next := int32(0)
	g.Articles(func(start NodeID) bool {
		if comp[start] >= 0 {
			return true
		}
		id := next
		next++
		size := 0
		queue = append(queue[:0], start)
		comp[start] = id
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, nbrs := range [][]NodeID{g.OutLinks(cur), g.InLinks(cur)} {
				for _, nb := range nbrs {
					if comp[nb] < 0 {
						comp[nb] = id
						queue = append(queue, nb)
					}
				}
			}
		}
		sizes = append(sizes, size)
		return true
	})
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// BFSDistances returns, for a sample of source articles, the
// distribution of shortest-path distances (hyperlinks, undirected) as a
// histogram dist→count, exploring at most maxDist hops. It answers "how
// far apart are articles?", the search-space problem the paper's motifs
// sidestep by staying within 1–2 hops.
func BFSDistances(g *Graph, sources []NodeID, maxDist int) map[int]int {
	hist := make(map[int]int)
	dist := make([]int32, g.NumNodes())
	for _, src := range sources {
		if g.Kind(src) != KindArticle {
			continue
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []NodeID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			d := dist[cur]
			if int(d) >= maxDist {
				continue
			}
			for _, nbrs := range [][]NodeID{g.OutLinks(cur), g.InLinks(cur)} {
				for _, nb := range nbrs {
					if dist[nb] < 0 {
						dist[nb] = d + 1
						hist[int(d+1)]++
						queue = append(queue, nb)
					}
				}
			}
		}
	}
	return hist
}

// AnalysisReport bundles the structural profile of a graph.
type AnalysisReport struct {
	Stats          Stats
	OutDegree      DegreeStats
	InDegree       DegreeStats
	CategoryFanout DegreeStats
	// ComponentSizes holds the weakly-connected component sizes of the
	// article graph, largest first (truncated to the top 10).
	ComponentSizes []int
	// NumComponents is the total component count.
	NumComponents int
}

// Analyze computes the full structural profile.
func Analyze(g *Graph) AnalysisReport {
	comps := ConnectedComponents(g)
	r := AnalysisReport{
		Stats:          ComputeStats(g),
		OutDegree:      OutDegreeStats(g),
		InDegree:       InDegreeStats(g),
		CategoryFanout: CategoryFanoutStats(g),
		NumComponents:  len(comps),
	}
	if len(comps) > 10 {
		comps = comps[:10]
	}
	r.ComponentSizes = comps
	return r
}

// String renders the report.
func (r AnalysisReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph: %s\n", r.Stats)
	fmt.Fprintf(&sb, "article out-degree:  %s\n", r.OutDegree)
	fmt.Fprintf(&sb, "article in-degree:   %s\n", r.InDegree)
	fmt.Fprintf(&sb, "categories/article:  %s\n", r.CategoryFanout)
	fmt.Fprintf(&sb, "components: %d (largest %v)\n", r.NumComponents, r.ComponentSizes)
	return sb.String()
}

package kb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the subgraph induced by nodes in Graphviz DOT format,
// reproducing the visual language of the paper's figures: round nodes
// are articles, box nodes are categories, highlighted (filled) nodes are
// the query nodes, solid arrows are hyperlinks, dashed edges are
// category memberships, and dotted edges are containment. Feeding the
// query graph of a real expansion to this writer reproduces the paper's
// Figure 4 drawings for any query.
func WriteDOT(w io.Writer, g *Graph, nodes []NodeID, highlight []NodeID) error {
	bw := bufio.NewWriter(w)
	included := make(map[NodeID]bool, len(nodes))
	for _, n := range nodes {
		included[n] = true
	}
	for _, n := range highlight {
		included[n] = true
	}
	hi := make(map[NodeID]bool, len(highlight))
	for _, n := range highlight {
		hi[n] = true
	}
	ordered := make([]NodeID, 0, len(included))
	for n := range included {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	fmt.Fprintln(bw, "graph kb {")
	fmt.Fprintln(bw, "  // articles: ellipses; categories: boxes; query nodes: filled")
	for _, n := range ordered {
		shape := "ellipse"
		if g.Kind(n) == KindCategory {
			shape = "box"
		}
		style := ""
		if hi[n] {
			style = `, style=filled, fillcolor="gray85"`
		}
		fmt.Fprintf(bw, "  n%d [label=%q, shape=%s%s];\n", n, dotLabel(g.Title(n)), shape, style)
	}
	// Hyperlinks (render reciprocal pairs once, with both arrowheads).
	for _, a := range ordered {
		if g.Kind(a) != KindArticle {
			continue
		}
		for _, b := range g.OutLinks(a) {
			if !included[b] {
				continue
			}
			if g.HasLink(b, a) {
				if a < b {
					fmt.Fprintf(bw, "  n%d -- n%d [dir=both];\n", a, b)
				}
			} else {
				fmt.Fprintf(bw, "  n%d -- n%d [dir=forward];\n", a, b)
			}
		}
		for _, c := range g.Categories(a) {
			if included[c] {
				fmt.Fprintf(bw, "  n%d -- n%d [style=dashed];\n", a, c)
			}
		}
	}
	for _, c := range ordered {
		if g.Kind(c) != KindCategory {
			continue
		}
		for _, child := range g.ChildCategories(c) {
			if included[child] {
				fmt.Fprintf(bw, "  n%d -- n%d [style=dotted];\n", c, child)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// dotLabel escapes a title for a DOT quoted string.
func dotLabel(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

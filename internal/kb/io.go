package kb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary graph format:
//
//	magic "SQEKB\x01"
//	uvarint numNodes
//	per node: byte kind, uvarint len(title), title bytes
//	three relations (links, membership, containment), each:
//	    uvarint numRows, per row: uvarint degree, delta-uvarint targets
//
// Only forward relations are stored; reverse CSRs are rebuilt on load.

var magic = []byte("SQEKB\x01")

// Encode writes g to w in the binary graph format.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(g.kinds))); err != nil {
		return err
	}
	for i, k := range g.kinds {
		if err := bw.WriteByte(byte(k)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(g.titles[i]))); err != nil {
			return err
		}
		if _, err := bw.WriteString(g.titles[i]); err != nil {
			return err
		}
	}
	for _, rel := range []*csr{&g.linkOut, &g.memberOf, &g.parents} {
		if err := encodeCSR(writeUvarint, rel); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeCSR(writeUvarint func(uint64) error, c *csr) error {
	rows := len(c.offsets) - 1
	if rows < 0 {
		rows = 0
	}
	if err := writeUvarint(uint64(rows)); err != nil {
		return err
	}
	for r := 0; r < rows; r++ {
		row := c.targets[c.offsets[r]:c.offsets[r+1]]
		if err := writeUvarint(uint64(len(row))); err != nil {
			return err
		}
		prev := NodeID(0)
		for i, t := range row {
			d := uint64(t)
			if i > 0 {
				d = uint64(t - prev) // rows are sorted ascending
			}
			if err := writeUvarint(d); err != nil {
				return err
			}
			prev = t
		}
	}
	return nil
}

// Decode reads a graph previously written by Encode.
func Decode(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("kb: reading magic: %w", err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("kb: bad magic %q", head)
	}
	numNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("kb: reading node count: %w", err)
	}
	const maxNodes = 1 << 28
	if numNodes > maxNodes {
		return nil, fmt.Errorf("kb: node count %d exceeds limit %d", numNodes, maxNodes)
	}
	b := NewBuilder(int(numNodes))
	for i := uint64(0); i < numNodes; i++ {
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("kb: reading node %d kind: %w", i, err)
		}
		kind := NodeKind(kindByte)
		if kind != KindArticle && kind != KindCategory {
			return nil, fmt.Errorf("kb: node %d: invalid kind %d", i, kindByte)
		}
		tl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("kb: reading node %d title length: %w", i, err)
		}
		if tl > 1<<16 {
			return nil, fmt.Errorf("kb: node %d: title length %d too large", i, tl)
		}
		title := make([]byte, tl)
		if _, err := io.ReadFull(br, title); err != nil {
			return nil, fmt.Errorf("kb: reading node %d title: %w", i, err)
		}
		var id NodeID
		if kind == KindArticle {
			id, err = b.AddArticle(string(title))
		} else {
			id, err = b.AddCategory(string(title))
		}
		if err != nil {
			return nil, err
		}
		if id != NodeID(i) {
			return nil, fmt.Errorf("kb: duplicate title %q at node %d", title, i)
		}
	}
	adders := []func(from, to NodeID) error{
		b.AddLink,
		b.AddMembership,
		func(child, parent NodeID) error { return b.AddContainment(parent, child) },
	}
	for reli, add := range adders {
		rows, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("kb: relation %d row count: %w", reli, err)
		}
		if rows > numNodes {
			return nil, fmt.Errorf("kb: relation %d: %d rows for %d nodes", reli, rows, numNodes)
		}
		for r := uint64(0); r < rows; r++ {
			deg, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("kb: relation %d row %d degree: %w", reli, r, err)
			}
			if deg > numNodes {
				return nil, fmt.Errorf("kb: relation %d row %d: degree %d too large", reli, r, deg)
			}
			prev := uint64(0)
			for i := uint64(0); i < deg; i++ {
				d, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("kb: relation %d row %d target: %w", reli, r, err)
				}
				t := d
				if i > 0 {
					t = prev + d
				}
				if t >= numNodes {
					return nil, fmt.Errorf("kb: relation %d row %d: target %d out of range", reli, r, t)
				}
				if err := add(NodeID(r), NodeID(t)); err != nil {
					return nil, err
				}
				prev = t
			}
		}
	}
	return b.Build(), nil
}

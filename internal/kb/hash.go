package kb

import "hash/fnv"

// ContentHash returns a 64-bit FNV-1a hash of the graph's canonical
// binary encoding (the exact bytes Encode writes). Two graphs hash
// equal iff their encodings are byte-identical, which — because the
// encoding is deterministic over the builder's canonical node order and
// sorted adjacency rows — makes the hash a content fingerprint: the
// precomputed expansion store records it at build time and consumers
// reject a store whose KB has since changed (DESIGN.md §5h).
//
// Cost is one streaming encode pass (no allocation beyond Encode's
// buffers); callers hash once at startup or build time, never per
// query.
func ContentHash(g *Graph) uint64 {
	h := fnv.New64a()
	// An fnv hash never returns a write error, and Encode has no other
	// failure mode.
	_ = Encode(h, g)
	return h.Sum64()
}

// ContentHash is the method form of the package function, for callers
// holding a graph through a type alias (sqe.Graph).
func (g *Graph) ContentHash() uint64 { return ContentHash(g) }

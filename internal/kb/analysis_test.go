package kb

import (
	"strings"
	"testing"
)

func TestDegreeStats(t *testing.T) {
	g, ids := buildTestGraph(t)
	out := OutDegreeStats(g)
	// Out-degrees: A=2, B=2, C=1, H=0.
	if out.Min != 0 || out.Max != 2 {
		t.Errorf("out-degree = %+v", out)
	}
	if out.Mean != 1.25 {
		t.Errorf("mean = %f", out.Mean)
	}
	in := InDegreeStats(g)
	// In-degrees: A=2, B=1, C=1, H=1.
	if in.Max != 2 || in.Min != 1 {
		t.Errorf("in-degree = %+v", in)
	}
	cf := CategoryFanoutStats(g)
	// A=2, B=2, C=1, H=1 categories.
	if cf.Min != 1 || cf.Max != 2 {
		t.Errorf("fanout = %+v", cf)
	}
	_ = ids
	if out.String() == "" {
		t.Error("String empty")
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	if s := computeDegreeStats(nil); s != (DegreeStats{}) {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(8)
	a1, _ := b.AddArticle("a1")
	a2, _ := b.AddArticle("a2")
	a3, _ := b.AddArticle("a3")
	b1, _ := b.AddArticle("b1")
	b2, _ := b.AddArticle("b2")
	_, _ = b.AddArticle("lonely")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddLink(a1, a2))
	must(b.AddLink(a3, a2)) // direction must not matter
	must(b.AddLink(b1, b2))
	g := b.Build()
	sizes := ConnectedComponents(g)
	want := []int{3, 2, 1}
	if len(sizes) != 3 || sizes[0] != want[0] || sizes[1] != want[1] || sizes[2] != want[2] {
		t.Errorf("components = %v, want %v", sizes, want)
	}
}

func TestBFSDistances(t *testing.T) {
	// Chain a→b→c→d.
	b := NewBuilder(4)
	var ids []NodeID
	for _, n := range []string{"a", "b", "c", "d"} {
		id, _ := b.AddArticle(n)
		ids = append(ids, id)
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := b.AddLink(ids[i], ids[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	hist := BFSDistances(g, []NodeID{ids[0]}, 10)
	if hist[1] != 1 || hist[2] != 1 || hist[3] != 1 {
		t.Errorf("hist = %v", hist)
	}
	// maxDist truncates.
	hist = BFSDistances(g, []NodeID{ids[0]}, 2)
	if hist[3] != 0 {
		t.Errorf("maxDist ignored: %v", hist)
	}
	// Category sources are skipped.
	b2 := NewBuilder(1)
	c, _ := b2.AddCategory("Category:X")
	g2 := b2.Build()
	if h := BFSDistances(g2, []NodeID{c}, 3); len(h) != 0 {
		t.Errorf("category source should be skipped: %v", h)
	}
}

func TestAnalyzeReport(t *testing.T) {
	g, _ := buildTestGraph(t)
	r := Analyze(g)
	if r.Stats.Articles != 4 {
		t.Errorf("stats = %+v", r.Stats)
	}
	if r.NumComponents != 1 { // A,B,C,H all connected
		t.Errorf("components = %d", r.NumComponents)
	}
	s := r.String()
	for _, want := range []string{"out-degree", "in-degree", "components"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

package kb

import "fmt"

// Stats summarises a Graph with the same counters the paper reports for
// the 2012-07-02 English Wikipedia dump in Section 3 (articles, links
// among articles, categories, links among categories, links between
// articles and categories).
type Stats struct {
	Articles             int
	Categories           int
	ArticleLinks         int
	CategoryLinks        int
	ArticleCategoryLinks int
	// ReciprocalPairs counts unordered article pairs {a,b} with links in
	// both directions — the pool from which motifs can draw expansion
	// nodes.
	ReciprocalPairs int
}

// ComputeStats walks the graph and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Articles:             g.NumArticles(),
		Categories:           g.NumCategories(),
		ArticleLinks:         g.linkOut.numEdges(),
		CategoryLinks:        g.parents.numEdges(),
		ArticleCategoryLinks: g.memberOf.numEdges(),
	}
	g.Articles(func(a NodeID) bool {
		for _, b := range g.OutLinks(a) {
			if b > a && g.HasLink(b, a) {
				s.ReciprocalPairs++
			}
		}
		return true
	})
	return s
}

// String renders the stats in the paper's phrasing.
func (s Stats) String() string {
	return fmt.Sprintf(
		"%d articles, %d links among articles, %d categories, %d links among categories, %d links among articles and categories (%d reciprocal article pairs)",
		s.Articles, s.ArticleLinks, s.Categories, s.CategoryLinks, s.ArticleCategoryLinks, s.ReciprocalPairs)
}

package kb

import "sort"

// csr is a compressed-sparse-row adjacency structure over NodeIDs. Row i
// occupies targets[offsets[i]:offsets[i+1]] and every row is sorted
// ascending with duplicates removed, enabling O(log d) membership tests.
type csr struct {
	offsets []int32
	targets []NodeID
}

// row returns the adjacency list of node id. For nodes outside the
// structure's range — negative IDs (e.g. kb.Invalid leaking out of a
// failed entity-link lookup) or nodes beyond a relation that only
// covers articles — it returns nil instead of indexing out of bounds.
func (c *csr) row(id NodeID) []NodeID {
	if id < 0 || int(id)+1 >= len(c.offsets) {
		return nil
	}
	return c.targets[c.offsets[id]:c.offsets[id+1]]
}

// numEdges returns the total number of edges stored.
func (c *csr) numEdges() int { return len(c.targets) }

// edge is a directed pair used during construction.
type edge struct{ from, to NodeID }

// buildCSR constructs a csr over numNodes rows from an unsorted edge
// list, deduplicating parallel edges. The input slice is sorted in place.
func buildCSR(numNodes int, edges []edge) csr {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	offsets := make([]int32, numNodes+1)
	targets := make([]NodeID, 0, len(edges))
	prev := edge{from: -1, to: -1}
	for _, e := range edges {
		if e == prev {
			continue
		}
		prev = e
		targets = append(targets, e.to)
		offsets[e.from+1]++
	}
	for i := 1; i <= numNodes; i++ {
		offsets[i] += offsets[i-1]
	}
	return csr{offsets: offsets, targets: targets}
}

// reverse returns the transposed edge list.
func reverseEdges(edges []edge) []edge {
	out := make([]edge, len(edges))
	for i, e := range edges {
		out[i] = edge{from: e.to, to: e.from}
	}
	return out
}

package kb

import "fmt"

// Builder accumulates nodes and edges and produces an immutable Graph.
// It is not safe for concurrent use.
type Builder struct {
	kinds  []NodeKind
	titles []string
	byName map[string]NodeID

	links      []edge // article → article
	membership []edge // article → category
	contain    []edge // child category → parent category
}

// NewBuilder returns an empty Builder with capacity hints for the
// expected number of nodes.
func NewBuilder(nodeHint int) *Builder {
	return &Builder{
		kinds:  make([]NodeKind, 0, nodeHint),
		titles: make([]string, 0, nodeHint),
		byName: make(map[string]NodeID, nodeHint),
	}
}

// AddArticle registers an article with the given canonical title,
// returning its NodeID. Adding a title twice returns the existing node;
// adding a title already used by a category is an error.
func (b *Builder) AddArticle(title string) (NodeID, error) {
	return b.addNode(title, KindArticle)
}

// AddCategory registers a category node with the given canonical title.
func (b *Builder) AddCategory(title string) (NodeID, error) {
	return b.addNode(title, KindCategory)
}

func (b *Builder) addNode(title string, kind NodeKind) (NodeID, error) {
	if title == "" {
		return Invalid, fmt.Errorf("kb: empty node title")
	}
	if id, ok := b.byName[title]; ok {
		if b.kinds[id] != kind {
			return Invalid, fmt.Errorf("kb: node %q already exists as %s", title, b.kinds[id])
		}
		return id, nil
	}
	id := NodeID(len(b.kinds))
	b.kinds = append(b.kinds, kind)
	b.titles = append(b.titles, title)
	b.byName[title] = id
	return id, nil
}

// kindOf validates that id exists and returns its kind.
func (b *Builder) kindOf(id NodeID) (NodeKind, error) {
	if id < 0 || int(id) >= len(b.kinds) {
		return 0, fmt.Errorf("kb: node %d out of range [0,%d)", id, len(b.kinds))
	}
	return b.kinds[id], nil
}

// AddLink records a directed hyperlink between two articles.
func (b *Builder) AddLink(from, to NodeID) error {
	if err := b.expectKind(from, KindArticle, "link source"); err != nil {
		return err
	}
	if err := b.expectKind(to, KindArticle, "link target"); err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("kb: self link on article %q", b.titles[from])
	}
	b.links = append(b.links, edge{from, to})
	return nil
}

// AddMembership records that article a belongs to category c.
func (b *Builder) AddMembership(a, c NodeID) error {
	if err := b.expectKind(a, KindArticle, "membership article"); err != nil {
		return err
	}
	if err := b.expectKind(c, KindCategory, "membership category"); err != nil {
		return err
	}
	b.membership = append(b.membership, edge{a, c})
	return nil
}

// AddContainment records that category parent contains category child.
func (b *Builder) AddContainment(parent, child NodeID) error {
	if err := b.expectKind(parent, KindCategory, "containment parent"); err != nil {
		return err
	}
	if err := b.expectKind(child, KindCategory, "containment child"); err != nil {
		return err
	}
	if parent == child {
		return fmt.Errorf("kb: self containment on category %q", b.titles[parent])
	}
	b.contain = append(b.contain, edge{child, parent})
	return nil
}

func (b *Builder) expectKind(id NodeID, want NodeKind, role string) error {
	got, err := b.kindOf(id)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("kb: %s %q is a %s, want %s", role, b.titles[id], got, want)
	}
	return nil
}

// Build finalises the graph. The Builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.kinds)
	g := &Graph{
		kinds:  b.kinds,
		titles: b.titles,
		byName: b.byName,
	}
	for _, k := range b.kinds {
		if k == KindArticle {
			g.numArticles++
		} else {
			g.numCategories++
		}
	}
	g.linkIn = buildCSR(n, reverseEdges(b.links))
	g.linkOut = buildCSR(n, b.links)
	g.members = buildCSR(n, reverseEdges(b.membership))
	g.memberOf = buildCSR(n, b.membership)
	g.children = buildCSR(n, reverseEdges(b.contain))
	g.parents = buildCSR(n, b.contain)
	b.links, b.membership, b.contain = nil, nil, nil
	return g
}

package kb

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// buildTestGraph constructs the running example used across this file:
//
//	articles:  A, B, C, H
//	categories: C1 (domain), C2 (topic, child of C1), C3 (facet, child of C1)
//	links: A↔B, A→C, C→A, B→H
//	memberships: A∈{C2,C3}, B∈{C2,C3}, C∈{C2}, H∈{C1}
func buildTestGraph(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	b := NewBuilder(8)
	ids := map[string]NodeID{}
	add := func(name string, article bool) {
		var id NodeID
		var err error
		if article {
			id, err = b.AddArticle(name)
		} else {
			id, err = b.AddCategory(name)
		}
		if err != nil {
			t.Fatalf("add %s: %v", name, err)
		}
		ids[name] = id
	}
	for _, a := range []string{"A", "B", "C", "H"} {
		add(a, true)
	}
	for _, c := range []string{"C1", "C2", "C3"} {
		add(c, false)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddLink(ids["A"], ids["B"]))
	must(b.AddLink(ids["B"], ids["A"]))
	must(b.AddLink(ids["A"], ids["C"]))
	must(b.AddLink(ids["C"], ids["A"]))
	must(b.AddLink(ids["B"], ids["H"]))
	must(b.AddMembership(ids["A"], ids["C2"]))
	must(b.AddMembership(ids["A"], ids["C3"]))
	must(b.AddMembership(ids["B"], ids["C2"]))
	must(b.AddMembership(ids["B"], ids["C3"]))
	must(b.AddMembership(ids["C"], ids["C2"]))
	must(b.AddMembership(ids["H"], ids["C1"]))
	must(b.AddContainment(ids["C1"], ids["C2"]))
	must(b.AddContainment(ids["C1"], ids["C3"]))
	return b.Build(), ids
}

func TestGraphBasics(t *testing.T) {
	g, ids := buildTestGraph(t)
	if g.NumNodes() != 7 || g.NumArticles() != 4 || g.NumCategories() != 3 {
		t.Fatalf("counts = %d/%d/%d, want 7/4/3", g.NumNodes(), g.NumArticles(), g.NumCategories())
	}
	if g.Kind(ids["A"]) != KindArticle || g.Kind(ids["C1"]) != KindCategory {
		t.Error("wrong node kinds")
	}
	if g.Title(ids["B"]) != "B" {
		t.Errorf("Title = %q", g.Title(ids["B"]))
	}
	if g.ByTitle("C") != ids["C"] {
		t.Error("ByTitle failed")
	}
	if g.ByTitle("missing") != Invalid {
		t.Error("ByTitle of missing title should be Invalid")
	}
}

func TestGraphLinks(t *testing.T) {
	g, ids := buildTestGraph(t)
	if !g.HasLink(ids["A"], ids["B"]) || !g.HasLink(ids["B"], ids["A"]) {
		t.Error("A↔B links missing")
	}
	if g.HasLink(ids["H"], ids["B"]) {
		t.Error("unexpected H→B link")
	}
	if !g.Reciprocal(ids["A"], ids["B"]) || !g.Reciprocal(ids["A"], ids["C"]) {
		t.Error("reciprocal pairs not detected")
	}
	if g.Reciprocal(ids["B"], ids["H"]) {
		t.Error("B-H should not be reciprocal")
	}
	out := g.OutLinks(ids["A"])
	if len(out) != 2 {
		t.Errorf("OutLinks(A) = %v", out)
	}
	in := g.InLinks(ids["A"])
	if len(in) != 2 {
		t.Errorf("InLinks(A) = %v", in)
	}
	if len(g.InLinks(ids["H"])) != 1 {
		t.Errorf("InLinks(H) = %v", g.InLinks(ids["H"]))
	}
}

func TestGraphCategories(t *testing.T) {
	g, ids := buildTestGraph(t)
	if !g.InCategory(ids["A"], ids["C2"]) || g.InCategory(ids["A"], ids["C1"]) {
		t.Error("InCategory wrong")
	}
	cats := g.Categories(ids["A"])
	want := []NodeID{ids["C2"], ids["C3"]}
	if !reflect.DeepEqual(cats, want) {
		t.Errorf("Categories(A) = %v, want %v", cats, want)
	}
	members := g.Members(ids["C2"])
	if len(members) != 3 {
		t.Errorf("Members(C2) = %v", members)
	}
	if !g.IsParentCategory(ids["C1"], ids["C2"]) {
		t.Error("C1 should be parent of C2")
	}
	if g.IsParentCategory(ids["C2"], ids["C1"]) {
		t.Error("containment is directed")
	}
	if len(g.ChildCategories(ids["C1"])) != 2 {
		t.Errorf("ChildCategories(C1) = %v", g.ChildCategories(ids["C1"]))
	}
	if len(g.ParentCategories(ids["C2"])) != 1 {
		t.Errorf("ParentCategories(C2) = %v", g.ParentCategories(ids["C2"]))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(4)
	a, _ := b.AddArticle("A")
	c, _ := b.AddCategory("Category:X")
	if _, err := b.AddArticle(""); err == nil {
		t.Error("empty title should error")
	}
	if _, err := b.AddCategory("A"); err == nil {
		t.Error("kind conflict should error")
	}
	if err := b.AddLink(a, a); err == nil {
		t.Error("self link should error")
	}
	if err := b.AddLink(a, c); err == nil {
		t.Error("article→category hyperlink should error")
	}
	if err := b.AddMembership(c, c); err == nil {
		t.Error("category membership of category should error")
	}
	if err := b.AddContainment(c, c); err == nil {
		t.Error("self containment should error")
	}
	if err := b.AddContainment(a, c); err == nil {
		t.Error("article as containment parent should error")
	}
	if err := b.AddLink(a, NodeID(99)); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestBuilderDedupesTitles(t *testing.T) {
	b := NewBuilder(2)
	a1, _ := b.AddArticle("Same")
	a2, _ := b.AddArticle("Same")
	if a1 != a2 {
		t.Errorf("duplicate title returned new node: %d vs %d", a1, a2)
	}
}

func TestParallelEdgesDeduped(t *testing.T) {
	b := NewBuilder(2)
	a, _ := b.AddArticle("A")
	c, _ := b.AddArticle("B")
	for i := 0; i < 5; i++ {
		if err := b.AddLink(a, c); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if got := g.OutLinks(a); len(got) != 1 {
		t.Errorf("OutLinks after parallel edges = %v, want 1 entry", got)
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := buildTestGraph(t)
	s := ComputeStats(g)
	want := Stats{
		Articles:             4,
		Categories:           3,
		ArticleLinks:         5,
		CategoryLinks:        2,
		ArticleCategoryLinks: 6,
		ReciprocalPairs:      2, // A↔B and A↔C
	}
	if s != want {
		t.Errorf("ComputeStats = %+v, want %+v", s, want)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestKindString(t *testing.T) {
	if KindArticle.String() != "article" || KindCategory.String() != "category" {
		t.Error("NodeKind.String wrong")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestAccessorsPanicOnWrongKind(t *testing.T) {
	g, ids := buildTestGraph(t)
	defer func() {
		if recover() == nil {
			t.Error("OutLinks on a category should panic")
		}
	}()
	g.OutLinks(ids["C1"])
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, _ := buildTestGraph(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Error("garbage should not decode")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should not decode")
	}
	// Valid magic, truncated body.
	if _, err := Decode(bytes.NewReader(magic)); err == nil {
		t.Error("truncated input should not decode")
	}
}

// assertGraphsEqual compares two graphs exhaustively.
func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumArticles() != b.NumArticles() || a.NumCategories() != b.NumCategories() {
		t.Fatalf("node counts differ: %d/%d/%d vs %d/%d/%d",
			a.NumNodes(), a.NumArticles(), a.NumCategories(),
			b.NumNodes(), b.NumArticles(), b.NumCategories())
	}
	for id := NodeID(0); int(id) < a.NumNodes(); id++ {
		if a.Kind(id) != b.Kind(id) || a.Title(id) != b.Title(id) {
			t.Fatalf("node %d differs", id)
		}
		if a.Kind(id) == KindArticle {
			if !reflect.DeepEqual(a.OutLinks(id), b.OutLinks(id)) {
				t.Fatalf("OutLinks(%d) differ: %v vs %v", id, a.OutLinks(id), b.OutLinks(id))
			}
			if !reflect.DeepEqual(a.Categories(id), b.Categories(id)) {
				t.Fatalf("Categories(%d) differ", id)
			}
		} else {
			if !reflect.DeepEqual(a.ParentCategories(id), b.ParentCategories(id)) {
				t.Fatalf("ParentCategories(%d) differ", id)
			}
		}
	}
}

// randomGraph builds a random valid graph for property tests.
func randomGraph(rng *rand.Rand) *Graph {
	nArt := 2 + rng.Intn(20)
	nCat := 1 + rng.Intn(8)
	b := NewBuilder(nArt + nCat)
	arts := make([]NodeID, nArt)
	cats := make([]NodeID, nCat)
	for i := range arts {
		arts[i], _ = b.AddArticle(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	for i := range cats {
		cats[i], _ = b.AddCategory("Category:" + string(rune('A'+i)))
	}
	for i := 0; i < nArt*3; i++ {
		from, to := arts[rng.Intn(nArt)], arts[rng.Intn(nArt)]
		if from != to {
			_ = b.AddLink(from, to)
		}
	}
	for i := 0; i < nArt*2; i++ {
		_ = b.AddMembership(arts[rng.Intn(nArt)], cats[rng.Intn(nCat)])
	}
	for i := 0; i < nCat; i++ {
		p, c := cats[rng.Intn(nCat)], cats[rng.Intn(nCat)]
		if p != c {
			_ = b.AddContainment(p, c)
		}
	}
	return b.Build()
}

// Property: adjacency rows are always sorted and duplicate-free, and
// forward/reverse relations agree.
func TestGraphAdjacencyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		ok := true
		g.Articles(func(a NodeID) bool {
			out := g.OutLinks(a)
			for i := 1; i < len(out); i++ {
				if out[i-1] >= out[i] {
					ok = false
				}
			}
			for _, to := range out {
				found := false
				for _, back := range g.InLinks(to) {
					if back == a {
						found = true
					}
				}
				if !found {
					ok = false
				}
			}
			for _, c := range g.Categories(a) {
				found := false
				for _, m := range g.Members(c) {
					if m == a {
						found = true
					}
				}
				if !found {
					ok = false
				}
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: encode/decode is the identity on random graphs.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			return false
		}
		g2, err := Decode(&buf)
		if err != nil {
			return false
		}
		if g.NumNodes() != g2.NumNodes() {
			return false
		}
		for id := NodeID(0); int(id) < g.NumNodes(); id++ {
			if g.Title(id) != g2.Title(id) || g.Kind(id) != g2.Kind(id) {
				return false
			}
			if g.Kind(id) == KindArticle && !reflect.DeepEqual(g.OutLinks(id), g2.OutLinks(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCSRRowNegativeID is the regression test for csr.row panicking on a
// negative NodeID: a bogus entity-link result (kb.Invalid) reaching any
// adjacency accessor must see an empty row, not an out-of-bounds slice.
func TestCSRRowNegativeID(t *testing.T) {
	g, _ := buildTestGraph(t)
	for _, id := range []NodeID{Invalid, -5} {
		for name, c := range map[string]*csr{
			"linkOut": &g.linkOut, "linkIn": &g.linkIn,
			"memberOf": &g.memberOf, "members": &g.members,
			"parents": &g.parents, "children": &g.children,
		} {
			if row := c.row(id); row != nil {
				t.Errorf("%s.row(%d) = %v, want nil", name, id, row)
			}
		}
	}
}

package kb

import "testing"

// TestContentHashIsContentFingerprint: identical builds hash equal,
// and any content change — an extra link — changes the hash.
func TestContentHashIsContentFingerprint(t *testing.T) {
	build := func(extraLink bool) *Graph {
		b := NewBuilder(4)
		a, err := b.AddArticle("A")
		if err != nil {
			t.Fatal(err)
		}
		c, err := b.AddArticle("B")
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddLink(a, c); err != nil {
			t.Fatal(err)
		}
		if extraLink {
			if err := b.AddLink(c, a); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	h1, h2 := ContentHash(build(false)), ContentHash(build(false))
	if h1 != h2 {
		t.Errorf("identical graphs hash differently: %#x vs %#x", h1, h2)
	}
	if h3 := ContentHash(build(true)); h3 == h1 {
		t.Errorf("different graphs share hash %#x", h1)
	}
}

// Package kb implements the knowledge-base graph substrate that SQE
// traverses. The graph mirrors the structure the paper extracts from
// Wikipedia: two node kinds (articles and categories) and three edge
// relations — hyperlinks among articles, membership links between
// articles and categories, and containment links among categories.
//
// The graph is immutable after construction (see Builder) and stores each
// relation in compressed sparse row (CSR) form, forward and reverse, with
// sorted adjacency lists so that membership tests (is there a link a→b?)
// are O(log d). That is the only primitive the motif matchers need to run
// in sub-second time, which is the performance claim of the paper's
// Table 4.
package kb

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (article or category) in a Graph. IDs are
// dense: articles and categories share one ID space, 0..NumNodes-1.
type NodeID int32

// Invalid is returned by lookups that find no node.
const Invalid NodeID = -1

// NodeKind distinguishes article nodes from category nodes.
type NodeKind uint8

const (
	// KindArticle marks a Wikipedia-article-like node; query nodes and
	// expansion nodes are always articles.
	KindArticle NodeKind = iota
	// KindCategory marks a category node.
	KindCategory
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindArticle:
		return "article"
	case KindCategory:
		return "category"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Graph is an immutable KB graph. Construct one with a Builder or by
// decoding a previously encoded graph.
type Graph struct {
	kinds  []NodeKind
	titles []string
	byName map[string]NodeID

	// article → article hyperlinks (directed)
	linkOut csr
	linkIn  csr
	// article → category membership
	memberOf csr
	members  csr
	// category(child) → category(parent) containment
	parents  csr
	children csr

	numArticles   int
	numCategories int
}

// NumNodes returns the total number of nodes.
func (g *Graph) NumNodes() int { return len(g.kinds) }

// NumArticles returns the number of article nodes.
func (g *Graph) NumArticles() int { return g.numArticles }

// NumCategories returns the number of category nodes.
func (g *Graph) NumCategories() int { return g.numCategories }

// Kind returns the node kind of id.
func (g *Graph) Kind(id NodeID) NodeKind { return g.kinds[id] }

// Title returns the canonical title of id.
func (g *Graph) Title(id NodeID) string { return g.titles[id] }

// ByTitle resolves a canonical title to a node, or Invalid when absent.
func (g *Graph) ByTitle(title string) NodeID {
	if id, ok := g.byName[title]; ok {
		return id
	}
	return Invalid
}

// valid panics unless id names an existing node of kind k; internal guard
// used by the typed accessors below.
func (g *Graph) valid(id NodeID, k NodeKind, op string) {
	if id < 0 || int(id) >= len(g.kinds) {
		panic(fmt.Sprintf("kb: %s: node %d out of range [0,%d)", op, id, len(g.kinds)))
	}
	if g.kinds[id] != k {
		panic(fmt.Sprintf("kb: %s: node %d (%s) is a %s, want %s", op, id, g.titles[id], g.kinds[id], k))
	}
}

// OutLinks returns the articles that article a links to. The slice is
// shared with the graph and must not be modified.
func (g *Graph) OutLinks(a NodeID) []NodeID {
	g.valid(a, KindArticle, "OutLinks")
	return g.linkOut.row(a)
}

// InLinks returns the articles that link to article a.
func (g *Graph) InLinks(a NodeID) []NodeID {
	g.valid(a, KindArticle, "InLinks")
	return g.linkIn.row(a)
}

// HasLink reports whether article a hyperlinks to article b.
func (g *Graph) HasLink(a, b NodeID) bool {
	g.valid(a, KindArticle, "HasLink")
	return contains(g.linkOut.row(a), b)
}

// Reciprocal reports whether articles a and b are doubly linked, i.e.
// a links to b and b links to a. This is the core structural condition of
// both the triangular and the square motif.
func (g *Graph) Reciprocal(a, b NodeID) bool {
	return g.HasLink(a, b) && g.HasLink(b, a)
}

// Categories returns the categories article a belongs to, sorted.
func (g *Graph) Categories(a NodeID) []NodeID {
	g.valid(a, KindArticle, "Categories")
	return g.memberOf.row(a)
}

// InCategory reports whether article a belongs to category c.
func (g *Graph) InCategory(a, c NodeID) bool {
	g.valid(a, KindArticle, "InCategory")
	return contains(g.memberOf.row(a), c)
}

// Members returns the articles belonging to category c, sorted.
func (g *Graph) Members(c NodeID) []NodeID {
	g.valid(c, KindCategory, "Members")
	return g.members.row(c)
}

// ParentCategories returns the categories that contain category c.
func (g *Graph) ParentCategories(c NodeID) []NodeID {
	g.valid(c, KindCategory, "ParentCategories")
	return g.parents.row(c)
}

// ChildCategories returns the categories contained in category c.
func (g *Graph) ChildCategories(c NodeID) []NodeID {
	g.valid(c, KindCategory, "ChildCategories")
	return g.children.row(c)
}

// IsParentCategory reports whether parent directly contains child.
func (g *Graph) IsParentCategory(parent, child NodeID) bool {
	g.valid(child, KindCategory, "IsParentCategory")
	return contains(g.parents.row(child), parent)
}

// Articles iterates over all article IDs in increasing order, invoking fn
// for each. Iteration stops early when fn returns false.
func (g *Graph) Articles(fn func(NodeID) bool) {
	for id := range g.kinds {
		if g.kinds[id] == KindArticle {
			if !fn(NodeID(id)) {
				return
			}
		}
	}
}

// CategoriesAll iterates over all category IDs in increasing order.
func (g *Graph) CategoriesAll(fn func(NodeID) bool) {
	for id := range g.kinds {
		if g.kinds[id] == KindCategory {
			if !fn(NodeID(id)) {
				return
			}
		}
	}
}

// contains does a binary-search membership test on a sorted adjacency row.
func contains(row []NodeID, x NodeID) bool {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= x })
	return i < len(row) && row[i] == x
}

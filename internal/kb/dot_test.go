package kb

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g, ids := buildTestGraph(t)
	var buf bytes.Buffer
	nodes := []NodeID{ids["A"], ids["B"], ids["C2"], ids["C1"]}
	if err := WriteDOT(&buf, g, nodes, []NodeID{ids["A"]}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph kb {",
		"shape=ellipse",   // articles
		"shape=box",       // categories
		"style=filled",    // highlighted query node
		"[dir=both];",     // reciprocal A↔B once
		"[style=dashed];", // membership
		"[style=dotted];", // containment C1→C2
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Reciprocal pair must be rendered exactly once.
	if strings.Count(out, "[dir=both];") != 1 {
		t.Errorf("reciprocal edge count wrong:\n%s", out)
	}
	// Nodes outside the induced set never appear.
	if strings.Contains(out, "\"H\"") {
		t.Errorf("excluded node leaked:\n%s", out)
	}
}

func TestWriteDOTOneWayEdge(t *testing.T) {
	g, ids := buildTestGraph(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []NodeID{ids["B"], ids["H"]}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[dir=forward];") {
		t.Errorf("one-way edge missing:\n%s", buf.String())
	}
}

func TestDOTLabelEscaping(t *testing.T) {
	if dotLabel(`a "quoted" title`) != `a \"quoted\" title` {
		t.Errorf("escaping = %q", dotLabel(`a "quoted" title`))
	}
}

package search

import (
	"math"
	"testing"
)

func TestModelStrings(t *testing.T) {
	if ModelDirichlet.String() != "dirichlet" || ModelJelinekMercer.String() != "jelinek-mercer" ||
		ModelBM25.String() != "bm25" || Model(99).String() != "unknown" {
		t.Error("model names wrong")
	}
}

func TestModelParamsDefaults(t *testing.T) {
	p := ModelParams{}.withDefaults()
	if p.Mu != DefaultMu || p.Lambda != 0.4 || p.K1 != 1.2 || p.B != 0.75 {
		t.Errorf("defaults = %+v", p)
	}
	p = ModelParams{Mu: 10, Lambda: 0.9, K1: 2, B: 0.5}.withDefaults()
	if p.Mu != 10 || p.Lambda != 0.9 || p.K1 != 2 || p.B != 0.5 {
		t.Errorf("explicit params overridden: %+v", p)
	}
	// Out-of-range λ and B fall back.
	p = ModelParams{Lambda: 1.5, B: 2}.withDefaults()
	if p.Lambda != 0.4 || p.B != 0.75 {
		t.Errorf("range guard failed: %+v", p)
	}
}

func TestJelinekMercerScore(t *testing.T) {
	ix := buildIndex("a a b", "b c")
	s := NewSearcher(ix)
	s.Model = ModelJelinekMercer
	s.Params.Lambda = 0.5
	res := s.Search(Term{Text: "a"}, 10)
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	// (1-λ)·tf/|D| + λ·P(a|C) = 0.5·(2/3) + 0.5·(2/5)
	want := math.Log(0.5*(2.0/3) + 0.5*(2.0/5))
	if math.Abs(res[0].Score-want) > 1e-12 {
		t.Errorf("JM score = %v, want %v", res[0].Score, want)
	}
}

func TestBM25Score(t *testing.T) {
	ix := buildIndex("a a b", "b c", "c d")
	s := NewSearcher(ix)
	s.Model = ModelBM25
	res := s.Search(Term{Text: "a"}, 10)
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	// idf = ln((3-1+0.5)/(1+0.5) + 1) = ln(8/3); tf part with k1=1.2,
	// b=0.75, |D|=3, avgdl=7/3.
	idf := math.Log((3-1+0.5)/(1+0.5) + 1)
	tfPart := (2.0 * 2.2) / (2.0 + 1.2*(1-0.75+0.75*3/(7.0/3)))
	want := idf * tfPart
	if math.Abs(res[0].Score-want) > 1e-12 {
		t.Errorf("BM25 score = %v, want %v", res[0].Score, want)
	}
}

func TestBM25IgnoresNonMatching(t *testing.T) {
	ix := buildIndex("a b", "c d")
	s := NewSearcher(ix)
	s.Model = ModelBM25
	// Query a OR c: each doc matches one leaf; the other contributes 0
	// (no background mass), so both docs score > -inf and rank by their
	// own match.
	res := s.Search(Combine(Term{Text: "a"}, Term{Text: "c"}), 10)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	for _, r := range res {
		if math.IsInf(r.Score, 0) || r.Score <= 0 {
			t.Errorf("BM25 score = %v", r.Score)
		}
	}
}

func TestModelsAgreeOnStrongMatch(t *testing.T) {
	// All three models must put the clearly better document first.
	ix := buildIndex(
		"cable cable cable car",
		"cable mention once somewhere in here",
		"nothing relevant at all",
	)
	for _, m := range []Model{ModelDirichlet, ModelJelinekMercer, ModelBM25} {
		s := NewSearcher(ix)
		s.Model = m
		res := s.Search(Term{Text: "cable"}, 10)
		if len(res) != 2 {
			t.Fatalf("%v: results = %v", m, res)
		}
		if res[0].Name != "D0" {
			t.Errorf("%v: top = %s", m, res[0].Name)
		}
	}
}

func TestExplainHonoursModel(t *testing.T) {
	ix := buildIndex("a b", "a c")
	s := NewSearcher(ix)
	s.Model = ModelBM25
	q := Combine(Term{Text: "a"}, Term{Text: "b"})
	res := s.Search(q, 10)
	for _, r := range res {
		ex := s.Explain(q, r.Doc)
		if math.Abs(ex.Score-r.Score) > 1e-12 {
			t.Errorf("BM25 explain %v != search %v", ex.Score, r.Score)
		}
	}
}

func TestPhraseLeafUnderBM25(t *testing.T) {
	ix := buildIndex("cable car here", "car cable there", "cable car cable car")
	s := NewSearcher(ix)
	s.Model = ModelBM25
	res := s.Search(Phrase{Terms: []string{"cable", "car"}}, 10)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Name != "D2" { // phrase tf 2 saturates above tf 1
		t.Errorf("top = %s", res[0].Name)
	}
}

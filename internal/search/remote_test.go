package search

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/rpc"
)

// startShardServer boots one ShardService on an ephemeral port. wrap,
// when non-nil, may replace method handlers (tests use it to slow down
// or fail specific phases).
func startShardServer(t *testing.T, svc *ShardService, wrap func(srv *rpc.Server)) (string, *rpc.Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	svc.Register(srv)
	if wrap != nil {
		wrap(srv)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

// testClientOptions keeps test-failure latency low: client-level retry
// off (the degradation layer owns retries), short timeouts.
func testClientOptions() rpc.ClientOptions {
	return rpc.ClientOptions{
		DialTimeout: time.Second,
		CallTimeout: 5 * time.Second,
		MaxRetries:  -1,
	}
}

// bootRemote partitions ix n ways, boots one shard server per shard,
// and returns the RPC coordinator plus the in-process equivalent for
// parity checks.
func bootRemote(t *testing.T, ix *index.Index, n int) (*RemoteSharded, *ShardedSearcher) {
	t.Helper()
	sh := index.NewSharded(ix, n)
	groups := make([]*rpc.Group, sh.NumShards())
	for i := 0; i < sh.NumShards(); i++ {
		addr, _ := startShardServer(t, NewShardService(sh.Shard(i), i, sh.NumShards()), nil)
		groups[i] = rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr, testClientOptions())}, rpc.GroupOptions{})
	}
	rs, err := NewRemoteSharded(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	return rs, NewShardedSearcher(sh)
}

func TestWireNodeRoundTrip(t *testing.T) {
	for qi, q := range shardQueries() {
		data, err := MarshalQuery(q)
		if err != nil {
			t.Fatalf("q=%d: %v", qi, err)
		}
		back, err := UnmarshalQuery(data)
		if err != nil {
			t.Fatalf("q=%d: %v", qi, err)
		}
		// The Indri rendering is injective over the node kinds in use;
		// equal strings mean an identical tree (weights included, as they
		// print with enough precision to spot structural drift).
		if q.String() != back.String() {
			t.Fatalf("q=%d: round trip changed tree:\n got %s\nwant %s", qi, back.String(), q.String())
		}
	}
}

// TestRemoteShardedBitIdentical is the distributed counterpart of
// TestShardedBitIdentical: for every model, shard count and query, the
// coordinator + shard-server evaluation must reproduce the in-process
// sharded ranking — and therefore the unsharded one — with bit-identical
// scores (==, no tolerance).
func TestRemoteShardedBitIdentical(t *testing.T) {
	ix := buildShardCorpus(120, 9)
	models := []struct {
		name   string
		model  Model
		params ModelParams
	}{
		{"dirichlet", ModelDirichlet, ModelParams{}},
		{"jelinek-mercer", ModelJelinekMercer, ModelParams{Lambda: 0.4}},
		{"bm25", ModelBM25, ModelParams{K1: 1.2, B: 0.75}},
	}
	for _, s := range []int{1, 2, 4} {
		rs, ss := bootRemote(t, ix, s)
		ref := NewSearcher(ix)
		for _, m := range models {
			cfg := ShardConfig{Model: m.model, Params: m.params}
			rs.Configure(cfg)
			ss.Configure(cfg)
			ref.Model, ref.Params = m.model, m.params
			for qi, q := range shardQueries() {
				for _, k := range []int{1, 5, 50} {
					want := ref.Search(q, k)
					local := ss.Search(q, k)
					got, err := rs.SearchContext(context.Background(), q, k)
					if err != nil {
						t.Fatalf("%s S=%d q=%d k=%d: %v", m.name, s, qi, k, err)
					}
					if len(got) != len(want) || len(local) != len(want) {
						t.Fatalf("%s S=%d q=%d k=%d: remote %d, local %d, unsharded %d results",
							m.name, s, qi, k, len(got), len(local), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s S=%d q=%d k=%d rank %d: remote (%d,%q,%v) want (%d,%q,%v)",
								m.name, s, qi, k, i,
								got[i].Doc, got[i].Name, got[i].Score,
								want[i].Doc, want[i].Name, want[i].Score)
						}
						if local[i] != want[i] {
							t.Fatalf("%s S=%d q=%d k=%d rank %d: in-process sharding diverged", m.name, s, qi, k, i)
						}
					}
				}
			}
		}
	}
}

// TestRemoteShardedStatsMatchInProcess checks the deterministic
// evaluator counters survive the wire: the remote stats must equal the
// in-process sharded stats counter for counter.
func TestRemoteShardedStatsMatchInProcess(t *testing.T) {
	ix := buildShardCorpus(150, 21)
	rs, ss := bootRemote(t, ix, 4)
	q := Combine(Term{Text: "cable"}, Term{Text: "car"}, Term{Text: "bay"})
	_, wantSt, err := ss.SearchWithStatsContext(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, gotSt, err := rs.SearchWithStatsContext(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gotSt.Leaves != wantSt.Leaves ||
		gotSt.CandidatesExamined != wantSt.CandidatesExamined ||
		gotSt.PostingsAdvanced != wantSt.PostingsAdvanced ||
		gotSt.DocsSkipped != wantSt.DocsSkipped ||
		gotSt.BoundEvaluations != wantSt.BoundEvaluations ||
		gotSt.HeapPushes != wantSt.HeapPushes ||
		gotSt.HeapEvictions != wantSt.HeapEvictions {
		t.Fatalf("remote stats %+v != in-process %+v", gotSt, wantSt)
	}
	if len(gotSt.Shards) != 4 {
		t.Fatalf("remote stats carry %d shard rows, want 4", len(gotSt.Shards))
	}
}

// TestRemoteEvalTimeoutDegradesExactPartial maps a slow shard (eval
// phase exceeds the per-shard deadline) to PR 5's exact-partial tier:
// the degraded ranking must be bit-identical to the complete ranking
// minus the dropped shard's documents.
func TestRemoteEvalTimeoutDegradesExactPartial(t *testing.T) {
	ix := buildShardCorpus(100, 5)
	const n, slow, k = 4, 2, 10
	sh := index.NewSharded(ix, n)
	groups := make([]*rpc.Group, n)
	for i := 0; i < n; i++ {
		svc := NewShardService(sh.Shard(i), i, n)
		var wrap func(*rpc.Server)
		if i == slow {
			wrap = func(srv *rpc.Server) {
				srv.Handle(MethodEval, func(ctx context.Context, body json.RawMessage) (any, error) {
					time.Sleep(400 * time.Millisecond)
					return svc.handleEval(ctx, body)
				})
			}
		}
		addr, _ := startShardServer(t, svc, wrap)
		groups[i] = rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr, testClientOptions())}, rpc.GroupOptions{})
	}
	rs, err := NewRemoteSharded(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	q := Combine(Term{Text: "cable"}, Term{Text: "car"}, Term{Text: "tram"})
	res, pi, err := rs.SearchDegraded(context.Background(), q, k, DegradeOptions{
		AllowPartial:  true,
		ShardDeadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pi.DroppedShards) != 1 || pi.DroppedShards[0] != slow {
		t.Fatalf("dropped shards = %v (%v), want [%d]", pi.DroppedShards, pi.ShardErrors, slow)
	}
	if strings.HasPrefix(pi.ShardErrors[0], "stats phase:") {
		t.Fatalf("slow eval recorded as stats-phase drop: %q", pi.ShardErrors[0])
	}

	// Exact-partial invariant: complete ranking minus the slow shard's
	// documents (round-robin: global doc g lives in shard g mod n).
	full := NewSearcher(ix).Search(q, ix.NumDocs())
	var want []Result
	for _, r := range full {
		if int(r.Doc)%n != slow {
			want = append(want, r)
		}
	}
	if len(want) > k {
		want = want[:k]
	}
	if len(res) != len(want) {
		t.Fatalf("%d partial results, want %d", len(res), len(want))
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("rank %d: got (%d,%v), want (%d,%v) — partial merge is not exact",
				i, res[i].Doc, res[i].Score, want[i].Doc, want[i].Score)
		}
	}
}

// TestRemoteDeadShardDegradesAtStatsPhase maps a refused connection (the
// shard process is gone) to the stats-phase exclusion tier: the query
// degrades, the drop is labelled as stats-phase, and the surviving
// shards still answer deterministically.
func TestRemoteDeadShardDegradesAtStatsPhase(t *testing.T) {
	ix := buildShardCorpus(80, 13)
	const n, dead = 2, 1
	sh := index.NewSharded(ix, n)
	groups := make([]*rpc.Group, n)
	var deadSrv *rpc.Server
	for i := 0; i < n; i++ {
		addr, srv := startShardServer(t, NewShardService(sh.Shard(i), i, n), nil)
		if i == dead {
			deadSrv = srv
		}
		groups[i] = rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr, testClientOptions())}, rpc.GroupOptions{})
	}
	rs, err := NewRemoteSharded(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	q := Term{Text: "cable"}

	// Healthy first: not degraded.
	if _, pi, err := rs.SearchDegraded(context.Background(), q, 5, DegradeOptions{AllowPartial: true}); err != nil || pi.Degraded() {
		t.Fatalf("healthy search: err=%v degraded=%v", err, pi.Degraded())
	}

	// Kill the shard process (listener + live connections).
	deadSrv.Close()
	groups[dead].Close() // drop pooled connections to the dead server

	res, pi, err := rs.SearchDegraded(context.Background(), q, 5, DegradeOptions{AllowPartial: true, MaxRetries: 1})
	if err != nil {
		t.Fatalf("dead shard with AllowPartial: %v", err)
	}
	if len(pi.DroppedShards) != 1 || pi.DroppedShards[0] != dead {
		t.Fatalf("dropped shards = %v, want [%d]", pi.DroppedShards, dead)
	}
	if !strings.HasPrefix(pi.ShardErrors[0], "stats phase:") {
		t.Fatalf("dead shard not labelled as stats-phase drop: %q", pi.ShardErrors[0])
	}
	if pi.Retries == 0 {
		t.Fatal("no retries recorded against the dead shard")
	}
	if len(res) == 0 {
		t.Fatal("surviving shard produced no results for an in-vocabulary term")
	}
	// Deterministic: the same degraded query again gives the same answer.
	res2, _, err := rs.SearchDegraded(context.Background(), q, 5, DegradeOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i] != res2[i] {
			t.Fatal("stats-phase degraded ranking is not deterministic")
		}
	}

	// Without AllowPartial the query must fail outright.
	if _, _, err := rs.SearchDegraded(context.Background(), q, 5, DegradeOptions{}); err == nil {
		t.Fatal("dead shard without AllowPartial: expected an error")
	}
}

// fakeTruncatingShard implements the wire protocol by hand: a correct
// shard.info answer (so the handshake passes), then a truncated frame —
// a 200-byte header followed by 3 bytes and a close — for every later
// request. It models a shard dying mid-response.
func fakeTruncatingShard(t *testing.T, shard, numShards int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	infoBody, _ := json.Marshal(InfoResponse{Shard: shard, NumShards: numShards})
	infoResp, _ := json.Marshal(map[string]any{"ok": true, "body": json.RawMessage(infoBody)})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					var hdr [4]byte
					if _, err := readFull(conn, hdr[:]); err != nil {
						return
					}
					payload := make([]byte, binary.BigEndian.Uint32(hdr[:]))
					if _, err := readFull(conn, payload); err != nil {
						return
					}
					var req struct {
						Method string `json:"method"`
					}
					if json.Unmarshal(payload, &req) == nil && req.Method == MethodInfo {
						var out [4]byte
						binary.BigEndian.PutUint32(out[:], uint32(len(infoResp)))
						if _, err := conn.Write(append(out[:], infoResp...)); err != nil {
							return
						}
						continue
					}
					// Truncate: promise 200 bytes, deliver 3, hang up.
					var out [4]byte
					binary.BigEndian.PutUint32(out[:], 200)
					_, _ = conn.Write(out[:])
					_, _ = conn.Write([]byte{'{', '"', 'o'})
					return
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

// TestRemoteTruncatedStreamDegrades maps a mid-stream truncation to a
// degraded (dropped-shard) query rather than a failed or corrupt one.
func TestRemoteTruncatedStreamDegrades(t *testing.T) {
	ix := buildShardCorpus(60, 17)
	const n, broken = 2, 1
	sh := index.NewSharded(ix, n)
	addr0, _ := startShardServer(t, NewShardService(sh.Shard(0), 0, n), nil)
	addr1 := fakeTruncatingShard(t, broken, n)
	groups := []*rpc.Group{
		rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr0, testClientOptions())}, rpc.GroupOptions{}),
		rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr1, testClientOptions())}, rpc.GroupOptions{}),
	}
	rs, err := NewRemoteSharded(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	q := Term{Text: "cable"}
	res, pi, err := rs.SearchDegraded(context.Background(), q, 5, DegradeOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("truncated shard with AllowPartial: %v", err)
	}
	if len(pi.DroppedShards) != 1 || pi.DroppedShards[0] != broken {
		t.Fatalf("dropped shards = %v (%v), want [%d]", pi.DroppedShards, pi.ShardErrors, broken)
	}
	if len(res) == 0 {
		t.Fatal("surviving shard produced no results")
	}

	// Strict mode surfaces the transport error instead.
	_, err = rs.SearchContext(context.Background(), q, 5)
	if err == nil || !rpc.IsTransport(err) {
		t.Fatalf("strict search against truncating shard: err = %v, want transport error", err)
	}
}

// TestRemoteReplicaFailoverMasksDeadPrimary: with a replica group, a
// dead primary is a transport detail, not a degradation — the query
// fails over and stays bit-identical and non-degraded.
func TestRemoteReplicaFailoverMasksDeadPrimary(t *testing.T) {
	ix := buildShardCorpus(90, 29)
	const n = 2
	sh := index.NewSharded(ix, n)

	// Shard 0: dead primary + live replica; shard 1: single live server.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	_ = deadLn.Close()
	live0, _ := startShardServer(t, NewShardService(sh.Shard(0), 0, n), nil)
	live1, _ := startShardServer(t, NewShardService(sh.Shard(1), 1, n), nil)

	groups := []*rpc.Group{
		rpc.NewGroup([]*rpc.Client{
			rpc.NewClient(deadAddr, testClientOptions()),
			rpc.NewClient(live0, testClientOptions()),
		}, rpc.GroupOptions{}),
		rpc.NewGroup([]*rpc.Client{rpc.NewClient(live1, testClientOptions())}, rpc.GroupOptions{}),
	}
	rs, err := NewRemoteSharded(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	q := Combine(Term{Text: "cable"}, Term{Text: "bay"})
	res, pi, err := rs.SearchDegraded(context.Background(), q, 10, DegradeOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if pi.Degraded() {
		t.Fatalf("failover surfaced as degradation: %+v", pi)
	}
	want := NewShardedSearcher(sh).Search(q, 10)
	if len(res) != len(want) {
		t.Fatalf("%d results, want %d", len(res), len(want))
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("rank %d: failover result (%d,%v) != (%d,%v)",
				i, res[i].Doc, res[i].Score, want[i].Doc, want[i].Score)
		}
	}
	if fo := groups[0].Stats().Failovers; fo == 0 {
		t.Fatal("no failover recorded on the replica group")
	}
}

// TestRemoteHandshakeRejectsMisconfiguredShard: a group answering with
// the wrong shard index must fail construction, not scoring.
func TestRemoteHandshakeRejectsMisconfiguredShard(t *testing.T) {
	ix := buildShardCorpus(40, 31)
	sh := index.NewSharded(ix, 2)
	// Both groups point at shard 0's server.
	addr, _ := startShardServer(t, NewShardService(sh.Shard(0), 0, 2), nil)
	groups := []*rpc.Group{
		rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr, testClientOptions())}, rpc.GroupOptions{}),
		rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr, testClientOptions())}, rpc.GroupOptions{}),
	}
	if _, err := NewRemoteSharded(context.Background(), groups); err == nil {
		t.Fatal("handshake accepted a group serving the wrong shard")
	} else if !strings.Contains(err.Error(), "serves shard") {
		t.Fatalf("unexpected handshake error: %v", err)
	}
}

// TestRemoteServerErrorDropsShardExactly: a deterministic application
// error from one shard's eval (not a transport fault) is dropped
// without retry under AllowPartial — PR 5's exact tier again.
func TestRemoteServerErrorDropsShardExactly(t *testing.T) {
	ix := buildShardCorpus(70, 37)
	const n, bad = 2, 0
	sh := index.NewSharded(ix, n)
	groups := make([]*rpc.Group, n)
	for i := 0; i < n; i++ {
		svc := NewShardService(sh.Shard(i), i, n)
		var wrap func(*rpc.Server)
		if i == bad {
			wrap = func(srv *rpc.Server) {
				srv.Handle(MethodEval, func(ctx context.Context, body json.RawMessage) (any, error) {
					return nil, errors.New("shard wedged")
				})
			}
		}
		addr, _ := startShardServer(t, svc, wrap)
		groups[i] = rpc.NewGroup([]*rpc.Client{rpc.NewClient(addr, testClientOptions())}, rpc.GroupOptions{})
	}
	rs, err := NewRemoteSharded(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	q := Term{Text: "cable"}
	res, pi, err := rs.SearchDegraded(context.Background(), q, 5, DegradeOptions{AllowPartial: true, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pi.DroppedShards) != 1 || pi.DroppedShards[0] != bad {
		t.Fatalf("dropped = %v, want [%d]", pi.DroppedShards, bad)
	}
	if pi.Retries != 0 {
		t.Fatalf("deterministic server error was retried %d times", pi.Retries)
	}
	if !strings.Contains(pi.ShardErrors[0], "shard wedged") {
		t.Fatalf("shard error lost its cause: %q", pi.ShardErrors[0])
	}
	if len(res) == 0 {
		t.Fatal("no results from the surviving shard")
	}
}

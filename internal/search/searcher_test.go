package search

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/index"
)

var plain = analysis.Analyzer{}

func buildIndex(docs ...string) *index.Index {
	b := index.NewBuilder(plain)
	for i, d := range docs {
		b.Add("D"+string(rune('0'+i)), d)
	}
	return b.Build()
}

// dirichlet computes the reference leaf score by hand.
func dirichlet(tf, docLen float64, collProb, mu float64) float64 {
	return math.Log((tf + mu*collProb) / (docLen + mu))
}

func TestSingleTermScore(t *testing.T) {
	ix := buildIndex("a a b", "b c")
	s := NewSearcher(ix)
	s.Mu = 100
	res := s.Search(Term{Text: "a"}, 10)
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1 (only D0 contains 'a')", len(res))
	}
	collProb := 2.0 / 5.0
	want := dirichlet(2, 3, collProb, 100)
	if math.Abs(res[0].Score-want) > 1e-12 {
		t.Errorf("score = %v, want %v", res[0].Score, want)
	}
}

func TestCombineEqualsSumOfLogsScaled(t *testing.T) {
	ix := buildIndex("a b c d", "a x y z")
	s := NewSearcher(ix)
	s.Mu = 50
	q := Combine(Term{Text: "a"}, Term{Text: "b"})
	res := s.Search(q, 10)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	// D0 contains both terms and must rank first.
	if res[0].Name != "D0" {
		t.Errorf("top doc = %s, want D0", res[0].Name)
	}
	// Hand-compute D0's score: equal weights normalise to 1/2 each.
	pa := 2.0 / 8.0 // 'a' appears twice in collection of 8 tokens
	pb := 1.0 / 8.0
	want := 0.5*dirichlet(1, 4, pa, 50) + 0.5*dirichlet(1, 4, pb, 50)
	if math.Abs(res[0].Score-want) > 1e-12 {
		t.Errorf("score = %v, want %v", res[0].Score, want)
	}
}

func TestWeightNormalisation(t *testing.T) {
	ix := buildIndex("a b", "a a q")
	s := NewSearcher(ix)
	// #weight(2 a 1 b) — weights 2:1 normalise to 2/3, 1/3; scaling all
	// weights by a constant must not change the ranking or the scores.
	q1 := Weight([]float64{2, 1}, []Node{Term{Text: "a"}, Term{Text: "b"}})
	q2 := Weight([]float64{200, 100}, []Node{Term{Text: "a"}, Term{Text: "b"}})
	r1 := s.Search(q1, 10)
	r2 := s.Search(q2, 10)
	if len(r1) != len(r2) {
		t.Fatal("result counts differ")
	}
	for i := range r1 {
		if r1[i].Name != r2[i].Name || math.Abs(r1[i].Score-r2[i].Score) > 1e-12 {
			t.Errorf("rank %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestNestedWeights(t *testing.T) {
	ix := buildIndex("a b c", "c d e")
	s := NewSearcher(ix)
	// #weight(1 #combine(a b) 1 c) == flatten to a:0.25 b:0.25 c:0.5
	nested := Weight(
		[]float64{1, 1},
		[]Node{Combine(Term{Text: "a"}, Term{Text: "b"}), Term{Text: "c"}},
	)
	flat := Weight(
		[]float64{0.25, 0.25, 0.5},
		[]Node{Term{Text: "a"}, Term{Text: "b"}, Term{Text: "c"}},
	)
	rn := s.Search(nested, 10)
	rf := s.Search(flat, 10)
	if len(rn) != len(rf) {
		t.Fatal("result counts differ")
	}
	for i := range rn {
		if rn[i].Name != rf[i].Name || math.Abs(rn[i].Score-rf[i].Score) > 1e-12 {
			t.Errorf("rank %d differs: %v vs %v", i, rn[i], rf[i])
		}
	}
}

func TestPhraseScoring(t *testing.T) {
	ix := buildIndex("cable car rides", "car cable maintenance", "cable car cable car")
	s := NewSearcher(ix)
	res := s.Search(Phrase{Terms: []string{"cable", "car"}}, 10)
	if len(res) != 2 {
		t.Fatalf("phrase matched %d docs, want 2", len(res))
	}
	// D2 has phrase tf 2 and should rank above D0 (tf 1, similar length).
	if res[0].Name != "D2" {
		t.Errorf("top = %s, want D2", res[0].Name)
	}
}

func TestEmptyAndOOVQueries(t *testing.T) {
	ix := buildIndex("a b")
	s := NewSearcher(ix)
	if res := s.Search(Combine(), 10); res != nil {
		t.Error("empty query should return nil")
	}
	if res := s.Search(Term{Text: ""}, 10); res != nil {
		t.Error("empty term should return nil")
	}
	if res := s.Search(Term{Text: "zzz"}, 10); len(res) != 0 {
		t.Error("OOV term matches nothing")
	}
	if res := s.Search(Term{Text: "a"}, 0); res != nil {
		t.Error("k=0 should return nil")
	}
}

func TestOOVChildDropsOut(t *testing.T) {
	ix := buildIndex("a b", "b c")
	s := NewSearcher(ix)
	// A weighted node with one OOV child must behave like the query
	// without it (the OOV child is empty and its weight renormalises).
	with := Weight([]float64{1, 1}, []Node{Term{Text: "a"}, Term{Text: "zzz"}})
	without := Term{Text: "a"}
	rw := s.Search(with, 10)
	ro := s.Search(without, 10)
	if len(rw) != len(ro) {
		t.Fatalf("result counts differ: %d vs %d", len(rw), len(ro))
	}
	for i := range rw {
		if rw[i].Name != ro[i].Name {
			t.Errorf("rank %d: %s vs %s", i, rw[i].Name, ro[i].Name)
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := buildIndex("t x", "t y", "t z")
	s := NewSearcher(ix)
	res := s.Search(Term{Text: "t"}, 10)
	if len(res) != 3 {
		t.Fatal("want 3 results")
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score == res[i].Score && res[i-1].Doc > res[i].Doc {
			t.Error("ties must break by ascending DocID")
		}
	}
}

func TestTopKTruncation(t *testing.T) {
	b := index.NewBuilder(plain)
	for i := 0; i < 50; i++ {
		b.Add("Doc"+strings.Repeat("x", i%5)+string(rune('a'+i%26)), "common term here")
	}
	ix := b.Build()
	s := NewSearcher(ix)
	if res := s.Search(Term{Text: "common"}, 7); len(res) != 7 {
		t.Errorf("k=7 returned %d", len(res))
	}
}

func TestScoreDocMatchesSearch(t *testing.T) {
	ix := buildIndex("a b c", "a a b", "x y z")
	s := NewSearcher(ix)
	q := Combine(Term{Text: "a"}, Term{Text: "b"})
	res := s.Search(q, 10)
	for _, r := range res {
		if got := s.ScoreDoc(q, r.Doc); math.Abs(got-r.Score) > 1e-12 {
			t.Errorf("ScoreDoc(%s) = %v, Search score %v", r.Name, got, r.Score)
		}
	}
}

func TestQueryStringRendering(t *testing.T) {
	q := Weight(
		[]float64{2, 1},
		[]Node{
			Combine(Term{Text: "cable"}, Term{Text: "car"}),
			Phrase{Terms: []string{"san", "francisco"}},
		},
	)
	s := q.String()
	for _, want := range []string{"#weight(", "#1(san francisco)", "cable", "car"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestBagOfWordsAndTitlePhrase(t *testing.T) {
	a := analysis.Standard()
	q := BagOfWords(a, "The Running Cars")
	if len(q.Children) != 2 { // "the" removed, running→run cars→car
		t.Errorf("BagOfWords children = %d", len(q.Children))
	}
	if n := TitlePhrase(a, "Cable Car"); n.String() != "#1(cabl car)" {
		t.Errorf("TitlePhrase = %q", n.String())
	}
	if n := TitlePhrase(a, "Funicular"); n.String() != "funicular" {
		t.Errorf("single-word title should be a Term, got %q", n.String())
	}
	if !IsEmpty(TitlePhrase(a, "the of and")) {
		t.Error("all-stopword title should be empty")
	}
}

func TestIsEmpty(t *testing.T) {
	if !IsEmpty(Term{}) || !IsEmpty(Phrase{}) || !IsEmpty(Weighted{}) {
		t.Error("zero nodes should be empty")
	}
	if IsEmpty(Term{Text: "x"}) {
		t.Error("non-empty term")
	}
	if !IsEmpty(Weight([]float64{0}, []Node{Term{Text: "x"}})) {
		t.Error("zero-weight child should leave node empty")
	}
	if IsEmpty(Weight([]float64{0, 1}, []Node{Term{Text: "x"}, Term{Text: "y"}})) {
		t.Error("positive-weight non-empty child should make node non-empty")
	}
}

// Property: adding a matching term to a query never *lowers* a document's
// rank relative to a document that lacks the term, all else equal.
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		words := []string{"a", "b", "c", "d", "e"}
		b := index.NewBuilder(plain)
		n := 5 + rng.Intn(10)
		for d := 0; d < n; d++ {
			var sb strings.Builder
			for i := 0; i < 5; i++ {
				sb.WriteString(words[rng.Intn(len(words))] + " ")
			}
			b.Add("P"+string(rune('a'+d)), sb.String())
		}
		ix := b.Build()
		s := NewSearcher(ix)
		res := s.Search(Term{Text: "a"}, n)
		// Every returned doc must actually contain 'a' and scores must be
		// non-increasing.
		p := ix.PostingsFor("a")
		if p == nil {
			return len(res) == 0
		}
		contains := map[index.DocID]bool{}
		for _, d := range p.Docs {
			contains[d] = true
		}
		prev := math.Inf(1)
		for _, r := range res {
			if !contains[r.Doc] {
				return false
			}
			if r.Score > prev {
				return false
			}
			prev = r.Score
		}
		return len(res) == len(p.Docs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

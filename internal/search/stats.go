package search

import (
	"fmt"
	"time"
)

// SearchStats instruments one retrieval: how much work the evaluator did
// and how long it took. All counters are cheap increments on the hot
// path; collecting them costs nothing measurable next to scoring, so
// Search always fills them when the caller asks (SearchWithStats).
//
// Aggregation convention for sharded retrievals: every top-level counter
// is the SUM of the per-shard evaluators' work (each shard evaluates
// independently, so e.g. CandidatesExamined is total documents scored
// across shards, not a per-shard figure), while Shards[i] carries shard
// i's own slice of the work. New counters must follow the same rule —
// the pruning counters (DocsSkipped, BoundEvaluations) do.
type SearchStats struct {
	// Leaves is the number of flattened query leaves scored. Sharded:
	// the per-shard leaf count (identical on every shard), NOT a sum.
	Leaves int
	// CandidatesExamined counts the distinct documents scored (without
	// pruning: the size of the union of the leaves' postings; with
	// pruning: the subset of that union actually evaluated).
	CandidatesExamined int64
	// PostingsAdvanced counts cursor advances across all leaves — the
	// postings entries the evaluator consumed.
	PostingsAdvanced int64
	// DocsSkipped counts postings entries the pruned evaluator galloped
	// over without scoring their documents (0 on the unpruned and
	// legacy paths). An entry is either consumed or skipped, so
	// PostingsAdvanced + DocsSkipped equals the query's total postings
	// mass — what PostingsAdvanced alone is without pruning.
	DocsSkipped int64
	// BoundEvaluations counts score-bound tests against the running
	// top-k threshold: one per candidate upper-bound check once the
	// heap is full, one per refinement step inside the candidate
	// filter, plus one per essential/non-essential re-partition after a
	// threshold increase.
	BoundEvaluations int64
	// BlockBoundEvaluations counts the Block-Max lookups within those
	// refinements: candidate-filter steps that consulted the block
	// directory (located a leaf's block for the candidate and read its
	// bound) instead of galloping the postings. Zero on the unpruned and
	// legacy paths, and on indexes without block metadata.
	BlockBoundEvaluations int64
	// BlocksDecoded counts the postings blocks the streaming cursors
	// actually decoded, and BlocksTotal the blocks their terms hold in
	// total — BlocksDecoded/BlocksTotal is the decoded-block fraction,
	// the measure of how well decode granularity tracked pruning
	// granularity. Both are zero when no leaf streamed (in-memory and v1
	// indexes, or streaming disabled); the exhaustive evaluator decodes
	// every block it is offered, so the fraction approaches 1 there.
	BlocksDecoded int64
	BlocksTotal   int64
	// HeapPushes counts insertions into the bounded top-k heap while it
	// was still filling.
	HeapPushes int64
	// HeapEvictions counts candidates that displaced the current k-th
	// best; CandidatesExamined − HeapPushes − HeapEvictions documents
	// were rejected without touching the heap.
	HeapEvictions int64
	// Elapsed is the wall-clock time of the evaluation.
	Elapsed time.Duration
	// Shards holds per-shard instrumentation when the retrieval ran on a
	// ShardedSearcher (indexed by shard; nil for unsharded retrievals).
	// The aggregate counters above already include every shard's work.
	Shards []ShardStats
}

// ShardStats instruments one shard's slice of a sharded retrieval.
type ShardStats struct {
	// Elapsed is the shard evaluation's wall-clock time. Shards evaluate
	// concurrently, so the sum across shards can exceed SearchStats.Elapsed.
	Elapsed time.Duration
	// CandidatesExamined counts the documents this shard scored.
	CandidatesExamined int64
	// PostingsAdvanced counts the shard's posting-cursor advances.
	PostingsAdvanced int64
	// DocsSkipped counts the postings entries this shard's pruned
	// evaluator galloped over. Each shard prunes against its own top-k
	// threshold (shared-nothing), so the split of skips across shards —
	// unlike the candidate split of the unpruned path — is not a simple
	// partition of the unsharded figure.
	DocsSkipped int64
}

// Add accumulates o into s (for aggregating per-query stats over a run).
// Per-shard entries add element-wise; aggregating runs with different
// shard counts extends the slice to the larger of the two.
func (s *SearchStats) Add(o SearchStats) {
	s.Leaves += o.Leaves
	s.CandidatesExamined += o.CandidatesExamined
	s.PostingsAdvanced += o.PostingsAdvanced
	s.DocsSkipped += o.DocsSkipped
	s.BoundEvaluations += o.BoundEvaluations
	s.BlockBoundEvaluations += o.BlockBoundEvaluations
	s.BlocksDecoded += o.BlocksDecoded
	s.BlocksTotal += o.BlocksTotal
	s.HeapPushes += o.HeapPushes
	s.HeapEvictions += o.HeapEvictions
	s.Elapsed += o.Elapsed
	for i, sh := range o.Shards {
		if i < len(s.Shards) {
			s.Shards[i].Elapsed += sh.Elapsed
			s.Shards[i].CandidatesExamined += sh.CandidatesExamined
			s.Shards[i].PostingsAdvanced += sh.PostingsAdvanced
			s.Shards[i].DocsSkipped += sh.DocsSkipped
		} else {
			s.Shards = append(s.Shards, sh)
		}
	}
}

// String renders the counters compactly.
func (s SearchStats) String() string {
	return fmt.Sprintf("leaves=%d cands=%d advanced=%d skipped=%d bound-evals=%d block-evals=%d blocks=%d/%d pushes=%d evictions=%d elapsed=%v",
		s.Leaves, s.CandidatesExamined, s.PostingsAdvanced, s.DocsSkipped, s.BoundEvaluations,
		s.BlockBoundEvaluations, s.BlocksDecoded, s.BlocksTotal, s.HeapPushes, s.HeapEvictions, s.Elapsed.Round(time.Microsecond))
}

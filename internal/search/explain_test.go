package search

import (
	"math"
	"strings"
	"testing"
)

func TestExplainMatchesSearchScore(t *testing.T) {
	ix := buildIndex("a b c", "a a q", "x y z")
	s := NewSearcher(ix)
	q := Weight([]float64{2, 1}, []Node{
		Combine(Term{Text: "a"}, Term{Text: "b"}),
		Phrase{Terms: []string{"a", "b"}},
	})
	res := s.Search(q, 10)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res {
		ex := s.Explain(q, r.Doc)
		if math.Abs(ex.Score-r.Score) > 1e-12 {
			t.Errorf("%s: explain score %v != search score %v", r.Name, ex.Score, r.Score)
		}
	}
}

func TestExplainLeafAttribution(t *testing.T) {
	ix := buildIndex("alpha beta", "alpha gamma")
	s := NewSearcher(ix)
	q := Combine(Term{Text: "alpha"}, Term{Text: "beta"})
	ex := s.Explain(q, 0)
	if len(ex.Leaves) != 2 {
		t.Fatalf("leaves = %d", len(ex.Leaves))
	}
	// Both matched in doc 0; weights equal halves.
	for _, l := range ex.Leaves {
		if l.BackgroundOnly {
			t.Errorf("leaf %s marked background in matching doc", l.Leaf)
		}
		if math.Abs(l.Weight-0.5) > 1e-12 {
			t.Errorf("leaf weight = %f", l.Weight)
		}
	}
	// Doc 1 lacks "beta": that leaf must be background-only and matched
	// leaves must sort first.
	ex = s.Explain(q, 1)
	if ex.Leaves[0].Leaf != "alpha" || ex.Leaves[0].BackgroundOnly {
		t.Errorf("first leaf = %+v, want matched alpha", ex.Leaves[0])
	}
	if ex.Leaves[1].Leaf != "beta" || !ex.Leaves[1].BackgroundOnly {
		t.Errorf("second leaf = %+v, want background beta", ex.Leaves[1])
	}
}

func TestExplainString(t *testing.T) {
	ix := buildIndex("alpha beta")
	s := NewSearcher(ix)
	out := s.Explain(Term{Text: "alpha"}, 0).String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "tf=1") {
		t.Errorf("rendering = %q", out)
	}
}

// Package search implements the retrieval model of the paper's Section
// 2.3: Indri-style structured queries evaluated under a query-likelihood
// language model with Dirichlet smoothing, combined through an
// inference-network #weight operator.
//
// A query is a tree. Leaves are single terms or exact ordered phrases
// (titles are matched "as a n-gram of consecutive terms"). Interior
// nodes combine children with normalised weights; the document score is
//
//	score(D) = Σ_i ŵ_i · score_i(D),   ŵ_i = w_i / Σ w
//
// applied recursively, with leaf scores log P(leaf|D) under Dirichlet
// smoothing: P(w|D) = (tf_{w,D} + μ·P(w|C)) / (|D| + μ).
package search

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
)

// Node is a node of a structured query. Implementations: Term, Phrase,
// Weighted.
type Node interface {
	// String renders the node in Indri-like syntax.
	String() string
	node()
}

// Term is a single already-analyzed term leaf.
type Term struct {
	Text string
}

func (t Term) node()          {}
func (t Term) String() string { return t.Text }

// Phrase is an exact ordered phrase leaf (Indri's #1 window) over
// already-analyzed terms.
type Phrase struct {
	Terms []string
}

func (p Phrase) node()          {}
func (p Phrase) String() string { return "#1(" + strings.Join(p.Terms, " ") + ")" }

// Unordered is an unordered proximity leaf (Indri's #uwN): all terms
// within a window of Width token positions, any order. The paper's
// feature function explicitly covers unordered term proximity.
type Unordered struct {
	Terms []string
	// Width is the window size in tokens; values below len(Terms) can
	// never match.
	Width int
}

func (u Unordered) node() {}

func (u Unordered) String() string {
	return fmt.Sprintf("#uw%d(%s)", u.Width, strings.Join(u.Terms, " "))
}

// TitleWindow analyzes a title and returns it as an unordered window of
// the given slack (width = #terms + slack), a looser alternative to
// TitlePhrase; single-word titles collapse to a Term.
func TitleWindow(a analysis.Analyzer, title string, slack int) Node {
	terms := a.AnalyzeTerms(title)
	switch len(terms) {
	case 0:
		return Phrase{}
	case 1:
		return Term{Text: terms[0]}
	default:
		return Unordered{Terms: terms, Width: len(terms) + slack}
	}
}

// Child is a weighted child of a Weighted node.
type Child struct {
	Weight float64
	Node   Node
}

// Weighted combines children with normalised weights (#weight). Children
// with non-positive weight are ignored at scoring time.
type Weighted struct {
	Children []Child
}

func (w Weighted) node() {}

func (w Weighted) String() string {
	var sb strings.Builder
	sb.WriteString("#weight(")
	for i, c := range w.Children {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.4g %s", c.Weight, c.Node.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Combine builds an equal-weight combination (#combine) of nodes.
func Combine(nodes ...Node) Weighted {
	ch := make([]Child, len(nodes))
	for i, n := range nodes {
		ch[i] = Child{Weight: 1, Node: n}
	}
	return Weighted{Children: ch}
}

// Weight builds a #weight node from parallel weights and nodes; the two
// slices must have equal length.
func Weight(weights []float64, nodes []Node) Weighted {
	if len(weights) != len(nodes) {
		panic(fmt.Sprintf("search: Weight: %d weights for %d nodes", len(weights), len(nodes)))
	}
	ch := make([]Child, len(nodes))
	for i := range nodes {
		ch[i] = Child{Weight: weights[i], Node: nodes[i]}
	}
	return Weighted{Children: ch}
}

// BagOfWords analyzes free text and returns a #combine of its terms, the
// plain query-likelihood form used for the user's raw query (QL_Q).
// Returns a Weighted with no children when the text analyzes to nothing.
func BagOfWords(a analysis.Analyzer, text string) Weighted {
	terms := a.AnalyzeTerms(text)
	nodes := make([]Node, len(terms))
	for i, t := range terms {
		nodes[i] = Term{Text: t}
	}
	return Combine(nodes...)
}

// TitlePhrase analyzes a title and returns it as a phrase leaf for exact
// n-gram matching; single-word titles collapse to a Term.
func TitlePhrase(a analysis.Analyzer, title string) Node {
	terms := a.AnalyzeTerms(title)
	switch len(terms) {
	case 0:
		return Phrase{}
	case 1:
		return Term{Text: terms[0]}
	default:
		return Phrase{Terms: terms}
	}
}

// IsEmpty reports whether the node matches nothing: an empty phrase, an
// empty term, or a Weighted whose positive-weight children are all empty.
func IsEmpty(n Node) bool {
	switch x := n.(type) {
	case Term:
		return x.Text == ""
	case Phrase:
		return len(x.Terms) == 0
	case Unordered:
		return len(x.Terms) == 0
	case Weighted:
		for _, c := range x.Children {
			if c.Weight > 0 && !IsEmpty(c.Node) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

package search

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/index"
)

// ShardedSearcher evaluates structured queries against an index.Sharded,
// fanning the query tree out to one document-at-a-time evaluator per
// shard and merging the per-shard bounded top-k heaps into the final
// ranking. Results and scores are bit-identical to evaluating the same
// query on the unsharded index, for every retrieval model:
//
//   - flatten is structure-driven (leaf set, order and normalised
//     weights depend only on the query tree and the analyzer), so every
//     shard produces the same leaf list;
//   - each leaf's collection statistics (collection frequency, document
//     frequency, collection probability) are replaced by their exact
//     cross-shard sums before scoring, so the smoothing terms match the
//     global index bit for bit;
//   - within a shard, ascending local DocIDs correspond to ascending
//     global DocIDs (round-robin assignment), so the per-shard top-k
//     under (score desc, local DocID asc) is exactly the shard's slice
//     of the global top-k ordering, and the merge — (score desc, global
//     DocID asc), truncate to k — reconstructs the unsharded ranking.
//
// Like Searcher, the configuration fields are read on every call and
// must not be mutated concurrently with searches.
type ShardedSearcher struct {
	sh     *index.Sharded
	locals []*Searcher // one per shard, used for flattening
	// Mu is the Dirichlet smoothing parameter; zero means DefaultMu.
	Mu float64
	// Model selects the retrieval function (default Dirichlet QL).
	Model Model
	// Params holds the other models' parameters.
	Params ModelParams
	// DisablePruning turns off MaxScore pruning in every shard's
	// evaluator (see Searcher.DisablePruning). With pruning on, each
	// shard prunes against its own top-k threshold — shared-nothing, no
	// cross-shard coordination — which is safe because every shard must
	// surface its local top k for the merge regardless of what other
	// shards hold. Results are bit-identical either way.
	DisablePruning bool
	// forcePrune mirrors Searcher.forcePrune for the per-shard
	// evaluators (test-only; see searcher.go).
	forcePrune bool
	// Sem, when non-nil, bounds how many shard evaluations run on extra
	// goroutines (it is shared with the engine's SQE_C run pool). The
	// fan-out only try-acquires: when the pool is saturated the shard
	// evaluates inline on the caller's goroutine, so a caller that
	// already holds a slot can always finish — sharing the semaphore
	// cannot deadlock.
	Sem chan struct{}
}

// NewShardedSearcher returns a ShardedSearcher over sh with the default μ.
func NewShardedSearcher(sh *index.Sharded) *ShardedSearcher {
	ss := &ShardedSearcher{sh: sh, Mu: DefaultMu}
	ss.locals = make([]*Searcher, sh.NumShards())
	for i := range ss.locals {
		ss.locals[i] = &Searcher{ix: sh.Shard(i)}
	}
	return ss
}

// Sharded returns the underlying sharded index.
func (ss *ShardedSearcher) Sharded() *index.Sharded { return ss.sh }

// Search scores the query across all shards and returns the global top k
// (score desc, DocID asc) — the same contract as Searcher.Search.
func (ss *ShardedSearcher) Search(q Node, k int) []Result {
	res, _ := ss.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext is Search under a context; cancellation propagates into
// every shard's evaluation loop.
func (ss *ShardedSearcher) SearchContext(ctx context.Context, q Node, k int) ([]Result, error) {
	return ss.search(ctx, q, k, nil, nil, nil)
}

// SearchWithStats is Search plus instrumentation, including per-shard
// timings in SearchStats.Shards.
func (ss *ShardedSearcher) SearchWithStats(q Node, k int) ([]Result, SearchStats) {
	res, st, _ := ss.SearchWithStatsContext(context.Background(), q, k)
	return res, st
}

// SearchWithStatsContext is SearchContext plus instrumentation.
func (ss *ShardedSearcher) SearchWithStatsContext(ctx context.Context, q Node, k int) ([]Result, SearchStats, error) {
	var st SearchStats
	start := time.Now()
	res, err := ss.search(ctx, q, k, &st, nil, nil)
	st.Elapsed = time.Since(start)
	return res, st, err
}

func (ss *ShardedSearcher) resolveParams() ModelParams {
	params := ss.Params.withDefaults()
	if ss.Mu > 0 {
		params.Mu = ss.Mu
	}
	return params
}

// search runs the four-phase sharded evaluation. opts/pi, when non-nil,
// enable graceful degradation (see SearchDegraded): failures are
// confined to phase 3, AFTER the cross-shard statistics override, so a
// partial merge never changes a surviving shard's scores.
func (ss *ShardedSearcher) search(ctx context.Context, q Node, k int, st *SearchStats, opts *DegradeOptions, pi *PartialInfo) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := ss.sh.NumShards()

	// Phase 1: flatten per shard (materialises phrase/window postings
	// against each shard's local postings), in parallel — for expanded
	// queries this is a large share of the evaluation cost.
	shardLeaves := make([][]leaf, n)
	ss.forEachShard(n, func(i int) {
		var ls []leaf
		ss.locals[i].flatten(q, 1, &ls)
		shardLeaves[i] = ls
	})
	nLeaves := len(shardLeaves[0])
	for i := 1; i < n; i++ {
		if len(shardLeaves[i]) != nLeaves {
			// flatten is structure-driven; a divergence means a shard was
			// built against a different analyzer and scoring would be
			// silently wrong.
			return nil, fmt.Errorf("search: shard %d flattened %d leaves, shard 0 flattened %d", i, len(shardLeaves[i]), nLeaves)
		}
	}
	if nLeaves == 0 {
		return nil, nil
	}
	if st != nil {
		st.Leaves = nLeaves
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: the global-stats override. Replace every leaf's collection
	// statistics with the exact cross-shard sums (integer sums are
	// order-independent, so cf and df equal the unsharded values bit for
	// bit), then build one scorer from the global document count and
	// average length. Every shard scores with the same closure over the
	// same statistics.
	for li := 0; li < nLeaves; li++ {
		var cf int64
		var df float64
		for s := 0; s < n; s++ {
			cf += shardLeaves[s][li].cf
			df += shardLeaves[s][li].df
		}
		collProb := ss.sh.FloorProb(cf)
		for s := 0; s < n; s++ {
			l := &shardLeaves[s][li]
			l.cf, l.df, l.collProb = cf, df, collProb
		}
	}
	params := ss.resolveParams()
	cs := collStats{
		numDocs:   float64(ss.sh.NumDocs()),
		avgDocLen: ss.sh.AvgDocLen(),
	}
	// Per-leaf caches derive from the GLOBAL df just written, so every
	// shard scores with the same cached values (bit-identity again).
	for s := 0; s < n; s++ {
		prepareLeaves(ss.Model, cs, shardLeaves[s])
	}
	score := buildScorer(ss.Model, params, cs)

	// Phase 3: per-shard DAAT evaluation into bounded top-k heaps, then
	// remap the survivors' local DocIDs back to global.
	type shardOut struct {
		res     []Result
		retries int
		err     error
	}
	outs := make([]shardOut, n)
	var shardStats []SearchStats
	if st != nil {
		shardStats = make([]SearchStats, n)
	}
	ss.forEachShard(n, func(i int) {
		var sst *SearchStats
		var start time.Time
		if st != nil {
			sst = &shardStats[i]
			start = time.Now()
		}
		// One pooled scratch per shard evaluation, returned when the
		// shard is done — including after degradation retries (the
		// evaluators reset every scratch field they read, so a retry
		// reusing the same scratch is safe).
		sc := getScratch()
		defer putScratch(sc)
		res, retries, err := evalShardDegraded(ctx, opts, func(sctx context.Context) ([]Result, error) {
			if ss.DisablePruning {
				return searchDAAT(sctx, ss.sh.Shard(i), shardLeaves[i], k, score, sst, sc)
			}
			// Bounds derive AFTER the global-stats override, so the bound
			// arithmetic sees the same collProb/df the scorer does, while
			// the postings summaries (MaxTF, MinDL, ratio pair, per-block)
			// and the minimum document length stay shard-local — bounds
			// only need to dominate the documents this shard can produce.
			pb := derivePruneBounds(ss.Model, params, cs, ss.sh.Shard(i).MinDocLen(), shardLeaves[i], sc)
			if !ss.forcePrune && !pruneWorthwhile(shardLeaves[i], pb) {
				return searchDAAT(sctx, ss.sh.Shard(i), shardLeaves[i], k, score, sst, sc)
			}
			return searchMaxScore(sctx, ss.sh.Shard(i), shardLeaves[i], k, score, pb, sst, sc)
		})
		if sst != nil {
			sst.Elapsed = time.Since(start)
		}
		for r := range res {
			res[r].Doc = ss.sh.GlobalDoc(i, res[r].Doc)
		}
		outs[i] = shardOut{res: res, retries: retries, err: err}
	})
	if st != nil {
		st.Shards = make([]ShardStats, n)
		for i, sst := range shardStats {
			st.CandidatesExamined += sst.CandidatesExamined
			st.PostingsAdvanced += sst.PostingsAdvanced
			st.DocsSkipped += sst.DocsSkipped
			st.BoundEvaluations += sst.BoundEvaluations
			st.BlockBoundEvaluations += sst.BlockBoundEvaluations
			st.BlocksDecoded += sst.BlocksDecoded
			st.BlocksTotal += sst.BlocksTotal
			st.HeapPushes += sst.HeapPushes
			st.HeapEvictions += sst.HeapEvictions
			st.Shards[i] = ShardStats{
				Elapsed:            sst.Elapsed,
				CandidatesExamined: sst.CandidatesExamined,
				PostingsAdvanced:   sst.PostingsAdvanced,
				DocsSkipped:        sst.DocsSkipped,
			}
		}
	}
	if pi != nil {
		for i := range outs {
			pi.Retries += outs[i].retries
		}
	}
	dropped := make([]bool, n)
	failed := 0
	for i := range outs {
		if outs[i].err == nil {
			continue
		}
		// Parent-context cancellation is the caller's signal, not a shard
		// failure; it is never degraded into a partial result.
		if opts == nil || !opts.AllowPartial || ctx.Err() != nil {
			return nil, outs[i].err
		}
		dropped[i] = true
		failed++
		if pi != nil {
			pi.DroppedShards = append(pi.DroppedShards, i)
			pi.ShardErrors = append(pi.ShardErrors, outs[i].err.Error())
		}
	}
	if failed == n {
		// Nothing survived; a fully empty "partial" result would be
		// indistinguishable from a query matching nothing.
		for i := range outs {
			if outs[i].err != nil {
				return nil, outs[i].err
			}
		}
	}

	// Phase 4: merge the ≤ S·k survivors by the global result ordering
	// and truncate. Document names were resolved per shard (shards carry
	// the original names), so survivors are complete Results already. The
	// merge accumulates into a pooled backing; only the final ≤ k slice is
	// copied out (results outlive the scratch).
	msc := getScratch()
	defer putScratch(msc)
	all := msc.merged[:0]
	for i := range outs {
		if !dropped[i] {
			all = append(all, outs[i].res...)
		}
	}
	msc.merged = all
	sort.Sort(&resultSorter{all})
	if len(all) > k {
		all = all[:k]
	}
	if len(all) == 0 {
		return nil, nil
	}
	out := make([]Result, len(all))
	copy(out, all)
	return out, nil
}

// forEachShard runs f(0..n-1), using extra goroutines where the
// semaphore (if any) has free slots and the caller's goroutine
// otherwise. It never blocks on the semaphore — see the Sem field.
func (ss *ShardedSearcher) forEachShard(n int, f func(i int)) {
	fanOutShards(ss.Sem, n, f)
}

package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
)

// shardVocab skews toward a few frequent terms so random corpora get
// multi-document postings, score ties and OOV-adjacent rarities.
var shardVocab = []string{
	"cable", "cable", "cable", "car", "car", "tram", "funicular",
	"railway", "gondola", "lift", "museum", "bridge", "harbour", "bay",
	"line", "crossing", "summit", "station", "pylon", "aerial",
}

func buildShardCorpus(docs, seed int) *index.Index {
	rng := rand.New(rand.NewSource(int64(seed)))
	b := index.NewBuilder(plain)
	for d := 0; d < docs; d++ {
		n := 4 + rng.Intn(24)
		text := ""
		for i := 0; i < n; i++ {
			text += shardVocab[rng.Intn(len(shardVocab))] + " "
		}
		b.Add(fmt.Sprintf("doc%04d", d), text)
	}
	return b.Build()
}

// shardQueries cover the leaf kinds and the weighted-tree normalisation,
// including OOV terms (background mass only) and phrase/window leaves
// that materialise per shard.
func shardQueries() []Node {
	return []Node{
		Term{Text: "cable"},
		Term{Text: "zeppelin"}, // OOV
		Combine(Term{Text: "cable"}, Term{Text: "bay"}),
		Phrase{Terms: []string{"cable", "car"}},
		Unordered{Terms: []string{"tram", "bridge"}, Width: 8},
		Weight(
			[]float64{0.6, 0.25, 0.15},
			[]Node{
				Combine(Term{Text: "cable"}, Term{Text: "car"}),
				Phrase{Terms: []string{"cable", "car"}},
				Combine(Phrase{Terms: []string{"railway", "station"}}, Term{Text: "summit"}),
			},
		),
	}
}

func shardedOver(ix *index.Index, n int, model Model, params ModelParams) (*Searcher, *ShardedSearcher) {
	ref := NewSearcher(ix)
	ref.Model = model
	ref.Params = params
	ss := NewShardedSearcher(index.NewSharded(ix, n))
	ss.Model = model
	ss.Params = params
	return ref, ss
}

// TestShardedBitIdentical is the core differential test: for every
// model, shard count and query, the sharded evaluation must reproduce
// the unsharded ranking with bit-identical scores (==, no tolerance).
func TestShardedBitIdentical(t *testing.T) {
	models := []struct {
		name   string
		model  Model
		params ModelParams
	}{
		{"dirichlet", ModelDirichlet, ModelParams{}},
		{"jelinek-mercer", ModelJelinekMercer, ModelParams{Lambda: 0.4}},
		{"bm25", ModelBM25, ModelParams{K1: 1.2, B: 0.75}},
	}
	for _, corpus := range []struct {
		name string
		ix   *index.Index
	}{
		{"random57", buildShardCorpus(57, 7)},
		{"random200", buildShardCorpus(200, 11)},
		// Crafted: duplicated documents force exact score ties across
		// shard boundaries, exercising the global-DocID tie rule.
		{"crafted-ties", buildIndex(
			"cable car bay", "cable car bay", "cable car bay", "cable car bay",
			"tram bridge", "tram bridge", "cable", "bay bay bay",
		)},
	} {
		for _, m := range models {
			for _, s := range []int{1, 2, 3, 4, 8} {
				for qi, q := range shardQueries() {
					for _, k := range []int{1, 3, 10, 1000} {
						ref, ss := shardedOver(corpus.ix, s, m.model, m.params)
						want := ref.Search(q, k)
						got := ss.Search(q, k)
						if len(got) != len(want) {
							t.Fatalf("%s/%s S=%d q=%d k=%d: %d results, want %d",
								corpus.name, m.name, s, qi, k, len(got), len(want))
						}
						for i := range want {
							if got[i].Doc != want[i].Doc || got[i].Name != want[i].Name || got[i].Score != want[i].Score {
								t.Fatalf("%s/%s S=%d q=%d k=%d rank %d: got (%d,%q,%v) want (%d,%q,%v)",
									corpus.name, m.name, s, qi, k, i,
									got[i].Doc, got[i].Name, got[i].Score,
									want[i].Doc, want[i].Name, want[i].Score)
							}
						}
					}
				}
			}
		}
	}
}

// TestShardedMuOverrideMatches checks the back-compat Mu field is
// resolved identically on both paths.
func TestShardedMuOverrideMatches(t *testing.T) {
	ix := buildShardCorpus(80, 3)
	ref := NewSearcher(ix)
	ref.Mu = 500
	ss := NewShardedSearcher(index.NewSharded(ix, 4))
	ss.Mu = 500
	q := Combine(Term{Text: "cable"}, Term{Text: "harbour"})
	want := ref.Search(q, 20)
	got := ss.Search(q, 20)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestShardedEdgeCases(t *testing.T) {
	ix := buildShardCorpus(30, 5)
	ss := NewShardedSearcher(index.NewSharded(ix, 4))
	if res := ss.Search(Term{Text: "cable"}, 0); res != nil {
		t.Fatalf("k=0: got %d results", len(res))
	}
	if res := ss.Search(Term{Text: ""}, 10); res != nil {
		t.Fatalf("empty query: got %d results", len(res))
	}
	// OOV-only query still ranks every document (background mass), like
	// the unsharded searcher.
	ref := NewSearcher(ix)
	want := ref.Search(Term{Text: "zeppelin"}, 10)
	got := ss.Search(Term{Text: "zeppelin"}, 10)
	if len(got) != len(want) {
		t.Fatalf("OOV: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OOV rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestShardedCancellation(t *testing.T) {
	ix := buildShardCorpus(64, 9)
	ss := NewShardedSearcher(index.NewSharded(ix, 4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ss.SearchContext(ctx, Term{Text: "cable"}, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("cancelled search returned results")
	}
	// Stats variant surfaces the same error.
	if _, _, err := ss.SearchWithStatsContext(ctx, Term{Text: "cable"}, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("stats path: want context.Canceled, got %v", err)
	}
}

func TestShardedStats(t *testing.T) {
	ix := buildShardCorpus(120, 13)
	const S = 4
	// Exhaustive evaluation on both sides: the exact-partition
	// assertions below do not hold under pruning, where every shard
	// prunes against its own local threshold (see TestShardedPruning
	// for the pruned-mode invariants).
	ref := NewSearcher(ix)
	ref.DisablePruning = true
	ss := NewShardedSearcher(index.NewSharded(ix, S))
	ss.DisablePruning = true
	q := Combine(Term{Text: "cable"}, Term{Text: "bay"})
	_, wantSt := ref.SearchWithStats(q, 10)
	res, st, err := ss.SearchWithStatsContext(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if st.Leaves != wantSt.Leaves {
		t.Fatalf("Leaves=%d want %d", st.Leaves, wantSt.Leaves)
	}
	// The shards partition the candidate set and the postings exactly.
	if st.CandidatesExamined != wantSt.CandidatesExamined {
		t.Fatalf("CandidatesExamined=%d want %d", st.CandidatesExamined, wantSt.CandidatesExamined)
	}
	if st.PostingsAdvanced != wantSt.PostingsAdvanced {
		t.Fatalf("PostingsAdvanced=%d want %d", st.PostingsAdvanced, wantSt.PostingsAdvanced)
	}
	if len(st.Shards) != S {
		t.Fatalf("Shards=%d want %d", len(st.Shards), S)
	}
	var cands, adv int64
	for i, sh := range st.Shards {
		if sh.Elapsed < 0 {
			t.Fatalf("shard %d: negative elapsed", i)
		}
		cands += sh.CandidatesExamined
		adv += sh.PostingsAdvanced
	}
	if cands != st.CandidatesExamined || adv != st.PostingsAdvanced {
		t.Fatalf("per-shard sums (%d,%d) != aggregates (%d,%d)", cands, adv, st.CandidatesExamined, st.PostingsAdvanced)
	}
	// Aggregating two sharded stats adds the per-shard entries
	// element-wise.
	agg := st
	agg.Shards = append([]ShardStats(nil), st.Shards...)
	agg.Add(st)
	for i := range agg.Shards {
		if agg.Shards[i].CandidatesExamined != 2*st.Shards[i].CandidatesExamined {
			t.Fatalf("Add: shard %d not element-wise", i)
		}
	}
}

// TestShardedSaturatedSemaphore drives the fan-out with a semaphore that
// has no free slots: every shard must fall back to inline evaluation on
// the caller's goroutine and still produce the exact ranking. This is
// the no-deadlock property that lets the engine share one pool between
// SQE_C runs and shard fan-out.
func TestShardedSaturatedSemaphore(t *testing.T) {
	ix := buildShardCorpus(90, 17)
	ref := NewSearcher(ix)
	ss := NewShardedSearcher(index.NewSharded(ix, 8))
	sem := make(chan struct{}, 1)
	sem <- struct{}{} // saturate: no shard can take a slot
	ss.Sem = sem
	q := Combine(Term{Text: "cable"}, Term{Text: "tram"})
	want := ref.Search(q, 15)
	got := ss.Search(q, 15)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// With free slots it must also agree (goroutine path).
	<-sem
	got = ss.Search(q, 15)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("free-slot rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

package search

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

var plainA = analysis.Analyzer{}
var stdA = analysis.Standard()

func mustParse(t *testing.T, a analysis.Analyzer, in string) Node {
	t.Helper()
	n, err := Parse(a, in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return n
}

func TestParseBareTerms(t *testing.T) {
	n := mustParse(t, plainA, "cable car")
	w, ok := n.(Weighted)
	if !ok || len(w.Children) != 2 {
		t.Fatalf("parsed %#v", n)
	}
	if w.Children[0].Node.(Term).Text != "cable" {
		t.Errorf("first term = %v", w.Children[0].Node)
	}
}

func TestParseSingleTermCollapses(t *testing.T) {
	if n := mustParse(t, plainA, "funicular"); n.(Term).Text != "funicular" {
		t.Errorf("parsed %#v", n)
	}
}

func TestParsePhraseOperators(t *testing.T) {
	n := mustParse(t, plainA, "#1(cable car)")
	p, ok := n.(Phrase)
	if !ok || len(p.Terms) != 2 {
		t.Fatalf("parsed %#v", n)
	}
	// Quoted string is the same thing.
	q := mustParse(t, plainA, `"cable car"`)
	if q.String() != n.String() {
		t.Errorf("quoted %q != operator %q", q.String(), n.String())
	}
}

func TestParseUnorderedWindow(t *testing.T) {
	n := mustParse(t, plainA, "#uw8(cable car)")
	u, ok := n.(Unordered)
	if !ok || u.Width != 8 || len(u.Terms) != 2 {
		t.Fatalf("parsed %#v", n)
	}
	// Single term inside a window collapses to the term.
	if n := mustParse(t, plainA, "#uw4(cable)"); n.(Term).Text != "cable" {
		t.Errorf("parsed %#v", n)
	}
}

func TestParseWeight(t *testing.T) {
	n := mustParse(t, plainA, "#weight(2 cable 1 #1(cable car) 0.5 tram)")
	w, ok := n.(Weighted)
	if !ok || len(w.Children) != 3 {
		t.Fatalf("parsed %#v", n)
	}
	if w.Children[0].Weight != 2 || w.Children[2].Weight != 0.5 {
		t.Errorf("weights = %+v", w.Children)
	}
	if _, ok := w.Children[1].Node.(Phrase); !ok {
		t.Errorf("nested phrase lost: %#v", w.Children[1].Node)
	}
}

func TestParseNestedCombine(t *testing.T) {
	n := mustParse(t, plainA, "#combine(a #combine(b c) #weight(3 d 1 e))")
	w := n.(Weighted)
	if len(w.Children) != 3 {
		t.Fatalf("children = %d", len(w.Children))
	}
	inner := w.Children[1].Node.(Weighted)
	if len(inner.Children) != 2 {
		t.Errorf("inner children = %d", len(inner.Children))
	}
}

func TestParseAnalyzesTerms(t *testing.T) {
	n := mustParse(t, stdA, "The Running CARS")
	// "the" is a stopword; running→run, cars→car.
	w, ok := n.(Weighted)
	if !ok || len(w.Children) != 2 {
		t.Fatalf("parsed %#v", n)
	}
	if w.Children[0].Node.(Term).Text != "run" || w.Children[1].Node.(Term).Text != "car" {
		t.Errorf("terms = %v", n)
	}
	// Hyphenated word becomes a phrase.
	ph := mustParse(t, stdA, "cable-car")
	if _, ok := ph.(Phrase); !ok {
		t.Errorf("hyphenated input parsed to %#v", ph)
	}
}

func TestParseEmptyWeight(t *testing.T) {
	n := mustParse(t, plainA, "#weight()")
	if !IsEmpty(n) {
		t.Errorf("empty #weight should be empty, got %#v", n)
	}
}

func TestParseEmptyOperatorsDropOut(t *testing.T) {
	// Empty proximity operators (and empty quotes) vanish like bare
	// stopwords; surrounding terms survive.
	n := mustParse(t, plainA, `cable #1() "" tram`)
	w, ok := n.(Weighted)
	if !ok || len(w.Children) != 2 {
		t.Fatalf("parsed %#v", n)
	}
}

func TestParseStopwordOnly(t *testing.T) {
	n := mustParse(t, stdA, "the of and")
	if !IsEmpty(n) {
		t.Errorf("stopword-only query should be empty, got %#v", n)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"#1(cable car",    // missing )
		"#weight(cable)",  // missing weight
		"#weight(1)",      // weight without node
		"#frob(x)",        // unknown operator
		"#uwx(a b)",       // bad width
		"#uw0(a b)",       // zero width
		`"unterminated`,   // quote
		"a ) b",           // unbalanced
		"#1(#combine(a))", // operator inside proximity
		"#combine",        // missing (
	}
	for _, in := range bad {
		if _, err := Parse(plainA, in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Parsing a rendered query reproduces the same render.
	inputs := []string{
		"#weight(2 cable 1 #1(cable car))",
		"#combine(a b #uw4(c d))",
	}
	for _, in := range inputs {
		n := mustParse(t, plainA, in)
		again := mustParse(t, plainA, n.String())
		if n.String() != again.String() {
			t.Errorf("round trip: %q → %q", n.String(), again.String())
		}
	}
}

func TestParsedQuerySearches(t *testing.T) {
	ix := buildIndex("cable car rides", "tram depot", "cable maintenance")
	s := NewSearcher(ix)
	n := mustParse(t, plainA, "#weight(2 #1(cable car) 1 tram)")
	res := s.Search(n, 10)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Name != "D0" {
		t.Errorf("top = %s", res[0].Name)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse(plainA, "#weight(")
}

func TestParseEmptyInput(t *testing.T) {
	n := mustParse(t, plainA, "   ")
	if !IsEmpty(n) {
		t.Errorf("empty input should parse to an empty node, got %#v", n)
	}
	if !strings.HasPrefix(n.String(), "#weight(") {
		t.Errorf("empty node renders as %q", n.String())
	}
}

package search

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/index"
)

// segTestDoc is one generated document for segmented-search tests.
type segTestDoc struct {
	name, text string
}

// segTestCorpus generates a deterministic corpus whose vocabulary
// overlaps the test queries (including multi-occurrence docs, so
// positional leaves have matches).
func segTestCorpus(n, seed int) []segTestDoc {
	rng := rand.New(rand.NewSource(int64(seed)))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "alpha", "beta"}
	docs := make([]segTestDoc, n)
	for d := range docs {
		var sb strings.Builder
		for i, l := 0, 3+rng.Intn(20); i < l; i++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		docs[d] = segTestDoc{name: fmt.Sprintf("D%05d", d), text: sb.String()}
	}
	return docs
}

// segTestQueries is the query mix: bare terms, weighted trees with
// positional leaves, and an OOV term (exercises the floor probability).
func segTestQueries() []Node {
	return []Node{
		Term{Text: "alpha"},
		Weighted{Children: []Child{
			{Weight: 0.6, Node: Term{Text: "alpha"}},
			{Weight: 0.3, Node: Term{Text: "beta"}},
			{Weight: 0.1, Node: Term{Text: "missingterm"}},
		}},
		Weighted{Children: []Child{
			{Weight: 0.5, Node: Phrase{Terms: []string{"alpha", "beta"}}},
			{Weight: 0.5, Node: Unordered{Terms: []string{"gamma", "delta"}, Width: 8}},
		}},
	}
}

// buildSegmented ingests docs into a fresh Segmented with the given
// flush threshold, deletes the named docs, and optionally compacts.
func buildSegmented(t *testing.T, docs []segTestDoc, flushDocs int, deletes []string, compact bool) *index.Segmented {
	t.Helper()
	live, err := index.OpenSegmented(t.TempDir(), analysis.Analyzer{}, index.WithFlushDocs(flushDocs))
	if err != nil {
		t.Fatalf("OpenSegmented: %v", err)
	}
	t.Cleanup(func() { live.Close() })
	for _, d := range docs {
		if err := live.Ingest(d.name, d.text); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	for _, name := range deletes {
		if _, err := live.Delete(name); err != nil {
			t.Fatalf("Delete(%s): %v", name, err)
		}
	}
	if compact {
		if err := live.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
	return live
}

// survivorsOf filters docs by the deleted-name set.
func survivorsOf(docs []segTestDoc, deletes []string) []segTestDoc {
	dead := make(map[string]bool, len(deletes))
	for _, n := range deletes {
		dead[n] = true
	}
	var out []segTestDoc
	for _, d := range docs {
		if !dead[d.name] {
			out = append(out, d)
		}
	}
	return out
}

// monoSearcher builds the monolithic reference Searcher over docs.
func monoSearcher(docs []segTestDoc) *Searcher {
	b := index.NewBuilder(analysis.Analyzer{})
	for _, d := range docs {
		b.Add(d.name, d.text)
	}
	return NewSearcher(b.Build())
}

// requireSameResults asserts bit-identical rankings (doc, name, exact
// score equality).
func requireSameResults(t *testing.T, got, want []Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || got[i].Name != want[i].Name || got[i].Score != want[i].Score {
			t.Fatalf("%s: result %d = {%d %s %.17g}, want {%d %s %.17g}",
				label, i, got[i].Doc, got[i].Name, got[i].Score, want[i].Doc, want[i].Name, want[i].Score)
		}
	}
}

// TestSegmentedSearcherParity: the segmented searcher is bit-identical
// to a monolithic Searcher over the surviving documents, across models,
// flush sizes, delete schedules, compaction states and pruning modes.
func TestSegmentedSearcherParity(t *testing.T) {
	docs := segTestCorpus(120, 11)
	deleteSets := [][]string{
		nil,
		{"D00000", "D00007", "D00031", "D00064", "D00119"},
	}
	for _, flushDocs := range []int{7, 35, 1000} {
		for di, deletes := range deleteSets {
			for _, compact := range []bool{false, true} {
				live := buildSegmented(t, docs, flushDocs, deletes, compact)
				mono := monoSearcher(survivorsOf(docs, deletes))
				for _, model := range []Model{ModelDirichlet, ModelJelinekMercer, ModelBM25} {
					for _, prune := range []bool{false, true} {
						gs := NewSegmentedSearcher(live)
						gs.Model = model
						gs.DisablePruning = !prune
						gs.forcePrune = prune
						mono.Model = model
						mono.DisablePruning = !prune
						mono.forcePrune = prune
						for qi, q := range segTestQueries() {
							label := fmt.Sprintf("flush=%d del=%d compact=%v model=%d prune=%v q=%d", flushDocs, di, compact, model, prune, qi)
							want := mono.Search(q, 10)
							got, err := gs.SearchContext(context.Background(), q, 10)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							requireSameResults(t, got, want, label)
						}
					}
				}
			}
		}
	}
}

// TestSegmentedSearcherEmpty: zero live documents (never ingested, or
// all deleted) return no results, no error.
func TestSegmentedSearcherEmpty(t *testing.T) {
	live := buildSegmented(t, nil, 8, nil, false)
	gs := NewSegmentedSearcher(live)
	if res, err := gs.SearchContext(context.Background(), Term{Text: "alpha"}, 10); err != nil || len(res) != 0 {
		t.Fatalf("empty index: %v, %v", res, err)
	}
	docs := segTestCorpus(9, 12)
	var all []string
	for _, d := range docs {
		all = append(all, d.name)
	}
	live2 := buildSegmented(t, docs, 4, all, false)
	gs2 := NewSegmentedSearcher(live2)
	if res, err := gs2.SearchContext(context.Background(), Term{Text: "alpha"}, 10); err != nil || len(res) != 0 {
		t.Fatalf("fully deleted index: %v, %v", res, err)
	}
}

// TestSegmentedSearcherStats: SearchStats.Shards carries one entry per
// live segment of the pinned snapshot.
func TestSegmentedSearcherStats(t *testing.T) {
	docs := segTestCorpus(50, 13)
	live := buildSegmented(t, docs, 16, nil, false)
	gs := NewSegmentedSearcher(live)
	res, st, err := gs.SearchWithStatsContext(context.Background(), Term{Text: "alpha"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if want := 4; len(st.Shards) != want { // 3 disk segments + buffer
		t.Fatalf("%d shard stat entries, want %d", len(st.Shards), want)
	}
	if st.Leaves != 1 || st.CandidatesExamined == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestSegmentedSearcherDegradation: a failing segment evaluation drops
// that segment under AllowPartial, keeping the others' results exact;
// without AllowPartial it fails the query.
func TestSegmentedSearcherDegradation(t *testing.T) {
	docs := segTestCorpus(60, 14)
	live := buildSegmented(t, docs, 20, nil, false)
	gs := NewSegmentedSearcher(live)

	fault.Arm(fault.NewRegistry(42).Set(fault.ShardEval, fault.Policy{ErrRate: 1, MaxFaults: 1}))
	defer fault.Disarm()
	res, pi, err := gs.SearchDegraded(context.Background(), Term{Text: "alpha"}, 10, DegradeOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("degraded search failed: %v", err)
	}
	if !pi.Degraded() || len(pi.DroppedShards) != 1 {
		t.Fatalf("expected exactly one dropped segment, got %+v", pi)
	}
	if len(res) == 0 {
		t.Fatal("surviving segments produced no results")
	}

	fault.Arm(fault.NewRegistry(42).Set(fault.ShardEval, fault.Policy{ErrRate: 1, MaxFaults: 1}))
	if _, _, err := gs.SearchDegraded(context.Background(), Term{Text: "alpha"}, 10, DegradeOptions{}); err == nil {
		t.Fatal("strict mode should fail on a segment fault")
	}
}

// TestSegmentedSearcherPinnedSnapshot: a query over an explicitly
// pinned snapshot is unaffected by mutations racing past it, and stays
// bit-identical to the monolithic rebuild of that snapshot's documents.
func TestSegmentedSearcherPinnedSnapshot(t *testing.T) {
	docs := segTestCorpus(80, 15)
	live := buildSegmented(t, docs[:40], 16, nil, false)
	gs := NewSegmentedSearcher(live)

	sn := live.Acquire()
	defer sn.Release()
	mono := monoSearcher(docs[:40])

	// Mutate heavily after pinning.
	for _, d := range docs[40:] {
		if err := live.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"D00003", "D00017", "D00039"} {
		if _, err := live.Delete(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Compact(); err != nil {
		t.Fatal(err)
	}

	for qi, q := range segTestQueries() {
		want := mono.Search(q, 10)
		got, err := gs.SearchSnapshot(context.Background(), sn, q, 10)
		if err != nil {
			t.Fatalf("q%d: %v", qi, err)
		}
		requireSameResults(t, got, want, fmt.Sprintf("pinned q%d", qi))
	}
}

// TestSegmentedSearcherClosed: searches against a closed live index
// fail cleanly.
func TestSegmentedSearcherClosed(t *testing.T) {
	live := buildSegmented(t, segTestCorpus(10, 16), 4, nil, false)
	gs := NewSegmentedSearcher(live)
	live.Close()
	if _, err := gs.SearchContext(context.Background(), Term{Text: "alpha"}, 5); err == nil {
		t.Fatal("search on closed index should fail")
	}
}

package search

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestUnorderedNodeScoring(t *testing.T) {
	ix := buildIndex(
		"cable car station", // ordered adjacent
		"car the cable",     // reversed within window 3
		"cable x y z q car", // outside window 3
	)
	s := NewSearcher(ix)
	res := s.Search(Unordered{Terms: []string{"cable", "car"}, Width: 3}, 10)
	names := map[string]bool{}
	for _, r := range res {
		names[r.Name] = true
	}
	if !names["D0"] || !names["D1"] || names["D2"] {
		t.Errorf("window matches = %v", names)
	}
}

func TestUnorderedString(t *testing.T) {
	n := Unordered{Terms: []string{"a", "b"}, Width: 4}
	if n.String() != "#uw4(a b)" {
		t.Errorf("String = %q", n.String())
	}
}

func TestUnorderedIsEmpty(t *testing.T) {
	if !IsEmpty(Unordered{}) {
		t.Error("empty unordered should be empty")
	}
	if IsEmpty(Unordered{Terms: []string{"x"}, Width: 1}) {
		t.Error("non-empty unordered misreported")
	}
}

func TestTitleWindow(t *testing.T) {
	a := analysis.Standard()
	n := TitleWindow(a, "Cable Car", 2)
	uw, ok := n.(Unordered)
	if !ok {
		t.Fatalf("TitleWindow returned %T", n)
	}
	if uw.Width != 4 { // 2 terms + slack 2
		t.Errorf("width = %d", uw.Width)
	}
	if _, ok := TitleWindow(a, "Funicular", 2).(Term); !ok {
		t.Error("single-word title should collapse to Term")
	}
	if !IsEmpty(TitleWindow(a, "the of", 2)) {
		t.Error("stopword-only title should be empty")
	}
}

func TestUnorderedVersusPhraseRanking(t *testing.T) {
	// The unordered window admits strictly more matches than the exact
	// phrase; both must appear in flattened queries without error.
	ix := buildIndex("alpha beta", "beta alpha", "alpha x beta")
	s := NewSearcher(ix)
	phrase := s.Search(Phrase{Terms: []string{"alpha", "beta"}}, 10)
	window := s.Search(Unordered{Terms: []string{"alpha", "beta"}, Width: 3}, 10)
	if len(phrase) != 1 {
		t.Errorf("phrase matched %d docs", len(phrase))
	}
	if len(window) != 3 {
		t.Errorf("window matched %d docs", len(window))
	}
	mixed := Weight([]float64{1, 1}, []Node{
		Phrase{Terms: []string{"alpha", "beta"}},
		Unordered{Terms: []string{"alpha", "beta"}, Width: 3},
	})
	if got := s.Search(mixed, 10); len(got) != 3 || got[0].Name != "D0" {
		t.Errorf("mixed query ranking = %v", got)
	}
	if !strings.Contains(mixed.String(), "#uw3") {
		t.Error("mixed query rendering incomplete")
	}
}

package search

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/index"
)

// SegmentedSearcher evaluates structured queries against a live
// index.Segmented: per query it pins the current snapshot, fans the
// query tree out to one evaluator per live segment, and merges the
// per-segment bounded top-k heaps into the final ranking. Results and
// scores are bit-identical to evaluating the same query on a monolithic
// index built from the snapshot's surviving documents in ingestion
// order, for every retrieval model. The argument is the sharded
// searcher's, plus two tombstone obligations:
//
//   - flatten is structure-driven, so every segment produces the same
//     leaf list; each leaf's collection statistics are first corrected
//     for the segment's tombstones (a dead document's term frequency
//     leaves cf, its membership leaves df) and then replaced by their
//     exact cross-segment sums, so smoothing sees precisely the live
//     collection. Segments with tombstones flatten with streaming
//     disabled — a streaming leaf carries no materialised postings to
//     subtract from, and a silent miss there would skew cf/df.
//   - a segment's evaluator cannot be told about tombstones (bounds and
//     scoring stay untouched), so it is asked for the top
//     k + |tombstones| — dead documents can displace at most
//     |tombstones| live ones — and dead entries are filtered from its
//     ranking afterwards. Survivor local DocIDs then remap to the
//     global IDs a monolithic rebuild would assign (segment base +
//     survivor rank), which preserves the (score desc, DocID asc)
//     tie-break bit for bit.
//
// Per-segment TermBounds/BlockBounds were computed over the full
// segment — a superset of its live documents — so every pruning bound
// still dominates and MaxScore/Block-Max stay score-safe unchanged.
//
// SegmentedSearcher implements Distributed, so an Engine drives it
// exactly like in-process sharding or the RPC coordinator, degradation
// included: a failing segment evaluation retries/drops like a failing
// shard, and partial merges stay exact on the surviving segments
// because statistics are settled before evaluation starts.
type SegmentedSearcher struct {
	live *index.Segmented
	// Mu is the Dirichlet smoothing parameter; zero means DefaultMu.
	Mu float64
	// Model selects the retrieval function (default Dirichlet QL).
	Model Model
	// Params holds the other models' parameters.
	Params ModelParams
	// DisablePruning turns off MaxScore pruning in every segment's
	// evaluator.
	DisablePruning bool
	// forcePrune mirrors Searcher.forcePrune (test-only).
	forcePrune bool
	// Sem, when non-nil, bounds extra fan-out goroutines; same
	// try-acquire discipline as ShardedSearcher.Sem.
	Sem chan struct{}
}

// NewSegmentedSearcher returns a SegmentedSearcher over live with the
// default μ.
func NewSegmentedSearcher(live *index.Segmented) *SegmentedSearcher {
	return &SegmentedSearcher{live: live, Mu: DefaultMu}
}

// Live returns the underlying segmented index.
func (gs *SegmentedSearcher) Live() *index.Segmented { return gs.live }

// NumShards implements Distributed. A segmented index is one logical
// shard — the segment count varies per snapshot and is reported in
// SearchStats.Shards, not here.
func (gs *SegmentedSearcher) NumShards() int { return 1 }

// Configure implements Distributed.
func (gs *SegmentedSearcher) Configure(cfg ShardConfig) {
	gs.Mu = cfg.Mu
	gs.Model = cfg.Model
	gs.Params = cfg.Params
	gs.DisablePruning = cfg.DisablePruning
	gs.Sem = cfg.Sem
}

// Search scores the query against the current snapshot and returns the
// global top k (score desc, DocID asc).
func (gs *SegmentedSearcher) Search(q Node, k int) []Result {
	res, _ := gs.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext is Search under a context.
func (gs *SegmentedSearcher) SearchContext(ctx context.Context, q Node, k int) ([]Result, error) {
	return gs.search(ctx, nil, q, k, nil, nil, nil)
}

// SearchWithStats is Search plus instrumentation; SearchStats.Shards
// carries one entry per live segment of the pinned snapshot.
func (gs *SegmentedSearcher) SearchWithStats(q Node, k int) ([]Result, SearchStats) {
	res, st, _ := gs.SearchWithStatsContext(context.Background(), q, k)
	return res, st
}

// SearchWithStatsContext is SearchContext plus instrumentation.
func (gs *SegmentedSearcher) SearchWithStatsContext(ctx context.Context, q Node, k int) ([]Result, SearchStats, error) {
	var st SearchStats
	start := time.Now()
	res, err := gs.search(ctx, nil, q, k, &st, nil, nil)
	st.Elapsed = time.Since(start)
	return res, st, err
}

// SearchDegraded implements Distributed (see ShardedSearcher's for the
// exactness argument; segments take the role of shards).
func (gs *SegmentedSearcher) SearchDegraded(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, PartialInfo, error) {
	var pi PartialInfo
	res, err := gs.search(ctx, nil, q, k, nil, &opts, &pi)
	return res, pi, err
}

// SearchDegradedWithStats implements Distributed.
func (gs *SegmentedSearcher) SearchDegradedWithStats(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, SearchStats, PartialInfo, error) {
	var st SearchStats
	var pi PartialInfo
	start := time.Now()
	res, err := gs.search(ctx, nil, q, k, &st, &opts, &pi)
	st.Elapsed = time.Since(start)
	return res, st, pi, err
}

// SearchSnapshot evaluates q against an explicitly pinned snapshot
// instead of the live index's current one — the entry the chaos harness
// uses to prove a pinned view stays bit-identical to its monolithic
// rebuild while mutations and faults race past it. The caller owns sn's
// pin; it is not released here.
func (gs *SegmentedSearcher) SearchSnapshot(ctx context.Context, sn *index.Snapshot, q Node, k int) ([]Result, error) {
	return gs.search(ctx, sn, q, k, nil, nil, nil)
}

func (gs *SegmentedSearcher) resolveParams() ModelParams {
	params := gs.Params.withDefaults()
	if gs.Mu > 0 {
		params.Mu = gs.Mu
	}
	return params
}

// search runs the four-phase evaluation against sn (pinning the current
// snapshot when sn is nil). The phases mirror ShardedSearcher.search —
// failures are confined to phase 3, after the statistics override.
func (gs *SegmentedSearcher) search(ctx context.Context, sn *index.Snapshot, q Node, k int, st *SearchStats, opts *DegradeOptions, pi *PartialInfo) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sn == nil {
		sn = gs.live.Acquire()
		if sn == nil {
			return nil, fmt.Errorf("search: segmented index is closed")
		}
		defer sn.Release()
	}
	n := sn.NumSegments()
	if n == 0 {
		return nil, nil
	}

	// Phase 1: flatten per segment, in parallel, correcting each leaf's
	// collection statistics for the segment's tombstones. Tombstoned
	// segments materialise every term leaf (no streaming) so the
	// correction always has a postings row to subtract from.
	segLeaves := make([][]leaf, n)
	fanOutShards(gs.Sem, n, func(i int) {
		tombs := sn.Tombstones(i)
		local := &Searcher{ix: sn.Segment(i), DisableStreaming: len(tombs) > 0}
		var ls []leaf
		local.flatten(q, 1, &ls)
		for li := range ls {
			l := &ls[li]
			for _, d := range tombs {
				if pos := findDoc(l.postings.Docs, d); pos >= 0 {
					l.cf -= int64(l.postings.Freqs[pos])
					l.df--
				}
			}
		}
		segLeaves[i] = ls
	})
	nLeaves := len(segLeaves[0])
	for i := 1; i < n; i++ {
		if len(segLeaves[i]) != nLeaves {
			// flatten is structure-driven over a shared analyzer; a
			// divergence means a segment was built against a different
			// analyzer and scoring would be silently wrong.
			return nil, fmt.Errorf("search: segment %d flattened %d leaves, segment 0 flattened %d", i, len(segLeaves[i]), nLeaves)
		}
	}
	if nLeaves == 0 {
		return nil, nil
	}
	if st != nil {
		st.Leaves = nLeaves
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: the global-stats override, against the snapshot's exact
	// live-collection statistics.
	for li := 0; li < nLeaves; li++ {
		var cf int64
		var df float64
		for s := 0; s < n; s++ {
			cf += segLeaves[s][li].cf
			df += segLeaves[s][li].df
		}
		collProb := sn.FloorProb(cf)
		for s := 0; s < n; s++ {
			l := &segLeaves[s][li]
			l.cf, l.df, l.collProb = cf, df, collProb
		}
	}
	params := gs.resolveParams()
	cs := collStats{
		numDocs:   float64(sn.NumDocs()),
		avgDocLen: sn.AvgDocLen(),
	}
	for s := 0; s < n; s++ {
		prepareLeaves(gs.Model, cs, segLeaves[s])
	}
	score := buildScorer(gs.Model, params, cs)

	// Phase 3: per-segment evaluation. Each segment is asked for the top
	// k + |tombstones| so filtering dead documents out of its ranking
	// can never lose a live top-k document, then survivors remap to the
	// global (monolithic-rebuild) DocIDs.
	type segOut struct {
		res     []Result
		retries int
		err     error
	}
	outs := make([]segOut, n)
	var segStats []SearchStats
	if st != nil {
		segStats = make([]SearchStats, n)
	}
	fanOutShards(gs.Sem, n, func(i int) {
		var sst *SearchStats
		var start time.Time
		if st != nil {
			sst = &segStats[i]
			start = time.Now()
		}
		ix := sn.Segment(i)
		tombs := sn.Tombstones(i)
		k2 := k + len(tombs)
		sc := getScratch()
		defer putScratch(sc)
		res, retries, err := evalShardDegraded(ctx, opts, func(sctx context.Context) ([]Result, error) {
			if gs.DisablePruning {
				return searchDAAT(sctx, ix, segLeaves[i], k2, score, sst, sc)
			}
			pb := derivePruneBounds(gs.Model, params, cs, ix.MinDocLen(), segLeaves[i], sc)
			if !gs.forcePrune && !pruneWorthwhile(segLeaves[i], pb) {
				return searchDAAT(sctx, ix, segLeaves[i], k2, score, sst, sc)
			}
			return searchMaxScore(sctx, ix, segLeaves[i], k2, score, pb, sst, sc)
		})
		if sst != nil {
			sst.Elapsed = time.Since(start)
		}
		if err == nil {
			live := res[:0]
			for _, r := range res {
				if len(tombs) > 0 && findDoc(tombs, r.Doc) >= 0 {
					continue
				}
				r.Doc = sn.GlobalDoc(i, r.Doc)
				live = append(live, r)
			}
			if len(live) > k {
				live = live[:k]
			}
			res = live
		}
		outs[i] = segOut{res: res, retries: retries, err: err}
	})
	if st != nil {
		st.Shards = make([]ShardStats, n)
		for i, sst := range segStats {
			st.CandidatesExamined += sst.CandidatesExamined
			st.PostingsAdvanced += sst.PostingsAdvanced
			st.DocsSkipped += sst.DocsSkipped
			st.BoundEvaluations += sst.BoundEvaluations
			st.BlockBoundEvaluations += sst.BlockBoundEvaluations
			st.BlocksDecoded += sst.BlocksDecoded
			st.BlocksTotal += sst.BlocksTotal
			st.HeapPushes += sst.HeapPushes
			st.HeapEvictions += sst.HeapEvictions
			st.Shards[i] = ShardStats{
				Elapsed:            sst.Elapsed,
				CandidatesExamined: sst.CandidatesExamined,
				PostingsAdvanced:   sst.PostingsAdvanced,
				DocsSkipped:        sst.DocsSkipped,
			}
		}
	}
	if pi != nil {
		for i := range outs {
			pi.Retries += outs[i].retries
		}
	}
	dropped := make([]bool, n)
	failed := 0
	for i := range outs {
		if outs[i].err == nil {
			continue
		}
		if opts == nil || !opts.AllowPartial || ctx.Err() != nil {
			return nil, outs[i].err
		}
		dropped[i] = true
		failed++
		if pi != nil {
			pi.DroppedShards = append(pi.DroppedShards, i)
			pi.ShardErrors = append(pi.ShardErrors, outs[i].err.Error())
		}
	}
	if failed == n {
		for i := range outs {
			if outs[i].err != nil {
				return nil, outs[i].err
			}
		}
	}

	// Phase 4: merge the survivors by the global result ordering and
	// truncate to k.
	msc := getScratch()
	defer putScratch(msc)
	all := msc.merged[:0]
	for i := range outs {
		if !dropped[i] {
			all = append(all, outs[i].res...)
		}
	}
	msc.merged = all
	sort.Sort(&resultSorter{all})
	if len(all) > k {
		all = all[:k]
	}
	if len(all) == 0 {
		return nil, nil
	}
	out := make([]Result, len(all))
	copy(out, all)
	return out, nil
}

package search

import "math"

// Model selects the retrieval function. The paper's model is Dirichlet-
// smoothed query likelihood; the alternatives exist for comparison
// studies (the "retrieval substrate" ablation) and for downstream users
// who prefer them.
type Model int

const (
	// ModelDirichlet is Dirichlet-smoothed query likelihood (the paper's
	// retrieval model, Section 2.3). Parameter: Mu.
	ModelDirichlet Model = iota
	// ModelJelinekMercer is JM-smoothed query likelihood:
	// P(w|D) = (1−λ)·tf/|D| + λ·P(w|C). Parameter: Lambda.
	ModelJelinekMercer
	// ModelBM25 is Okapi BM25 with IDF per leaf. Parameters: K1, B.
	// Phrase and window leaves score like terms, with df/cf computed
	// from their materialised postings.
	ModelBM25
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelDirichlet:
		return "dirichlet"
	case ModelJelinekMercer:
		return "jelinek-mercer"
	case ModelBM25:
		return "bm25"
	default:
		return "unknown"
	}
}

// ModelParams bundles every model's parameters with sensible defaults.
type ModelParams struct {
	// Mu is Dirichlet's pseudo-count (default 2500).
	Mu float64
	// Lambda is JM's collection interpolation (default 0.4).
	Lambda float64
	// K1 and B are BM25's saturation and length normalisation
	// (defaults 1.2 and 0.75).
	K1, B float64
}

func (p ModelParams) withDefaults() ModelParams {
	if p.Mu <= 0 {
		p.Mu = DefaultMu
	}
	if p.Lambda <= 0 || p.Lambda >= 1 {
		p.Lambda = 0.4
	}
	if p.K1 <= 0 {
		p.K1 = 1.2
	}
	if p.B <= 0 || p.B > 1 {
		// B = 0 (no length normalisation) must be requested via an
		// explicit tiny value; the zero value means "default".
		p.B = 0.75
	}
	return p
}

// scorer computes one leaf's contribution for a document.
type scorer func(l *leaf, tf int32, docLen float64) float64

// collStats are the collection-level statistics a scorer closes over.
// For an unsharded searcher they come straight from the index; the
// sharded evaluator passes the cross-shard globals so every shard builds
// the same closure (the global-stats invariant behind bit-identical
// sharded scoring).
type collStats struct {
	numDocs   float64
	avgDocLen float64
}

// resolveParams merges the back-compat Mu field into the model params.
func (s *Searcher) resolveParams() ModelParams {
	params := s.Params.withDefaults()
	// Back-compat: the Mu field predates Params and wins when set.
	if s.Mu > 0 {
		params.Mu = s.Mu
	}
	return params
}

// newScorer builds the scoring closure for the searcher's model. The
// caller must run prepareLeaves over its flattened leaves first (the
// BM25 closure reads the cached idf).
func (s *Searcher) newScorer() scorer {
	return buildScorer(s.Model, s.resolveParams(), collStats{
		numDocs:   float64(s.ix.NumDocs()),
		avgDocLen: s.ix.AvgDocLen(),
	})
}

// prepareLeaves fills the per-leaf scoring caches that depend on the
// model and the (possibly overridden) collection statistics — today
// just BM25's idf. It MUST run after any cross-shard statistics
// override (the sharded evaluators rewrite df) and before the scorer or
// the bound machinery touches the leaves: both read l.idf instead of
// recomputing the log per posting. The cached value is the exact
// expression the scorer previously evaluated inline, so scores are
// bit-identical — the same double, computed once.
func prepareLeaves(model Model, cs collStats, leaves []leaf) {
	if model != ModelBM25 {
		return
	}
	for i := range leaves {
		l := &leaves[i]
		l.idf = math.Log((cs.numDocs-l.df+0.5)/(l.df+0.5) + 1)
	}
}

// buildScorer builds the scoring closure for a model from explicit
// collection statistics. Per-leaf statistics (collProb, df) are read
// from the leaf at scoring time, so overriding them steers smoothing
// without touching the closure. The closure is read-only after
// construction and safe to share across goroutines.
func buildScorer(model Model, params ModelParams, cs collStats) scorer {
	switch model {
	case ModelJelinekMercer:
		lambda := params.Lambda
		return func(l *leaf, tf int32, docLen float64) float64 {
			var ml float64
			if docLen > 0 {
				ml = float64(tf) / docLen
			}
			return l.weight * math.Log((1-lambda)*ml+lambda*l.collProb)
		}
	case ModelBM25:
		k1, b := params.K1, params.B
		avgdl := cs.avgDocLen
		if avgdl == 0 {
			avgdl = 1
		}
		return func(l *leaf, tf int32, docLen float64) float64 {
			if tf == 0 {
				return 0 // BM25 has no background mass
			}
			// l.idf was cached by prepareLeaves (same expression, computed
			// once per leaf instead of once per scored posting).
			t := float64(tf)
			return l.weight * l.idf * (t * (k1 + 1)) / (t + k1*(1-b+b*docLen/avgdl))
		}
	default:
		mu := params.Mu
		return func(l *leaf, tf int32, docLen float64) float64 {
			return l.weight * math.Log((float64(tf)+mu*l.collProb)/(docLen+mu))
		}
	}
}

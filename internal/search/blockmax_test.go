package search

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/index"
)

// blockSized clones nothing — it derives block metadata on ix at the
// given block size so the Block-Max tier of the candidate filter has
// many small blocks to consult. Tests that want the default 128-doc
// blocks simply skip the call.
func blockSized(t *testing.T, ix *index.Index, bs int) *index.Index {
	t.Helper()
	if err := ix.SetBlockSize(bs); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestBlockMaxMatchesDAATSmallBlocks: the Block-Max differential. Tiny
// block sizes maximise the number of per-block bound consultations (and
// hence the chances of an unsound block bound changing a ranking), so
// bit-identity here is the strongest cheap evidence the tier-2 filter
// is score-safe.
func TestBlockMaxMatchesDAATSmallBlocks(t *testing.T) {
	var blockEvals int64
	for _, bs := range []int{1, 2, 4, 16} {
		corpora := map[string]*index.Index{
			"skewed":  blockSized(t, buildSkewedIndex(300, 23), bs),
			"ties":    blockSized(t, buildIndex("a b", "a b", "a b", "a b", "b c", "b c", "z"), bs),
			"lengths": blockSized(t, buildIndex("a", "a a a a a a a a a a a a", "a b", "b", "z a"), bs),
		}
		for cname, ix := range corpora {
			for _, m := range pruningModels {
				for qname, q := range pruningQueries() {
					for _, k := range []int{1, 3, 10} {
						pruned, full := prunedPair(ix, m.model, m.params, m.mu)
						want := full.Search(q, k)
						got, st := pruned.SearchWithStats(q, k)
						assertIdenticalResults(t, fmt.Sprintf("bs=%d/%s/%s/%s k=%d", bs, cname, m.name, qname, k), got, want)
						blockEvals += st.BlockBoundEvaluations
					}
				}
			}
		}
	}
	if blockEvals == 0 {
		t.Fatal("tier-2 block bounds were never consulted across the whole matrix")
	}
}

// TestBlockMaxCounterInvariants: the accounting identity survives the
// Block-Max tier at adversarially small block sizes — tier 2 moves no
// cursors, so every postings entry is still consumed or skipped exactly
// once, and the heap sees the identical accepted sequence.
func TestBlockMaxCounterInvariants(t *testing.T) {
	ix := blockSized(t, buildSkewedIndex(400, 29), 3)
	for _, m := range pruningModels {
		for qname, q := range pruningQueries() {
			pruned, full := prunedPair(ix, m.model, m.params, m.mu)
			_, pst := pruned.SearchWithStats(q, 10)
			_, fst := full.SearchWithStats(q, 10)
			label := fmt.Sprintf("%s/%s", m.name, qname)
			if pst.PostingsAdvanced+pst.DocsSkipped != fst.PostingsAdvanced {
				t.Errorf("%s: advanced %d + skipped %d != full postings mass %d",
					label, pst.PostingsAdvanced, pst.DocsSkipped, fst.PostingsAdvanced)
			}
			if pst.HeapPushes != fst.HeapPushes || pst.HeapEvictions != fst.HeapEvictions {
				t.Errorf("%s: heap traffic (%d,%d) != full (%d,%d)",
					label, pst.HeapPushes, pst.HeapEvictions, fst.HeapPushes, fst.HeapEvictions)
			}
			if fst.BlockBoundEvaluations != 0 {
				t.Errorf("%s: exhaustive path consulted block bounds: %+v", label, fst)
			}
		}
	}
}

// TestBlockMaxOverV2File: the evaluator differential through the
// on-disk path — round the corpus through a FormatV2 file, search the
// mmap'd lazily-decoded index with pruning on, and demand bit-identity
// with the exhaustive scan over the original in-memory index.
func TestBlockMaxOverV2File(t *testing.T) {
	mem := blockSized(t, buildSkewedIndex(350, 31), 4)
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := index.WriteFile(path, mem, index.FormatV2); err != nil {
		t.Fatal(err)
	}
	disk, err := index.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for _, m := range pruningModels {
		for qname, q := range pruningQueries() {
			for _, k := range []int{1, 5, 25} {
				pruned := NewSearcher(disk)
				pruned.Model, pruned.Params, pruned.Mu = m.model, m.params, m.mu
				pruned.forcePrune = true
				full := NewSearcher(mem)
				full.Model, full.Params, full.Mu = m.model, m.params, m.mu
				full.DisablePruning = true
				want := full.Search(q, k)
				got := pruned.Search(q, k)
				assertIdenticalResults(t, fmt.Sprintf("v2/%s/%s k=%d", m.name, qname, k), got, want)
			}
		}
	}
	if disk.Err() != nil {
		t.Fatalf("lazy decode recorded an error: %v", disk.Err())
	}
}

// TestBlockMaxShardedSmallBlocks: per-shard Block-Max filtering across
// shard counts stays bit-identical to the exhaustive unsharded scan,
// and the aggregated stats carry the block-consultation counter.
func TestBlockMaxShardedSmallBlocks(t *testing.T) {
	ix := blockSized(t, buildSkewedIndex(600, 37), 4)
	var blockEvals int64
	for _, m := range pruningModels {
		for _, S := range []int{1, 2, 4} {
			for qname, q := range pruningQueries() {
				full := NewSearcher(ix)
				full.Model, full.Params, full.Mu = m.model, m.params, m.mu
				full.DisablePruning = true
				want := full.Search(q, 10)

				ss := NewShardedSearcher(index.NewSharded(ix, S))
				ss.Model, ss.Params, ss.Mu = m.model, m.params, m.mu
				ss.forcePrune = true
				got, st, err := ss.SearchWithStatsContext(context.Background(), q, 10)
				if err != nil {
					t.Fatal(err)
				}
				assertIdenticalResults(t, fmt.Sprintf("%s/S=%d/%s", m.name, S, qname), got, want)
				blockEvals += st.BlockBoundEvaluations
			}
		}
	}
	if blockEvals == 0 {
		t.Fatal("sharded path never consulted block bounds")
	}
}

package search

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/index"
)

// assertSameResults fails unless the two result lists agree on documents,
// order, and scores (within 1e-12).
func assertSameResults(t *testing.T, label string, daat, legacy []Result) {
	t.Helper()
	if len(daat) != len(legacy) {
		t.Fatalf("%s: DAAT returned %d results, legacy %d", label, len(daat), len(legacy))
	}
	for i := range daat {
		if daat[i].Doc != legacy[i].Doc || daat[i].Name != legacy[i].Name {
			t.Fatalf("%s: rank %d: DAAT %v vs legacy %v", label, i, daat[i], legacy[i])
		}
		if math.Abs(daat[i].Score-legacy[i].Score) > 1e-12 {
			t.Fatalf("%s: rank %d score: DAAT %v vs legacy %v", label, i, daat[i].Score, legacy[i].Score)
		}
	}
}

// runBoth evaluates q under both evaluators and compares.
func runBoth(t *testing.T, s *Searcher, label string, q Node, k int) {
	t.Helper()
	s.UseLegacyScorer = false
	daat := s.Search(q, k)
	s.UseLegacyScorer = true
	legacy := s.Search(q, k)
	s.UseLegacyScorer = false
	assertSameResults(t, label, daat, legacy)
}

// TestDAATMatchesLegacyCrafted covers the structured cases the random
// sweep might miss: exact ties (identical documents), OOV leaves that
// carry only background mass, phrase and window leaves, and k larger
// than the candidate set.
func TestDAATMatchesLegacyCrafted(t *testing.T) {
	ix := buildIndex(
		"a b c a",
		"a b c a", // exact duplicate of D0: guaranteed score tie
		"b c d",
		"c d e f g",
		"a a a a a a",
		"x y z",
	)
	queries := map[string]Node{
		"single term":  Term{Text: "a"},
		"tied docs":    Combine(Term{Text: "a"}, Term{Text: "b"}, Term{Text: "c"}),
		"oov leaf":     Combine(Term{Text: "a"}, Term{Text: "notindexed"}),
		"all oov":      Combine(Term{Text: "qq"}, Term{Text: "ww"}),
		"phrase":       Phrase{Terms: []string{"a", "b"}},
		"window":       Unordered{Terms: []string{"c", "d"}, Width: 3},
		"nested":       Weight([]float64{3, 1}, []Node{Combine(Term{Text: "a"}, Term{Text: "d"}), Phrase{Terms: []string{"b", "c"}}}),
		"zero weights": Weight([]float64{0, 2}, []Node{Term{Text: "a"}, Term{Text: "c"}}),
	}
	for _, model := range []Model{ModelDirichlet, ModelJelinekMercer, ModelBM25} {
		s := NewSearcher(ix)
		s.Model = model
		s.Mu = 300
		for name, q := range queries {
			for _, k := range []int{1, 2, 3, 100} {
				runBoth(t, s, fmt.Sprintf("%v/%s/k=%d", model, name, k), q, k)
			}
		}
	}
}

// TestDAATMatchesLegacyRandom sweeps random corpora and random weighted
// queries across all three retrieval models.
func TestDAATMatchesLegacyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 40; trial++ {
		nDocs := 2 + rng.Intn(30)
		docs := make([]string, nDocs)
		for d := range docs {
			n := 1 + rng.Intn(12)
			var words []string
			for i := 0; i < n; i++ {
				words = append(words, vocab[rng.Intn(len(vocab))])
			}
			docs[d] = join(words)
		}
		ix := buildIndex(docs...)
		var children []Child
		nLeaves := 1 + rng.Intn(6)
		for i := 0; i < nLeaves; i++ {
			var n Node
			switch rng.Intn(4) {
			case 0:
				n = Term{Text: vocab[rng.Intn(len(vocab))]}
			case 1:
				n = Term{Text: "oov-term"} // never indexed
			case 2:
				n = Phrase{Terms: []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}}
			default:
				n = Unordered{Terms: []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}, Width: 2 + rng.Intn(4)}
			}
			children = append(children, Child{Weight: float64(1 + rng.Intn(5)), Node: n})
		}
		q := Weighted{Children: children}
		model := []Model{ModelDirichlet, ModelJelinekMercer, ModelBM25}[trial%3]
		s := NewSearcher(ix)
		s.Model = model
		k := 1 + rng.Intn(nDocs+5)
		runBoth(t, s, fmt.Sprintf("trial=%d model=%v k=%d", trial, model, k), q, k)
	}
}

func join(words []string) string {
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// TestSearchWithStatsCounters sanity-checks the instrumentation: the
// DAAT counters must reflect the actual postings traffic and heap
// activity of a known query.
func TestSearchWithStatsCounters(t *testing.T) {
	ix := buildIndex("a b", "a c", "a d", "b c")
	s := NewSearcher(ix)
	// The exact counts below describe the exhaustive evaluator (every
	// candidate scored, every posting consumed); the pruned path's
	// counters are asserted in maxscore_test.go.
	s.DisablePruning = true
	q := Combine(Term{Text: "a"}, Term{Text: "b"})
	res, st := s.SearchWithStats(q, 2)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if st.Leaves != 2 {
		t.Errorf("Leaves = %d, want 2", st.Leaves)
	}
	// Candidates: union of docs containing a (D0..D2) or b (D0, D3) = 4.
	if st.CandidatesExamined != 4 {
		t.Errorf("CandidatesExamined = %d, want 4", st.CandidatesExamined)
	}
	// Postings advanced: |postings(a)| + |postings(b)| = 3 + 2 = 5.
	if st.PostingsAdvanced != 5 {
		t.Errorf("PostingsAdvanced = %d, want 5", st.PostingsAdvanced)
	}
	if st.HeapPushes != 2 {
		t.Errorf("HeapPushes = %d, want 2", st.HeapPushes)
	}
	if st.HeapPushes+st.HeapEvictions > st.CandidatesExamined {
		t.Errorf("heap traffic %d exceeds candidates %d", st.HeapPushes+st.HeapEvictions, st.CandidatesExamined)
	}
	if st.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", st.Elapsed)
	}
	// The legacy path fills the shared counters too.
	s.UseLegacyScorer = true
	_, stLegacy := s.SearchWithStats(q, 2)
	if stLegacy.CandidatesExamined != 4 || stLegacy.PostingsAdvanced != 5 {
		t.Errorf("legacy stats = %+v, want 4 candidates / 5 advanced", stLegacy)
	}
}

// TestDAATEmptyAndDegenerate pins the edge cases: k<=0, empty queries,
// and queries whose every leaf is OOV (candidates exist only where a
// leaf matched — all-OOV queries rank nothing, on both paths).
func TestDAATEmptyAndDegenerate(t *testing.T) {
	ix := buildIndex("a b", "c d")
	s := NewSearcher(ix)
	if got := s.Search(Term{Text: "a"}, 0); got != nil {
		t.Errorf("k=0: got %v", got)
	}
	if got := s.Search(Weighted{}, 10); got != nil {
		t.Errorf("empty query: got %v", got)
	}
	runBoth(t, s, "all-oov", Combine(Term{Text: "zz"}, Term{Text: "yy"}), 10)
	var c index.Cursor
	if c.Valid() {
		t.Error("zero cursor must be exhausted")
	}
}

package search

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/index"
)

// bigSearcher builds an index large enough that the evaluators cross the
// cancelCheckEvery boundary mid-loop.
func bigSearcher(t testing.TB, docs int) *Searcher {
	t.Helper()
	b := index.NewBuilder(analysis.Analyzer{})
	for i := 0; i < docs; i++ {
		b.Add(fmt.Sprintf("D%06d", i), fmt.Sprintf("cable car line %d crosses the bay", i))
	}
	return NewSearcher(b.Build())
}

func TestSearchContextCancelledUpFront(t *testing.T) {
	s := bigSearcher(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, legacy := range []bool{false, true} {
		s.UseLegacyScorer = legacy
		res, err := s.SearchContext(ctx, Term{Text: "cable"}, 10)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("legacy=%v: want context.Canceled, got %v", legacy, err)
		}
		if res != nil {
			t.Errorf("legacy=%v: cancelled search returned results", legacy)
		}
	}
}

func TestSearchContextCancelledMidEvaluation(t *testing.T) {
	// Over 2·cancelCheckEvery candidates so the in-loop check fires at
	// least once after the up-front checks pass.
	s := bigSearcher(t, 2*cancelCheckEvery+100)
	ctx, cancel := context.WithCancel(context.Background())
	q := Combine(Term{Text: "cable"}, Term{Text: "bay"})
	// A context that cancels itself the first time the evaluator looks
	// at it would need scheduling tricks; instead cancel immediately but
	// enter through the internal path with the up-front checks already
	// passed: run the evaluators directly.
	var leaves []leaf
	s.flatten(q, 1, &leaves)
	score := s.newScorer()
	cancel()
	if _, err := searchDAAT(ctx, s.ix, leaves, 10, score, nil, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("DAAT: want context.Canceled, got %v", err)
	}
	if _, err := s.searchLegacy(ctx, leaves, 10, score, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("legacy: want context.Canceled, got %v", err)
	}
}

func TestSearchContextBackgroundMatchesSearch(t *testing.T) {
	s := bigSearcher(t, 64)
	q := Combine(Term{Text: "cable"}, Term{Text: "bay"})
	want := s.Search(q, 10)
	got, err := s.SearchContext(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	res, st, err := s.SearchWithStatsContext(context.Background(), q, 10)
	if err != nil || len(res) != len(want) || st.CandidatesExamined == 0 {
		t.Fatalf("SearchWithStatsContext: res=%d st=%+v err=%v", len(res), st, err)
	}
}

package search

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/index"
	"repro/internal/rpc"
)

// The RPC methods a shard server exposes. See DESIGN.md §5i for the
// two-phase protocol they implement.
const (
	MethodInfo  = "shard.info"
	MethodStats = "shard.stats"
	MethodEval  = "shard.eval"
)

// InfoResponse is the handshake: it identifies the shard and carries
// the shard-local corpus totals the coordinator sums into the global
// collection statistics (integer sums, so the totals match the
// unsharded index bit for bit).
type InfoResponse struct {
	Shard     int   `json:"shard"`
	NumShards int   `json:"num_shards"`
	NumDocs   int   `json:"num_docs"`
	TotalToks int64 `json:"total_toks"`
}

// StatsRequest asks a shard to flatten a query against its local index
// and report per-leaf collection statistics (phase A of a search).
type StatsRequest struct {
	Query WireNode `json:"query"`
}

// LeafStats are one leaf's shard-local collection statistics.
type LeafStats struct {
	CF int64   `json:"cf"`
	DF float64 `json:"df"`
}

// StatsResponse carries the per-leaf statistics in flatten order. The
// leaf count doubles as the cross-shard consistency check: flatten is
// structure-driven, so every shard must produce the same count.
type StatsResponse struct {
	Leaves []LeafStats `json:"leaves"`
}

// LeafOverride is the global statistics the coordinator pushes down for
// one leaf in phase B: the exact cross-shard sums plus the globally
// floored collection probability.
type LeafOverride struct {
	CF       int64   `json:"cf"`
	DF       float64 `json:"df"`
	CollProb float64 `json:"coll_prob"`
}

// EvalRequest asks a shard to evaluate a query under coordinator-
// supplied global statistics (phase B). The shard re-flattens the tree
// (stateless — no per-query state survives between the two phases),
// overrides each leaf's statistics with Overrides, scores with a
// scorer built from the global NumDocs/TotalToks, and returns its local
// top k remapped to global DocIDs.
type EvalRequest struct {
	Query WireNode `json:"query"`
	K     int      `json:"k"`
	// Model and params pin the scoring function; the shard applies them
	// verbatim (no local defaults beyond ModelParams.withDefaults, which
	// the coordinator has already resolved).
	Model          int     `json:"model"`
	Mu             float64 `json:"mu"`
	Lambda         float64 `json:"lambda"`
	K1             float64 `json:"k1"`
	B              float64 `json:"b"`
	DisablePruning bool    `json:"disable_pruning,omitempty"`
	// Global collection statistics. The shard derives avgDocLen as
	// float64(TotalToks)/float64(NumDocs) — the same expression
	// index.Sharded.AvgDocLen evaluates, so the scorer closure is built
	// over bit-identical inputs.
	NumDocs   int            `json:"num_docs"`
	TotalToks int64          `json:"total_toks"`
	Overrides []LeafOverride `json:"overrides"`
	WantStats bool           `json:"want_stats,omitempty"`
}

// WireResult is one ranked document crossing the wire; Doc is the
// GLOBAL DocID (the shard remaps before answering).
type WireResult struct {
	Doc   int64   `json:"doc"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// WireEvalStats are the shard evaluator's deterministic counters.
type WireEvalStats struct {
	CandidatesExamined    int64 `json:"candidates_examined"`
	PostingsAdvanced      int64 `json:"postings_advanced"`
	DocsSkipped           int64 `json:"docs_skipped"`
	BoundEvaluations      int64 `json:"bound_evaluations"`
	BlockBoundEvaluations int64 `json:"block_bound_evaluations"`
	BlocksDecoded         int64 `json:"blocks_decoded"`
	BlocksTotal           int64 `json:"blocks_total"`
	HeapPushes            int64 `json:"heap_pushes"`
	HeapEvictions         int64 `json:"heap_evictions"`
}

// EvalResponse carries a shard's top-k slice of the global ranking.
type EvalResponse struct {
	Results []WireResult   `json:"results"`
	Stats   *WireEvalStats `json:"stats,omitempty"`
}

// ShardService serves one shard of the corpus over RPC: the shard's
// slice of an index.Sharded partition, evaluated by the same package-
// internal machinery (flatten, buildScorer, searchDAAT/searchMaxScore)
// the in-process ShardedSearcher uses — which is what makes the
// distributed scores bit-identical to single-process sharding.
type ShardService struct {
	local     *Searcher
	shard     int
	numShards int
}

// NewShardService wraps shard `shard` of a `numShards`-way round-robin
// partition. ix must be the *index.Index produced by
// index.NewSharded(full, numShards).Shard(shard) — the same partition
// function the coordinator's parity baseline uses.
func NewShardService(ix *index.Index, shard, numShards int) *ShardService {
	if shard < 0 || shard >= numShards {
		panic(fmt.Sprintf("search: shard %d out of range of %d", shard, numShards))
	}
	return &ShardService{local: &Searcher{ix: ix}, shard: shard, numShards: numShards}
}

// Register installs the shard methods on srv.
func (svc *ShardService) Register(srv *rpc.Server) {
	srv.Handle(MethodInfo, svc.handleInfo)
	srv.Handle(MethodStats, svc.handleStats)
	srv.Handle(MethodEval, svc.handleEval)
}

func (svc *ShardService) handleInfo(ctx context.Context, body json.RawMessage) (any, error) {
	return InfoResponse{
		Shard:     svc.shard,
		NumShards: svc.numShards,
		NumDocs:   svc.local.ix.NumDocs(),
		TotalToks: svc.local.ix.TotalTokens(),
	}, nil
}

func (svc *ShardService) handleStats(ctx context.Context, body json.RawMessage) (any, error) {
	var req StatsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	q, err := DecodeNode(req.Query)
	if err != nil {
		return nil, err
	}
	var leaves []leaf
	svc.local.flatten(q, 1, &leaves)
	resp := StatsResponse{Leaves: make([]LeafStats, len(leaves))}
	for i := range leaves {
		resp.Leaves[i] = LeafStats{CF: leaves[i].cf, DF: leaves[i].df}
	}
	return resp, nil
}

func (svc *ShardService) handleEval(ctx context.Context, body json.RawMessage) (any, error) {
	var req EvalRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	q, err := DecodeNode(req.Query)
	if err != nil {
		return nil, err
	}
	if req.K <= 0 {
		return EvalResponse{}, nil
	}
	var leaves []leaf
	svc.local.flatten(q, 1, &leaves)
	if len(leaves) != len(req.Overrides) {
		// The coordinator derived the overrides from this query's flatten
		// on other shards; a count mismatch means this shard was built
		// against a different analyzer and scoring would be silently
		// wrong — same invariant as the in-process leaf-count check.
		return nil, fmt.Errorf("shard %d flattened %d leaves, coordinator supplied %d overrides",
			svc.shard, len(leaves), len(req.Overrides))
	}
	if len(leaves) == 0 {
		return EvalResponse{}, nil
	}
	for i := range leaves {
		o := req.Overrides[i]
		leaves[i].cf, leaves[i].df, leaves[i].collProb = o.CF, o.DF, o.CollProb
	}
	params := ModelParams{Mu: req.Mu, Lambda: req.Lambda, K1: req.K1, B: req.B}
	var avgDocLen float64
	if req.NumDocs > 0 {
		avgDocLen = float64(req.TotalToks) / float64(req.NumDocs)
	}
	cs := collStats{numDocs: float64(req.NumDocs), avgDocLen: avgDocLen}
	prepareLeaves(Model(req.Model), cs, leaves)
	score := buildScorer(Model(req.Model), params, cs)

	var sst *SearchStats
	if req.WantStats {
		sst = &SearchStats{}
	}
	// One pooled scratch per eval request, returned on every exit path.
	sc := getScratch()
	defer putScratch(sc)
	var res []Result
	if req.DisablePruning {
		res, err = searchDAAT(ctx, svc.local.ix, leaves, req.K, score, sst, sc)
	} else if pb := derivePruneBounds(Model(req.Model), params, cs, svc.local.ix.MinDocLen(), leaves, sc); !pruneWorthwhile(leaves, pb) {
		res, err = searchDAAT(ctx, svc.local.ix, leaves, req.K, score, sst, sc)
	} else {
		res, err = searchMaxScore(ctx, svc.local.ix, leaves, req.K, score, pb, sst, sc)
	}
	if err != nil {
		return nil, err
	}
	resp := EvalResponse{Results: make([]WireResult, len(res))}
	for i, r := range res {
		// Remap local→global exactly like index.Sharded.GlobalDoc.
		resp.Results[i] = WireResult{
			Doc:   int64(r.Doc)*int64(svc.numShards) + int64(svc.shard),
			Name:  r.Name,
			Score: r.Score,
		}
	}
	if sst != nil {
		resp.Stats = &WireEvalStats{
			CandidatesExamined:    sst.CandidatesExamined,
			PostingsAdvanced:      sst.PostingsAdvanced,
			DocsSkipped:           sst.DocsSkipped,
			BoundEvaluations:      sst.BoundEvaluations,
			BlockBoundEvaluations: sst.BlockBoundEvaluations,
			BlocksDecoded:         sst.BlocksDecoded,
			BlocksTotal:           sst.BlocksTotal,
			HeapPushes:            sst.HeapPushes,
			HeapEvictions:         sst.HeapEvictions,
		}
	}
	return resp, nil
}

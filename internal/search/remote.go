package search

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/index"
	"repro/internal/rpc"
)

// RemoteSharded is the coordinator side of shard-per-process serving:
// it evaluates structured queries across N shard servers (each a
// ShardService over one slice of an index.Sharded partition, fronted by
// a replica Group) and merges the per-shard top-k heaps into the final
// ranking.
//
// Scores are bit-identical to the in-process ShardedSearcher over the
// same corpus and shard count, because the search runs the same four
// phases with the same arithmetic — only the transport differs:
//
//	A (stats)  each shard flattens the tree locally and reports
//	           per-leaf {cf, df}; the coordinator sums them (integer
//	           and float sums in fixed shard order) and computes each
//	           leaf's collection probability with the global OOV floor
//	           — the same expressions index.Sharded.FloorProb uses.
//	B (eval)   each shard re-flattens, overrides its leaves with the
//	           global statistics, builds the scorer from the global
//	           document count and token total, evaluates its local
//	           DAAT/MaxScore top k, and remaps DocIDs to global.
//	merge      (score desc, global DocID asc), truncate to k — exactly
//	           the in-process phase 4.
//
// Degradation reuses PR 5's semantics verbatim where they apply:
//
//   - An eval-phase failure (timeout, refused connection, truncated
//     stream, server error) drops that shard from the merge under
//     opts.AllowPartial. The drop happens AFTER the global-stats
//     override, so the partial ranking is exactly the complete ranking
//     minus the dropped shards' documents — PR 5's exact-partial tier.
//   - A stats-phase failure (the shard never answered phase A, i.e. it
//     is dead, not slow) cannot leave the global sums intact. Under
//     AllowPartial the shard is excluded from the corpus entirely: the
//     surviving shards score against the surviving sub-corpus's
//     statistics. This weaker tier is still deterministic — it equals
//     single-process search over the surviving shards — and is
//     reported through the same PartialInfo fields with a
//     "stats phase:" error prefix.
//   - Parent-context cancellation is never degraded away, and a search
//     where every shard fails returns the first shard's error — both
//     exactly as in-process.
//
// Like ShardedSearcher, the configuration fields are read on every call
// and must not be mutated concurrently with searches.
type RemoteSharded struct {
	groups []*rpc.Group
	infos  []InfoResponse
	// Mu is the Dirichlet smoothing parameter; zero means DefaultMu.
	Mu float64
	// Model selects the retrieval function (default Dirichlet QL).
	Model Model
	// Params holds the other models' parameters.
	Params ModelParams
	// DisablePruning turns off MaxScore pruning in every shard server.
	DisablePruning bool
	// Sem, when non-nil, bounds the coordinator's fan-out goroutines
	// (shared with the engine's SQE_C pool; try-acquire only).
	Sem chan struct{}
}

// NewRemoteSharded performs the handshake against one replica group per
// shard: every group must answer shard.info with the expected shard
// index and shard count. The per-shard corpus totals are retained for
// the global statistics sums.
func NewRemoteSharded(ctx context.Context, groups []*rpc.Group) (*RemoteSharded, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("search: remote coordinator needs at least one shard group")
	}
	rs := &RemoteSharded{groups: groups, infos: make([]InfoResponse, len(groups))}
	for i, g := range groups {
		out, err := g.Call(ctx, MethodInfo, struct{}{}, func() any { return &InfoResponse{} })
		if err != nil {
			return nil, fmt.Errorf("search: shard %d handshake: %w", i, err)
		}
		info := *out.(*InfoResponse)
		if info.Shard != i || info.NumShards != len(groups) {
			return nil, fmt.Errorf("search: shard group %d serves shard %d/%d, want %d/%d",
				i, info.Shard, info.NumShards, i, len(groups))
		}
		rs.infos[i] = info
	}
	return rs, nil
}

// NumShards returns the shard count S.
func (rs *RemoteSharded) NumShards() int { return len(rs.groups) }

// Configure implements Distributed.
func (rs *RemoteSharded) Configure(cfg ShardConfig) {
	rs.Mu = cfg.Mu
	rs.Model = cfg.Model
	rs.Params = cfg.Params
	rs.DisablePruning = cfg.DisablePruning
	rs.Sem = cfg.Sem
}

// Close closes every shard group's clients.
func (rs *RemoteSharded) Close() {
	for _, g := range rs.groups {
		g.Close()
	}
}

// SearchContext implements Distributed.
func (rs *RemoteSharded) SearchContext(ctx context.Context, q Node, k int) ([]Result, error) {
	return rs.search(ctx, q, k, nil, nil, nil)
}

// SearchWithStatsContext implements Distributed.
func (rs *RemoteSharded) SearchWithStatsContext(ctx context.Context, q Node, k int) ([]Result, SearchStats, error) {
	var st SearchStats
	start := time.Now()
	res, err := rs.search(ctx, q, k, &st, nil, nil)
	st.Elapsed = time.Since(start)
	return res, st, err
}

// SearchDegraded implements Distributed.
func (rs *RemoteSharded) SearchDegraded(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, PartialInfo, error) {
	var pi PartialInfo
	res, err := rs.search(ctx, q, k, nil, &opts, &pi)
	return res, pi, err
}

// SearchDegradedWithStats implements Distributed.
func (rs *RemoteSharded) SearchDegradedWithStats(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, SearchStats, PartialInfo, error) {
	var st SearchStats
	var pi PartialInfo
	start := time.Now()
	res, err := rs.search(ctx, q, k, &st, &opts, &pi)
	st.Elapsed = time.Since(start)
	return res, st, pi, err
}

func (rs *RemoteSharded) resolveParams() ModelParams {
	params := rs.Params.withDefaults()
	if rs.Mu > 0 {
		params.Mu = rs.Mu
	}
	return params
}

// droppedByShard sorts a PartialInfo's parallel dropped-shard slices by
// shard index.
type droppedByShard struct{ pi *PartialInfo }

func (d droppedByShard) Len() int { return len(d.pi.DroppedShards) }
func (d droppedByShard) Less(i, j int) bool {
	return d.pi.DroppedShards[i] < d.pi.DroppedShards[j]
}
func (d droppedByShard) Swap(i, j int) {
	p := d.pi
	p.DroppedShards[i], p.DroppedShards[j] = p.DroppedShards[j], p.DroppedShards[i]
	p.ShardErrors[i], p.ShardErrors[j] = p.ShardErrors[j], p.ShardErrors[i]
}

// callOut is one shard RPC's outcome.
type callOut struct {
	out     any
	retries int
	err     error
}

// callShardDegraded drives one shard RPC with the degradation policy:
// per-attempt deadline (opts.ShardDeadline), bounded retry with linear
// backoff for transport failures (the methods are pure reads, so a
// retry after an ambiguous failure is safe). Application errors from
// the shard are deterministic and never retried. With nil opts it is a
// single attempt under the caller's context.
func callShardDegraded(ctx context.Context, opts *DegradeOptions, g *rpc.Group, method string, req any, newOut func() any) callOut {
	attempts := 1
	var backoff time.Duration
	if opts != nil {
		attempts += opts.MaxRetries
		backoff = opts.RetryBackoff
	}
	var co callOut
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			co.retries++
			if backoff > 0 {
				t := time.NewTimer(time.Duration(attempt) * backoff)
				select {
				case <-ctx.Done():
					t.Stop()
					co.err = ctx.Err()
					return co
				case <-t.C:
				}
			}
		}
		attemptCtx := ctx
		var cancel context.CancelFunc
		if opts != nil && opts.ShardDeadline > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, opts.ShardDeadline)
		}
		co.out, co.err = g.Call(attemptCtx, method, req, newOut)
		if cancel != nil {
			cancel()
		}
		if co.err == nil || !rpc.IsTransport(co.err) || ctx.Err() != nil {
			break
		}
	}
	return co
}

// search runs the two-phase distributed evaluation (see the type
// comment for the protocol and the degradation tiers).
func (rs *RemoteSharded) search(ctx context.Context, q Node, k int, st *SearchStats, opts *DegradeOptions, pi *PartialInfo) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(rs.groups)
	wq, err := EncodeNode(q)
	if err != nil {
		return nil, err
	}

	// Phase A: per-shard flatten + leaf statistics, in parallel.
	statsOuts := make([]callOut, n)
	fanOutShards(rs.Sem, n, func(i int) {
		statsOuts[i] = callShardDegraded(ctx, opts, rs.groups[i], MethodStats,
			StatsRequest{Query: wq}, func() any { return &StatsResponse{} })
	})
	if pi != nil {
		for i := range statsOuts {
			pi.Retries += statsOuts[i].retries
		}
	}
	// A shard that never answered phase A is dead (not merely slow) and
	// cannot contribute statistics; under AllowPartial it is excluded
	// from the corpus — the weaker degradation tier.
	alive := make([]bool, n)
	var firstErr error
	aliveCount := 0
	for i := range statsOuts {
		if statsOuts[i].err == nil {
			alive[i] = true
			aliveCount++
			continue
		}
		if opts == nil || !opts.AllowPartial || ctx.Err() != nil {
			return nil, statsOuts[i].err
		}
		if firstErr == nil {
			firstErr = statsOuts[i].err
		}
		if pi != nil {
			pi.DroppedShards = append(pi.DroppedShards, i)
			pi.ShardErrors = append(pi.ShardErrors, "stats phase: "+statsOuts[i].err.Error())
		}
	}
	if aliveCount == 0 {
		return nil, firstErr
	}

	// Leaf-count consistency across the answering shards: flatten is
	// structure-driven, so a divergence means a shard was built against
	// a different analyzer and scoring would be silently wrong.
	nLeaves := -1
	ref := -1
	for i := range statsOuts {
		if !alive[i] {
			continue
		}
		got := len(statsOuts[i].out.(*StatsResponse).Leaves)
		if nLeaves == -1 {
			nLeaves, ref = got, i
		} else if got != nLeaves {
			return nil, fmt.Errorf("search: shard %d flattened %d leaves, shard %d flattened %d", i, got, ref, nLeaves)
		}
	}
	if nLeaves == 0 {
		return nil, nil
	}
	if st != nil {
		st.Leaves = nLeaves
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Global statistics over the contributing shards. Sums run in fixed
	// shard order (the same order the in-process override loop uses), so
	// the float df sum — and everything downstream — is bit-identical
	// when every shard is alive.
	var numDocs int
	var totalToks int64
	for i := range rs.infos {
		if alive[i] {
			numDocs += rs.infos[i].NumDocs
			totalToks += rs.infos[i].TotalToks
		}
	}
	overrides := make([]LeafOverride, nLeaves)
	for li := 0; li < nLeaves; li++ {
		var cf int64
		var df float64
		for i := range statsOuts {
			if !alive[i] {
				continue
			}
			ls := statsOuts[i].out.(*StatsResponse).Leaves[li]
			cf += ls.CF
			df += ls.DF
		}
		// The global OOV floor, computed exactly as index.Sharded.FloorProb.
		var collProb float64
		switch {
		case totalToks == 0:
			collProb = 1e-12
		case cf <= 0:
			collProb = 0.5 / float64(totalToks)
		default:
			collProb = float64(cf) / float64(totalToks)
		}
		overrides[li] = LeafOverride{CF: cf, DF: df, CollProb: collProb}
	}

	// Phase B: per-shard evaluation under the global statistics.
	params := rs.resolveParams()
	evalReq := EvalRequest{
		Query:          wq,
		K:              k,
		Model:          int(rs.Model),
		Mu:             params.Mu,
		Lambda:         params.Lambda,
		K1:             params.K1,
		B:              params.B,
		DisablePruning: rs.DisablePruning,
		NumDocs:        numDocs,
		TotalToks:      totalToks,
		Overrides:      overrides,
		WantStats:      st != nil,
	}
	evalOuts := make([]callOut, n)
	var shardElapsed []time.Duration
	if st != nil {
		shardElapsed = make([]time.Duration, n)
	}
	fanOutShards(rs.Sem, n, func(i int) {
		if !alive[i] {
			return
		}
		start := time.Now()
		evalOuts[i] = callShardDegraded(ctx, opts, rs.groups[i], MethodEval,
			evalReq, func() any { return &EvalResponse{} })
		if st != nil {
			shardElapsed[i] = time.Since(start)
		}
	})
	if pi != nil {
		for i := range evalOuts {
			pi.Retries += evalOuts[i].retries
		}
	}

	// Eval failures drop shards AFTER the stats override — PR 5's
	// exact-partial tier.
	dropped := make([]bool, n)
	evalFailed := 0
	var firstEvalErr error
	for i := range evalOuts {
		if !alive[i] || evalOuts[i].err == nil {
			continue
		}
		if opts == nil || !opts.AllowPartial || ctx.Err() != nil {
			return nil, evalOuts[i].err
		}
		dropped[i] = true
		evalFailed++
		if firstEvalErr == nil {
			firstEvalErr = evalOuts[i].err
		}
		if pi != nil {
			pi.DroppedShards = append(pi.DroppedShards, i)
			pi.ShardErrors = append(pi.ShardErrors, evalOuts[i].err.Error())
		}
	}
	if evalFailed == aliveCount {
		// Nothing survived; a fully empty "partial" result would be
		// indistinguishable from a query matching nothing.
		return nil, firstEvalErr
	}
	if pi != nil && len(pi.DroppedShards) > 1 {
		// Stats-phase and eval-phase drops were appended per tier; the
		// PartialInfo contract lists dropped shards ascending.
		sort.Sort(droppedByShard{pi})
	}

	// Merge by the global result ordering and truncate — phase 4
	// verbatim. Shards answered with global DocIDs and resolved names.
	// Like the in-process coordinator, the merge runs in a pooled
	// backing; only the final ≤ k slice is copied out.
	msc := getScratch()
	defer putScratch(msc)
	all := msc.merged[:0]
	if st != nil {
		st.Shards = make([]ShardStats, n)
	}
	for i := range evalOuts {
		if !alive[i] || dropped[i] {
			continue
		}
		resp := evalOuts[i].out.(*EvalResponse)
		for _, wr := range resp.Results {
			all = append(all, Result{Doc: index.DocID(wr.Doc), Name: wr.Name, Score: wr.Score})
		}
		if st != nil && resp.Stats != nil {
			ws := resp.Stats
			st.CandidatesExamined += ws.CandidatesExamined
			st.PostingsAdvanced += ws.PostingsAdvanced
			st.DocsSkipped += ws.DocsSkipped
			st.BoundEvaluations += ws.BoundEvaluations
			st.BlockBoundEvaluations += ws.BlockBoundEvaluations
			st.BlocksDecoded += ws.BlocksDecoded
			st.BlocksTotal += ws.BlocksTotal
			st.HeapPushes += ws.HeapPushes
			st.HeapEvictions += ws.HeapEvictions
			st.Shards[i] = ShardStats{
				Elapsed:            shardElapsed[i],
				CandidatesExamined: ws.CandidatesExamined,
				PostingsAdvanced:   ws.PostingsAdvanced,
				DocsSkipped:        ws.DocsSkipped,
			}
		}
	}
	msc.merged = all
	sort.Sort(&resultSorter{all})
	if len(all) > k {
		all = all[:k]
	}
	if len(all) == 0 {
		return nil, nil
	}
	out := make([]Result, len(all))
	copy(out, all)
	return out, nil
}

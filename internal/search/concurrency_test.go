package search

import (
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/index"
)

// TestConcurrentSearches asserts the Searcher is safe for concurrent
// read-only use: many goroutines searching the same index must agree
// with the sequential results (run under -race in CI).
func TestConcurrentSearches(t *testing.T) {
	b := index.NewBuilder(analysis.Analyzer{})
	docs := []string{
		"cable car over the bay",
		"funicular climbs the hill",
		"cable railway museum",
		"harbor boats at dusk",
		"car factory cable assembly",
	}
	for i, d := range docs {
		b.Add("D"+string(rune('0'+i)), d)
	}
	s := NewSearcher(b.Build())
	queries := []Node{
		Term{Text: "cable"},
		Phrase{Terms: []string{"cable", "car"}},
		Combine(Term{Text: "cable"}, Term{Text: "funicular"}),
		Unordered{Terms: []string{"cable", "car"}, Width: 5},
	}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i] = s.Search(q, 10)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, q := range queries {
					got := s.Search(q, 10)
					if len(got) != len(want[i]) {
						t.Errorf("concurrent result count differs for query %d", i)
						return
					}
					for j := range got {
						if got[j].Name != want[i][j].Name {
							t.Errorf("concurrent ordering differs for query %d", i)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

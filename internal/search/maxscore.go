package search

import (
	"context"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/index"
)

// MaxScore-style score-safe dynamic pruning (Turtle & Flood 1995) for
// the document-at-a-time evaluator. The idea: once the top-k heap is
// full, its worst retained score θ is a floor every new result must
// beat. Each leaf carries a precomputed upper bound on how much it can
// add over its background (no-match) contribution; sorting leaves by
// that bound splits them into a "non-essential" prefix — whose bounds,
// plus the maximum background mass, sum below θ — and an "essential"
// rest. A document matching no essential leaf cannot reach θ, so the
// merge only draws candidates from essential cursors and gallops the
// non-essential ones forward, never scoring the skipped documents.
//
// The implementation is score-SAFE, meaning bit-identical to searchDAAT
// (asserted by differential and fuzz tests at every layer):
//
//   - Candidates that are scored go through the same code shape:
//     contributions summed over ALL leaves in original leaf order, so
//     float summation order — and thus every scored value — is
//     unchanged.
//   - Candidates are produced in ascending DocID order in both paths,
//     and only provably-losing documents are withheld; rejected offers
//     never mutate the heap, so the heap's state evolves identically.
//   - The skip test is strict (bound < θ) with a small relative slack
//     (see pruneSlack), so a document whose bound ties θ — which could
//     displace the heap root on the DocID tiebreak — is always scored.
//
// Two pruning mechanisms compose, both judged against θ:
//
//  1. Partition skipping: documents in no essential list are never even
//     enumerated — the merge draws candidates from essential cursors
//     only, and non-essential cursors gallop forward in bulk.
//  2. Candidate filtering: an enumerated candidate is bounded BEFORE
//     full scoring by its background mass (exact at its document length
//     when the model permits), the non-essential mass, and the EXACT
//     contributions of the essential leaves that actually match it —
//     their (tf, dl) already sit under the cursors, so evaluating them
//     costs one log per matching leaf against a full evaluation's one
//     per leaf. If that provably loses, the matching entries are
//     consumed and the document is never fully scored. Exactness is
//     what gives this test teeth: with whole-list upper bounds alone a
//     single essential match already implies bound ≥ prefix[ness] ≥ θ —
//     by construction of the partition — and nothing would ever be
//     filtered. An inconclusive first test refines in two tiers:
//     Block-Max (swap each non-essential whole-list bound for the bound
//     of the one ~128-posting block that could contain the candidate —
//     a block-directory lookup, no postings touched), then exact
//     (gallop the cursor and evaluate the real delta). Most rejections
//     resolve at the block tier, which is what lets the filter win even
//     for models whose whole-list bounds are loose.
//
// θ only rises, so the non-essential prefix only grows; the partition
// is recomputed just after threshold increases, and each filter check
// is counted in SearchStats.BoundEvaluations.
type pruneBounds struct {
	// ub[i] bounds leaf i's score delta over its background
	// contribution for ANY document in the index:
	//   ub[i] ≥ score(leaf i, tf, dl) − score(leaf i, 0, dl)  ∀ (tf, dl).
	// +Inf marks a leaf with no safe bound; it stays essential forever,
	// which degrades pruning but never safety.
	ub []float64
	// deltaExact evaluates one leaf's delta for a concrete (tf, dl) —
	// the same quantity ub[i] bounds, computed exactly. The candidate
	// filter uses it on matching essential leaves, whose (tf, dl) are
	// already under the cursors. It is exact for every leaf type (the
	// scorer needs nothing but tf and dl either), so it applies even to
	// leaves with no safe whole-list bound.
	deltaExact func(l *leaf, tf int32, dl float64) float64
	// bg bounds the total background mass: for every document,
	// Σ_i score(leaf i, 0, dl) ≤ bg. Zero for BM25 (no background).
	bg float64
	// Dirichlet's background is the one model-dependent piece the filter
	// can evaluate EXACTLY once a candidate's length is known:
	//   Σ_i w_i·log(μ·p_i/(dl+μ)) = bgConst − wSum·log(dl+μ)
	// with bgConst = Σ w_i·log(μ·p_i) and wSum = Σ w_i. exactBG marks
	// that decomposition as valid; other models use the constant bg
	// (already exact for Jelinek-Mercer, zero for BM25).
	exactBG       bool
	bgConst, wSum float64
	mu            float64
	// Block-Max metadata: blockUB[i][b] bounds leaf i's delta for any
	// document in its b-th postings block — the same derivation as ub[i]
	// applied to the block's own summary, so blockUB[i][b] ≤ ub[i] and
	// the candidate filter can swap a whole-list bound for the (much
	// tighter) bound of the one block that could hold the candidate
	// WITHOUT touching the postings. blockLast[i][b] is that block's last
	// document, the key blocks are located by. Both are nil for leaves
	// with no block summaries (empty or unbounded); the filter then keeps
	// the whole-list bound, which degrades pruning but never safety.
	//
	// The per-leaf arrays are built LAZILY, on a leaf's first tier-2
	// consultation (buildBlockBounds): essential leaves and leaves the
	// filter never reaches — most of them, on typical queries — never pay
	// the O(#blocks) construction, which profiling showed rivals the
	// whole filter's win on cheap-scoring models like BM25.
	blockUB   [][]float64
	blockLast [][]index.DocID
	// argmax maps a block or whole-list summary to the (tf, dl) at which
	// deltaExact attains the summary's maximum delta under this model;
	// retained from derivation for the lazy per-block builds. Nil on
	// hand-built bounds — block refinement then stays off.
	argmax func(b index.TermBounds) (int32, float64)
	// sc, when non-nil, supplies reusable row backings for the lazy
	// per-block builds (pooled scratch); nil falls back to allocating.
	sc *evalScratch
	// dlFree marks a model whose deltaExact ignores dl entirely
	// (Dirichlet: document length cancels out of the delta), letting the
	// per-leaf memo below key on tf alone.
	dlFree bool
	// Per-leaf one-entry memo of the filter's last deltaExact input and
	// output (memoTF[li] == -1: empty). Candidate term frequencies are
	// Zipfian — overwhelmingly 1 — so consecutive consultations of a
	// leaf repeat the same input, and reusing the previously computed
	// float for an equal input is bit-exact: deltaExact is pure. Nil on
	// hand-built or unpooled bounds; delta then always computes.
	memoTF  []int32
	memoDL  []float64
	memoVal []float64
}

// delta is deltaExact behind the per-leaf one-entry memo.
func (pb *pruneBounds) delta(l *leaf, li int, tf int32, dl float64) float64 {
	if pb.memoTF != nil && pb.memoTF[li] == tf && (pb.dlFree || pb.memoDL[li] == dl) {
		return pb.memoVal[li]
	}
	v := pb.deltaExact(l, tf, dl)
	if pb.memoTF != nil {
		pb.memoTF[li] = tf
		if !pb.dlFree {
			pb.memoDL[li] = dl
		}
		pb.memoVal[li] = v
	}
	return v
}

// buildBlockBounds fills blockUB[li]/blockLast[li] from leaf li's block
// summaries, or leaves them nil when the leaf has no usable blocks (no
// summaries, unbounded, or empty postings). Called once per consulted
// leaf; idempotence is the caller's job (searchMaxScore's built bitmap).
func (pb *pruneBounds) buildBlockBounds(l *leaf, li int) {
	if pb.argmax == nil || !l.bounded || l.bounds.MaxTF == 0 || len(l.blocks) == 0 {
		return
	}
	// Even a single-block list profits: the directory proves delta 0 for
	// any candidate past its last document.
	var ubs []float64
	var lasts []index.DocID
	if pb.sc != nil {
		ubs, lasts = pb.sc.blockRow(li, len(l.blocks))
	} else {
		ubs = make([]float64, len(l.blocks))
		lasts = make([]index.DocID, len(l.blocks))
	}
	// Consecutive blocks overwhelmingly share an argmax — under Zipfian
	// frequencies most blocks have MaxTF 1, and the Dirichlet argmax
	// ignores dl entirely — so a one-entry memo removes nearly all of
	// the per-block deltaExact (log) calls. Reusing the previously
	// computed float for equal inputs is bit-exact: deltaExact is pure.
	var memoTF int32
	var memoDL, memoUB float64
	memoOK := false
	for bi, bb := range l.blocks {
		lasts[bi] = bb.LastDoc
		if bb.MaxTF > 0 {
			btf, bdl := pb.argmax(bb.TermBounds)
			if !memoOK || btf != memoTF || bdl != memoDL {
				memoTF, memoDL = btf, bdl
				memoUB = pb.deltaExact(l, btf, bdl)
				memoOK = true
			}
			ubs[bi] = memoUB
		}
	}
	pb.blockUB[li], pb.blockLast[li] = ubs, lasts
}

// derivePruneBounds computes the per-leaf bounds for a model at query-
// compile time, mirroring buildScorer's model switch (including its
// "unknown models score as Dirichlet" default). Derivations and safety
// arguments are in DESIGN.md §5f; in brief:
//
//   - Dirichlet: the delta w·[log((tf+μp)/(dl+μ)) − log(μp/(dl+μ))]
//     collapses to w·log(1 + tf/(μp)) — document length cancels — so
//     MaxTF alone gives the exact per-leaf maximum. The background
//     w·log(μp/(dl+μ)) is maximised at the corpus-wide minimum
//     document length.
//   - Jelinek-Mercer: the delta w·log(1 + (1−λ)(tf/dl)/(λp)) is
//     monotone in tf/dl, so the stored (tf, dl) argmax-ratio pair gives
//     the exact maximum. The background w·log(λp) is constant.
//   - BM25: no background; the contribution increases in tf and
//     decreases in dl, so evaluating at (MaxTF, MinDL) bounds it. Note
//     the ratio pair is NOT safe here (tf saturates: a (1,1) posting
//     has the best ratio but a (100,200) posting scores higher), which
//     is why TermBounds carries MaxTF/MinDL separately.
//
// The whole-list ub[i] is deltaExact evaluated at the summary's argmax
// (Dirichlet: MaxTF; Jelinek-Mercer: the ratio pair; BM25: MaxTF at
// MinDL). For Dirichlet the background is additionally kept decomposed
// (bgConst, wSum) so the candidate filter can evaluate it exactly at a
// candidate's length; see pruneBounds.
//
// All weights are positive (flatten drops non-positive ones), which
// every "maximise each summand independently" step above relies on.
//
// sc, when non-nil, supplies the bounds struct and its array backings
// from pooled scratch (reset here); nil allocates fresh — the mode
// hand-built test bounds and one-shot callers use.
func derivePruneBounds(model Model, params ModelParams, cs collStats, minDocLen int32, leaves []leaf, sc *evalScratch) *pruneBounds {
	var pb *pruneBounds
	if sc != nil {
		pb = &sc.pb
		*pb = pruneBounds{
			ub:        grow(pb.ub, len(leaves)),
			blockUB:   grow(pb.blockUB, len(leaves)),
			blockLast: grow(pb.blockLast, len(leaves)),
			memoTF:    grow(pb.memoTF, len(leaves)),
			memoDL:    grow(pb.memoDL, len(leaves)),
			memoVal:   grow(pb.memoVal, len(leaves)),
			sc:        sc,
		}
		// The MaxTF == 0 case below leaves ub entries untouched and the
		// lazy block builder assumes unbuilt rows are nil: reused
		// backings must present as freshly made. memoTF -1 marks the
		// filter memo empty (no real tf is negative); memoDL/memoVal are
		// only read behind a matching memoTF.
		for i := range pb.ub {
			pb.ub[i] = 0
			pb.blockUB[i] = nil
			pb.blockLast[i] = nil
			pb.memoTF[i] = -1
		}
	} else {
		pb = &pruneBounds{ub: make([]float64, len(leaves))}
	}
	// argmax maps a whole-list summary to the (tf, dl) at which
	// deltaExact attains the list's maximum delta under this model.
	var argmax func(b index.TermBounds) (int32, float64)
	switch model {
	case ModelJelinekMercer:
		lambda := params.Lambda
		for i := range leaves {
			pb.bg += leaves[i].weight * math.Log(lambda*leaves[i].collProb)
		}
		pb.deltaExact = func(l *leaf, tf int32, dl float64) float64 {
			return l.weight * math.Log(1+(1-lambda)*(float64(tf)/dl)/(lambda*l.collProb))
		}
		argmax = func(b index.TermBounds) (int32, float64) {
			return b.MaxRatioTF, float64(b.MaxRatioDL)
		}
	case ModelBM25:
		k1, bp := params.K1, params.B
		avgdl := cs.avgDocLen
		if avgdl == 0 {
			avgdl = 1
		}
		pb.deltaExact = func(l *leaf, tf int32, dl float64) float64 {
			// l.idf was cached by prepareLeaves — the candidate filter
			// calls this per matching leaf, and recomputing the log here
			// used to dominate the filter's cost under BM25.
			t := float64(tf)
			return l.weight * l.idf * (t * (k1 + 1)) / (t + k1*(1-bp+bp*dl/avgdl))
		}
		argmax = func(b index.TermBounds) (int32, float64) {
			return b.MaxTF, float64(b.MinDL)
		}
	default: // Dirichlet, and whatever buildScorer scores as Dirichlet
		mu := params.Mu
		dlMin := float64(minDocLen)
		pb.exactBG = true
		pb.mu = mu
		for i := range leaves {
			l := &leaves[i]
			pb.bg += l.weight * math.Log(mu*l.collProb/(dlMin+mu))
			pb.bgConst += l.weight * math.Log(mu*l.collProb)
			pb.wSum += l.weight
		}
		pb.deltaExact = func(l *leaf, tf int32, dl float64) float64 {
			return l.weight * math.Log(1+float64(tf)/(mu*l.collProb))
		}
		pb.dlFree = true // the Dirichlet delta is dl-independent
		argmax = func(b index.TermBounds) (int32, float64) {
			return b.MaxTF, 1
		}
	}
	pb.argmax = argmax
	if sc == nil {
		pb.blockUB = make([][]float64, len(leaves))
		pb.blockLast = make([][]index.DocID, len(leaves))
	}
	for i := range leaves {
		l := &leaves[i]
		switch {
		case !l.bounded:
			pb.ub[i] = math.Inf(1)
		case l.bounds.MaxTF == 0:
			// Empty postings never match: delta is exactly 0.
		default:
			tf, dl := argmax(l.bounds)
			pb.ub[i] = pb.deltaExact(l, tf, dl)
			// Per-block bounds are NOT built here: buildBlockBounds runs
			// lazily on a leaf's first tier-2 consultation.
		}
	}
	return pb
}

// minPruneMass is the per-query postings mass below which the pruned
// evaluator cannot recoup its setup (partition sort, bound arrays,
// filter bookkeeping): at this size even scoring everything touches so
// few postings that searchDAAT wins outright.
const minPruneMass = 64

// minPruneLeaves is the leaf-count floor below which MaxScore falls
// back to exhaustive DAAT. The candidate filter's reject path costs a
// pass over the essential leaves plus bound bookkeeping — the same
// order of work as simply scoring the candidate when the query has only
// a handful of leaves. Measured on the benchmark corpora, raw keyword
// queries (2–5 leaves) run 1.4–1.9x SLOWER pruned than exhaustive for
// every model, while heavily expanded SQE queries (~30 leaves) win:
// with few leaves the ub partition cannot push enough mass into the
// non-essential set to pay for the filter. Eight is comfortably between
// the two regimes.
const minPruneLeaves = 8

// pruneWorthwhile is the cost-based evaluator choice: it predicts from
// the flattened leaves and their bound statistics whether MaxScore can
// beat exhaustive DAAT on this query, and falls back to DAAT when it
// cannot. The prediction is cheap and deliberately coarse — pruning is
// skipped only when it cannot help or measurably loses:
//
//   - a query with fewer than minPruneLeaves leaves cannot move enough
//     bound mass into the non-essential set for skipping to outrun the
//     filter's own per-candidate cost (a single leaf is the extreme:
//     everything essential, nothing ever skipped);
//   - a query whose total postings mass is tiny is cheaper to score
//     exhaustively than to sort and bound;
//   - leaves whose bounds are all infinite (no safe summary) or all
//     zero (every list empty) stay permanently essential, so the filter
//     never fires.
//
// Falling back changes counters only (DocsSkipped and the bound/block
// counters stay 0, PostingsAdvanced equals the full mass — exactly the
// accounting identity the differential tests assert); results are
// bit-identical on either path by the score-safety argument above.
func pruneWorthwhile(leaves []leaf, pb *pruneBounds) bool {
	if len(leaves) < minPruneLeaves {
		return false
	}
	var mass int64
	finite := false
	for i := range leaves {
		mass += int64(leaves[i].nPost)
		if pb.ub[i] > 0 && !math.IsInf(pb.ub[i], 1) {
			finite = true
		}
	}
	return finite && mass >= minPruneMass
}

// pruneSlack is the safety margin added to a bound before comparing it
// against the heap threshold. The bound arithmetic sums the same
// quantities as the scorer in a different order and form, so a bound
// can sit a few ulps below a score it is supposed to dominate; skipping
// demands the bound be below θ by clearly more than that noise. 1e-9
// relative is many orders of magnitude above the worst accumulated
// rounding of a few hundred double operations, and costs effectively
// nothing in pruning power (scores that close to θ are genuine
// contenders that must be evaluated anyway).
func pruneSlack(bound, threshold float64) float64 {
	s := math.Abs(bound)
	if t := math.Abs(threshold); t > s {
		s = t
	}
	return s * 1e-9
}

// searchMaxScore is searchDAAT with MaxScore pruning. Same contract and
// bit-identical results; see the file comment for the safety argument.
// sc is the caller's pooled scratch (pb normally lives inside it); nil
// self-acquires one for the call.
func searchMaxScore(ctx context.Context, ix *index.Index, leaves []leaf, k int, score scorer, pb *pruneBounds, st *SearchStats, sc *evalScratch) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	n := len(leaves)

	// order lists leaf indices by ascending bound (ties: leaf order);
	// prefix[m] = bg + Σ bounds of order[:m+1]; rank inverts order. The
	// first ness entries of order are the current non-essential set.
	// The comparator is a total order, so the (unstable) sort produces
	// one well-defined permutation.
	order := grow(sc.order, n)
	sc.order = order
	for i := range order {
		order[i] = i
	}
	sc.sorter = ubSorter{order: order, ub: pb.ub}
	sort.Sort(&sc.sorter)
	prefix := grow(sc.prefix, n)
	sc.prefix = prefix
	rank := grow(sc.rank, n)
	sc.rank = rank
	cum := pb.bg
	for m, li := range order {
		cum += pb.ub[li]
		prefix[m] = cum
		rank[li] = m
	}

	if pb.blockUB == nil || pb.blockLast == nil {
		// Hand-built bounds (tests, future callers): no block metadata,
		// the filter falls back to whole-list bounds everywhere.
		pb.blockUB = make([][]float64, n)
		pb.blockLast = make([][]index.DocID, n)
	}

	curs := sc.cursors(ix, leaves)
	curDoc := grow(sc.curDoc, n)
	sc.curDoc = curDoc
	// blockHint[i] is the block the candidate filter last located for
	// leaf i; candidates only ascend, so hints only move forward and the
	// directory walk is amortised O(#blocks) per leaf. candUB[i] is the
	// filter's current per-leaf contribution estimate for the candidate
	// under test (valid only for the entries the filter touched).
	// blockBuilt[i] records that leaf i's lazy per-block bounds were
	// constructed (possibly as "none usable" — blockUB[i] stays nil).
	blockHint := grow(sc.blockHint, n)
	sc.blockHint = blockHint
	candUB := grow(sc.candUB, n)
	sc.candUB = candUB
	blockBuilt := grow(sc.blockBuilt, n)
	sc.blockBuilt = blockBuilt
	for i := 0; i < n; i++ {
		blockHint[i] = 0
		blockBuilt[i] = false
	}
	// matched collects the essential leaves holding the candidate under
	// test, so a rejection can consume exactly those entries without a
	// second scan over the essential set.
	matched := sc.matched[:0]
	defer func() { sc.matched = matched[:0] }()
	next := exhausted
	for li := range curs {
		d := curs[li].Doc()
		curDoc[li] = d
		if d < next {
			next = d
		}
	}

	h := topK{docs: sc.heapDocs[:0], scores: sc.heapScores[:0], k: k}
	defer func() { sc.heapDocs, sc.heapScores = h.docs[:0], h.scores[:0] }()
	threshold := math.Inf(-1)
	ness := 0          // leaves order[:ness] are non-essential
	nonEssDelta := 0.0 // Σ bounds of order[:ness], maintained as ness grows
	var iters int64    // loop trips, for the cancellation cadence
	var advanced, cands, skipped, boundEvals, blockBoundEvals int64
	flushStats := func() {
		if st != nil {
			st.PostingsAdvanced += advanced
			st.CandidatesExamined += cands
			st.DocsSkipped += skipped
			st.BoundEvaluations += boundEvals
			st.BlockBoundEvaluations += blockBoundEvals
			for li := range curs {
				st.BlocksDecoded += curs[li].Decoded
				st.BlocksTotal += int64(curs[li].NumBlocks())
			}
		}
	}

	// canRangeSkip gates the block-range skip below: it needs a real
	// bound derivation (argmax) and every leaf safely bounded — one +Inf
	// bound makes every range bound +Inf, so attempts could never
	// succeed and would only burn directory walks.
	canRangeSkip := pb.argmax != nil
	for i := 0; canRangeSkip && i < n; i++ {
		if math.IsInf(pb.ub[i], 1) {
			canRangeSkip = false
		}
	}
	// Range-skip attempts are pure speculation: sound either way, but a
	// failed attempt costs a directory walk. Whether spans near the merge
	// frontier can lose against θ is a property of the whole query shape
	// (θ versus the sum of typical block bounds), so failures are heavily
	// autocorrelated. Exponential backoff — after f consecutive failed
	// calls, sit out 2^f-1 rejections — caps the waste at a vanishing
	// fraction of rejections on hopeless workloads while re-probing often
	// enough to catch a rising θ unlocking skips mid-query.
	rsFails := 0
	var rsWait int64
	// rangeSkip is the block-skipping heart of Block-Max MaxScore: called
	// after a rejected candidate, it bounds EVERY document in the span
	// (start, boundary] at once — bg plus, per leaf, the bound of the one
	// block that could hold a document of that span — where boundary is
	// the nearest block edge across the leaves. If the span provably
	// loses against θ, the essential cursors gallop straight past it and
	// no document in it is ever enumerated as a candidate; the loop then
	// tries the next span. Safety: a span document c matching leaf i
	// satisfies c ≥ max(start, curDoc[i]) and c ≤ boundary ≤ that leaf's
	// located block end, so c lies IN the located block and its delta is
	// ≤ that block's bound (leaves with no directory contribute their
	// whole-list ub; absent matches contribute 0 ≤ any bound). θ only
	// rises, so a span rejected now stays rejected. Returns whether any
	// cursor moved (callers reuse a precomputed frontier otherwise).
	rangeSkip := func(start index.DocID) bool {
		moved := false
		for {
			rb := pb.bg
			boundary := exhausted
			// Consult leaves in DESCENDING whole-list-bound order: on the
			// (common) failed attempt the running bound crosses θ within a
			// few leaves and the attempt exits without walking the rest of
			// the directories. rb only grows, so an early exit is sound.
			failed := false
			for oi := n - 1; oi >= 0; oi-- {
				li := order[oi]
				d := curDoc[li]
				if d == exhausted {
					continue // nothing left to match: contributes exactly 0
				}
				lo := start
				if d > lo {
					lo = d
				}
				if !blockBuilt[li] {
					blockBuilt[li] = true
					pb.buildBlockBounds(&leaves[li], li)
				}
				lasts := pb.blockLast[li]
				if lasts == nil {
					rb += pb.ub[li] // no directory: whole-list bound holds
				} else {
					bh := blockHint[li]
					for bh < len(lasts) && lasts[bh] < lo {
						bh++
					}
					blockHint[li] = bh
					blockBoundEvals++
					if bh == len(lasts) {
						continue // past the final block: never matches again
					}
					rb += pb.blockUB[li][bh]
					if lasts[bh] < boundary {
						boundary = lasts[bh]
					}
				}
				if !(rb+pruneSlack(rb, threshold) < threshold) {
					failed = true
					break
				}
			}
			boundEvals++
			if failed || boundary == exhausted {
				return moved
			}
			// Every document in (start-1, boundary] is beaten: gallop the
			// essential cursors past the span without enumerating it. A
			// streaming cursor consults its block directory here, so the
			// skipped-over blocks are never decoded.
			for _, li := range order[ness:] {
				if d := curDoc[li]; d != exhausted && d <= boundary {
					c := &curs[li]
					r0 := c.Rank()
					curDoc[li] = c.Advance(boundary + 1)
					skipped += int64(c.Rank() - r0)
					moved = true
				}
			}
			start = boundary + 1
		}
	}

	for next != exhausted {
		if iters%cancelCheckEvery == 0 {
			err := ctx.Err()
			if err == nil {
				err = fault.Check(fault.IndexPostings)
			}
			if err != nil {
				flushStats()
				return nil, err
			}
		}
		iters++
		doc := next
		dl := float64(ix.DocLen(doc))
		// Candidate filter: once the heap is full, bound this document's
		// best possible score — its background mass (evaluated exactly at
		// its length when the model permits), the non-essential mass, and
		// the EXACT contributions of the essential leaves that hold it,
		// whose (tf, dl) already sit under the cursors (essential cursors
		// are never behind the merge frontier, so curDoc==doc detects
		// every essential match). If that provably loses against θ, the
		// matching entries are consumed and the document is never fully
		// scored.
		if len(h.docs) == k {
			bound := pb.bg
			if pb.exactBG {
				bound = pb.bgConst - pb.wSum*math.Log(dl+pb.mu)
			}
			bound += nonEssDelta
			// One pass: sum the exact contributions of matching essential
			// leaves, remember them, and precompute the frontier a
			// rejection would leave behind (each match peeked one entry
			// ahead WITHOUT committing the advance). The peeked frontier is
			// valid as long as nothing else moves a cursor; tier 3 and a
			// successful range skip invalidate it (frontierStale).
			matched = matched[:0]
			pendingNext := exhausted
			frontierStale := false
			for _, li := range order[ness:] {
				d := curDoc[li]
				if d == doc {
					c := &curs[li]
					bound += pb.delta(&leaves[li], li, c.Freq(), dl)
					matched = append(matched, li)
					d = c.PeekNext()
				}
				if d < pendingNext {
					pendingNext = d
				}
			}
			boundEvals++
			// Tier 2 — Block-Max refinement: while the bound is
			// inconclusive, replace a non-essential leaf's whole-list
			// bound with the bound of the single block that could contain
			// this candidate, located through the block directory with the
			// leaf's monotone hint. No cursor moves and no postings rows
			// are touched — under an mmap'd v2 index the directory is the
			// only memory read. A cursor already at or past the candidate
			// is better still: its delta is exact (the posting sits under
			// the cursor, or provably absent). Every replacement can only
			// shrink the bound, so breaking out on a provable loss is safe.
			m := ness
			for bound+pruneSlack(bound, threshold) >= threshold && m > 0 {
				m--
				li := order[m]
				d := curDoc[li]
				val := pb.ub[li]
				switch {
				case d > doc:
					// The cursor passed doc without stopping: the candidate
					// is in none of this leaf's remaining postings.
					val = 0
				case d == doc:
					val = pb.delta(&leaves[li], li, curs[li].Freq(), dl)
				default:
					if !blockBuilt[li] {
						blockBuilt[li] = true
						pb.buildBlockBounds(&leaves[li], li)
					}
					if lasts := pb.blockLast[li]; lasts != nil {
						bh := blockHint[li]
						for bh < len(lasts) && lasts[bh] < doc {
							bh++
						}
						blockHint[li] = bh
						if bh < len(lasts) {
							val = pb.blockUB[li][bh]
						} else {
							val = 0 // past the final block: never matches again
						}
						blockBoundEvals++
					}
				}
				candUB[li] = val
				bound += val - pb.ub[li]
				boundEvals++
			}
			// Tier 3 — exact refinement: if the block bounds were not
			// decisive, replace them with exact contributions, galloping
			// each cursor to the candidate (a gallop the scoring loop
			// would perform anyway if the candidate survives). Leaves
			// whose tier-2 value is already exact — cursor at/past doc, or
			// the directory proved a zero delta — are skipped. The loop
			// ends when the candidate provably loses or the bound has
			// become its exact score: a genuine contender worth full
			// evaluation.
			for m2 := ness; bound+pruneSlack(bound, threshold) >= threshold && m2 > m; {
				m2--
				li := order[m2]
				if curDoc[li] >= doc || candUB[li] == 0 {
					continue
				}
				c := &curs[li]
				r0 := c.Rank()
				d := c.Advance(doc)
				skipped += int64(c.Rank() - r0)
				curDoc[li] = d
				bound -= candUB[li]
				if d == doc {
					bound += pb.delta(&leaves[li], li, c.Freq(), dl)
				}
				boundEvals++
			}
			if bound+pruneSlack(bound, threshold) < threshold {
				// Consume exactly the entries the filter pass matched (the
				// tiers moved only non-essential cursors, which never sit on
				// doc here and never feed the frontier).
				for _, li := range matched {
					curDoc[li] = curs[li].Next()
					advanced++
				}
				// With the rejected candidate consumed, try to disprove
				// whole spans before enumerating the next candidate.
				if canRangeSkip {
					if rsWait > 0 {
						rsWait--
					} else if rangeSkip(doc + 1) {
						frontierStale = true
						rsFails = 0
					} else {
						if rsFails < 6 {
							rsFails++
						}
						rsWait = 1<<rsFails - 1
					}
				}
				if frontierStale {
					pendingNext = exhausted
					for _, li := range order[ness:] {
						if d := curDoc[li]; d < pendingNext {
							pendingNext = d
						}
					}
				}
				next = pendingNext
				continue
			}
		}
		total := 0.0
		next = exhausted
		for li := range leaves {
			l := &leaves[li]
			d := curDoc[li]
			var tf int32
			if rank[li] < ness {
				// Non-essential: position on demand with a galloping
				// seek; the postings rows jumped over are documents this
				// leaf never scored — the work pruning saved.
				if d < doc {
					c := &curs[li]
					r0 := c.Rank()
					d = c.Advance(doc)
					skipped += int64(c.Rank() - r0)
					curDoc[li] = d
				}
				if d == doc {
					c := &curs[li]
					tf = c.Freq()
					curDoc[li] = c.Next()
					advanced++
				}
				// Contribute in leaf order like searchDAAT — but do not
				// let a non-essential cursor drive candidate selection.
				total += score(l, tf, dl)
				continue
			}
			// Essential: the same fused consume-and-advance as searchDAAT.
			if d == doc {
				c := &curs[li]
				tf = c.Freq()
				d = c.Next()
				curDoc[li] = d
				advanced++
			}
			total += score(l, tf, dl)
			if d < next {
				next = d
			}
		}
		cands++
		h.offer(doc, total, st)
		if len(h.docs) == k && h.scores[0] > threshold {
			threshold = h.scores[0]
			boundEvals++
			moved := false
			for ness < n {
				ub := prefix[ness]
				if !(ub+pruneSlack(ub, threshold) < threshold) {
					break
				}
				nonEssDelta += pb.ub[order[ness]]
				ness++
				moved = true
			}
			if moved {
				// Freshly demoted leaves stop driving candidate
				// selection; recompute the pending minimum over what is
				// still essential. (At most n such recomputations over
				// the whole evaluation — ness never shrinks.)
				next = exhausted
				for _, li := range order[ness:] {
					if curDoc[li] < next {
						next = curDoc[li]
					}
				}
			}
		}
	}
	// Postings left unconsumed on non-essential cursors were skipped
	// wholesale — searchDAAT would have advanced through every one.
	for li := range leaves {
		if rank[li] < ness {
			skipped += int64(curs[li].Len() - curs[li].Rank())
		}
	}
	flushStats()
	return h.drain(ix), nil
}

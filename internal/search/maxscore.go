package search

import (
	"context"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/index"
)

// MaxScore-style score-safe dynamic pruning (Turtle & Flood 1995) for
// the document-at-a-time evaluator. The idea: once the top-k heap is
// full, its worst retained score θ is a floor every new result must
// beat. Each leaf carries a precomputed upper bound on how much it can
// add over its background (no-match) contribution; sorting leaves by
// that bound splits them into a "non-essential" prefix — whose bounds,
// plus the maximum background mass, sum below θ — and an "essential"
// rest. A document matching no essential leaf cannot reach θ, so the
// merge only draws candidates from essential cursors and gallops the
// non-essential ones forward, never scoring the skipped documents.
//
// The implementation is score-SAFE, meaning bit-identical to searchDAAT
// (asserted by differential and fuzz tests at every layer):
//
//   - Candidates that are scored go through the same code shape:
//     contributions summed over ALL leaves in original leaf order, so
//     float summation order — and thus every scored value — is
//     unchanged.
//   - Candidates are produced in ascending DocID order in both paths,
//     and only provably-losing documents are withheld; rejected offers
//     never mutate the heap, so the heap's state evolves identically.
//   - The skip test is strict (bound < θ) with a small relative slack
//     (see pruneSlack), so a document whose bound ties θ — which could
//     displace the heap root on the DocID tiebreak — is always scored.
//
// Two pruning mechanisms compose, both judged against θ:
//
//  1. Partition skipping: documents in no essential list are never even
//     enumerated — the merge draws candidates from essential cursors
//     only, and non-essential cursors gallop forward in bulk.
//  2. Candidate filtering: an enumerated candidate is bounded BEFORE
//     full scoring by its background mass (exact at its document length
//     when the model permits), the non-essential mass, and the EXACT
//     contributions of the essential leaves that actually match it —
//     their (tf, dl) already sit under the cursors, so evaluating them
//     costs one log per matching leaf against a full evaluation's one
//     per leaf. If that provably loses, the matching entries are
//     consumed and the document is never fully scored. Exactness is
//     what gives this test teeth: with whole-list upper bounds alone a
//     single essential match already implies bound ≥ prefix[ness] ≥ θ —
//     by construction of the partition — and nothing would ever be
//     filtered.
//
// θ only rises, so the non-essential prefix only grows; the partition
// is recomputed just after threshold increases, and each filter check
// is counted in SearchStats.BoundEvaluations.
type pruneBounds struct {
	// ub[i] bounds leaf i's score delta over its background
	// contribution for ANY document in the index:
	//   ub[i] ≥ score(leaf i, tf, dl) − score(leaf i, 0, dl)  ∀ (tf, dl).
	// +Inf marks a leaf with no safe bound; it stays essential forever,
	// which degrades pruning but never safety.
	ub []float64
	// deltaExact evaluates one leaf's delta for a concrete (tf, dl) —
	// the same quantity ub[i] bounds, computed exactly. The candidate
	// filter uses it on matching essential leaves, whose (tf, dl) are
	// already under the cursors. It is exact for every leaf type (the
	// scorer needs nothing but tf and dl either), so it applies even to
	// leaves with no safe whole-list bound.
	deltaExact func(l *leaf, tf int32, dl float64) float64
	// bg bounds the total background mass: for every document,
	// Σ_i score(leaf i, 0, dl) ≤ bg. Zero for BM25 (no background).
	bg float64
	// Dirichlet's background is the one model-dependent piece the filter
	// can evaluate EXACTLY once a candidate's length is known:
	//   Σ_i w_i·log(μ·p_i/(dl+μ)) = bgConst − wSum·log(dl+μ)
	// with bgConst = Σ w_i·log(μ·p_i) and wSum = Σ w_i. exactBG marks
	// that decomposition as valid; other models use the constant bg
	// (already exact for Jelinek-Mercer, zero for BM25).
	exactBG       bool
	bgConst, wSum float64
	mu            float64
}

// derivePruneBounds computes the per-leaf bounds for a model at query-
// compile time, mirroring buildScorer's model switch (including its
// "unknown models score as Dirichlet" default). Derivations and safety
// arguments are in DESIGN.md §5f; in brief:
//
//   - Dirichlet: the delta w·[log((tf+μp)/(dl+μ)) − log(μp/(dl+μ))]
//     collapses to w·log(1 + tf/(μp)) — document length cancels — so
//     MaxTF alone gives the exact per-leaf maximum. The background
//     w·log(μp/(dl+μ)) is maximised at the corpus-wide minimum
//     document length.
//   - Jelinek-Mercer: the delta w·log(1 + (1−λ)(tf/dl)/(λp)) is
//     monotone in tf/dl, so the stored (tf, dl) argmax-ratio pair gives
//     the exact maximum. The background w·log(λp) is constant.
//   - BM25: no background; the contribution increases in tf and
//     decreases in dl, so evaluating at (MaxTF, MinDL) bounds it. Note
//     the ratio pair is NOT safe here (tf saturates: a (1,1) posting
//     has the best ratio but a (100,200) posting scores higher), which
//     is why TermBounds carries MaxTF/MinDL separately.
//
// The whole-list ub[i] is deltaExact evaluated at the summary's argmax
// (Dirichlet: MaxTF; Jelinek-Mercer: the ratio pair; BM25: MaxTF at
// MinDL). For Dirichlet the background is additionally kept decomposed
// (bgConst, wSum) so the candidate filter can evaluate it exactly at a
// candidate's length; see pruneBounds.
//
// All weights are positive (flatten drops non-positive ones), which
// every "maximise each summand independently" step above relies on.
func derivePruneBounds(model Model, params ModelParams, cs collStats, minDocLen int32, leaves []leaf) *pruneBounds {
	pb := &pruneBounds{ub: make([]float64, len(leaves))}
	// argmax maps a whole-list summary to the (tf, dl) at which
	// deltaExact attains the list's maximum delta under this model.
	var argmax func(b index.TermBounds) (int32, float64)
	switch model {
	case ModelJelinekMercer:
		lambda := params.Lambda
		for i := range leaves {
			pb.bg += leaves[i].weight * math.Log(lambda*leaves[i].collProb)
		}
		pb.deltaExact = func(l *leaf, tf int32, dl float64) float64 {
			return l.weight * math.Log(1+(1-lambda)*(float64(tf)/dl)/(lambda*l.collProb))
		}
		argmax = func(b index.TermBounds) (int32, float64) {
			return b.MaxRatioTF, float64(b.MaxRatioDL)
		}
	case ModelBM25:
		k1, bp := params.K1, params.B
		avgdl := cs.avgDocLen
		if avgdl == 0 {
			avgdl = 1
		}
		pb.deltaExact = func(l *leaf, tf int32, dl float64) float64 {
			idf := math.Log((cs.numDocs-l.df+0.5)/(l.df+0.5) + 1)
			t := float64(tf)
			return l.weight * idf * (t * (k1 + 1)) / (t + k1*(1-bp+bp*dl/avgdl))
		}
		argmax = func(b index.TermBounds) (int32, float64) {
			return b.MaxTF, float64(b.MinDL)
		}
	default: // Dirichlet, and whatever buildScorer scores as Dirichlet
		mu := params.Mu
		dlMin := float64(minDocLen)
		pb.exactBG = true
		pb.mu = mu
		for i := range leaves {
			l := &leaves[i]
			pb.bg += l.weight * math.Log(mu*l.collProb/(dlMin+mu))
			pb.bgConst += l.weight * math.Log(mu*l.collProb)
			pb.wSum += l.weight
		}
		pb.deltaExact = func(l *leaf, tf int32, dl float64) float64 {
			return l.weight * math.Log(1+float64(tf)/(mu*l.collProb))
		}
		argmax = func(b index.TermBounds) (int32, float64) {
			return b.MaxTF, 1 // the Dirichlet delta is dl-independent
		}
	}
	for i := range leaves {
		l := &leaves[i]
		switch {
		case !l.bounded:
			pb.ub[i] = math.Inf(1)
		case l.bounds.MaxTF == 0:
			// Empty postings never match: delta is exactly 0.
		default:
			tf, dl := argmax(l.bounds)
			pb.ub[i] = pb.deltaExact(l, tf, dl)
		}
	}
	return pb
}

// pruneSlack is the safety margin added to a bound before comparing it
// against the heap threshold. The bound arithmetic sums the same
// quantities as the scorer in a different order and form, so a bound
// can sit a few ulps below a score it is supposed to dominate; skipping
// demands the bound be below θ by clearly more than that noise. 1e-9
// relative is many orders of magnitude above the worst accumulated
// rounding of a few hundred double operations, and costs effectively
// nothing in pruning power (scores that close to θ are genuine
// contenders that must be evaluated anyway).
func pruneSlack(bound, threshold float64) float64 {
	s := math.Abs(bound)
	if t := math.Abs(threshold); t > s {
		s = t
	}
	return s * 1e-9
}

// searchMaxScore is searchDAAT with MaxScore pruning. Same contract and
// bit-identical results; see the file comment for the safety argument.
func searchMaxScore(ctx context.Context, ix *index.Index, leaves []leaf, k int, score scorer, pb *pruneBounds, st *SearchStats) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	n := len(leaves)

	// order lists leaf indices by ascending bound (ties: leaf order);
	// prefix[m] = bg + Σ bounds of order[:m+1]; rank inverts order. The
	// first ness entries of order are the current non-essential set.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if pb.ub[order[a]] != pb.ub[order[b]] {
			return pb.ub[order[a]] < pb.ub[order[b]]
		}
		return order[a] < order[b]
	})
	prefix := make([]float64, n)
	rank := make([]int, n)
	cum := pb.bg
	for m, li := range order {
		cum += pb.ub[li]
		prefix[m] = cum
		rank[li] = m
	}

	cur := make([]int, n)
	curDoc := make([]index.DocID, n)
	next := exhausted
	for li := range leaves {
		docs := leaves[li].postings.Docs
		if len(docs) == 0 {
			curDoc[li] = exhausted
			continue
		}
		curDoc[li] = docs[0]
		if docs[0] < next {
			next = docs[0]
		}
	}

	h := topK{docs: make([]index.DocID, 0, k), scores: make([]float64, 0, k), k: k}
	threshold := math.Inf(-1)
	ness := 0          // leaves order[:ness] are non-essential
	nonEssDelta := 0.0 // Σ bounds of order[:ness], maintained as ness grows
	var iters int64    // loop trips, for the cancellation cadence
	var advanced, cands, skipped, boundEvals int64
	flushStats := func() {
		if st != nil {
			st.PostingsAdvanced += advanced
			st.CandidatesExamined += cands
			st.DocsSkipped += skipped
			st.BoundEvaluations += boundEvals
		}
	}

	for next != exhausted {
		if iters%cancelCheckEvery == 0 {
			err := ctx.Err()
			if err == nil {
				err = fault.Check(fault.IndexPostings)
			}
			if err != nil {
				flushStats()
				return nil, err
			}
		}
		iters++
		doc := next
		dl := float64(ix.DocLen(doc))
		// Candidate filter: once the heap is full, bound this document's
		// best possible score — its background mass (evaluated exactly at
		// its length when the model permits), the non-essential mass, and
		// the EXACT contributions of the essential leaves that hold it,
		// whose (tf, dl) already sit under the cursors (essential cursors
		// are never behind the merge frontier, so curDoc==doc detects
		// every essential match). If that provably loses against θ, the
		// matching entries are consumed and the document is never fully
		// scored.
		if len(h.docs) == k {
			bound := pb.bg
			if pb.exactBG {
				bound = pb.bgConst - pb.wSum*math.Log(dl+pb.mu)
			}
			bound += nonEssDelta
			for _, li := range order[ness:] {
				if curDoc[li] == doc {
					l := &leaves[li]
					bound += pb.deltaExact(l, l.postings.Freqs[cur[li]], dl)
				}
			}
			boundEvals++
			// Progressive refinement: while the bound is inconclusive,
			// replace the largest non-essential upper bound still in it
			// with that leaf's exact contribution, galloping its cursor
			// to the candidate (a gallop the scoring loop would perform
			// anyway if the candidate survives). The loop ends when the
			// candidate provably loses or the bound has become its exact
			// score — a genuine contender worth full evaluation.
			for m := ness; bound+pruneSlack(bound, threshold) >= threshold && m > 0; {
				m--
				li := order[m]
				l := &leaves[li]
				d := curDoc[li]
				if d < doc {
					i := index.Advance(l.postings.Docs, cur[li], doc)
					skipped += int64(i - cur[li])
					cur[li] = i
					if i < len(l.postings.Docs) {
						d = l.postings.Docs[i]
					} else {
						d = exhausted
					}
					curDoc[li] = d
				}
				bound -= pb.ub[li]
				if d == doc {
					bound += pb.deltaExact(l, l.postings.Freqs[cur[li]], dl)
				}
				boundEvals++
			}
			if bound+pruneSlack(bound, threshold) < threshold {
				next = exhausted
				for _, li := range order[ness:] {
					d := curDoc[li]
					if d == doc {
						i := cur[li] + 1
						cur[li] = i
						if docs := leaves[li].postings.Docs; i < len(docs) {
							d = docs[i]
						} else {
							d = exhausted
						}
						curDoc[li] = d
						advanced++
					}
					if d < next {
						next = d
					}
				}
				continue
			}
		}
		total := 0.0
		next = exhausted
		for li := range leaves {
			l := &leaves[li]
			d := curDoc[li]
			var tf int32
			if rank[li] < ness {
				// Non-essential: position on demand with a galloping
				// seek; the postings rows jumped over are documents this
				// leaf never scored — the work pruning saved.
				if d < doc {
					i := index.Advance(l.postings.Docs, cur[li], doc)
					skipped += int64(i - cur[li])
					cur[li] = i
					if i < len(l.postings.Docs) {
						d = l.postings.Docs[i]
					} else {
						d = exhausted
					}
					curDoc[li] = d
				}
				if d == doc {
					i := cur[li]
					tf = l.postings.Freqs[i]
					i++
					cur[li] = i
					if i < len(l.postings.Docs) {
						curDoc[li] = l.postings.Docs[i]
					} else {
						curDoc[li] = exhausted
					}
					advanced++
				}
				// Contribute in leaf order like searchDAAT — but do not
				// let a non-essential cursor drive candidate selection.
				total += score(l, tf, dl)
				continue
			}
			// Essential: the same fused consume-and-advance as searchDAAT.
			if d == doc {
				i := cur[li]
				tf = l.postings.Freqs[i]
				i++
				cur[li] = i
				if i < len(l.postings.Docs) {
					d = l.postings.Docs[i]
				} else {
					d = exhausted
				}
				curDoc[li] = d
				advanced++
			}
			total += score(l, tf, dl)
			if d < next {
				next = d
			}
		}
		cands++
		h.offer(doc, total, st)
		if len(h.docs) == k && h.scores[0] > threshold {
			threshold = h.scores[0]
			boundEvals++
			moved := false
			for ness < n {
				ub := prefix[ness]
				if !(ub+pruneSlack(ub, threshold) < threshold) {
					break
				}
				nonEssDelta += pb.ub[order[ness]]
				ness++
				moved = true
			}
			if moved {
				// Freshly demoted leaves stop driving candidate
				// selection; recompute the pending minimum over what is
				// still essential. (At most n such recomputations over
				// the whole evaluation — ness never shrinks.)
				next = exhausted
				for _, li := range order[ness:] {
					if curDoc[li] < next {
						next = curDoc[li]
					}
				}
			}
		}
	}
	// Postings left unconsumed on non-essential cursors were skipped
	// wholesale — searchDAAT would have advanced through every one.
	for li := range leaves {
		if rank[li] < ness {
			skipped += int64(len(leaves[li].postings.Docs) - cur[li])
		}
	}
	flushStats()
	return h.drain(ix), nil
}

package search

import (
	"context"

	"repro/internal/fault"
	"repro/internal/index"
)

// exhausted is the sentinel document a drained cursor parks on; it
// compares above every real DocID, so the running minimum naturally
// ignores finished leaves.
const exhausted = index.DocEnd

// searchDAAT is the document-at-a-time evaluator: the leaves' postings
// cursors are merged in document order and every candidate goes through
// a bounded top-k min-heap instead of a full candidate map + sort. It
// visits exactly the union of the leaves' postings (the same candidate
// set the legacy scorer materialises) and sums leaf contributions in
// leaf order, so scores are bit-identical to the legacy path for every
// retrieval model.
//
// The merge is a single fused pass per candidate: each leaf's current
// document is cached in a flat slice, and while one candidate is being
// scored the minimum over the (possibly advanced) cached documents
// already determines the next candidate. Compared to searchLegacy this
// allocates O(leaves + k) instead of O(candidates · leaves), and
// resolves document names only for the k survivors.
//
// The loop checks ctx every cancelCheckEvery candidates so a serving
// deadline or a disconnected client abandons the evaluation instead of
// finishing a retrieval nobody will read; the cancelled call returns
// ctx.Err() and no results.
// searchDAAT is a free function over an explicit index so the sharded
// evaluator can drive it per shard with globally-statted leaves. sc is
// the caller's pooled scratch; nil self-acquires one for the call.
func searchDAAT(ctx context.Context, ix *index.Index, leaves []leaf, k int, score scorer, st *SearchStats, sc *evalScratch) ([]Result, error) {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	n := len(leaves)
	curs := sc.cursors(ix, leaves)
	curDoc := grow(sc.curDoc, n)
	sc.curDoc = curDoc
	next := exhausted
	for li := range curs {
		d := curs[li].Doc()
		curDoc[li] = d
		if d < next {
			next = d
		}
	}
	h := topK{docs: sc.heapDocs[:0], scores: sc.heapScores[:0], k: k}
	defer func() { sc.heapDocs, sc.heapScores = h.docs[:0], h.scores[:0] }()
	var advanced, cands int64
	flushStats := func() {
		if st != nil {
			st.PostingsAdvanced += advanced
			st.CandidatesExamined += cands
			for li := range curs {
				st.BlocksDecoded += curs[li].Decoded
				st.BlocksTotal += int64(curs[li].NumBlocks())
			}
		}
	}
	for next != exhausted {
		if cands%cancelCheckEvery == 0 {
			err := ctx.Err()
			if err == nil {
				err = fault.Check(fault.IndexPostings)
			}
			if err != nil {
				flushStats()
				return nil, err
			}
		}
		doc := next
		dl := float64(ix.DocLen(doc))
		total := 0.0
		next = exhausted
		for li := range leaves {
			d := curDoc[li]
			var tf int32
			if d == doc {
				c := &curs[li]
				tf = c.Freq()
				d = c.Next()
				curDoc[li] = d
				advanced++
			}
			// Every leaf contributes (non-matching leaves carry
			// background mass under the LM models), in leaf order — the
			// same summation order as the legacy scorer.
			total += score(&leaves[li], tf, dl)
			if d < next {
				next = d
			}
		}
		cands++
		h.offer(doc, total, st)
	}
	flushStats()
	return h.drain(ix), nil
}

// topK is a bounded min-heap keyed by the result ordering (score desc,
// DocID asc): the root is the *worst* retained result, so a new
// candidate either displaces the root or is rejected in O(1).
type topK struct {
	docs   []index.DocID
	scores []float64
	k      int
}

// worse reports whether entry i orders after (score desc, doc asc) the
// candidate (cs, cd) — i.e. the candidate would outrank it.
func (h *topK) worse(i int, cs float64, cd index.DocID) bool {
	if h.scores[i] != cs {
		return h.scores[i] < cs
	}
	return h.docs[i] > cd
}

// less orders heap entries worst-first.
func (h *topK) less(i, j int) bool { return h.worse(i, h.scores[j], h.docs[j]) }

func (h *topK) swap(i, j int) {
	h.docs[i], h.docs[j] = h.docs[j], h.docs[i]
	h.scores[i], h.scores[j] = h.scores[j], h.scores[i]
}

// offer considers one scored candidate.
func (h *topK) offer(doc index.DocID, score float64, st *SearchStats) {
	if len(h.docs) < h.k {
		h.docs = append(h.docs, doc)
		h.scores = append(h.scores, score)
		h.siftUp(len(h.docs) - 1)
		if st != nil {
			st.HeapPushes++
		}
		return
	}
	if !h.worse(0, score, doc) {
		return // candidate does not beat the current k-th best
	}
	h.docs[0], h.scores[0] = doc, score
	h.siftDown(0)
	if st != nil {
		st.HeapEvictions++
	}
}

func (h *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *topK) siftDown(i int) {
	n := len(h.docs)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}

// drain empties the heap into a descending-ranked result list, resolving
// document names only for the survivors.
func (h *topK) drain(ix *index.Index) []Result {
	n := len(h.docs)
	if n == 0 {
		return nil
	}
	out := make([]Result, n)
	for i := n - 1; i >= 0; i-- {
		doc, score := h.docs[0], h.scores[0]
		h.swap(0, len(h.docs)-1)
		h.docs = h.docs[:len(h.docs)-1]
		h.scores = h.scores[:len(h.scores)-1]
		h.siftDown(0)
		out[i] = Result{Doc: doc, Name: ix.DocName(doc), Score: score}
	}
	return out
}

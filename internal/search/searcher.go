package search

import (
	"context"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/index"
)

// DefaultMu is the Dirichlet smoothing parameter μ. 2500 is Indri's
// long-standing default and works well for short caption-style documents.
const DefaultMu = 2500

// Result is one ranked document.
type Result struct {
	Doc   index.DocID
	Name  string
	Score float64
}

// Searcher evaluates structured queries against an index.
type Searcher struct {
	ix *index.Index
	// Mu is the Dirichlet smoothing parameter; zero means DefaultMu.
	// Kept as a top-level field (rather than only Params.Mu) because it
	// is the one knob experiments sweep.
	Mu float64
	// Model selects the retrieval function (default Dirichlet QL).
	Model Model
	// Params holds the other models' parameters.
	Params ModelParams
	// UseLegacyScorer switches Search back to the map-accumulate-then-
	// sort evaluator that predates the document-at-a-time path. It is
	// retained as the reference oracle for differential tests and as an
	// escape hatch; results are identical either way.
	UseLegacyScorer bool
	// DisablePruning turns off MaxScore-style dynamic pruning and scores
	// every candidate (the PR-1 DAAT behaviour). Pruning is score-safe —
	// rankings and scores are bit-identical either way (see maxscore.go)
	// — so the switch exists for debugging, for the full-evaluation side
	// of benchmarks, and for tests that assert exhaustive-path counters.
	DisablePruning bool
	// forcePrune bypasses the cost-based evaluator choice and runs
	// MaxScore whenever pruning is enabled at all. Test-only: the
	// differential suites exercise the pruned evaluator on corpora and
	// queries the cost model would (correctly) route to DAAT.
	forcePrune bool
	// DisableStreaming makes term leaves of a v2-backed index
	// materialise their whole postings row up front (the pre-streaming
	// behaviour) instead of decoding block-by-block through a streaming
	// cursor. Results are bit-identical either way; the switch exists
	// for the eager side of benchmarks and for differential tests.
	DisableStreaming bool
}

// NewSearcher returns a Searcher over ix with the default μ.
func NewSearcher(ix *index.Index) *Searcher { return &Searcher{ix: ix, Mu: DefaultMu} }

// Index returns the underlying index.
func (s *Searcher) Index() *index.Index { return s.ix }

// leaf is a flattened query leaf: its postings, its collection
// statistics and its accumulated (normalised, multiplied-through)
// weight. cf (collection frequency) and df (document frequency) default
// to the index the leaf was flattened against; the sharded evaluator
// overrides them — and collProb — with global cross-shard sums so every
// shard scores with identical collection statistics.
type leaf struct {
	weight   float64
	postings index.Postings
	collProb float64
	cf       int64
	df       float64
	// bounds summarises the postings for score-bound derivation: term
	// leaves read the index's precomputed metadata, phrase/window leaves
	// summarise their materialised postings, so positional bounds are
	// just as tight. bounded=false marks a leaf with no safe summary;
	// the pruned evaluator gives it an infinite upper bound, keeping it
	// permanently essential (full evaluation), which preserves safety
	// for any future leaf type that cannot produce one.
	bounds  index.TermBounds
	bounded bool
	// blocks are the Block-Max summaries of the postings, one per fixed-
	// size block in posting order (nil for empty leaves). Same sourcing
	// split as bounds: term leaves share the index's metadata (which a v2
	// file carries precomputed in its block directory), positional leaves
	// summarise their materialised postings.
	blocks []index.BlockBounds
	// idf caches BM25's per-leaf inverse document frequency so the hot
	// scoring and bound paths do not recompute the log per posting. It is
	// filled by prepareLeaves AFTER any collection-statistics override
	// (the sharded evaluators rewrite df first); zero for other models.
	idf float64
	// stream marks a term leaf of a v2-backed index that the evaluators
	// walk through a streaming block cursor instead of a materialised
	// postings row: postings stays empty and streamID names the term.
	// Paths that need the real row (legacy oracle, ScoreDoc, Explain)
	// convert via materializeLeaves first.
	stream   bool
	streamID int32
	// nPost is the leaf's postings count independent of materialisation
	// (len(postings.Docs) for materialised leaves, the stored df for
	// streaming ones) — what cost decisions consult instead of touching
	// rows.
	nPost int
}

// flatten walks the query tree multiplying normalised weights down to the
// leaves. Empty leaves are kept (they contribute only background mass) —
// dropping them would change ranking between two queries that differ in
// an OOV term, which matters for the QL baselines.
func (s *Searcher) flatten(n Node, w float64, out *[]leaf) {
	if w <= 0 {
		return
	}
	switch x := n.(type) {
	case Term:
		if x.Text == "" {
			return
		}
		if !s.DisableStreaming {
			if id, ok := s.ix.StreamableTerm(x.Text); ok {
				// v2-backed term leaf: stats and bounds come from the
				// stored (Open-cross-validated) metadata; the postings
				// stay on disk until a block cursor touches them.
				*out = append(*out, newStreamLeaf(s.ix, w, id))
				return
			}
		}
		var p index.Postings
		var b index.TermBounds
		var bb []index.BlockBounds
		if pp := s.ix.PostingsFor(x.Text); pp != nil {
			p = *pp
			b, _ = s.ix.BoundsFor(x.Text)
			bb, _ = s.ix.BlockBoundsFor(x.Text)
		}
		*out = append(*out, newLeaf(s.ix, w, p, b, bb))
	case Phrase:
		if len(x.Terms) == 0 {
			return
		}
		p := s.ix.PhrasePostings(x.Terms)
		*out = append(*out, newLeaf(s.ix, w, p, s.ix.PostingsBounds(&p), s.ix.PostingsBlockBounds(&p)))
	case Unordered:
		if len(x.Terms) == 0 {
			return
		}
		p := s.ix.UnorderedWindowPostings(x.Terms, x.Width)
		*out = append(*out, newLeaf(s.ix, w, p, s.ix.PostingsBounds(&p), s.ix.PostingsBlockBounds(&p)))
	case Weighted:
		var total float64
		for _, c := range x.Children {
			if c.Weight > 0 && !IsEmpty(c.Node) {
				total += c.Weight
			}
		}
		if total <= 0 {
			return
		}
		for _, c := range x.Children {
			if c.Weight > 0 && !IsEmpty(c.Node) {
				s.flatten(c.Node, w*c.Weight/total, out)
			}
		}
	}
}

// newLeaf fills a leaf's collection statistics from the index it was
// flattened against.
func newLeaf(ix *index.Index, w float64, p index.Postings, b index.TermBounds, bb []index.BlockBounds) leaf {
	cf := p.CollectionFreq()
	return leaf{
		weight:   w,
		postings: p,
		collProb: ix.FloorProb(cf),
		cf:       cf,
		df:       float64(len(p.Docs)),
		bounds:   b,
		bounded:  true,
		blocks:   bb,
		nPost:    len(p.Docs),
	}
}

// newStreamLeaf builds a streaming term leaf from the stored metadata
// of a v2-backed index — no postings are decoded here.
func newStreamLeaf(ix *index.Index, w float64, id int32) leaf {
	df, cf := ix.StoredTermStats(id)
	b, bb := ix.StoredTermBounds(id)
	return leaf{
		weight:   w,
		collProb: ix.FloorProb(cf),
		cf:       cf,
		df:       float64(df),
		bounds:   b,
		bounded:  true,
		blocks:   bb,
		stream:   true,
		streamID: id,
		nPost:    df,
	}
}

// materializeLeaves converts streaming leaves into materialised ones in
// place, for the paths that walk postings rows directly (the legacy
// oracle, ScoreDoc, Explain).
func (s *Searcher) materializeLeaves(leaves []leaf) {
	for li := range leaves {
		l := &leaves[li]
		if !l.stream {
			continue
		}
		if p := s.ix.PostingsByID(l.streamID); p != nil {
			l.postings = *p
		}
		l.stream = false
	}
}

// Search scores the query and returns the top k documents ordered by
// descending score; ties break on ascending DocID so results are
// deterministic. Only documents containing at least one query leaf are
// ranked (standard practice in LM retrieval engines: documents matching
// nothing carry only background mass and sort below every match of the
// best leaf in all but degenerate cases).
//
// The default evaluator is document-at-a-time (see searchDAAT); the
// pre-DAAT evaluator remains available via UseLegacyScorer and produces
// identical rankings and scores.
//
// Search never fails; it is a thin wrapper over SearchContext with a
// background context.
func (s *Searcher) Search(q Node, k int) []Result {
	res, _ := s.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext is Search under a context: the evaluator checks ctx
// periodically (every cancelCheckEvery candidates) and abandons the
// evaluation with ctx.Err() once the deadline passes or the caller
// cancels. This is the primary retrieval entry point; the context-free
// Search delegates here.
func (s *Searcher) SearchContext(ctx context.Context, q Node, k int) ([]Result, error) {
	return s.search(ctx, q, k, nil)
}

// SearchWithStats is Search plus per-query instrumentation: candidate,
// postings and heap counters, and the evaluation wall-clock.
func (s *Searcher) SearchWithStats(q Node, k int) ([]Result, SearchStats) {
	res, st, _ := s.SearchWithStatsContext(context.Background(), q, k)
	return res, st
}

// SearchWithStatsContext is SearchContext plus instrumentation. On
// cancellation the counters cover the work done up to the abort point.
func (s *Searcher) SearchWithStatsContext(ctx context.Context, q Node, k int) ([]Result, SearchStats, error) {
	var st SearchStats
	start := time.Now()
	res, err := s.search(ctx, q, k, &st)
	st.Elapsed = time.Since(start)
	return res, st, err
}

// cancelCheckEvery is how many candidates the evaluators score between
// context checks. Checking costs one atomic load; at this granularity it
// is invisible next to scoring while still bounding the cancellation
// latency to a few hundred microseconds on any realistic index.
const cancelCheckEvery = 4096

func (s *Searcher) search(ctx context.Context, q Node, k int, st *SearchStats) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// One pooled scratch covers the whole evaluation — leaf vector,
	// cursors, bounds, heap — and goes back on every exit path (the
	// defer) including cancellation.
	sc := getScratch()
	defer putScratch(sc)
	leaves := sc.leaves[:0]
	s.flatten(q, 1, &leaves)
	sc.leaves = leaves
	if len(leaves) == 0 {
		return nil, nil
	}
	if st != nil {
		st.Leaves = len(leaves)
	}
	// Flattening materialises phrase/window postings, which can be the
	// bulk of the work for heavily expanded queries; re-check before the
	// evaluation loop starts.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := s.resolveParams()
	cs := collStats{numDocs: float64(s.ix.NumDocs()), avgDocLen: s.ix.AvgDocLen()}
	prepareLeaves(s.Model, cs, leaves)
	score := buildScorer(s.Model, params, cs)
	if s.UseLegacyScorer {
		s.materializeLeaves(leaves)
		return s.searchLegacy(ctx, leaves, k, score, st)
	}
	if s.DisablePruning {
		return searchDAAT(ctx, s.ix, leaves, k, score, st, sc)
	}
	pb := derivePruneBounds(s.Model, params, cs, s.ix.MinDocLen(), leaves, sc)
	if !s.forcePrune && !pruneWorthwhile(leaves, pb) {
		return searchDAAT(ctx, s.ix, leaves, k, score, st, sc)
	}
	return searchMaxScore(ctx, s.ix, leaves, k, score, pb, st, sc)
}

// searchLegacy is the original term-at-a-time evaluator: accumulate a
// per-candidate tf vector in a map, score every candidate, fully sort.
// Kept as the reference oracle for the DAAT differential tests.
func (s *Searcher) searchLegacy(ctx context.Context, leaves []leaf, k int, score scorer, st *SearchStats) ([]Result, error) {
	// Per-candidate term frequencies, leaf-major.
	type cand struct {
		tfs []int32
	}
	cands := make(map[index.DocID]*cand)
	for li := range leaves {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		l := &leaves[li]
		for pi, doc := range l.postings.Docs {
			c, ok := cands[doc]
			if !ok {
				c = &cand{tfs: make([]int32, len(leaves))}
				cands[doc] = c
			}
			c.tfs[li] = l.postings.Freqs[pi]
			if st != nil {
				st.PostingsAdvanced++
			}
		}
	}
	if st != nil {
		st.CandidatesExamined = int64(len(cands))
	}
	results := make([]Result, 0, len(cands))
	scored := 0
	for doc, c := range cands {
		if scored%cancelCheckEvery == 0 {
			err := ctx.Err()
			if err == nil {
				err = fault.Check(fault.IndexPostings)
			}
			if err != nil {
				return nil, err
			}
		}
		scored++
		dl := float64(s.ix.DocLen(doc))
		total := 0.0
		for li := range leaves {
			total += score(&leaves[li], c.tfs[li], dl)
		}
		results = append(results, Result{Doc: doc, Name: s.ix.DocName(doc), Score: total})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Doc < results[j].Doc
	})
	if len(results) > k {
		results = results[:k]
	}
	return results, nil
}

// ScoreDoc computes the query-likelihood score of a single document; used
// by the relevance-model PRF, which needs P(Q|D) for the feedback set.
func (s *Searcher) ScoreDoc(q Node, doc index.DocID) float64 {
	var leaves []leaf
	s.flatten(q, 1, &leaves)
	s.materializeLeaves(leaves)
	cs := collStats{numDocs: float64(s.ix.NumDocs()), avgDocLen: s.ix.AvgDocLen()}
	prepareLeaves(s.Model, cs, leaves)
	score := buildScorer(s.Model, s.resolveParams(), cs)
	dl := float64(s.ix.DocLen(doc))
	total := 0.0
	for li := range leaves {
		l := &leaves[li]
		tf := int32(0)
		if i := findDoc(l.postings.Docs, doc); i >= 0 {
			tf = l.postings.Freqs[i]
		}
		total += score(l, tf, dl)
	}
	return total
}

// findDoc binary-searches a sorted doc list, returning the row index or
// -1.
func findDoc(docs []index.DocID, doc index.DocID) int {
	lo, hi := 0, len(docs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if docs[mid] < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(docs) && docs[lo] == doc {
		return lo
	}
	return -1
}

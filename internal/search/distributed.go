package search

import (
	"context"
	"sync"
)

// ShardConfig is the retrieval configuration an Engine mirrors onto its
// sharded searcher at construction (the engine owns the knobs; the
// searcher applies them).
type ShardConfig struct {
	// Mu is the Dirichlet smoothing parameter; zero means DefaultMu.
	Mu float64
	// Model selects the retrieval function.
	Model Model
	// Params holds the other models' parameters.
	Params ModelParams
	// DisablePruning turns off MaxScore pruning in every shard.
	DisablePruning bool
	// Sem, when non-nil, bounds extra fan-out goroutines (in-process
	// sharding) — see ShardedSearcher.Sem. The RPC-backed coordinator
	// also uses it to bound its fan-out goroutines.
	Sem chan struct{}
}

// Distributed is the engine-facing contract of sharded retrieval,
// satisfied by both the in-process ShardedSearcher and the RPC-backed
// RemoteSharded coordinator. The two implementations return
// bit-identical rankings over the same corpus and shard count — the
// parity tests and `make distributed-smoke` enforce it.
type Distributed interface {
	// NumShards returns the shard count S.
	NumShards() int
	// Configure applies the engine's retrieval configuration. Called
	// once at engine construction, before any searches.
	Configure(cfg ShardConfig)
	// SearchContext returns the global top k (score desc, DocID asc).
	SearchContext(ctx context.Context, q Node, k int) ([]Result, error)
	// SearchWithStatsContext is SearchContext plus instrumentation.
	SearchWithStatsContext(ctx context.Context, q Node, k int) ([]Result, SearchStats, error)
	// SearchDegraded adds graceful degradation (see DegradeOptions).
	SearchDegraded(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, PartialInfo, error)
	// SearchDegradedWithStats is SearchDegraded plus instrumentation.
	SearchDegradedWithStats(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, SearchStats, PartialInfo, error)
}

// NumShards returns the shard count S.
func (ss *ShardedSearcher) NumShards() int { return ss.sh.NumShards() }

// Configure implements Distributed.
func (ss *ShardedSearcher) Configure(cfg ShardConfig) {
	ss.Mu = cfg.Mu
	ss.Model = cfg.Model
	ss.Params = cfg.Params
	ss.DisablePruning = cfg.DisablePruning
	ss.Sem = cfg.Sem
}

// fanOutShards runs f(0..n-1), using extra goroutines where the
// semaphore (if any) has free slots and the caller's goroutine
// otherwise. It never blocks on the semaphore: when the pool is
// saturated the shard runs inline, so a caller that already holds a
// slot can always finish — sharing the semaphore cannot deadlock.
// Shard 0 always runs on the caller's goroutine, after the others have
// been launched.
func fanOutShards(sem chan struct{}, n int, f func(i int)) {
	if n == 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		if sem == nil {
			wg.Add(1)
			go func(i int) { defer wg.Done(); f(i) }(i)
			continue
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				f(i)
			}(i)
		default:
			f(i)
		}
	}
	f(0)
	wg.Wait()
}

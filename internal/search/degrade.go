package search

import (
	"context"
	"runtime/debug"
	"time"

	"repro/internal/fault"
)

// DegradeOptions configures graceful degradation for sharded retrieval.
// The zero value disables every mechanism, reproducing the strict
// all-or-nothing behaviour of SearchContext.
type DegradeOptions struct {
	// AllowPartial merges the surviving shards' results when some shards
	// fail (error, panic, or per-shard deadline), instead of failing the
	// whole query. Parent-context cancellation is never degraded away:
	// if the caller's ctx is done, the search fails with ctx.Err()
	// regardless of this setting.
	AllowPartial bool
	// ShardDeadline bounds each shard's evaluation (0 = no per-shard
	// deadline). A shard that exceeds it is treated like a failed shard:
	// dropped under AllowPartial, fatal otherwise.
	ShardDeadline time.Duration
	// MaxRetries re-runs a shard evaluation that failed with a transient
	// fault (fault.IsTransient) up to this many extra times before
	// declaring the shard failed.
	MaxRetries int
	// RetryBackoff is the base delay between retry attempts; attempt i
	// waits i×RetryBackoff (linear backoff, bounded by MaxRetries).
	RetryBackoff time.Duration
}

// PartialInfo reports what degradation did to one search.
type PartialInfo struct {
	// DroppedShards lists the shards whose results are missing from the
	// merge, ascending.
	DroppedShards []int
	// ShardErrors[i] is the failure that dropped DroppedShards[i].
	ShardErrors []string
	// Retries counts shard evaluation re-runs after transient faults
	// (successful or not).
	Retries int
}

// Degraded reports whether any shard was dropped.
func (p *PartialInfo) Degraded() bool { return p != nil && len(p.DroppedShards) > 0 }

// SearchDegraded is SearchContext with graceful degradation: per-shard
// deadlines, transient-fault retries, and — under opts.AllowPartial —
// partial merges that drop failed shards instead of failing the query.
//
// The partial merge is exact on what remains: shards fail or survive
// phase 3 (evaluation) only, after the cross-shard statistics override,
// so every surviving shard scored with the full global statistics and
// the degraded ranking is precisely the complete ranking minus the
// dropped shards' documents. A search where every shard fails returns
// the first shard's error.
func (ss *ShardedSearcher) SearchDegraded(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, PartialInfo, error) {
	var pi PartialInfo
	res, err := ss.search(ctx, q, k, nil, &opts, &pi)
	return res, pi, err
}

// SearchDegradedWithStats is SearchDegraded plus instrumentation.
// Dropped shards still report the counters for the work they did before
// failing.
func (ss *ShardedSearcher) SearchDegradedWithStats(ctx context.Context, q Node, k int, opts DegradeOptions) ([]Result, SearchStats, PartialInfo, error) {
	var st SearchStats
	var pi PartialInfo
	start := time.Now()
	res, err := ss.search(ctx, q, k, &st, &opts, &pi)
	st.Elapsed = time.Since(start)
	return res, st, pi, err
}

// evalShardGuarded runs one shard evaluation attempt with the fault
// hook and panic containment. Shard evaluations run on worker
// goroutines, where an uncaught panic — injected or genuine — would
// kill the process before any engine-level recovery could run, so the
// recover here is unconditional, not gated on degradation being
// enabled.
func evalShardGuarded(eval func() ([]Result, error)) (res []Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fault.AsPanicError(v, debug.Stack())
		}
	}()
	if err := fault.Check(fault.ShardEval); err != nil {
		return nil, err
	}
	return eval()
}

// evalShardDegraded is the per-shard driver for phase 3: it applies the
// per-shard deadline and retries transient faults with linear backoff.
// With nil opts it degenerates to a single guarded attempt under the
// caller's context. retries reports how many re-runs happened; shards
// run concurrently, so the caller sums the per-shard counts after the
// fan-out instead of sharing a counter.
func evalShardDegraded(ctx context.Context, opts *DegradeOptions, eval func(ctx context.Context) ([]Result, error)) (res []Result, retries int, err error) {
	attempts := 1
	var backoff time.Duration
	if opts != nil {
		attempts += opts.MaxRetries
		backoff = opts.RetryBackoff
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			retries++
			if backoff > 0 {
				t := time.NewTimer(time.Duration(attempt) * backoff)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, retries, ctx.Err()
				case <-t.C:
				}
			}
		}
		attemptCtx := ctx
		var cancel context.CancelFunc
		if opts != nil && opts.ShardDeadline > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, opts.ShardDeadline)
		}
		res, err = evalShardGuarded(func() ([]Result, error) { return eval(attemptCtx) })
		if cancel != nil {
			cancel()
		}
		if err == nil || !fault.IsTransient(err) || ctx.Err() != nil {
			break
		}
	}
	return res, retries, err
}

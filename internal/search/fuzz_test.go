package search

import (
	"testing"

	"repro/internal/analysis"
)

// FuzzParse asserts the query parser never panics and that anything it
// accepts renders to syntax it accepts again (parse∘render fixpoint).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"cable car",
		"#1(cable car)",
		"#weight(2 a 1 #combine(b c))",
		"#uw8(a b c)",
		`"quoted phrase"`,
		"#weight(",
		"a ) b",
		"#frob(x)",
		"###",
		"#weight(1e309 a)",
	} {
		f.Add(seed)
	}
	std := analysis.Standard()
	plain := analysis.Analyzer{}
	f.Fuzz(func(t *testing.T, input string) {
		// Under the full pipeline, anything that parses must render to
		// syntax that re-parses without error. (Render *stability* is
		// not guaranteed here: Porter stemming is not idempotent — e.g.
		// "…ll" can lose one l per round — and a stem can itself be a
		// stopword.)
		if n, err := Parse(std, input); err == nil {
			if _, err := Parse(std, n.String()); err != nil {
				t.Fatalf("rendered query %q does not re-parse: %v", n.String(), err)
			}
		}
		// Under the plain tokenizer (idempotent), parse∘render is a
		// fixpoint.
		n, err := Parse(plain, input)
		if err != nil {
			return
		}
		rendered := n.String()
		n2, err := Parse(plain, rendered)
		if err != nil {
			t.Fatalf("plain rendered query %q does not re-parse: %v", rendered, err)
		}
		if n2.String() != rendered {
			t.Fatalf("plain render not stable: %q vs %q", n2.String(), rendered)
		}
	})
}

package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/index"
)

// pruningModels is the model matrix every pruning differential runs over.
var pruningModels = []struct {
	name   string
	model  Model
	params ModelParams
	mu     float64
}{
	{"dirichlet", ModelDirichlet, ModelParams{}, DefaultMu},
	{"dirichlet-small-mu", ModelDirichlet, ModelParams{}, 50},
	{"jelinek-mercer", ModelJelinekMercer, ModelParams{Lambda: 0.4}, 0},
	{"bm25", ModelBM25, ModelParams{K1: 1.2, B: 0.75}, 0},
}

// prunedPair returns two searchers over ix differing only in pruning.
func prunedPair(ix *index.Index, model Model, params ModelParams, mu float64) (pruned, full *Searcher) {
	pruned = NewSearcher(ix)
	full = NewSearcher(ix)
	for _, s := range []*Searcher{pruned, full} {
		s.Model = model
		s.Params = params
		s.Mu = mu
	}
	full.DisablePruning = true
	// The differential corpora are tiny and the queries short — exactly
	// what the cost model routes to DAAT. Force the pruned evaluator so
	// the differentials actually exercise it.
	pruned.forcePrune = true
	return pruned, full
}

// assertIdenticalResults demands exact equality — same docs, same names,
// same float bits — which is the pruning contract (searchDAAT vs legacy
// uses a tolerance; pruning does not get one).
func assertIdenticalResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: pruned (%d,%q,%v) != full (%d,%q,%v)",
				label, i, got[i].Doc, got[i].Name, got[i].Score,
				want[i].Doc, want[i].Name, want[i].Score)
		}
	}
}

// pruningQueries exercises every leaf kind, OOV background-only leaves,
// weighted trees, and duplicate terms.
func pruningQueries() map[string]Node {
	return map[string]Node{
		"single":      Term{Text: "a"},
		"rare":        Term{Text: "z"},
		"oov":         Term{Text: "nosuchterm"},
		"two":         Combine(Term{Text: "a"}, Term{Text: "b"}),
		"many":        Combine(Term{Text: "a"}, Term{Text: "b"}, Term{Text: "c"}, Term{Text: "z"}),
		"with-oov":    Combine(Term{Text: "a"}, Term{Text: "nosuchterm"}),
		"dup-term":    Combine(Term{Text: "a"}, Term{Text: "a"}),
		"phrase":      Phrase{Terms: []string{"a", "b"}},
		"window":      Unordered{Terms: []string{"b", "c"}, Width: 8},
		"weighted":    Weight([]float64{0.7, 0.2, 0.1}, []Node{Term{Text: "a"}, Term{Text: "b"}, Phrase{Terms: []string{"a", "c"}}}),
		"skew-weight": Weight([]float64{0.99, 0.01}, []Node{Term{Text: "z"}, Term{Text: "a"}}),
	}
}

// buildSkewedIndex builds a corpus with a heavily skewed term
// distribution ("a" everywhere, "z" rare, varied lengths) so pruning
// has real opportunities even at small scale.
func buildSkewedIndex(docs, seed int) *index.Index {
	rng := rand.New(rand.NewSource(int64(seed)))
	b := index.NewBuilder(plain)
	vocab := []string{"a", "a", "a", "a", "b", "b", "c", "c", "d", "e", "f", "g"}
	for d := 0; d < docs; d++ {
		n := 2 + rng.Intn(30)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		if rng.Intn(17) == 0 {
			sb.WriteString("z ")
		}
		b.Add(fmt.Sprintf("D%04d", d), sb.String())
	}
	return b.Build()
}

// TestMaxScoreMatchesDAATCrafted: the core differential — pruned top-k
// bit-identical to unpruned across models, queries and k.
func TestMaxScoreMatchesDAATCrafted(t *testing.T) {
	corpora := map[string]*index.Index{
		"tiny": buildIndex("a b c", "a a b", "b c d", "a", "c d z", "a b c d z"),
		// Exact ties: duplicated docs make equal scores that must
		// tie-break identically on DocID through the pruned path.
		"ties":    buildIndex("a b", "a b", "a b", "a b", "b c", "b c", "z"),
		"skewed":  buildSkewedIndex(300, 3),
		"lengths": buildIndex("a", "a a a a a a a a a a a a", "a b", "b", "z a"),
	}
	for cname, ix := range corpora {
		for _, m := range pruningModels {
			for qname, q := range pruningQueries() {
				for _, k := range []int{1, 2, 3, 10, 1000} {
					pruned, full := prunedPair(ix, m.model, m.params, m.mu)
					want := full.Search(q, k)
					got := pruned.Search(q, k)
					assertIdenticalResults(t, fmt.Sprintf("%s/%s/%s k=%d", cname, m.name, qname, k), got, want)
				}
			}
		}
	}
}

// TestMaxScoreMatchesDAATRandom: random corpora and random weighted
// queries, still exact equality.
func TestMaxScoreMatchesDAATRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	terms := []string{"a", "b", "c", "d", "e", "z"}
	for trial := 0; trial < 40; trial++ {
		ix := buildSkewedIndex(50+rng.Intn(250), trial)
		nq := 1 + rng.Intn(4)
		ws := make([]float64, nq)
		ns := make([]Node, nq)
		for i := range ns {
			ws[i] = 0.05 + rng.Float64()
			ns[i] = Term{Text: terms[rng.Intn(len(terms))]}
		}
		q := Weight(ws, ns)
		k := 1 + rng.Intn(30)
		m := pruningModels[rng.Intn(len(pruningModels))]
		pruned, full := prunedPair(ix, m.model, m.params, m.mu)
		want := full.Search(q, k)
		got := pruned.Search(q, k)
		assertIdenticalResults(t, fmt.Sprintf("trial %d %s k=%d", trial, m.name, k), got, want)
	}
}

// TestMaxScoreCounterInvariants pins the accounting identity: every
// postings entry is either consumed (PostingsAdvanced) or skipped
// (DocsSkipped), so their sum equals the exhaustive path's advances;
// pruned candidates are a subset of the full candidate set; and the
// heap sees the identical accepted sequence (same pushes/evictions).
func TestMaxScoreCounterInvariants(t *testing.T) {
	ix := buildSkewedIndex(400, 7)
	for _, m := range pruningModels {
		for qname, q := range pruningQueries() {
			pruned, full := prunedPair(ix, m.model, m.params, m.mu)
			_, pst := pruned.SearchWithStats(q, 10)
			_, fst := full.SearchWithStats(q, 10)
			label := fmt.Sprintf("%s/%s", m.name, qname)
			if pst.PostingsAdvanced+pst.DocsSkipped != fst.PostingsAdvanced {
				t.Errorf("%s: advanced %d + skipped %d != full postings mass %d",
					label, pst.PostingsAdvanced, pst.DocsSkipped, fst.PostingsAdvanced)
			}
			if pst.CandidatesExamined > fst.CandidatesExamined {
				t.Errorf("%s: pruned candidates %d > full %d", label, pst.CandidatesExamined, fst.CandidatesExamined)
			}
			if pst.HeapPushes != fst.HeapPushes || pst.HeapEvictions != fst.HeapEvictions {
				t.Errorf("%s: heap traffic (%d,%d) != full (%d,%d)",
					label, pst.HeapPushes, pst.HeapEvictions, fst.HeapPushes, fst.HeapEvictions)
			}
			if fst.DocsSkipped != 0 || fst.BoundEvaluations != 0 {
				t.Errorf("%s: exhaustive path reported pruning work: %+v", label, fst)
			}
		}
	}
}

// TestMaxScoreActuallyPrunes guards against the evaluator silently
// degenerating into always-essential: on a skewed corpus with a small k
// the Dirichlet path must skip a meaningful share of postings.
func TestMaxScoreActuallyPrunes(t *testing.T) {
	ix := buildSkewedIndex(2000, 11)
	s := NewSearcher(ix)
	// Enough leaves that the cost model keeps pruning on (a query this
	// size is the regime MaxScore is for; short keyword queries route to
	// exhaustive DAAT by design — see pruneWorthwhile).
	q := Combine(Term{Text: "z"}, Term{Text: "a"}, Term{Text: "b"},
		Term{Text: "c"}, Term{Text: "d"}, Term{Text: "e"},
		Term{Text: "f"}, Term{Text: "g"})
	_, st := s.SearchWithStats(q, 5)
	if st.DocsSkipped == 0 {
		t.Fatalf("no postings skipped on a 2000-doc skewed corpus: %v", st)
	}
	if st.BoundEvaluations == 0 {
		t.Fatalf("threshold rose but partition never re-evaluated: %v", st)
	}
	full := NewSearcher(ix)
	full.DisablePruning = true
	_, fst := full.SearchWithStats(q, 5)
	if st.CandidatesExamined >= fst.CandidatesExamined {
		t.Fatalf("pruning scored as many candidates as the full scan (%d vs %d)",
			st.CandidatesExamined, fst.CandidatesExamined)
	}
}

// TestMaxScoreUnboundedLeafFallback: a leaf marked unbounded gets an
// infinite upper bound — permanently essential, so partition skipping
// never fires (DocsSkipped stays 0) — and the evaluation still returns
// the exact unpruned results. This is the safety valve for leaf types
// without a derivable whole-list bound. The candidate filter legally
// still applies: it evaluates matching leaves' contributions exactly
// from the (tf, dl) under the cursors, which needs no precomputed
// bound.
func TestMaxScoreUnboundedLeafFallback(t *testing.T) {
	ix := buildSkewedIndex(500, 13)
	s := NewSearcher(ix)
	var leaves []leaf
	s.flatten(Combine(Term{Text: "a"}, Term{Text: "b"}, Term{Text: "z"}), 1, &leaves)
	for li := range leaves {
		leaves[li].bounded = false
	}
	params := s.resolveParams()
	cs := collStats{numDocs: float64(ix.NumDocs()), avgDocLen: ix.AvgDocLen()}
	score := buildScorer(s.Model, params, cs)
	pb := derivePruneBounds(s.Model, params, cs, ix.MinDocLen(), leaves, nil)
	for i, ub := range pb.ub {
		if !math.IsInf(ub, 1) {
			t.Fatalf("leaf %d: unbounded leaf got finite bound %v", i, ub)
		}
	}
	var pst, fst SearchStats
	got, err := searchMaxScore(context.Background(), ix, leaves, 10, score, pb, &pst, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fullLeaves []leaf
	s.flatten(Combine(Term{Text: "a"}, Term{Text: "b"}, Term{Text: "z"}), 1, &fullLeaves)
	want, err := searchDAAT(context.Background(), ix, fullLeaves, 10, score, &fst, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, "unbounded fallback", got, want)
	if pst.DocsSkipped != 0 {
		t.Fatalf("unbounded leaves must disable partition skipping: pruned=%v full=%v", pst, fst)
	}
	if pst.CandidatesExamined > fst.CandidatesExamined {
		t.Fatalf("pruned path fully scored more documents than the exhaustive one: pruned=%v full=%v", pst, fst)
	}
}

// TestMaxScoreCancellation: the pruned loop honours the context like
// searchDAAT does.
func TestMaxScoreCancellation(t *testing.T) {
	ix := buildSkewedIndex(100, 17)
	s := NewSearcher(ix)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.SearchContext(ctx, Term{Text: "a"}, 10)
	if err == nil || res != nil {
		t.Fatalf("cancelled pruned search: res=%v err=%v", res, err)
	}
}

// TestShardedPruning: per-shard pruning with shared-nothing thresholds
// stays bit-identical to the unsharded pruned searcher AND to the
// exhaustive path, across shard counts; the pruned sharded stats keep
// the per-shard-sum convention and the postings accounting identity.
func TestShardedPruning(t *testing.T) {
	ix := buildSkewedIndex(600, 19)
	for _, m := range pruningModels {
		for _, S := range []int{1, 2, 4, 8} {
			for qname, q := range pruningQueries() {
				for _, k := range []int{1, 5, 25} {
					full := NewSearcher(ix)
					full.Model, full.Params, full.Mu = m.model, m.params, m.mu
					full.DisablePruning = true
					want := full.Search(q, k)

					ss := NewShardedSearcher(index.NewSharded(ix, S))
					ss.Model, ss.Params, ss.Mu = m.model, m.params, m.mu
					got, st, err := ss.SearchWithStatsContext(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s/S=%d/%s k=%d", m.name, S, qname, k)
					assertIdenticalResults(t, label, got, want)

					var skipped int64
					for _, sh := range st.Shards {
						skipped += sh.DocsSkipped
					}
					if skipped != st.DocsSkipped {
						t.Fatalf("%s: per-shard skips %d != aggregate %d", label, skipped, st.DocsSkipped)
					}
					_, fullSt := full.SearchWithStats(q, k)
					if st.PostingsAdvanced+st.DocsSkipped != fullSt.PostingsAdvanced {
						t.Fatalf("%s: sharded advanced %d + skipped %d != postings mass %d",
							label, st.PostingsAdvanced, st.DocsSkipped, fullSt.PostingsAdvanced)
					}
				}
			}
		}
	}
}

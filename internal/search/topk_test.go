package search

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
)

// TestTopKZero: k=0 returns nil on every evaluator (and must not panic
// in the heap, whose offer path assumes k ≥ 1 — the entry points guard).
func TestTopKZero(t *testing.T) {
	ix := buildIndex("a b", "a c", "b c")
	for _, legacy := range []bool{false, true} {
		for _, pruned := range []bool{false, true} {
			s := NewSearcher(ix)
			s.UseLegacyScorer = legacy
			s.DisablePruning = !pruned
			if res := s.Search(Term{Text: "a"}, 0); res != nil {
				t.Fatalf("legacy=%v pruned=%v: k=0 returned %d results", legacy, pruned, len(res))
			}
			if res := s.Search(Term{Text: "a"}, -5); res != nil {
				t.Fatalf("legacy=%v pruned=%v: k<0 returned %d results", legacy, pruned, len(res))
			}
		}
	}
}

// TestTopKOne: k=1 keeps exactly the best (score desc, DocID asc)
// document on both evaluators.
func TestTopKOne(t *testing.T) {
	ix := buildIndex("a a a", "a b", "c", "a a a")
	for _, pruned := range []bool{false, true} {
		s := NewSearcher(ix)
		s.DisablePruning = !pruned
		res := s.Search(Term{Text: "a"}, 1)
		if len(res) != 1 {
			t.Fatalf("pruned=%v: got %d results", pruned, len(res))
		}
		// D0 and D3 are identical texts: the DocID tiebreak keeps D0.
		if res[0].Name != "D0" {
			t.Fatalf("pruned=%v: top = %s, want D0", pruned, res[0].Name)
		}
	}
}

// TestTopKLargerThanCorpus: k beyond the candidate count returns every
// candidate, fully ordered.
func TestTopKLargerThanCorpus(t *testing.T) {
	ix := buildIndex("a b", "a", "b", "c")
	for _, pruned := range []bool{false, true} {
		s := NewSearcher(ix)
		s.DisablePruning = !pruned
		res := s.Search(Combine(Term{Text: "a"}, Term{Text: "b"}), 1000)
		if len(res) != 3 {
			t.Fatalf("pruned=%v: got %d results, want 3 (docs containing a or b)", pruned, len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i-1].Score < res[i].Score {
				t.Fatalf("pruned=%v: results not score-sorted at %d", pruned, i)
			}
		}
	}
}

// TestTopKAllEqualScores: identical documents score identically; the
// ranking must be exactly ascending DocID, and truncation must keep the
// lowest IDs.
func TestTopKAllEqualScores(t *testing.T) {
	ix := buildIndex("a b", "a b", "a b", "a b", "a b", "a b")
	for _, pruned := range []bool{false, true} {
		s := NewSearcher(ix)
		s.DisablePruning = !pruned
		res := s.Search(Term{Text: "a"}, 4)
		if len(res) != 4 {
			t.Fatalf("pruned=%v: got %d results", pruned, len(res))
		}
		for i, r := range res {
			if want := fmt.Sprintf("D%d", i); r.Name != want {
				t.Fatalf("pruned=%v rank %d: %s, want %s (DocID tiebreak)", pruned, i, r.Name, want)
			}
			if r.Score != res[0].Score {
				t.Fatalf("pruned=%v: unequal scores among identical docs", pruned)
			}
		}
	}
}

// FuzzPrunedTopKParity fuzzes corpus shape, model, k and query weights,
// asserting the pruned top-k is bit-identical to the unpruned one. Run
// with `go test -fuzz FuzzPrunedTopKParity` for continuous exploration;
// the seed corpus below runs as a regular test.
func FuzzPrunedTopKParity(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(60), uint8(0), 1.0, 1.0, 1.0)
	f.Add(int64(2), uint8(1), uint8(200), uint8(1), 0.9, 0.05, 0.05)
	f.Add(int64(3), uint8(255), uint8(30), uint8(2), 0.2, 0.3, 0.5)
	f.Add(int64(4), uint8(3), uint8(120), uint8(0), 7.5, 0.001, 2.0)
	f.Fuzz(func(t *testing.T, seed int64, kk uint8, docs uint8, model uint8, w1, w2, w3 float64) {
		if docs == 0 {
			docs = 1
		}
		k := int(kk)
		if k == 0 {
			k = 1
		}
		// Weights must be positive and finite for flatten to keep the
		// leaves; clamp rather than reject so fuzzing explores widely.
		clamp := func(w float64) float64 {
			if !(w > 1e-6 && w < 1e6) {
				return 1
			}
			return w
		}
		ix := buildSkewedIndex(int(docs), int(seed))
		q := Weight(
			[]float64{clamp(w1), clamp(w2), clamp(w3)},
			[]Node{Term{Text: "a"}, Term{Text: "b"}, Term{Text: "z"}},
		)
		m := pruningModels[int(model)%len(pruningModels)]
		pruned, full := prunedPair(ix, m.model, m.params, m.mu)
		want := full.Search(q, k)
		got := pruned.Search(q, k)
		if len(got) != len(want) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: pruned %+v != full %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzTopKHeapOrdering cross-checks the bounded heap against a full
// sort under adversarial score streams (duplicates, tiny ranges).
func FuzzTopKHeapOrdering(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(50))
	f.Add(int64(9), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, kk uint8, n uint8) {
		k := int(kk)
		if k == 0 {
			return // offer's contract requires k ≥ 1 (entry points guard)
		}
		rng := rand.New(rand.NewSource(seed))
		docs := int(n)
		ix := buildSkewedIndex(docs+1, int(seed))
		type sc struct {
			doc   int32
			score float64
		}
		scores := make([]sc, docs)
		h := topK{k: k}
		for i := range scores {
			// Few distinct values — maximal tie pressure.
			s := float64(rng.Intn(4))
			scores[i] = sc{doc: int32(i), score: s}
			h.offer(index.DocID(i), s, nil)
		}
		got := h.drain(ix)
		// Reference: sort by (score desc, doc asc), truncate.
		ref := append([]sc(nil), scores...)
		for i := 1; i < len(ref); i++ {
			for j := i; j > 0 && (ref[j].score > ref[j-1].score ||
				(ref[j].score == ref[j-1].score && ref[j].doc < ref[j-1].doc)); j-- {
				ref[j], ref[j-1] = ref[j-1], ref[j]
			}
		}
		if len(ref) > k {
			ref = ref[:k]
		}
		if len(got) != len(ref) {
			t.Fatalf("%d results, want %d", len(got), len(ref))
		}
		for i := range ref {
			if int32(got[i].Doc) != ref[i].doc || got[i].Score != ref[i].score {
				t.Fatalf("rank %d: (%d,%v) want (%d,%v)", i, got[i].Doc, got[i].Score, ref[i].doc, ref[i].score)
			}
		}
	})
}

package search

import (
	"encoding/json"
	"fmt"
)

// WireNode is the JSON form of a query tree crossing the coordinator→
// shard RPC boundary. The tree is encoded structurally — terms are
// ALREADY analyzed when the tree is built, and the decoder must not
// re-analyze them (stemming is not idempotent), so the wire form
// carries the analyzed strings verbatim.
//
// One node kind per type tag:
//
//	{"t":"term","text":"motif"}
//	{"t":"phrase","terms":["queri","expans"]}
//	{"t":"uw","terms":["graph","base"],"width":4}
//	{"t":"weight","children":[{"w":0.8,"n":{…}}, …]}
//
// Weights are float64 and survive JSON bit-exactly (Go emits the
// shortest representation that round-trips), so a decoded tree
// flattens to the same normalised leaf weights as the original.
type WireNode struct {
	T        string      `json:"t"`
	Text     string      `json:"text,omitempty"`
	Terms    []string    `json:"terms,omitempty"`
	Width    int         `json:"width,omitempty"`
	Children []WireChild `json:"children,omitempty"`
}

// WireChild is one weighted child of a "weight" node.
type WireChild struct {
	W float64  `json:"w"`
	N WireNode `json:"n"`
}

// EncodeNode converts a query tree to its wire form.
func EncodeNode(n Node) (WireNode, error) {
	switch x := n.(type) {
	case Term:
		return WireNode{T: "term", Text: x.Text}, nil
	case Phrase:
		return WireNode{T: "phrase", Terms: x.Terms}, nil
	case Unordered:
		return WireNode{T: "uw", Terms: x.Terms, Width: x.Width}, nil
	case Weighted:
		wn := WireNode{T: "weight", Children: make([]WireChild, len(x.Children))}
		for i, c := range x.Children {
			cn, err := EncodeNode(c.Node)
			if err != nil {
				return WireNode{}, err
			}
			wn.Children[i] = WireChild{W: c.Weight, N: cn}
		}
		return wn, nil
	default:
		return WireNode{}, fmt.Errorf("search: cannot encode %T for the wire", n)
	}
}

// DecodeNode converts a wire node back into a query tree. It is the
// exact inverse of EncodeNode: no analysis, no normalisation — the tree
// the shard flattens is structurally identical to the tree the
// coordinator encoded.
func DecodeNode(wn WireNode) (Node, error) {
	switch wn.T {
	case "term":
		return Term{Text: wn.Text}, nil
	case "phrase":
		return Phrase{Terms: wn.Terms}, nil
	case "uw":
		return Unordered{Terms: wn.Terms, Width: wn.Width}, nil
	case "weight":
		w := Weighted{Children: make([]Child, len(wn.Children))}
		for i, c := range wn.Children {
			n, err := DecodeNode(c.N)
			if err != nil {
				return nil, err
			}
			w.Children[i] = Child{Weight: c.W, Node: n}
		}
		return w, nil
	default:
		return nil, fmt.Errorf("search: unknown wire node type %q", wn.T)
	}
}

// MarshalQuery encodes a query tree to JSON bytes (convenience for
// callers outside the RPC path, e.g. debugging tools).
func MarshalQuery(n Node) ([]byte, error) {
	wn, err := EncodeNode(n)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wn)
}

// UnmarshalQuery decodes JSON bytes produced by MarshalQuery.
func UnmarshalQuery(data []byte) (Node, error) {
	var wn WireNode
	if err := json.Unmarshal(data, &wn); err != nil {
		return nil, err
	}
	return DecodeNode(wn)
}

package search

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Parse reads a structured query in Indri-like syntax and returns its
// AST. Supported grammar (whitespace-separated):
//
//	query    := node+                      // top level: #combine of nodes
//	node     := term
//	          | "#1(" term+ ")"            // exact ordered phrase
//	          | "#uwN(" term+ ")"          // unordered window of width N
//	          | "#combine(" node+ ")"
//	          | "#weight(" (weight node)+ ")"
//	          | "\"" term+ "\""            // quoted phrase = #1
//
// Bare terms and phrase/window constituents are run through the
// analyzer, so "Cable Cars" and "cable car" parse to the same leaf; a
// term that analyzes to nothing (a stopword) is dropped. Weights are
// decimal numbers.
func Parse(a analysis.Analyzer, input string) (Node, error) {
	p := &parser{a: a, in: input}
	nodes, err := p.parseNodes(false)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("unexpected %q", p.rest())
	}
	switch len(nodes) {
	case 0:
		return Weighted{}, nil
	case 1:
		return nodes[0], nil
	default:
		return Combine(nodes...), nil
	}
}

// MustParse is Parse but panics on error; for tests and constants.
func MustParse(a analysis.Analyzer, input string) Node {
	n, err := Parse(a, input)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	a   analysis.Analyzer
	in  string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.in) }

func (p *parser) rest() string {
	r := p.in[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "…"
	}
	return r
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("search: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// asciiSpace reports whether b is an ASCII whitespace byte. Byte-level
// scanning must never treat UTF-8 continuation bytes (≥ 0x80) as
// whitespace — 0x85 (NEL) famously *is* unicode space as a rune, but
// inside a multi-byte character it is part of a word.
func asciiSpace(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\r', '\v', '\f':
		return true
	}
	return false
}

func (p *parser) skipSpace() {
	for !p.eof() && asciiSpace(p.in[p.pos]) {
		p.pos++
	}
}

// parseNodes reads nodes until EOF or, when insideParens, a ')'.
func (p *parser) parseNodes(insideParens bool) ([]Node, error) {
	var nodes []Node
	for {
		p.skipSpace()
		if p.eof() {
			return nodes, nil
		}
		if p.in[p.pos] == ')' {
			if insideParens {
				return nodes, nil
			}
			return nil, p.errorf("unbalanced ')'")
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if n != nil {
			nodes = append(nodes, n)
		}
	}
}

func (p *parser) parseNode() (Node, error) {
	p.skipSpace()
	switch {
	case p.eof():
		return nil, p.errorf("unexpected end of query")
	case p.in[p.pos] == '#':
		return p.parseOperator()
	case p.in[p.pos] == '"':
		return p.parseQuoted()
	default:
		return p.parseTerm()
	}
}

// parseOperator handles #1(...), #uwN(...), #combine(...), #weight(...).
func (p *parser) parseOperator() (Node, error) {
	start := p.pos
	p.pos++ // '#'
	name := p.readWhile(func(b byte) bool {
		return b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
	})
	if p.eof() || p.in[p.pos] != '(' {
		p.pos = start
		return nil, p.errorf("operator #%s missing '('", name)
	}
	p.pos++ // '('
	var node Node
	var err error
	switch {
	case name == "combine":
		var children []Node
		children, err = p.parseNodes(true)
		if err == nil {
			node = Combine(children...)
		}
	case name == "weight":
		node, err = p.parseWeightBody()
	case name == "1" || name == "od1":
		var terms []string
		terms, err = p.parseTermList()
		if err == nil && len(terms) > 0 {
			node = phraseOrTerm(terms)
		}
	case strings.HasPrefix(name, "uw"):
		width, convErr := strconv.Atoi(name[2:])
		if convErr != nil || width <= 0 {
			return nil, p.errorf("bad window operator #%s", name)
		}
		var terms []string
		terms, err = p.parseTermList()
		if err == nil && len(terms) > 0 {
			if len(terms) == 1 {
				node = Term{Text: terms[0]}
			} else {
				node = Unordered{Terms: terms, Width: width}
			}
		}
	default:
		return nil, p.errorf("unknown operator #%s", name)
	}
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.eof() || p.in[p.pos] != ')' {
		return nil, p.errorf("operator #%s missing ')'", name)
	}
	p.pos++
	return node, nil
}

// parseWeightBody reads (weight node)+ pairs.
func (p *parser) parseWeightBody() (Node, error) {
	var weights []float64
	var nodes []Node
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errorf("#weight missing ')'")
		}
		if p.in[p.pos] == ')' {
			// #weight() is the canonical empty query (it is what an
			// all-stopword query renders to), so it must re-parse.
			return Weight(weights, nodes), nil
		}
		w, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if n == nil {
			// The child analyzed away (stopword term): drop the pair.
			continue
		}
		weights = append(weights, w)
		nodes = append(nodes, n)
	}
}

func (p *parser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	tok := p.readWhile(func(b byte) bool {
		return b >= '0' && b <= '9' || b == '.' || b == '-' || b == '+' || b == 'e' || b == 'E'
	})
	if tok == "" {
		return 0, p.errorf("expected a weight")
	}
	w, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		p.pos = start
		return 0, p.errorf("bad weight %q", tok)
	}
	return w, nil
}

// parseQuoted reads "..." as an exact phrase.
func (p *parser) parseQuoted() (Node, error) {
	p.pos++ // opening quote
	start := p.pos
	for !p.eof() && p.in[p.pos] != '"' {
		p.pos++
	}
	if p.eof() {
		return nil, p.errorf("unterminated quote")
	}
	inner := p.in[start:p.pos]
	p.pos++ // closing quote
	terms := p.a.AnalyzeTerms(inner)
	if len(terms) == 0 {
		return nil, nil // empty / all-stopword quote drops out
	}
	return phraseOrTerm(terms), nil
}

// parseTermList reads raw words until ')' and analyzes them together, so
// multi-word constituents behave like quoted phrases.
func (p *parser) parseTermList() ([]string, error) {
	start := p.pos
	for !p.eof() && p.in[p.pos] != ')' {
		if p.in[p.pos] == '#' || p.in[p.pos] == '(' {
			return nil, p.errorf("operators cannot nest inside proximity operators")
		}
		p.pos++
	}
	// An empty or all-stopword operator body analyzes to nothing; like a
	// bare stopword term, the whole operator then drops out of the query
	// (and "#1()" — the render of an empty phrase — re-parses cleanly).
	return p.a.AnalyzeTerms(p.in[start:p.pos]), nil
}

// parseTerm reads one bare word and analyzes it; stopwords vanish
// (returning nil, nil).
func (p *parser) parseTerm() (Node, error) {
	word := p.readWhile(func(b byte) bool {
		return b >= 0x80 || (!asciiSpace(b) && b != ')' && b != '(' && b != '"' && b != '#')
	})
	if word == "" {
		return nil, p.errorf("expected a term, found %q", p.rest())
	}
	terms := p.a.AnalyzeTerms(word)
	switch len(terms) {
	case 0:
		return nil, nil // stopword or punctuation: drops out
	case 1:
		return Term{Text: terms[0]}, nil
	default:
		// A single input token can analyze to several terms
		// ("cable-car"): treat as an exact phrase.
		return Phrase{Terms: terms}, nil
	}
}

func (p *parser) readWhile(ok func(byte) bool) string {
	start := p.pos
	for !p.eof() && ok(p.in[p.pos]) {
		p.pos++
	}
	return p.in[start:p.pos]
}

// phraseOrTerm collapses analyzed term lists into the smallest node.
func phraseOrTerm(terms []string) Node {
	switch len(terms) {
	case 0:
		return Phrase{}
	case 1:
		return Term{Text: terms[0]}
	default:
		return Phrase{Terms: terms}
	}
}

package search

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/index"
)

// Explanation breaks a document's score into per-leaf contributions —
// the debugging view behind cmd/sqe-inspect: which expansion features
// actually moved a document up the ranking.
type Explanation struct {
	Doc    index.DocID
	Name   string
	Score  float64
	Leaves []LeafContribution
}

// LeafContribution is one leaf's share of a document score.
type LeafContribution struct {
	// Leaf is the leaf's query syntax ("cable", "#1(cable car)").
	Leaf string
	// Weight is the leaf's normalised effective weight.
	Weight float64
	// TF is the document's term/phrase frequency for the leaf.
	TF int32
	// Contribution is weight · log P(leaf|D).
	Contribution float64
	// BackgroundOnly marks leaves the document does not contain (their
	// contribution is pure smoothing mass).
	BackgroundOnly bool
}

// Explain scores one document under q and attributes the score to the
// query's leaves, sorted by descending contribution above background
// (i.e. the leaves that helped most come first).
func (s *Searcher) Explain(q Node, doc index.DocID) Explanation {
	var leaves []leaf
	var names []string
	s.flattenNamed(q, 1, &leaves, &names)
	// Explain walks materialised postings rows directly (findDoc over
	// l.postings.Docs), so streaming leaves are resolved eagerly here —
	// this is a debugging path, not the query hot path.
	s.materializeLeaves(leaves)
	prepareLeaves(s.Model, collStats{numDocs: float64(s.ix.NumDocs()), avgDocLen: s.ix.AvgDocLen()}, leaves)
	score := s.newScorer()
	dl := float64(s.ix.DocLen(doc))
	ex := Explanation{Doc: doc, Name: s.ix.DocName(doc)}
	for li := range leaves {
		l := &leaves[li]
		tf := int32(0)
		if i := findDoc(l.postings.Docs, doc); i >= 0 {
			tf = l.postings.Freqs[i]
		}
		contrib := score(l, tf, dl)
		ex.Score += contrib
		ex.Leaves = append(ex.Leaves, LeafContribution{
			Leaf:           names[li],
			Weight:         l.weight,
			TF:             tf,
			Contribution:   contrib,
			BackgroundOnly: tf == 0,
		})
	}
	// Sort by how much the leaf lifted the document above its own
	// background mass: matched leaves first, strongest lift first.
	lift := func(c LeafContribution) float64 {
		if c.BackgroundOnly {
			return 0
		}
		l := leaves[indexOfLeaf(names, c.Leaf)]
		bg := score(&l, 0, dl)
		return c.Contribution - bg
	}
	sort.SliceStable(ex.Leaves, func(i, j int) bool { return lift(ex.Leaves[i]) > lift(ex.Leaves[j]) })
	return ex
}

func indexOfLeaf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return 0
}

// flattenNamed mirrors flatten but also records each leaf's syntax.
func (s *Searcher) flattenNamed(n Node, w float64, out *[]leaf, names *[]string) {
	if w <= 0 {
		return
	}
	switch x := n.(type) {
	case Term, Phrase, Unordered:
		before := len(*out)
		s.flatten(n, w, out)
		for i := before; i < len(*out); i++ {
			*names = append(*names, x.(Node).String())
		}
	case Weighted:
		var total float64
		for _, c := range x.Children {
			if c.Weight > 0 && !IsEmpty(c.Node) {
				total += c.Weight
			}
		}
		if total <= 0 {
			return
		}
		for _, c := range x.Children {
			if c.Weight > 0 && !IsEmpty(c.Node) {
				s.flattenNamed(c.Node, w*c.Weight/total, out, names)
			}
		}
	}
}

// String renders the explanation, matched leaves first.
func (e Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s score=%.4f\n", e.Name, e.Score)
	for _, l := range e.Leaves {
		marker := " "
		if !l.BackgroundOnly {
			marker = "*"
		}
		fmt.Fprintf(&sb, "  %s %-30s w=%.3f tf=%d contrib=%.4f\n", marker, l.Leaf, l.Weight, l.TF, l.Contribution)
	}
	return sb.String()
}

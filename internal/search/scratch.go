package search

import (
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// evalScratch is the pooled per-query evaluation state: every slice the
// evaluators (searchDAAT, searchMaxScore, derivePruneBounds) used to
// allocate per call — cursor array, candidate/bound/order/prefix
// vectors, top-k heap backing, the prune-bound struct with its lazy
// per-block UB tables, and the coordinator-merge buffer. A query takes
// one scratch from the pool (reset-on-get), threads it through the
// whole evaluation, and returns it on every exit path including
// cancellation and degradation; in steady state a query's hot path
// performs no evaluator allocations at all.
//
// Ownership: a scratch is single-goroutine for the duration of one
// evaluation; the per-shard evaluators each take their own. Nothing
// returned to the caller may alias scratch memory — results are drained
// into fresh slices — which is what putScratch's invariants rely on.
type evalScratch struct {
	leaves []leaf
	curs   []index.TermCursor
	curDoc []index.DocID

	// MaxScore partition state.
	order      []int
	rank       []int
	prefix     []float64
	blockHint  []int
	candUB     []float64
	blockBuilt []bool
	matched    []int

	// topK heap backing.
	heapDocs   []index.DocID
	heapScores []float64

	// Prune bounds plus the reusable per-leaf block-bound rows its lazy
	// builder hands out (indexed by leaf position, not term).
	pb            pruneBounds
	blockUBRows   [][]float64
	blockLastRows [][]index.DocID

	sorter ubSorter

	// merged backs the sharded/remote coordinators' k·S merge buffer.
	merged []Result
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// scratchPoolingOff disables reuse when set (each get allocates a fresh
// scratch, puts drop it) — the control leg of the hotpath benchmark's
// allocation measurements. Zero value: pooling on.
var scratchPoolingOff atomic.Bool

// SetScratchPooling toggles evaluator-scratch pooling at runtime.
// Pooling is on by default; turning it off makes every query allocate
// fresh evaluator state, which is only useful for benchmarking the
// pool's effect.
func SetScratchPooling(on bool) { scratchPoolingOff.Store(!on) }

func getScratch() *evalScratch {
	if scratchPoolingOff.Load() {
		return new(evalScratch)
	}
	return scratchPool.Get().(*evalScratch)
}

// putScratch returns sc to the pool after dropping every reference that
// could pin an index, an mmap region, or a caller-visible result across
// requests. Backing arrays (including the cursors' decode windows) are
// retained — they are the pool's value.
func putScratch(sc *evalScratch) {
	if sc == nil {
		return
	}
	full := sc.leaves[:cap(sc.leaves)]
	for i := range full {
		full[i] = leaf{}
	}
	sc.leaves = sc.leaves[:0]
	fullCurs := sc.curs[:cap(sc.curs)]
	for i := range fullCurs {
		fullCurs[i].Release()
	}
	sc.pb.deltaExact = nil
	sc.pb.argmax = nil
	sc.pb.sc = nil
	for i := range sc.pb.blockUB {
		sc.pb.blockUB[i] = nil
	}
	for i := range sc.pb.blockLast {
		sc.pb.blockLast[i] = nil
	}
	fullMerged := sc.merged[:cap(sc.merged)]
	for i := range fullMerged {
		fullMerged[i] = Result{}
	}
	sc.merged = sc.merged[:0]
	sc.sorter = ubSorter{}
	if scratchPoolingOff.Load() {
		return
	}
	scratchPool.Put(sc)
}

// grow returns s with length n, reusing its backing when it fits.
// Contents are unspecified — callers overwrite (or explicitly zero)
// every entry they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// cursors returns len(leaves) freshly-reset cursors: streaming leaves
// get block cursors over ix, everything else a window over its
// materialised row. Growing the array copies the existing cursor
// structs so their decode-window backings survive.
func (sc *evalScratch) cursors(ix *index.Index, leaves []leaf) []index.TermCursor {
	n := len(leaves)
	if cap(sc.curs) < n {
		next := make([]index.TermCursor, n)
		copy(next, sc.curs[:cap(sc.curs)])
		sc.curs = next
	} else {
		sc.curs = sc.curs[:n]
	}
	for li := range leaves {
		l := &leaves[li]
		if l.stream {
			sc.curs[li].ResetStream(ix, l.streamID)
		} else {
			sc.curs[li].Reset(&l.postings)
		}
	}
	return sc.curs
}

// blockRow hands the lazy block-bound builder a zeroed UB row and a
// last-doc row of length nb for leaf position li, reusing backings
// from earlier queries.
func (sc *evalScratch) blockRow(li, nb int) ([]float64, []index.DocID) {
	for li >= len(sc.blockUBRows) {
		sc.blockUBRows = append(sc.blockUBRows, nil)
		sc.blockLastRows = append(sc.blockLastRows, nil)
	}
	ub := sc.blockUBRows[li]
	if cap(ub) < nb {
		ub = make([]float64, nb)
	} else {
		ub = ub[:nb]
		for i := range ub {
			ub[i] = 0
		}
	}
	sc.blockUBRows[li] = ub
	last := sc.blockLastRows[li]
	if cap(last) < nb {
		last = make([]index.DocID, nb)
	} else {
		last = last[:nb]
	}
	sc.blockLastRows[li] = last
	return ub, last
}

// ubSorter sorts a leaf-index permutation by ascending upper bound with
// leaf order breaking ties — a total order, so every sort algorithm
// produces the same permutation (bit-identity does not depend on
// sort.Sort internals). Pointer receiver: converting *ubSorter to
// sort.Interface does not allocate.
type ubSorter struct {
	order []int
	ub    []float64
}

func (s *ubSorter) Len() int { return len(s.order) }

func (s *ubSorter) Less(a, b int) bool {
	if s.ub[s.order[a]] != s.ub[s.order[b]] {
		return s.ub[s.order[a]] < s.ub[s.order[b]]
	}
	return s.order[a] < s.order[b]
}

func (s *ubSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// resultSorter orders merged results by the global ranking (score desc,
// DocID asc). Pointer receiver for the same no-allocation reason as
// ubSorter; the order is total, so the permutation is algorithm-
// independent.
type resultSorter struct{ r []Result }

func (s *resultSorter) Len() int { return len(s.r) }

func (s *resultSorter) Less(a, b int) bool {
	if s.r[a].Score != s.r[b].Score {
		return s.r[a].Score > s.r[b].Score
	}
	return s.r[a].Doc < s.r[b].Doc
}

func (s *resultSorter) Swap(a, b int) { s.r[a], s.r[b] = s.r[b], s.r[a] }

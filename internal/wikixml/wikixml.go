// Package wikixml imports MediaWiki XML exports (the format of the
// Wikipedia dumps the paper uses, e.g. enwiki-20120702-pages-articles)
// into the KB graph substrate. The reproduction's experiments run on the
// synthetic world, but this importer is the adoption path for running
// SQE against a real dump: articles and categories become graph nodes,
// wikitext [[links]] become hyperlinks, [[Category:…]] tags become
// membership (from articles) and containment (from category pages), and
// redirects are resolved transitively.
//
// The parser streams the XML (a full English dump does not fit in
// memory as a DOM) but buffers one pass of page records so that links to
// pages defined later in the dump resolve; red links (targets that never
// appear) are dropped, matching how the paper's graph counts only
// existing entries.
//
// As a by-product the importer collects anchor-text statistics
// (surface → target counts), which is exactly the commonness dictionary
// a Dexter-style entity linker needs (internal/entitylink).
package wikixml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/kb"
)

// Options controls the import.
type Options struct {
	// MaxPages stops after this many pages (0 = no limit); useful for
	// sampling a huge dump.
	MaxPages int
	// MaxRedirectDepth bounds transitive redirect resolution (default 5).
	MaxRedirectDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxRedirectDepth <= 0 {
		o.MaxRedirectDepth = 5
	}
	return o
}

// Stats reports what the import saw.
type Stats struct {
	PagesRead      int
	Articles       int
	Categories     int
	Redirects      int
	SkippedNS      int
	LinksResolved  int
	LinksRed       int
	AnchorSurfaces int
}

// Result is the imported graph plus the anchor dictionary.
type Result struct {
	Graph *kb.Graph
	Stats Stats
	// Anchors maps normalised anchor text to the canonical page titles
	// it linked to, with counts — the raw material for a commonness
	// dictionary.
	Anchors map[string]map[string]int
}

// xmlPage mirrors the subset of the MediaWiki export schema we read.
type xmlPage struct {
	Title    string `xml:"title"`
	NS       int    `xml:"ns"`
	Redirect *struct {
		Title string `xml:"title,attr"`
	} `xml:"redirect"`
	Revision struct {
		Text string `xml:"text"`
	} `xml:"revision"`
}

// pageRecord is the buffered form of one page.
type pageRecord struct {
	title    string
	category bool
	links    []wikiLink
}

type wikiLink struct {
	target string // canonical title (with "Category:" prefix when applicable)
	anchor string
	isCat  bool
}

const categoryPrefix = "Category:"

// Parse imports a MediaWiki XML export.
func Parse(r io.Reader, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	dec := xml.NewDecoder(r)

	var pages []pageRecord
	redirects := map[string]string{}
	stats := Stats{}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("wikixml: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok || se.Name.Local != "page" {
			continue
		}
		var p xmlPage
		if err := dec.DecodeElement(&p, &se); err != nil {
			return nil, fmt.Errorf("wikixml: decoding page: %w", err)
		}
		stats.PagesRead++
		if opts.MaxPages > 0 && stats.PagesRead > opts.MaxPages {
			break
		}
		title, isCat, keep := canonicalTitle(p.Title, p.NS)
		if !keep {
			stats.SkippedNS++
			continue
		}
		if p.Redirect != nil {
			target, tCat, tKeep := canonicalTitle(p.Redirect.Title, nsOf(p.Redirect.Title))
			if tKeep && isCat == tCat {
				redirects[title] = target
				stats.Redirects++
			}
			continue
		}
		rec := pageRecord{title: title, category: isCat}
		rec.links = extractLinks(p.Revision.Text)
		pages = append(pages, rec)
	}

	resolve := func(title string) string {
		for depth := 0; depth < opts.MaxRedirectDepth; depth++ {
			target, ok := redirects[title]
			if !ok {
				return title
			}
			title = target
		}
		return title
	}

	// First pass: nodes.
	b := kb.NewBuilder(len(pages))
	nodes := make(map[string]kb.NodeID, len(pages))
	for _, rec := range pages {
		var id kb.NodeID
		var err error
		if rec.category {
			id, err = b.AddCategory(rec.title)
		} else {
			id, err = b.AddArticle(rec.title)
		}
		if err != nil {
			return nil, fmt.Errorf("wikixml: page %q: %w", rec.title, err)
		}
		nodes[rec.title] = id
	}

	// Second pass: edges + anchors.
	res := &Result{Anchors: map[string]map[string]int{}}
	for _, rec := range pages {
		from := nodes[rec.title]
		for _, l := range rec.links {
			target := resolve(l.target)
			to, exists := nodes[target]
			if !exists {
				stats.LinksRed++
				continue
			}
			var err error
			switch {
			case l.isCat && !rec.category:
				err = b.AddMembership(from, to)
			case l.isCat && rec.category:
				// A [[Category:X]] tag on a category page means X
				// contains this category.
				err = b.AddContainment(to, from)
			case !l.isCat && !rec.category && from != to:
				err = b.AddLink(from, to)
			default:
				continue // category body links to articles carry no motif semantics here
			}
			if err != nil {
				// Kind conflicts (an article linking a category title in
				// text) are data noise in real dumps; count as red.
				stats.LinksRed++
				continue
			}
			stats.LinksResolved++
			if !l.isCat && l.anchor != "" {
				key := strings.ToLower(l.anchor)
				m, ok := res.Anchors[key]
				if !ok {
					m = map[string]int{}
					res.Anchors[key] = m
				}
				m[target]++
			}
		}
	}

	res.Graph = b.Build()
	stats.Articles = res.Graph.NumArticles()
	stats.Categories = res.Graph.NumCategories()
	stats.AnchorSurfaces = len(res.Anchors)
	res.Stats = stats
	return res, nil
}

// nsOf guesses a namespace from a title prefix (redirect targets carry
// no <ns> element).
func nsOf(title string) int {
	if strings.HasPrefix(title, categoryPrefix) {
		return 14
	}
	return 0
}

// canonicalTitle normalises a page title: first rune upper-cased
// (MediaWiki semantics), underscores to spaces. Returns keep=false for
// namespaces other than articles (0) and categories (14).
func canonicalTitle(title string, ns int) (canonical string, isCat, keep bool) {
	title = strings.TrimSpace(strings.ReplaceAll(title, "_", " "))
	switch ns {
	case 0:
		if title == "" {
			return "", false, false
		}
		return upperFirst(title), false, true
	case 14:
		name := strings.TrimPrefix(title, categoryPrefix)
		name = strings.TrimSpace(name)
		if name == "" {
			return "", false, false
		}
		return categoryPrefix + upperFirst(name), true, true
	default:
		return "", false, false
	}
}

func upperFirst(s string) string {
	r, size := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError {
		return s
	}
	u := unicode.ToUpper(r)
	if u == r {
		return s
	}
	return string(u) + s[size:]
}

// extractLinks pulls [[target]] and [[target|anchor]] links out of
// wikitext, classifying category tags. Pipes inside file/image links and
// nested brackets are skipped conservatively.
func extractLinks(text string) []wikiLink {
	var out []wikiLink
	for i := 0; i < len(text); {
		open := strings.Index(text[i:], "[[")
		if open < 0 {
			break
		}
		open += i
		closing := strings.Index(text[open:], "]]")
		if closing < 0 {
			break
		}
		closing += open
		inner := text[open+2 : closing]
		i = closing + 2
		if strings.Contains(inner, "[[") {
			continue // nested / malformed
		}
		target := inner
		anchor := ""
		if p := strings.IndexByte(inner, '|'); p >= 0 {
			target = inner[:p]
			anchor = inner[p+1:]
		}
		// Drop section anchors.
		if h := strings.IndexByte(target, '#'); h >= 0 {
			target = target[:h]
		}
		target = strings.TrimSpace(target)
		if target == "" {
			continue
		}
		// Namespace classification. A leading colon ("[[:Category:X]]")
		// is a link *about* the category, not a tag.
		escaped := strings.HasPrefix(target, ":")
		target = strings.TrimPrefix(target, ":")
		lower := strings.ToLower(target)
		switch {
		case strings.HasPrefix(lower, "category:"):
			name := strings.TrimSpace(target[len("category:"):])
			if name == "" {
				continue
			}
			out = append(out, wikiLink{
				target: categoryPrefix + upperFirst(name),
				isCat:  !escaped,
			})
		case strings.ContainsRune(target, ':'):
			// Other namespaces (File:, Template:, interwiki): skip.
			continue
		default:
			if anchor == "" {
				anchor = target
			}
			out = append(out, wikiLink{target: upperFirst(target), anchor: strings.TrimSpace(anchor)})
		}
	}
	return out
}

package wikixml

import (
	"strings"
	"testing"

	"repro/internal/kb"
)

const sampleDump = `<?xml version="1.0"?>
<mediawiki>
  <page>
    <title>Cable car</title>
    <ns>0</ns>
    <revision><text>A [[funicular]] is similar. See [[Tram|trams]] and [[San Francisco]].
[[Category:Cable railways]] [[File:Photo.jpg|thumb]] [[:Category:Cable railways|the category]]</text></revision>
  </page>
  <page>
    <title>Funicular</title>
    <ns>0</ns>
    <revision><text>Linked back to the [[cable car]]. [[Category:Cable railways]]</text></revision>
  </page>
  <page>
    <title>Tram</title>
    <ns>0</ns>
    <revision><text>Rails in streets. [[Category:Rail transport]]</text></revision>
  </page>
  <page>
    <title>San Francisco</title>
    <ns>0</ns>
    <revision><text>Famous for [[Cable car|cable cars]]. See [[Golden Gate#History]].</text></revision>
  </page>
  <page>
    <title>Trolley</title>
    <ns>0</ns>
    <redirect title="Tram"/>
    <revision><text>#REDIRECT [[Tram]]</text></revision>
  </page>
  <page>
    <title>Category:Cable railways</title>
    <ns>14</ns>
    <revision><text>[[Category:Rail transport]]</text></revision>
  </page>
  <page>
    <title>Category:Rail transport</title>
    <ns>14</ns>
    <revision><text></text></revision>
  </page>
  <page>
    <title>Template:Infobox</title>
    <ns>10</ns>
    <revision><text>skip me</text></revision>
  </page>
  <page>
    <title>Streetcar</title>
    <ns>0</ns>
    <revision><text>Also called a [[trolley]].</text></revision>
  </page>
</mediawiki>`

func parseSample(t *testing.T) *Result {
	t.Helper()
	res, err := Parse(strings.NewReader(sampleDump), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseNodes(t *testing.T) {
	res := parseSample(t)
	g := res.Graph
	if g.NumArticles() != 5 { // Cable car, Funicular, Tram, San Francisco, Streetcar
		t.Errorf("articles = %d", g.NumArticles())
	}
	if g.NumCategories() != 2 {
		t.Errorf("categories = %d", g.NumCategories())
	}
	if res.Stats.SkippedNS != 1 {
		t.Errorf("skipped = %d, want the Template page", res.Stats.SkippedNS)
	}
	if res.Stats.Redirects != 1 {
		t.Errorf("redirects = %d", res.Stats.Redirects)
	}
}

func TestParseLinksAndReciprocity(t *testing.T) {
	res := parseSample(t)
	g := res.Graph
	cable := g.ByTitle("Cable car")
	funi := g.ByTitle("Funicular")
	if cable == kb.Invalid || funi == kb.Invalid {
		t.Fatal("articles missing")
	}
	// "cable car" in Funicular's text upper-cases to the canonical title.
	if !g.Reciprocal(cable, funi) {
		t.Error("Cable car ↔ Funicular should be reciprocal")
	}
	sf := g.ByTitle("San Francisco")
	if !g.Reciprocal(cable, sf) {
		t.Error("Cable car ↔ San Francisco should be reciprocal (piped + plain)")
	}
}

func TestParseCategories(t *testing.T) {
	res := parseSample(t)
	g := res.Graph
	cableCat := g.ByTitle("Category:Cable railways")
	railCat := g.ByTitle("Category:Rail transport")
	if cableCat == kb.Invalid || railCat == kb.Invalid {
		t.Fatal("categories missing")
	}
	if !g.InCategory(g.ByTitle("Cable car"), cableCat) {
		t.Error("Cable car should be in Category:Cable railways")
	}
	if !g.IsParentCategory(railCat, cableCat) {
		t.Error("Rail transport should contain Cable railways")
	}
	// The escaped [[:Category:…]] link must NOT create a membership for
	// a second time or confuse the kind system; Cable car has exactly
	// one category.
	if cats := g.Categories(g.ByTitle("Cable car")); len(cats) != 1 {
		t.Errorf("Cable car categories = %d, want 1", len(cats))
	}
}

func TestRedirectResolution(t *testing.T) {
	res := parseSample(t)
	g := res.Graph
	street := g.ByTitle("Streetcar")
	tram := g.ByTitle("Tram")
	// [[trolley]] redirects to Tram.
	if !g.HasLink(street, tram) {
		t.Error("redirect-mediated link Streetcar→Tram missing")
	}
	if g.ByTitle("Trolley") != kb.Invalid {
		t.Error("redirect page must not become a node")
	}
}

func TestAnchors(t *testing.T) {
	res := parseSample(t)
	// [[Tram|trams]] and [[trolley]] (→ Tram) both contribute anchors.
	if res.Anchors["trams"]["Tram"] != 1 {
		t.Errorf("anchor 'trams' = %v", res.Anchors["trams"])
	}
	if res.Anchors["trolley"]["Tram"] != 1 {
		t.Errorf("anchor 'trolley' = %v", res.Anchors["trolley"])
	}
	// Plain links use the target as anchor.
	if res.Anchors["funicular"]["Funicular"] != 1 {
		t.Errorf("anchor 'funicular' = %v", res.Anchors["funicular"])
	}
	if res.Stats.AnchorSurfaces == 0 {
		t.Error("no anchor surfaces")
	}
}

func TestFileAndSectionLinksSkipped(t *testing.T) {
	res := parseSample(t)
	g := res.Graph
	if g.ByTitle("File:Photo.jpg") != kb.Invalid {
		t.Error("file link created a node")
	}
	// [[Golden Gate#History]] is a red link (no Golden Gate page);
	// counted, not created.
	if g.ByTitle("Golden Gate") != kb.Invalid {
		t.Error("red link created a node")
	}
	if res.Stats.LinksRed == 0 {
		t.Error("red links should be counted")
	}
}

func TestMaxPages(t *testing.T) {
	res, err := Parse(strings.NewReader(sampleDump), Options{MaxPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PagesRead != 3 { // stops after reading the 3rd
		t.Errorf("PagesRead = %d", res.Stats.PagesRead)
	}
	if res.Graph.NumArticles() > 2 {
		t.Errorf("articles = %d, want ≤ 2", res.Graph.NumArticles())
	}
}

func TestParseMalformedXML(t *testing.T) {
	if _, err := Parse(strings.NewReader("<mediawiki><page><title>X</title"), Options{}); err == nil {
		t.Error("malformed XML should error")
	}
}

func TestExtractLinksTable(t *testing.T) {
	links := extractLinks("[[A]] [[b|Bee]] [[Category:Cats]] [[:Category:Cats]] [[File:x.png]] [[C#sec|see]] [[]] [[nested [[x]]]]")
	var targets []string
	for _, l := range links {
		targets = append(targets, l.target)
	}
	want := map[string]bool{"A": true, "B": true, "Category:Cats": true, "C": true}
	for _, tgt := range targets {
		if !want[tgt] {
			t.Errorf("unexpected target %q", tgt)
		}
	}
	// Category appears twice: once as tag, once escaped.
	catTags := 0
	for _, l := range links {
		if l.target == "Category:Cats" && l.isCat {
			catTags++
		}
	}
	if catTags != 1 {
		t.Errorf("category tags = %d, want 1 (escaped link is not a tag)", catTags)
	}
}

func TestCanonicalTitle(t *testing.T) {
	for _, tc := range []struct {
		in    string
		ns    int
		want  string
		isCat bool
		keep  bool
	}{
		{"cable car", 0, "Cable car", false, true},
		{"Cable_car", 0, "Cable car", false, true},
		{"Category:cable railways", 14, "Category:Cable railways", true, true},
		{"Template:X", 10, "", false, false},
		{"", 0, "", false, false},
	} {
		got, isCat, keep := canonicalTitle(tc.in, tc.ns)
		if got != tc.want || isCat != tc.isCat || keep != tc.keep {
			t.Errorf("canonicalTitle(%q,%d) = (%q,%v,%v), want (%q,%v,%v)",
				tc.in, tc.ns, got, isCat, keep, tc.want, tc.isCat, tc.keep)
		}
	}
}

package wikixml

import (
	"strings"
	"testing"
)

// FuzzWikiXMLParse feeds arbitrary bytes to the dump importer. The
// contract under hostile input: return an error or a result — never
// panic, never hang (MaxPages bounds the walk) — and parse
// deterministically.
func FuzzWikiXMLParse(f *testing.F) {
	f.Add(sampleDump)
	f.Add(`<mediawiki><page><title>A</title><ns>0</ns><revision><text>[[B|b]] [[Category:C]]</text></revision></page></mediawiki>`)
	f.Add(`<mediawiki><page><title>R</title><ns>0</ns><redirect title="A"/><revision><text>#REDIRECT [[A]]</text></revision></page></mediawiki>`)
	f.Add(`<?xml version="1.0"?><mediawiki><page><title>Trunc`)
	f.Add(`<page><title></title><ns>zzz</ns></page>`)
	f.Add("no xml here")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		res, err := Parse(strings.NewReader(data), Options{MaxPages: 64})
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		again, err := Parse(strings.NewReader(data), Options{MaxPages: 64})
		if err != nil {
			t.Fatalf("accepted once, rejected on re-parse: %v", err)
		}
		if again.Stats != res.Stats {
			t.Fatalf("non-deterministic parse: stats %+v then %+v", res.Stats, again.Stats)
		}
	})
}

package index

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
)

func windowIndex(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder(analysis.Analyzer{})
	// positions:         0     1      2      3     4
	b.Add("close", "cable car station near town")
	b.Add("reversed", "car cable")
	b.Add("spread", "cable x y z car")
	b.Add("far", "cable a b c d e f g h i j car")
	b.Add("repeat", "cable car cable q car")
	b.Add("partial", "cable only here")
	return b.Build()
}

func TestUnorderedWindowBasics(t *testing.T) {
	ix := windowIndex(t)
	// Window 2: adjacent in any order.
	p := ix.UnorderedWindowPostings([]string{"cable", "car"}, 2)
	gotDocs := map[string]int32{}
	for i, d := range p.Docs {
		gotDocs[ix.DocName(d)] = p.Freqs[i]
	}
	want := map[string]int32{"close": 1, "reversed": 1, "repeat": 2}
	if !reflect.DeepEqual(gotDocs, want) {
		t.Errorf("window-2 matches = %v, want %v", gotDocs, want)
	}
}

func TestUnorderedWindowWidths(t *testing.T) {
	ix := windowIndex(t)
	// Window 5 additionally admits "spread" (positions 0 and 4).
	p := ix.UnorderedWindowPostings([]string{"cable", "car"}, 5)
	names := map[string]bool{}
	for _, d := range p.Docs {
		names[ix.DocName(d)] = true
	}
	if !names["spread"] || names["far"] {
		t.Errorf("window-5 matches = %v", names)
	}
	// Window 12 admits "far" too.
	p = ix.UnorderedWindowPostings([]string{"cable", "car"}, 12)
	names = map[string]bool{}
	for _, d := range p.Docs {
		names[ix.DocName(d)] = true
	}
	if !names["far"] {
		t.Errorf("window-12 matches = %v", names)
	}
}

func TestUnorderedWindowEdgeCases(t *testing.T) {
	ix := windowIndex(t)
	if got := ix.UnorderedWindowPostings(nil, 4); len(got.Docs) != 0 {
		t.Error("no terms should match nothing")
	}
	// Window below constituent count can never match.
	if got := ix.UnorderedWindowPostings([]string{"cable", "car"}, 1); len(got.Docs) != 0 {
		t.Error("window 1 with 2 terms should match nothing")
	}
	// OOV constituent.
	if got := ix.UnorderedWindowPostings([]string{"cable", "zzz"}, 4); len(got.Docs) != 0 {
		t.Error("OOV constituent should match nothing")
	}
	// Single term behaves like the term itself.
	p := ix.UnorderedWindowPostings([]string{"station"}, 1)
	if len(p.Docs) != 1 || ix.DocName(p.Docs[0]) != "close" {
		t.Errorf("single-term window = %v", p.Docs)
	}
}

func TestUnorderedSupersetOfOrdered(t *testing.T) {
	ix := windowIndex(t)
	ordered := ix.PhrasePostings([]string{"cable", "car"})
	unordered := ix.UnorderedWindowPostings([]string{"cable", "car"}, 2)
	in := map[DocID]bool{}
	for _, d := range unordered.Docs {
		in[d] = true
	}
	for _, d := range ordered.Docs {
		if !in[d] {
			t.Errorf("ordered match %s missing from unordered window", ix.DocName(d))
		}
	}
}

func TestUnorderedWindowTrigram(t *testing.T) {
	b := NewBuilder(analysis.Analyzer{})
	b.Add("hit", "gamma alpha beta")
	b.Add("miss", "alpha filler beta filler filler gamma")
	ix := b.Build()
	p := ix.UnorderedWindowPostings([]string{"alpha", "beta", "gamma"}, 3)
	if len(p.Docs) != 1 || ix.DocName(p.Docs[0]) != "hit" {
		t.Errorf("trigram window = %v", p.Docs)
	}
	p = ix.UnorderedWindowPostings([]string{"alpha", "beta", "gamma"}, 6)
	if len(p.Docs) != 2 {
		t.Errorf("wide trigram window = %v", p.Docs)
	}
}

package index

// PhrasePostings computes the postings of an exact ordered phrase
// (Indri's #1 ordered window): the i-th constituent must occur at
// position p+i. The result is materialised from the constituents'
// positional postings via k-way document intersection followed by
// position-chain matching, so it can be scored exactly like a term,
// including an exact collection frequency for the phrase background
// model — the generalisation "to n-grams" of the paper's feature
// function.
//
// Phrases with out-of-vocabulary constituents have empty postings.
// A single-constituent "phrase" returns a copy of that term's postings.
//
// The returned Postings is always owned by the caller: multi-constituent
// results are materialised fresh, and the single-constituent case is
// deep-copied rather than aliased, so mutating the result can never
// corrupt the index's live postings.
func (ix *Index) PhrasePostings(terms []string) Postings {
	if len(terms) == 0 {
		return Postings{}
	}
	lists := make([]*Postings, len(terms))
	for i, t := range terms {
		lists[i] = ix.PostingsFor(t)
		if lists[i] == nil || len(lists[i].Docs) == 0 {
			return Postings{}
		}
	}
	if len(lists) == 1 {
		return clonePostings(lists[0])
	}
	// Intersect document lists, driving from the rarest constituent.
	rarest := 0
	for i, l := range lists {
		if len(l.Docs) < len(lists[rarest].Docs) {
			rarest = i
		}
	}
	var out Postings
	cursors := make([]int, len(lists))
	for _, doc := range lists[rarest].Docs {
		rows := make([]int, len(lists))
		ok := true
		for i, l := range lists {
			j := advance(l.Docs, cursors[i], doc)
			cursors[i] = j
			if j == len(l.Docs) || l.Docs[j] != doc {
				ok = false
				break
			}
			rows[i] = j
		}
		if !ok {
			continue
		}
		positions := chainPositions(lists, rows)
		if len(positions) == 0 {
			continue
		}
		out.Docs = append(out.Docs, doc)
		out.Freqs = append(out.Freqs, int32(len(positions)))
		out.Positions = append(out.Positions, positions)
	}
	return out
}

// clonePostings deep-copies p; the caller owns every slice of the
// result, including the per-document position lists.
func clonePostings(p *Postings) Postings {
	out := Postings{
		Docs:      append([]DocID(nil), p.Docs...),
		Freqs:     append([]int32(nil), p.Freqs...),
		Positions: make([][]int32, len(p.Positions)),
	}
	for i, pos := range p.Positions {
		out.Positions[i] = append([]int32(nil), pos...)
	}
	return out
}

// advance moves cursor forward in docs (sorted ascending) until
// docs[cursor] >= target, using galloping search to stay near O(log gap).
func advance(docs []DocID, cursor int, target DocID) int {
	if cursor >= len(docs) || docs[cursor] >= target {
		return cursor
	}
	// Gallop to find an upper bound.
	step := 1
	lo := cursor
	hi := cursor + step
	for hi < len(docs) && docs[hi] < target {
		lo = hi
		step *= 2
		hi = cursor + step
	}
	if hi > len(docs) {
		hi = len(docs)
	}
	// Binary search in (lo, hi].
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if docs[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// chainPositions returns the start positions p such that constituent i
// occurs at p+i for all i, given each constituent's row in its postings.
func chainPositions(lists []*Postings, rows []int) []int32 {
	starts := lists[0].Positions[rows[0]]
	matched := make([]int32, 0, len(starts))
	for _, p := range starts {
		ok := true
		for i := 1; i < len(lists); i++ {
			if !containsPos(lists[i].Positions[rows[i]], p+int32(i)) {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, p)
		}
	}
	return matched
}

// containsPos binary-searches a sorted position list.
func containsPos(pos []int32, x int32) bool {
	lo, hi := 0, len(pos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pos[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(pos) && pos[lo] == x
}

package index

// Sharded partitions a document collection across S shards, each a full
// *Index over its subset of the documents. Documents are assigned
// round-robin by DocID: global document g lives in shard g mod S under
// the local ID g div S, so within a shard ascending local IDs correspond
// to ascending global IDs — per-shard DocID tie-breaks therefore agree
// with the global ordering, which is what lets a per-shard top-k merge
// reproduce single-index rankings exactly.
//
// The shards carry only shard-local postings and lengths; the collection
// statistics that smoothing needs (total tokens, collection frequencies,
// document frequencies) must be taken globally — Sharded exposes the
// global totals, and search.ShardedSearcher overrides every query leaf's
// statistics with the cross-shard sums so Dirichlet/JM/BM25 scores are
// bit-identical to evaluating the unsharded index.
type Sharded struct {
	shards    []*Index
	numDocs   int
	totalToks int64
}

// NewSharded splits ix into n round-robin shards. n is clamped to
// [1, NumDocs] (an empty index yields a single empty shard). With n == 1
// the original index is shared, not copied.
//
// Per-shard postings remap Docs to local IDs and copy Freqs rows; the
// Positions rows alias the parent index's slices (both sides treat them
// as immutable, as Index already requires of PostingsFor callers).
func NewSharded(ix *Index, n int) *Sharded {
	if nd := ix.NumDocs(); n > nd {
		n = nd
	}
	if n < 1 {
		n = 1
	}
	// Splitting walks every postings row; a v2-backed index must decode
	// them first (shards themselves are plain in-memory indexes).
	ix.materializeAll()
	sh := &Sharded{numDocs: ix.NumDocs(), totalToks: ix.totalToks}
	if n == 1 {
		sh.shards = []*Index{ix}
		return sh
	}
	sh.shards = make([]*Index, n)
	for s := range sh.shards {
		sh.shards[s] = &Index{
			analyzer: ix.analyzer,
			terms:    make(map[string]int32),
		}
	}
	for g, name := range ix.docNames {
		s := sh.shards[g%n]
		s.docNames = append(s.docNames, name)
		s.docLens = append(s.docLens, ix.docLens[g])
		if len(ix.docTexts) > 0 {
			s.docTexts = append(s.docTexts, ix.docTexts[g])
		}
		s.totalToks += int64(ix.docLens[g])
	}
	for tid, text := range ix.termText {
		p := &ix.postings[tid]
		for row, g := range p.Docs {
			s := sh.shards[int(g)%n]
			id, ok := s.terms[text]
			if !ok {
				id = int32(len(s.termText))
				s.terms[text] = id
				s.termText = append(s.termText, text)
				s.postings = append(s.postings, Postings{})
			}
			sp := &s.postings[id]
			// Docs ascend globally, and g div n is monotone within a
			// residue class, so the local postings stay sorted.
			sp.Docs = append(sp.Docs, g/DocID(n))
			sp.Freqs = append(sp.Freqs, p.Freqs[row])
			sp.Positions = append(sp.Positions, p.Positions[row])
		}
	}
	return sh
}

// NumShards returns the shard count S.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shard returns shard i as a standalone index over its documents.
func (sh *Sharded) Shard(i int) *Index { return sh.shards[i] }

// NumDocs returns the global document count.
func (sh *Sharded) NumDocs() int { return sh.numDocs }

// TotalTokens returns the global collection length |C| in tokens.
func (sh *Sharded) TotalTokens() int64 { return sh.totalToks }

// AvgDocLen returns the global mean document length.
func (sh *Sharded) AvgDocLen() float64 {
	if sh.numDocs == 0 {
		return 0
	}
	return float64(sh.totalToks) / float64(sh.numDocs)
}

// FloorProb converts a global collection frequency into P(w|C) with the
// same 0.5-occurrence OOV floor as Index.FloorProb, over the global
// token count — the global-stats invariant that keeps sharded smoothing
// bit-identical to unsharded.
func (sh *Sharded) FloorProb(cf int64) float64 {
	if sh.totalToks == 0 {
		return 1e-12
	}
	if cf <= 0 {
		return 0.5 / float64(sh.totalToks)
	}
	return float64(cf) / float64(sh.totalToks)
}

// GlobalDoc maps a shard-local document ID back to the global DocID.
func (sh *Sharded) GlobalDoc(shard int, local DocID) DocID {
	return local*DocID(len(sh.shards)) + DocID(shard)
}

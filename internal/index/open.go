package index

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// The unified on-disk entry points. Every index file is opened through
// Open — which sniffs the header magic and negotiates the format — and
// written through WriteFile/Builder.WriteFile, which pick the encoding
// from an explicit Format and commit atomically (temp + fsync +
// rename, the same discipline as the expansion store). The stream-level
// encoders behind them (encodeV1/decodeV1 in io.go, encodeV2/openV2 in
// v2.go) are package-internal; README.md carries the migration table
// from the old exported Encode/Decode pair.

// Format selects an on-disk index encoding.
type Format int

const (
	// FormatV1 is the original stream format ("SQEIX"): one delta+varint
	// postings walk per term with a validated bounds trailer. Decoding
	// materialises the whole index in memory — simple, but startup and
	// resident set scale with the corpus.
	FormatV1 Format = 1
	// FormatV2 is the block-compressed format ("SQEBX"): sectioned
	// layout (doc table, term dictionary, block directory, postings
	// blocks) designed to be mmap'd. Open returns instantly after
	// validating the metadata sections and checksumming the blocks;
	// postings decode lazily per term, and the block directory carries
	// the per-block Block-Max metadata the pruned evaluator skips with.
	FormatV2 Format = 2
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// openOptions collects Open's behaviour switches.
type openOptions struct {
	verify bool
}

// OpenOption customises Open.
type OpenOption func(*openOptions)

// WithVerify makes Open of a FormatV2 file decode and validate every
// postings block up front instead of lazily, failing Open on the first
// inconsistency. This forfeits the instant-startup property and is
// meant for files of untrusted provenance and for integrity tooling;
// the default validation (metadata cross-checks + a full CRC scan)
// already rejects any flip/truncate corruption. FormatV1 files always
// decode (and hence fully validate) on Open.
func WithVerify() OpenOption {
	return func(o *openOptions) { o.verify = true }
}

// Open loads an index file in whichever format its magic declares:
// FormatV1 decodes into memory, FormatV2 maps the file and decodes
// postings lazily per term. Close the returned index when done (a no-op
// for v1).
func Open(path string, opts ...OpenOption) (*Index, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	magic, err := sniffMagic(path)
	if err != nil {
		return nil, err
	}
	switch magic {
	case string(indexMagic), string(indexMagicV1):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ix, err := decodeV1(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return ix, nil
	case string(indexMagicV2):
		data, closeFn, err := mmapFile(path)
		if err != nil {
			return nil, err
		}
		ix, err := openV2(data, closeFn)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if o.verify {
			ix.materializeAll()
			if err := ix.Err(); err != nil {
				ix.Close()
				return nil, fmt.Errorf("%s: verify: %w", path, err)
			}
		}
		return ix, nil
	default:
		return nil, fmt.Errorf("%s: not an index file (magic %q)", path, magic)
	}
}

// sniffMagic reads the 6-byte header that identifies the format.
func sniffMagic(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	head := make([]byte, len(indexMagic))
	n, err := f.Read(head)
	if n < len(head) {
		if err == nil {
			err = fmt.Errorf("short file")
		}
		return "", fmt.Errorf("%s: reading magic: %w", path, err)
	}
	return string(head), nil
}

// WriteFile writes ix to path in the given format, atomically: the
// bytes land in a temp file in the target directory, are fsynced, and
// replace path via rename, so a crash mid-write can never leave a
// half-written index behind the path.
func WriteFile(path string, ix *Index, format Format) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sqe-index-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var werr error
	switch format {
	case FormatV1:
		werr = encodeV1(tmp, ix)
	case FormatV2:
		werr = encodeV2(tmp, ix)
	default:
		werr = fmt.Errorf("index: unknown format %v", format)
	}
	if werr != nil {
		tmp.Close()
		return werr
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteFile builds the index and writes it to path in one step,
// returning the built index. The Builder must not be used afterwards
// (same contract as Build).
func (b *Builder) WriteFile(path string, format Format) (*Index, error) {
	ix := b.Build()
	if err := WriteFile(path, ix, format); err != nil {
		return nil, err
	}
	return ix, nil
}

// Document is one input document for Build.
type Document struct {
	Name string
	Text string
}

// Build indexes docs with the given analyzer — the convenience form of
// the NewBuilder/Add/Build cycle for callers that already hold the
// corpus in memory.
func Build(a analysis.Analyzer, docs []Document) *Index {
	b := NewBuilder(a)
	for _, d := range docs {
		b.Add(d.Name, d.Text)
	}
	return b.Build()
}

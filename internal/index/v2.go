package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
)

// FormatV2: the block-compressed, mmap-able on-disk index.
//
//	magic "SQEBX\x01"
//	byte analyzer flags (bit0 stopwords, bit1 stemming)
//	4 × uint64 LE section lengths: docs, terms, blockdir, postings
//	uint32 LE crc32 of everything above (magic through lengths)
//	docs section     (crc32-trailed)
//	terms section    (crc32-trailed)
//	blockdir section (crc32-trailed)
//	postings section (per-block crc32s live in the block directory)
//
// Each metadata section ends with the IEEE CRC32 (LE) of its payload;
// the stated section length includes those 4 bytes. Section payloads:
//
//	docs:   uvarint numDocs; per doc: uvarint len(name), name, uvarint docLen
//	terms:  uvarint numTerms; uvarint blockSize; per term:
//	        uvarint len(text), text, uvarint df, uvarint cf,
//	        uvarint MaxTF, MinDL, MaxRatioTF, MaxRatioDL
//	dir:    per term, per block (numBlocks = ceil(df/blockSize)):
//	        uvarint lastDoc delta (absolute for the term's first block),
//	        uvarint MaxTF, MinDL, MaxRatioTF, MaxRatioDL,
//	        uvarint compressed byte length, uint32 LE crc32 of the bytes
//
// Block byte offsets are the running sum of the directory's lengths, in
// directory order, from the start of the postings section; the sum must
// land exactly on the section's end. Every block encodes:
//
//	docs:      delta-uvarints; the first document is delta-coded against
//	           the previous block's lastDoc (absolute in the term's first
//	           block), later ones against their predecessor, all deltas
//	           strictly positive past the first
//	freqs:     uvarint per document
//	positions: per document, freq delta-uvarints (first absolute)
//
// Loading (openV2) eagerly decodes only the three metadata sections —
// O(vocabulary + blocks), no per-posting work — cross-validates them
// (stored whole-list bounds must equal the merge of the stored block
// bounds; directory lengths must tile the postings section exactly) and
// CRC-scans the postings blocks, so flip/truncate corruption anywhere
// in the file fails Open deterministically. Postings are then served
// two ways. Whole-row materialisation (termPostings) decodes a term on
// first use; that decoder re-derives each block's bound summary from
// the decoded postings and ADOPTS the derived values on disagreement
// (recording the event via Index.Err). Streaming block cursors
// (TermCursor.ResetStream, stream.go) instead decode one block at a
// time and TRUST the stored, CRC-tied, Open-cross-validated directory
// for block selection and score bounds — they re-derive each decoded
// block's summary and record a disagreement via Index.Err, so a
// CRC-consistent file whose bounds lie is detected the moment a lied-
// about block is decoded and the query degrades rather than silently
// dropping documents. Open(..., WithVerify()) forces every term through
// the full decoder up front, the right mode for untrusted files.

var indexMagicV2 = []byte("SQEBX\x01")

const (
	// maxBlockSize bounds the stored block size; anything larger is a
	// hostile header (a block must fit comfortably in decode buffers).
	maxBlockSize = 1 << 20
	// maxFreq mirrors decodeV1's per-posting frequency cap.
	maxFreq = 1 << 24
	// maxPosition bounds decoded token positions so hostile deltas
	// cannot overflow int32 accumulation.
	maxPosition = 1 << 30
)

var errBlockSizeLate = errors.New("index: SetBlockSize after block summaries were derived")

func errBlockSizeRange(n int) error {
	return fmt.Errorf("index: block size %d outside [1, %d]", n, maxBlockSize)
}

// lazyPostings is the decode-on-demand postings source behind a
// FormatV2 index: the mmap'd postings section plus the block directory
// locating and checksumming every block.
type lazyPostings struct {
	post    []byte        // postings section (a view into the mapping)
	extents []blockExtent // one per block, directory order
	starts  []int32       // per term: first extent index; len numTerms+1
	once    []sync.Once   // per term
	df      []int32       // per term: stored document frequency
	cf      []int64       // per term: stored collection frequency
	blockSz int
	crcOK   []uint32 // 1 bit per extent: block CRC re-verified since Open

	closeFn  func() error
	closed   atomic.Bool
	firstErr atomic.Pointer[error]
}

// blockExtent locates one compressed block inside the postings section.
type blockExtent struct {
	off  int64
	size int32
	crc  uint32
}

// verifyBlock checksums extent slot's bytes against the directory at
// most once per slot since Open. Open already bulk-verified every block,
// so the per-decode check only defends against the mapping changing
// under a live index — a once-per-block property, not a per-decode one.
// The first decode of a block (eager or streaming) re-verifies its CRC
// and sets the sticky bit; every later decode of the same block skips
// straight to parsing, which is what keeps repeated streaming decodes
// of a hot block off the checksum path.
func (lz *lazyPostings) verifyBlock(slot int, buf []byte) bool {
	word, bit := &lz.crcOK[slot>>5], uint32(1)<<(slot&31)
	if atomic.LoadUint32(word)&bit != 0 {
		return true
	}
	if crc32.ChecksumIEEE(buf) != lz.extents[slot].crc {
		return false
	}
	for {
		old := atomic.LoadUint32(word)
		if atomic.CompareAndSwapUint32(word, old, old|bit) {
			return true
		}
	}
}

func (lz *lazyPostings) close() error {
	if !lz.closed.CompareAndSwap(false, true) {
		return nil
	}
	if lz.closeFn == nil {
		return nil
	}
	return lz.closeFn()
}

func (lz *lazyPostings) err() error {
	if p := lz.firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (lz *lazyPostings) record(err error) {
	lz.firstErr.CompareAndSwap(nil, &err)
}

// materialize decodes term id's blocks into ix.postings[id]. Called
// under the term's sync.Once. Structural failures leave the row empty
// (the term scores as if absent) and are recorded — unreachable in
// practice behind Open's CRC scan, but the decoder refuses to guess.
// Bound summaries that disagree with the decoded postings are replaced
// by the derived (exact) values, keeping pruning score-safe even when a
// CRC-consistent file lies about them.
func (lz *lazyPostings) materialize(ix *Index, id int32) {
	if lz.closed.Load() {
		lz.record(fmt.Errorf("index: term %d materialised after Close", id))
		return
	}
	df := int(lz.df[id])
	if df == 0 {
		return
	}
	var p Postings
	p.Docs = make([]DocID, 0, prealloc(uint64(df)))
	p.Freqs = make([]int32, 0, prealloc(uint64(df)))
	p.Positions = make([][]int32, 0, prealloc(uint64(df)))
	base := DocID(-1) // first block's first doc is absolute
	dirty := false
	for b := lz.starts[id]; b < lz.starts[id+1]; b++ {
		blk := int(b - lz.starts[id])
		ext := lz.extents[b]
		buf := lz.post[ext.off : ext.off+int64(ext.size)]
		if !lz.verifyBlock(int(b), buf) {
			lz.record(fmt.Errorf("index: term %q block %d checksum mismatch", ix.termText[id], blk))
			ix.postings[id] = Postings{}
			return
		}
		want := &ix.blockBounds[id][blk]
		n := lz.blockSz
		if rest := df - blk*lz.blockSz; rest < n {
			n = rest
		}
		derived, err := decodeBlock(buf, base, n, int32(len(ix.docLens)), ix.docLens, &p)
		if err != nil {
			lz.record(fmt.Errorf("index: term %q block %d: %w", ix.termText[id], blk, err))
			ix.postings[id] = Postings{}
			return
		}
		if derived != *want {
			*want = derived
			dirty = true
		}
		base = p.Docs[len(p.Docs)-1]
	}
	if dirty {
		// The directory lied (possible only for a deliberately crafted
		// file — Open's CRC scan ties it to its stored bytes, not to the
		// postings). The decoded postings are authoritative: rebuild the
		// whole-list summary from the corrected blocks and surface the
		// event. Search materialises a term before reading its bounds,
		// so the corrected values are the ones pruning sees.
		ix.termBounds[id] = mergeBlockBounds(ix.blockBounds[id])
		lz.record(fmt.Errorf("index: term %q stored block bounds disagreed with postings (corrected)", ix.termText[id]))
	}
	if got := p.CollectionFreq(); got != lz.cf[id] {
		lz.record(fmt.Errorf("index: term %q stored cf %d != decoded %d", ix.termText[id], lz.cf[id], got))
	}
	ix.postings[id] = p
}

// decodeBlock decodes one compressed block (exactly n postings) into p
// and returns the bound summary derived from what it decoded. The
// materialiser's whole-row form of decodeBlockInto.
func decodeBlock(buf []byte, base DocID, n int, numDocs int32, docLens []int32, p *Postings) (BlockBounds, error) {
	var bb BlockBounds
	start := len(p.Docs)
	if err := decodeBlockInto(buf, base, n, numDocs, &p.Docs, &p.Freqs, &p.Positions); err != nil {
		return bb, err
	}
	last := base // n == 0 decodes nothing; keep the caller's base
	if len(p.Docs) > start {
		last = p.Docs[len(p.Docs)-1]
	}
	sub := Postings{Docs: p.Docs[start:], Freqs: p.Freqs[start:]}
	bb = BlockBounds{LastDoc: last, TermBounds: boundsOf(&sub, docLens)}
	return bb, nil
}

// decodeBlockInto decodes one compressed block (exactly n postings),
// appending documents and frequencies to *docs and *freqs, validating
// structure as it goes: documents strictly ascend from base and stay
// inside the corpus, frequencies sit in (0, maxFreq], every position
// list has freq entries below maxPosition, and the block's bytes are
// consumed exactly. A nil positions pointer validates and discards the
// position data without allocating — the streaming cursor's mode, which
// keeps per-block decode zero-allocation in steady state.
func decodeBlockInto(buf []byte, base DocID, n int, numDocs int32, docs *[]DocID, freqs *[]int32, positions *[][]int32) error {
	pos := 0
	read := func() (uint64, error) {
		v, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return 0, errors.New("truncated uvarint")
		}
		pos += w
		return v, nil
	}
	fstart := len(*freqs)
	prev := base
	for i := 0; i < n; i++ {
		dd, err := read()
		if err != nil {
			return fmt.Errorf("doc %d: %w", i, err)
		}
		var doc DocID
		if prev < 0 {
			doc = DocID(dd)
		} else {
			if dd == 0 {
				return fmt.Errorf("doc %d: zero delta", i)
			}
			doc = prev + DocID(dd)
		}
		if doc < 0 || doc >= DocID(numDocs) || doc < prev {
			return fmt.Errorf("doc %d: id %d outside corpus of %d", i, doc, numDocs)
		}
		prev = doc
		*docs = append(*docs, doc)
	}
	for i := 0; i < n; i++ {
		f, err := read()
		if err != nil {
			return fmt.Errorf("freq %d: %w", i, err)
		}
		if f == 0 || f > maxFreq {
			return fmt.Errorf("freq %d: invalid value %d", i, f)
		}
		*freqs = append(*freqs, int32(f))
	}
	for i := 0; i < n; i++ {
		f := (*freqs)[fstart+i]
		var plist []int32
		if positions != nil {
			plist = make([]int32, 0, prealloc(uint64(f)))
		}
		prevPos := int32(0)
		for j := int32(0); j < f; j++ {
			pd, err := read()
			if err != nil {
				return fmt.Errorf("position %d/%d: %w", i, j, err)
			}
			pp := int32(pd)
			if j > 0 {
				pp = prevPos + int32(pd)
			}
			if pd > maxPosition || pp < 0 || pp > maxPosition {
				return fmt.Errorf("position %d/%d: value out of range", i, j)
			}
			prevPos = pp
			if positions != nil {
				plist = append(plist, pp)
			}
		}
		if positions != nil {
			*positions = append(*positions, plist)
		}
	}
	if pos != len(buf) {
		return fmt.Errorf("%d trailing bytes", len(buf)-pos)
	}
	return nil
}

// encodeBlock appends the block encoding of postings rows [lo, hi) of p
// to dst, delta-coding the first document against base (absolute when
// base < 0).
func encodeBlock(dst []byte, p *Postings, lo, hi int, base DocID) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(x uint64) {
		n := binary.PutUvarint(tmp[:], x)
		dst = append(dst, tmp[:n]...)
	}
	prev := base
	for i := lo; i < hi; i++ {
		doc := p.Docs[i]
		if prev < 0 {
			put(uint64(doc))
		} else {
			put(uint64(doc - prev))
		}
		prev = doc
	}
	for i := lo; i < hi; i++ {
		put(uint64(p.Freqs[i]))
	}
	for i := lo; i < hi; i++ {
		prevPos := int32(0)
		for j, pos := range p.Positions[i] {
			pd := uint64(pos)
			if j > 0 {
				pd = uint64(pos - prevPos)
			}
			prevPos = pos
			put(pd)
		}
	}
	return dst
}

// crcTrail appends a section payload's IEEE CRC32 (LE), producing the
// on-disk form of a metadata section.
func crcTrail(payload []byte) []byte {
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	return append(payload, tail[:]...)
}

// encodeV2 writes ix in FormatV2. The index must be fully materialised
// (the writer walks every postings row); encode-side callers guarantee
// that via materializeAll.
func encodeV2(w io.Writer, ix *Index) error {
	ix.materializeAll()
	ix.ensureBounds()
	ix.ensureBlockBounds()
	bs := ix.blockSizeOf()

	var tmp [binary.MaxVarintLen64]byte
	appendUvarint := func(dst []byte, x uint64) []byte {
		n := binary.PutUvarint(tmp[:], x)
		return append(dst, tmp[:n]...)
	}

	// Docs section.
	var docs []byte
	docs = appendUvarint(docs, uint64(len(ix.docNames)))
	for d, name := range ix.docNames {
		docs = appendUvarint(docs, uint64(len(name)))
		docs = append(docs, name...)
		docs = appendUvarint(docs, uint64(ix.docLens[d]))
	}
	docs = crcTrail(docs)

	// Terms section.
	var terms []byte
	terms = appendUvarint(terms, uint64(len(ix.termText)))
	terms = appendUvarint(terms, uint64(bs))
	for tid, text := range ix.termText {
		p := &ix.postings[tid]
		terms = appendUvarint(terms, uint64(len(text)))
		terms = append(terms, text...)
		terms = appendUvarint(terms, uint64(len(p.Docs)))
		terms = appendUvarint(terms, uint64(p.CollectionFreq()))
		b := ix.termBounds[tid]
		for _, v := range [4]int32{b.MaxTF, b.MinDL, b.MaxRatioTF, b.MaxRatioDL} {
			terms = appendUvarint(terms, uint64(v))
		}
	}
	terms = crcTrail(terms)

	// Block directory + postings sections, built together.
	var dir, post []byte
	var crcBuf [4]byte
	for tid := range ix.termText {
		p := &ix.postings[tid]
		prevLast := DocID(-1)
		for b, blk := range ix.blockBounds[tid] {
			lo := b * bs
			hi := lo + bs
			if hi > len(p.Docs) {
				hi = len(p.Docs)
			}
			base := DocID(-1)
			if b > 0 {
				base = prevLast
			}
			start := len(post)
			post = encodeBlock(post, p, lo, hi, base)
			blkBytes := post[start:]
			if b == 0 {
				dir = appendUvarint(dir, uint64(blk.LastDoc))
			} else {
				dir = appendUvarint(dir, uint64(blk.LastDoc-prevLast))
			}
			prevLast = blk.LastDoc
			for _, v := range [4]int32{blk.MaxTF, blk.MinDL, blk.MaxRatioTF, blk.MaxRatioDL} {
				dir = appendUvarint(dir, uint64(v))
			}
			dir = appendUvarint(dir, uint64(len(blkBytes)))
			binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(blkBytes))
			dir = append(dir, crcBuf[:]...)
		}
	}
	dir = crcTrail(dir)

	// Header, CRC-trailed like the metadata sections so a flipped flags
	// byte or length cannot open quietly.
	var flags byte
	if ix.analyzer.RemoveStopwords {
		flags |= 1
	}
	if ix.analyzer.Stem {
		flags |= 2
	}
	head := append([]byte(nil), indexMagicV2...)
	head = append(head, flags)
	var u64 [8]byte
	for _, n := range [4]int{len(docs), len(terms), len(dir), len(post)} {
		binary.LittleEndian.PutUint64(u64[:], uint64(n))
		head = append(head, u64[:]...)
	}
	head = crcTrail(head)

	bw := bufio.NewWriter(w)
	for _, sec := range [][]byte{head, docs, terms, dir, post} {
		if _, err := bw.Write(sec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// sectionReader walks one CRC-trailed metadata section.
type sectionReader struct {
	buf  []byte
	pos  int
	name string
}

func newSection(data []byte, name string) (*sectionReader, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("index: %s section too short (%d bytes)", name, len(data))
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("index: %s section checksum mismatch", name)
	}
	return &sectionReader{buf: payload, name: name}, nil
}

func (s *sectionReader) uvarint(what string) (uint64, error) {
	v, w := binary.Uvarint(s.buf[s.pos:])
	if w <= 0 {
		return 0, fmt.Errorf("index: %s section: truncated %s", s.name, what)
	}
	s.pos += w
	return v, nil
}

func (s *sectionReader) bytes(n uint64, what string) ([]byte, error) {
	if n > uint64(len(s.buf)-s.pos) {
		return nil, fmt.Errorf("index: %s section: %s length %d overruns section", s.name, what, n)
	}
	b := s.buf[s.pos : s.pos+int(n)]
	s.pos += int(n)
	return b, nil
}

func (s *sectionReader) u32() (uint32, error) {
	if len(s.buf)-s.pos < 4 {
		return 0, fmt.Errorf("index: %s section: truncated u32", s.name)
	}
	v := binary.LittleEndian.Uint32(s.buf[s.pos:])
	s.pos += 4
	return v, nil
}

func (s *sectionReader) done() error {
	if s.pos != len(s.buf) {
		return fmt.Errorf("index: %s section: %d trailing bytes", s.name, len(s.buf)-s.pos)
	}
	return nil
}

// openV2 builds a lazily-decoding Index over a complete FormatV2 image
// (an mmap'd file; closeFn unmaps it). On any validation failure the
// mapping is closed and an error returned.
func openV2(data []byte, closeFn func() error) (*Index, error) {
	ix, err := parseV2(data, closeFn)
	if err != nil {
		if closeFn != nil {
			closeFn()
		}
		return nil, err
	}
	return ix, nil
}

func parseV2(data []byte, closeFn func() error) (*Index, error) {
	headLen := len(indexMagicV2) + 1 + 4*8 + 4
	if len(data) < headLen {
		return nil, fmt.Errorf("index: file too short (%d bytes)", len(data))
	}
	if string(data[:len(indexMagicV2)]) != string(indexMagicV2) {
		return nil, fmt.Errorf("index: bad magic %q", data[:len(indexMagicV2)])
	}
	if crc32.ChecksumIEEE(data[:headLen-4]) != binary.LittleEndian.Uint32(data[headLen-4:]) {
		return nil, errors.New("index: header checksum mismatch")
	}
	flags := data[len(indexMagicV2)]
	var secLen [4]uint64
	off := len(indexMagicV2) + 1
	var total uint64 = uint64(headLen)
	for i := range secLen {
		secLen[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
		total += secLen[i]
		if total > uint64(len(data)) {
			return nil, fmt.Errorf("index: section lengths overrun file (%d > %d)", total, len(data))
		}
	}
	if total != uint64(len(data)) {
		return nil, fmt.Errorf("index: sections cover %d of %d bytes", total, len(data))
	}
	off += 4 // the header CRC; sections start after it
	cut := func(n uint64) []byte {
		b := data[off : off+int(n)]
		off += int(n)
		return b
	}
	docsSec, termsSec, dirSec := cut(secLen[0]), cut(secLen[1]), cut(secLen[2])
	post := cut(secLen[3])

	ix := &Index{
		analyzer: analysis.Analyzer{RemoveStopwords: flags&1 != 0, Stem: flags&2 != 0},
		terms:    make(map[string]int32),
	}

	// Docs.
	ds, err := newSection(docsSec, "docs")
	if err != nil {
		return nil, err
	}
	numDocs, err := ds.uvarint("doc count")
	if err != nil {
		return nil, err
	}
	if numDocs > 1<<31 {
		return nil, fmt.Errorf("index: doc count %d exceeds limit", numDocs)
	}
	ix.docNames = make([]string, 0, prealloc(numDocs))
	ix.docLens = make([]int32, 0, prealloc(numDocs))
	for d := uint64(0); d < numDocs; d++ {
		nl, err := ds.uvarint("doc name length")
		if err != nil {
			return nil, err
		}
		if nl > 1<<16 {
			return nil, fmt.Errorf("index: doc name length %d exceeds limit", nl)
		}
		name, err := ds.bytes(nl, "doc name")
		if err != nil {
			return nil, err
		}
		dl, err := ds.uvarint("doc length")
		if err != nil {
			return nil, err
		}
		if dl > 1<<31 {
			return nil, fmt.Errorf("index: doc %d length %d out of range", d, dl)
		}
		ix.docNames = append(ix.docNames, string(name))
		ix.docLens = append(ix.docLens, int32(dl))
		ix.totalToks += int64(dl)
	}
	if err := ds.done(); err != nil {
		return nil, err
	}

	// Terms.
	ts, err := newSection(termsSec, "terms")
	if err != nil {
		return nil, err
	}
	numTerms, err := ts.uvarint("term count")
	if err != nil {
		return nil, err
	}
	if numTerms > 1<<31 {
		return nil, fmt.Errorf("index: term count %d exceeds limit", numTerms)
	}
	bsz, err := ts.uvarint("block size")
	if err != nil {
		return nil, err
	}
	if bsz < 1 || bsz > maxBlockSize {
		return nil, errBlockSizeRange(int(bsz))
	}
	bs := int(bsz)
	ix.blockSize = bs
	ix.termText = make([]string, 0, prealloc(numTerms))
	ix.termBounds = make([]TermBounds, 0, prealloc(numTerms))
	dfs := make([]int32, 0, prealloc(numTerms))
	cfs := make([]int64, 0, prealloc(numTerms))
	totalBlocks := 0
	for t := uint64(0); t < numTerms; t++ {
		tl, err := ts.uvarint("term length")
		if err != nil {
			return nil, err
		}
		if tl > 1<<16 {
			return nil, fmt.Errorf("index: term length %d exceeds limit", tl)
		}
		tb, err := ts.bytes(tl, "term")
		if err != nil {
			return nil, err
		}
		text := string(tb)
		if _, dup := ix.terms[text]; dup {
			return nil, fmt.Errorf("index: duplicate term %q", text)
		}
		df, err := ts.uvarint("df")
		if err != nil {
			return nil, err
		}
		if df > numDocs {
			return nil, fmt.Errorf("index: term %q has %d postings for %d docs", text, df, numDocs)
		}
		cf, err := ts.uvarint("cf")
		if err != nil {
			return nil, err
		}
		if cf < df || cf > df*maxFreq {
			return nil, fmt.Errorf("index: term %q cf %d inconsistent with df %d", text, cf, df)
		}
		var b TermBounds
		for _, field := range [4]*int32{&b.MaxTF, &b.MinDL, &b.MaxRatioTF, &b.MaxRatioDL} {
			v, err := ts.uvarint("bound")
			if err != nil {
				return nil, err
			}
			if v > 1<<31-1 {
				return nil, fmt.Errorf("index: term %q bound value %d out of range", text, v)
			}
			*field = int32(v)
		}
		ix.terms[text] = int32(t)
		ix.termText = append(ix.termText, text)
		ix.termBounds = append(ix.termBounds, b)
		dfs = append(dfs, int32(df))
		cfs = append(cfs, int64(cf))
		totalBlocks += (int(df) + bs - 1) / bs
	}
	if err := ts.done(); err != nil {
		return nil, err
	}

	// Block directory.
	dirs, err := newSection(dirSec, "blockdir")
	if err != nil {
		return nil, err
	}
	lz := &lazyPostings{
		post:    post,
		extents: make([]blockExtent, 0, totalBlocks),
		starts:  make([]int32, len(ix.termText)+1),
		once:    make([]sync.Once, len(ix.termText)),
		blockSz: bs,
		closeFn: closeFn,
	}
	flatBounds := make([]BlockBounds, 0, totalBlocks)
	ix.blockBounds = make([][]BlockBounds, len(ix.termText))
	var postOff int64
	for tid := range ix.termText {
		lz.starts[tid] = int32(len(lz.extents))
		nb := (int(dfs[tid]) + bs - 1) / bs
		prevLast := DocID(-1)
		from := len(flatBounds)
		for b := 0; b < nb; b++ {
			ld, err := dirs.uvarint("lastDoc")
			if err != nil {
				return nil, err
			}
			var last DocID
			if b == 0 {
				last = DocID(ld)
			} else {
				if ld == 0 {
					return nil, fmt.Errorf("index: term %q block %d repeats lastDoc", ix.termText[tid], b)
				}
				last = prevLast + DocID(ld)
			}
			if last < 0 || uint64(last) >= numDocs {
				return nil, fmt.Errorf("index: term %q block %d lastDoc %d outside corpus", ix.termText[tid], b, last)
			}
			prevLast = last
			var bb BlockBounds
			bb.LastDoc = last
			for _, field := range [4]*int32{&bb.MaxTF, &bb.MinDL, &bb.MaxRatioTF, &bb.MaxRatioDL} {
				v, err := dirs.uvarint("block bound")
				if err != nil {
					return nil, err
				}
				if v > 1<<31-1 {
					return nil, fmt.Errorf("index: term %q block bound %d out of range", ix.termText[tid], v)
				}
				*field = int32(v)
			}
			blen, err := dirs.uvarint("block length")
			if err != nil {
				return nil, err
			}
			if blen == 0 || blen > uint64(len(post))-uint64(postOff) {
				return nil, fmt.Errorf("index: term %q block %d length %d overruns postings section", ix.termText[tid], b, blen)
			}
			crc, err := dirs.u32()
			if err != nil {
				return nil, err
			}
			lz.extents = append(lz.extents, blockExtent{off: postOff, size: int32(blen), crc: crc})
			flatBounds = append(flatBounds, bb)
			postOff += int64(blen)
		}
		ix.blockBounds[tid] = flatBounds[from:len(flatBounds):len(flatBounds)]
		// The whole-list summary must be exactly the merge of its blocks;
		// a mismatch means one of the two CRC-valid sections lies.
		if dfs[tid] > 0 && mergeBlockBounds(ix.blockBounds[tid]) != ix.termBounds[tid] {
			return nil, fmt.Errorf("index: term %q stored bounds disagree with its block directory", ix.termText[tid])
		}
		if dfs[tid] == 0 && ix.termBounds[tid] != (TermBounds{}) {
			return nil, fmt.Errorf("index: empty term %q has non-zero bounds", ix.termText[tid])
		}
	}
	lz.starts[len(ix.termText)] = int32(len(lz.extents))
	if err := dirs.done(); err != nil {
		return nil, err
	}
	if postOff != int64(len(post)) {
		return nil, fmt.Errorf("index: block directory covers %d of %d postings bytes", postOff, len(post))
	}

	// CRC-scan the postings blocks: pure sequential checksumming, no
	// decode, no allocation — this is what turns random corruption
	// anywhere in the file into a deterministic Open failure while
	// startup stays free of per-posting work.
	for i, ext := range lz.extents {
		if crc32.ChecksumIEEE(post[ext.off:ext.off+int64(ext.size)]) != ext.crc {
			return nil, fmt.Errorf("index: postings block %d checksum mismatch", i)
		}
	}

	ix.minDocLen = minDocLenOf(ix.docLens)
	ix.postings = make([]Postings, len(ix.termText))
	lz.df = dfs
	lz.cf = cfs
	lz.crcOK = make([]uint32, (len(lz.extents)+31)/32)
	ix.lazy = lz
	return ix, nil
}

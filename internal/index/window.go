package index

// UnorderedWindowPostings computes the postings of Indri's #uwN
// operator: all constituents occur, in any order, within a window of at
// most `window` token positions. It completes the paper's retrieval
// model, whose feature function "generalizes to n-grams and unordered
// term proximity" (Section 2.3).
//
// The per-document frequency counts minimal windows: the standard sweep
// keeps one cursor per constituent and, whenever the current span fits,
// records a match and advances the cursor at the lowest position.
// Constituents must be distinct terms; a window smaller than the number
// of constituents can never match.
func (ix *Index) UnorderedWindowPostings(terms []string, window int) Postings {
	if len(terms) == 0 || window < len(terms) {
		return Postings{}
	}
	lists := make([]*Postings, len(terms))
	for i, t := range terms {
		lists[i] = ix.PostingsFor(t)
		if lists[i] == nil || len(lists[i].Docs) == 0 {
			return Postings{}
		}
	}
	if len(lists) == 1 {
		// Copy, as in PhrasePostings: aliasing the index's live postings
		// would let caller mutations corrupt the index.
		return clonePostings(lists[0])
	}
	rarest := 0
	for i, l := range lists {
		if len(l.Docs) < len(lists[rarest].Docs) {
			rarest = i
		}
	}
	var out Postings
	cursors := make([]int, len(lists))
	for _, doc := range lists[rarest].Docs {
		rows := make([]int, len(lists))
		ok := true
		for i, l := range lists {
			j := advance(l.Docs, cursors[i], doc)
			cursors[i] = j
			if j == len(l.Docs) || l.Docs[j] != doc {
				ok = false
				break
			}
			rows[i] = j
		}
		if !ok {
			continue
		}
		positions := windowMatches(lists, rows, int32(window))
		if len(positions) == 0 {
			continue
		}
		out.Docs = append(out.Docs, doc)
		out.Freqs = append(out.Freqs, int32(len(positions)))
		out.Positions = append(out.Positions, positions)
	}
	return out
}

// windowMatches sweeps the constituents' position lists and returns the
// start position of every minimal window of width ≤ window covering one
// occurrence of each constituent.
func windowMatches(lists []*Postings, rows []int, window int32) []int32 {
	ptr := make([]int, len(lists))
	pos := make([][]int32, len(lists))
	for i := range lists {
		pos[i] = lists[i].Positions[rows[i]]
	}
	var matches []int32
	for {
		lo, hi := int32(1<<30), int32(-1)
		loIdx := -1
		for i := range pos {
			p := pos[i][ptr[i]]
			if p < lo {
				lo, loIdx = p, i
			}
			if p > hi {
				hi = p
			}
		}
		if hi-lo+1 <= window {
			matches = append(matches, lo)
		}
		ptr[loIdx]++
		if ptr[loIdx] == len(pos[loIdx]) {
			return matches
		}
	}
}

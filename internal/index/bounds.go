package index

// Score-bound metadata for dynamic pruning. For every postings list the
// index keeps the small summary from which the MaxScore-style pruned
// evaluator in internal/search derives per-leaf score upper bounds at
// query-compile time: the maximum term frequency, the minimum matching-
// document length, and the (tf, dl) pair maximising tf/dl over the
// list. Which field feeds which retrieval model's bound is the
// evaluator's business (DESIGN.md §5f); the index only guarantees the
// summaries are exact for the postings they describe.

// TermBounds summarises one postings list for score-bound derivation.
// The zero value is the correct summary of an empty postings list.
type TermBounds struct {
	// MaxTF is the largest term frequency in any posting.
	MaxTF int32
	// MinDL is the length of the shortest document in the postings.
	MinDL int32
	// MaxRatioTF and MaxRatioDL are the (tf, dl) of the posting with the
	// largest tf/dl ratio — the argmax pair score functions monotone in
	// tf/dl (Jelinek-Mercer) take their exact bound from. Ties keep the
	// earliest posting; comparisons cross-multiply in int64, so the
	// argmax is exact, with no float rounding.
	MaxRatioTF int32
	MaxRatioDL int32
}

// boundsOf computes the summary of p against a document-length table.
func boundsOf(p *Postings, docLens []int32) TermBounds {
	var b TermBounds
	for i, doc := range p.Docs {
		tf := p.Freqs[i]
		dl := docLens[doc]
		if tf > b.MaxTF {
			b.MaxTF = tf
		}
		if i == 0 || dl < b.MinDL {
			b.MinDL = dl
		}
		if i == 0 || int64(tf)*int64(b.MaxRatioDL) > int64(b.MaxRatioTF)*int64(dl) {
			b.MaxRatioTF, b.MaxRatioDL = tf, dl
		}
	}
	return b
}

func minDocLenOf(docLens []int32) int32 {
	if len(docLens) == 0 {
		return 0
	}
	min := docLens[0]
	for _, dl := range docLens[1:] {
		if dl < min {
			min = dl
		}
	}
	return min
}

// ensureBounds computes the per-term summaries and the corpus minimum
// document length exactly once. Decode pre-populates both (validating
// them against the file's postings as it goes), in which case the
// first call finds them present and keeps them.
func (ix *Index) ensureBounds() {
	ix.boundsOnce.Do(func() {
		if ix.termBounds != nil {
			return
		}
		tb := make([]TermBounds, len(ix.postings))
		for i := range ix.postings {
			tb[i] = boundsOf(&ix.postings[i], ix.docLens)
		}
		ix.termBounds = tb
		ix.minDocLen = minDocLenOf(ix.docLens)
	})
}

// BoundsFor returns the bound summary of an analyzed term; ok is false
// for out-of-vocabulary terms (whose zero summary is still the correct
// description of their empty postings).
func (ix *Index) BoundsFor(term string) (TermBounds, bool) {
	id, ok := ix.terms[term]
	if !ok {
		return TermBounds{}, false
	}
	ix.ensureBounds()
	return ix.termBounds[id], true
}

// PostingsBounds summarises a query-materialised postings list (phrase
// or unordered-window) against this index's document lengths, giving
// positional leaves bounds as exact as stored terms'.
func (ix *Index) PostingsBounds(p *Postings) TermBounds {
	return boundsOf(p, ix.docLens)
}

// MinDocLen returns the length of the shortest document in the
// collection (0 when it is empty) — the argmax of the Dirichlet
// background mass, which the pruned evaluator bounds with it.
func (ix *Index) MinDocLen() int32 {
	ix.ensureBounds()
	return ix.minDocLen
}

package index

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/fault"
)

// Segmented is a live, incrementally updatable index organised as LSM-
// style immutable segments: a mutable in-memory buffer receives streamed
// documents and is flushed on size to immutable on-disk FormatV2
// segments; deletes tombstone documents in place; Compact merges the
// committed segments into one, dropping tombstones. Readers never see a
// half-applied mutation: every mutation installs a new immutable
// Snapshot (an epoch) under an atomic pointer, and in-flight queries pin
// the snapshot they started on via refcounts — a segment's mmap is
// closed (and a compacted-away file deleted) only after the last
// snapshot referencing it is released.
//
// Durability is manifest-rooted (see manifest.go): a segment exists once
// the manifest names it, tombstones of committed segments persist with
// the manifest, and the in-memory buffer is volatile by design — a crash
// loses at most the unflushed buffer, never a committed segment. Every
// commit is atomic (temp + fsync + rename), and OpenSegmented removes
// the orphan files a crash between a segment write and its manifest
// commit can leave behind.
//
// Scoring over a Snapshot is bit-identical to a monolithic index built
// from the same surviving documents in the same order — the contract
// search.SegmentedSearcher builds on and segment_diff_test.go enforces.
// The pieces of the argument live where they apply: global statistics
// here (NumDocs/TotalTokens/FloorProb are tombstone-adjusted exact
// sums), per-leaf statistics and DocID remapping in the searcher.
//
// A Segmented is safe for concurrent use: mutators serialise on an
// internal lock, readers are lock-free (one atomic load + refcount per
// query).
type Segmented struct {
	mu       sync.Mutex
	dir      string
	analyzer analysis.Analyzer
	// flushDocs is the buffer-size flush trigger, in documents.
	flushDocs int

	// disk holds the committed segments, ascending by sequence number —
	// which is ingestion order, the property global DocID assignment
	// relies on. tombs holds their authoritative tombstone sets; the
	// slices are replaced, never appended to, so snapshots alias them
	// safely.
	disk  []*segment
	tombs map[uint64][]DocID

	// buf accumulates streamed documents; bufTombs are deletes that hit
	// buffered docs. bufSealed caches the immutable copy of the buffer
	// at generation bufSealedGen — valid until the next Ingest (deletes
	// do not touch the builder, so the seal survives them).
	buf          *Builder
	bufTombs     []DocID
	bufSealed    *Index
	bufGen       uint64
	bufSealedGen uint64

	nextSeq uint64
	gen     uint64

	cur atomic.Pointer[Snapshot]
	// stale marks cur as behind the buffer: Ingest publishes lazily
	// (sealing the buffer on every streamed document would make ingest
	// quadratic), so Acquire rebuilds the snapshot on first use after a
	// batch of ingests. Flush, Delete, Compact and Close install
	// eagerly — they retire segment references, which must not wait for
	// the next reader.
	stale  atomic.Bool
	closed bool

	ingested    atomic.Int64
	deleted     atomic.Int64
	flushes     atomic.Int64
	compactions atomic.Int64
}

// segment is one committed on-disk segment. refs counts the snapshots
// referencing it; when the count drops to zero the mmap is closed, and —
// if the segment was compacted away (dead) — its file deleted.
type segment struct {
	seq  uint64
	path string
	ix   *Index
	refs atomic.Int32
	dead atomic.Bool
}

func (sg *segment) retain() { sg.refs.Add(1) }

func (sg *segment) release() {
	if sg.refs.Add(-1) != 0 {
		return
	}
	// Last reference: either the segment was compacted away or the
	// Segmented is shutting down. Either way the mapping goes; the file
	// goes only if the manifest no longer names it.
	_ = sg.ix.Close()
	if sg.dead.Load() {
		_ = os.Remove(sg.path)
	}
}

// SegmentedOption configures OpenSegmented.
type SegmentedOption func(*Segmented)

// DefaultFlushDocs is the buffer size (in documents) that triggers an
// automatic flush.
const DefaultFlushDocs = 512

// WithFlushDocs sets the buffer-size flush trigger; n <= 0 keeps the
// default.
func WithFlushDocs(n int) SegmentedOption {
	return func(s *Segmented) {
		if n > 0 {
			s.flushDocs = n
		}
	}
}

// OpenSegmented opens (or creates) a segmented index rooted at dir. It
// replays the manifest, removes orphan files left by a crash between a
// segment write and its manifest commit, opens every committed segment
// (a torn or corrupt segment file fails the open — the manifest named
// it, so its loss is data loss, not debris), and installs the initial
// snapshot. The buffer starts empty: unflushed documents are volatile
// by design.
func OpenSegmented(dir string, a analysis.Analyzer, opts ...SegmentedOption) (*Segmented, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if _, err := cleanOrphans(dir, m); err != nil {
		return nil, err
	}
	s := &Segmented{
		dir:       dir,
		analyzer:  a,
		flushDocs: DefaultFlushDocs,
		tombs:     make(map[uint64][]DocID),
		nextSeq:   m.NextSeq,
	}
	for _, opt := range opts {
		opt(s)
	}
	for _, e := range m.Segments {
		path := filepath.Join(dir, segFileName(e.Seq))
		ix, err := Open(path)
		if err != nil {
			s.closeSegmentsLocked()
			return nil, fmt.Errorf("segment %s: %w", segFileName(e.Seq), err)
		}
		if ix.Analyzer() != a {
			ix.Close()
			s.closeSegmentsLocked()
			return nil, fmt.Errorf("segment %s: analyzer mismatch", segFileName(e.Seq))
		}
		for _, d := range e.Tombs {
			if int(d) >= ix.NumDocs() {
				ix.Close()
				s.closeSegmentsLocked()
				return nil, fmt.Errorf("segment %s: tombstone %d out of range (%d docs)", segFileName(e.Seq), d, ix.NumDocs())
			}
		}
		s.disk = append(s.disk, &segment{seq: e.Seq, path: path, ix: ix})
		s.tombs[e.Seq] = e.Tombs
	}
	s.buf = NewBuilder(a)
	s.installLocked()
	return s, nil
}

// closeSegmentsLocked closes the segments opened so far on an
// OpenSegmented error path (no snapshot exists yet, so refs are unused).
func (s *Segmented) closeSegmentsLocked() {
	for _, sg := range s.disk {
		_ = sg.ix.Close()
	}
	s.disk = nil
}

// Dir returns the segment directory.
func (s *Segmented) Dir() string { return s.dir }

// Analyzer returns the analyzer documents are indexed with.
func (s *Segmented) Analyzer() analysis.Analyzer { return s.analyzer }

// SegmentedStats summarises a live index for operators and tests.
type SegmentedStats struct {
	// DiskSegments is the number of committed on-disk segments.
	DiskSegments int
	// BufferDocs is the number of documents in the unflushed buffer.
	BufferDocs int
	// LiveDocs is the number of searchable (non-tombstoned) documents.
	LiveDocs int
	// Tombstones is the number of deleted-but-not-yet-compacted docs.
	Tombstones int
	// Gen is the snapshot epoch (bumps on every visible mutation).
	Gen uint64
	// Ingested, Deleted, Flushes, Compactions are lifetime counters.
	Ingested, Deleted, Flushes, Compactions int64
}

// Stats reports the live index's current state and lifetime counters.
func (s *Segmented) Stats() SegmentedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SegmentedStats{
		DiskSegments: len(s.disk),
		BufferDocs:   s.buf.NumDocs(),
		Gen:          s.gen,
		Ingested:     s.ingested.Load(),
		Deleted:      s.deleted.Load(),
		Flushes:      s.flushes.Load(),
		Compactions:  s.compactions.Load(),
	}
	for _, sg := range s.disk {
		st.LiveDocs += sg.ix.NumDocs() - len(s.tombs[sg.seq])
		st.Tombstones += len(s.tombs[sg.seq])
	}
	st.LiveDocs += s.buf.NumDocs() - len(s.bufTombs)
	st.Tombstones += len(s.bufTombs)
	return st
}

// NumDocs returns the number of buffered documents (Builder helper for
// the segmented index; the Builder tracks docs it has Added).
func (b *Builder) NumDocs() int { return len(b.docNames) }

// Ingest streams one document into the buffer, flushing to a new
// on-disk segment when the buffer reaches the flush threshold. The
// document is visible to every Acquire that starts after Ingest
// returns (publication is deferred to the next Acquire so that a burst
// of ingests costs one snapshot build, not one per document). On a
// flush error (disk failure, injected fault) the document IS ingested —
// it stays in the buffer, and the flush retries on the next trigger;
// the error reports the failed flush, not a lost write.
func (s *Segmented) Ingest(name, text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("index: segmented index is closed")
	}
	s.buf.Add(name, text)
	s.bufGen++
	s.ingested.Add(1)
	if s.buf.NumDocs() >= s.flushDocs {
		if err := s.flushLocked(); err != nil {
			s.stale.Store(true)
			return fmt.Errorf("index: flush after ingest: %w", err)
		}
		return nil
	}
	s.stale.Store(true)
	return nil
}

// Delete tombstones every live document named name (committed or
// buffered) and returns how many were deleted. Deletes of committed
// documents persist immediately through a manifest commit; a commit
// failure leaves the index (memory and disk) unchanged. Deleting a name
// with no live document is a no-op, not an error.
func (s *Segmented) Delete(name string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("index: segmented index is closed")
	}
	// Stage the new tombstone sets as copies; nothing is visible until
	// the manifest (when needed) commits.
	newTombs := make(map[uint64][]DocID)
	count := 0
	for _, sg := range s.disk {
		cur := s.tombs[sg.seq]
		var add []DocID
		for id := 0; id < sg.ix.NumDocs(); id++ {
			if sg.ix.DocName(DocID(id)) == name && !containsDoc(cur, DocID(id)) {
				add = append(add, DocID(id))
			}
		}
		if len(add) > 0 {
			merged := append(append([]DocID(nil), cur...), add...)
			sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
			newTombs[sg.seq] = merged
			count += len(add)
		}
	}
	var newBufTombs []DocID
	for id := 0; id < s.buf.NumDocs(); id++ {
		if s.buf.docNames[id] == name && !containsDoc(s.bufTombs, DocID(id)) {
			newBufTombs = append(newBufTombs, DocID(id))
		}
	}
	if count == 0 && len(newBufTombs) == 0 {
		return 0, nil
	}
	if len(newTombs) > 0 {
		m := s.manifestLocked(newTombs)
		if err := writeManifest(s.dir, m); err != nil {
			return 0, err
		}
		for seq, t := range newTombs {
			s.tombs[seq] = t
		}
	}
	if len(newBufTombs) > 0 {
		count += len(newBufTombs)
		merged := append(append([]DocID(nil), s.bufTombs...), newBufTombs...)
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		s.bufTombs = merged
	}
	s.deleted.Add(int64(count))
	s.installLocked()
	return count, nil
}

// containsDoc reports whether sorted holds d.
func containsDoc(sorted []DocID, d DocID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= d })
	return i < len(sorted) && sorted[i] == d
}

// manifestLocked renders the current committed state as a manifest,
// with override tombstone sets (keyed by seq) taking precedence.
func (s *Segmented) manifestLocked(override map[uint64][]DocID) *manifest {
	m := &manifest{NextSeq: s.nextSeq}
	for _, sg := range s.disk {
		t := s.tombs[sg.seq]
		if o, ok := override[sg.seq]; ok {
			t = o
		}
		m.Segments = append(m.Segments, manifestEntry{Seq: sg.seq, Tombs: t})
	}
	return m
}

// Flush forces the buffer into a new committed segment; a no-op on an
// empty buffer. Use it before Close for a durable shutdown.
func (s *Segmented) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("index: segmented index is closed")
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	return nil
}

// flushLocked seals the buffer, writes it as segment nextSeq, commits
// the manifest, and installs the new snapshot. On any error the
// in-memory state is unchanged (the buffer keeps its documents); a
// segment file written before a failed manifest commit is debris that
// the next flush overwrites or recovery removes.
func (s *Segmented) flushLocked() error {
	if s.buf.NumDocs() == 0 {
		return nil
	}
	if err := fault.Check(fault.SegmentFlush); err != nil {
		return err
	}
	sealed := s.sealBufferLocked()
	seq := s.nextSeq
	path := filepath.Join(s.dir, segFileName(seq))
	if err := WriteFile(path, sealed, FormatV2); err != nil {
		return err
	}
	ix, err := Open(path)
	if err != nil {
		return err
	}
	m := s.manifestLocked(nil)
	m.Segments = append(m.Segments, manifestEntry{Seq: seq, Tombs: s.bufTombs})
	m.NextSeq = seq + 1
	if err := writeManifest(s.dir, m); err != nil {
		ix.Close()
		return err
	}
	s.disk = append(s.disk, &segment{seq: seq, path: path, ix: ix})
	s.tombs[seq] = s.bufTombs
	s.nextSeq = seq + 1
	s.buf = NewBuilder(s.analyzer)
	s.bufTombs = nil
	s.bufSealed = nil
	s.bufGen++
	s.bufSealedGen = 0
	s.flushes.Add(1)
	s.installLocked()
	return nil
}

// Compact merges every committed segment into one, dropping tombstoned
// documents and preserving ingestion order, then swaps the segment set
// atomically. Old segment files are deleted once the last snapshot
// pinning them is released. The buffer is untouched. A no-op when
// nothing is committed.
func (s *Segmented) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("index: segmented index is closed")
	}
	if len(s.disk) == 0 {
		return nil
	}
	if err := fault.Check(fault.SegmentMerge); err != nil {
		return err
	}
	ins := make([]mergeInput, len(s.disk))
	for i, sg := range s.disk {
		ins[i] = mergeInput{ix: sg.ix, tombs: s.tombs[sg.seq]}
	}
	merged := mergeInputs(s.analyzer, ins)
	seq := s.nextSeq
	path := filepath.Join(s.dir, segFileName(seq))
	if err := WriteFile(path, merged, FormatV2); err != nil {
		return err
	}
	// The crash window: the merged file exists but the manifest does not
	// name it yet. An injected fault here models dying in that window —
	// the orphan file must be cleaned up by recovery, never served.
	if err := fault.Check(fault.SegmentMerge); err != nil {
		return err
	}
	ix, err := Open(path)
	if err != nil {
		return err
	}
	m := &manifest{Segments: []manifestEntry{{Seq: seq}}, NextSeq: seq + 1}
	if err := writeManifest(s.dir, m); err != nil {
		ix.Close()
		return err
	}
	old := s.disk
	s.disk = []*segment{{seq: seq, path: path, ix: ix}}
	s.tombs = map[uint64][]DocID{seq: nil}
	s.nextSeq = seq + 1
	for _, sg := range old {
		sg.dead.Store(true)
	}
	s.compactions.Add(1)
	s.installLocked()
	return nil
}

// Close releases the current snapshot's pin and marks the index closed.
// Mutations and new Acquires fail afterwards; snapshots already pinned
// stay fully usable until released, at which point the last releaser
// closes the segment mmaps. Unflushed buffer documents are discarded —
// call Flush first for a durable shutdown.
func (s *Segmented) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if old := s.cur.Swap(nil); old != nil {
		old.unref()
	}
	return nil
}

// sealBufferLocked returns an immutable Index over the buffer's current
// contents without consuming the Builder, reusing the cached seal when
// no document arrived since it was made. Row slices are copied at the
// outer level only: a past document's inner position slices never grow
// again (the Builder appends to them only while that document is the
// one being Added), so aliasing them is safe.
func (s *Segmented) sealBufferLocked() *Index {
	if s.bufSealed != nil && s.bufSealedGen == s.bufGen {
		return s.bufSealed
	}
	b := s.buf
	ix := &Index{
		analyzer:  b.analyzer,
		terms:     make(map[string]int32, len(b.terms)),
		termText:  append([]string(nil), b.termText...),
		docNames:  append([]string(nil), b.docNames...),
		docLens:   append([]int32(nil), b.docLens...),
		totalToks: b.totalToks,
		postings:  make([]Postings, len(b.termText)),
	}
	for t, id := range b.terms {
		ix.terms[t] = id
	}
	for id := range b.termText {
		ix.postings[id] = Postings{
			Docs:      append([]DocID(nil), b.docs[id]...),
			Freqs:     append([]int32(nil), b.freqs[id]...),
			Positions: append([][]int32(nil), b.pos[id]...),
		}
	}
	s.bufSealed = ix
	s.bufSealedGen = s.bufGen
	return ix
}

// installLocked builds the snapshot of the current state and publishes
// it, releasing the previous snapshot's pin. Fully tombstoned segments
// are skipped — they contribute no live documents and no statistics.
func (s *Segmented) installLocked() {
	s.gen++
	sn := &Snapshot{gen: s.gen}
	sn.refs.Store(1)
	for _, sg := range s.disk {
		t := s.tombs[sg.seq]
		live := sg.ix.NumDocs() - len(t)
		if live == 0 {
			continue
		}
		sg.retain()
		sn.views = append(sn.views, segView{seg: sg, ix: sg.ix, tombs: t, liveDocs: live})
	}
	if s.buf.NumDocs() > len(s.bufTombs) {
		sealed := s.sealBufferLocked()
		sn.views = append(sn.views, segView{ix: sealed, tombs: s.bufTombs, liveDocs: sealed.NumDocs() - len(s.bufTombs)})
	}
	sn.prefix = make([]int, len(sn.views)+1)
	for i, v := range sn.views {
		sn.prefix[i+1] = sn.prefix[i] + v.liveDocs
		sn.numDocs += v.liveDocs
		toks := v.ix.TotalTokens()
		for _, d := range v.tombs {
			toks -= int64(v.ix.DocLen(d))
		}
		sn.totalToks += toks
	}
	if old := s.cur.Swap(sn); old != nil {
		old.unref()
	}
	s.stale.Store(false)
}

// Acquire pins and returns the current snapshot; the caller must
// Release it. Returns nil after Close. When ingests have outrun the
// published snapshot (Ingest defers publication), Acquire installs a
// fresh one first — the caller always sees every document a completed
// Ingest streamed in.
func (s *Segmented) Acquire() *Snapshot {
	for {
		if s.stale.Load() {
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return nil
			}
			if s.stale.Load() {
				s.installLocked()
			}
			sn := s.cur.Load()
			// cur holds its own reference until the next install, so
			// under the mutex the pin cannot fail.
			ok := sn != nil && sn.tryRef()
			s.mu.Unlock()
			if !ok {
				return nil
			}
			return sn
		}
		sn := s.cur.Load()
		if sn == nil {
			return nil
		}
		if sn.tryRef() {
			return sn
		}
	}
}

// Snapshot is an immutable view of a Segmented at one epoch: the
// segment set, each segment's tombstones, and the exact live-collection
// statistics. A Snapshot pins its segments — their mmaps stay open and
// their files on disk — until Release.
type Snapshot struct {
	gen     uint64
	views   []segView
	refs    atomic.Int32
	numDocs int
	// prefix[i] is the global DocID of segment i's first live document;
	// prefix[len(views)] == numDocs.
	prefix    []int
	totalToks int64
}

// segView is one segment's slice of a snapshot.
type segView struct {
	seg      *segment // nil for the buffer's sealed copy
	ix       *Index
	tombs    []DocID
	liveDocs int
}

// tryRef acquires a reference unless the snapshot already drained.
func (sn *Snapshot) tryRef() bool {
	for {
		r := sn.refs.Load()
		if r == 0 {
			return false
		}
		if sn.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (sn *Snapshot) unref() {
	if sn.refs.Add(-1) != 0 {
		return
	}
	for i := range sn.views {
		if sn.views[i].seg != nil {
			sn.views[i].seg.release()
		}
	}
}

// Release unpins the snapshot. The last release of the last snapshot
// referencing a compacted-away segment closes its mmap and deletes its
// file.
func (sn *Snapshot) Release() { sn.unref() }

// Gen returns the snapshot's epoch (monotonic across mutations).
func (sn *Snapshot) Gen() uint64 { return sn.gen }

// NumSegments returns the number of segments with live documents.
func (sn *Snapshot) NumSegments() int { return len(sn.views) }

// Segment returns segment i's index. Tombstoned documents are still
// present in it; Tombstones(i) says which.
func (sn *Snapshot) Segment(i int) *Index { return sn.views[i].ix }

// Tombstones returns segment i's tombstoned local DocIDs, ascending.
// Shared with the snapshot; do not modify.
func (sn *Snapshot) Tombstones(i int) []DocID { return sn.views[i].tombs }

// SegmentLiveDocs returns segment i's live-document count.
func (sn *Snapshot) SegmentLiveDocs(i int) int { return sn.views[i].liveDocs }

// NumDocs returns the number of live documents across all segments.
func (sn *Snapshot) NumDocs() int { return sn.numDocs }

// TotalTokens returns the live collection length |C| in tokens:
// tombstoned documents' tokens are subtracted exactly, so smoothing
// matches a monolithic index over the surviving documents bit for bit.
func (sn *Snapshot) TotalTokens() int64 { return sn.totalToks }

// AvgDocLen returns the live mean document length.
func (sn *Snapshot) AvgDocLen() float64 {
	if sn.numDocs == 0 {
		return 0
	}
	return float64(sn.totalToks) / float64(sn.numDocs)
}

// FloorProb converts a live collection frequency into a probability
// with the same 0.5-occurrence OOV floor as Index.FloorProb.
func (sn *Snapshot) FloorProb(cf int64) float64 {
	if sn.totalToks == 0 {
		return 1e-12
	}
	if cf <= 0 {
		return 0.5 / float64(sn.totalToks)
	}
	return float64(cf) / float64(sn.totalToks)
}

// GlobalDoc maps segment i's local DocID to the global DocID a
// monolithic index over the surviving documents (in ingestion order)
// would assign: the segment's global base plus the document's
// survivor rank. Only meaningful for live (non-tombstoned) documents.
func (sn *Snapshot) GlobalDoc(i int, local DocID) DocID {
	t := sn.views[i].tombs
	before := sort.Search(len(t), func(j int) bool { return t[j] >= local })
	return DocID(sn.prefix[i] + int(local) - before)
}

// LiveDocNames returns the names of every live document in global DocID
// order — the exact document sequence a monolithic rebuild of this
// snapshot would index. Allocates; meant for oracles, tests and tools.
func (sn *Snapshot) LiveDocNames() []string {
	out := make([]string, 0, sn.numDocs)
	for i := range sn.views {
		v := &sn.views[i]
		for id := 0; id < v.ix.NumDocs(); id++ {
			if !containsDoc(v.tombs, DocID(id)) {
				out = append(out, v.ix.DocName(DocID(id)))
			}
		}
	}
	return out
}

// mergeInput is one segment (plus its tombstones) entering a merge.
type mergeInput struct {
	ix    *Index
	tombs []DocID
}

// mergeInputs builds the in-memory index equivalent to indexing every
// surviving document of ins, in order. It merges at the postings level
// — the raw text is not retained — which is exact: per-(term, doc)
// frequencies and positions are preserved verbatim and survivor DocIDs
// are assigned by rank, so the result is indistinguishable from a
// monolithic rebuild for every scoring path, including positional
// (phrase/window) evaluation. Term IDs are assigned by first occurrence
// across inputs; scoring never depends on term order.
func mergeInputs(a analysis.Analyzer, ins []mergeInput) *Index {
	out := &Index{analyzer: a, terms: make(map[string]int32)}
	base := 0
	for _, in := range ins {
		in.ix.materializeAll()
		n := in.ix.NumDocs()
		// remap[local] is the merged DocID, or -1 for tombstoned docs.
		remap := make([]int32, n)
		next := base
		for id := 0; id < n; id++ {
			if containsDoc(in.tombs, DocID(id)) {
				remap[id] = -1
				continue
			}
			remap[id] = int32(next)
			next++
			out.docNames = append(out.docNames, in.ix.DocName(DocID(id)))
			dl := in.ix.DocLen(DocID(id))
			out.docLens = append(out.docLens, dl)
			out.totalToks += int64(dl)
		}
		for tid := 0; tid < in.ix.NumTerms(); tid++ {
			p := in.ix.PostingsByID(int32(tid))
			text := in.ix.TermText(int32(tid))
			var mid int32 = -1
			for pi, doc := range p.Docs {
				nd := remap[doc]
				if nd < 0 {
					continue
				}
				if mid < 0 {
					var ok bool
					if mid, ok = out.terms[text]; !ok {
						mid = int32(len(out.termText))
						out.terms[text] = mid
						out.termText = append(out.termText, text)
						out.postings = append(out.postings, Postings{})
					}
				}
				mp := &out.postings[mid]
				mp.Docs = append(mp.Docs, DocID(nd))
				mp.Freqs = append(mp.Freqs, p.Freqs[pi])
				mp.Positions = append(mp.Positions, p.Positions[pi])
			}
		}
		base = next
	}
	return out
}

package index

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/analysis"
)

// TestIndexDecodeCorruptionRobust mirrors the kb corruption test: random
// bit flips and truncations of a valid index encoding must error, never
// panic.
func TestIndexDecodeCorruptionRobust(t *testing.T) {
	b := NewBuilder(analysis.Standard())
	b.Add("d1", "cable car in the fog over the bay")
	b.Add("d2", "funicular railways climb mountains")
	b.Add("d3", "graffiti on brick walls downtown")
	ix := b.Build()
	var buf bytes.Buffer
	if err := Encode(&buf, ix); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), valid...)
		switch trial % 3 {
		case 0:
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		case 1:
			data = data[:rng.Intn(len(data))]
		case 2:
			for i := 0; i < 4; i++ {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			got, err := Decode(bytes.NewReader(data))
			if err != nil || got == nil {
				return
			}
			// If it decoded, the result must be internally consistent
			// enough to search without panicking.
			_ = got.PostingsFor("cabl")
			_ = got.PhrasePostings([]string{"cabl", "car"})
		}()
	}
}

package index

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/analysis"
)

// TestIndexDecodeCorruptionRobust mirrors the kb corruption test: random
// bit flips and truncations of a valid index encoding must error, never
// panic.
func TestIndexDecodeCorruptionRobust(t *testing.T) {
	b := NewBuilder(analysis.Standard())
	b.Add("d1", "cable car in the fog over the bay")
	b.Add("d2", "funicular railways climb mountains")
	b.Add("d3", "graffiti on brick walls downtown")
	ix := b.Build()
	var buf bytes.Buffer
	if err := encodeV1(&buf, ix); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), valid...)
		switch trial % 3 {
		case 0:
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		case 1:
			data = data[:rng.Intn(len(data))]
		case 2:
			for i := 0; i < 4; i++ {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			got, err := decodeV1(bytes.NewReader(data))
			if err != nil || got == nil {
				return
			}
			// If it decoded, the result must be internally consistent
			// enough to search without panicking.
			_ = got.PostingsFor("cabl")
			_ = got.PhrasePostings([]string{"cabl", "car"})
		}()
	}
}

// hostileHeader builds a file that begins like a valid index and then
// lies with the given uvarint values.
func hostileHeader(uvarints ...uint64) []byte {
	data := append([]byte(nil), indexMagic...)
	data = append(data, 0) // analyzer flags
	var buf [10]byte
	for _, v := range uvarints {
		n := putUvarint(buf[:], v)
		data = append(data, buf[:n]...)
	}
	return data
}

func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

// TestDecodeHostileLengthPrefixes feeds the decoder truncated files whose
// length prefixes claim astronomically more data than the input holds.
// The decoder must fail with an error — quickly, and without performing
// allocations proportional to the claimed (multi-GB) sizes.
func TestDecodeHostileLengthPrefixes(t *testing.T) {
	cases := map[string][]byte{
		// 2^30 documents claimed, zero documents present: the naive
		// decoder allocated ~24 GB of doc-name/doc-len backing first.
		"huge doc count": hostileHeader(1 << 30),
		// One real doc, then a term section claiming 2^30 terms.
		"huge term count": append(hostileHeader(1, 1, 'x', 3), func() []byte {
			var buf [10]byte
			n := putUvarint(buf[:], 1<<30)
			return buf[:n]
		}()...),
		// Doc section OK, one term whose single posting claims the
		// maximum legal frequency (2^24 positions) and then truncates.
		"huge freq": append(hostileHeader(1, 1, 'x', 3), func() []byte {
			var out []byte
			var buf [10]byte
			for _, v := range []uint64{1, 1, 'y', 1, 0, 1 << 24} {
				n := putUvarint(buf[:], v)
				out = append(out, buf[:n]...)
			}
			return out
		}()...),
	}
	for name, data := range cases {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		got, err := decodeV1(bytes.NewReader(data))
		runtime.ReadMemStats(&after)
		if err == nil {
			t.Errorf("%s: decoded %v, want error", name, got)
		}
		if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 32<<20 {
			t.Errorf("%s: decoder allocated %d bytes on a %d-byte input", name, alloc, len(data))
		}
	}
}

package index

// Block-level score-bound metadata for Block-Max pruning. A postings
// list is viewed as consecutive fixed-size blocks of DefaultBlockSize
// postings (the last block may be short); every block carries the same
// summary TermBounds keeps for the whole list, plus the block's last
// document. The pruned evaluator in internal/search uses the per-block
// summaries as a middle tier between the O(1) whole-list bound and the
// exact per-posting contribution: a candidate that survives the
// whole-list test can often be rejected by the (much tighter) bound of
// the single block that could contain it, without touching the postings
// at all. The v2 on-disk format (v2.go) stores these summaries in its
// block directory so an mmap-loaded index prunes without decoding; for
// in-memory indexes they are derived lazily here, exactly like
// ensureBounds derives the whole-list summaries.

// DefaultBlockSize is the number of postings per block. 128 keeps the
// per-block metadata under 1% of a typical compressed block while
// giving the evaluator skip granularity fine enough that one heavy
// posting does not poison a long list's bound.
const DefaultBlockSize = 128

// BlockBounds summarises one block of a postings list: the embedded
// TermBounds fields describe exactly the postings of this block (so the
// same per-model bound derivations apply unchanged), and LastDoc is the
// block's final document — the key the evaluator locates blocks by.
// The zero value is the correct summary of an empty block.
type BlockBounds struct {
	// LastDoc is the largest DocID in the block.
	LastDoc DocID
	TermBounds
}

// blockBoundsOf splits p into blocks of size bs and summarises each.
func blockBoundsOf(p *Postings, docLens []int32, bs int) []BlockBounds {
	if len(p.Docs) == 0 {
		return nil
	}
	nb := (len(p.Docs) + bs - 1) / bs
	out := make([]BlockBounds, nb)
	for b := 0; b < nb; b++ {
		lo := b * bs
		hi := lo + bs
		if hi > len(p.Docs) {
			hi = len(p.Docs)
		}
		sub := Postings{Docs: p.Docs[lo:hi], Freqs: p.Freqs[lo:hi]}
		out[b] = BlockBounds{
			LastDoc:    p.Docs[hi-1],
			TermBounds: boundsOf(&sub, docLens),
		}
	}
	return out
}

// mergeBlockBounds recomposes the whole-list summary from per-block
// summaries. Block order is posting order and ties keep the earliest
// block (whose own argmax kept the earliest posting), so the merged
// ratio pair is the same pair boundsOf derives from the full list.
func mergeBlockBounds(blocks []BlockBounds) TermBounds {
	var t TermBounds
	for i, b := range blocks {
		if b.MaxTF > t.MaxTF {
			t.MaxTF = b.MaxTF
		}
		if i == 0 || b.MinDL < t.MinDL {
			t.MinDL = b.MinDL
		}
		if i == 0 || int64(b.MaxRatioTF)*int64(t.MaxRatioDL) > int64(t.MaxRatioTF)*int64(b.MaxRatioDL) {
			t.MaxRatioTF, t.MaxRatioDL = b.MaxRatioTF, b.MaxRatioDL
		}
	}
	return t
}

// blockSizeOf returns the index's block size (DefaultBlockSize unless
// SetBlockSize or a v2 file chose another).
func (ix *Index) blockSizeOf() int {
	if ix.blockSize > 0 {
		return ix.blockSize
	}
	return DefaultBlockSize
}

// BlockSize returns the posting count per block used by this index's
// block-level summaries.
func (ix *Index) BlockSize() int { return ix.blockSizeOf() }

// SetBlockSize overrides the block size used when deriving block-level
// summaries (and when writing the index in FormatV2). It exists for
// tests and tuning experiments that need many short blocks on small
// corpora; it must be called before the first search / block-bound
// access — once the summaries exist the call is rejected.
func (ix *Index) SetBlockSize(n int) error {
	if n < 1 || n > maxBlockSize {
		return errBlockSizeRange(n)
	}
	if ix.blockBounds != nil {
		return errBlockSizeLate
	}
	ix.blockSize = n
	return nil
}

// ensureBlockBounds derives every term's block summaries exactly once.
// A v2 load pre-populates them from the file's block directory, in
// which case the first call finds them present and keeps them.
func (ix *Index) ensureBlockBounds() {
	ix.blockOnce.Do(func() {
		if ix.blockBounds != nil {
			return
		}
		bs := ix.blockSizeOf()
		bb := make([][]BlockBounds, len(ix.postings))
		for i := range ix.postings {
			bb[i] = blockBoundsOf(&ix.postings[i], ix.docLens, bs)
		}
		ix.blockBounds = bb
	})
}

// BlockBoundsFor returns the block summaries of an analyzed term in
// posting order; ok is false for out-of-vocabulary terms. The slice is
// shared with the index and must not be modified.
func (ix *Index) BlockBoundsFor(term string) ([]BlockBounds, bool) {
	id, ok := ix.terms[term]
	if !ok {
		return nil, false
	}
	ix.ensureBlockBounds()
	return ix.blockBounds[id], true
}

// PostingsBlockBounds summarises a query-materialised postings list
// (phrase or unordered-window) block by block against this index's
// document lengths, so positional leaves get Block-Max metadata as
// tight as stored terms'.
func (ix *Index) PostingsBlockBounds(p *Postings) []BlockBounds {
	return blockBoundsOf(p, ix.docLens, ix.blockSizeOf())
}

package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func boundsIndex(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder(analysis.Analyzer{})
	b.Add("D0", "a a a b")    // len 4: a tf=3, b tf=1
	b.Add("D1", "a b b")      // len 3: a tf=1, b tf=2
	b.Add("D2", "c")          // len 1: c tf=1
	b.Add("D3", "a c c c c ") // len 5
	return b.Build()
}

func TestBoundsFor(t *testing.T) {
	ix := boundsIndex(t)
	cases := []struct {
		term string
		want TermBounds
	}{
		// a: postings (D0 tf=3 dl=4), (D1 tf=1 dl=3), (D3 tf=1 dl=5);
		// best ratio 3/4.
		{"a", TermBounds{MaxTF: 3, MinDL: 3, MaxRatioTF: 3, MaxRatioDL: 4}},
		// b: (D0 tf=1 dl=4), (D1 tf=2 dl=3); best ratio 2/3.
		{"b", TermBounds{MaxTF: 2, MinDL: 3, MaxRatioTF: 2, MaxRatioDL: 3}},
		// c: (D2 tf=1 dl=1), (D3 tf=4 dl=5); 1/1 > 4/5, argmax keeps D2.
		{"c", TermBounds{MaxTF: 4, MinDL: 1, MaxRatioTF: 1, MaxRatioDL: 1}},
	}
	for _, c := range cases {
		got, ok := ix.BoundsFor(c.term)
		if !ok {
			t.Fatalf("BoundsFor(%q): not found", c.term)
		}
		if got != c.want {
			t.Errorf("BoundsFor(%q) = %+v, want %+v", c.term, got, c.want)
		}
	}
	if _, ok := ix.BoundsFor("zzz"); ok {
		t.Error("BoundsFor(OOV) reported ok")
	}
	if got := ix.MinDocLen(); got != 1 {
		t.Errorf("MinDocLen = %d, want 1", got)
	}
}

func TestBoundsRatioTieKeepsEarliest(t *testing.T) {
	// Two postings with the exact same ratio (1/2 and 2/4): the argmax
	// comparison is strict, so the earlier posting wins.
	b := NewBuilder(analysis.Analyzer{})
	b.Add("D0", "a x")     // tf=1 dl=2
	b.Add("D1", "a a x x") // tf=2 dl=4
	ix := b.Build()
	got, _ := ix.BoundsFor("a")
	if got.MaxRatioTF != 1 || got.MaxRatioDL != 2 {
		t.Fatalf("ratio argmax = (%d,%d), want earliest (1,2)", got.MaxRatioTF, got.MaxRatioDL)
	}
}

func TestPostingsBoundsEmpty(t *testing.T) {
	ix := boundsIndex(t)
	var empty Postings
	if got := ix.PostingsBounds(&empty); got != (TermBounds{}) {
		t.Fatalf("empty postings bounds = %+v, want zero", got)
	}
}

func TestMinDocLenEmptyIndex(t *testing.T) {
	ix := NewBuilder(analysis.Analyzer{}).Build()
	if got := ix.MinDocLen(); got != 0 {
		t.Fatalf("empty index MinDocLen = %d, want 0", got)
	}
}

// TestBoundsRoundTrip: v2 files carry the bounds and reload them intact.
func TestBoundsRoundTrip(t *testing.T) {
	ix := boundsIndex(t)
	var buf bytes.Buffer
	if err := encodeV1(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), indexMagic) {
		t.Fatalf("encoded file does not start with the v2 magic")
	}
	got, err := decodeV1(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range []string{"a", "b", "c"} {
		wb, _ := ix.BoundsFor(term)
		gb, ok := got.BoundsFor(term)
		if !ok || gb != wb {
			t.Errorf("decoded BoundsFor(%q) = %+v ok=%v, want %+v", term, gb, ok, wb)
		}
	}
	if got.MinDocLen() != ix.MinDocLen() {
		t.Errorf("decoded MinDocLen = %d, want %d", got.MinDocLen(), ix.MinDocLen())
	}
}

// encodeStreamNoBounds writes ix in the original "SQEIX\x01" stream
// revision (no bounds section) so the decoder's back-compat path can be
// pinned without checked-in fixtures.
func encodeStreamNoBounds(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.Write(indexMagicV1)
	var flags byte
	if ix.analyzer.RemoveStopwords {
		flags |= 1
	}
	if ix.analyzer.Stem {
		flags |= 2
	}
	bw.WriteByte(flags)
	var vb [binary.MaxVarintLen64]byte
	wu := func(x uint64) { bw.Write(vb[:binary.PutUvarint(vb[:], x)]) }
	ws := func(s string) { wu(uint64(len(s))); bw.WriteString(s) }
	wu(uint64(len(ix.docNames)))
	for d, name := range ix.docNames {
		ws(name)
		wu(uint64(ix.docLens[d]))
	}
	wu(uint64(len(ix.termText)))
	for tid, text := range ix.termText {
		ws(text)
		p := &ix.postings[tid]
		wu(uint64(len(p.Docs)))
		prevDoc := DocID(0)
		for i, doc := range p.Docs {
			d := uint64(doc)
			if i > 0 {
				d = uint64(doc - prevDoc)
			}
			prevDoc = doc
			wu(d)
			wu(uint64(p.Freqs[i]))
			prevPos := int32(0)
			for j, pos := range p.Positions[i] {
				pd := uint64(pos)
				if j > 0 {
					pd = uint64(pos - prevPos)
				}
				prevPos = pos
				wu(pd)
			}
		}
	}
	bw.Flush()
	return buf.Bytes()
}

// TestDecodeV1Compat: version-1 files (no bounds section) still load,
// and the bounds are recomputed from the decoded postings.
func TestDecodeV1Compat(t *testing.T) {
	ix := boundsIndex(t)
	got, err := decodeV1(bytes.NewReader(encodeStreamNoBounds(t, ix)))
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if got.NumDocs() != ix.NumDocs() || got.NumTerms() != ix.NumTerms() {
		t.Fatalf("v1 decode shape: %v vs %v", got, ix)
	}
	for _, term := range []string{"a", "b", "c"} {
		wb, _ := ix.BoundsFor(term)
		gb, ok := got.BoundsFor(term)
		if !ok || gb != wb {
			t.Errorf("v1 BoundsFor(%q) = %+v ok=%v, want %+v", term, gb, ok, wb)
		}
	}
}

// TestDecodeRejectsCorruptBounds: a v2 file whose stored bounds disagree
// with its postings must be rejected — an understated bound would make
// the pruned evaluator silently drop documents.
func TestDecodeRejectsCorruptBounds(t *testing.T) {
	ix := boundsIndex(t)
	var buf bytes.Buffer
	if err := encodeV1(&buf, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := decodeV1(bytes.NewReader(good)); err != nil {
		t.Fatalf("sanity: %v", err)
	}
	// The last uvarints of the stream are the final term's bounds; a
	// single-byte perturbation there must either fail the bounds
	// cross-check or break varint framing — never load quietly with
	// wrong metadata.
	corrupted := 0
	for off := len(good) - 1; off >= len(good)-8 && off > 0; off-- {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		got, err := decodeV1(bytes.NewReader(bad))
		if err == nil {
			// A flip that happens to produce the same decoded values is
			// acceptable only if the bounds still match the postings.
			for tid, text := range got.termText {
				want := boundsOf(&got.postings[tid], got.docLens)
				if gb, _ := got.BoundsFor(text); gb != want {
					t.Fatalf("offset %d: corrupt bounds %+v accepted (postings say %+v)", off, gb, want)
				}
			}
			continue
		}
		corrupted++
		if !strings.Contains(err.Error(), "bound") && !strings.Contains(err.Error(), "index:") {
			t.Fatalf("offset %d: unexpected error %v", off, err)
		}
	}
	if corrupted == 0 {
		t.Fatal("no bound perturbation was rejected")
	}
}

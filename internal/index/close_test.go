package index

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// openFDs counts this process's open file descriptors via /proc/self/fd;
// ok is false where that interface does not exist (non-Linux).
func openFDs(t *testing.T) (int, bool) {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	return len(ents), true
}

// TestCloseIdempotent: Close must be safe to call any number of times,
// on every index kind — in-memory (no-op), v1 (no-op: fully decoded),
// and v2 (first call unmaps, later calls return nil without touching
// the dead mapping). Repeated Closes must release the mapping exactly
// once: the MappedRegions balance (and, on Linux, the open-FD count)
// returns to its starting value.
func TestCloseIdempotent(t *testing.T) {
	baseRegions := MappedRegions()
	baseFDs, haveFDs := openFDs(t)

	mem := randomIndex(t, 50, 3)
	for i := 0; i < 3; i++ {
		if err := mem.Close(); err != nil {
			t.Fatalf("in-memory close #%d: %v", i, err)
		}
	}

	dir := t.TempDir()
	for _, format := range []Format{FormatV1, FormatV2} {
		path := filepath.Join(dir, "ix."+format.String())
		if err := WriteFile(path, mem, format); err != nil {
			t.Fatal(err)
		}
		ix, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := ix.Close(); err != nil {
				t.Fatalf("%v close #%d: %v", format, i, err)
			}
		}
	}

	if got := MappedRegions(); got != baseRegions {
		t.Fatalf("MappedRegions = %d after all Closes, want the starting %d (leaked or double-released a mapping)", got, baseRegions)
	}
	if haveFDs {
		if got, _ := openFDs(t); got > baseFDs {
			t.Fatalf("open FDs grew from %d to %d across open/close cycles", baseFDs, got)
		}
	}
}

// TestOpenCloseLeakFree: repeated open/close cycles — the bench-style
// re-Open-per-query pattern — must not accumulate mappings or file
// descriptors; neither must a segmented index's lifecycle, where
// snapshot refcounts (not Close calls) release the per-segment mmaps.
func TestOpenCloseLeakFree(t *testing.T) {
	mem := randomIndex(t, 80, 5)
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := WriteFile(path, mem, FormatV2); err != nil {
		t.Fatal(err)
	}
	baseRegions := MappedRegions()
	baseFDs, haveFDs := openFDs(t)

	for i := 0; i < 20; i++ {
		ix, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if p := ix.PostingsFor("a"); p == nil {
			t.Fatal("no postings for a")
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := MappedRegions(); got != baseRegions {
		t.Fatalf("MappedRegions = %d after open/close cycles, want %d", got, baseRegions)
	}

	// Segmented lifecycle: flushes map segments, compaction + snapshot
	// releases unmap the replaced ones, Close releases the rest.
	dir := t.TempDir()
	s, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Ingest("doc", "a b c d"); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.Acquire()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	sn.Release() // last pin on the pre-compaction segments: unmap + delete
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := MappedRegions(); got != baseRegions {
		t.Fatalf("MappedRegions = %d after segmented lifecycle, want %d", got, baseRegions)
	}
	if haveFDs {
		if got, _ := openFDs(t); got > baseFDs {
			t.Fatalf("open FDs grew from %d to %d", baseFDs, got)
		}
	}
}

// TestUseAfterCloseMaterialize: touching a not-yet-materialised term
// after Close must record the canonical error and score the term as
// absent — never read the unmapped region.
func TestUseAfterCloseMaterialize(t *testing.T) {
	ix := randomIndex(t, 100, 17)
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := WriteFile(path, ix, FormatV2); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Materialise one term before Close: its copy must survive.
	pre := got.PostingsFor("a")
	if pre == nil || len(pre.Docs) == 0 {
		t.Fatal("pre-close materialisation failed")
	}
	preDocs := len(pre.Docs)
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	// The already-materialised row is a heap copy and stays valid.
	if p := got.PostingsFor("a"); p == nil || len(p.Docs) != preDocs {
		t.Fatal("materialised row did not survive Close")
	}
	// A fresh term cannot decode any more: empty row + recorded error.
	if p := got.PostingsFor("b"); p != nil && len(p.Docs) != 0 {
		t.Fatalf("post-close materialisation produced %d postings", len(p.Docs))
	}
	err = got.Err()
	if err == nil {
		t.Fatal("post-close materialisation left Err() nil")
	}
	if !strings.Contains(err.Error(), "after Close") {
		t.Fatalf("recorded %v, want the after-Close error", err)
	}
}

// TestUseAfterCloseStreamCursor: a streaming cursor reset or advanced
// after Close must exhaust with the recorded error, not read unmapped
// memory. Covers both orders: cursor created after Close, and a live
// parked cursor whose index closes under it.
func TestUseAfterCloseStreamCursor(t *testing.T) {
	src := randomIndex(t, 150, 23)
	if err := src.SetBlockSize(4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeV2(&buf, src); err != nil {
		t.Fatal(err)
	}

	// Cursor created after Close: starts exhausted, error recorded.
	ix := openV2Heap(t, buf.Bytes())
	id, ok := ix.StreamableTerm("a")
	if !ok {
		t.Fatal("term a not streamable")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	var c TermCursor
	c.ResetStream(ix, id)
	if c.Doc() != DocEnd {
		t.Fatalf("post-close ResetStream parked on %d", c.Doc())
	}
	err := ix.Err()
	if err == nil || !strings.Contains(err.Error(), "after Close") {
		t.Fatalf("recorded %v, want the after-Close error", err)
	}

	// Live parked cursor, index closes under it: the next decode-forcing
	// call degrades the cursor instead of touching the dead mapping.
	ix2 := openV2Heap(t, append([]byte(nil), buf.Bytes()...))
	id2, _ := ix2.StreamableTerm("a")
	var c2 TermCursor
	c2.ResetStream(ix2, id2)
	firstDoc := c2.Doc()
	if firstDoc == DocEnd || c2.Decoded != 0 {
		t.Fatalf("sanity: parked at %d decoded=%d", firstDoc, c2.Decoded)
	}
	if err := ix2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c2.Freq(); got != 0 {
		t.Fatalf("Freq after Close = %d, want 0 (degraded)", got)
	}
	if c2.Doc() != DocEnd {
		t.Fatal("cursor survived its index's Close")
	}
	if err := ix2.Err(); err == nil || !strings.Contains(err.Error(), "after Close") {
		t.Fatalf("recorded %v, want the after-Close error", err)
	}
	// Further motion on the dead cursor is inert.
	if c2.Next() != DocEnd || c2.Advance(firstDoc+1) != DocEnd || c2.PeekNext() != DocEnd {
		t.Fatal("dead cursor moved")
	}
}

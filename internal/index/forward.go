package index

// TermFreq is one entry of a document's forward vector.
type TermFreq struct {
	Term int32
	Freq int32
}

// DocVector returns the term-frequency vector of doc (term IDs with
// frequencies, unordered). The forward index is materialised lazily on
// first use and cached; it is what pseudo-relevance feedback needs to
// estimate P(w|D) over the feedback documents.
func (ix *Index) DocVector(doc DocID) []TermFreq {
	ix.fwdOnce.Do(ix.buildForward)
	return ix.forward[doc]
}

func (ix *Index) buildForward() {
	ix.materializeAll() // inversion walks every postings row
	ix.forward = make([][]TermFreq, len(ix.docNames))
	for tid := range ix.postings {
		p := &ix.postings[tid]
		for i, doc := range p.Docs {
			ix.forward[doc] = append(ix.forward[doc], TermFreq{Term: int32(tid), Freq: p.Freqs[i]})
		}
	}
}

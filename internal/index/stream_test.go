package index

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// openV2Heap opens a FormatV2 image from a heap slice (no mmap), so
// tests can corrupt postings bytes AFTER Open's CRC scan accepted them
// — simulating bit rot under a live mapping.
func openV2Heap(t *testing.T, data []byte) *Index {
	t.Helper()
	ix, err := openV2(data, func() error { return nil })
	if err != nil {
		t.Fatalf("openV2: %v", err)
	}
	return ix
}

// streamPair returns a streaming cursor and its eagerly-decoded
// reference row for the same term of the same v2 image (decoded from a
// separate Open so the streamed index stays untouched).
func streamPair(t *testing.T, img []byte, term string) (*Index, int32, *Postings) {
	t.Helper()
	ix := openV2Heap(t, img)
	id, ok := ix.StreamableTerm(term)
	if !ok {
		t.Fatalf("term %q not streamable", term)
	}
	ref := openV2Heap(t, append([]byte(nil), img...))
	p := ref.PostingsFor(term)
	if err := ref.Err(); err != nil {
		t.Fatalf("reference decode: %v", err)
	}
	return ix, id, p
}

// TestStreamCursorMatchesSliceCursor: full differential — every walk a
// streaming cursor can take (next-walk, advance to every present and
// absent document, peeks at every position) must agree with a slice
// cursor over the materialised row. Block sizes force single-block,
// partial-trailing-block and whole-list-in-one-block shapes.
func TestStreamCursorMatchesSliceCursor(t *testing.T) {
	for _, bs := range []int{1, 3, 4, 7, 1 << 14} {
		ix := randomIndex(t, 150, 23)
		if err := ix.SetBlockSize(bs); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := encodeV2(&buf, ix); err != nil {
			t.Fatal(err)
		}
		for _, term := range []string{"a", "b", "z"} {
			sx, id, p := streamPair(t, buf.Bytes(), term)
			label := fmt.Sprintf("bs=%d term=%q", bs, term)

			// Walk with Next, checking Doc/Freq/Rank/PeekNext at every step.
			var sc TermCursor
			sc.ResetStream(sx, id)
			if sc.Len() != len(p.Docs) {
				t.Fatalf("%s: Len=%d want %d", label, sc.Len(), len(p.Docs))
			}
			for i := range p.Docs {
				if sc.Doc() != p.Docs[i] || sc.Rank() != i {
					t.Fatalf("%s: step %d at (%d, rank %d), want (%d, %d)", label, i, sc.Doc(), sc.Rank(), p.Docs[i], i)
				}
				want := DocEnd
				if i+1 < len(p.Docs) {
					want = p.Docs[i+1]
				}
				if got := sc.PeekNext(); got != want {
					t.Fatalf("%s: step %d PeekNext=%d want %d", label, i, got, want)
				}
				if got := sc.Freq(); got != p.Freqs[i] {
					t.Fatalf("%s: step %d Freq=%d want %d", label, i, got, p.Freqs[i])
				}
				sc.Next()
			}
			if sc.Doc() != DocEnd || sc.Rank() != len(p.Docs) {
				t.Fatalf("%s: after walk at (%d, rank %d)", label, sc.Doc(), sc.Rank())
			}
			if sc.Next() != DocEnd || sc.PeekNext() != DocEnd {
				t.Fatalf("%s: exhausted cursor moved", label)
			}

			// Advance from a fresh cursor to every possible target.
			for target := DocID(0); target <= DocID(sx.NumDocs()); target++ {
				var st, sl TermCursor
				st.ResetStream(sx, id)
				sl.Reset(p)
				gd, wd := st.Advance(target), sl.Advance(target)
				if gd != wd || st.Rank() != sl.Rank() {
					t.Fatalf("%s: Advance(%d) = (%d, rank %d), want (%d, %d)", label, target, gd, st.Rank(), wd, sl.Rank())
				}
				if gd != DocEnd && st.Freq() != sl.Freq() {
					t.Fatalf("%s: Advance(%d) Freq %d vs %d", label, target, st.Freq(), sl.Freq())
				}
			}

			// Seeded random interleavings of Next/Advance/Freq/PeekNext.
			rng := rand.New(rand.NewSource(int64(bs)))
			var st, sl TermCursor
			st.ResetStream(sx, id)
			sl.Reset(p)
			for op := 0; op < 500 && st.Doc() != DocEnd; op++ {
				switch rng.Intn(4) {
				case 0:
					if g, w := st.Next(), sl.Next(); g != w {
						t.Fatalf("%s: op %d Next %d vs %d", label, op, g, w)
					}
				case 1:
					target := st.Doc() + DocID(rng.Intn(2*bs+2))
					if g, w := st.Advance(target), sl.Advance(target); g != w {
						t.Fatalf("%s: op %d Advance(%d) %d vs %d", label, op, target, g, w)
					}
				case 2:
					if g, w := st.Freq(), sl.Freq(); g != w {
						t.Fatalf("%s: op %d Freq %d vs %d", label, op, g, w)
					}
				case 3:
					if g, w := st.PeekNext(), sl.PeekNext(); g != w {
						t.Fatalf("%s: op %d PeekNext %d vs %d", label, op, g, w)
					}
				}
				if st.Rank() != sl.Rank() {
					t.Fatalf("%s: op %d rank %d vs %d", label, op, st.Rank(), sl.Rank())
				}
			}
			if err := sx.Err(); err != nil {
				t.Fatalf("%s: healthy file recorded %v", label, err)
			}
		}
	}
}

// TestStreamCursorSingleBlockTerm: a term whose whole list fits one
// block exercises the one-block edges (peek past the last block, park
// then decode, advance beyond the end).
func TestStreamCursorSingleBlockTerm(t *testing.T) {
	ix := randomIndex(t, 40, 9)
	if err := ix.SetBlockSize(DefaultBlockSize); err != nil { // df << 128: exactly one block
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	sx, id, p := streamPair(t, buf.Bytes(), "z")
	if nb := len(sx.blockBounds[id]); nb != 1 {
		t.Fatalf("want exactly one block, got %d", nb)
	}
	var c TermCursor
	c.ResetStream(sx, id)
	if c.NumBlocks() != 1 {
		t.Fatalf("NumBlocks=%d", c.NumBlocks())
	}
	// Parked on the first doc without decoding.
	if c.Doc() != p.Docs[0] || c.Decoded != 0 {
		t.Fatalf("parked at %d decoded=%d, want %d decoded=0", c.Doc(), c.Decoded, p.Docs[0])
	}
	// Advance to the last posting (last slot of the only block).
	last := p.Docs[len(p.Docs)-1]
	if got := c.Advance(last); got != last || c.Rank() != len(p.Docs)-1 {
		t.Fatalf("Advance(last)=%d rank=%d", got, c.Rank())
	}
	if c.Next() != DocEnd || c.Rank() != len(p.Docs) {
		t.Fatal("Next past the last slot did not exhaust")
	}
	// Advance beyond the whole list from a fresh cursor.
	c.ResetStream(sx, id)
	if got := c.Advance(last + 1); got != DocEnd {
		t.Fatalf("Advance past the list = %d", got)
	}
	if err := sx.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCursorBlockBoundarySlots: with a forced tiny block size,
// documents landing on the last slot of a block and a trailing partial
// block are where the blk/j arithmetic can go wrong; check Doc/Rank/
// Freq at exactly those seams, plus PeekNext across each boundary.
func TestStreamCursorBlockBoundarySlots(t *testing.T) {
	const bs = 4
	// 10 docs all containing "w": df=10 = 2 full blocks + a partial of 2.
	b := NewBuilder(analysis.Analyzer{})
	for d := 0; d < 10; d++ {
		b.Add(fmt.Sprintf("D%02d", d), strings.Repeat("w ", d+1)+"x")
	}
	ix := b.Build()
	if err := ix.SetBlockSize(bs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	sx, id, p := streamPair(t, buf.Bytes(), "w")
	if len(p.Docs) != 10 || len(sx.blockBounds[id]) != 3 {
		t.Fatalf("shape: df=%d blocks=%d", len(p.Docs), len(sx.blockBounds[id]))
	}
	for _, slot := range []int{bs - 1, bs, 2*bs - 1, 2 * bs, len(p.Docs) - 1} {
		var c TermCursor
		c.ResetStream(sx, id)
		if got := c.Advance(p.Docs[slot]); got != p.Docs[slot] || c.Rank() != slot {
			t.Fatalf("slot %d: Advance=%d rank=%d", slot, got, c.Rank())
		}
		if c.Freq() != p.Freqs[slot] {
			t.Fatalf("slot %d: Freq=%d want %d", slot, c.Freq(), p.Freqs[slot])
		}
		want := DocEnd
		if slot+1 < len(p.Docs) {
			want = p.Docs[slot+1]
		}
		if got := c.PeekNext(); got != want {
			t.Fatalf("slot %d: PeekNext=%d want %d", slot, got, want)
		}
	}
	// Walking off the last slot of the trailing partial block exhausts.
	var c TermCursor
	c.ResetStream(sx, id)
	c.Advance(p.Docs[len(p.Docs)-1])
	if c.Next() != DocEnd {
		t.Fatal("Next off the partial block did not exhaust")
	}
	if err := sx.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCursorCRCFailingBlock: bytes of a middle block rot AFTER
// Open's scan accepted the file; an Advance whose target lands inside
// that block must degrade — cursor exhausts, the canonical checksum
// error lands on Index.Err — and must not panic or return garbage.
func TestStreamCursorCRCFailingBlock(t *testing.T) {
	const bs = 4
	ix := randomIndex(t, 150, 23)
	if err := ix.SetBlockSize(bs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	sx, id, p := streamPair(t, buf.Bytes(), "a")
	if len(sx.blockBounds[id]) < 3 {
		t.Fatalf("need >=3 blocks, got %d", len(sx.blockBounds[id]))
	}
	// Rot the LAST byte of block 1 (the leading uvarint stays readable,
	// so the cursor parks fine and the CRC check is what catches it).
	lz := sx.lazy
	ext := lz.extents[int(lz.starts[id])+1]
	lz.post[ext.off+int64(ext.size)-1] ^= 0xFF

	// A target strictly inside block 1 forces the decode.
	target := p.Docs[bs] + 1
	if target > p.Docs[2*bs-1] {
		t.Fatalf("block 1 of %q holds a single document; pick another seed", "a")
	}
	var c TermCursor
	c.ResetStream(sx, id)
	if got := c.Advance(target); got != DocEnd {
		t.Fatalf("Advance into rotted block = %d, want DocEnd", got)
	}
	err := sx.Err()
	if err == nil {
		t.Fatal("rotted block decoded without recording an error")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("recorded %v, want the canonical checksum error", err)
	}
	// The dead cursor stays dead and harmless.
	if c.Next() != DocEnd || c.Advance(0) != DocEnd || c.Freq() != 0 {
		t.Fatal("exhausted-by-corruption cursor came back to life")
	}
}

// tamperExtent redirects term id's block b directory entry by shift
// bytes and shrinks it by shrink, re-stamping the CRC so the decode is
// reached — modelling a CRC-consistent directory whose offset points
// mid-block (shift > 0) or truncates the block (shrink > 0).
func tamperExtent(t *testing.T, ix *Index, id int32, b, shift, shrink int) {
	t.Helper()
	lz := ix.lazy
	ext := &lz.extents[int(lz.starts[id])+b]
	ext.off += int64(shift)
	ext.size -= int32(shift + shrink)
	if ext.size <= 0 {
		t.Fatal("tamper consumed the whole block")
	}
	ext.crc = crc32.ChecksumIEEE(lz.post[ext.off : ext.off+int64(ext.size)])
}

// TestStreamErrorTaxonomyMatchesEager: for the same tampered directory
// entry — offset pointing mid-block, or size truncating the block — the
// streaming cursor must record exactly the error the eager materialiser
// records (same wrap, same taxonomy). Walked with Next so both paths
// meet the tampered block as their first failure.
func TestStreamErrorTaxonomyMatchesEager(t *testing.T) {
	const bs = 4
	src := randomIndex(t, 150, 23)
	if err := src.SetBlockSize(bs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeV2(&buf, src); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for _, tc := range []struct {
		name          string
		shift, shrink int
	}{
		{"mid-block offset", 1, 0},
		{"deep mid-block offset", 3, 0},
		{"truncated block", 0, 1},
		{"shifted and truncated", 2, 2},
	} {
		// Eager leg: materialise the term, collect the recorded error.
		eager := openV2Heap(t, append([]byte(nil), img...))
		eid, ok := eager.StreamableTerm("a")
		if !ok {
			t.Fatal("term a not streamable")
		}
		tamperExtent(t, eager, eid, 1, tc.shift, tc.shrink)
		eager.PostingsFor("a")
		eagerErr := eager.Err()

		// Streaming leg: identical tamper, full Next-walk (decodes blocks
		// in the same order the materialiser does).
		stream := openV2Heap(t, append([]byte(nil), img...))
		sid, _ := stream.StreamableTerm("a")
		tamperExtent(t, stream, sid, 1, tc.shift, tc.shrink)
		var c TermCursor
		c.ResetStream(stream, sid)
		for c.Doc() != DocEnd {
			c.Freq()
			c.Next()
		}
		streamErr := stream.Err()

		if eagerErr == nil && streamErr == nil {
			// The tampered suffix happened to re-parse cleanly AND match
			// the stored bounds — not possible for these shifts on this
			// corpus, and a silent pass would void the test.
			t.Fatalf("%s: neither path noticed the tamper", tc.name)
		}
		if eagerErr == nil || streamErr == nil {
			t.Fatalf("%s: eager=%v stream=%v — one path stayed silent", tc.name, eagerErr, streamErr)
		}
		if eagerErr.Error() != streamErr.Error() {
			t.Fatalf("%s: taxonomy diverged:\n  eager:  %v\n  stream: %v", tc.name, eagerErr, streamErr)
		}
	}
}

// TestStreamCursorParkedOnCRCFailingBlock: the cursor parks on the
// rotted block (peek succeeds — only the CRC is off), and the first
// Freq that forces the decode is what degrades it.
func TestStreamCursorParkedOnCRCFailingBlock(t *testing.T) {
	const bs = 4
	ix := randomIndex(t, 150, 23)
	if err := ix.SetBlockSize(bs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	sx, id, p := streamPair(t, buf.Bytes(), "a")
	lz := sx.lazy
	ext := lz.extents[int(lz.starts[id])+1]
	lz.post[ext.off+int64(ext.size)-1] ^= 0xFF

	var c TermCursor
	c.ResetStream(sx, id)
	// Advance exactly to block 1's first doc: parks without decoding.
	first := p.Docs[bs]
	if got := c.Advance(first); got != first || c.Decoded != 0 {
		t.Fatalf("park: Advance=%d decoded=%d", got, c.Decoded)
	}
	if sx.Err() != nil {
		t.Fatalf("parking alone recorded %v", sx.Err())
	}
	if got := c.Freq(); got != 0 {
		t.Fatalf("Freq over rotted block = %d, want 0 (degraded)", got)
	}
	if c.Doc() != DocEnd || sx.Err() == nil {
		t.Fatal("decode failure did not exhaust + record")
	}
}

package index

import "testing"

func TestCursorWalk(t *testing.T) {
	p := &Postings{Docs: []DocID{1, 4, 7, 9}, Freqs: []int32{2, 1, 3, 5}}
	c := NewCursor(p)
	var docs []DocID
	var freqs []int32
	for c.Valid() {
		docs = append(docs, c.Doc())
		freqs = append(freqs, c.Freq())
		c.Next()
	}
	if len(docs) != 4 || docs[0] != 1 || docs[3] != 9 || freqs[2] != 3 {
		t.Fatalf("walked docs=%v freqs=%v", docs, freqs)
	}
	if c.Valid() {
		t.Error("cursor still valid after walking off the end")
	}
}

func TestCursorSeek(t *testing.T) {
	p := &Postings{Docs: []DocID{1, 4, 7, 9}, Freqs: []int32{2, 1, 3, 5}}
	c := NewCursor(p)
	if !c.Seek(4) || c.Doc() != 4 {
		t.Fatalf("Seek(4): valid=%v doc=%v", c.Valid(), c.Doc())
	}
	// Seek to a missing doc lands on the next larger one.
	if c.Seek(5) {
		t.Error("Seek(5) claimed an exact hit")
	}
	if !c.Valid() || c.Doc() != 7 {
		t.Fatalf("after Seek(5): valid=%v doc=%v", c.Valid(), c.Doc())
	}
	// Seek never moves backwards.
	if c.Seek(1) {
		t.Error("Seek(1) claimed an exact hit after passing doc 1")
	}
	if c.Doc() != 7 {
		t.Errorf("Seek moved backwards to %v", c.Doc())
	}
	if c.Seek(100) {
		t.Error("Seek past the end claimed a hit")
	}
	if c.Valid() {
		t.Error("cursor valid after seeking past the end")
	}
}

func TestCursorEmptyAndNil(t *testing.T) {
	for name, c := range map[string]Cursor{
		"nil postings":   NewCursor(nil),
		"empty postings": NewCursor(&Postings{}),
		"zero value":     {},
	} {
		if c.Valid() {
			t.Errorf("%s: cursor should start exhausted", name)
		}
		if c.Seek(3) {
			t.Errorf("%s: Seek on exhausted cursor claimed a hit", name)
		}
	}
}

func TestAdvanceExported(t *testing.T) {
	docs := []DocID{1, 3, 5, 8, 13, 21}
	if got := Advance(docs, 0, 8); got != 3 {
		t.Errorf("Advance(…, 0, 8) = %d, want 3", got)
	}
	if got := Advance(docs, 2, 22); got != len(docs) {
		t.Errorf("Advance past end = %d, want %d", got, len(docs))
	}
}

package index

// Cursor walks one postings list in document order — the abstraction the
// document-at-a-time evaluator in internal/search merges over (its hot
// loop inlines the same position/current-doc state into flat slices, so
// Cursor is the reference form plus the API for external consumers). A
// cursor on an empty (or nil) postings list starts exhausted.
type Cursor struct {
	p *Postings
	i int
}

// NewCursor returns a cursor positioned on the first posting of p.
// p may be nil (an OOV leaf); the cursor is then exhausted immediately.
func NewCursor(p *Postings) Cursor {
	if p == nil {
		return Cursor{}
	}
	return Cursor{p: p}
}

// Valid reports whether the cursor is positioned on a posting.
func (c *Cursor) Valid() bool { return c.p != nil && c.i < len(c.p.Docs) }

// Doc returns the current document. Only meaningful while Valid.
func (c *Cursor) Doc() DocID { return c.p.Docs[c.i] }

// Freq returns the term frequency at the current document.
func (c *Cursor) Freq() int32 { return c.p.Freqs[c.i] }

// Next advances to the following posting.
func (c *Cursor) Next() { c.i++ }

// Seek advances the cursor until Doc() >= target (galloping search); it
// never moves backwards. Returns true when the cursor lands exactly on
// target.
func (c *Cursor) Seek(target DocID) bool {
	if !c.Valid() {
		return false
	}
	c.i = Advance(c.p.Docs, c.i, target)
	return c.i < len(c.p.Docs) && c.p.Docs[c.i] == target
}

// Advance moves cursor forward in docs (sorted ascending) until
// docs[cursor] >= target, using galloping search to stay near O(log gap).
// It is the exported form of the intersection primitive shared by the
// phrase, window and DAAT evaluators.
func Advance(docs []DocID, cursor int, target DocID) int {
	return advance(docs, cursor, target)
}

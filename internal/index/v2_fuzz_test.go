package index

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
)

// FuzzBlockDecode feeds arbitrary bytes to the v2 block decoder. The
// contract under hostile input: an error or a valid decode — never a
// panic, never an unbounded allocation (position lists are clamped by
// prealloc, freqs by maxFreq) — and decode-accepts ⇒ round-trips:
// anything decodeBlock accepts must re-encode via encodeBlock to the
// exact input bytes and decode again to the same postings.
func FuzzBlockDecode(f *testing.F) {
	// Seed corpus: honestly encoded blocks of assorted shapes.
	seed := func(docs []DocID, freqs []int32, positions [][]int32, base DocID) {
		p := Postings{Docs: docs, Freqs: freqs, Positions: positions}
		f.Add(encodeBlock(nil, &p, 0, len(docs), base), int64(base), len(docs))
	}
	seed([]DocID{0}, []int32{1}, [][]int32{{0}}, -1)
	seed([]DocID{3, 5, 9}, []int32{2, 1, 3}, [][]int32{{0, 7}, {4}, {1, 2, 3}}, -1)
	seed([]DocID{12, 13}, []int32{1, 1}, [][]int32{{30}, {31}}, 9)
	f.Add([]byte{}, int64(-1), 0)
	f.Add([]byte{0x00}, int64(-1), 1)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, int64(-1), 1)
	// Mid-block offsets: what the decoder sees when a block-directory
	// entry points INTO a block instead of at its start (a CRC-consistent
	// hostile directory). The suffix of an honest encoding re-parses as a
	// different varint stream; the decoder must reject or re-validate it
	// like any other input — both the eager materialiser and the
	// streaming cursor route through this same decoder (see
	// TestStreamErrorTaxonomyMatchesEager for the parity check).
	{
		p := Postings{
			Docs:      []DocID{3, 5, 9, 21},
			Freqs:     []int32{2, 1, 3, 1},
			Positions: [][]int32{{0, 7}, {4}, {1, 2, 3}, {8}},
		}
		enc := encodeBlock(nil, &p, 0, len(p.Docs), -1)
		for _, off := range []int{1, 2, 3, len(enc) / 2, len(enc) - 1} {
			if off > 0 && off < len(enc) {
				f.Add(enc[off:], int64(-1), len(p.Docs))
				f.Add(enc[off:], int64(2), len(p.Docs)-1)
			}
		}
	}

	const numDocs = 64
	docLens := make([]int32, numDocs)
	for i := range docLens {
		docLens[i] = int32(i%7 + 1)
	}
	f.Fuzz(func(t *testing.T, data []byte, base64 int64, n int) {
		if n < 0 || n > 1<<10 {
			return
		}
		base := DocID(base64)
		if base < -1 || base >= numDocs {
			return
		}
		var p Postings
		bb, err := decodeBlock(data, base, n, numDocs, docLens, &p)
		if err != nil {
			return // rejecting corrupt input is the job; panicking is not
		}
		// Accepted ⇒ round-trips: re-encode the decoded postings and
		// decode again; postings and derived bounds must be identical.
		// (Byte-identity is NOT required — binary.Uvarint accepts
		// non-minimal encodings, which re-encode shorter.)
		out := encodeBlock(nil, &p, 0, len(p.Docs), base)
		if len(out) > len(data) {
			t.Fatalf("re-encoding grew: %d bytes -> %d", len(data), len(out))
		}
		var q Postings
		bb2, err := decodeBlock(out, base, n, numDocs, docLens, &q)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if bb2 != bb {
			t.Fatalf("round trip bounds %+v != %+v", bb2, bb)
		}
		if len(q.Docs) != len(p.Docs) {
			t.Fatalf("round trip row count %d != %d", len(q.Docs), len(p.Docs))
		}
		for i := range p.Docs {
			if q.Docs[i] != p.Docs[i] || q.Freqs[i] != p.Freqs[i] {
				t.Fatalf("round trip posting %d diverges", i)
			}
		}
	})
}

// FuzzOpenV2 feeds arbitrary bytes to the whole-file v2 parser: an
// error or a usable lazy index, never a panic, and anything parseV2
// accepts must materialise every term without structural errors OR
// record the failure through Err — and must re-encode.
func FuzzOpenV2(f *testing.F) {
	ix := Build(analysis.Standard(), []Document{
		{Name: "DocA", Text: "cable cars climb the steep hill"},
		{Name: "DocB", Text: "the tram shares rails with the cable car"},
		{Name: "DocC", Text: "funicular railways and cable cars"},
	})
	_ = ix.SetBlockSize(2)
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		f.Fatal(err)
	}
	enc := buf.Bytes()
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add(append([]byte(nil), indexMagicV2...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := parseV2(append([]byte(nil), data...), nil)
		if err != nil {
			return
		}
		got.materializeAll()
		var out bytes.Buffer
		if err := encodeV2(&out, got); err != nil {
			t.Fatalf("accepted index does not re-encode: %v", err)
		}
		got.Close()
	})
}

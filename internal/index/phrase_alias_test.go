package index

import (
	"testing"

	"repro/internal/analysis"
)

// TestSingleConstituentPostingsDoNotAliasIndex is the regression test
// for PhrasePostings (and UnorderedWindowPostings) returning the index's
// live postings struct for single-constituent inputs: mutating the
// returned value must never corrupt subsequent retrievals.
func TestSingleConstituentPostingsDoNotAliasIndex(t *testing.T) {
	build := func() *Index {
		b := NewBuilder(analysis.Analyzer{})
		b.Add("d0", "alpha beta alpha")
		b.Add("d1", "alpha gamma")
		return b.Build()
	}
	cases := map[string]func(ix *Index) Postings{
		"phrase": func(ix *Index) Postings { return ix.PhrasePostings([]string{"alpha"}) },
		"window": func(ix *Index) Postings { return ix.UnorderedWindowPostings([]string{"alpha"}, 4) },
	}
	for name, get := range cases {
		ix := build()
		got := get(ix)
		if len(got.Docs) != 2 || got.Freqs[0] != 2 {
			t.Fatalf("%s: unexpected postings %+v", name, got)
		}
		// Vandalise every level of the returned struct.
		got.Docs[0] = 999
		got.Freqs[0] = 999
		got.Positions[0][0] = 999
		got.Positions[0] = nil

		live := ix.PostingsFor("alpha")
		if live.Docs[0] != 0 || live.Freqs[0] != 2 {
			t.Errorf("%s: caller mutation reached the index: %+v", name, live)
		}
		if live.Positions[0][0] != 0 || live.Positions[0][1] != 2 {
			t.Errorf("%s: caller mutation corrupted live positions: %v", name, live.Positions[0])
		}
	}
}

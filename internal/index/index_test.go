package index

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
)

// plainAnalyzer indexes without stopwords/stemming so tests can reason
// about exact terms.
var plainAnalyzer = analysis.Analyzer{}

func buildIndex(t *testing.T, docs ...string) *Index {
	t.Helper()
	b := NewBuilder(plainAnalyzer)
	for i, d := range docs {
		b.Add(docName(i), d)
	}
	return b.Build()
}

func docName(i int) string { return "D" + string(rune('0'+i)) }

func TestIndexCounts(t *testing.T) {
	ix := buildIndex(t, "red fish blue fish", "one fish", "nothing here")
	if ix.NumDocs() != 3 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if ix.TotalTokens() != 4+2+2 {
		t.Errorf("TotalTokens = %d", ix.TotalTokens())
	}
	if ix.DocLen(0) != 4 || ix.DocLen(2) != 2 {
		t.Error("DocLen wrong")
	}
	if ix.DocName(1) != "D1" {
		t.Errorf("DocName = %q", ix.DocName(1))
	}
	if ix.AvgDocLen() != 8.0/3 {
		t.Errorf("AvgDocLen = %f", ix.AvgDocLen())
	}
	if ix.NumTerms() != 6 { // red fish blue one nothing here
		t.Errorf("NumTerms = %d", ix.NumTerms())
	}
}

func TestPostings(t *testing.T) {
	ix := buildIndex(t, "red fish blue fish", "one fish", "nothing here")
	p := ix.PostingsFor("fish")
	if p == nil {
		t.Fatal("no postings for fish")
	}
	if !reflect.DeepEqual(p.Docs, []DocID{0, 1}) {
		t.Errorf("Docs = %v", p.Docs)
	}
	if !reflect.DeepEqual(p.Freqs, []int32{2, 1}) {
		t.Errorf("Freqs = %v", p.Freqs)
	}
	if !reflect.DeepEqual(p.Positions[0], []int32{1, 3}) {
		t.Errorf("Positions = %v", p.Positions[0])
	}
	if p.CollectionFreq() != 3 {
		t.Errorf("CollectionFreq = %d", p.CollectionFreq())
	}
	if ix.PostingsFor("absent") != nil {
		t.Error("postings for absent term should be nil")
	}
}

func TestTermIDs(t *testing.T) {
	ix := buildIndex(t, "alpha beta")
	id, ok := ix.TermID("alpha")
	if !ok {
		t.Fatal("alpha missing")
	}
	if ix.TermText(id) != "alpha" {
		t.Error("TermText mismatch")
	}
	if _, ok := ix.TermID("gamma"); ok {
		t.Error("gamma should be missing")
	}
}

func TestCollectionProb(t *testing.T) {
	ix := buildIndex(t, "a a a b") // 4 tokens
	if got := ix.CollectionProb("a"); got != 0.75 {
		t.Errorf("CollectionProb(a) = %f", got)
	}
	// OOV floor: 0.5/|C|
	if got := ix.CollectionProb("zzz"); got != 0.5/4 {
		t.Errorf("CollectionProb(zzz) = %f", got)
	}
}

func TestDocVector(t *testing.T) {
	ix := buildIndex(t, "x y x", "y z")
	v := ix.DocVector(0)
	got := map[string]int32{}
	for _, tf := range v {
		got[ix.TermText(tf.Term)] = tf.Freq
	}
	want := map[string]int32{"x": 2, "y": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DocVector(0) = %v, want %v", got, want)
	}
	if len(ix.DocVector(1)) != 2 {
		t.Error("DocVector(1) wrong size")
	}
}

func TestPhrasePostingsExact(t *testing.T) {
	ix := buildIndex(t,
		"the cable car climbs", // positions: the0 cable1 car2 climbs3
		"car cable",            // reversed: no match
		"cable car cable car",  // two matches
		"cable x car",          // gap: no match
	)
	p := ix.PhrasePostings([]string{"cable", "car"})
	if !reflect.DeepEqual(p.Docs, []DocID{0, 2}) {
		t.Fatalf("phrase docs = %v", p.Docs)
	}
	if !reflect.DeepEqual(p.Freqs, []int32{1, 2}) {
		t.Errorf("phrase freqs = %v", p.Freqs)
	}
	if !reflect.DeepEqual(p.Positions[1], []int32{0, 2}) {
		t.Errorf("phrase positions = %v", p.Positions[1])
	}
}

func TestPhrasePostingsEdgeCases(t *testing.T) {
	ix := buildIndex(t, "a b c")
	if got := ix.PhrasePostings(nil); len(got.Docs) != 0 {
		t.Error("empty phrase should have no postings")
	}
	// Single term phrase = term postings.
	p := ix.PhrasePostings([]string{"b"})
	if !reflect.DeepEqual(p.Docs, []DocID{0}) {
		t.Error("single-term phrase should equal term postings")
	}
	// OOV constituent kills the phrase.
	if got := ix.PhrasePostings([]string{"a", "zzz"}); len(got.Docs) != 0 {
		t.Error("OOV constituent should empty the phrase")
	}
	// Trigram.
	p3 := ix.PhrasePostings([]string{"a", "b", "c"})
	if !reflect.DeepEqual(p3.Docs, []DocID{0}) {
		t.Error("trigram should match")
	}
}

func TestPhraseAcrossManyDocs(t *testing.T) {
	b := NewBuilder(plainAnalyzer)
	for i := 0; i < 200; i++ {
		if i%7 == 0 {
			b.Add(docName(i%10)+"x", "prefix alpha beta suffix")
		} else {
			b.Add(docName(i%10)+"y", "alpha gamma beta")
		}
	}
	ix := b.Build()
	p := ix.PhrasePostings([]string{"alpha", "beta"})
	want := 0
	for i := 0; i < 200; i++ {
		if i%7 == 0 {
			want++
		}
	}
	if len(p.Docs) != want {
		t.Errorf("phrase matched %d docs, want %d", len(p.Docs), want)
	}
}

func TestAdvanceGalloping(t *testing.T) {
	docs := make([]DocID, 1000)
	for i := range docs {
		docs[i] = DocID(i * 3)
	}
	for _, tc := range []struct {
		cursor int
		target DocID
		want   int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},
		{0, 2997, 999},
		{500, 1502, 501},
		{0, 5000, 1000}, // past the end
	} {
		if got := advance(docs, tc.cursor, tc.target); got != tc.want {
			t.Errorf("advance(cursor=%d, target=%d) = %d, want %d", tc.cursor, tc.target, got, tc.want)
		}
	}
}

// Property: phrase postings are a subset of every constituent's postings
// and phrase frequency never exceeds the min constituent frequency.
func TestPhraseSubsetProperty(t *testing.T) {
	words := []string{"a", "b", "c", "d"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(plainAnalyzer)
		for d := 0; d < 20; d++ {
			n := 1 + rng.Intn(12)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteString(words[rng.Intn(len(words))])
				sb.WriteByte(' ')
			}
			b.Add(docName(d%10), sb.String())
		}
		ix := b.Build()
		phrase := []string{"a", "b"}
		p := ix.PhrasePostings(phrase)
		for i, doc := range p.Docs {
			for _, term := range phrase {
				tp := ix.PostingsFor(term)
				row := findRow(tp.Docs, doc)
				if row < 0 {
					return false
				}
				if p.Freqs[i] > tp.Freqs[row] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func findRow(docs []DocID, d DocID) int {
	for i, x := range docs {
		if x == d {
			return i
		}
	}
	return -1
}

// Property: sum of DocLens equals TotalTokens; collection freq of every
// term sums to TotalTokens.
func TestIndexAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(plainAnalyzer)
		words := []string{"w1", "w2", "w3", "w4", "w5"}
		for d := 0; d < 15; d++ {
			var sb strings.Builder
			for i := 0; i < rng.Intn(20); i++ {
				sb.WriteString(words[rng.Intn(len(words))] + " ")
			}
			b.Add(docName(d%10), sb.String())
		}
		ix := b.Build()
		var sumLens int64
		for d := 0; d < ix.NumDocs(); d++ {
			sumLens += int64(ix.DocLen(DocID(d)))
		}
		if sumLens != ix.TotalTokens() {
			return false
		}
		var sumCF int64
		for _, w := range words {
			if p := ix.PostingsFor(w); p != nil {
				sumCF += p.CollectionFreq()
			}
		}
		return sumCF == ix.TotalTokens()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package index

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DocEnd is the sentinel a cursor reports once its postings list is
// exhausted; it compares greater than every valid DocID.
const DocEnd = DocID(math.MaxInt32)

// TermCursor walks one term's postings in document order behind a
// uniform interface with two backings:
//
//   - slice mode (Reset): a window over a fully materialised postings
//     row — in-memory and v1 indexes, phrase/window leaves;
//   - stream mode (ResetStream): one ~blockSize-document block of a
//     FormatV2 term decoded at a time, directly from the mmap'd
//     postings section. Advance consults the block directory to skip
//     whole blocks without decoding them, and moving onto a block whose
//     first document already satisfies the target parks the cursor
//     there pending — reading only the block's first uvarint — so a
//     merely-peeked block costs no decode at all. Decode happens lazily
//     on the first Freq/Next/in-block landing, with the same per-block
//     CRC check and bound re-derivation as the eager materialiser;
//     failures are recorded on the index (Index.Err) and exhaust the
//     cursor instead of panicking.
//
// Rank/Len expose the cursor's absolute position so callers can account
// skipped postings exactly as the materialised evaluator did; Decoded
// counts the blocks this cursor actually paid to decode (the numerator
// of SearchStats.BlocksDecoded).
//
// A TermCursor is single-goroutine state. The decode window backing is
// retained across Reset/ResetStream/Release, which is what makes pooled
// reuse allocation-free in steady state.
type TermCursor struct {
	// Current decode window (stream mode) or the whole row (slice mode).
	docs  []DocID
	freqs []int32
	j     int   // position inside docs
	cur   DocID // docs[j], or the peeked block-first doc, or DocEnd

	// Stream-mode state; ix == nil means slice mode.
	ix      *Index
	id      int32
	blocks  []BlockBounds
	blk     int  // current block ordinal
	loaded  bool // docs/freqs hold block blk (false: parked on its first doc)
	n       int  // total postings (df)
	blockSz int

	// Reusable decode backing; survives Reset and Release.
	wdocs  []DocID
	wfreqs []int32

	// Decoded counts blocks this cursor decoded since its last Reset.
	Decoded int64
}

// Reset points the cursor at a fully materialised postings row. p may
// be nil or empty (an OOV leaf); the cursor starts exhausted then.
func (c *TermCursor) Reset(p *Postings) {
	c.ix = nil
	c.blocks = nil
	c.blk = 0
	c.loaded = true
	c.j = 0
	c.Decoded = 0
	if p == nil || len(p.Docs) == 0 {
		c.docs, c.freqs = nil, nil
		c.n = 0
		c.cur = DocEnd
		c.loaded = false // guarded slow paths; see exhaust
		return
	}
	c.docs, c.freqs = p.Docs, p.Freqs
	c.n = len(p.Docs)
	c.cur = p.Docs[0]
}

// ResetStream points the cursor at term id of a FormatV2-backed index,
// parked on the first document of the first block without decoding it.
// The index must be lazy-backed (StreamableTerm reported true).
func (c *TermCursor) ResetStream(ix *Index, id int32) {
	lz := ix.lazy
	c.ix = ix
	c.id = id
	c.blocks = ix.blockBounds[id]
	c.blockSz = lz.blockSz
	c.n = int(lz.df[id])
	c.docs, c.freqs = nil, nil
	c.j = 0
	c.blk = 0
	c.loaded = false
	c.Decoded = 0
	if c.n == 0 {
		c.exhaust()
		return
	}
	c.moveToBlock(0)
}

// Doc returns the current document, DocEnd once exhausted.
func (c *TermCursor) Doc() DocID { return c.cur }

// Len returns the term's total postings count (its df).
func (c *TermCursor) Len() int { return c.n }

// NumBlocks returns the term's block count (0 in slice mode) — the
// denominator of the decoded-block fraction.
func (c *TermCursor) NumBlocks() int { return len(c.blocks) }

// Rank returns the cursor's absolute position in the postings list:
// the number of postings strictly before the current document, or Len
// once exhausted. The materialised evaluator's flat index, reproduced
// without requiring the skipped-over blocks to be decoded.
func (c *TermCursor) Rank() int {
	if c.cur == DocEnd {
		return c.n
	}
	if c.ix != nil {
		return c.blk*c.blockSz + c.j
	}
	return c.j
}

// Freq returns the term frequency at the current document, decoding the
// parked block on first touch. Only meaningful while Doc() != DocEnd.
func (c *TermCursor) Freq() int32 {
	if c.loaded {
		return c.freqs[c.j]
	}
	return c.freqSlow()
}

func (c *TermCursor) freqSlow() int32 {
	if c.cur == DocEnd {
		return 0 // exhausted (or degraded) cursors have no frequency
	}
	if !c.ensureLoaded() {
		return 0
	}
	return c.freqs[c.j]
}

// Next advances to the following posting and returns its document
// (DocEnd at the end of the list).
func (c *TermCursor) Next() DocID {
	if j := c.j + 1; c.loaded && j < len(c.docs) {
		c.j = j
		c.cur = c.docs[j]
		return c.cur
	}
	return c.nextSlow()
}

func (c *TermCursor) nextSlow() DocID {
	if c.cur == DocEnd {
		return DocEnd
	}
	if !c.ensureLoaded() {
		return c.cur
	}
	if j := c.j + 1; j < len(c.docs) {
		c.j = j
		c.cur = c.docs[j]
		return c.cur
	}
	if c.ix == nil {
		c.exhaust()
		return DocEnd
	}
	c.moveToBlock(c.blk + 1)
	return c.cur
}

// PeekNext returns the document after the current one without moving
// the cursor — the one-ahead refinement peek the candidate filter uses.
// Crossing into the next block reads only its first uvarint.
func (c *TermCursor) PeekNext() DocID {
	if c.loaded {
		if j := c.j + 1; j < len(c.docs) {
			return c.docs[j]
		}
	}
	return c.peekNextSlow()
}

func (c *TermCursor) peekNextSlow() DocID {
	if c.cur == DocEnd {
		return DocEnd
	}
	if !c.ensureLoaded() {
		return DocEnd
	}
	if j := c.j + 1; j < len(c.docs) {
		return c.docs[j]
	}
	if c.ix == nil || c.blk+1 >= len(c.blocks) {
		return DocEnd
	}
	if first, ok := c.peekFirst(c.blk + 1); ok {
		return first
	}
	// The next block's header is unreadable; run the real decoder over
	// it so the canonical error lands on the index, then report the
	// list as ended (the next Advance/Next will exhaust the same way).
	c.recordBlockError(c.blk + 1)
	return DocEnd
}

// Advance moves the cursor forward until Doc() >= target and returns
// the landing document; it never moves backwards. In stream mode the
// block directory is consulted first, so blocks wholly below target are
// skipped without being decoded.
func (c *TermCursor) Advance(target DocID) DocID {
	if c.cur >= target {
		return c.cur
	}
	return c.advanceSlow(target)
}

func (c *TermCursor) advanceSlow(target DocID) DocID {
	if c.ix == nil {
		j := Advance(c.docs, c.j, target)
		if j >= len(c.docs) {
			c.exhaust()
			return DocEnd
		}
		c.j = j
		c.cur = c.docs[j]
		return c.cur
	}
	if c.loaded {
		if n := len(c.docs); n > 0 && target <= c.docs[n-1] {
			j := Advance(c.docs, c.j, target)
			c.j = j
			c.cur = c.docs[j]
			return c.cur
		}
		return c.enterBlock(c.findBlockFrom(c.blk+1, target), target)
	}
	// Parked: the pending block itself may contain the target.
	from := c.blk
	if target > c.blocks[c.blk].LastDoc {
		from = c.blk + 1
	}
	return c.enterBlock(c.findBlockFrom(from, target), target)
}

// findBlockFrom returns the first block ordinal in [from, numBlocks)
// whose LastDoc >= target — the block the directory says contains the
// first posting >= target — or numBlocks when the list is exhausted.
func (c *TermCursor) findBlockFrom(from int, target DocID) int {
	lo, hi := from, len(c.blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.blocks[mid].LastDoc < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// enterBlock positions the cursor on the first posting >= target, whose
// block the directory claims is b. When target precedes the block's
// first document the cursor parks there without decoding; otherwise the
// block is decoded and galloped. A block whose stored LastDoc overstated
// its contents (recorded by the bound re-derivation) falls through to
// the next one.
func (c *TermCursor) enterBlock(b int, target DocID) DocID {
	for ; b < len(c.blocks); b++ {
		if first, ok := c.peekFirst(b); ok && target <= first {
			c.blk, c.j, c.loaded = b, 0, false
			c.docs, c.freqs = nil, nil
			c.cur = first
			return first
		}
		c.blk, c.j, c.loaded = b, 0, false
		if !c.loadBlock(b) {
			return c.cur // exhausted; error recorded on the index
		}
		if j := Advance(c.docs, 0, target); j < len(c.docs) {
			c.j = j
			c.cur = c.docs[j]
			return c.cur
		}
	}
	c.exhaust()
	return DocEnd
}

// moveToBlock parks the cursor on block b's first document (decoding
// nothing), or exhausts it past the last block.
func (c *TermCursor) moveToBlock(b int) {
	if b >= len(c.blocks) {
		c.exhaust()
		return
	}
	c.blk, c.j, c.loaded = b, 0, false
	c.docs, c.freqs = nil, nil
	if first, ok := c.peekFirst(b); ok {
		c.cur = first
		return
	}
	// Header unreadable: decode for the canonical error, then die.
	if c.loadBlock(b) {
		c.cur = c.docs[0]
	}
}

// peekFirst reads block b's first document from its leading uvarint
// without decoding (or CRC-checking) the block. ok is false when the
// index is closed or the header is structurally unreadable; callers
// then route through loadBlock, which surfaces the canonical error.
func (c *TermCursor) peekFirst(b int) (DocID, bool) {
	lz := c.ix.lazy
	if lz.closed.Load() {
		return 0, false
	}
	ext := lz.extents[int(lz.starts[c.id])+b]
	buf := lz.post[ext.off : ext.off+int64(ext.size)]
	dd, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, false
	}
	var doc DocID
	if b == 0 {
		doc = DocID(dd)
	} else {
		if dd == 0 {
			return 0, false
		}
		doc = c.blocks[b-1].LastDoc + DocID(dd)
	}
	if doc < 0 || doc >= DocID(len(c.ix.docLens)) {
		return 0, false
	}
	return doc, true
}

// decodeStream decodes block b into the given slices, with the same
// closed-index guard, CRC check, structural validation and error
// taxonomy as the eager materialiser. Positions are validated but not
// retained (the streaming evaluator never needs them).
func (c *TermCursor) decodeStream(b int, docs *[]DocID, freqs *[]int32) error {
	ix := c.ix
	lz := ix.lazy
	if lz.closed.Load() {
		return fmt.Errorf("index: term %q streamed after Close", ix.termText[c.id])
	}
	slot := int(lz.starts[c.id]) + b
	ext := lz.extents[slot]
	buf := lz.post[ext.off : ext.off+int64(ext.size)]
	if !lz.verifyBlock(slot, buf) {
		return fmt.Errorf("index: term %q block %d checksum mismatch", ix.termText[c.id], b)
	}
	base := DocID(-1) // the term's first block is absolute
	if b > 0 {
		base = c.blocks[b-1].LastDoc
	}
	n := c.blockSz
	if rest := c.n - b*c.blockSz; rest < n {
		n = rest
	}
	if err := decodeBlockInto(buf, base, n, int32(len(ix.docLens)), docs, freqs, nil); err != nil {
		return fmt.Errorf("index: term %q block %d: %w", ix.termText[c.id], b, err)
	}
	return nil
}

// loadBlock decodes block b into the reusable window and re-derives its
// bound summary, recording a disagreement with the directory the same
// way the eager path does. On decode failure the error is recorded and
// the cursor exhausts (the term degrades, it does not panic).
func (c *TermCursor) loadBlock(b int) bool {
	c.wdocs = c.wdocs[:0]
	c.wfreqs = c.wfreqs[:0]
	if err := c.decodeStream(b, &c.wdocs, &c.wfreqs); err != nil {
		c.ix.lazy.record(err)
		c.exhaust()
		return false
	}
	c.Decoded++
	sub := Postings{Docs: c.wdocs, Freqs: c.wfreqs}
	derived := BlockBounds{LastDoc: c.wdocs[len(c.wdocs)-1], TermBounds: boundsOf(&sub, c.ix.docLens)}
	if derived != c.blocks[b] {
		// Unlike the materialiser this cannot adopt the derived values
		// (other cursors may already have consulted the stored ones), so
		// a lying directory degrades the index instead: the event is
		// recorded and surfaced via Index.Err.
		c.ix.lazy.record(fmt.Errorf("index: term %q stored block bounds disagreed with postings (corrected)", c.ix.termText[c.id]))
	}
	c.docs, c.freqs = c.wdocs, c.wfreqs
	c.blk = b
	c.loaded = true
	return true
}

// recordBlockError runs the decoder over block b purely to land its
// canonical error on the index (used when a peek fails off-path).
func (c *TermCursor) recordBlockError(b int) {
	var docs []DocID
	var freqs []int32
	if err := c.decodeStream(b, &docs, &freqs); err != nil {
		c.ix.lazy.record(err)
	}
}

// ensureLoaded decodes the parked block in place; false means the
// decode failed and the cursor is now exhausted.
func (c *TermCursor) ensureLoaded() bool {
	if c.loaded {
		return true
	}
	if !c.loadBlock(c.blk) {
		return false
	}
	c.cur = c.docs[c.j]
	return true
}

// exhaust parks the cursor on DocEnd. loaded goes false so every
// accessor routes through its guarded slow path (the fast paths index
// the decode window, which is gone) — Freq/Next/PeekNext on an
// exhausted cursor are inert, not a panic.
func (c *TermCursor) exhaust() {
	c.cur = DocEnd
	c.loaded = false
	c.docs, c.freqs = nil, nil
	c.j = 0
}

// Release drops references into the index and its mapping (so a pooled
// cursor cannot pin a closed index) while keeping the decode backing
// for reuse.
func (c *TermCursor) Release() {
	c.ix = nil
	c.docs, c.freqs = nil, nil
	c.blocks = nil
	c.n = 0
	c.cur = DocEnd
	c.loaded = false // guarded slow paths; see exhaust
	c.j = 0
	c.Decoded = 0
}

package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func writeRaw(path string, content []byte) error {
	return os.WriteFile(path, content, 0o644)
}

// randomIndex builds a seeded corpus with a skewed vocabulary, so lists
// span many blocks when the block size is forced small.
func randomIndex(t *testing.T, docs, seed int) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	vocab := []string{"a", "a", "a", "b", "b", "c", "d", "e", "f", "g", "h", "z"}
	b := NewBuilder(analysis.Analyzer{})
	for d := 0; d < docs; d++ {
		n := 1 + rng.Intn(24)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		b.Add(fmt.Sprintf("D%05d", d), sb.String())
	}
	return b.Build()
}

// assertSameIndex demands got (fully materialised) equals want in every
// observable: corpus shape, postings rows, bounds, block summaries.
func assertSameIndex(t *testing.T, label string, got, want *Index) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() || got.NumTerms() != want.NumTerms() || got.TotalTokens() != want.TotalTokens() {
		t.Fatalf("%s: shape %v vs %v", label, got, want)
	}
	for d := 0; d < want.NumDocs(); d++ {
		if got.DocName(DocID(d)) != want.DocName(DocID(d)) || got.DocLen(DocID(d)) != want.DocLen(DocID(d)) {
			t.Fatalf("%s: doc %d diverges", label, d)
		}
	}
	for tid, text := range want.termText {
		gp := got.PostingsFor(text)
		wp := &want.postings[tid]
		if gp == nil {
			t.Fatalf("%s: term %q missing", label, text)
		}
		if len(gp.Docs) != len(wp.Docs) {
			t.Fatalf("%s: term %q df %d vs %d", label, text, len(gp.Docs), len(wp.Docs))
		}
		for i := range wp.Docs {
			if gp.Docs[i] != wp.Docs[i] || gp.Freqs[i] != wp.Freqs[i] {
				t.Fatalf("%s: term %q posting %d diverges", label, text, i)
			}
			if len(gp.Positions[i]) != len(wp.Positions[i]) {
				t.Fatalf("%s: term %q positions %d diverge", label, text, i)
			}
			for j := range wp.Positions[i] {
				if gp.Positions[i][j] != wp.Positions[i][j] {
					t.Fatalf("%s: term %q position %d/%d diverges", label, text, i, j)
				}
			}
		}
		gb, _ := got.BoundsFor(text)
		wb, _ := want.BoundsFor(text)
		if gb != wb {
			t.Fatalf("%s: term %q bounds %+v vs %+v", label, text, gb, wb)
		}
		gbb, _ := got.BlockBoundsFor(text)
		wbb, _ := want.BlockBoundsFor(text)
		if len(gbb) != len(wbb) {
			t.Fatalf("%s: term %q has %d blocks, want %d", label, text, len(gbb), len(wbb))
		}
		for i := range wbb {
			if gbb[i] != wbb[i] {
				t.Fatalf("%s: term %q block %d bounds %+v vs %+v", label, text, i, gbb[i], wbb[i])
			}
		}
	}
	if got.MinDocLen() != want.MinDocLen() {
		t.Fatalf("%s: MinDocLen %d vs %d", label, got.MinDocLen(), want.MinDocLen())
	}
}

// TestV2RoundTrip: write FormatV2, Open (lazy mmap), observe an index
// identical to the in-memory original — across block sizes that force
// single-posting, mid-size, and whole-list blocks.
func TestV2RoundTrip(t *testing.T) {
	for _, bs := range []int{1, 3, DefaultBlockSize, 1 << 14} {
		ix := randomIndex(t, 200, 42)
		if err := ix.SetBlockSize(bs); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "ix.v2")
		if err := WriteFile(path, ix, FormatV2); err != nil {
			t.Fatalf("bs=%d: write: %v", bs, err)
		}
		got, err := Open(path)
		if err != nil {
			t.Fatalf("bs=%d: open: %v", bs, err)
		}
		if got.BlockSize() != bs {
			t.Fatalf("bs=%d: loaded block size %d", bs, got.BlockSize())
		}
		assertSameIndex(t, fmt.Sprintf("bs=%d", bs), got, ix)
		if err := got.Err(); err != nil {
			t.Fatalf("bs=%d: corruption recorded on honest file: %v", bs, err)
		}
		if err := got.Close(); err != nil {
			t.Fatalf("bs=%d: close: %v", bs, err)
		}
	}
}

// TestV2OpenIsLazy: Open must not decode postings; the first
// PostingsFor does.
func TestV2OpenIsLazy(t *testing.T) {
	ix := randomIndex(t, 300, 7)
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := WriteFile(path, ix, FormatV2); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	for tid := range got.postings {
		if got.postings[tid].Docs != nil {
			t.Fatalf("term %d decoded at Open", tid)
		}
	}
	p := got.PostingsFor("a")
	if p == nil || len(p.Docs) == 0 {
		t.Fatal("PostingsFor(a) did not materialise")
	}
	// Bounds and block bounds are available without materialisation.
	if _, ok := got.BoundsFor("b"); !ok {
		t.Fatal("BoundsFor(b) missing")
	}
	if bb, ok := got.BlockBoundsFor("b"); !ok || len(bb) == 0 {
		t.Fatal("BlockBoundsFor(b) missing")
	}
}

// TestV2WithVerify: eager verification accepts a good file and still
// yields an identical index.
func TestV2WithVerify(t *testing.T) {
	ix := randomIndex(t, 150, 11)
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := WriteFile(path, ix, FormatV2); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	assertSameIndex(t, "verify", got, ix)
}

// TestOpenNegotiatesV1: Open loads FormatV1 files (both stream
// revisions) through the same entry point.
func TestOpenNegotiatesV1(t *testing.T) {
	ix := randomIndex(t, 80, 13)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "ix.v1")
	if err := WriteFile(v1, ix, FormatV1); err != nil {
		t.Fatal(err)
	}
	got, err := Open(v1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, "v1", got, ix)
	if got.Close() != nil {
		t.Fatal("v1 Close must be a no-op")
	}
}

// TestOpenRejectsGarbage: unknown magic and short files error cleanly.
func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"garbage": []byte("NOTANINDEXFILE"),
		"short":   []byte("SQ"),
		"empty":   nil,
	} {
		p := filepath.Join(dir, name)
		if err := writeRaw(p, content); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestV2ShardingAndForward: the full-index walks behind sharding and
// forward vectors transparently materialise a lazy index.
func TestV2ShardingAndForward(t *testing.T) {
	ix := randomIndex(t, 120, 17)
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := WriteFile(path, ix, FormatV2); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	sh := NewSharded(got, 4)
	wantSh := NewSharded(ix, 4)
	for s := 0; s < 4; s++ {
		if sh.Shard(s).NumDocs() != wantSh.Shard(s).NumDocs() {
			t.Fatalf("shard %d: %d docs, want %d", s, sh.Shard(s).NumDocs(), wantSh.Shard(s).NumDocs())
		}
	}
	for d := 0; d < 10; d++ {
		gv, wv := got.DocVector(DocID(d)), ix.DocVector(DocID(d))
		if len(gv) != len(wv) {
			t.Fatalf("doc %d forward vector %d entries, want %d", d, len(gv), len(wv))
		}
	}
}

// TestV2RoundTripThroughV1: v1 -> v2 -> v1 preserves the bytes (the
// formats describe the same index exactly).
func TestV2RoundTripThroughV1(t *testing.T) {
	ix := randomIndex(t, 90, 23)
	var v1a bytes.Buffer
	if err := encodeV1(&v1a, ix); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := WriteFile(path, ix, FormatV2); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	var v1b bytes.Buffer
	if err := encodeV1(&v1b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1a.Bytes(), v1b.Bytes()) {
		t.Fatal("v1 bytes diverge after a v2 round trip")
	}
}

// TestV2EmptyIndex: an empty corpus round-trips.
func TestV2EmptyIndex(t *testing.T) {
	ix := NewBuilder(analysis.Analyzer{}).Build()
	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := WriteFile(path, ix, FormatV2); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.NumDocs() != 0 || got.NumTerms() != 0 {
		t.Fatalf("empty index reopened as %v", got)
	}
}

// TestBuilderWriteFile: the one-step build+persist entry point.
func TestBuilderWriteFile(t *testing.T) {
	b := NewBuilder(analysis.Analyzer{})
	b.Add("D0", "x y x")
	b.Add("D1", "y z")
	path := filepath.Join(t.TempDir(), "ix.v2")
	built, err := b.WriteFile(path, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	assertSameIndex(t, "builder", got, built)
}

// TestBuildHelper: index.Build is NewBuilder/Add/Build.
func TestBuildHelper(t *testing.T) {
	ix := Build(analysis.Analyzer{}, []Document{{Name: "D0", Text: "p q"}, {Name: "D1", Text: "q r q"}})
	if ix.NumDocs() != 2 || ix.NumTerms() != 3 {
		t.Fatalf("Build produced %v", ix)
	}
	if p := ix.PostingsFor("q"); p == nil || p.CollectionFreq() != 3 {
		t.Fatalf("Build postings wrong: %+v", p)
	}
}

// TestSetBlockSizeGuards: range and too-late errors.
func TestSetBlockSizeGuards(t *testing.T) {
	ix := randomIndex(t, 10, 29)
	if err := ix.SetBlockSize(0); err == nil {
		t.Fatal("block size 0 accepted")
	}
	if err := ix.SetBlockSize(maxBlockSize + 1); err == nil {
		t.Fatal("oversized block size accepted")
	}
	ix.ensureBlockBounds()
	if err := ix.SetBlockSize(64); err == nil {
		t.Fatal("SetBlockSize after derivation accepted")
	}
}

package index

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestTextStore(t *testing.T) {
	b := NewBuilder(analysis.Standard())
	b.EnableTextStore()
	text := "The cable car climbs the foggy hill"
	b.Add("d1", text)
	ix := b.Build()
	if !ix.HasTextStore() {
		t.Fatal("text store missing")
	}
	if ix.DocText(0) != text {
		t.Errorf("DocText = %q", ix.DocText(0))
	}
	if ix.DocText(99) != "" {
		t.Error("out-of-range DocText should be empty")
	}
}

func TestTextStoreDisabledByDefault(t *testing.T) {
	b := NewBuilder(analysis.Standard())
	b.Add("d1", "some text")
	ix := b.Build()
	if ix.HasTextStore() || ix.DocText(0) != "" {
		t.Error("text store should be off by default")
	}
}

func TestSnippet(t *testing.T) {
	b := NewBuilder(analysis.Standard())
	b.EnableTextStore()
	long := strings.Repeat("filler words here and there ", 20) +
		"the funicular railway appears once " +
		strings.Repeat("more filler at the end ", 20)
	b.Add("d1", long)
	b.Add("d2", "short doc")
	ix := b.Build()

	snip := ix.Snippet(0, []string{"funicular"}, 60)
	if !strings.Contains(snip, "funicular") {
		t.Errorf("snippet %q misses the term", snip)
	}
	if len(snip) > 90 { // width + boundary slack + ellipses
		t.Errorf("snippet too long: %d bytes", len(snip))
	}
	// Short docs come back whole.
	if got := ix.Snippet(1, []string{"anything"}, 60); got != "short doc" {
		t.Errorf("short snippet = %q", got)
	}
	// No store → empty.
	b2 := NewBuilder(analysis.Standard())
	b2.Add("d", "x")
	if got := b2.Build().Snippet(0, nil, 10); got != "" {
		t.Errorf("snippet without store = %q", got)
	}
}

//go:build unix

package index

import (
	"os"
	"sync"
	"syscall"
)

// mmapFile maps path read-only. The returned close function unmaps the
// region; the file descriptor is closed before returning (the mapping
// survives it). Empty files map to an empty slice with a no-op close.
// Every mapping registers with the liveMappings counter and the close
// function is idempotent, so MappedRegions balances exactly — the leak
// assertions in close_test.go rely on both.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	liveMappings.Add(1)
	var once sync.Once
	return data, func() error {
		var err error
		once.Do(func() {
			liveMappings.Add(-1)
			err = syscall.Munmap(data)
		})
		return err
	}, nil
}

package index

import "sync/atomic"

// liveMappings counts the file-backed regions currently open in this
// process (mmap on unix, the read-into-memory fallback elsewhere).
// mmapFile increments it; the returned close function decrements it
// exactly once, however many times it is called.
var liveMappings atomic.Int64

// MappedRegions returns the number of file-backed index regions
// currently open. It exists for leak detection: tests that open and
// close indexes (and the segmented index's snapshot refcounting) assert
// the count returns to its starting value — a missing or double Close
// shows up as an imbalance here before it shows up as an fd leak in
// production.
func MappedRegions() int64 { return liveMappings.Load() }

package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/analysis"
)

// FormatV1, the original stream encoding (see open.go for the unified
// Open/WriteFile entry points that negotiate between this and the
// block-compressed FormatV2 in v2.go):
//
//	magic "SQEIX\x02"
//	byte analyzer flags (bit0 stopwords, bit1 stemming)
//	uvarint numDocs; per doc: uvarint len(name), name, uvarint docLen
//	uvarint numTerms; per term:
//	    uvarint len(text), text
//	    uvarint numPostings; per posting:
//	        delta-uvarint doc, uvarint freq, delta-uvarint positions
//	    uvarint MaxTF, MinDL, MaxRatioTF, MaxRatioDL   ("SQEIX\x02" only)
//
// TotalTokens is reconstructed from the doc lengths on load.
//
// The "SQEIX\x02" revision appends each term's TermBounds after its
// postings so loads skip the bound-derivation scan. The values are
// fully redundant with the postings, and the decoder exploits that: it
// re-derives them during the postings walk it does anyway and rejects
// the file on any mismatch, so a corrupt or hostile bounds section can
// never make the pruned evaluator drop documents (score-safety survives
// untrusted input). "SQEIX\x01" files (no bounds section) still load;
// their summaries are recomputed from the decoded postings.

var (
	indexMagic   = []byte("SQEIX\x02")
	indexMagicV1 = []byte("SQEIX\x01")
)

// maxPrealloc bounds any allocation driven by a length prefix read from
// untrusted input. Slices are allocated with at most this capacity and
// grown by append as elements actually decode, so a truncated or corrupt
// file claiming billions of entries fails on EOF after a ~64K-element
// allocation instead of triggering a multi-GB make up front.
const maxPrealloc = 1 << 16

// prealloc converts a claimed element count into a safe initial capacity.
func prealloc(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// encodeV1 writes the index in the FormatV1 stream encoding. Callers go
// through WriteFile; the encoder walks every postings row, so a lazily
// backed index is materialised first.
func encodeV1(w io.Writer, ix *Index) error {
	ix.materializeAll()
	ix.ensureBounds() // the bounds trailer of every term table entry
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagic); err != nil {
		return err
	}
	var flags byte
	if ix.analyzer.RemoveStopwords {
		flags |= 1
	}
	if ix.analyzer.Stem {
		flags |= 2
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeUvarint(uint64(len(ix.docNames))); err != nil {
		return err
	}
	for d, name := range ix.docNames {
		if err := writeString(name); err != nil {
			return err
		}
		if err := writeUvarint(uint64(ix.docLens[d])); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(ix.termText))); err != nil {
		return err
	}
	for tid, text := range ix.termText {
		if err := writeString(text); err != nil {
			return err
		}
		p := &ix.postings[tid]
		if err := writeUvarint(uint64(len(p.Docs))); err != nil {
			return err
		}
		prevDoc := DocID(0)
		for i, doc := range p.Docs {
			d := uint64(doc)
			if i > 0 {
				d = uint64(doc - prevDoc)
			}
			prevDoc = doc
			if err := writeUvarint(d); err != nil {
				return err
			}
			if err := writeUvarint(uint64(p.Freqs[i])); err != nil {
				return err
			}
			prevPos := int32(0)
			for j, pos := range p.Positions[i] {
				pd := uint64(pos)
				if j > 0 {
					pd = uint64(pos - prevPos)
				}
				prevPos = pos
				if err := writeUvarint(pd); err != nil {
					return err
				}
			}
		}
		b := ix.termBounds[tid]
		for _, v := range [4]int32{b.MaxTF, b.MinDL, b.MaxRatioTF, b.MaxRatioDL} {
			if err := writeUvarint(uint64(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// decodeV1 reads an index previously written by encodeV1. Callers go
// through Open, which dispatches on the magic.
func decodeV1(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	hasBounds := false
	switch string(head) {
	case string(indexMagic):
		hasBounds = true
	case string(indexMagicV1):
	default:
		return nil, fmt.Errorf("index: bad magic %q", head)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("index: reading flags: %w", err)
	}
	readString := func(what string, maxLen uint64) (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("index: reading %s length: %w", what, err)
		}
		if n > maxLen {
			return "", fmt.Errorf("index: %s length %d exceeds limit %d", what, n, maxLen)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("index: reading %s: %w", what, err)
		}
		return string(b), nil
	}

	ix := &Index{
		analyzer: analysis.Analyzer{RemoveStopwords: flags&1 != 0, Stem: flags&2 != 0},
		terms:    make(map[string]int32),
	}
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading doc count: %w", err)
	}
	const maxDocs = 1 << 31
	if numDocs > maxDocs {
		return nil, fmt.Errorf("index: doc count %d exceeds limit", numDocs)
	}
	ix.docNames = make([]string, 0, prealloc(numDocs))
	ix.docLens = make([]int32, 0, prealloc(numDocs))
	for d := uint64(0); d < numDocs; d++ {
		name, err := readString("doc name", 1<<16)
		if err != nil {
			return nil, err
		}
		dl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading doc %d length: %w", d, err)
		}
		ix.docNames = append(ix.docNames, name)
		ix.docLens = append(ix.docLens, int32(dl))
		ix.totalToks += int64(dl)
	}
	numTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading term count: %w", err)
	}
	if numTerms > maxDocs {
		return nil, fmt.Errorf("index: term count %d exceeds limit", numTerms)
	}
	ix.termText = make([]string, 0, prealloc(numTerms))
	ix.postings = make([]Postings, 0, prealloc(numTerms))
	ix.termBounds = make([]TermBounds, 0, prealloc(numTerms))
	for t := uint64(0); t < numTerms; t++ {
		text, err := readString("term", 1<<16)
		if err != nil {
			return nil, err
		}
		if _, dup := ix.terms[text]; dup {
			return nil, fmt.Errorf("index: duplicate term %q", text)
		}
		ix.termText = append(ix.termText, text)
		ix.terms[text] = int32(t)
		np, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting count: %w", text, err)
		}
		if np > numDocs {
			return nil, fmt.Errorf("index: term %q has %d postings for %d docs", text, np, numDocs)
		}
		var p Postings
		p.Docs = make([]DocID, 0, prealloc(np))
		p.Freqs = make([]int32, 0, prealloc(np))
		p.Positions = make([][]int32, 0, prealloc(np))
		prevDoc := DocID(0)
		for i := uint64(0); i < np; i++ {
			dd, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %q doc delta: %w", text, err)
			}
			doc := DocID(dd)
			if i > 0 {
				doc = prevDoc + DocID(dd)
			}
			if uint64(doc) >= numDocs {
				return nil, fmt.Errorf("index: term %q references doc %d of %d", text, doc, numDocs)
			}
			prevDoc = doc
			freq, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %q freq: %w", text, err)
			}
			if freq == 0 || freq > 1<<24 {
				return nil, fmt.Errorf("index: term %q has invalid freq %d", text, freq)
			}
			p.Docs = append(p.Docs, doc)
			p.Freqs = append(p.Freqs, int32(freq))
			pos := make([]int32, 0, prealloc(freq))
			prevPos := int32(0)
			for j := uint64(0); j < freq; j++ {
				pd, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("index: term %q position: %w", text, err)
				}
				pp := int32(pd)
				if j > 0 {
					pp = prevPos + int32(pd)
				}
				prevPos = pp
				pos = append(pos, pp)
			}
			p.Positions = append(p.Positions, pos)
		}
		// The walk above visited every posting, so the bound summary
		// comes for free; v2 files additionally store it, and stored-vs-
		// derived disagreement means the file is corrupt (trusting an
		// understated bound would silently break score-safe pruning).
		derived := boundsOf(&p, ix.docLens)
		if hasBounds {
			var stored TermBounds
			for _, field := range [4]*int32{&stored.MaxTF, &stored.MinDL, &stored.MaxRatioTF, &stored.MaxRatioDL} {
				v, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("index: term %q bounds: %w", text, err)
				}
				if v > 1<<31-1 {
					return nil, fmt.Errorf("index: term %q bound value %d out of range", text, v)
				}
				*field = int32(v)
			}
			if stored != derived {
				return nil, fmt.Errorf("index: term %q stored bounds %+v disagree with postings (%+v)", text, stored, derived)
			}
		}
		ix.postings = append(ix.postings, p)
		ix.termBounds = append(ix.termBounds, derived)
	}
	ix.minDocLen = minDocLenOf(ix.docLens)
	return ix, nil
}

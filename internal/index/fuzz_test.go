package index

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
)

// fuzzSeedIndex is a small but representative encoded index: several
// docs, shared terms (multi-entry postings with delta gaps), phrase
// positions, and the v2 bounds trailer.
func fuzzSeedIndex(f *testing.F) []byte {
	f.Helper()
	b := NewBuilder(analysis.Standard())
	b.Add("DocA", "cable cars climb the steep hill")
	b.Add("DocB", "the tram shares rails with the cable car")
	b.Add("DocC", "funicular railways and cable cars")
	var buf bytes.Buffer
	if err := encodeV1(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzIndexDecode feeds arbitrary bytes to the binary index decoder.
// The contract under hostile input: an error or a usable index — never
// a panic, never an unbounded allocation (length prefixes are clamped
// by maxPrealloc), and never a corrupt accepted index: anything Decode
// accepts must survive a full Encode/Decode round trip.
func FuzzIndexDecode(f *testing.F) {
	enc := fuzzSeedIndex(f)
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add(enc[:len(indexMagic)+1])
	f.Add([]byte("SQEIX\x02"))
	f.Add([]byte("SQEIX\x01\x03"))
	f.Add([]byte("SQEIX\x03\x00"))
	f.Add([]byte{})
	// A claimed-huge doc count followed by nothing: must fail on EOF,
	// not allocate multi-GB up front.
	f.Add(append(append([]byte{}, "SQEIX\x02\x03"...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := decodeV1(bytes.NewReader(data))
		if err != nil {
			return // rejecting corrupt input is the job; panicking is not
		}
		var out bytes.Buffer
		if err := encodeV1(&out, ix); err != nil {
			t.Fatalf("decoded index does not re-encode: %v", err)
		}
		if _, err := decodeV1(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("accepted index fails its own round trip: %v", err)
		}
	})
}

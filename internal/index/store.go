package index

// Optional raw-text document store. Retrieval itself never needs the
// original text, but the interactive tools (cmd/sqe-search) and snippet
// generation do; storing is opt-in to keep experiment indexes lean.

// EnableTextStore makes subsequent Add calls retain the raw document
// text. Call before adding documents.
func (b *Builder) EnableTextStore() { b.storeText = true }

// DocText returns the stored raw text of doc, or "" when the index was
// built without a text store.
func (ix *Index) DocText(doc DocID) string {
	if int(doc) >= len(ix.docTexts) {
		return ""
	}
	return ix.docTexts[doc]
}

// HasTextStore reports whether raw document text is available.
func (ix *Index) HasTextStore() bool { return len(ix.docTexts) > 0 }

// Snippet returns a short window of the stored document text centred on
// the first occurrence of any of the given analyzed terms, or the text's
// head when none occurs. Width is in bytes (the snippet is cut at word
// boundaries when possible).
func (ix *Index) Snippet(doc DocID, terms []string, width int) string {
	text := ix.DocText(doc)
	if text == "" || width <= 0 {
		return ""
	}
	if len(text) <= width {
		return text
	}
	// Locate the first term occurrence by scanning the raw text word by
	// word and pushing each word through the index's analyzer, which
	// keeps stemming/stopping consistent with how terms was produced.
	termSet := make(map[string]bool, len(terms))
	for _, t := range terms {
		termSet[t] = true
	}
	center := 0
	for start := 0; start < len(text); {
		for start < len(text) && !isWordByte(text[start]) {
			start++
		}
		end := start
		for end < len(text) && isWordByte(text[end]) {
			end++
		}
		if end == start {
			break
		}
		if analyzed := ix.analyzer.AnalyzeTerms(text[start:end]); len(analyzed) == 1 && termSet[analyzed[0]] {
			center = start
			break
		}
		start = end
	}
	start := center - width/2
	if start < 0 {
		start = 0
	}
	end := start + width
	if end > len(text) {
		end = len(text)
		start = end - width
	}
	// Snap to word boundaries.
	for start > 0 && text[start] != ' ' {
		start--
	}
	for end < len(text) && text[end] != ' ' {
		end++
	}
	out := text[start:end]
	if start > 0 {
		out = "…" + out
	}
	if end < len(text) {
		out += "…"
	}
	return out
}

// isWordByte reports whether b belongs to an ASCII word; multi-byte
// runes are treated as word bytes so UTF-8 words survive the scan.
func isWordByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9', b >= 0x80:
		return true
	}
	return false
}

//go:build !unix

package index

import "os"

// mmapFile on platforms without a wired-up mmap falls back to reading
// the file into memory; the format and all validation behave
// identically, only the shared-page-cache property is lost.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

//go:build !unix

package index

import (
	"os"
	"sync"
)

// mmapFile on platforms without a wired-up mmap falls back to reading
// the file into memory; the format and all validation behave
// identically, only the shared-page-cache property is lost. The
// liveMappings counter and close-once discipline match the unix path so
// MappedRegions means the same thing everywhere.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	liveMappings.Add(1)
	var once sync.Once
	return data, func() error {
		once.Do(func() { liveMappings.Add(-1) })
		return nil
	}, nil
}

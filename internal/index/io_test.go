package index

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
)

func TestIndexEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder(analysis.Standard())
	b.Add("doc-1", "The cable car climbs the foggy hills")
	b.Add("doc-2", "funiculars and cable cars share rails")
	b.Add("doc-3", "")
	ix := b.Build()

	var buf bytes.Buffer
	if err := encodeV1(&buf, ix); err != nil {
		t.Fatal(err)
	}
	got, err := decodeV1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, got)
	if got.Analyzer() != ix.Analyzer() {
		t.Error("analyzer flags lost")
	}
}

func assertIndexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	if a.NumDocs() != b.NumDocs() || a.NumTerms() != b.NumTerms() || a.TotalTokens() != b.TotalTokens() {
		t.Fatalf("shape differs: %s vs %s", a, b)
	}
	for d := 0; d < a.NumDocs(); d++ {
		if a.DocName(DocID(d)) != b.DocName(DocID(d)) || a.DocLen(DocID(d)) != b.DocLen(DocID(d)) {
			t.Fatalf("doc %d differs", d)
		}
	}
	for tid := 0; tid < a.NumTerms(); tid++ {
		text := a.TermText(int32(tid))
		pa := a.PostingsFor(text)
		pb := b.PostingsFor(text)
		if pb == nil {
			t.Fatalf("term %q lost", text)
		}
		if !reflect.DeepEqual(pa.Docs, pb.Docs) || !reflect.DeepEqual(pa.Freqs, pb.Freqs) || !reflect.DeepEqual(pa.Positions, pb.Positions) {
			t.Fatalf("postings for %q differ", text)
		}
	}
}

func TestIndexDecodeErrors(t *testing.T) {
	if _, err := decodeV1(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := decodeV1(bytes.NewReader(indexMagic)); err == nil {
		t.Error("truncated should fail")
	}
	// Corrupt body: valid header then junk.
	data := append(append([]byte{}, indexMagic...), 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	if _, err := decodeV1(bytes.NewReader(data)); err == nil {
		t.Error("absurd doc count should fail")
	}
}

// Property: round trip preserves search-relevant state for random
// indexes, and scoring over the decoded index matches.
func TestIndexRoundTripProperty(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(analysis.Analyzer{})
		nd := 1 + rng.Intn(12)
		for d := 0; d < nd; d++ {
			var sb strings.Builder
			for i := 0; i < rng.Intn(25); i++ {
				sb.WriteString(words[rng.Intn(len(words))] + " ")
			}
			b.Add("doc"+string(rune('a'+d)), sb.String())
		}
		ix := b.Build()
		var buf bytes.Buffer
		if err := encodeV1(&buf, ix); err != nil {
			return false
		}
		got, err := decodeV1(&buf)
		if err != nil {
			return false
		}
		if got.TotalTokens() != ix.TotalTokens() || got.NumTerms() != ix.NumTerms() {
			return false
		}
		for _, w := range words {
			pa, pb := ix.PostingsFor(w), got.PostingsFor(w)
			if (pa == nil) != (pb == nil) {
				return false
			}
			if pa != nil && !reflect.DeepEqual(pa.Positions, pb.Positions) {
				return false
			}
		}
		// Phrase machinery must agree on the decoded index.
		p1 := ix.PhrasePostings([]string{"alpha", "beta"})
		p2 := got.PhrasePostings([]string{"alpha", "beta"})
		return reflect.DeepEqual(p1.Docs, p2.Docs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package index implements the positional inverted index behind the
// reproduction's Indri-like retrieval substrate. It stores, per term, the
// documents it occurs in, term frequencies and token positions, plus the
// collection statistics (collection frequency, total token count) that
// Dirichlet-smoothed query-likelihood scoring needs.
package index

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
)

// DocID identifies a document in an Index; IDs are dense, 0..NumDocs-1,
// assigned in insertion order.
type DocID int32

// Postings is the inverted list of one term: parallel slices sorted by
// document ID.
type Postings struct {
	// Docs are the documents containing the term, ascending.
	Docs []DocID
	// Freqs[i] is the term frequency in Docs[i].
	Freqs []int32
	// Positions[i] are the token positions of the term in Docs[i],
	// ascending.
	Positions [][]int32
}

// CollectionFreq returns the total number of occurrences of the term in
// the collection.
func (p *Postings) CollectionFreq() int64 {
	var cf int64
	for _, f := range p.Freqs {
		cf += int64(f)
	}
	return cf
}

// Index is an immutable positional inverted index. Build one with a
// Builder.
type Index struct {
	analyzer analysis.Analyzer
	terms    map[string]int32
	postings []Postings
	termText []string

	docNames  []string
	docLens   []int32
	docTexts  []string // raw text, only when built with EnableTextStore
	totalToks int64

	fwdOnce sync.Once
	forward [][]TermFreq

	// Per-term score-bound metadata (see bounds.go). Computed lazily on
	// first use — shard indexes are assembled by struct literal and must
	// not pay the scan unless pruning runs — or eagerly by decodeV1,
	// which derives the values during its postings walk.
	boundsOnce sync.Once
	termBounds []TermBounds
	minDocLen  int32

	// Block-level score-bound metadata (see blocks.go), derived lazily
	// like termBounds or loaded eagerly from a v2 file's block directory.
	blockOnce   sync.Once
	blockBounds [][]BlockBounds
	blockSize   int // 0 means DefaultBlockSize

	// lazy is the mmap-backed postings source of a FormatV2 index (see
	// v2.go); nil for in-memory indexes. When set, ix.postings starts as
	// zero values and each term's row is decoded on first PostingsFor.
	lazy *lazyPostings
}

// Close releases the resources of an index loaded from a FormatV2 file
// (the mmap region); it is a no-op for in-memory indexes. Postings rows
// already materialised remain valid (they are copies), but the index
// must not be searched for terms not yet touched after Close.
func (ix *Index) Close() error {
	if ix.lazy == nil {
		return nil
	}
	return ix.lazy.close()
}

// Err reports the first corruption the lazy decoder hit (nil for
// in-memory indexes and healthy files). Open's integrity checks make
// this unreachable for randomly corrupted files; it is the
// defense-in-depth surface for the residual cases (see v2.go).
func (ix *Index) Err() error {
	if ix.lazy == nil {
		return nil
	}
	return ix.lazy.err()
}

// materializeAll forces every lazily-backed postings row into memory —
// the full-index walks (sharding, forward vectors, re-encoding) need
// the real rows, not the on-demand view.
func (ix *Index) materializeAll() {
	if ix.lazy == nil {
		return
	}
	for id := range ix.postings {
		ix.termPostings(int32(id))
	}
}

// termPostings returns term id's postings row, decoding it first when
// the index is backed by a v2 file.
func (ix *Index) termPostings(id int32) *Postings {
	if lz := ix.lazy; lz != nil {
		lz.once[id].Do(func() { lz.materialize(ix, id) })
	}
	return &ix.postings[id]
}

// StreamableTerm reports whether term can be served by a streaming
// block cursor — the index is backed by a FormatV2 file — and returns
// its ID. The stored per-term stats and bounds (StoredTermStats,
// StoredTermBounds) are then readable without decoding any postings.
func (ix *Index) StreamableTerm(term string) (int32, bool) {
	if ix.lazy == nil {
		return 0, false
	}
	id, ok := ix.terms[term]
	return id, ok
}

// StoredTermStats returns term id's stored document and collection
// frequencies without decoding its postings. Only valid on an index for
// which StreamableTerm reported true.
func (ix *Index) StoredTermStats(id int32) (df int, cf int64) {
	return int(ix.lazy.df[id]), ix.lazy.cf[id]
}

// StoredTermBounds returns term id's whole-list and per-block bound
// summaries as loaded (and cross-validated) by Open, without decoding
// its postings. Only valid on an index for which StreamableTerm
// reported true.
func (ix *Index) StoredTermBounds(id int32) (TermBounds, []BlockBounds) {
	return ix.termBounds[id], ix.blockBounds[id]
}

// PostingsByID returns term id's postings row, decoding it first when
// the index is backed by a v2 file. Shared with the index; do not
// modify.
func (ix *Index) PostingsByID(id int32) *Postings {
	return ix.termPostings(id)
}

// Analyzer returns the analyzer documents were indexed with; queries must
// use the same one.
func (ix *Index) Analyzer() analysis.Analyzer { return ix.analyzer }

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docNames) }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.postings) }

// TotalTokens returns the collection length |C| in tokens (post-analysis).
func (ix *Index) TotalTokens() int64 { return ix.totalToks }

// DocName returns the external name of doc.
func (ix *Index) DocName(doc DocID) string { return ix.docNames[doc] }

// DocLen returns the document length |D| in tokens (post-analysis).
func (ix *Index) DocLen(doc DocID) int32 { return ix.docLens[doc] }

// TermID resolves an analyzed term to its internal ID; ok is false when
// the term does not occur in the collection.
func (ix *Index) TermID(term string) (int32, bool) {
	id, ok := ix.terms[term]
	return id, ok
}

// TermText returns the text of term id.
func (ix *Index) TermText(id int32) string { return ix.termText[id] }

// PostingsFor returns the postings of an analyzed term, or nil when the
// term is out of vocabulary. The returned struct is shared with the index
// and must not be modified.
func (ix *Index) PostingsFor(term string) *Postings {
	id, ok := ix.terms[term]
	if !ok {
		return nil
	}
	return ix.termPostings(id)
}

// CollectionProb returns the collection language-model probability
// P(w|C) = cf(w)/|C|, with add-epsilon flooring for out-of-vocabulary
// terms so that log-probabilities stay finite.
func (ix *Index) CollectionProb(term string) float64 {
	cf := int64(0)
	if p := ix.PostingsFor(term); p != nil {
		cf = p.CollectionFreq()
	}
	return ix.FloorProb(cf)
}

// FloorProb converts a collection frequency into a probability with a
// 0.5-occurrence floor (the usual OOV treatment in LM retrieval).
func (ix *Index) FloorProb(cf int64) float64 {
	if ix.totalToks == 0 {
		return 1e-12
	}
	if cf <= 0 {
		return 0.5 / float64(ix.totalToks)
	}
	return float64(cf) / float64(ix.totalToks)
}

// AvgDocLen returns the mean document length.
func (ix *Index) AvgDocLen() float64 {
	if len(ix.docLens) == 0 {
		return 0
	}
	return float64(ix.totalToks) / float64(len(ix.docLens))
}

// String summarises the index.
func (ix *Index) String() string {
	return fmt.Sprintf("index: %d docs, %d terms, %d tokens", ix.NumDocs(), ix.NumTerms(), ix.TotalTokens())
}

// Builder accumulates documents and produces an Index. Not safe for
// concurrent use.
type Builder struct {
	analyzer analysis.Analyzer
	terms    map[string]int32
	termText []string
	// per-term accumulation, parallel to termText
	docs  [][]DocID
	freqs [][]int32
	pos   [][][]int32

	docNames  []string
	docLens   []int32
	docTexts  []string
	storeText bool
	totalToks int64
}

// NewBuilder returns a Builder using the given analyzer.
func NewBuilder(a analysis.Analyzer) *Builder {
	return &Builder{analyzer: a, terms: make(map[string]int32)}
}

// Add indexes one document and returns its DocID. name is the external
// document identifier used in run files and qrels.
func (b *Builder) Add(name, text string) DocID {
	doc := DocID(len(b.docNames))
	b.docNames = append(b.docNames, name)
	if b.storeText {
		b.docTexts = append(b.docTexts, text)
	}
	toks := b.analyzer.Analyze(text)
	b.docLens = append(b.docLens, int32(len(toks)))
	b.totalToks += int64(len(toks))
	for _, t := range toks {
		id, ok := b.terms[t.Term]
		if !ok {
			id = int32(len(b.termText))
			b.terms[t.Term] = id
			b.termText = append(b.termText, t.Term)
			b.docs = append(b.docs, nil)
			b.freqs = append(b.freqs, nil)
			b.pos = append(b.pos, nil)
		}
		n := len(b.docs[id])
		if n > 0 && b.docs[id][n-1] == doc {
			b.freqs[id][n-1]++
			b.pos[id][n-1] = append(b.pos[id][n-1], int32(t.Position))
		} else {
			b.docs[id] = append(b.docs[id], doc)
			b.freqs[id] = append(b.freqs[id], 1)
			b.pos[id] = append(b.pos[id], []int32{int32(t.Position)})
		}
	}
	return doc
}

// Build finalises the index; the Builder must not be used afterwards.
func (b *Builder) Build() *Index {
	ix := &Index{
		analyzer:  b.analyzer,
		terms:     b.terms,
		termText:  b.termText,
		docNames:  b.docNames,
		docLens:   b.docLens,
		docTexts:  b.docTexts,
		totalToks: b.totalToks,
		postings:  make([]Postings, len(b.termText)),
	}
	for id := range b.termText {
		// Documents are added in increasing DocID order, so postings are
		// already sorted; assert in development builds via a cheap check.
		if !sort.SliceIsSorted(b.docs[id], func(i, j int) bool { return b.docs[id][i] < b.docs[id][j] }) {
			sortPostings(b.docs[id], b.freqs[id], b.pos[id])
		}
		ix.postings[id] = Postings{Docs: b.docs[id], Freqs: b.freqs[id], Positions: b.pos[id]}
	}
	b.docs, b.freqs, b.pos = nil, nil, nil
	return ix
}

// sortPostings sorts the three parallel slices by DocID. Only needed if a
// caller ever feeds documents out of order (future-proofing for merge
// builds).
func sortPostings(docs []DocID, freqs []int32, pos [][]int32) {
	idx := make([]int, len(docs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return docs[idx[i]] < docs[idx[j]] })
	nd := make([]DocID, len(docs))
	nf := make([]int32, len(freqs))
	np := make([][]int32, len(pos))
	for i, k := range idx {
		nd[i], nf[i], np[i] = docs[k], freqs[k], pos[k]
	}
	copy(docs, nd)
	copy(freqs, nf)
	copy(pos, np)
}

package index

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// v2Bytes renders a small multi-block index into its FormatV2 image.
func v2Bytes(t *testing.T, bs int) []byte {
	t.Helper()
	ix := randomIndex(t, 80, 99)
	if err := ix.SetBlockSize(bs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openBytes(t *testing.T, data []byte) (*Index, error) {
	t.Helper()
	p := filepath.Join(t.TempDir(), "ix")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return Open(p)
}

// TestV2FlipCorruption: EVERY single-byte flip in a v2 file must fail
// Open. The whole file is covered — header CRC, metadata section CRCs,
// and the per-block CRC scan leave no byte whose corruption can load
// quietly.
func TestV2FlipCorruption(t *testing.T) {
	good := v2Bytes(t, 4)
	if _, err := openBytes(t, good); err != nil {
		t.Fatalf("sanity: %v", err)
	}
	// Exhaustive on a small image; every offset, one bit each.
	for off := 0; off < len(good); off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if ix, err := openBytes(t, bad); err == nil {
			ix.Close()
			t.Fatalf("flip at offset %d/%d accepted", off, len(good))
		}
	}
}

// TestV2TruncateCorruption: every proper prefix fails Open.
func TestV2TruncateCorruption(t *testing.T) {
	good := v2Bytes(t, 8)
	for _, cut := range []int{0, 1, 5, 6, 7, 20, len(good) / 4, len(good) / 2, len(good) - 5, len(good) - 1} {
		if cut >= len(good) {
			continue
		}
		if ix, err := openBytes(t, good[:cut]); err == nil {
			ix.Close()
			t.Fatalf("truncation to %d/%d bytes accepted", cut, len(good))
		}
	}
	// Appended garbage must fail too (sections no longer tile the file).
	if ix, err := openBytes(t, append(append([]byte(nil), good...), 0xAA)); err == nil {
		ix.Close()
		t.Fatal("trailing garbage accepted")
	}
}

// TestV2HostilePrefix: a tiny file whose header claims enormous section
// lengths or counts must fail fast on validation, not allocate first.
// The allocation caps (prealloc, name/term length limits) keep even a
// CRC-consistent hostile file from forcing large allocations.
func TestV2HostilePrefix(t *testing.T) {
	// Claim 2^60-byte sections in an otherwise well-formed header.
	head := append([]byte(nil), indexMagicV2...)
	head = append(head, 0) // flags
	var u64 [8]byte
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(u64[:], 1<<60)
		head = append(head, u64[:]...)
	}
	head = crcTrail(head)
	if ix, err := openBytes(t, head); err == nil {
		ix.Close()
		t.Fatal("hostile section lengths accepted")
	}

	// A CRC-consistent docs section claiming 2^30 documents but holding
	// none: prealloc caps the up-front allocation and the decode fails on
	// section exhaustion.
	var tmp [binary.MaxVarintLen64]byte
	docs := tmp[:binary.PutUvarint(tmp[:], 1<<30)]
	docs = crcTrail(append([]byte(nil), docs...))
	empty := crcTrail(nil)
	img := append([]byte(nil), indexMagicV2...)
	img = append(img, 0)
	for _, n := range [4]int{len(docs), len(empty), len(empty), 0} {
		binary.LittleEndian.PutUint64(u64[:], uint64(n))
		img = append(img, u64[:]...)
	}
	img = crcTrail(img)
	img = append(img, docs...)
	img = append(img, empty...)
	img = append(img, empty...)
	if ix, err := openBytes(t, img); err == nil {
		ix.Close()
		t.Fatal("hostile doc count accepted")
	}
}

// TestV2LyingBlockBounds: a CRC-consistent file whose block directory
// understates a block's bounds cannot weaken pruning — the lazy decoder
// re-derives the summary from the decoded postings, adopts the exact
// values, and surfaces the event through Err. (Open's cross-check ties
// the whole-list bounds to the directory, so the lie must be consistent
// across both to get past Open at all.)
func TestV2LyingBlockBounds(t *testing.T) {
	ix := randomIndex(t, 60, 5)
	if err := ix.SetBlockSize(4); err != nil {
		t.Fatal(err)
	}
	ix.ensureBounds()
	ix.ensureBlockBounds()
	// Understate term "a" everywhere: halve MaxTF in every block AND in
	// the whole-list summary so mergeBlockBounds still matches at Open.
	id := ix.terms["a"]
	orig := ix.termBounds[id]
	if orig.MaxTF < 2 {
		t.Fatalf("corpus too uniform for the lie (MaxTF=%d)", orig.MaxTF)
	}
	for b := range ix.blockBounds[id] {
		if ix.blockBounds[id][b].MaxTF > 1 {
			ix.blockBounds[id][b].MaxTF = 1
		}
		ix.blockBounds[id][b].MaxRatioTF = 1
	}
	ix.termBounds[id] = mergeBlockBounds(ix.blockBounds[id])
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	got, err := openBytes(t, buf.Bytes())
	if err != nil {
		t.Fatalf("consistently lying file must pass Open (lazy decode corrects it): %v", err)
	}
	defer got.Close()
	// Materialising the lying term corrects its summaries...
	if got.PostingsFor("a") == nil {
		t.Fatal("term a missing")
	}
	if b, _ := got.BoundsFor("a"); b != orig {
		t.Fatalf("bounds after materialisation = %+v, want corrected %+v", b, orig)
	}
	// ...and the event is on the record.
	if got.Err() == nil {
		t.Fatal("corrected bound lie left Err() nil")
	}
}

// TestV2WithVerifyRejectsLies: eager verification turns the same lie
// into an Open failure.
func TestV2WithVerifyRejectsLies(t *testing.T) {
	ix := randomIndex(t, 60, 5)
	if err := ix.SetBlockSize(4); err != nil {
		t.Fatal(err)
	}
	ix.ensureBounds()
	ix.ensureBlockBounds()
	id := ix.terms["a"]
	for b := range ix.blockBounds[id] {
		if ix.blockBounds[id][b].MaxTF > 1 {
			ix.blockBounds[id][b].MaxTF = 1
		}
		ix.blockBounds[id][b].MaxRatioTF = 1
	}
	ix.termBounds[id] = mergeBlockBounds(ix.blockBounds[id])
	var buf bytes.Buffer
	if err := encodeV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "ix")
	if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := Open(p, WithVerify()); err == nil {
		got.Close()
		t.Fatal("WithVerify accepted a file with lying block bounds")
	}
}

package index

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// manifestFixtures returns representative manifests: empty, single
// segment, tombstones (including doc 0), and a multi-segment set with
// sparse sequence numbers.
func manifestFixtures() []*manifest {
	return []*manifest{
		{NextSeq: 1},
		{Segments: []manifestEntry{{Seq: 1}}, NextSeq: 2},
		{Segments: []manifestEntry{{Seq: 1, Tombs: []DocID{0}}}, NextSeq: 2},
		{Segments: []manifestEntry{
			{Seq: 2, Tombs: []DocID{0, 3, 17}},
			{Seq: 5},
			{Seq: 9, Tombs: []DocID{1}},
		}, NextSeq: 12},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for i, m := range manifestFixtures() {
		data := encodeManifest(m)
		got, err := decodeManifest(data)
		if err != nil {
			t.Fatalf("fixture %d: decode: %v", i, err)
		}
		if got.NextSeq != m.NextSeq {
			t.Fatalf("fixture %d: NextSeq %d, want %d", i, got.NextSeq, m.NextSeq)
		}
		if len(got.Segments) != len(m.Segments) {
			t.Fatalf("fixture %d: %d segments, want %d", i, len(got.Segments), len(m.Segments))
		}
		for j := range m.Segments {
			if got.Segments[j].Seq != m.Segments[j].Seq {
				t.Fatalf("fixture %d seg %d: seq %d, want %d", i, j, got.Segments[j].Seq, m.Segments[j].Seq)
			}
			if !reflect.DeepEqual([]DocID(got.Segments[j].Tombs), append([]DocID{}, m.Segments[j].Tombs...)) {
				t.Fatalf("fixture %d seg %d: tombs %v, want %v", i, j, got.Segments[j].Tombs, m.Segments[j].Tombs)
			}
		}
	}
}

// TestManifestByteFlips flips every bit of every byte of each encoded
// fixture and demands the decoder either rejects the image or returns a
// manifest that re-encodes canonically — no flip may crash, hang, or
// silently produce an image that fails its own round-trip. With a CRC
// trailer, in practice every single-bit flip is rejected; the test
// asserts the stronger invariant without assuming it.
func TestManifestByteFlips(t *testing.T) {
	for fi, m := range manifestFixtures() {
		orig := encodeManifest(m)
		for off := 0; off < len(orig); off++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), orig...)
				mut[off] ^= 1 << bit
				got, err := decodeManifest(mut)
				if err != nil {
					continue
				}
				re := encodeManifest(got)
				got2, err := decodeManifest(re)
				if err != nil {
					t.Fatalf("fixture %d off %d bit %d: accepted image fails round-trip: %v", fi, off, bit, err)
				}
				if !reflect.DeepEqual(got, got2) {
					t.Fatalf("fixture %d off %d bit %d: round-trip not a fixpoint", fi, off, bit)
				}
			}
		}
	}
}

func TestManifestTruncation(t *testing.T) {
	for fi, m := range manifestFixtures() {
		orig := encodeManifest(m)
		for n := 0; n < len(orig); n++ {
			if _, err := decodeManifest(orig[:n]); err == nil {
				t.Fatalf("fixture %d: decode accepted %d-byte prefix of %d-byte manifest", fi, n, len(orig))
			}
		}
	}
}

func TestManifestRejectsTrailingBytes(t *testing.T) {
	data := append(encodeManifest(manifestFixtures()[3]), 0)
	if _, err := decodeManifest(data); err == nil {
		t.Fatal("decode accepted trailing byte")
	}
}

func TestManifestRejectsBadShapes(t *testing.T) {
	// Structurally invalid manifests must fail at encode+decode: the
	// encoder sorts segments defensively, so build the bad images by
	// hand from a valid one.
	good := encodeManifest(&manifest{Segments: []manifestEntry{{Seq: 1}}, NextSeq: 2})
	if _, err := decodeManifest(good); err != nil {
		t.Fatalf("control decode: %v", err)
	}
	// NextSeq not above the listed segments.
	if _, err := decodeManifest(encodeManifest(&manifest{Segments: []manifestEntry{{Seq: 5}}, NextSeq: 5})); err == nil {
		t.Fatal("decode accepted nextSeq == max seq")
	}
	// Duplicate sequence numbers survive the defensive sort, so the
	// decoder's strict ascent must reject them.
	if _, err := decodeManifest(encodeManifest(&manifest{Segments: []manifestEntry{{Seq: 3}, {Seq: 3}}, NextSeq: 4})); err == nil {
		t.Fatal("decode accepted duplicate seq")
	}
}

func TestWriteReadManifestFile(t *testing.T) {
	dir := t.TempDir()
	m := manifestFixtures()[3]
	if err := writeManifest(dir, m); err != nil {
		t.Fatalf("writeManifest: %v", err)
	}
	got, err := readManifest(dir)
	if err != nil {
		t.Fatalf("readManifest: %v", err)
	}
	if !bytes.Equal(encodeManifest(got), encodeManifest(m)) {
		t.Fatal("manifest file round-trip mismatch")
	}
	// No temp debris.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != manifestName {
		t.Fatalf("unexpected directory contents: %v", ents)
	}
}

func TestReadManifestMissingIsEmpty(t *testing.T) {
	m, err := readManifest(t.TempDir())
	if err != nil {
		t.Fatalf("readManifest: %v", err)
	}
	if len(m.Segments) != 0 || m.NextSeq != 1 {
		t.Fatalf("fresh state = %+v, want empty with NextSeq 1", m)
	}
}

func TestCleanOrphans(t *testing.T) {
	dir := t.TempDir()
	m := &manifest{Segments: []manifestEntry{{Seq: 2}}, NextSeq: 4}
	if err := writeManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"seg-2.v2", "seg-3.v2", ".sqe-index-123", ".sqe-manifest-9", "unrelated.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := cleanOrphans(dir, m)
	if err != nil {
		t.Fatalf("cleanOrphans: %v", err)
	}
	got := map[string]bool{}
	for _, n := range removed {
		got[n] = true
	}
	if !got["seg-3.v2"] || !got[".sqe-index-123"] || !got[".sqe-manifest-9"] || len(removed) != 3 {
		t.Fatalf("removed %v, want exactly the orphan segment and temp files", removed)
	}
	for _, name := range []string{manifestName, "seg-2.v2", "unrelated.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s should have survived: %v", name, err)
		}
	}
}

// FuzzSegmentManifest: any input the decoder accepts must round-trip —
// re-encoding the decoded manifest and decoding again yields the same
// manifest (the canonical-form fixpoint) — and decoding must never
// over-allocate on hostile counts (the prealloc caps; enforced
// implicitly: a multi-gigabyte allocation would OOM the fuzz worker).
func FuzzSegmentManifest(f *testing.F) {
	for _, m := range manifestFixtures() {
		f.Add(encodeManifest(m))
	}
	f.Add([]byte("SQEMF1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		re := encodeManifest(m)
		m2, err := decodeManifest(re)
		if err != nil {
			t.Fatalf("re-encode of accepted manifest rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round-trip not a fixpoint: %+v vs %+v", m, m2)
		}
	})
}

package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
)

// buildRandomIndex indexes docs synthetic documents over a small
// vocabulary with a fixed seed, so shard invariants are exercised on
// realistic (skewed, multi-occurrence) postings.
func buildRandomIndex(t *testing.T, docs, seed int) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	vocab := []string{"cable", "car", "tram", "funicular", "railway", "gondola", "lift", "museum", "bridge", "harbour"}
	b := NewBuilder(analysis.Standard())
	for d := 0; d < docs; d++ {
		n := 3 + rng.Intn(20)
		text := ""
		for i := 0; i < n; i++ {
			text += vocab[rng.Intn(len(vocab))] + " "
		}
		b.Add(fmt.Sprintf("doc%03d", d), text)
	}
	return b.Build()
}

func TestNewShardedPartitionInvariants(t *testing.T) {
	ix := buildRandomIndex(t, 57, 1)
	for _, n := range []int{1, 2, 3, 4, 8} {
		sh := NewSharded(ix, n)
		if sh.NumShards() != n {
			t.Fatalf("n=%d: NumShards=%d", n, sh.NumShards())
		}
		if sh.NumDocs() != ix.NumDocs() || sh.TotalTokens() != ix.TotalTokens() {
			t.Fatalf("n=%d: global stats %d/%d want %d/%d", n, sh.NumDocs(), sh.TotalTokens(), ix.NumDocs(), ix.TotalTokens())
		}
		if sh.AvgDocLen() != ix.AvgDocLen() {
			t.Fatalf("n=%d: AvgDocLen %v want %v", n, sh.AvgDocLen(), ix.AvgDocLen())
		}
		// Every document appears exactly once, in the right shard, with
		// its name and length intact; GlobalDoc round-trips.
		var docsSeen, toks int64
		for s := 0; s < n; s++ {
			shard := sh.Shard(s)
			docsSeen += int64(shard.NumDocs())
			toks += shard.TotalTokens()
			for local := 0; local < shard.NumDocs(); local++ {
				g := sh.GlobalDoc(s, DocID(local))
				if int(g)%n != s || int(g)/n != local {
					t.Fatalf("n=%d: GlobalDoc(%d,%d)=%d does not round-trip", n, s, local, g)
				}
				if shard.DocName(DocID(local)) != ix.DocName(g) {
					t.Fatalf("n=%d shard=%d local=%d: name %q want %q", n, s, local, shard.DocName(DocID(local)), ix.DocName(g))
				}
				if shard.DocLen(DocID(local)) != ix.DocLen(g) {
					t.Fatalf("n=%d shard=%d local=%d: len mismatch", n, s, local)
				}
			}
		}
		if docsSeen != int64(ix.NumDocs()) || toks != ix.TotalTokens() {
			t.Fatalf("n=%d: shard sums docs=%d toks=%d", n, docsSeen, toks)
		}
		// Per term: the remapped union of shard postings reconstructs the
		// original postings exactly (docs, freqs, positions), and global
		// collection frequencies match.
		for tid := 0; tid < ix.NumTerms(); tid++ {
			term := ix.TermText(int32(tid))
			orig := ix.PostingsFor(term)
			type row struct {
				doc  DocID
				freq int32
				pos  []int32
			}
			var rows []row
			var cf int64
			for s := 0; s < n; s++ {
				p := sh.Shard(s).PostingsFor(term)
				if p == nil {
					continue
				}
				cf += p.CollectionFreq()
				for i, local := range p.Docs {
					rows = append(rows, row{sh.GlobalDoc(s, local), p.Freqs[i], p.Positions[i]})
				}
			}
			if cf != orig.CollectionFreq() {
				t.Fatalf("n=%d term %q: cf %d want %d", n, term, cf, orig.CollectionFreq())
			}
			if len(rows) != len(orig.Docs) {
				t.Fatalf("n=%d term %q: %d rows want %d", n, term, len(rows), len(orig.Docs))
			}
			// Sort rows by global doc to compare against the original.
			for i := 0; i < len(rows); i++ {
				for j := i + 1; j < len(rows); j++ {
					if rows[j].doc < rows[i].doc {
						rows[i], rows[j] = rows[j], rows[i]
					}
				}
			}
			for i, r := range rows {
				if r.doc != orig.Docs[i] || r.freq != orig.Freqs[i] || !reflect.DeepEqual(r.pos, orig.Positions[i]) {
					t.Fatalf("n=%d term %q row %d: got (%d,%d,%v) want (%d,%d,%v)",
						n, term, i, r.doc, r.freq, r.pos, orig.Docs[i], orig.Freqs[i], orig.Positions[i])
				}
			}
		}
		// Shard postings must stay sorted (the DAAT evaluator requires it).
		for s := 0; s < n; s++ {
			shard := sh.Shard(s)
			for tid := 0; tid < shard.NumTerms(); tid++ {
				p := shard.PostingsFor(shard.TermText(int32(tid)))
				for i := 1; i < len(p.Docs); i++ {
					if p.Docs[i-1] >= p.Docs[i] {
						t.Fatalf("n=%d shard=%d term %d: unsorted postings", n, s, tid)
					}
				}
			}
		}
	}
}

func TestNewShardedClamps(t *testing.T) {
	ix := buildRandomIndex(t, 3, 2)
	if got := NewSharded(ix, 0).NumShards(); got != 1 {
		t.Fatalf("n=0 clamped to %d, want 1", got)
	}
	if got := NewSharded(ix, -4).NumShards(); got != 1 {
		t.Fatalf("n=-4 clamped to %d, want 1", got)
	}
	if got := NewSharded(ix, 100).NumShards(); got != 3 {
		t.Fatalf("n=100 clamped to %d, want NumDocs=3", got)
	}
	// n == 1 shares the original index rather than copying it.
	if sh := NewSharded(ix, 1); sh.Shard(0) != ix {
		t.Fatal("n=1 should share the original index")
	}
	// Empty index: a single empty shard, no panic.
	empty := NewBuilder(analysis.Standard()).Build()
	sh := NewSharded(empty, 4)
	if sh.NumShards() != 1 || sh.NumDocs() != 0 {
		t.Fatalf("empty index: %d shards, %d docs", sh.NumShards(), sh.NumDocs())
	}
	if sh.FloorProb(0) != 1e-12 {
		t.Fatalf("empty FloorProb = %v", sh.FloorProb(0))
	}
}

func TestShardedFloorProbMatchesIndex(t *testing.T) {
	ix := buildRandomIndex(t, 40, 3)
	sh := NewSharded(ix, 4)
	for _, cf := range []int64{0, 1, 2, 17, ix.TotalTokens()} {
		if got, want := sh.FloorProb(cf), ix.FloorProb(cf); got != want {
			t.Fatalf("FloorProb(%d): sharded %v != index %v", cf, got, want)
		}
	}
}

package index

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fault"
)

// segDoc is one generated document for segment tests.
type segDoc struct {
	name, text string
}

// segCorpus generates a deterministic corpus over a tiny vocabulary
// (repeats and multi-occurrence docs included, so positions and
// frequencies are exercised).
func segCorpus(n, seed int) []segDoc {
	rng := rand.New(rand.NewSource(int64(seed)))
	vocab := []string{"a", "a", "b", "b", "c", "d", "e", "f", "g", "zz"}
	docs := make([]segDoc, n)
	for d := range docs {
		var sb strings.Builder
		for i, l := 0, 2+rng.Intn(18); i < l; i++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		docs[d] = segDoc{name: fmt.Sprintf("D%05d", d), text: sb.String()}
	}
	return docs
}

// openSegForTest opens a Segmented in a temp dir, closing it at test
// end.
func openSegForTest(t *testing.T, flushDocs int) *Segmented {
	t.Helper()
	s, err := OpenSegmented(t.TempDir(), analysis.Analyzer{}, WithFlushDocs(flushDocs))
	if err != nil {
		t.Fatalf("OpenSegmented: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// requireEquivalent asserts got and want index the same documents
// identically: same doc sequence, lengths, token totals, and per-term
// postings (docs, freqs, positions). Term-ID order may differ (merges
// assign by first occurrence); term text is the join key.
func requireEquivalent(t *testing.T, got, want *Index) {
	t.Helper()
	if g, w := got.NumDocs(), want.NumDocs(); g != w {
		t.Fatalf("NumDocs %d, want %d", g, w)
	}
	if g, w := got.TotalTokens(), want.TotalTokens(); g != w {
		t.Fatalf("TotalTokens %d, want %d", g, w)
	}
	for d := 0; d < want.NumDocs(); d++ {
		if g, w := got.DocName(DocID(d)), want.DocName(DocID(d)); g != w {
			t.Fatalf("doc %d name %q, want %q", d, g, w)
		}
		if g, w := got.DocLen(DocID(d)), want.DocLen(DocID(d)); g != w {
			t.Fatalf("doc %d len %d, want %d", d, g, w)
		}
	}
	if g, w := got.NumTerms(), want.NumTerms(); g != w {
		t.Fatalf("NumTerms %d, want %d", g, w)
	}
	for id := 0; id < want.NumTerms(); id++ {
		text := want.TermText(int32(id))
		wp := want.PostingsByID(int32(id))
		gid, ok := got.terms[text]
		if !ok {
			t.Fatalf("term %q missing", text)
		}
		gp := got.PostingsByID(gid)
		if len(gp.Docs) != len(wp.Docs) {
			t.Fatalf("term %q: %d postings, want %d", text, len(gp.Docs), len(wp.Docs))
		}
		for i := range wp.Docs {
			if gp.Docs[i] != wp.Docs[i] || gp.Freqs[i] != wp.Freqs[i] {
				t.Fatalf("term %q posting %d: (%d,%d), want (%d,%d)", text, i, gp.Docs[i], gp.Freqs[i], wp.Docs[i], wp.Freqs[i])
			}
			if len(gp.Positions[i]) != len(wp.Positions[i]) {
				t.Fatalf("term %q posting %d: %d positions, want %d", text, i, len(gp.Positions[i]), len(wp.Positions[i]))
			}
			for j := range wp.Positions[i] {
				if gp.Positions[i][j] != wp.Positions[i][j] {
					t.Fatalf("term %q posting %d position %d mismatch", text, i, j)
				}
			}
		}
	}
}

// monolithic builds the reference index over docs.
func monolithic(docs []segDoc) *Index {
	b := NewBuilder(analysis.Analyzer{})
	for _, d := range docs {
		b.Add(d.name, d.text)
	}
	return b.Build()
}

func TestSegmentedIngestFlushCompact(t *testing.T) {
	docs := segCorpus(137, 1)
	s := openSegForTest(t, 25)
	for _, d := range docs {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	st := s.Stats()
	if st.DiskSegments != 5 || st.BufferDocs != 12 {
		t.Fatalf("stats %+v, want 5 disk segments + 12 buffered", st)
	}
	if st.LiveDocs != len(docs) || st.Ingested != int64(len(docs)) {
		t.Fatalf("stats %+v, want %d live docs", st, len(docs))
	}

	sn := s.Acquire()
	defer sn.Release()
	if sn.NumDocs() != len(docs) {
		t.Fatalf("snapshot NumDocs %d, want %d", sn.NumDocs(), len(docs))
	}
	mono := monolithic(docs)
	if sn.TotalTokens() != mono.TotalTokens() {
		t.Fatalf("snapshot TotalTokens %d, want %d", sn.TotalTokens(), mono.TotalTokens())
	}
	names := sn.LiveDocNames()
	for i, d := range docs {
		if names[i] != d.name {
			t.Fatalf("live doc %d = %q, want %q", i, names[i], d.name)
		}
	}

	// Compact everything committed into one segment; the buffer stays.
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := s.Stats(); st.DiskSegments != 1 || st.BufferDocs != 12 || st.LiveDocs != len(docs) {
		t.Fatalf("post-compact stats %+v", st)
	}
	// The merged segment must be structurally identical to a monolithic
	// build of the first 125 documents.
	sn2 := s.Acquire()
	defer sn2.Release()
	requireEquivalent(t, sn2.Segment(0), monolithic(docs[:125]))
}

func TestSegmentedDeleteAndGlobalDocs(t *testing.T) {
	docs := segCorpus(60, 2)
	s := openSegForTest(t, 20)
	for _, d := range docs {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a committed doc, a buffered doc, and a missing name.
	for _, want := range []struct {
		name string
		n    int
	}{{"D00007", 1}, {"D00055", 1}, {"NOPE", 0}} {
		n, err := s.Delete(want.name)
		if err != nil {
			t.Fatalf("Delete(%s): %v", want.name, err)
		}
		if n != want.n {
			t.Fatalf("Delete(%s) = %d, want %d", want.name, n, want.n)
		}
	}
	var survivors []segDoc
	for _, d := range docs {
		if d.name != "D00007" && d.name != "D00055" {
			survivors = append(survivors, d)
		}
	}
	sn := s.Acquire()
	defer sn.Release()
	if sn.NumDocs() != len(survivors) {
		t.Fatalf("NumDocs %d, want %d", sn.NumDocs(), len(survivors))
	}
	mono := monolithic(survivors)
	if sn.TotalTokens() != mono.TotalTokens() {
		t.Fatalf("TotalTokens %d, want %d", sn.TotalTokens(), mono.TotalTokens())
	}
	names := sn.LiveDocNames()
	for i, d := range survivors {
		if names[i] != d.name {
			t.Fatalf("live doc %d = %q, want %q", i, names[i], d.name)
		}
	}
	// GlobalDoc must assign survivor ranks: walk every segment's live
	// docs and check the mapping is the dense global sequence.
	next := DocID(0)
	for i := 0; i < sn.NumSegments(); i++ {
		ix := sn.Segment(i)
		tombs := sn.Tombstones(i)
		for d := 0; d < ix.NumDocs(); d++ {
			if containsDoc(tombs, DocID(d)) {
				continue
			}
			if g := sn.GlobalDoc(i, DocID(d)); g != next {
				t.Fatalf("segment %d doc %d: global %d, want %d", i, d, g, next)
			}
			next++
		}
	}

	// Compaction drops the tombstones physically.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DiskSegments != 1 || st.Tombstones != 0 || st.LiveDocs != len(survivors) {
		t.Fatalf("post-compact stats %+v", st)
	}
	sn2 := s.Acquire()
	defer sn2.Release()
	requireEquivalent(t, sn2.Segment(0), mono)
}

func TestSegmentedDeleteReingest(t *testing.T) {
	s := openSegForTest(t, 4)
	for i := 0; i < 6; i++ {
		if err := s.Ingest("dup", "a b c"); err != nil {
			t.Fatal(err)
		}
	}
	// All six live (the index is append-only; same-name docs coexist).
	if st := s.Stats(); st.LiveDocs != 6 {
		t.Fatalf("LiveDocs %d, want 6", st.LiveDocs)
	}
	n, err := s.Delete("dup")
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("Delete removed %d, want 6", n)
	}
	if st := s.Stats(); st.LiveDocs != 0 {
		t.Fatalf("LiveDocs %d, want 0", st.LiveDocs)
	}
	if err := s.Ingest("dup", "c d"); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	if sn.NumDocs() != 1 || sn.TotalTokens() != 2 {
		t.Fatalf("after re-ingest: %d docs, %d tokens", sn.NumDocs(), sn.TotalTokens())
	}
}

func TestSegmentedReopenDurability(t *testing.T) {
	dir := t.TempDir()
	docs := segCorpus(50, 3)
	s, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Delete("D00003"); err != nil {
		t.Fatal(err)
	}
	// 48 committed (3 flushes of 16), 2 buffered; the buffered docs are
	// volatile and must be gone after reopen — that is the documented
	// crash-consistency contract.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(16))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.DiskSegments != 3 || st.BufferDocs != 0 || st.LiveDocs != 47 || st.Tombstones != 1 {
		t.Fatalf("reopened stats %+v", st)
	}
	sn := s2.Acquire()
	defer sn.Release()
	var survivors []segDoc
	for _, d := range docs[:48] {
		if d.name != "D00003" {
			survivors = append(survivors, d)
		}
	}
	if sn.TotalTokens() != monolithic(survivors).TotalTokens() {
		t.Fatal("reopened token total diverges from surviving docs")
	}
}

func TestSegmentedSnapshotPinsCompactedFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, d := range segCorpus(24, 4) {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	old := s.Acquire()
	oldNames := old.LiveDocNames()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still reads the pre-compaction segments, and
	// their files must still exist.
	for _, name := range []string{"seg-1.v2", "seg-2.v2", "seg-3.v2"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("pinned segment file %s vanished: %v", name, err)
		}
	}
	for i, n := range old.LiveDocNames() {
		if n != oldNames[i] {
			t.Fatal("pinned snapshot changed under compaction")
		}
	}
	old.Release()
	// Pin dropped: the compacted-away files must now be deleted.
	for _, name := range []string{"seg-1.v2", "seg-2.v2", "seg-3.v2"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("segment file %s not deleted after last release (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-4.v2")); err != nil {
		t.Fatalf("merged segment missing: %v", err)
	}
}

func TestSegmentedTornSegmentFileFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range segCorpus(8, 5) {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Tear the second committed segment: truncate it mid-file. The
	// manifest names it, so recovery must fail loudly, not serve a
	// partial corpus.
	path := filepath.Join(dir, "seg-2.v2")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmented(dir, analysis.Analyzer{}); err == nil {
		t.Fatal("OpenSegmented accepted a torn segment file")
	}
}

func TestSegmentedRecoveryCleansOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range segCorpus(8, 6) {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Simulate a crash between a merged-segment write and its manifest
	// commit: an orphan segment file plus temp debris.
	for _, name := range []string{"seg-99.v2", ".sqe-index-crashed", ".sqe-manifest-crashed"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(4))
	if err != nil {
		t.Fatalf("reopen with orphans: %v", err)
	}
	defer s2.Close()
	for _, name := range []string{"seg-99.v2", ".sqe-index-crashed", ".sqe-manifest-crashed"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery (err=%v)", name, err)
		}
	}
	if st := s2.Stats(); st.DiskSegments != 2 || st.LiveDocs != 8 {
		t.Fatalf("recovered stats %+v", st)
	}
}

func TestSegmentedFaultedMutationsLeaveStateUnchanged(t *testing.T) {
	docs := segCorpus(30, 7)
	s := openSegForTest(t, 10)
	for _, d := range docs[:25] {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	snBefore := s.Acquire()
	defer snBefore.Release()

	for _, pt := range []fault.Point{fault.SegmentFlush, fault.SegmentManifest} {
		fault.Arm(fault.NewRegistry(1).Set(pt, fault.Policy{ErrRate: 1}))
		err := s.Flush()
		fault.Disarm()
		if err == nil || !fault.IsInjected(err) {
			t.Fatalf("%s: Flush err = %v, want injected", pt, err)
		}
	}
	for _, pt := range []fault.Point{fault.SegmentMerge, fault.SegmentManifest} {
		fault.Arm(fault.NewRegistry(1).Set(pt, fault.Policy{ErrRate: 1}))
		err := s.Compact()
		fault.Disarm()
		if err == nil || !fault.IsInjected(err) {
			t.Fatalf("%s: Compact err = %v, want injected", pt, err)
		}
	}
	fault.Arm(fault.NewRegistry(1).Set(fault.SegmentManifest, fault.Policy{ErrRate: 1}))
	_, err := s.Delete("D00001")
	fault.Disarm()
	if err == nil || !fault.IsInjected(err) {
		t.Fatalf("Delete err = %v, want injected", err)
	}

	after := s.Stats()
	if after.DiskSegments != before.DiskSegments || after.BufferDocs != before.BufferDocs ||
		after.LiveDocs != before.LiveDocs || after.Tombstones != before.Tombstones {
		t.Fatalf("faulted mutations changed state: before %+v after %+v", before, after)
	}

	// The failed mutations must all be retryable now that faults are off.
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after fault: %v", err)
	}
	if _, err := s.Delete("D00001"); err != nil {
		t.Fatalf("Delete after fault: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact after fault: %v", err)
	}
	if st := s.Stats(); st.LiveDocs != 24 || st.DiskSegments != 1 || st.Tombstones != 0 {
		t.Fatalf("post-recovery stats %+v", st)
	}
}

func TestSegmentedClosedOperations(t *testing.T) {
	s := openSegForTest(t, 4)
	if err := s.Ingest("d", "a b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
	if s.Acquire() != nil {
		t.Fatal("Acquire after Close should return nil")
	}
	if err := s.Ingest("d", "x"); err == nil {
		t.Fatal("Ingest after Close should fail")
	}
	if _, err := s.Delete("d"); err == nil {
		t.Fatal("Delete after Close should fail")
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush after Close should fail")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact after Close should fail")
	}
}

func TestSegmentedAnalyzerMismatchFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, analysis.Analyzer{}, WithFlushDocs(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range segCorpus(4, 8) {
		if err := s.Ingest(d.name, d.text); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if _, err := OpenSegmented(dir, analysis.Standard()); err == nil {
		t.Fatal("OpenSegmented accepted segments built with a different analyzer")
	}
}

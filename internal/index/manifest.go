package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fault"
)

// The segment manifest is the durable root of a live (segmented) index:
// it names the committed on-disk segments, their tombstones, and the
// next segment sequence number. Layout:
//
//	magic "SQEMF1"
//	uvarint numSegments; per segment, ascending seq:
//	    uvarint seq                       (the file is seg-<seq>.v2)
//	    uvarint numTombstones
//	    delta-uvarint tombstoned DocIDs   (strictly ascending, local)
//	uvarint nextSeq                       (> every listed seq)
//	uint32le CRC-32 (IEEE) of everything above
//
// The decoder is strict: bad magic, any CRC mismatch, trailing bytes,
// non-ascending sequences or tombstones, out-of-range values, and
// truncation are all errors — a manifest either round-trips exactly or
// is rejected (FuzzSegmentManifest enforces the round-trip property,
// the corruption tests the every-byte-flip rejection). Commits go
// through writeManifest: temp + fsync + rename, so a crash mid-commit
// leaves the previous manifest in place.

// manifestMagic identifies a segment manifest file.
var manifestMagic = []byte("SQEMF1")

// manifestName is the manifest's file name inside a segment directory.
const manifestName = "MANIFEST"

// segTombMax bounds a tombstone DocID (and a doc count) read from a
// manifest; matches the format-wide document cap.
const segTombMax = 1 << 30

// manifestEntry describes one committed segment.
type manifestEntry struct {
	// Seq is the segment's sequence number; its file is seg-<Seq>.v2.
	Seq uint64
	// Tombs are the segment's tombstoned local DocIDs, ascending.
	Tombs []DocID
}

// manifest is the decoded manifest state.
type manifest struct {
	Segments []manifestEntry
	// NextSeq is the next unused segment sequence number.
	NextSeq uint64
}

// segFileName returns the file name of segment seq.
func segFileName(seq uint64) string {
	return fmt.Sprintf("seg-%d.v2", seq)
}

// encodeManifest renders m in the manifest format. Tombstones must be
// strictly ascending and segments strictly ascending by Seq (the
// Segmented mutators maintain both); encode sorts defensively so a
// round-trip never depends on caller ordering.
func encodeManifest(m *manifest) []byte {
	var b bytes.Buffer
	b.Write(manifestMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(x uint64) {
		n := binary.PutUvarint(tmp[:], x)
		b.Write(tmp[:n])
	}
	segs := append([]manifestEntry(nil), m.Segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	put(uint64(len(segs)))
	for _, s := range segs {
		put(s.Seq)
		put(uint64(len(s.Tombs)))
		prev := int64(-1)
		for _, d := range s.Tombs {
			put(uint64(int64(d) - prev))
			prev = int64(d)
		}
	}
	put(m.NextSeq)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crc[:])
	return b.Bytes()
}

// decodeManifest parses and fully validates a manifest image.
func decodeManifest(data []byte) (*manifest, error) {
	if len(data) < len(manifestMagic)+4 {
		return nil, fmt.Errorf("manifest: truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(manifestMagic)], manifestMagic) {
		return nil, fmt.Errorf("manifest: bad magic %q", data[:len(manifestMagic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("manifest: CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	r := body[len(manifestMagic):]
	get := func() (uint64, error) {
		v, n := binary.Uvarint(r)
		if n <= 0 {
			return 0, fmt.Errorf("manifest: truncated varint")
		}
		r = r[n:]
		return v, nil
	}
	nSegs, err := get()
	if err != nil {
		return nil, err
	}
	if nSegs > segTombMax {
		return nil, fmt.Errorf("manifest: implausible segment count %d", nSegs)
	}
	m := &manifest{Segments: make([]manifestEntry, 0, prealloc(nSegs))}
	prevSeq := int64(-1)
	for i := uint64(0); i < nSegs; i++ {
		seq, err := get()
		if err != nil {
			return nil, err
		}
		if int64(seq) <= prevSeq || seq > 1<<62 {
			return nil, fmt.Errorf("manifest: segment seq %d out of order", seq)
		}
		prevSeq = int64(seq)
		nTombs, err := get()
		if err != nil {
			return nil, err
		}
		if nTombs > segTombMax {
			return nil, fmt.Errorf("manifest: implausible tombstone count %d", nTombs)
		}
		e := manifestEntry{Seq: seq, Tombs: make([]DocID, 0, prealloc(nTombs))}
		prev := int64(-1)
		for t := uint64(0); t < nTombs; t++ {
			delta, err := get()
			if err != nil {
				return nil, err
			}
			if delta == 0 {
				return nil, fmt.Errorf("manifest: non-ascending tombstone in segment %d", seq)
			}
			d := prev + int64(delta)
			if d >= segTombMax {
				return nil, fmt.Errorf("manifest: tombstone %d out of range", d)
			}
			prev = d
			e.Tombs = append(e.Tombs, DocID(d))
		}
		m.Segments = append(m.Segments, e)
	}
	next, err := get()
	if err != nil {
		return nil, err
	}
	if int64(next) <= prevSeq || next > 1<<62 {
		return nil, fmt.Errorf("manifest: nextSeq %d not above the listed segments", next)
	}
	m.NextSeq = next
	if len(r) != 0 {
		return nil, fmt.Errorf("manifest: %d trailing bytes", len(r))
	}
	return m, nil
}

// writeManifest commits m to dir atomically: temp file in dir, fsync,
// rename over the manifest path. The fault hook makes commit failures
// producible on demand; an injected error leaves the previous manifest
// untouched.
func writeManifest(dir string, m *manifest) error {
	if err := fault.Check(fault.SegmentManifest); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".sqe-manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encodeManifest(m)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, manifestName))
}

// readManifest loads dir's manifest. A missing manifest is not an error:
// it is the empty state of a fresh directory.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return &manifest{NextSeq: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(dir, manifestName), err)
	}
	return m, nil
}

// cleanOrphans removes segment files and temp files in dir that the
// manifest does not reference — the debris of a crash between a segment
// write and its manifest commit (or between a manifest commit and the
// deletion of compacted inputs). Returns the removed file names.
func cleanOrphans(dir string, m *manifest) ([]string, error) {
	live := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		live[segFileName(s.Seq)] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == manifestName || live[name] {
			continue
		}
		var seq uint64
		isSeg := false
		if _, err := fmt.Sscanf(name, "seg-%d.v2", &seq); err == nil && name == segFileName(seq) {
			isSeg = true
		}
		// Temp debris from interrupted commits (index.WriteFile and
		// writeManifest both stage under a ".sqe-" prefix).
		isTmp := strings.HasPrefix(name, ".sqe-")
		if !isSeg && !isTmp {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed = append(removed, name)
	}
	return removed, nil
}

// Package fault is a deterministic fault-injection registry for chaos
// testing the serving pipeline. The ROADMAP's production north star —
// heavy traffic over a sharded, cached, pruned engine — means individual
// lookups can be slow or fail (the regime "Massive Query Expansion by
// Exploiting Graph Knowledge Bases" frames for KB-backed expansion);
// before the engine can degrade gracefully, the failure modes have to be
// producible on demand, repeatably, in tests.
//
// The model: hot paths are annotated with named injection points
// (Check(point) calls). A Registry maps points to per-point policies —
// error rate, added latency, panic rate — driven by a seeded RNG, so a
// fault schedule is reproducible from its seed. Arm installs a registry
// globally; Disarm removes it. When no registry is armed, Check is a
// single atomic pointer load returning nil — the hot paths pay nothing
// measurable, and behaviour is bit-identical to a build without the
// calls (the golden and differential tests enforce exactly that).
//
// Injected failures come in three shapes:
//
//   - errors: Check returns a *Error (optionally Transient, which the
//     engine's bounded retry-with-backoff treats as retryable);
//   - latency: Check sleeps for the policy's Latency before returning
//     nil (models slow shards and slow KB lookups);
//   - panics: Check panics with an *InjectedPanic (models bugs in deep
//     evaluator code; the degradation layer must contain them).
//
// The registered point catalog (Points) covers the pipeline's hot
// paths: index posting reads inside the evaluator loops, per-shard
// evaluation, motif expansion, the expansion cache, and SQE_C sub-runs.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection point. Points are compile-time constants at
// the call sites; the catalog below is the complete set.
type Point string

// The registered injection points.
const (
	// IndexPostings fires inside the posting-read loops of every top-k
	// evaluator (DAAT, MaxScore, legacy), at the cancellation-check
	// cadence — a failing or slow posting source.
	IndexPostings Point = "index.postings"
	// ShardEval fires at the start of each shard's evaluation in the
	// sharded searcher — a failing or slow shard.
	ShardEval Point = "search.shard_eval"
	// MotifExpand fires before motif expansion builds the query graph —
	// a failing or slow KB lookup.
	MotifExpand Point = "core.motif_expand"
	// ExpansionCache fires inside the expansion cache's Get and Put — a
	// failing cache backend. The cache degrades to a miss/skip by
	// design, so this point never fails a request on its own.
	ExpansionCache Point = "core.expansion_cache"
	// SQECRun fires at the start of each of SQE_C's three sub-runs — a
	// failing run of the combination.
	SQECRun Point = "engine.sqec_run"
	// RPCClient fires before each RPC call attempt on the coordinator
	// side — a refused, slow, or truncated connection to a shard server.
	// Injected errors surface as transport errors, so the client's
	// bounded retry and the replica group's failover engage exactly as
	// they would for a real network fault.
	RPCClient Point = "rpc.client_call"
	// RPCServer fires before a shard server dispatches a request to its
	// handler — a shard process that accepts connections but fails
	// requests. Injected errors surface as application errors (the
	// server answered), exercising the non-retryable path.
	RPCServer Point = "rpc.server_handle"
	// SegmentFlush fires at the start of a live index's buffer flush —
	// a failing disk write while a segment is being persisted. A flush
	// that fails here leaves the buffer intact and the segment set
	// unchanged; the ingest path retries on the next trigger.
	SegmentFlush Point = "segment.flush"
	// SegmentMerge fires inside a live index's compaction, both before
	// the merge starts and after the merged segment file is written but
	// before the manifest commit — the second site models a crash that
	// leaves an orphan segment file for recovery to clean up.
	SegmentMerge Point = "segment.merge"
	// SegmentManifest fires before a live index's manifest commit — a
	// failing metadata write. The previous manifest stays in place, so
	// a restart recovers the pre-mutation segment set.
	SegmentManifest Point = "segment.manifest"
)

// Points returns the registered point catalog (a fresh copy).
func Points() []Point {
	return []Point{IndexPostings, ShardEval, MotifExpand, ExpansionCache, SQECRun, RPCClient, RPCServer, SegmentFlush, SegmentMerge, SegmentManifest}
}

// Policy configures the faults one point injects. The zero value
// injects nothing.
type Policy struct {
	// ErrRate is the probability per Check of returning an *Error.
	ErrRate float64
	// Transient marks injected errors as retryable by the engine's
	// bounded retry-with-backoff.
	Transient bool
	// LatencyRate is the probability per Check of sleeping Latency.
	LatencyRate float64
	// Latency is the injected delay. Keep it small in tests: Check
	// sleeps synchronously on the calling goroutine.
	Latency time.Duration
	// PanicRate is the probability per Check of panicking with an
	// *InjectedPanic.
	PanicRate float64
	// MaxFaults caps the total number of injected errors + panics at
	// this point (0 = unlimited). Latency does not count against it.
	// Directed tests use MaxFaults to fail exactly one shard or run.
	MaxFaults int64
}

// Error is an injected error. It reports its point and whether the
// engine should treat it as transient (retryable).
type Error struct {
	Point     Point
	Transient bool
}

// Error implements error.
func (e *Error) Error() string {
	kind := "fault"
	if e.Transient {
		kind = "transient fault"
	}
	return fmt.Sprintf("fault: injected %s at %s", kind, e.Point)
}

// InjectedPanic is the value an injected panic carries; the degradation
// layer recovers it (like any other panic) into a *PanicError.
type InjectedPanic struct {
	Point Point
}

// String implements fmt.Stringer so escaped panics print usefully.
func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at %s", p.Point)
}

// PanicError wraps a recovered panic — injected or genuine — into an
// error carrying the panic value and the goroutine stack at recovery.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// AsPanicError converts a recover() value into a *PanicError; v must be
// non-nil.
func AsPanicError(v any, stack []byte) *PanicError {
	return &PanicError{Value: v, Stack: stack}
}

// IsInjected reports whether err originates from an injected fault
// (directly, or a recovered injected panic).
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*Error); ok {
			return true
		}
		if pe, ok := err.(*PanicError); ok {
			_, injected := pe.Value.(*InjectedPanic)
			return injected
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// IsTransient reports whether err is an injected transient fault — the
// class the engine's bounded retry-with-backoff retries.
func IsTransient(err error) bool {
	for err != nil {
		if fe, ok := err.(*Error); ok {
			return fe.Transient
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// PointStats are one point's monotonic counters.
type PointStats struct {
	// Hits counts Check calls that consulted this point's policy.
	Hits int64
	// Errors counts injected errors.
	Errors int64
	// Panics counts injected panics.
	Panics int64
	// Delays counts injected latency sleeps.
	Delays int64
}

// Faults returns the number of injected faults (errors + panics).
func (s PointStats) Faults() int64 { return s.Errors + s.Panics }

// Registry maps points to policies, drawing fault decisions from one
// seeded RNG so a schedule replays deterministically (per goroutine
// arrival order; under concurrency the interleaving — not the decision
// stream — varies). A Registry is safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[Point]*pointState
}

type pointState struct {
	policy Policy
	stats  PointStats
}

// NewRegistry returns an empty registry whose decisions derive from
// seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[Point]*pointState),
	}
}

// Set installs (or replaces) the policy of one point. It returns the
// registry for chaining.
func (r *Registry) Set(p Point, pol Policy) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.points[p]
	if st == nil {
		st = &pointState{}
		r.points[p] = st
	}
	st.policy = pol
	return r
}

// Stats snapshots every configured point's counters.
func (r *Registry) Stats() map[Point]PointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Point]PointStats, len(r.points))
	for p, st := range r.points {
		out[p] = st.stats
	}
	return out
}

// TotalInjected sums injected errors + panics across all points.
func (r *Registry) TotalInjected() int64 {
	var n int64
	for _, st := range r.Stats() {
		n += st.Faults()
	}
	return n
}

// decision is what check computes under the lock and executes outside
// it (the sleep and the panic must not hold the registry mutex).
type decision struct {
	err   error
	delay time.Duration
	pv    *InjectedPanic
}

// check consults p's policy. The RNG draw order is fixed (error, panic,
// latency), so a single-goroutine schedule replays exactly from the
// seed.
func (r *Registry) check(p Point) decision {
	r.mu.Lock()
	st := r.points[p]
	if st == nil {
		r.mu.Unlock()
		return decision{}
	}
	st.stats.Hits++
	pol := &st.policy
	var d decision
	budget := pol.MaxFaults == 0 || st.stats.Faults() < pol.MaxFaults
	if pol.ErrRate > 0 && budget && r.rng.Float64() < pol.ErrRate {
		st.stats.Errors++
		d.err = &Error{Point: p, Transient: pol.Transient}
	} else if pol.PanicRate > 0 && budget && r.rng.Float64() < pol.PanicRate {
		st.stats.Panics++
		d.pv = &InjectedPanic{Point: p}
	}
	if pol.LatencyRate > 0 && r.rng.Float64() < pol.LatencyRate {
		st.stats.Delays++
		d.delay = pol.Latency
	}
	r.mu.Unlock()
	return d
}

// active is the globally armed registry; nil means injection disabled.
var active atomic.Pointer[Registry]

// Arm installs r as the active registry: every Check call consults it
// until Disarm. Arming is process-global — chaos tests arm, run, and
// disarm; production never arms.
func Arm(r *Registry) { active.Store(r) }

// Disarm removes the active registry; Check returns to the zero-cost
// path.
func Disarm() { active.Store(nil) }

// Armed returns the active registry (nil when injection is disabled);
// used by /metrics to export injection counters while a chaos run is
// live.
func Armed() *Registry { return active.Load() }

// Enabled reports whether a registry is armed.
func Enabled() bool { return active.Load() != nil }

// Check is the hot-path hook: with no registry armed it is one atomic
// load and a nil comparison. With a registry armed it may sleep
// (injected latency), return an injected *Error, or panic with an
// *InjectedPanic, per the point's policy.
func Check(p Point) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	d := r.check(p)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.pv != nil {
		panic(d.pv)
	}
	return d.err
}

package fault_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
)

// outcome classifies one Check call for schedule comparison.
type outcome int

const (
	outNil outcome = iota
	outErr
	outTransient
	outPanic
)

// drive issues n Check calls against an armed registry and records each
// call's outcome, recovering injected panics.
func drive(t *testing.T, p fault.Point, n int) []outcome {
	t.Helper()
	out := make([]outcome, 0, n)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					if _, ok := v.(*fault.InjectedPanic); !ok {
						panic(v)
					}
					out = append(out, outPanic)
				}
			}()
			switch err := fault.Check(p); {
			case err == nil:
				out = append(out, outNil)
			case fault.IsTransient(err):
				out = append(out, outTransient)
			default:
				out = append(out, outErr)
			}
		}()
	}
	return out
}

func TestScheduleDeterministicFromSeed(t *testing.T) {
	defer fault.Disarm()
	pol := fault.Policy{ErrRate: 0.3, Transient: true, PanicRate: 0.1}
	run := func(seed int64) []outcome {
		fault.Arm(fault.NewRegistry(seed).Set(fault.ShardEval, pol))
		return drive(t, fault.ShardEval, 200)
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-call schedules")
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	defer fault.Disarm()
	reg := fault.NewRegistry(1).Set(fault.SQECRun, fault.Policy{ErrRate: 1, MaxFaults: 2})
	fault.Arm(reg)
	var errs int
	for i := 0; i < 10; i++ {
		if fault.Check(fault.SQECRun) != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("MaxFaults=2 with ErrRate=1 injected %d errors over 10 checks", errs)
	}
	st := reg.Stats()[fault.SQECRun]
	if st.Hits != 10 || st.Errors != 2 || st.Panics != 0 {
		t.Fatalf("stats = %+v, want Hits=10 Errors=2 Panics=0", st)
	}
	if reg.TotalInjected() != 2 {
		t.Fatalf("TotalInjected = %d, want 2", reg.TotalInjected())
	}
}

func TestMaxFaultsDoesNotCapLatency(t *testing.T) {
	defer fault.Disarm()
	reg := fault.NewRegistry(1).Set(fault.IndexPostings,
		fault.Policy{ErrRate: 1, MaxFaults: 1, LatencyRate: 1})
	fault.Arm(reg)
	for i := 0; i < 5; i++ {
		func() {
			defer func() { recover() }()
			_ = fault.Check(fault.IndexPostings)
		}()
	}
	st := reg.Stats()[fault.IndexPostings]
	if st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1 (budget)", st.Errors)
	}
	if st.Delays != 5 {
		t.Fatalf("Delays = %d, want 5 (latency ignores the fault budget)", st.Delays)
	}
}

func TestDisarmedCheckIsFree(t *testing.T) {
	fault.Disarm()
	if fault.Enabled() {
		t.Fatal("Enabled() true after Disarm")
	}
	if err := fault.Check(fault.ShardEval); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = fault.Check(fault.IndexPostings)
	})
	if allocs != 0 {
		t.Fatalf("disarmed Check allocates %.1f per call, want 0", allocs)
	}
}

func TestUnconfiguredPointIsQuiet(t *testing.T) {
	defer fault.Disarm()
	reg := fault.NewRegistry(1).Set(fault.ShardEval, fault.Policy{ErrRate: 1})
	fault.Arm(reg)
	if err := fault.Check(fault.MotifExpand); err != nil {
		t.Fatalf("unconfigured point injected %v", err)
	}
	if _, ok := reg.Stats()[fault.MotifExpand]; ok {
		t.Fatal("unconfigured point grew a stats entry")
	}
}

func TestPanicInjectionAndRecovery(t *testing.T) {
	defer fault.Disarm()
	fault.Arm(fault.NewRegistry(1).Set(fault.ShardEval, fault.Policy{PanicRate: 1}))
	var pe *fault.PanicError
	func() {
		defer func() {
			if v := recover(); v != nil {
				pe = fault.AsPanicError(v, []byte("stack"))
			}
		}()
		_ = fault.Check(fault.ShardEval)
		t.Fatal("Check with PanicRate=1 returned")
	}()
	if pe == nil {
		t.Fatal("no panic injected")
	}
	if _, ok := pe.Value.(*fault.InjectedPanic); !ok {
		t.Fatalf("panic value is %T, want *fault.InjectedPanic", pe.Value)
	}
	if !fault.IsInjected(pe) {
		t.Fatal("IsInjected false for a recovered injected panic")
	}
	if fault.IsTransient(pe) {
		t.Fatal("IsTransient true for a panic")
	}
}

func TestErrorClassification(t *testing.T) {
	transient := &fault.Error{Point: fault.ShardEval, Transient: true}
	hard := &fault.Error{Point: fault.ShardEval}
	cases := []struct {
		name      string
		err       error
		injected  bool
		transient bool
	}{
		{"nil", nil, false, false},
		{"plain", errors.New("disk on fire"), false, false},
		{"injected hard", hard, true, false},
		{"injected transient", transient, true, true},
		{"wrapped transient", fmt.Errorf("shard 3: %w", transient), true, true},
		{"double wrapped", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", hard)), true, false},
		{"genuine panic", fault.AsPanicError(errors.New("nil map write"), nil), false, false},
		{"injected panic", fault.AsPanicError(&fault.InjectedPanic{Point: fault.SQECRun}, nil), true, false},
	}
	for _, c := range cases {
		if got := fault.IsInjected(c.err); got != c.injected {
			t.Errorf("%s: IsInjected = %v, want %v", c.name, got, c.injected)
		}
		if got := fault.IsTransient(c.err); got != c.transient {
			t.Errorf("%s: IsTransient = %v, want %v", c.name, got, c.transient)
		}
	}
}

func TestPointsCatalogIsACopy(t *testing.T) {
	a := fault.Points()
	if len(a) == 0 {
		t.Fatal("empty point catalog")
	}
	a[0] = "mutated"
	if b := fault.Points(); b[0] == "mutated" {
		t.Fatal("Points() returns a shared slice")
	}
}

// Chaos harness: arms the fault registry against a real engine (the
// demo environment, sharded and cached, with graceful degradation on)
// and checks the degradation contract end to end — no hangs, no panic
// escapes, well-formed partial responses, and bit-identical results
// once the registry is disarmed. Run under -race (`make chaos`).
package fault_test

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	sqe "repro"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/rpc"
	"repro/internal/search"
)

func demoEnv(t *testing.T, opts ...sqe.Option) *sqe.DemoEnv {
	t.Helper()
	env, err := sqe.GenerateDemo(sqe.DemoSmall, opts...)
	if err != nil {
		t.Fatalf("GenerateDemo: %v", err)
	}
	return env
}

// directedPolicy degrades everything but never retries, so a directed
// single-fault schedule maps to exactly one degradation event.
func directedPolicy() sqe.DegradationPolicy {
	return sqe.DegradationPolicy{PartialShards: true, ExpansionFallback: true, PartialSQEC: true}
}

// remoteEngine builds a second engine over env's corpus whose retrieval
// fans out over real RPC to in-process shard servers on loopback, so the
// rpc.client_call and rpc.server_handle fault points sit on the request
// path. Queries in the chaos mix carry explicit entity titles, so the
// engine needs no linker.
func remoteEngine(t *testing.T, env *sqe.DemoEnv, shards int, pol sqe.DegradationPolicy) *sqe.Engine {
	t.Helper()
	sh := index.NewSharded(env.Engine.Index(), shards)
	groups := make([]*rpc.Group, sh.NumShards())
	for i := range groups {
		srv := rpc.NewServer()
		search.NewShardService(sh.Shard(i), i, sh.NumShards()).Register(srv)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		// Client-level retries stay off: the degradation layer owns
		// retries, the same wiring the coordinator binary uses.
		c := rpc.NewClient(ln.Addr().String(), rpc.ClientOptions{MaxRetries: -1})
		t.Cleanup(func() { c.Close() })
		groups[i] = rpc.NewGroup([]*rpc.Client{c}, rpc.GroupOptions{})
	}
	rs, err := search.NewRemoteSharded(context.Background(), groups)
	if err != nil {
		t.Fatalf("NewRemoteSharded: %v", err)
	}
	return sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(),
		sqe.WithDistributedSearcher(rs), sqe.WithDegradation(pol))
}

// chaosRequests builds a request mix over the demo queries: the full
// SQE_C combination, a single-set run, and the QL baseline.
func chaosRequests(env *sqe.DemoEnv) []sqe.SearchRequest {
	var reqs []sqe.SearchRequest
	for i, q := range env.Queries {
		if i >= 3 {
			break
		}
		reqs = append(reqs,
			sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10},
			sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 5, MotifSet: sqe.MotifTS},
			sqe.SearchRequest{Query: q.Text, K: 10, Baseline: true},
		)
	}
	return reqs
}

// TestChaosEngineUnderRandomFaults is the main harness: seeded random
// fault policies at every registered point, hammered concurrently. Any
// hang (watchdog), escaped panic (crashes the test binary), or
// malformed response fails; after Disarm, results must be bit-identical
// to the pre-chaos baseline.
func TestChaosEngineUnderRandomFaults(t *testing.T) {
	defer fault.Disarm()
	env := demoEnv(t, sqe.WithShards(4), sqe.WithExpansionCache(256),
		sqe.WithDegradation(sqe.DefaultDegradation()))
	// A second engine over the same corpus retrieves through real RPC
	// shard servers, putting the rpc.* fault points on the request path;
	// the distributed parity contract says both engines answer every
	// request bit-identically.
	engines := []*sqe.Engine{env.Engine, remoteEngine(t, env, 2, sqe.DefaultDegradation())}
	reqs := chaosRequests(env)
	ctx := context.Background()

	fault.Disarm()
	base := make([]*sqe.SearchResponse, len(reqs))
	for i, r := range reqs {
		for ei, eng := range engines {
			resp, err := eng.Do(ctx, r)
			if err != nil {
				t.Fatalf("baseline request %d (engine %d): %v", i, ei, err)
			}
			if resp.Degraded != nil {
				t.Fatalf("baseline request %d (engine %d) degraded with no registry armed: %+v", i, ei, resp.Degraded)
			}
			if ei == 0 {
				base[i] = resp
			} else if !reflect.DeepEqual(resp.Results, base[i].Results) {
				t.Fatalf("baseline request %d: distributed results diverge from in-process", i)
			}
		}
	}

	reg := fault.NewRegistry(7)
	for _, p := range fault.Points() {
		pol := fault.Policy{ErrRate: 0.03, Transient: true, LatencyRate: 0.02, Latency: 100 * time.Microsecond}
		switch p {
		case fault.ShardEval, fault.SQECRun:
			pol.ErrRate, pol.PanicRate = 0.2, 0.05
		case fault.MotifExpand:
			pol.ErrRate, pol.Transient = 0.3, false
		case fault.ExpansionCache:
			pol.ErrRate = 0.5
		}
		reg.Set(p, pol)
	}
	fault.Arm(reg)

	const workers, iters = 8, 25
	done := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				req := reqs[(w+i)%len(reqs)]
				resp, err := engines[(w+i)%len(engines)].Do(ctx, req)
				if err != nil {
					continue // failing is allowed under chaos; hanging and panicking are not
				}
				if len(resp.Results) > req.K {
					done <- fmt.Errorf("worker %d: %d results for k=%d", w, len(resp.Results), req.K)
					return
				}
				if resp.Degraded == nil && len(resp.Results) == 0 {
					done <- fmt.Errorf("worker %d: empty non-degraded results", w)
					return
				}
			}
			done <- nil
		}(w)
	}
	// One mutation worker drives a throwaway live index through its full
	// lifecycle so the segment.* fault points sit on an exercised path.
	// A faulted mutation must surface as an injected error and leave the
	// index consistent (the root index-while-chaos harness checks the
	// stronger bit-identity contract; here the chaos mix just has to
	// reach the hooks without hanging or corrupting state).
	live, err := index.OpenSegmented(t.TempDir(), env.Engine.Index().Analyzer(), index.WithFlushDocs(8))
	if err != nil {
		t.Fatalf("OpenSegmented: %v", err)
	}
	defer live.Close()
	go func() {
		for i := 0; i < 4*iters; i++ {
			var err error
			switch {
			case i%10 == 9:
				err = live.Compact()
			case i%7 == 6:
				_, err = live.Delete(fmt.Sprintf("L%03d", i-3))
			default:
				err = live.Ingest(fmt.Sprintf("L%03d", i), "alpha beta gamma delta")
			}
			if err != nil && !fault.IsInjected(err) {
				done <- fmt.Errorf("live mutation %d: non-injected error %v", i, err)
				return
			}
		}
		st := live.Stats()
		if st.LiveDocs > int(st.Ingested) || st.Gen == 0 {
			done <- fmt.Errorf("live index inconsistent after chaos: %+v", st)
			return
		}
		done <- nil
	}()
	watchdog := time.After(2 * time.Minute)
	for w := 0; w < workers+1; w++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-watchdog:
			t.Fatal("chaos hammer hung: workers did not finish within 2m")
		}
	}

	if reg.TotalInjected() == 0 {
		t.Fatal("registry injected nothing; the chaos run exercised no fault paths")
	}
	stats := reg.Stats()
	for _, p := range fault.Points() {
		if stats[p].Hits == 0 {
			t.Errorf("point %s was never consulted — its hook is unreachable from the request mix", p)
		}
	}

	fault.Disarm()
	for i, r := range reqs {
		for ei, eng := range engines {
			resp, err := eng.Do(ctx, r)
			if err != nil {
				t.Fatalf("post-disarm request %d (engine %d): %v", i, ei, err)
			}
			if resp.Degraded != nil {
				t.Fatalf("post-disarm request %d (engine %d) still degraded: %+v", i, ei, resp.Degraded)
			}
			if !reflect.DeepEqual(resp.Results, base[i].Results) {
				t.Fatalf("post-disarm request %d (engine %d): results differ from the pre-chaos baseline", i, ei)
			}
		}
	}
}

// TestChaosShardDropIsExactSubset fails exactly one shard (no retries)
// and checks the partial merge: one dropped shard reported, and every
// surviving result carries a score bit-identical to the full ranking's
// — partial merges happen after the cross-shard statistics override.
func TestChaosShardDropIsExactSubset(t *testing.T) {
	defer fault.Disarm()
	env := demoEnv(t, sqe.WithShards(4), sqe.WithDegradation(directedPolicy()))
	q := env.Queries[0]
	ctx := context.Background()

	full, err := env.Engine.Do(ctx, sqe.SearchRequest{Query: q.Text, K: 500, Baseline: true})
	if err != nil {
		t.Fatalf("full baseline: %v", err)
	}
	scores := make(map[string]float64, len(full.Results))
	for _, r := range full.Results {
		scores[r.Name] = r.Score
	}

	fault.Arm(fault.NewRegistry(3).Set(fault.ShardEval, fault.Policy{ErrRate: 1, MaxFaults: 1}))
	resp, err := env.Engine.Do(ctx, sqe.SearchRequest{Query: q.Text, K: 20, Baseline: true})
	if err != nil {
		t.Fatalf("degraded request failed outright: %v", err)
	}
	d := resp.Degraded
	if d == nil || len(d.DroppedShards) != 1 || len(d.ShardErrors) != 1 {
		t.Fatalf("Degraded = %+v, want exactly one dropped shard with its error", d)
	}
	if !d.Degraded() {
		t.Fatal("Degraded() false despite a dropped shard")
	}
	if d.Retries != 0 {
		t.Fatalf("Retries = %d with MaxRetries=0", d.Retries)
	}
	if len(resp.Results) == 0 {
		t.Fatal("partial merge produced no results")
	}
	for _, r := range resp.Results {
		want, ok := scores[r.Name]
		if !ok {
			t.Fatalf("degraded result %q absent from the full ranking", r.Name)
		}
		if r.Score != want {
			t.Fatalf("degraded score for %q = %v, want bit-identical %v", r.Name, r.Score, want)
		}
	}
}

// TestChaosTransientRetryRestoresExactResults fails one shard with a
// transient fault under MaxRetries=2: the retry must succeed, results
// must match the fault-free run exactly, and the response must report
// the retry without claiming degradation.
func TestChaosTransientRetryRestoresExactResults(t *testing.T) {
	defer fault.Disarm()
	pol := directedPolicy()
	pol.MaxRetries = 2
	pol.RetryBackoff = time.Millisecond
	env := demoEnv(t, sqe.WithShards(4), sqe.WithDegradation(pol))
	q := env.Queries[0]
	ctx := context.Background()
	req := sqe.SearchRequest{Query: q.Text, K: 20, Baseline: true}

	clean, err := env.Engine.Do(ctx, req)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	fault.Arm(fault.NewRegistry(5).Set(fault.ShardEval,
		fault.Policy{ErrRate: 1, Transient: true, MaxFaults: 1}))
	resp, err := env.Engine.Do(ctx, req)
	if err != nil {
		t.Fatalf("request failed despite retry budget: %v", err)
	}
	if resp.Degraded == nil || resp.Degraded.Retries == 0 {
		t.Fatalf("Degraded = %+v, want a recorded retry", resp.Degraded)
	}
	if resp.Degraded.Degraded() {
		t.Fatalf("retry-only response claims degradation: %+v", resp.Degraded)
	}
	if !reflect.DeepEqual(resp.Results, clean.Results) {
		t.Fatal("results after a successful retry differ from the fault-free run")
	}
}

// TestChaosExpansionFallback fails every motif expansion: the request
// must degrade to the plain unexpanded query — same results as the QL
// baseline, no Expansion, fallback counted.
func TestChaosExpansionFallback(t *testing.T) {
	defer fault.Disarm()
	env := demoEnv(t, sqe.WithDegradation(directedPolicy()))
	q := env.Queries[0]
	ctx := context.Background()

	baseline, err := env.Engine.Do(ctx, sqe.SearchRequest{Query: q.Text, K: 10, Baseline: true})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	fault.Arm(fault.NewRegistry(11).Set(fault.MotifExpand, fault.Policy{ErrRate: 1}))
	resp, err := env.Engine.Do(ctx, sqe.SearchRequest{
		Query: q.Text, EntityTitles: q.EntityTitles, K: 10, MotifSet: sqe.MotifTS,
	})
	if err != nil {
		t.Fatalf("request failed instead of falling back: %v", err)
	}
	if resp.Degraded == nil || resp.Degraded.ExpansionFallbacks != 1 {
		t.Fatalf("Degraded = %+v, want one expansion fallback", resp.Degraded)
	}
	if resp.Expansion != nil {
		t.Fatal("fallback response still carries an Expansion")
	}
	if !reflect.DeepEqual(resp.Results, baseline.Results) {
		t.Fatal("fallback results differ from the plain QL baseline")
	}
}

// TestChaosSQECRunDrop fails exactly one of SQE_C's three sub-runs: the
// splice must continue over the survivors and name the dropped run.
func TestChaosSQECRunDrop(t *testing.T) {
	defer fault.Disarm()
	env := demoEnv(t, sqe.WithDegradation(directedPolicy()))
	q := env.Queries[0]
	ctx := context.Background()

	fault.Arm(fault.NewRegistry(13).Set(fault.SQECRun, fault.Policy{ErrRate: 1, MaxFaults: 1}))
	resp, err := env.Engine.Do(ctx, sqe.SearchRequest{
		Query: q.Text, EntityTitles: q.EntityTitles, K: 10,
	})
	if err != nil {
		t.Fatalf("SQE_C failed instead of continuing partially: %v", err)
	}
	d := resp.Degraded
	if d == nil || len(d.DroppedRuns) != 1 {
		t.Fatalf("Degraded = %+v, want exactly one dropped run", d)
	}
	switch d.DroppedRuns[0] {
	case "T", "TS", "S":
	default:
		t.Fatalf("dropped run named %q, want T, TS or S", d.DroppedRuns[0])
	}
	if len(resp.Results) == 0 {
		t.Fatal("partial splice produced no results")
	}
}

// TestChaosCacheFaultIsHarmless fails every expansion-cache access: the
// cache must degrade to misses/skips — identical results, no error, and
// no degradation marker (a cold cache is not a degraded response).
func TestChaosCacheFaultIsHarmless(t *testing.T) {
	defer fault.Disarm()
	env := demoEnv(t, sqe.WithExpansionCache(256), sqe.WithDegradation(directedPolicy()))
	q := env.Queries[0]
	ctx := context.Background()
	req := sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10, MotifSet: sqe.MotifTS}

	clean, err := env.Engine.Do(ctx, req)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	fault.Arm(fault.NewRegistry(17).Set(fault.ExpansionCache, fault.Policy{ErrRate: 1}))
	for i := 0; i < 2; i++ {
		resp, err := env.Engine.Do(ctx, req)
		if err != nil {
			t.Fatalf("run %d: cache fault failed the request: %v", i, err)
		}
		if resp.Degraded != nil {
			t.Fatalf("run %d: cache fault marked the response degraded: %+v", i, resp.Degraded)
		}
		if !reflect.DeepEqual(resp.Results, clean.Results) {
			t.Fatalf("run %d: results differ under cache faults", i)
		}
	}
}

// TestChaosPanicContained injects panics (not errors) at the guarded
// stages and checks they degrade like any other failure instead of
// escaping: a panicking shard is dropped, a panicking expansion falls
// back, a panicking SQE_C run is spliced around.
func TestChaosPanicContained(t *testing.T) {
	defer fault.Disarm()
	ctx := context.Background()
	cases := []struct {
		name  string
		point fault.Point
		opts  []sqe.Option
		req   func(q sqe.DemoQuery) sqe.SearchRequest
		check func(t *testing.T, resp *sqe.SearchResponse)
	}{
		{
			"shard", fault.ShardEval,
			[]sqe.Option{sqe.WithShards(4), sqe.WithDegradation(directedPolicy())},
			func(q sqe.DemoQuery) sqe.SearchRequest {
				return sqe.SearchRequest{Query: q.Text, K: 10, Baseline: true}
			},
			func(t *testing.T, resp *sqe.SearchResponse) {
				if resp.Degraded == nil || len(resp.Degraded.DroppedShards) != 1 {
					t.Fatalf("Degraded = %+v, want one dropped shard", resp.Degraded)
				}
			},
		},
		{
			"expansion", fault.MotifExpand,
			[]sqe.Option{sqe.WithDegradation(directedPolicy())},
			func(q sqe.DemoQuery) sqe.SearchRequest {
				return sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10, MotifSet: sqe.MotifT}
			},
			func(t *testing.T, resp *sqe.SearchResponse) {
				if resp.Degraded == nil || resp.Degraded.ExpansionFallbacks == 0 {
					t.Fatalf("Degraded = %+v, want an expansion fallback", resp.Degraded)
				}
			},
		},
		{
			"sqec run", fault.SQECRun,
			[]sqe.Option{sqe.WithDegradation(directedPolicy())},
			func(q sqe.DemoQuery) sqe.SearchRequest {
				return sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10}
			},
			func(t *testing.T, resp *sqe.SearchResponse) {
				if resp.Degraded == nil || len(resp.Degraded.DroppedRuns) != 1 {
					t.Fatalf("Degraded = %+v, want one dropped run", resp.Degraded)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer fault.Disarm()
			env := demoEnv(t, c.opts...)
			fault.Arm(fault.NewRegistry(19).Set(c.point, fault.Policy{PanicRate: 1, MaxFaults: 1}))
			resp, err := env.Engine.Do(ctx, c.req(env.Queries[0]))
			if err != nil {
				t.Fatalf("injected panic failed the request instead of degrading: %v", err)
			}
			if len(resp.Results) == 0 {
				t.Fatal("degraded response has no results")
			}
			c.check(t, resp)
		})
	}
}

// TestChaosAllShardsFailedIsAnError checks the never-silent rule: when
// every shard fails there is nothing to merge, and the request must
// fail with the underlying injected error — not return an empty 200.
func TestChaosAllShardsFailedIsAnError(t *testing.T) {
	defer fault.Disarm()
	env := demoEnv(t, sqe.WithShards(4), sqe.WithDegradation(directedPolicy()))
	q := env.Queries[0]

	fault.Arm(fault.NewRegistry(23).Set(fault.ShardEval, fault.Policy{ErrRate: 1}))
	resp, err := env.Engine.Do(context.Background(), sqe.SearchRequest{Query: q.Text, K: 10, Baseline: true})
	if err == nil {
		t.Fatalf("all shards failing returned %+v, want an error", resp)
	}
	if !fault.IsInjected(err) {
		t.Fatalf("error %v does not unwrap to the injected fault", err)
	}
}

// TestChaosCancelledContextIsNotDegraded checks that parent-context
// cancellation always wins over degradation: a cancelled request fails
// with the context error instead of returning a partial response.
func TestChaosCancelledContextIsNotDegraded(t *testing.T) {
	defer fault.Disarm()
	env := demoEnv(t, sqe.WithShards(4), sqe.WithDegradation(sqe.DefaultDegradation()))
	q := env.Queries[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	fault.Arm(fault.NewRegistry(29).Set(fault.ShardEval, fault.Policy{ErrRate: 1}))
	if _, err := env.Engine.Do(ctx, sqe.SearchRequest{Query: q.Text, K: 10, Baseline: true}); err == nil {
		t.Fatal("cancelled request degraded into a response, want the context error")
	}
}

package analysis

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"hello", []string{"hello"}},
		{"Hello, World!", []string{"hello", "world"}},
		{"cable-cars", []string{"cable", "cars"}},
		{"a.b.c", []string{"a", "b", "c"}},
		{"foo  bar\tbaz\nqux", []string{"foo", "bar", "baz", "qux"}},
		{"42 items", []string{"42", "items"}},
		{"naïve café", []string{"naïve", "café"}},
		{"ÅNGSTRÖM", []string{"ångström"}},
	}
	for _, tc := range tests {
		got := Terms(tc.in)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Terms(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks := Tokenize("one two  three")
	want := []Token{{"one", 0}, {"two", 1}, {"three", 2}}
	if !reflect.DeepEqual(toks, want) {
		t.Errorf("Tokenize positions = %v, want %v", toks, want)
	}
}

func TestAnalyzerStopwordsKeepPositions(t *testing.T) {
	a := Analyzer{RemoveStopwords: true}
	toks := a.Analyze("the cat and the hat")
	// "the", "and" removed; positions of survivors preserved.
	want := []Token{{"cat", 1}, {"hat", 4}}
	if !reflect.DeepEqual(toks, want) {
		t.Errorf("Analyze = %v, want %v", toks, want)
	}
}

func TestAnalyzerStemming(t *testing.T) {
	a := Analyzer{Stem: true}
	got := a.AnalyzeTerms("running cars happily")
	want := []string{"run", "car", "happili"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AnalyzeTerms = %v, want %v", got, want)
	}
}

func TestStandardAnalyzer(t *testing.T) {
	a := Standard()
	got := a.AnalyzeTerms("The funiculars are running on the mountains")
	want := []string{"funicular", "run", "mountain"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Standard().AnalyzeTerms = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"cable", "car", "wikipedia", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
	if StopwordCount() < 100 {
		t.Errorf("StopwordCount() = %d, want a substantial list", StopwordCount())
	}
}

// Property: every term produced by Tokenize is non-empty, lowercase and
// alphanumeric, and positions strictly increase.
func TestTokenizeProperties(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prev := -1
		for _, tok := range toks {
			if tok.Term == "" {
				return false
			}
			if tok.Position <= prev {
				return false
			}
			prev = tok.Position
			for _, r := range tok.Term {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				// Lowercased: the rune is a fixed point of ToLower
				// (some letters, e.g. mathematical capitals, have no
				// lowercase mapping and pass through unchanged).
				if r != unicode.ToLower(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenization is idempotent — re-tokenizing the joined terms
// yields the same terms.
func TestTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		first := Terms(s)
		second := Terms(strings.Join(first, " "))
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the analyzer never outputs stopwords when removal is on.
func TestAnalyzerNoStopwordsProperty(t *testing.T) {
	a := Analyzer{RemoveStopwords: true}
	f := func(s string) bool {
		for _, tok := range a.Analyze(s) {
			if IsStopword(tok.Term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package analysis

import (
	"testing"
	"testing/quick"
)

// TestPorterVectors checks the stemmer against vectors from Porter's
// published sample vocabulary (the canonical voc.txt/output.txt pairs).
func TestPorterVectors(t *testing.T) {
	vectors := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		// step 1b cleanup
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// general
		"generalizations": "gener",
		"oscillators":     "oscil",
	}
	for in, want := range vectors {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"", "a", "is", "be", "café", "über", "Hello", "a1b"} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: the stem is never longer than the word and never empty for a
// non-empty lowercase ASCII word.
func TestPorterProperties(t *testing.T) {
	f := func(raw string) bool {
		// Build a lowercase ASCII word from the raw input.
		w := make([]byte, 0, len(raw))
		for i := 0; i < len(raw); i++ {
			c := raw[i] | 0x20
			if c >= 'a' && c <= 'z' {
				w = append(w, c)
			}
		}
		word := string(w)
		stem := PorterStem(word)
		if len(stem) > len(word) {
			return false
		}
		if word != "" && stem == "" {
			return false
		}
		// Stemming is idempotent on its own output for the vast
		// majority of forms; Porter is not strictly idempotent in
		// general, so only check the stem is stable in length order.
		return len(PorterStem(stem)) <= len(stem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

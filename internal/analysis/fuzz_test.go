package analysis

import (
	"testing"
	"unicode/utf8"
)

// FuzzPorterStem asserts the stemmer never panics, never grows a word
// and is stable on ASCII lowercase input.
func FuzzPorterStem(f *testing.F) {
	for _, seed := range []string{"", "a", "running", "caresses", "sky", "generalizations", "ponies", "ääkköset", "1234", "abcdefghij"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, word string) {
		stem := PorterStem(word)
		if len(stem) > len(word) {
			t.Fatalf("stem %q longer than word %q", stem, word)
		}
		if word != "" && utf8.ValidString(word) && stem == "" {
			t.Fatalf("stem of %q is empty", word)
		}
	})
}

// FuzzAnalyze asserts the full pipeline never panics and produces only
// non-empty terms with increasing positions.
func FuzzAnalyze(f *testing.F) {
	for _, seed := range []string{"", "hello world", "The Cable-Cars!", "ünïcodé tèxt", "a\x00b", "\xff\xfe"} {
		f.Add(seed)
	}
	a := Standard()
	f.Fuzz(func(t *testing.T, text string) {
		prev := -1
		for _, tok := range a.Analyze(text) {
			if tok.Term == "" {
				t.Fatal("empty term")
			}
			if tok.Position <= prev {
				t.Fatal("positions not increasing")
			}
			prev = tok.Position
		}
	})
}

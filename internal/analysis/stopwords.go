package analysis

// stopwords is the classic SMART-derived English stopword list trimmed to
// the terms that actually occur in short caption-style documents. Indri's
// default stopper is a superset; for query-likelihood retrieval over short
// documents the effect is equivalent.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range stopwordList {
		stopwords[w] = struct{}{}
	}
}

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "aren", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn", "did", "didn", "do", "does", "doesn",
	"doing", "don", "down", "during", "each", "few", "for", "from",
	"further", "had", "hadn", "has", "hasn", "have", "haven", "having",
	"he", "her", "here", "hers", "herself", "him", "himself", "his", "how",
	"i", "if", "in", "into", "is", "isn", "it", "its", "itself", "just",
	"me", "more", "most", "mustn", "my", "myself", "no", "nor", "not",
	"now", "of", "off", "on", "once", "only", "or", "other", "ought",
	"our", "ours", "ourselves", "out", "over", "own", "same", "shan",
	"she", "should", "shouldn", "so", "some", "such", "than", "that",
	"the", "their", "theirs", "them", "themselves", "then", "there",
	"these", "they", "this", "those", "through", "to", "too", "under",
	"until", "up", "very", "was", "wasn", "we", "were", "weren", "what",
	"when", "where", "which", "while", "who", "whom", "why", "will",
	"with", "won", "would", "wouldn", "you", "your", "yours", "yourself",
	"yourselves", "s", "t", "d", "ll", "m", "o", "re", "ve", "y",
}

// IsStopword reports whether term (already lowercased) is on the stopword
// list.
func IsStopword(term string) bool {
	_, ok := stopwords[term]
	return ok
}

// StopwordCount returns the size of the stopword list; exposed for tests
// and for collection statistics.
func StopwordCount() int { return len(stopwordList) }

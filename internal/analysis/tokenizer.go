// Package analysis provides the lexical layer of the retrieval substrate:
// tokenization, stopword filtering and Porter stemming. It mirrors the
// text pipeline Indri applies to both documents and queries so that the
// query-likelihood scores computed by internal/search are consistent on
// both sides.
package analysis

import (
	"strings"
	"unicode"
)

// Token is a single term occurrence produced by the tokenizer.
type Token struct {
	// Term is the (possibly normalised) surface form.
	Term string
	// Position is the 0-based token offset within the input, counted
	// before any stopword removal so that phrase windows measured on
	// positions remain faithful to the original text.
	Position int
}

// Tokenize splits text into lowercase alphanumeric terms. Unicode letters
// and digits are kept; everything else separates tokens. Positions are
// assigned in input order starting at 0.
func Tokenize(text string) []Token {
	tokens := make([]Token, 0, len(text)/6+1)
	var sb strings.Builder
	pos := 0
	flush := func() {
		if sb.Len() == 0 {
			return
		}
		tokens = append(tokens, Token{Term: sb.String(), Position: pos})
		pos++
		sb.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			sb.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Terms returns just the term strings of Tokenize(text), preserving order.
func Terms(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Term
	}
	return out
}

// Analyzer is a configurable text pipeline: tokenize, optionally drop
// stopwords, optionally stem. The zero value tokenizes only.
type Analyzer struct {
	// RemoveStopwords drops terms found in the standard stopword list.
	RemoveStopwords bool
	// Stem applies the Porter stemmer to each surviving term.
	Stem bool
}

// Standard returns the analyzer used throughout the reproduction:
// stopword removal plus Porter stemming, matching Indri's usual krovetz/
// porter configuration closely enough for query-likelihood retrieval.
func Standard() Analyzer { return Analyzer{RemoveStopwords: true, Stem: true} }

// Analyze runs the pipeline over text. Positions are preserved from
// tokenization, so removed stopwords leave gaps; phrase matching uses
// those original positions.
func (a Analyzer) Analyze(text string) []Token {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if a.RemoveStopwords && IsStopword(t.Term) {
			continue
		}
		if a.Stem {
			t.Term = PorterStem(t.Term)
		}
		if t.Term == "" {
			continue
		}
		out = append(out, t)
	}
	return out
}

// AnalyzeTerms is Analyze but returns only the term strings.
func (a Analyzer) AnalyzeTerms(text string) []string {
	toks := a.Analyze(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Term
	}
	return out
}

package analysis

// PorterStem implements the classic Porter (1980) suffix-stripping
// algorithm. The implementation follows the original paper's five steps
// (with steps 1a/1b/1c and 5a/5b) and is ASCII-only: terms containing
// non-ASCII letters are returned unchanged, as are terms shorter than
// three characters (stemming them is never beneficial and the original
// algorithm leaves them alone).
func PorterStem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return word
		}
	}
	s := stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant per Porter's definition:
// a letter other than a,e,i,o,u, and other than y preceded by a consonant.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:end], where the
// word form is C?(VC){m}V?.
func (s *stemmer) measure(end int) int {
	m := 0
	i := 0
	// skip initial consonants
	for i < end && s.isConsonant(i) {
		i++
	}
	for {
		// skip vowels
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			return m
		}
		// skip consonants
		for i < end && s.isConsonant(i) {
			i++
		}
		m++
		if i >= end {
			return m
		}
	}
}

// hasVowel reports whether b[:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b[:end] ends with a double consonant.
func (s *stemmer) doubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	return s.b[end-1] == s.b[end-2] && s.isConsonant(end-1)
}

// cvc reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x or y. Used to restore a trailing 'e'.
func (s *stemmer) cvc(end int) bool {
	if end < 3 {
		return false
	}
	if !s.isConsonant(end-1) || s.isConsonant(end-2) || !s.isConsonant(end-3) {
		return false
	}
	switch s.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if len(suf) > n {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// replaceSuffix replaces suf (which the caller has verified) with rep.
func (s *stemmer) replaceSuffix(suf, rep string) {
	s.b = append(s.b[:len(s.b)-len(suf)], rep...)
}

// replaceIfM replaces suf with rep when measure(stem) > threshold.
// Returns true when the suffix matched (even if measure failed), which
// tells rule tables to stop scanning.
func (s *stemmer) replaceIfM(suf, rep string, threshold int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	stemLen := len(s.b) - len(suf)
	if s.measure(stemLen) > threshold {
		s.replaceSuffix(suf, rep)
	}
	return true
}

// step1a: SSES->SS, IES->I, SS->SS, S->"".
func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replaceSuffix("sses", "ss")
	case s.hasSuffix("ies"):
		s.replaceSuffix("ies", "i")
	case s.hasSuffix("ss"):
		// unchanged
	case s.hasSuffix("s"):
		s.replaceSuffix("s", "")
	}
}

// step1b: (m>0) EED->EE; (*v*) ED->""; (*v*) ING->"" with cleanup.
func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(len(s.b)-3) > 0 {
			s.replaceSuffix("eed", "ee")
		}
		return
	}
	cleanup := false
	if s.hasSuffix("ed") && s.hasVowel(len(s.b)-2) {
		s.replaceSuffix("ed", "")
		cleanup = true
	} else if s.hasSuffix("ing") && s.hasVowel(len(s.b)-3) {
		s.replaceSuffix("ing", "")
		cleanup = true
	}
	if !cleanup {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replaceSuffix("at", "ate")
	case s.hasSuffix("bl"):
		s.replaceSuffix("bl", "ble")
	case s.hasSuffix("iz"):
		s.replaceSuffix("iz", "ize")
	case s.doubleConsonant(len(s.b)):
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.cvc(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

// step1c: (*v*) Y -> I.
func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(len(s.b)-1) {
		s.b[len(s.b)-1] = 'i'
	}
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func (s *stemmer) step2() {
	for _, r := range step2Rules {
		if s.replaceIfM(r.suf, r.rep, 0) {
			return
		}
	}
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemmer) step3() {
	for _, r := range step3Rules {
		if s.replaceIfM(r.suf, r.rep, 0) {
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (s *stemmer) step4() {
	for _, suf := range step4Suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		stemLen := len(s.b) - len(suf)
		if suf == "ion" {
			// (m>1 and (*S or *T)) ION ->
			if stemLen > 0 && (s.b[stemLen-1] == 's' || s.b[stemLen-1] == 't') && s.measure(stemLen) > 1 {
				s.replaceSuffix(suf, "")
			}
			return
		}
		if s.measure(stemLen) > 1 {
			s.replaceSuffix(suf, "")
		}
		return
	}
}

// step5a: (m>1) E->""; (m=1 and not *o) E->"".
func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stemLen := len(s.b) - 1
	m := s.measure(stemLen)
	if m > 1 || (m == 1 && !s.cvc(stemLen)) {
		s.b = s.b[:stemLen]
	}
}

// step5b: (m>1 and *d and *L) single letter.
func (s *stemmer) step5b() {
	n := len(s.b)
	if n > 1 && s.b[n-1] == 'l' && s.doubleConsonant(n) && s.measure(n) > 1 {
		s.b = s.b[:n-1]
	}
}

// Package dataset generates the three benchmark instances of the paper's
// Section 3 — Image CLEF, CHiC 2012 and CHiC 2013 — as synthetic
// counterparts coupled to a wikigen.World.
//
// The real collections (237,434 image captions; 1,107,176 cultural-
// heritage records; 50 TREC-style topics each with qrels) are not
// available, so we generate corpora from the same topic model that built
// the KB:
//
//   - each query targets one topic and is phrased in the topic's *alias*
//     vocabulary — words that rarely occur in documents (the paper's
//     vocabulary mismatch) and that are also planted into non-relevant
//     documents (topic inexperience / ambiguity);
//   - relevant documents are captions about the topic: they mention
//     same-topic article titles as consecutive n-grams (the way captions
//     name entities), carry loose topic vocabulary, and share a noise
//     background with everything else;
//   - distractor documents are captions about non-query topics plus pure
//     noise, including documents about *related* (same-domain) topics
//     that mention query-topic articles — the hard negatives that keep
//     entity-title matching from being a perfect signal.
//
// The two CHiC instances share one collection, as in the paper, and keep
// its quirks: fewer relevant documents per query (31.32 / 50.6 vs 68.8),
// 14 CHiC 2012 queries and 1 CHiC 2013 query with no relevant documents
// at all, and a collection ~4.7× the size of Image CLEF's.
package dataset

// QuerySetProfile describes one query set (50 topics in the paper).
type QuerySetProfile struct {
	Name     string
	IDPrefix string
	// NumQueries is the number of topics/queries.
	NumQueries int
	// MeanRelevant and StdRelevant shape the per-query relevant-document
	// counts (normal, clamped at MinRelevant).
	MeanRelevant float64
	StdRelevant  float64
	MinRelevant  int
	// ZeroRelevantQueries forces this many queries to have no relevant
	// documents at all (they still count in the precision average).
	ZeroRelevantQueries int
	// TitleMentionLow/High bound the per-query probability that a
	// relevant document mentions at least one same-topic article title.
	// Lower values make the query intrinsically harder (part of its
	// relevant set is unreachable through expansion features).
	TitleMentionLow, TitleMentionHigh float64
	// AliasDocLow/High bound the per-query probability that a relevant
	// document contains a given query alias term (vocabulary-mismatch
	// severity).
	AliasDocLow, AliasDocHigh float64
}

// CollectionProfile describes a document collection; one collection can
// host several query sets (CHiC 2012/2013 share one).
type CollectionProfile struct {
	Name string
	Seed int64
	// NumDocs is the total collection size including relevant documents.
	NumDocs int
	// AliasNoiseFactor scales how many distractor documents get a query's
	// alias terms planted: ≈ factor · (alias coverage of the relevant
	// set). Higher values depress the QL_Q baseline.
	AliasNoiseFactor float64
	// NearMissFactor scales the number of near-miss documents per query:
	// documents about the query's topic that do not satisfy its intent
	// and are judged non-relevant. They are what keeps expansion
	// features from being an oracle.
	NearMissFactor float64
	// CrossTopicMentionProb is the probability that a topical distractor
	// document also mentions an article from another topic of the same
	// domain — the source of entity-title false positives.
	CrossTopicMentionProb float64
	// MentionZipf is the exponent of the popularity distribution over a
	// topic's articles when documents pick which articles to mention
	// (article 0, the entity, is the most popular).
	MentionZipf float64
	// CrossMentionZipf is the popularity exponent used when a document
	// about another topic name-drops this topic. Cross-references almost
	// always hit the topic's head entity ("a tram is not a cable car"),
	// which is precisely what makes the entity title an ambiguous signal
	// while tail-article titles stay precise — the asymmetry SQE
	// exploits.
	CrossMentionZipf float64
	// QuerySets lists the query sets judged against this collection.
	QuerySets []QuerySetProfile
}

// Scale shrinks the default profiles for fast tests.
type Scale int

const (
	// ScaleDefault is the benchmark scale (see DESIGN.md §6).
	ScaleDefault Scale = iota
	// ScaleSmall is the unit-test scale.
	ScaleSmall
)

// ImageCLEFProfile returns the Image CLEF-like collection profile: one
// query set, every query has at least one relevant document, mean 68.8
// relevant per query.
func ImageCLEFProfile(s Scale) CollectionProfile {
	p := CollectionProfile{
		Name:                  "Image CLEF",
		Seed:                  101,
		NumDocs:               18000,
		AliasNoiseFactor:      3.6,
		NearMissFactor:        1.6,
		CrossTopicMentionProb: 0.55,
		MentionZipf:           0.55,
		CrossMentionZipf:      2.2,
		QuerySets: []QuerySetProfile{{
			Name:             "Image CLEF",
			IDPrefix:         "IC",
			NumQueries:       50,
			MeanRelevant:     68.8,
			StdRelevant:      25,
			MinRelevant:      1,
			TitleMentionLow:  0.35,
			TitleMentionHigh: 0.85,
			AliasDocLow:      0.30,
			AliasDocHigh:     0.55,
		}},
	}
	if s == ScaleSmall {
		p.NumDocs = 2200
		qs := &p.QuerySets[0]
		qs.NumQueries = 12
		qs.MeanRelevant = 30
		qs.StdRelevant = 10
	}
	return p
}

// CHiCProfile returns the shared CHiC collection with its two query
// sets (2012, 2013). The collection is ~4.7× Image CLEF's, relevant sets
// are smaller and several queries have none — the paper's explanation
// for CHiC's lower precision.
func CHiCProfile(s Scale) CollectionProfile {
	p := CollectionProfile{
		Name:                  "CHiC",
		Seed:                  202,
		NumDocs:               84000,
		AliasNoiseFactor:      4.0,
		NearMissFactor:        1.6,
		CrossTopicMentionProb: 0.55,
		MentionZipf:           0.55,
		CrossMentionZipf:      2.2,
		QuerySets: []QuerySetProfile{
			{
				Name:                "CHiC 2012",
				IDPrefix:            "C12",
				NumQueries:          50,
				MeanRelevant:        31.32 * 50 / 36, // mean over non-zero queries so the judged mean lands at 31.32
				StdRelevant:         20,
				MinRelevant:         1,
				ZeroRelevantQueries: 14,
				TitleMentionLow:     0.25,
				TitleMentionHigh:    0.75,
				AliasDocLow:         0.25,
				AliasDocHigh:        0.45,
			},
			{
				Name:                "CHiC 2013",
				IDPrefix:            "C13",
				NumQueries:          50,
				MeanRelevant:        50.6 * 50 / 49,
				StdRelevant:         22,
				MinRelevant:         1,
				ZeroRelevantQueries: 1,
				TitleMentionLow:     0.30,
				TitleMentionHigh:    0.80,
				AliasDocLow:         0.28,
				AliasDocHigh:        0.50,
			},
		},
	}
	if s == ScaleSmall {
		p.NumDocs = 4500
		for i := range p.QuerySets {
			qs := &p.QuerySets[i]
			qs.NumQueries = 12
			qs.MeanRelevant = 18
			qs.StdRelevant = 8
			if qs.ZeroRelevantQueries > 3 {
				qs.ZeroRelevantQueries = 3
			}
		}
	}
	return p
}

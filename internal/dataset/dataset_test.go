package dataset

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/kb"
	"repro/internal/wikigen"
)

// shared small world/instances for the whole test package; generation is
// deterministic so sharing is safe.
var (
	onceSmall sync.Once
	smWorld   *wikigen.World
	smIC      *Instance
	smC12     *Instance
	smC13     *Instance
)

func smallEnv(t *testing.T) (*wikigen.World, *Instance, *Instance, *Instance) {
	t.Helper()
	onceSmall.Do(func() {
		smWorld = wikigen.MustGenerate(wikigen.SmallConfig())
		var err error
		smIC, err = BuildImageCLEF(smWorld, ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		smC12, smC13, err = BuildCHiC(smWorld, ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
	})
	if smIC == nil || smC12 == nil || smC13 == nil {
		t.Fatal("environment failed to build")
	}
	return smWorld, smIC, smC12, smC13
}

func TestInstanceShape(t *testing.T) {
	_, ic, c12, c13 := smallEnv(t)
	icProfile := ImageCLEFProfile(ScaleSmall)
	if len(ic.Queries) != icProfile.QuerySets[0].NumQueries {
		t.Errorf("IC queries = %d", len(ic.Queries))
	}
	if ic.Index.NumDocs() != icProfile.NumDocs {
		t.Errorf("IC docs = %d, want %d", ic.Index.NumDocs(), icProfile.NumDocs)
	}
	// CHiC instances share one index.
	if c12.Index != c13.Index {
		t.Error("CHiC 2012/2013 must share their collection")
	}
	if ic.Index == c12.Index {
		t.Error("Image CLEF and CHiC must not share a collection")
	}
}

func TestQrelsConsistent(t *testing.T) {
	_, ic, _, _ := smallEnv(t)
	for _, q := range ic.Queries {
		rel := ic.Qrels[q.ID]
		if len(rel) != q.NumRelevant {
			t.Fatalf("%s: qrels %d != NumRelevant %d", q.ID, len(rel), q.NumRelevant)
		}
		for doc := range rel {
			// Every judged doc must exist in the index.
			found := false
			for d := 0; d < ic.Index.NumDocs(); d++ {
				if ic.Index.DocName(index.DocID(d)) == doc {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: judged doc %s not in index", q.ID, doc)
			}
			break // existence spot-check only; full scan is O(n²)
		}
	}
}

func TestZeroRelevantQueries(t *testing.T) {
	_, _, c12, c13 := smallEnv(t)
	p := CHiCProfile(ScaleSmall)
	count := func(in *Instance) int {
		n := 0
		for _, q := range in.Queries {
			if q.NumRelevant == 0 {
				n++
			}
		}
		return n
	}
	if got := count(c12); got != p.QuerySets[0].ZeroRelevantQueries {
		t.Errorf("CHiC 2012 zero-relevant queries = %d, want %d", got, p.QuerySets[0].ZeroRelevantQueries)
	}
	if got := count(c13); got != p.QuerySets[1].ZeroRelevantQueries {
		t.Errorf("CHiC 2013 zero-relevant queries = %d, want %d", got, p.QuerySets[1].ZeroRelevantQueries)
	}
}

func TestQueryTopicsDisjointWithinCollection(t *testing.T) {
	_, _, c12, c13 := smallEnv(t)
	seen := map[int]string{}
	for _, in := range []*Instance{c12, c13} {
		for _, q := range in.Queries {
			if prev, dup := seen[q.Topic]; dup {
				t.Fatalf("topic %d used by both %s and %s", q.Topic, prev, q.ID)
			}
			seen[q.Topic] = q.ID
		}
	}
}

func TestQueriesUseAliasVocabulary(t *testing.T) {
	w, ic, _, _ := smallEnv(t)
	for _, q := range ic.Queries {
		topic := &w.Topics[q.Topic]
		aliases := map[string]bool{}
		for _, a := range topic.AliasTerms {
			aliases[a] = true
		}
		for _, word := range strings.Fields(q.Text) {
			if !aliases[word] {
				t.Fatalf("%s: query word %q is not a topic alias", q.ID, word)
			}
		}
		if len(q.Entities) == 0 || q.Entities[0] != topic.Entity() {
			t.Fatalf("%s: first manual entity must be the topic entity", q.ID)
		}
	}
}

func TestGroundTruthProperties(t *testing.T) {
	w, ic, _, _ := smallEnv(t)
	nonEmpty := 0
	for _, q := range ic.Queries {
		gt := ic.GroundTruth[q.ID]
		if len(gt) > 0 {
			nonEmpty++
		}
		isEntity := map[kb.NodeID]bool{}
		for _, e := range q.Entities {
			isEntity[e] = true
		}
		prev := gt
		for i, f := range gt {
			if isEntity[f.Article] {
				t.Fatalf("%s: ground truth contains query node", q.ID)
			}
			if topic, ok := w.TopicOf(f.Article); !ok || topic != q.Topic {
				t.Fatalf("%s: ground-truth article from wrong topic", q.ID)
			}
			if i > 0 && prev[i-1].Weight < f.Weight {
				t.Fatalf("%s: ground truth not sorted by weight", q.ID)
			}
			if !strings.Contains(w.Graph.Title(f.Article), " ") {
				t.Fatalf("%s: single-word title %q in ground truth", q.ID, w.Graph.Title(f.Article))
			}
		}
	}
	if nonEmpty < len(ic.Queries)/2 {
		t.Errorf("only %d/%d queries have ground truth", nonEmpty, len(ic.Queries))
	}
}

func TestBuildDeterministic(t *testing.T) {
	w, ic, _, _ := smallEnv(t)
	again, err := BuildImageCLEF(w, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Queries) != len(ic.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range again.Queries {
		if again.Queries[i].Text != ic.Queries[i].Text {
			t.Fatalf("query %d text differs", i)
		}
	}
	if again.Index.TotalTokens() != ic.Index.TotalTokens() {
		t.Error("collections differ between builds")
	}
}

func TestAvgRelevantNearProfile(t *testing.T) {
	_, ic, _, _ := smallEnv(t)
	p := ImageCLEFProfile(ScaleSmall)
	avg := ic.Qrels.AvgRelevant()
	if avg < p.QuerySets[0].MeanRelevant*0.5 || avg > p.QuerySets[0].MeanRelevant*1.5 {
		t.Errorf("avg relevant = %.1f, profile mean %.1f", avg, p.QuerySets[0].MeanRelevant)
	}
}

func TestQueryByID(t *testing.T) {
	_, ic, _, _ := smallEnv(t)
	q := &ic.Queries[0]
	if got := ic.QueryByID(q.ID); got != q {
		t.Error("QueryByID failed")
	}
	if ic.QueryByID("nope") != nil {
		t.Error("QueryByID of unknown id should be nil")
	}
}

func TestBuildErrors(t *testing.T) {
	w, _, _, _ := smallEnv(t)
	if _, err := Build(w, CollectionProfile{Name: "empty"}); err == nil {
		t.Error("profile without query sets should error")
	}
	p := ImageCLEFProfile(ScaleSmall)
	p.QuerySets[0].NumQueries = len(w.Topics) + 1
	if _, err := Build(w, p); err == nil {
		t.Error("too many query topics should error")
	}
	p = ImageCLEFProfile(ScaleSmall)
	p.NumDocs = 10 // far below the relevant-doc demand
	if _, err := Build(w, p); err == nil {
		t.Error("tiny collection should error")
	}
}

func TestLinkerPrecisionBand(t *testing.T) {
	w, ic, _, _ := smallEnv(t)
	l := BuildLinker(w, DefaultLinkerOptions())
	var linked, gold [][]kb.NodeID
	for _, q := range ic.Queries {
		linked = append(linked, l.LinkArticles(q.Text))
		gold = append(gold, q.Entities)
	}
	// Paper: Dexter+Alchemy reach more than 80% precision. The linker
	// should land in a comparable band — well above chance, below
	// perfect (the ambiguity option injects real errors).
	// Note: gold contains only the manual entities, so same-topic
	// fallback links count as errors, making this a conservative bound.
	p := entityPrecision(linked, gold)
	if p < 0.55 || p > 1.0 {
		t.Errorf("linking precision = %.2f, want within (0.55, 1.0]", p)
	}
}

// entityPrecision mirrors entitylink.Precision without importing it (to
// keep this package's dependencies one-directional in tests).
func entityPrecision(linked, gold [][]kb.NodeID) float64 {
	var sum float64
	n := 0
	for i := range linked {
		if len(linked[i]) == 0 {
			continue
		}
		gs := map[kb.NodeID]bool{}
		for _, g := range gold[i] {
			gs[g] = true
		}
		c := 0
		for _, a := range linked[i] {
			if gs[a] {
				c++
			}
		}
		sum += float64(c) / float64(len(linked[i]))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestBuildWithSinkSeesEveryDocument(t *testing.T) {
	w, ic, _, _ := smallEnv(t)
	count := 0
	var firstName, firstText string
	ins, err := BuildWithSink(w, ImageCLEFProfile(ScaleSmall), func(name, text string) {
		if count == 0 {
			firstName, firstText = name, text
		}
		count++
		if name == "" || text == "" {
			t.Fatalf("empty doc from sink: %q %q", name, text)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != ins[0].Index.NumDocs() {
		t.Fatalf("sink saw %d docs, index has %d", count, ins[0].Index.NumDocs())
	}
	// Determinism: the sink-observed collection matches the plain build.
	if ins[0].Index.TotalTokens() != ic.Index.TotalTokens() {
		t.Error("sink build differs from plain build")
	}
	if firstName != ic.Index.DocName(0) {
		t.Errorf("first doc %s != %s", firstName, ic.Index.DocName(0))
	}
	_ = firstText
}

package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/kb"
	"repro/internal/wikigen"
)

// Query is one benchmark topic: the user's text, the topic it is about,
// and the manually selected query entities (the paper's (M) runs; the
// (A) runs link entities from Text instead).
type Query struct {
	ID   string
	Text string
	// Topic is the world topic index the query targets.
	Topic int
	// Entities are the manually selected query nodes.
	Entities []kb.NodeID
	// TitleMentionProb and AliasDocProb are the difficulty draws used to
	// generate this query's relevant documents; exposed for analysis.
	TitleMentionProb float64
	AliasDocProb     float64
	// DecoyTerms is the coherent vocabulary of the query's false-positive
	// documents: planted distractors share it, the way real distractors
	// cluster on one wrong sense of the query ("cable car" toys). It is
	// what makes pseudo-relevance feedback lock onto the wrong topic when
	// the initial ranking is poor.
	DecoyTerms []string
	// NumRelevant is the number of generated relevant documents.
	NumRelevant int
}

// Instance is one evaluable benchmark: a query set judged against an
// indexed collection. Instances generated from the same
// CollectionProfile share their Index.
type Instance struct {
	Name    string
	World   *wikigen.World
	Index   *index.Index
	Queries []Query
	Qrels   eval.Qrels
	// GroundTruth maps query ID to the optimal expansion features (same
	// role as the published ground truth [10] the paper analyses):
	// same-topic articles weighted by how many of the query's relevant
	// documents mention them.
	GroundTruth map[string][]core.Feature
}

// QueryByID returns the query with the given ID, or nil.
func (in *Instance) QueryByID(id string) *Query {
	for i := range in.Queries {
		if in.Queries[i].ID == id {
			return &in.Queries[i]
		}
	}
	return nil
}

// DocSink observes every generated document; used to export the corpus
// alongside indexing it.
type DocSink func(name, text string)

// Build generates every instance of a collection profile against world.
// The same (world, profile) pair always generates the same instances.
func Build(world *wikigen.World, p CollectionProfile) ([]*Instance, error) {
	return BuildWithSink(world, p, nil)
}

// BuildWithSink is Build with a document observer: sink (when non-nil)
// receives every document exactly as it is indexed, in index order.
func BuildWithSink(world *wikigen.World, p CollectionProfile, sink DocSink) ([]*Instance, error) {
	if len(p.QuerySets) == 0 {
		return nil, fmt.Errorf("dataset: profile %q has no query sets", p.Name)
	}
	g := &generator{
		world: world,
		p:     p,
		rng:   rand.New(rand.NewSource(p.Seed*1_000_003 + world.Config.Seed)),
		ixb:   index.NewBuilder(analysis.Standard()),
		sink:  sink,
	}
	return g.run()
}

// BuildImageCLEF generates the Image CLEF-like instance.
func BuildImageCLEF(world *wikigen.World, s Scale) (*Instance, error) {
	ins, err := Build(world, ImageCLEFProfile(s))
	if err != nil {
		return nil, err
	}
	return ins[0], nil
}

// BuildCHiC generates the CHiC 2012 and CHiC 2013 instances over their
// shared collection.
func BuildCHiC(world *wikigen.World, s Scale) (chic2012, chic2013 *Instance, err error) {
	ins, err := Build(world, CHiCProfile(s))
	if err != nil {
		return nil, nil, err
	}
	return ins[0], ins[1], nil
}

type generator struct {
	world *wikigen.World
	p     CollectionProfile
	rng   *rand.Rand
	ixb   *index.Builder

	// zipfCum caches, per (topic, exponent), the cumulative
	// mention-popularity distribution over the topic's articles.
	zipfCum map[zipfKey][]float64

	// queryTopicsByDomain indexes the query topics per domain: queried
	// subjects are the popular ones, so cross-references land on them
	// disproportionately (popularity bias).
	queryTopicsByDomain map[int][]int

	sink   DocSink
	docSeq int
}

// addDoc indexes one document and feeds the sink.
func (g *generator) addDoc(name, text string) {
	g.ixb.Add(name, text)
	if g.sink != nil {
		g.sink(name, text)
	}
}

func (g *generator) run() ([]*Instance, error) {
	numTopics := len(g.world.Topics)
	needed := 0
	for _, qs := range g.p.QuerySets {
		needed += qs.NumQueries
	}
	if needed > numTopics {
		return nil, fmt.Errorf("dataset: %s needs %d query topics but world has %d", g.p.Name, needed, numTopics)
	}
	g.zipfCum = make(map[zipfKey][]float64)

	// Disjoint topic assignment across the collection's query sets.
	perm := g.rng.Perm(numTopics)
	next := 0

	instances := make([]*Instance, 0, len(g.p.QuerySets))
	type relJob struct {
		inst *Instance
		qi   int
	}
	var relJobs []relJob
	for _, qs := range g.p.QuerySets {
		inst := &Instance{
			Name:        qs.Name,
			World:       g.world,
			Qrels:       make(eval.Qrels),
			GroundTruth: make(map[string][]core.Feature),
		}
		zeroSet := g.pickZeroRelevant(qs)
		for i := 0; i < qs.NumQueries; i++ {
			topic := perm[next]
			next++
			q := g.makeQuery(qs, i, topic)
			if zeroSet[i] {
				q.NumRelevant = 0
			}
			inst.Queries = append(inst.Queries, q)
			inst.Qrels[q.ID] = make(map[string]bool)
			relJobs = append(relJobs, relJob{inst, i})
		}
		instances = append(instances, inst)
	}

	// Plan every document first, then emit them in shuffled order.
	// Interleaving matters: document IDs must carry no information about
	// relevance, otherwise deterministic tie-breaking on DocID would
	// systematically favour (or punish) relevant documents on the exact
	// score ties a synthetic corpus produces.
	type docJob struct {
		inst  *Instance // nil for distractors and near-misses
		q     *Query    // relevance target (inst != nil) …
		near  *Query    // … or near-miss topic source …
		plant *Query    // … or alias-noise plant
	}
	mentions := make(map[string]map[kb.NodeID]int)
	totalRel := 0
	jobs := make([]docJob, 0, g.p.NumDocs)
	for _, job := range relJobs {
		q := &job.inst.Queries[job.qi]
		mentions[q.ID] = make(map[kb.NodeID]int)
		for d := 0; d < q.NumRelevant; d++ {
			jobs = append(jobs, docJob{inst: job.inst, q: q})
			totalRel++
		}
		// Near-misses: documents about the query's topic that do NOT
		// satisfy the query's intent (and are judged non-relevant).
		// They mention the same articles but almost never carry the
		// user's vocabulary — relevance is narrower than topicality,
		// which is precisely why expansion features alone (Q_X) cannot
		// rank well while the anchored three-part query can.
		nNear := int(math.Round(g.p.NearMissFactor * float64(q.NumRelevant)))
		for d := 0; d < nNear; d++ {
			jobs = append(jobs, docJob{near: q})
		}
	}
	if totalRel >= g.p.NumDocs {
		return nil, fmt.Errorf("dataset: %s: %d relevant docs exceed collection size %d", g.p.Name, totalRel, g.p.NumDocs)
	}
	if len(jobs) >= g.p.NumDocs {
		return nil, fmt.Errorf("dataset: %s: %d relevant+near-miss docs exceed collection size %d", g.p.Name, len(jobs), g.p.NumDocs)
	}

	// Alias-noise plant jobs: distractor documents that will carry a
	// query's alias vocabulary without being relevant.
	var plants []*Query
	for _, inst := range instances {
		for qi := range inst.Queries {
			q := &inst.Queries[qi]
			n := int(math.Round(g.p.AliasNoiseFactor * q.AliasDocProb * float64(max(q.NumRelevant, 4))))
			for i := 0; i < n; i++ {
				plants = append(plants, q)
			}
		}
	}
	numDistractors := g.p.NumDocs - len(jobs)
	if len(plants) > numDistractors {
		plants = plants[:numDistractors]
	}
	for d := 0; d < numDistractors; d++ {
		var plant *Query
		if d < len(plants) {
			plant = plants[d]
		}
		jobs = append(jobs, docJob{plant: plant})
	}

	// Query-topic set, so topical distractors are drawn from elsewhere.
	queryTopics := make(map[int]bool, needed)
	for _, inst := range instances {
		for _, q := range inst.Queries {
			queryTopics[q.Topic] = true
		}
	}
	var freeTopics []int
	for t := range g.world.Topics {
		if !queryTopics[t] {
			freeTopics = append(freeTopics, t)
		}
	}
	g.queryTopicsByDomain = make(map[int][]int)
	for t := range queryTopics {
		d := g.world.Topics[t].Domain
		g.queryTopicsByDomain[d] = append(g.queryTopicsByDomain[d], t)
	}
	for _, ts := range g.queryTopicsByDomain {
		sort.Ints(ts) // map iteration order must not leak into the docs
	}

	g.rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	nearMentions := make(map[kb.NodeID]int) // discarded; near-misses never feed the ground truth
	for _, job := range jobs {
		name := g.nextDocName()
		switch {
		case job.inst != nil:
			g.addDoc(name, g.topicalDocText(job.q, mentions[job.q.ID], false))
			job.inst.Qrels.AddJudgment(job.q.ID, name)
		case job.near != nil:
			g.addDoc(name, g.topicalDocText(job.near, nearMentions, true))
		default:
			g.addDoc(name, g.distractorDocText(freeTopics, job.plant))
		}
	}

	ix := g.ixb.Build()
	for _, inst := range instances {
		inst.Index = ix
		for qi := range inst.Queries {
			q := &inst.Queries[qi]
			inst.GroundTruth[q.ID] = groundTruthFeatures(g.world.Graph, mentions[q.ID], q.Entities)
		}
	}
	return instances, nil
}

// pickZeroRelevant selects which query indices get no relevant docs.
func (g *generator) pickZeroRelevant(qs QuerySetProfile) map[int]bool {
	zero := make(map[int]bool, qs.ZeroRelevantQueries)
	if qs.ZeroRelevantQueries <= 0 {
		return zero
	}
	perm := g.rng.Perm(qs.NumQueries)
	for _, i := range perm[:min(qs.ZeroRelevantQueries, qs.NumQueries)] {
		zero[i] = true
	}
	return zero
}

// makeQuery draws a query over the given topic: alias-heavy text, manual
// entities, difficulty parameters and relevant count.
func (g *generator) makeQuery(qs QuerySetProfile, i, topicID int) Query {
	t := &g.world.Topics[topicID]
	q := Query{
		ID:    fmt.Sprintf("%s-%02d", qs.IDPrefix, i+1),
		Topic: topicID,
	}
	// Text: 2–3 alias terms — the user phrases the need entirely in
	// their own vocabulary (the paper's vocabulary mismatch).
	nAlias := 2 + g.rng.Intn(2)
	if nAlias > len(t.AliasTerms) {
		nAlias = len(t.AliasTerms)
	}
	perm := g.rng.Perm(len(t.AliasTerms))
	words := make([]string, 0, nAlias)
	for _, ai := range perm[:nAlias] {
		words = append(words, t.AliasTerms[ai])
	}
	q.Text = strings.Join(words, " ")

	// Manual entities: the topic's entity article, occasionally a second
	// prominent article.
	q.Entities = []kb.NodeID{t.Entity()}
	if len(t.Articles) > 1 && g.rng.Float64() < 0.25 {
		q.Entities = append(q.Entities, t.Articles[1])
	}

	nDecoy := 3 + g.rng.Intn(3)
	for i := 0; i < nDecoy; i++ {
		q.DecoyTerms = append(q.DecoyTerms, g.world.Background[g.rng.Intn(len(g.world.Background))])
	}

	q.TitleMentionProb = qs.TitleMentionLow + g.rng.Float64()*(qs.TitleMentionHigh-qs.TitleMentionLow)
	q.AliasDocProb = qs.AliasDocLow + g.rng.Float64()*(qs.AliasDocHigh-qs.AliasDocLow)

	rel := int(math.Round(g.rng.NormFloat64()*qs.StdRelevant + qs.MeanRelevant))
	if rel < qs.MinRelevant {
		rel = qs.MinRelevant
	}
	if capRel := int(qs.MeanRelevant * 3); rel > capRel && capRel > 0 {
		rel = capRel
	}
	q.NumRelevant = rel
	return q
}

func (g *generator) nextDocName() string {
	g.docSeq++
	return fmt.Sprintf("%s%07d", g.p.QuerySets[0].IDPrefix, g.docSeq)
}

// topicalDocText composes a caption about q's topic and records which
// articles it mentions. Near-miss documents (nearMiss true) use the same
// topical machinery but almost never the query's alias vocabulary: they
// are about the subject without answering the user's need.
func (g *generator) topicalDocText(q *Query, mentioned map[kb.NodeID]int, nearMiss bool) string {
	t := &g.world.Topics[q.Topic]
	aliasProb := q.AliasDocProb
	if nearMiss {
		aliasProb *= 0.12
	}
	var segments []string

	if g.rng.Float64() < q.TitleMentionProb {
		m := 1 + g.rng.Intn(3)
		for i := 0; i < m; i++ {
			a := g.sampleArticle(q.Topic)
			mentioned[a]++
			segments = append(segments, g.world.Graph.Title(a))
		}
	}
	nCore := 1 + g.rng.Intn(2)
	for i := 0; i < nCore; i++ {
		segments = append(segments, t.CoreTerms[g.rng.Intn(len(t.CoreTerms))])
	}
	for _, alias := range t.AliasTerms {
		if g.rng.Float64() < aliasProb {
			segments = append(segments, alias)
		}
	}
	g.maybeMentionHub(&segments)
	g.appendNoise(&segments)
	g.rng.Shuffle(len(segments), func(i, j int) { segments[i], segments[j] = segments[j], segments[i] })
	return strings.Join(segments, " ")
}

// maybeMentionHub name-drops a generic hub article: captions of every
// kind mention ubiquitous entities, which is exactly why hub titles are
// worthless expansion features.
func (g *generator) maybeMentionHub(segments *[]string) {
	hubs := g.world.Hubs
	if len(hubs) > 0 && g.rng.Float64() < 0.3 {
		*segments = append(*segments, g.world.Graph.Title(hubs[g.rng.Intn(len(hubs))]))
	}
}

// distractorDocText composes a non-relevant caption: usually about a
// non-query topic (optionally mentioning a same-domain article — which
// may belong to a query topic: the hard negatives), sometimes pure
// noise; plant, when non-nil, injects that query's alias vocabulary.
func (g *generator) distractorDocText(freeTopics []int, plant *Query) string {
	var segments []string
	if len(freeTopics) > 0 && g.rng.Float64() < 0.75 {
		topicID := freeTopics[g.rng.Intn(len(freeTopics))]
		t := &g.world.Topics[topicID]
		if g.rng.Float64() < 0.5 {
			segments = append(segments, g.world.Graph.Title(g.sampleArticle(topicID)))
		}
		nCore := 2 + g.rng.Intn(3)
		for i := 0; i < nCore; i++ {
			segments = append(segments, t.CoreTerms[g.rng.Intn(len(t.CoreTerms))])
		}
		for k := 0; k < 2; k++ {
			if g.rng.Float64() >= g.p.CrossTopicMentionProb {
				continue
			}
			// Popularity bias: cross-references land on queried (popular)
			// topics most of the time.
			dom := &g.world.Domains[t.Domain]
			var other int
			if qts := g.queryTopicsByDomain[t.Domain]; len(qts) > 0 && g.rng.Float64() < 0.65 {
				other = qts[g.rng.Intn(len(qts))]
			} else {
				other = dom.Topics[g.rng.Intn(len(dom.Topics))]
			}
			if other == topicID {
				continue
			}
			// Cross-references name-drop the head entity about a third
			// of the time and an arbitrary article otherwise — tail
			// titles, too, occur outside relevant documents.
			a := g.sampleCrossMention(other)
			if g.rng.Float64() < 0.65 {
				a = g.sampleArticle(other)
			}
			segments = append(segments, g.world.Graph.Title(a))
			// Cross-references often name several entities of the
			// referenced subject in one breath.
			if g.rng.Float64() < 0.5 {
				segments = append(segments, g.world.Graph.Title(g.sampleArticle(other)))
			}
		}
	}
	if plant != nil {
		t := &g.world.Topics[plant.Topic]
		n := 3
		perm := g.rng.Perm(len(t.AliasTerms))
		for _, ai := range perm[:min(n, len(t.AliasTerms))] {
			segments = append(segments, t.AliasTerms[ai])
		}
		// Planted documents are terse: like real false positives they
		// contain little beyond the misleading vocabulary, which also
		// lets them win Dirichlet ties against longer relevant captions.
		// They share the query's decoy vocabulary: they are all about
		// the same wrong sense of the query.
		nd := 2 + g.rng.Intn(2)
		for i := 0; i < nd && i < len(plant.DecoyTerms); i++ {
			segments = append(segments, plant.DecoyTerms[i])
		}
		// Some alias-noise documents also name-drop the topic's head
		// entity ("cable car toy museum"): hard negatives that fool the
		// user query and the entity title alike, but not the tail
		// expansion features.
		if g.rng.Float64() < 0.22 {
			segments = append(segments, g.world.Graph.Title(g.sampleCrossMention(plant.Topic)))
		}
		g.appendNoiseN(&segments, 2, 5)
	} else {
		g.appendNoise(&segments)
	}
	g.maybeMentionHub(&segments)
	g.rng.Shuffle(len(segments), func(i, j int) { segments[i], segments[j] = segments[j], segments[i] })
	return strings.Join(segments, " ")
}

func (g *generator) appendNoise(segments *[]string) { g.appendNoiseN(segments, 4, 10) }

func (g *generator) appendNoiseN(segments *[]string, lo, hi int) {
	n := lo + g.rng.Intn(hi-lo+1)
	for i := 0; i < n; i++ {
		*segments = append(*segments, g.world.Background[g.rng.Intn(len(g.world.Background))])
	}
}

// sampleArticle draws an article of the topic under the in-topic Zipf
// popularity distribution (article 0, the entity, is the head).
func (g *generator) sampleArticle(topicID int) kb.NodeID {
	return g.sampleArticleZipf(topicID, g.p.MentionZipf)
}

// sampleCrossMention draws the article another topic's document
// name-drops; the steeper exponent concentrates on the head entity.
func (g *generator) sampleCrossMention(topicID int) kb.NodeID {
	return g.sampleArticleZipf(topicID, g.p.CrossMentionZipf)
}

// zipfKey caches one cumulative distribution per (topic, exponent).
type zipfKey struct {
	topic int
	exp   float64
}

func (g *generator) sampleArticleZipf(topicID int, exp float64) kb.NodeID {
	t := &g.world.Topics[topicID]
	key := zipfKey{topicID, exp}
	cum, ok := g.zipfCum[key]
	if !ok {
		cum = make([]float64, len(t.Articles))
		total := 0.0
		for i := range t.Articles {
			total += 1 / math.Pow(float64(i+1), exp)
			cum[i] = total
		}
		for i := range cum {
			cum[i] /= total
		}
		g.zipfCum[key] = cum
	}
	x := g.rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return t.Articles[lo]
}

// groundTruthFeatures ranks the mentioned articles by mention count and
// drops the query nodes themselves. Single-word titles are excluded:
// their terms come from the shared content pool, so as retrieval
// features they are ambiguous — an optimal query graph (one selected for
// precision, as in the published ground truth) would not contain them.
func groundTruthFeatures(g *kb.Graph, mentioned map[kb.NodeID]int, entities []kb.NodeID) []core.Feature {
	isEntity := make(map[kb.NodeID]bool, len(entities))
	for _, e := range entities {
		isEntity[e] = true
	}
	feats := make([]core.Feature, 0, len(mentioned))
	for a, c := range mentioned {
		if isEntity[a] {
			continue
		}
		if !strings.Contains(g.Title(a), " ") {
			continue
		}
		// Squared mention counts concentrate the query mass on the
		// strongest features while the tail still adds recall — closer
		// to a precision-optimal graph than linear weighting.
		feats = append(feats, core.Feature{Article: a, Weight: float64(c) * float64(c)})
	}
	core.SortFeatures(feats)
	const maxGT = 12
	if len(feats) > maxGT {
		feats = feats[:maxGT]
	}
	return feats
}

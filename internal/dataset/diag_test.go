package dataset

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/wikigen"
)

// TestDiagQLQ prints, for the first few queries of a default-scale Image
// CLEF instance, how many documents match all query alias terms and how
// many of those are relevant. Run with -v to see the numbers; the test
// itself only asserts generation succeeds. It exists to sanity-check the
// plant-vs-relevant balance that sets the QL_Q baseline.
func TestDiagQLQ(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	world := wikigen.MustGenerate(wikigen.DefaultConfig())
	inst, err := BuildImageCLEF(world, ScaleDefault)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis.Standard()
	for qi := 0; qi < 5; qi++ {
		q := &inst.Queries[qi]
		terms := a.AnalyzeTerms(q.Text)
		// Count docs containing every query term.
		counts := make(map[int32]int) // docID -> matched terms
		for _, term := range terms {
			p := inst.Index.PostingsFor(term)
			if p == nil {
				t.Logf("%s: term %q OOV", q.ID, term)
				continue
			}
			for _, d := range p.Docs {
				counts[int32(d)]++
			}
		}
		full, fullRel := 0, 0
		rel := inst.Qrels[q.ID]
		for d, c := range counts {
			if c == len(terms) {
				full++
				if rel[inst.Index.DocName(index.DocID(d))] {
					fullRel++
				}
			}
		}
		t.Logf("%s %q: %d terms, rel=%d, docs-matching-all=%d (of which relevant=%d)",
			q.ID, q.Text, len(terms), q.NumRelevant, full, fullRel)
		node := search.BagOfWords(a, q.Text)
		res := search.NewSearcher(inst.Index).Search(node, 10)
		hits := 0
		for _, r := range res {
			if rel[r.Name] {
				hits++
			}
			tfs := make([]int32, len(terms))
			for ti, term := range terms {
				p := inst.Index.PostingsFor(term)
				if p == nil {
					continue
				}
				for i, d := range p.Docs {
					if d == r.Doc {
						tfs[ti] = p.Freqs[i]
					}
				}
			}
			t.Logf("  doc %s rel=%v len=%d score=%.4f tfs=%v",
				r.Name, rel[r.Name], inst.Index.DocLen(r.Doc), r.Score, tfs)
		}
		t.Logf("  QL_Q P@10 = %d/10", hits)
	}
}

package dataset

import (
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/entitylink"
	"repro/internal/wikigen"
)

// LinkerOptions controls the automatically built entity linker.
type LinkerOptions struct {
	// Seed drives the ambiguity assignment.
	Seed int64
	// AliasAmbiguity is the fraction of topics whose leading alias is
	// also a (more common) surface form of a different topic's entity —
	// the source of genuine linking errors in the (A) runs. The paper's
	// Dexter+Alchemy stack reaches ~80% linking precision, which an
	// ambiguity around 0.2 reproduces.
	AliasAmbiguity float64
}

// DefaultLinkerOptions reproduces the paper's ~80% linking precision.
func DefaultLinkerOptions() LinkerOptions {
	return LinkerOptions{Seed: 7, AliasAmbiguity: 0.2}
}

// BuildLinker assembles the Dexter-like dictionary for a world: every
// article title is a surface form of its article; every topic's alias
// terms are surface forms of the topic's entity article (the anchor-text
// dictionary); and a fraction of aliases are deliberately ambiguous —
// they also name a different topic's entity with higher commonness, so
// greedy commonness disambiguation links them wrongly, exactly like a
// real dictionary linker on polysemous anchors.
func BuildLinker(world *wikigen.World, opts LinkerOptions) *entitylink.Linker {
	rng := rand.New(rand.NewSource(opts.Seed))
	dict := entitylink.NewDictionary(analysis.Standard())

	for ti := range world.Topics {
		t := &world.Topics[ti]
		for i, a := range t.Articles {
			// Commonness decays with popularity rank so the fallback
			// recognizer prefers prominent articles.
			dict.AddTitle(world.Graph.Title(a), a, 1/float64(i+1))
		}
		for _, alias := range t.AliasTerms {
			dict.AddSurface(alias, t.Entity(), 0.6)
		}
	}
	// Ambiguity pass: confuse the leading alias of a sample of topics
	// with a random other topic's entity at higher commonness.
	for ti := range world.Topics {
		if rng.Float64() >= opts.AliasAmbiguity {
			continue
		}
		other := rng.Intn(len(world.Topics))
		if other == ti {
			continue
		}
		alias := world.Topics[ti].AliasTerms[0]
		dict.AddSurface(alias, world.Topics[other].Entity(), 0.8)
	}
	return entitylink.NewLinker(dict)
}

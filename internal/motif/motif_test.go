package motif

import (
	"reflect"
	"testing"

	"repro/internal/kb"
)

// fixture builds a small KB with known motif structure around query
// article Q:
//
//	categories: DOM (domain), TOP (topic, child of DOM), SUB (child of TOP),
//	            FAC (facet, child of DOM)
//	articles:
//	  Q    ∈ {TOP, FAC}          — the query node
//	  TRI  ∈ {TOP, FAC}, Q↔TRI   — triangular match (superset of Q's cats)
//	  TRI2 ∈ {TOP, FAC, SUB}, Q↔TRI2 — triangular (2 shared) AND square
//	                               (SUB inside TOP... via TOP parent SUB)
//	  SQ   ∈ {SUB}, Q↔SQ         — square only (TOP is parent of SUB)
//	  SQ2  ∈ {DOM}, Q↔SQ2        — square only (DOM is parent of TOP and FAC: 2 instances)
//	  ONEWAY ∈ {TOP, FAC}, Q→ONEWAY only — fails reciprocity
//	  SUBSET ∈ {TOP}, Q↔SUBSET   — fails triangle (missing FAC), no parent rel
//	  FAR  ∈ {TOP, FAC}, no links — fails link condition
type fixture struct {
	g   *kb.Graph
	ids map[string]kb.NodeID
}

func build(t *testing.T) fixture {
	t.Helper()
	b := kb.NewBuilder(16)
	ids := map[string]kb.NodeID{}
	cat := func(n string) {
		id, err := b.AddCategory("Category:" + n)
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
	}
	art := func(n string) {
		id, err := b.AddArticle(n)
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
	}
	for _, c := range []string{"DOM", "TOP", "SUB", "FAC"} {
		cat(c)
	}
	for _, a := range []string{"Q", "TRI", "TRI2", "SQ", "SQ2", "ONEWAY", "SUBSET", "FAR"} {
		art(a)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddContainment(ids["DOM"], ids["TOP"]))
	must(b.AddContainment(ids["DOM"], ids["FAC"]))
	must(b.AddContainment(ids["TOP"], ids["SUB"]))
	member := func(a string, cats ...string) {
		for _, c := range cats {
			must(b.AddMembership(ids[a], ids[c]))
		}
	}
	member("Q", "TOP", "FAC")
	member("TRI", "TOP", "FAC")
	member("TRI2", "TOP", "FAC", "SUB")
	member("SQ", "SUB")
	member("SQ2", "DOM")
	member("ONEWAY", "TOP", "FAC")
	member("SUBSET", "TOP")
	member("FAR", "TOP", "FAC")
	link2 := func(a, b2 string) {
		must(b.AddLink(ids[a], ids[b2]))
		must(b.AddLink(ids[b2], ids[a]))
	}
	link2("Q", "TRI")
	link2("Q", "TRI2")
	link2("Q", "SQ")
	link2("Q", "SQ2")
	link2("Q", "SUBSET")
	must(b.AddLink(ids["Q"], ids["ONEWAY"]))
	return fixture{g: b.Build(), ids: ids}
}

// matchMap converts matches to title→count for readable assertions.
func (f fixture) matchMap(ms []Match) map[string]int {
	out := map[string]int{}
	for _, m := range ms {
		out[f.g.Title(m.Article)] = m.Motifs
	}
	return out
}

func TestTriangularMotif(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	got := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetT))
	// TRI shares exactly {TOP, FAC} (2 instances); TRI2 is a superset
	// with the same 2 shared categories.
	want := map[string]int{"TRI": 2, "TRI2": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("triangular matches = %v, want %v", got, want)
	}
}

func TestSquareMotif(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	got := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetS))
	// SQ: Q's TOP is parent of SQ's SUB → 1 instance.
	// SQ2: SQ2's DOM is parent of Q's TOP and of Q's FAC → 2 instances.
	// TRI2: Q's TOP is parent of TRI2's SUB → 1 instance.
	want := map[string]int{"SQ": 1, "SQ2": 2, "TRI2": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("square matches = %v, want %v", got, want)
	}
}

func TestCombinedMotifSumsCounts(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	got := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetTS))
	want := map[string]int{"TRI": 2, "TRI2": 3, "SQ": 1, "SQ2": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("T&S matches = %v, want %v", got, want)
	}
}

func TestMatchesSortedByWeight(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	ms := m.Expand([]kb.NodeID{f.ids["Q"]}, SetTS)
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Motifs < ms[i].Motifs {
			t.Fatalf("matches not sorted by |m_a|: %v", ms)
		}
		if ms[i-1].Motifs == ms[i].Motifs && ms[i-1].Article >= ms[i].Article {
			t.Fatalf("ties not sorted by article: %v", ms)
		}
	}
}

func TestReciprocityRequired(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	got := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetTS))
	if _, ok := got["ONEWAY"]; ok {
		t.Error("one-way linked article must not match")
	}
	if _, ok := got["FAR"]; ok {
		t.Error("unlinked article must not match")
	}
	// Ablation: dropping reciprocity admits ONEWAY.
	m.RequireReciprocal = false
	got = f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetTS))
	if _, ok := got["ONEWAY"]; !ok {
		t.Error("single-link ablation should admit ONEWAY")
	}
}

func TestCategoryConditionRequired(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	got := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetT))
	if _, ok := got["SUBSET"]; ok {
		t.Error("article with a strict subset of Q's categories must not triangle-match")
	}
	// Ablation: no category conditions → every reciprocal neighbour
	// matches with count 1.
	m.UseCategories = false
	got = f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetT))
	want := map[string]int{"TRI": 1, "TRI2": 1, "SQ": 1, "SQ2": 1, "SUBSET": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("no-category ablation = %v, want %v", got, want)
	}
}

func TestQueryNodesNeverExpand(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	// Using Q and TRI as query nodes: neither may appear as a feature.
	got := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"], f.ids["TRI"]}, SetTS))
	if _, ok := got["Q"]; ok {
		t.Error("query node Q reported as expansion")
	}
	if _, ok := got["TRI"]; ok {
		t.Error("query node TRI reported as expansion")
	}
}

func TestMultipleQueryNodesAccumulate(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	one := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"]}, SetT))
	// TRI and TRI2 are reciprocal with Q; querying from both Q and SUBSET
	// can only increase counts for articles matched from both.
	both := f.matchMap(m.Expand([]kb.NodeID{f.ids["Q"], f.ids["SUBSET"]}, SetT))
	for a, c := range one {
		if a == "SUBSET" {
			continue
		}
		if both[a] < c {
			t.Errorf("count for %s decreased with more query nodes: %d < %d", a, both[a], c)
		}
	}
}

func TestCategoryQueryNodeIgnored(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	got := m.Expand([]kb.NodeID{f.ids["TOP"]}, SetTS)
	if len(got) != 0 {
		t.Errorf("category query node should yield no matches, got %v", got)
	}
}

func TestEmptyQueryNodes(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	if got := m.Expand(nil, SetTS); len(got) != 0 {
		t.Errorf("no query nodes should yield no matches, got %v", got)
	}
}

func TestArticleWithNoCategories(t *testing.T) {
	b := kb.NewBuilder(4)
	q, _ := b.AddArticle("q")
	e, _ := b.AddArticle("e")
	c, _ := b.AddCategory("Category:c")
	if err := b.AddMembership(e, c); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLink(q, e); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLink(e, q); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	m := NewMatcher(g)
	// Q has no categories: the paper's triangle requires shared
	// categories, so no match; square requires a parent pair, none.
	if got := m.Expand([]kb.NodeID{q}, SetTS); len(got) != 0 {
		t.Errorf("category-less query node matched: %v", got)
	}
}

func TestSetStringAndHas(t *testing.T) {
	if SetT.String() != "T" || SetS.String() != "S" || SetTS.String() != "T&S" {
		t.Error("Set.String wrong")
	}
	if Set(0).String() != "none" {
		t.Error("empty set should print none")
	}
	if !SetTS.Has(Triangular) || !SetTS.Has(Square) || SetT.Has(Square) {
		t.Error("Set.Has wrong")
	}
}

func TestTriangularInstancesTable(t *testing.T) {
	mk := func(xs ...int) []kb.NodeID {
		out := make([]kb.NodeID, len(xs))
		for i, x := range xs {
			out[i] = kb.NodeID(x)
		}
		return out
	}
	tests := []struct {
		q, e []kb.NodeID
		want int
	}{
		{mk(), mk(1, 2), 0},        // empty query cats never match
		{mk(1), mk(1), 1},          // exact
		{mk(1, 2), mk(1, 2), 2},    // exact, two shared
		{mk(1, 2), mk(1, 2, 3), 2}, // superset
		{mk(1, 2), mk(1), 0},       // subset fails
		{mk(1, 3), mk(1, 2), 0},    // partial overlap fails
		{mk(5), mk(1, 2, 5), 1},    // superset with gap
	}
	for _, tc := range tests {
		if got := triangularInstances(tc.q, tc.e); got != tc.want {
			t.Errorf("triangularInstances(%v, %v) = %d, want %d", tc.q, tc.e, got, tc.want)
		}
	}
}

// TestExpandSkipsInvalidQueryNode feeds a bogus entity-link ID
// (kb.Invalid) through motif search: expansion must neither panic nor
// change the matches produced by the valid query nodes.
func TestExpandSkipsInvalidQueryNode(t *testing.T) {
	f := build(t)
	m := NewMatcher(f.g)
	want := m.Expand([]kb.NodeID{f.ids["Q"]}, SetTS)
	got := m.Expand([]kb.NodeID{kb.Invalid, f.ids["Q"], -42}, SetTS)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("with invalid IDs: %v, want %v", got, want)
	}
	if got := m.Expand([]kb.NodeID{kb.Invalid}, SetTS); len(got) != 0 {
		t.Errorf("all-invalid query nodes: %v, want none", got)
	}
}

package motif

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kb"
)

// randomKB builds a random small KB for property testing.
func randomKB(rng *rand.Rand) (*kb.Graph, []kb.NodeID) {
	nArt := 4 + rng.Intn(20)
	nCat := 2 + rng.Intn(6)
	b := kb.NewBuilder(nArt + nCat)
	arts := make([]kb.NodeID, nArt)
	cats := make([]kb.NodeID, nCat)
	for i := range arts {
		arts[i], _ = b.AddArticle("a" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	for i := range cats {
		cats[i], _ = b.AddCategory("Category:c" + string(rune('a'+i)))
	}
	for i := 0; i < nArt*4; i++ {
		from, to := arts[rng.Intn(nArt)], arts[rng.Intn(nArt)]
		if from != to {
			_ = b.AddLink(from, to)
		}
	}
	for i := 0; i < nArt*2; i++ {
		_ = b.AddMembership(arts[rng.Intn(nArt)], cats[rng.Intn(nCat)])
	}
	for i := 0; i < nCat; i++ {
		p, c := cats[rng.Intn(nCat)], cats[rng.Intn(nCat)]
		if p != c {
			_ = b.AddContainment(p, c)
		}
	}
	return b.Build(), arts
}

// TestMatcherSoundnessProperty verifies on random graphs that every
// match reported by the matcher actually satisfies the motif's formal
// conditions, checked independently against the graph primitives.
func TestMatcherSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, arts := randomKB(rng)
		q := arts[rng.Intn(len(arts))]
		m := NewMatcher(g)

		verifyTriangle := func(e kb.NodeID) bool {
			if !g.Reciprocal(q, e) {
				return false
			}
			for _, c := range g.Categories(q) {
				if !g.InCategory(e, c) {
					return false
				}
			}
			return len(g.Categories(q)) > 0
		}
		verifySquare := func(e kb.NodeID) bool {
			if !g.Reciprocal(q, e) {
				return false
			}
			for _, cq := range g.Categories(q) {
				for _, ce := range g.Categories(e) {
					if cq == ce {
						continue
					}
					if g.IsParentCategory(ce, cq) || g.IsParentCategory(cq, ce) {
						return true
					}
				}
			}
			return false
		}

		for _, match := range m.Expand([]kb.NodeID{q}, SetT) {
			if !verifyTriangle(match.Article) {
				return false
			}
			if match.Motifs != len(g.Categories(q)) {
				return false // one instance per (shared ⊇) query category
			}
		}
		for _, match := range m.Expand([]kb.NodeID{q}, SetS) {
			if !verifySquare(match.Article) {
				return false
			}
			if match.Motifs <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMatcherCompletenessProperty verifies the other direction: every
// article satisfying a motif's conditions is reported.
func TestMatcherCompletenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, arts := randomKB(rng)
		q := arts[rng.Intn(len(arts))]
		m := NewMatcher(g)
		reported := map[kb.NodeID]bool{}
		for _, match := range m.Expand([]kb.NodeID{q}, SetT) {
			reported[match.Article] = true
		}
		qCats := g.Categories(q)
		if len(qCats) == 0 {
			return len(reported) == 0
		}
		ok := true
		g.Articles(func(e kb.NodeID) bool {
			if e == q || !g.Reciprocal(q, e) {
				return true
			}
			superset := true
			for _, c := range qCats {
				if !g.InCategory(e, c) {
					superset = false
					break
				}
			}
			if superset && !reported[e] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCombinedCountsAdditiveProperty: |m_a| under T&S equals the sum of
// the counts under T and S separately.
func TestCombinedCountsAdditiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, arts := randomKB(rng)
		q := arts[rng.Intn(len(arts))]
		m := NewMatcher(g)
		sum := map[kb.NodeID]int{}
		for _, set := range []Set{SetT, SetS} {
			for _, match := range m.Expand([]kb.NodeID{q}, set) {
				sum[match.Article] += match.Motifs
			}
		}
		combined := map[kb.NodeID]int{}
		for _, match := range m.Expand([]kb.NodeID{q}, SetTS) {
			combined[match.Article] = match.Motifs
		}
		if len(sum) != len(combined) {
			return false
		}
		for a, c := range sum {
			if combined[a] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package motif

import (
	"sort"

	"repro/internal/kb"
)

// Cycle is a closed sequence of distinct nodes (paper Section 2.1:
// "a closed sequence of nodes, either articles or categories, with at
// least one edge among each pair of consecutive nodes"). Nodes[0] is the
// query node the enumeration started from; the closing edge
// Nodes[len-1]→Nodes[0] is implicit.
type Cycle struct {
	Nodes []kb.NodeID
}

// Len returns the cycle length (number of nodes).
func (c Cycle) Len() int { return len(c.Nodes) }

// CycleEnumerator enumerates simple cycles of bounded length through a
// query node within an induced subgraph of the KB — the structural
// analysis tool of the paper's Section 2.1 (Figure 2). Adjacency is
// undirected: two nodes are adjacent when any edge (hyperlink in either
// direction, membership, or containment) connects them.
type CycleEnumerator struct {
	g *kb.Graph
	// allowed restricts the search to an induced subgraph; nil means the
	// whole graph (only sensible for tiny graphs).
	allowed map[kb.NodeID]bool
	// ReciprocalArticleEdges, when set, admits an article-article edge
	// into the undirected view only when the hyperlink is reciprocated.
	// The paper's cycle definition accepts any edge, but its Wikipedia
	// subgraphs are far sparser than a synthetic topic cluster; requiring
	// reciprocity restores a comparable edge density, so the per-length
	// statistics stay informative instead of saturating (see DESIGN.md).
	ReciprocalArticleEdges bool
}

// NewCycleEnumerator returns an enumerator over the subgraph induced by
// allowed (plus whatever query node is passed to Enumerate).
func NewCycleEnumerator(g *kb.Graph, allowed map[kb.NodeID]bool) *CycleEnumerator {
	return &CycleEnumerator{g: g, allowed: allowed}
}

// InducedNodes builds the allowed-node set the paper's analysis uses for
// one query graph: the query node, the expansion articles, the categories
// of all those articles and the direct parents of those categories.
func InducedNodes(g *kb.Graph, queryNode kb.NodeID, expansion []kb.NodeID) map[kb.NodeID]bool {
	allowed := map[kb.NodeID]bool{queryNode: true}
	articles := append([]kb.NodeID{queryNode}, expansion...)
	for _, a := range articles {
		allowed[a] = true
		if g.Kind(a) != kb.KindArticle {
			continue
		}
		for _, c := range g.Categories(a) {
			allowed[c] = true
			for _, p := range g.ParentCategories(c) {
				allowed[p] = true
			}
		}
	}
	return allowed
}

// neighbors returns the undirected neighbours of n restricted to the
// allowed set.
func (ce *CycleEnumerator) neighbors(n kb.NodeID) []kb.NodeID {
	var out []kb.NodeID
	add := func(ids []kb.NodeID) {
		for _, id := range ids {
			if ce.allowed == nil || ce.allowed[id] {
				out = append(out, id)
			}
		}
	}
	if ce.g.Kind(n) == kb.KindArticle {
		if ce.ReciprocalArticleEdges {
			for _, to := range ce.g.OutLinks(n) {
				if (ce.allowed == nil || ce.allowed[to]) && ce.g.HasLink(to, n) {
					out = append(out, to)
				}
			}
		} else {
			add(ce.g.OutLinks(n))
			add(ce.g.InLinks(n))
		}
		add(ce.g.Categories(n))
	} else {
		add(ce.g.Members(n))
		add(ce.g.ParentCategories(n))
		add(ce.g.ChildCategories(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// dedupe (a node can be both out- and in-neighbour)
	w := 0
	for i, id := range out {
		if i == 0 || id != out[w-1] {
			out[w] = id
			w++
		}
	}
	return out[:w]
}

// Enumerate returns all simple cycles of length minLen..maxLen through
// start. Each cycle is reported once: traversal direction is canonicalised
// by requiring the second node's ID to be smaller than the last node's.
func (ce *CycleEnumerator) Enumerate(start kb.NodeID, minLen, maxLen int) []Cycle {
	if minLen < 3 {
		minLen = 3
	}
	var cycles []Cycle
	onPath := map[kb.NodeID]bool{start: true}
	path := []kb.NodeID{start}
	var dfs func(cur kb.NodeID)
	dfs = func(cur kb.NodeID) {
		for _, nxt := range ce.neighbors(cur) {
			if nxt == start {
				if len(path) >= minLen && path[1] < path[len(path)-1] {
					cycles = append(cycles, Cycle{Nodes: append([]kb.NodeID(nil), path...)})
				}
				continue
			}
			if onPath[nxt] || len(path) == maxLen {
				continue
			}
			onPath[nxt] = true
			path = append(path, nxt)
			dfs(nxt)
			path = path[:len(path)-1]
			delete(onPath, nxt)
		}
	}
	dfs(start)
	return cycles
}

// edgeMultiplicity counts the edges between two nodes, honouring that two
// consecutive articles can be connected by two (directed) hyperlinks
// while membership and containment contribute at most one edge.
func (ce *CycleEnumerator) edgeMultiplicity(a, b kb.NodeID) int {
	ka, kc := ce.g.Kind(a), ce.g.Kind(b)
	switch {
	case ka == kb.KindArticle && kc == kb.KindArticle:
		n := 0
		if ce.g.HasLink(a, b) {
			n++
		}
		if ce.g.HasLink(b, a) {
			n++
		}
		return n
	case ka == kb.KindArticle && kc == kb.KindCategory:
		if ce.g.InCategory(a, b) {
			return 1
		}
	case ka == kb.KindCategory && kc == kb.KindArticle:
		if ce.g.InCategory(b, a) {
			return 1
		}
	default:
		if ce.g.IsParentCategory(a, b) || ce.g.IsParentCategory(b, a) {
			return 1
		}
	}
	return 0
}

// LengthStats aggregates the paper's Figure 2 measurements for one cycle
// length.
type LengthStats struct {
	Length int
	Count  int
	// CategoryRatio is the mean fraction of category nodes per cycle
	// (Figure 2b; the paper observes ≈ 1/3).
	CategoryRatio float64
	// ExtraEdgeDensity is the mean of (edges − L) / L per cycle, where
	// edges counts every edge between consecutive nodes (two consecutive
	// articles may contribute two) — Figure 2c.
	ExtraEdgeDensity float64
}

// Analyze computes per-length statistics over cycles.
func (ce *CycleEnumerator) Analyze(cycles []Cycle) map[int]LengthStats {
	agg := make(map[int]*LengthStats)
	for _, c := range cycles {
		l := c.Len()
		st, ok := agg[l]
		if !ok {
			st = &LengthStats{Length: l}
			agg[l] = st
		}
		st.Count++
		cats := 0
		edges := 0
		for i, n := range c.Nodes {
			if ce.g.Kind(n) == kb.KindCategory {
				cats++
			}
			next := c.Nodes[(i+1)%len(c.Nodes)]
			edges += ce.edgeMultiplicity(n, next)
		}
		st.CategoryRatio += float64(cats) / float64(l)
		st.ExtraEdgeDensity += float64(edges-l) / float64(l)
	}
	out := make(map[int]LengthStats, len(agg))
	for l, st := range agg {
		st.CategoryRatio /= float64(st.Count)
		st.ExtraEdgeDensity /= float64(st.Count)
		out[l] = *st
	}
	return out
}

// ArticlesOnCycles returns the distinct non-query articles appearing on
// cycles of exactly the given length, sorted by ID. Pass length 0 for all
// lengths.
func (ce *CycleEnumerator) ArticlesOnCycles(cycles []Cycle, length int) []kb.NodeID {
	seen := make(map[kb.NodeID]bool)
	for _, c := range cycles {
		if length != 0 && c.Len() != length {
			continue
		}
		for i, n := range c.Nodes {
			if i == 0 {
				continue // query node
			}
			if ce.g.Kind(n) == kb.KindArticle {
				seen[n] = true
			}
		}
	}
	out := make([]kb.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

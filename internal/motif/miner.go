package motif

import (
	"fmt"
	"sort"

	"repro/internal/kb"
)

// This file implements the paper's stated future work (Section 6): "a
// learning algorithm that is capable of identifying such motifs
// automatically". The miner searches a space of motif templates — each a
// combination of a link condition and a category condition — and scores
// every template against ground-truth query graphs (query node → known
// good expansion articles). Templates are ranked by F-measure of the
// article sets they select, which is exactly the criterion the paper's
// hand-crafted motifs optimise implicitly (precision of the expansion
// features against the optimal query graph, without sacrificing all
// recall).

// LinkCond is the hyperlink condition of a motif template.
type LinkCond uint8

const (
	// LinkAny requires a link q→e.
	LinkAny LinkCond = iota
	// LinkReciprocal requires links q→e and e→q.
	LinkReciprocal
)

// String implements fmt.Stringer.
func (l LinkCond) String() string {
	if l == LinkReciprocal {
		return "reciprocal"
	}
	return "any-link"
}

// CatCond is the category condition of a motif template.
type CatCond uint8

const (
	// CatNone imposes no category condition.
	CatNone CatCond = iota
	// CatShared requires at least one shared category (a length-3 cycle).
	CatShared
	// CatSuperset requires categories(q) ⊆ categories(e) — the paper's
	// triangular condition.
	CatSuperset
	// CatParent requires a category of one node to directly contain a
	// category of the other — the paper's square condition.
	CatParent
)

// String implements fmt.Stringer.
func (c CatCond) String() string {
	switch c {
	case CatShared:
		return "shared-category"
	case CatSuperset:
		return "category-superset"
	case CatParent:
		return "category-parent"
	default:
		return "no-category"
	}
}

// Template is one candidate motif: a link condition plus a category
// condition.
type Template struct {
	Link LinkCond
	Cat  CatCond
}

// String implements fmt.Stringer.
func (t Template) String() string { return fmt.Sprintf("%s+%s", t.Link, t.Cat) }

// AllTemplates enumerates the template space.
func AllTemplates() []Template {
	var out []Template
	for _, l := range []LinkCond{LinkAny, LinkReciprocal} {
		for _, c := range []CatCond{CatNone, CatShared, CatSuperset, CatParent} {
			out = append(out, Template{Link: l, Cat: c})
		}
	}
	return out
}

// GroundTruth is one training example for the miner: a query node and
// the articles its optimal query graph contains.
type GroundTruth struct {
	QueryNode kb.NodeID
	Good      []kb.NodeID
}

// TemplateScore is the evaluation of one template over the ground truth.
type TemplateScore struct {
	Template Template
	// Precision is |selected ∩ good| / |selected|, micro-averaged.
	Precision float64
	// Recall is |selected ∩ good| / |good|, micro-averaged.
	Recall float64
	// F1 is the harmonic mean of the two.
	F1 float64
	// AvgSelected is the mean number of articles the template selects
	// per query — the footprint the paper reports as "expansion features
	// per query".
	AvgSelected float64
}

// Miner scores motif templates against ground-truth query graphs.
type Miner struct {
	g *kb.Graph
}

// NewMiner returns a Miner over g.
func NewMiner(g *kb.Graph) *Miner { return &Miner{g: g} }

// selects reports whether the template admits e as an expansion of q.
func (m *Miner) selects(t Template, q, e kb.NodeID) bool {
	if !m.g.HasLink(q, e) {
		return false
	}
	if t.Link == LinkReciprocal && !m.g.HasLink(e, q) {
		return false
	}
	qCats := m.g.Categories(q)
	eCats := m.g.Categories(e)
	switch t.Cat {
	case CatNone:
		return true
	case CatShared:
		return sharedAny(qCats, eCats)
	case CatSuperset:
		return triangularInstances(qCats, eCats) > 0
	case CatParent:
		n := (&Matcher{g: m.g}).squareInstances(qCats, eCats)
		return n > 0
	}
	return false
}

// sharedAny reports whether two sorted category lists intersect.
func sharedAny(a, b []kb.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Score evaluates every template against the ground truth and returns
// scores sorted by descending F1 (ties: higher precision first).
func (m *Miner) Score(truth []GroundTruth) []TemplateScore {
	var out []TemplateScore
	for _, t := range AllTemplates() {
		var tp, sel, good int
		for _, gt := range truth {
			goodSet := make(map[kb.NodeID]bool, len(gt.Good))
			for _, a := range gt.Good {
				goodSet[a] = true
			}
			good += len(gt.Good)
			for _, e := range m.g.OutLinks(gt.QueryNode) {
				if e == gt.QueryNode {
					continue
				}
				if m.selects(t, gt.QueryNode, e) {
					sel++
					if goodSet[e] {
						tp++
					}
				}
			}
		}
		s := TemplateScore{Template: t}
		if sel > 0 {
			s.Precision = float64(tp) / float64(sel)
		}
		if good > 0 {
			s.Recall = float64(tp) / float64(good)
		}
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
		if len(truth) > 0 {
			s.AvgSelected = float64(sel) / float64(len(truth))
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].F1 != out[j].F1 {
			return out[i].F1 > out[j].F1
		}
		return out[i].Precision > out[j].Precision
	})
	return out
}

// Mine returns the top-k templates by F1. k <= 0 returns all.
func (m *Miner) Mine(truth []GroundTruth, k int) []TemplateScore {
	scores := m.Score(truth)
	if k > 0 && len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

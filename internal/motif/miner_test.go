package motif

import (
	"testing"

	"repro/internal/kb"
)

func TestMinerPrefersStructuredTemplates(t *testing.T) {
	// World where the "good" expansions are exactly the reciprocal
	// same-category neighbours: the miner must rank templates with both
	// conditions above the unconditioned ones.
	f := build(t)
	truth := []GroundTruth{{
		QueryNode: f.ids["Q"],
		Good:      []kb.NodeID{f.ids["TRI"], f.ids["TRI2"]},
	}}
	m := NewMiner(f.g)
	scores := m.Score(truth)
	if len(scores) != len(AllTemplates()) {
		t.Fatalf("scores = %d, want %d", len(scores), len(AllTemplates()))
	}
	best := scores[0].Template
	if best.Link != LinkReciprocal || best.Cat != CatSuperset {
		t.Errorf("best template = %v, want reciprocal+category-superset", best)
	}
	// The unconstrained template must have perfect recall but the lowest
	// precision of the templates that select anything.
	var loose TemplateScore
	for _, s := range scores {
		if s.Template == (Template{Link: LinkAny, Cat: CatNone}) {
			loose = s
		}
	}
	if loose.Recall != 1 {
		t.Errorf("any-link/no-category recall = %f, want 1", loose.Recall)
	}
	if loose.Precision >= scores[0].Precision {
		t.Errorf("loose precision %f should be below best %f", loose.Precision, scores[0].Precision)
	}
}

func TestMinerMetricsConsistent(t *testing.T) {
	f := build(t)
	truth := []GroundTruth{{QueryNode: f.ids["Q"], Good: []kb.NodeID{f.ids["SQ"]}}}
	for _, s := range NewMiner(f.g).Score(truth) {
		if s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 {
			t.Fatalf("metrics out of range: %+v", s)
		}
		if s.F1 > s.Precision+1e-12 && s.F1 > s.Recall+1e-12 {
			t.Fatalf("F1 above both components: %+v", s)
		}
		if s.Precision > 0 && s.Recall > 0 && s.F1 == 0 {
			t.Fatalf("F1 zero with positive components: %+v", s)
		}
	}
}

func TestMineTopK(t *testing.T) {
	f := build(t)
	truth := []GroundTruth{{QueryNode: f.ids["Q"], Good: []kb.NodeID{f.ids["TRI"]}}}
	m := NewMiner(f.g)
	if got := m.Mine(truth, 3); len(got) != 3 {
		t.Errorf("Mine(3) = %d results", len(got))
	}
	if got := m.Mine(truth, 0); len(got) != len(AllTemplates()) {
		t.Errorf("Mine(0) should return all templates")
	}
}

func TestMinerEmptyTruth(t *testing.T) {
	f := build(t)
	for _, s := range NewMiner(f.g).Score(nil) {
		if s.Precision != 0 || s.Recall != 0 || s.F1 != 0 || s.AvgSelected != 0 {
			t.Fatalf("empty truth should zero all metrics: %+v", s)
		}
	}
}

func TestTemplateStrings(t *testing.T) {
	tpl := Template{Link: LinkReciprocal, Cat: CatParent}
	if tpl.String() != "reciprocal+category-parent" {
		t.Errorf("String = %q", tpl.String())
	}
	if LinkAny.String() != "any-link" || CatNone.String() != "no-category" ||
		CatShared.String() != "shared-category" || CatSuperset.String() != "category-superset" {
		t.Error("condition strings wrong")
	}
}

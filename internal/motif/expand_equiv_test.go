package motif

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/kb"
)

// This file pins the slice-accumulator Expand and the merge-based
// squareInstances to the original implementations (map accumulator,
// pairwise IsParentCategory probing), which are retained below as the
// executable specification. Any behavioural drift — counts, ordering,
// nil-ness — fails the differential test.

// referenceExpand is the original Expand: a map accumulator keyed by
// article, converted to a slice and sorted at the end.
func referenceExpand(m *Matcher, queryNodes []kb.NodeID, set Set) []Match {
	counts := make(map[kb.NodeID]int)
	isQuery := make(map[kb.NodeID]bool, len(queryNodes))
	for _, q := range queryNodes {
		isQuery[q] = true
	}
	for _, q := range queryNodes {
		if q < 0 || m.g.Kind(q) != kb.KindArticle {
			continue
		}
		referenceExpandFrom(m, q, set, isQuery, counts)
	}
	matches := make([]Match, 0, len(counts))
	for a, c := range counts {
		matches = append(matches, Match{Article: a, Motifs: c})
	}
	sortMatchesByWeight(matches)
	return matches
}

func referenceExpandFrom(m *Matcher, q kb.NodeID, set Set, isQuery map[kb.NodeID]bool, counts map[kb.NodeID]int) {
	qCats := m.g.Categories(q)
	for _, e := range m.g.OutLinks(q) {
		if isQuery[e] {
			continue
		}
		if m.RequireReciprocal && !m.g.HasLink(e, q) {
			continue
		}
		if !m.UseCategories {
			counts[e]++
			continue
		}
		eCats := m.g.Categories(e)
		if set.Has(Triangular) {
			if n := triangularInstances(qCats, eCats); n > 0 {
				counts[e] += n
			}
		}
		if set.Has(Square) {
			if n := referenceSquareInstances(m, qCats, eCats); n > 0 {
				counts[e] += n
			}
		}
	}
}

// referenceSquareInstances is the original pairwise containment test:
// every (cq, ce) pair probed with two binary searches.
func referenceSquareInstances(m *Matcher, qCats, eCats []kb.NodeID) int {
	n := 0
	for _, cq := range qCats {
		for _, ce := range eCats {
			if cq == ce {
				continue
			}
			if m.g.IsParentCategory(ce, cq) || m.g.IsParentCategory(cq, ce) {
				n++
			}
		}
	}
	return n
}

func sortMatchesByWeight(matches []Match) {
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0; j-- {
			a, b := matches[j-1], matches[j]
			if a.Motifs > b.Motifs || (a.Motifs == b.Motifs && a.Article < b.Article) {
				break
			}
			matches[j-1], matches[j] = b, a
		}
	}
}

// TestExpandMatchesReference runs both implementations over random
// graphs, motif sets, ablation flags, and query lists that include
// duplicates and invalid IDs, and demands byte-for-byte equal output.
func TestExpandMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, arts := randomKB(rng)
		m := NewMatcher(g)
		m.RequireReciprocal = rng.Intn(4) > 0 // mostly the paper's setting
		m.UseCategories = rng.Intn(4) > 0

		// 1–4 query nodes, with a chance of a duplicate (counted twice
		// by both implementations) and of an invalid ID (skipped).
		qn := make([]kb.NodeID, 0, 6)
		for i := 0; i < 1+rng.Intn(4); i++ {
			qn = append(qn, arts[rng.Intn(len(arts))])
		}
		if rng.Intn(3) == 0 {
			qn = append(qn, qn[0])
		}
		if rng.Intn(3) == 0 {
			qn = append(qn, kb.Invalid)
		}

		for _, set := range []Set{SetT, SetS, SetTS} {
			got := m.Expand(qn, set)
			want := referenceExpand(m, qn, set)
			if got == nil {
				t.Logf("seed %d set %v: Expand returned nil", seed, set)
				return false
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d set %v qn %v: got %v, want %v", seed, set, qn, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSquareInstancesMatchesReference targets the merge rewrite alone,
// on category lists drawn from random graphs.
func TestSquareInstancesMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, arts := randomKB(rng)
		m := NewMatcher(g)
		a := g.Categories(arts[rng.Intn(len(arts))])
		b := g.Categories(arts[rng.Intn(len(arts))])
		got, want := m.squareInstances(a, b), referenceSquareInstances(m, a, b)
		if got != want {
			t.Logf("seed %d: squareInstances(%v, %v) = %d, want %d", seed, a, b, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// benchKB builds a dense seeded graph big enough for the hot path to
// dominate: articles with ~40 reciprocal neighbours, 6 categories each,
// and a category hierarchy with parents to intersect against.
func benchKB(nArt, nCat int) (*kb.Graph, []kb.NodeID) {
	rng := rand.New(rand.NewSource(7))
	b := kb.NewBuilder(nArt + nCat)
	arts := make([]kb.NodeID, nArt)
	cats := make([]kb.NodeID, nCat)
	for i := range arts {
		arts[i], _ = b.AddArticle(fmt.Sprintf("a%d", i))
	}
	for i := range cats {
		cats[i], _ = b.AddCategory(fmt.Sprintf("Category:c%d", i))
	}
	for i := 0; i < nCat*2; i++ {
		p, c := cats[rng.Intn(nCat)], cats[rng.Intn(nCat)]
		if p != c {
			_ = b.AddContainment(p, c)
		}
	}
	for _, a := range arts {
		for i := 0; i < 6; i++ {
			_ = b.AddMembership(a, cats[rng.Intn(nCat)])
		}
	}
	for i, a := range arts {
		for j := 0; j < 20; j++ {
			o := arts[(i+1+rng.Intn(nArt-1))%nArt]
			_ = b.AddLink(a, o)
			_ = b.AddLink(o, a)
		}
	}
	return b.Build(), arts
}

func BenchmarkExpand(b *testing.B) {
	g, arts := benchKB(600, 40)
	m := NewMatcher(g)
	qn := []kb.NodeID{arts[11], arts[222], arts[433]}
	if len(m.Expand(qn, SetTS)) == 0 {
		b.Fatal("benchmark graph produced no matches")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Expand(qn, SetTS)
	}
}

// BenchmarkExpandReference measures the retained original
// implementation on the same workload, so `-bench Expand` prints the
// rewrite and its baseline side by side.
func BenchmarkExpandReference(b *testing.B) {
	g, arts := benchKB(600, 40)
	m := NewMatcher(g)
	qn := []kb.NodeID{arts[11], arts[222], arts[433]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceExpand(m, qn, SetTS)
	}
}

func BenchmarkSquareInstances(b *testing.B) {
	g, arts := benchKB(600, 40)
	m := NewMatcher(g)
	qCats := g.Categories(arts[11])
	eCats := g.Categories(arts[222])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.squareInstances(qCats, eCats)
	}
}

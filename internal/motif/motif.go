// Package motif implements the paper's two structural motifs over the KB
// graph (Section 2.2) and the cycle analysis behind them (Section 2.1).
//
// Both motifs start from a query node q (always an article) and certify
// an expansion article e:
//
//   - Triangular motif (cycle of length 3): q and e are doubly linked
//     (q→e and e→q hyperlinks) and e belongs to at least the same exact
//     categories as q (categories(q) ⊆ categories(e)). One motif
//     instance exists per shared category, so an article that closes
//     several triangles is counted several times.
//
//   - Square motif (cycle of length 4): q and e are doubly linked and
//     some category of q is inside some category of e, or vice versa
//     (direct parent/child containment). One instance per qualifying
//     category pair.
//
// The per-article instance count |m_a| is the paper's expansion-feature
// weight.
package motif

import (
	"sort"

	"repro/internal/kb"
)

// Kind selects a motif.
type Kind uint8

const (
	// Triangular is the length-3 motif.
	Triangular Kind = 1 << iota
	// Square is the length-4 motif.
	Square
)

// Set is a bitmask of motif kinds.
type Set uint8

// Common motif configurations, named after the paper's runs.
const (
	SetT  = Set(Triangular)          // SQE_T
	SetS  = Set(Square)              // SQE_S
	SetTS = Set(Triangular | Square) // SQE_T&S
)

// Has reports whether the set contains kind.
func (s Set) Has(k Kind) bool { return s&Set(k) != 0 }

// String names the set the way the paper does.
func (s Set) String() string {
	switch s {
	case SetT:
		return "T"
	case SetS:
		return "S"
	case SetTS:
		return "T&S"
	default:
		return "none"
	}
}

// Match is an expansion article found by motif search together with the
// number of motif instances it appears in.
type Match struct {
	Article kb.NodeID
	// Motifs is |m_a|: total motif instances over all query nodes and
	// enabled motif kinds.
	Motifs int
}

// Matcher finds motif matches in a graph. The zero value is not usable;
// construct with NewMatcher.
type Matcher struct {
	g *kb.Graph
	// RequireReciprocal controls the double-link condition. The paper's
	// motifs require it; setting this to false is the ablation of
	// DESIGN.md §5 ("single-link"), which shows why the condition
	// matters.
	RequireReciprocal bool
	// UseCategories controls the category conditions; disabling them is
	// the "no-category" ablation (any doubly-linked article matches,
	// with one instance).
	UseCategories bool
}

// NewMatcher returns a Matcher with the paper's conditions enabled.
func NewMatcher(g *kb.Graph) *Matcher {
	return &Matcher{g: g, RequireReciprocal: true, UseCategories: true}
}

// ConditionBits packs the matcher's ablation switches into a bitmask.
// Both switches change Expand's output, so any cache or store key over
// expansion results must include these bits — see
// core.(*Expander).ExpansionKey, whose completeness invariant rests on
// this method staying in sync with the exported fields above.
func (m *Matcher) ConditionBits() uint8 {
	var b uint8
	if m.RequireReciprocal {
		b |= 1
	}
	if m.UseCategories {
		b |= 2
	}
	return b
}

// Expand runs motif search from the given query nodes and returns all
// matches sorted by descending |m_a| (ties: ascending article ID).
// Query nodes themselves are never reported as expansion nodes.
//
// The accumulator is a flat slice, not a map: each query node's
// candidate scan appends at most one entry per out-neighbour (CSR rows
// are sorted and deduplicated), and the handful of cross-query-node
// duplicates is folded by one sort-and-merge pass at the end. Queries
// have 1–5 nodes with hundreds of neighbours, so this trades hashing
// every candidate for two O(M log M) sorts of a slice that was going
// to be sorted anyway.
func (m *Matcher) Expand(queryNodes []kb.NodeID, set Set) []Match {
	var acc []Match
	for _, q := range queryNodes {
		// Skip invalid IDs (kb.Invalid from a failed entity-link lookup)
		// instead of indexing out of range deep inside the CSR rows.
		if q < 0 || m.g.Kind(q) != kb.KindArticle {
			continue
		}
		m.expandFrom(q, set, queryNodes, &acc)
	}
	return foldMatches(acc)
}

// foldMatches merges per-(query node, article) entries into one entry
// per article, in place, and applies the output order (descending
// |m_a|, ties ascending article ID). Always returns a non-nil slice —
// callers treat "no matches" as an empty expansion, not a missing one.
func foldMatches(acc []Match) []Match {
	if len(acc) == 0 {
		return []Match{}
	}
	sort.Slice(acc, func(i, j int) bool { return acc[i].Article < acc[j].Article })
	out := acc[:1]
	for _, e := range acc[1:] {
		if last := &out[len(out)-1]; last.Article == e.Article {
			last.Motifs += e.Motifs
		} else {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Motifs != out[j].Motifs {
			return out[i].Motifs > out[j].Motifs
		}
		return out[i].Article < out[j].Article
	})
	return out
}

func containsNode(nodes []kb.NodeID, n kb.NodeID) bool {
	// Linear scan: queryNodes is the query's entity list (1–5 IDs),
	// below the break-even of any map or binary search.
	for _, q := range nodes {
		if q == n {
			return true
		}
	}
	return false
}

// expandFrom accumulates motif instance counts for one query node.
// Candidates are exactly the doubly-linked neighbours of q (or all
// out-neighbours under the single-link ablation), so the scan cost is
// O(outdeg(q) · log d) — this is what keeps expansion sub-second
// (paper Table 4).
func (m *Matcher) expandFrom(q kb.NodeID, set Set, queryNodes []kb.NodeID, acc *[]Match) {
	qCats := m.g.Categories(q)
	for _, e := range m.g.OutLinks(q) {
		if containsNode(queryNodes, e) {
			continue
		}
		if m.RequireReciprocal && !m.g.HasLink(e, q) {
			continue
		}
		if !m.UseCategories {
			*acc = append(*acc, Match{Article: e, Motifs: 1})
			continue
		}
		eCats := m.g.Categories(e)
		n := 0
		if set.Has(Triangular) {
			n += triangularInstances(qCats, eCats)
		}
		if set.Has(Square) {
			n += m.squareInstances(qCats, eCats)
		}
		if n > 0 {
			*acc = append(*acc, Match{Article: e, Motifs: n})
		}
	}
}

// triangularInstances returns the number of triangular motif instances
// between category sets: 0 unless qCats ⊆ eCats (and qCats non-empty),
// otherwise one instance per shared category. Both inputs are sorted.
func triangularInstances(qCats, eCats []kb.NodeID) int {
	if len(qCats) == 0 || len(qCats) > len(eCats) {
		return 0
	}
	i, j := 0, 0
	for i < len(qCats) && j < len(eCats) {
		switch {
		case qCats[i] == eCats[j]:
			i++
			j++
		case qCats[i] < eCats[j]:
			return 0 // qCats[i] missing from eCats: not a superset
		default:
			j++
		}
	}
	if i < len(qCats) {
		return 0
	}
	return len(qCats)
}

// squareInstances counts category pairs (cq, ce) with cq inside ce or ce
// inside cq (direct containment either way).
//
// Instead of testing every (cq, ce) pair — O(|qCats|·|eCats|) binary
// searches — it intersects each category's sorted parent list against
// the other side's sorted category list: the pairs with ce above cq are
// exactly eCats ∩ parents(cq), and symmetrically for cq above ce. Each
// intersection is a linear merge, so the cost is driven by list lengths,
// not their product.
func (m *Matcher) squareInstances(qCats, eCats []kb.NodeID) int {
	n := 0
	for _, cq := range qCats {
		n += countCommon(eCats, m.g.ParentCategories(cq), cq)
	}
	for _, ce := range eCats {
		parents := m.g.ParentCategories(ce)
		i, j := 0, 0
		for i < len(qCats) && j < len(parents) {
			switch {
			case qCats[i] == parents[j]:
				// A pair contained both ways still counts once (the
				// pairwise test was an OR), so skip pairs the first
				// pass already saw.
				if cq := qCats[i]; cq != ce && !m.g.IsParentCategory(ce, cq) {
					n++
				}
				i++
				j++
			case qCats[i] < parents[j]:
				i++
			default:
				j++
			}
		}
	}
	return n
}

// countCommon returns |a ∩ b| excluding skip; both inputs sorted
// ascending.
func countCommon(a, b []kb.NodeID, skip kb.NodeID) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			if a[i] != skip {
				n++
			}
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

package motif

import (
	"testing"

	"repro/internal/kb"
)

// triangleFixture: Q↔E both in category C — the canonical length-3 cycle
// Q–E–C.
func triangleFixture(t *testing.T) (*kb.Graph, kb.NodeID, kb.NodeID, kb.NodeID) {
	t.Helper()
	b := kb.NewBuilder(4)
	q, _ := b.AddArticle("Q")
	e, _ := b.AddArticle("E")
	c, _ := b.AddCategory("Category:C")
	for _, err := range []error{
		b.AddLink(q, e), b.AddLink(e, q),
		b.AddMembership(q, c), b.AddMembership(e, c),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), q, e, c
}

func TestEnumerateTriangle(t *testing.T) {
	g, q, e, c := triangleFixture(t)
	ce := NewCycleEnumerator(g, map[kb.NodeID]bool{q: true, e: true, c: true})
	cycles := ce.Enumerate(q, 3, 5)
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles, want 1: %v", len(cycles), cycles)
	}
	if cycles[0].Len() != 3 {
		t.Errorf("cycle length = %d", cycles[0].Len())
	}
	if cycles[0].Nodes[0] != q {
		t.Error("cycle must start at the query node")
	}
}

func TestCycleDirectionCanonical(t *testing.T) {
	// A 4-cycle Q–A–C–B (A,B articles linked to Q; C category holding A
	// and B) must be enumerated exactly once despite two traversal
	// directions.
	b := kb.NewBuilder(8)
	q, _ := b.AddArticle("Q")
	a, _ := b.AddArticle("A")
	bb, _ := b.AddArticle("B")
	c, _ := b.AddCategory("Category:C")
	for _, err := range []error{
		b.AddLink(q, a), b.AddLink(q, bb),
		b.AddMembership(a, c), b.AddMembership(bb, c),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ce := NewCycleEnumerator(g, map[kb.NodeID]bool{q: true, a: true, bb: true, c: true})
	cycles := ce.Enumerate(q, 3, 5)
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles, want 1 (canonical direction): %+v", len(cycles), cycles)
	}
	if cycles[0].Len() != 4 {
		t.Errorf("cycle length = %d, want 4", cycles[0].Len())
	}
}

func TestEnumerateRespectsMaxLen(t *testing.T) {
	// Path of 5 articles closed back to Q: a 6-cycle, beyond maxLen 5.
	b := kb.NewBuilder(8)
	var arts []kb.NodeID
	for _, n := range []string{"Q", "A", "B", "C2", "D", "E"} {
		id, _ := b.AddArticle(n)
		arts = append(arts, id)
	}
	for i := range arts {
		next := arts[(i+1)%len(arts)]
		if err := b.AddLink(arts[i], next); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	allowed := map[kb.NodeID]bool{}
	for _, a := range arts {
		allowed[a] = true
	}
	ce := NewCycleEnumerator(g, allowed)
	if cycles := ce.Enumerate(arts[0], 3, 5); len(cycles) != 0 {
		t.Errorf("6-cycle enumerated with maxLen 5: %v", cycles)
	}
	if cycles := ce.Enumerate(arts[0], 3, 6); len(cycles) != 1 {
		t.Errorf("6-cycle should appear with maxLen 6")
	}
}

func TestAnalyzeStats(t *testing.T) {
	g, q, e, c := triangleFixture(t)
	ce := NewCycleEnumerator(g, map[kb.NodeID]bool{q: true, e: true, c: true})
	cycles := ce.Enumerate(q, 3, 5)
	stats := ce.Analyze(cycles)
	st, ok := stats[3]
	if !ok {
		t.Fatal("no stats for length 3")
	}
	if st.Count != 1 {
		t.Errorf("Count = %d", st.Count)
	}
	if got, want := st.CategoryRatio, 1.0/3; got != want {
		t.Errorf("CategoryRatio = %f, want %f", got, want)
	}
	// Edges: Q↔E contributes 2, Q–C and E–C contribute 1 each → 4 edges,
	// minimum 3 → density (4-3)/3.
	if got, want := st.ExtraEdgeDensity, 1.0/3; got != want {
		t.Errorf("ExtraEdgeDensity = %f, want %f", got, want)
	}
}

func TestArticlesOnCycles(t *testing.T) {
	g, q, e, c := triangleFixture(t)
	ce := NewCycleEnumerator(g, map[kb.NodeID]bool{q: true, e: true, c: true})
	cycles := ce.Enumerate(q, 3, 5)
	arts := ce.ArticlesOnCycles(cycles, 3)
	if len(arts) != 1 || arts[0] != e {
		t.Errorf("ArticlesOnCycles = %v, want [E]", arts)
	}
	if got := ce.ArticlesOnCycles(cycles, 4); len(got) != 0 {
		t.Errorf("no length-4 cycles expected, got %v", got)
	}
	if got := ce.ArticlesOnCycles(cycles, 0); len(got) != 1 {
		t.Errorf("length 0 means all lengths, got %v", got)
	}
}

func TestInducedNodes(t *testing.T) {
	// Category C (of E) has parent P; InducedNodes must include E's
	// categories and their parents.
	b := kb.NewBuilder(8)
	q, _ := b.AddArticle("Q")
	e, _ := b.AddArticle("E")
	c, _ := b.AddCategory("Category:C")
	p, _ := b.AddCategory("Category:P")
	other, _ := b.AddArticle("Other")
	for _, err := range []error{
		b.AddMembership(e, c),
		b.AddContainment(p, c),
		b.AddLink(q, e),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	allowed := InducedNodes(g, q, []kb.NodeID{e})
	for _, want := range []kb.NodeID{q, e, c, p} {
		if !allowed[want] {
			t.Errorf("InducedNodes missing %s", g.Title(want))
		}
	}
	if allowed[other] {
		t.Error("InducedNodes must not include unrelated articles")
	}
}

func TestEnumeratorHonoursAllowedSet(t *testing.T) {
	g, q, e, c := triangleFixture(t)
	// Exclude the category: only the 2-node "cycle" Q–E would remain,
	// which is below minimum length 3 — no cycles.
	ce := NewCycleEnumerator(g, map[kb.NodeID]bool{q: true, e: true})
	if cycles := ce.Enumerate(q, 3, 5); len(cycles) != 0 {
		t.Errorf("cycle through excluded node %v: %v", c, cycles)
	}
}

// Package entitylink implements the entity-linking substrate of the
// paper's Section 3. The paper links query text to Wikipedia articles
// with Dexter (a dictionary/commonness linker over anchor surface forms)
// and falls back to Alchemy (a recognizer without KB linking) when Dexter
// finds nothing; the combination reaches ~80% linking precision.
//
// We reproduce that stack: a surface-form dictionary with
// commonness-weighted candidates and greedy longest-match spotting plays
// Dexter's role, and a per-token recognizer that matches single content
// words against article-title vocabulary plays Alchemy's. Linking errors
// are real, not injected: they happen when an ambiguous surface form's
// most common sense is the wrong article — exactly Dexter's failure mode.
package entitylink

import (
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/kb"
)

// Candidate is one sense of a surface form.
type Candidate struct {
	Article kb.NodeID
	// Commonness is the link-probability of this sense; the linker
	// resolves ambiguous surfaces to the highest-commonness candidate.
	Commonness float64
}

// Dictionary maps analyzed surface forms to candidate articles, plus a
// unigram title-term index for the fallback recognizer.
type Dictionary struct {
	analyzer analysis.Analyzer
	surfaces map[string][]Candidate
	// unigrams maps single title terms to the candidates whose titles
	// contain them, for the Alchemy-like fallback.
	unigrams map[string][]Candidate
	maxSpan  int
}

// NewDictionary returns an empty dictionary using analyzer for surface
// normalisation.
func NewDictionary(analyzer analysis.Analyzer) *Dictionary {
	return &Dictionary{
		analyzer: analyzer,
		surfaces: make(map[string][]Candidate),
		unigrams: make(map[string][]Candidate),
	}
}

// normalise joins the analyzed terms of a surface with single spaces.
func (d *Dictionary) normalise(surface string) (string, int) {
	terms := d.analyzer.AnalyzeTerms(surface)
	return strings.Join(terms, " "), len(terms)
}

// AddSurface registers surface as a mention of article with the given
// commonness. Surfaces are analyzed, so "Cable Cars" and "cable car"
// collide the way anchor text does.
func (d *Dictionary) AddSurface(surface string, article kb.NodeID, commonness float64) {
	key, n := d.normalise(surface)
	if key == "" {
		return
	}
	d.surfaces[key] = append(d.surfaces[key], Candidate{Article: article, Commonness: commonness})
	if n > d.maxSpan {
		d.maxSpan = n
	}
}

// AddTitle registers an article title both as a full surface form and in
// the unigram fallback index.
func (d *Dictionary) AddTitle(title string, article kb.NodeID, commonness float64) {
	d.AddSurface(title, article, commonness)
	for _, t := range d.analyzer.AnalyzeTerms(title) {
		d.unigrams[t] = append(d.unigrams[t], Candidate{Article: article, Commonness: commonness})
	}
}

// best returns the highest-commonness candidate (ties: lowest article ID
// for determinism).
func best(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	b := cands[0]
	for _, c := range cands[1:] {
		if c.Commonness > b.Commonness || (c.Commonness == b.Commonness && c.Article < b.Article) {
			b = c
		}
	}
	return b, true
}

// NumSurfaces returns the number of distinct surface forms.
func (d *Dictionary) NumSurfaces() int { return len(d.surfaces) }

// Linker spots and links entities in text.
type Linker struct {
	dict *Dictionary
	// FallbackThreshold is the minimum commonness a unigram fallback
	// candidate needs to be linked (the Alchemy stage); 0 disables the
	// threshold.
	FallbackThreshold float64
	// DisableFallback turns the Alchemy-like stage off (Dexter alone).
	DisableFallback bool
}

// NewLinker returns a Linker over dict with the combined
// Dexter+Alchemy behaviour enabled.
func NewLinker(dict *Dictionary) *Linker {
	return &Linker{dict: dict, FallbackThreshold: 0.05}
}

// Mention is one linked span.
type Mention struct {
	// Surface is the normalised matched surface form.
	Surface string
	Article kb.NodeID
	// Fallback marks mentions produced by the recognizer stage rather
	// than the dictionary.
	Fallback bool
}

// Link finds entity mentions in text. The spotter scans left to right
// preferring the longest dictionary match (up to the longest registered
// surface); tokens not covered by any dictionary match go through the
// fallback recognizer. The returned mentions preserve text order and are
// deduplicated by article.
func (l *Linker) Link(text string) []Mention {
	terms := l.dict.analyzer.AnalyzeTerms(text)
	var mentions []Mention
	linked := make(map[kb.NodeID]bool)
	var leftover []string
	for i := 0; i < len(terms); {
		matched := false
		maxSpan := l.dict.maxSpan
		if maxSpan > len(terms)-i {
			maxSpan = len(terms) - i
		}
		for span := maxSpan; span >= 1; span-- {
			key := strings.Join(terms[i:i+span], " ")
			if c, ok := best(l.dict.surfaces[key]); ok {
				if !linked[c.Article] {
					linked[c.Article] = true
					mentions = append(mentions, Mention{Surface: key, Article: c.Article})
				}
				i += span
				matched = true
				break
			}
		}
		if !matched {
			leftover = append(leftover, terms[i])
			i++
		}
	}
	if !l.DisableFallback {
		for _, t := range leftover {
			c, ok := best(l.dict.unigrams[t])
			if !ok || c.Commonness < l.FallbackThreshold || linked[c.Article] {
				continue
			}
			linked[c.Article] = true
			mentions = append(mentions, Mention{Surface: t, Article: c.Article, Fallback: true})
		}
	}
	return mentions
}

// LinkArticles is Link but returns just the article IDs, in mention
// order.
func (l *Linker) LinkArticles(text string) []kb.NodeID {
	ms := l.Link(text)
	out := make([]kb.NodeID, len(ms))
	for i, m := range ms {
		out[i] = m.Article
	}
	return out
}

// Precision measures linking precision against gold article sets: the
// fraction of linked articles that are correct, macro-averaged over
// inputs. Exposed so tests can verify the substrate reproduces the
// paper's ~80% claim on generated query sets.
func Precision(linked [][]kb.NodeID, gold [][]kb.NodeID) float64 {
	if len(linked) != len(gold) || len(linked) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for i := range linked {
		if len(linked[i]) == 0 {
			continue
		}
		goldSet := make(map[kb.NodeID]bool, len(gold[i]))
		for _, g := range gold[i] {
			goldSet[g] = true
		}
		correct := 0
		for _, a := range linked[i] {
			if goldSet[a] {
				correct++
			}
		}
		sum += float64(correct) / float64(len(linked[i]))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SortCandidates orders a candidate list by descending commonness for
// stable inspection output.
func SortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Commonness != cands[j].Commonness {
			return cands[i].Commonness > cands[j].Commonness
		}
		return cands[i].Article < cands[j].Article
	})
}

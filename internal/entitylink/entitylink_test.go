package entitylink

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/kb"
)

func dict(t *testing.T) (*Dictionary, map[string]kb.NodeID) {
	t.Helper()
	b := kb.NewBuilder(8)
	ids := map[string]kb.NodeID{}
	for _, n := range []string{"Cable car", "Funicular", "San Francisco", "Car"} {
		id, err := b.AddArticle(n)
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
	}
	_ = b.Build()
	d := NewDictionary(analysis.Analyzer{}) // no stemming: keeps surfaces literal
	d.AddTitle("Cable car", ids["Cable car"], 0.9)
	d.AddTitle("Funicular", ids["Funicular"], 0.8)
	d.AddTitle("San Francisco", ids["San Francisco"], 0.9)
	d.AddTitle("Car", ids["Car"], 0.3)
	return d, ids
}

func TestLinkLongestMatch(t *testing.T) {
	d, ids := dict(t)
	l := NewLinker(d)
	ms := l.Link("cable car in san francisco")
	if len(ms) != 2 {
		t.Fatalf("mentions = %+v", ms)
	}
	// "cable car" must win over the unigram "car".
	if ms[0].Article != ids["Cable car"] {
		t.Errorf("first mention = %v", ms[0])
	}
	if ms[1].Article != ids["San Francisco"] {
		t.Errorf("second mention = %v", ms[1])
	}
}

func TestLinkSingleWordAfterPhraseConsumed(t *testing.T) {
	d, ids := dict(t)
	l := NewLinker(d)
	ms := l.Link("car cable car")
	// First token "car" links Car; then "cable car" links Cable car.
	arts := []kb.NodeID{ms[0].Article, ms[1].Article}
	want := []kb.NodeID{ids["Car"], ids["Cable car"]}
	if !reflect.DeepEqual(arts, want) {
		t.Errorf("articles = %v, want %v", arts, want)
	}
}

func TestCommonnessDisambiguation(t *testing.T) {
	d := NewDictionary(analysis.Analyzer{})
	b := kb.NewBuilder(2)
	a1, _ := b.AddArticle("Sense one")
	a2, _ := b.AddArticle("Sense two")
	_ = b.Build()
	d.AddSurface("java", a1, 0.3)
	d.AddSurface("java", a2, 0.7)
	l := NewLinker(d)
	ms := l.Link("java")
	if len(ms) != 1 || ms[0].Article != a2 {
		t.Errorf("ambiguous surface resolved to %+v, want the 0.7 sense", ms)
	}
}

func TestFallbackRecognizer(t *testing.T) {
	d, ids := dict(t)
	l := NewLinker(d)
	// "francisco" alone is not a registered surface but is a title
	// unigram of San Francisco.
	ms := l.Link("francisco")
	if len(ms) != 1 || ms[0].Article != ids["San Francisco"] || !ms[0].Fallback {
		t.Errorf("fallback mention = %+v", ms)
	}
	l.DisableFallback = true
	if ms := l.Link("francisco"); len(ms) != 0 {
		t.Errorf("fallback disabled but linked %+v", ms)
	}
}

func TestFallbackThreshold(t *testing.T) {
	d, _ := dict(t)
	l := NewLinker(d)
	l.FallbackThreshold = 0.95 // above every candidate's commonness
	if ms := l.Link("francisco"); len(ms) != 0 {
		t.Errorf("threshold should suppress fallback, got %+v", ms)
	}
}

func TestLinkDeduplicates(t *testing.T) {
	d, _ := dict(t)
	l := NewLinker(d)
	ms := l.Link("funicular and funicular again funicular")
	if len(ms) != 1 {
		t.Errorf("duplicate mentions not deduplicated: %+v", ms)
	}
}

func TestLinkNothing(t *testing.T) {
	d, _ := dict(t)
	l := NewLinker(d)
	if ms := l.Link("completely unrelated words"); len(ms) != 0 {
		t.Errorf("linked %+v from unrelated text", ms)
	}
	if ms := l.Link(""); len(ms) != 0 {
		t.Errorf("linked %+v from empty text", ms)
	}
}

func TestLinkArticles(t *testing.T) {
	d, ids := dict(t)
	l := NewLinker(d)
	got := l.LinkArticles("funicular near san francisco")
	want := []kb.NodeID{ids["Funicular"], ids["San Francisco"]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LinkArticles = %v, want %v", got, want)
	}
}

func TestPrecisionMetric(t *testing.T) {
	linked := [][]kb.NodeID{{1, 2}, {3}, {}}
	gold := [][]kb.NodeID{{1}, {3}, {9}}
	// query 1: 1/2 correct; query 2: 1/1; query 3 skipped (nothing linked)
	if got := Precision(linked, gold); got != 0.75 {
		t.Errorf("Precision = %f, want 0.75", got)
	}
	if Precision(nil, nil) != 0 {
		t.Error("empty input should be 0")
	}
	if Precision(linked, gold[:2]) != 0 {
		t.Error("mismatched lengths should be 0")
	}
}

func TestSortCandidates(t *testing.T) {
	c := []Candidate{{Article: 2, Commonness: 0.5}, {Article: 1, Commonness: 0.9}, {Article: 3, Commonness: 0.5}}
	SortCandidates(c)
	if c[0].Article != 1 || c[1].Article != 2 || c[2].Article != 3 {
		t.Errorf("sorted = %+v", c)
	}
}

func TestDictionaryNormalisesSurfaces(t *testing.T) {
	d := NewDictionary(analysis.Standard())
	b := kb.NewBuilder(1)
	a, _ := b.AddArticle("Cable car")
	_ = b.Build()
	d.AddTitle("Cable Cars", a, 1) // analyzed to "cabl car"
	l := NewLinker(d)
	if ms := l.Link("CABLE-CAR!"); len(ms) != 1 || ms[0].Article != a {
		t.Errorf("normalised surface failed: %+v", ms)
	}
	if d.NumSurfaces() == 0 {
		t.Error("NumSurfaces should be positive")
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	sqe "repro"
)

// stripTook re-marshals a JSON body with the took_ms timing field
// removed (map marshalling sorts keys), so two responses can be compared
// byte-for-byte modulo the one field that legitimately differs per
// request.
func stripTook(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad JSON body: %v\n%s", err, body)
	}
	delete(m, "took_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestV1LegacyParity: the unversioned paths are aliases onto the exact
// v1 handlers — same engine, byte-identical bodies (modulo took_ms) —
// distinguished only by the Deprecation/Link headers on the legacy side.
func TestV1LegacyParity(t *testing.T) {
	s, q := testServer(t, Config{})
	for _, ep := range []struct{ name, params string }{
		{"search", "?q=" + paramEscape(q.Text) + "&entities=" + paramEscape(entitiesParam(q)) + "&k=10"},
		{"baseline", "?q=" + paramEscape(q.Text) + "&k=5"},
		{"expand", "?q=" + paramEscape(q.Text) + "&entities=" + paramEscape(entitiesParam(q))},
	} {
		t.Run(ep.name, func(t *testing.T) {
			v1 := do(t, s, http.MethodGet, "/v1/"+ep.name+ep.params, "")
			legacy := do(t, s, http.MethodGet, "/"+ep.name+ep.params, "")
			if v1.Code != http.StatusOK || legacy.Code != v1.Code {
				t.Fatalf("status v1=%d legacy=%d: %s", v1.Code, legacy.Code, legacy.Body.String())
			}
			if got, want := stripTook(t, legacy.Body.Bytes()), stripTook(t, v1.Body.Bytes()); !bytes.Equal(got, want) {
				t.Errorf("legacy body diverges from v1:\nlegacy: %s\nv1:     %s", got, want)
			}
			if dep := legacy.Header().Get("Deprecation"); dep != "true" {
				t.Errorf("legacy alias Deprecation header = %q, want \"true\"", dep)
			}
			wantLink := "</v1/" + ep.name + ">; rel=\"successor-version\""
			if link := legacy.Header().Get("Link"); link != wantLink {
				t.Errorf("legacy alias Link header = %q, want %q", link, wantLink)
			}
			if dep := v1.Header().Get("Deprecation"); dep != "" {
				t.Errorf("v1 response carries Deprecation header %q", dep)
			}
			if link := v1.Header().Get("Link"); link != "" {
				t.Errorf("v1 response carries Link header %q", link)
			}
		})
	}
	if n := s.deprecated.Load(); n != 3 {
		t.Errorf("deprecated-alias counter = %d, want 3", n)
	}
}

// TestErrorParityAcrossVersions: error envelopes are identical on both
// surfaces — same status, same typed {"error":{"code","message"}} body.
func TestErrorParityAcrossVersions(t *testing.T) {
	s, _ := testServer(t, Config{})
	for _, target := range []string{"/search?k=abc", "/v1/search?k=abc"} {
		w := do(t, s, http.MethodGet, target, "")
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", target, w.Code)
		}
		var env apiError
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: not the typed envelope: %v", target, err)
		}
		if env.Err.Code != CodeBadRequest {
			t.Errorf("%s: code %q, want %q", target, env.Err.Code, CodeBadRequest)
		}
	}
	v1 := do(t, s, http.MethodGet, "/v1/search?k=abc", "")
	legacy := do(t, s, http.MethodGet, "/search?k=abc", "")
	if !bytes.Equal(v1.Body.Bytes(), legacy.Body.Bytes()) {
		t.Errorf("error bodies diverge:\nlegacy: %s\nv1:     %s", legacy.Body.String(), v1.Body.String())
	}
}

// TestAdmissionQueueAdmits: with the limiter saturated and a queue
// configured, a request waits for the slot instead of shedding, and is
// admitted the moment it frees.
func TestAdmissionQueueAdmits(t *testing.T) {
	s, q := testServer(t, Config{MaxInFlight: 1, QueueDepth: 1, QueueTimeout: 5 * time.Second})
	s.limiter <- struct{}{} // occupy the only slot
	var wg sync.WaitGroup
	var code int
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q)), "")
		code = w.Code
	}()
	// Wait until the request is queued, then free the slot.
	for i := 0; s.queueLen.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.queueLen.Load() != 1 {
		t.Fatal("request never entered the admission queue")
	}
	<-s.limiter
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("queued request finished %d, want 200", code)
	}
	if s.queueWaits.Load() != 1 {
		t.Errorf("queue-wait counter = %d, want 1", s.queueWaits.Load())
	}
	if s.shed.Load() != 0 {
		t.Errorf("shed counter = %d, want 0 — the queue should have absorbed the burst", s.shed.Load())
	}
}

// TestAdmissionQueueTimeout: a queued request that never gets a slot
// sheds with 429 after QueueTimeout and moves the timeout counter.
func TestAdmissionQueueTimeout(t *testing.T) {
	s, q := testServer(t, Config{MaxInFlight: 1, QueueDepth: 1, QueueTimeout: 5 * time.Millisecond})
	s.limiter <- struct{}{}
	defer func() { <-s.limiter }()
	w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text), "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	var env apiError
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != CodeOverloaded || !strings.Contains(env.Err.Message, "queue wait timed out") {
		t.Errorf("envelope %+v, want overloaded + queue wait timed out", env.Err)
	}
	if s.queueTimeouts.Load() != 1 {
		t.Errorf("queue-timeout counter = %d, want 1", s.queueTimeouts.Load())
	}
	if s.queueLen.Load() != 0 {
		t.Errorf("queue gauge = %d after shed, want 0", s.queueLen.Load())
	}
}

// TestAdmissionQueueFull: requests beyond QueueDepth shed immediately
// rather than waiting — the queue is bounded by design.
func TestAdmissionQueueFull(t *testing.T) {
	s, q := testServer(t, Config{MaxInFlight: 1, QueueDepth: 1, QueueTimeout: 5 * time.Second})
	s.limiter <- struct{}{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // fills the single queue slot
		defer wg.Done()
		do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q)), "")
	}()
	for i := 0; s.queueLen.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text), "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "queue full") {
		t.Errorf("envelope %s, want a queue-full shed", w.Body.String())
	}
	<-s.limiter // let the queued request through
	wg.Wait()
}

// TestShardMetricLabelOrder: each per-shard family emits its series in
// ascending shard index, one family at a time, so successive scrapes
// diff line-for-line deterministically.
func TestShardMetricLabelOrder(t *testing.T) {
	envOnce.Do(func() { env = sqe.MustGenerateDemo(sqe.DemoSmall) })
	eng := sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(), sqe.WithShards(4))
	s, q := testServer(t, Config{Engine: eng})
	if w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q))+"&set=TS", ""); w.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", w.Code, w.Body.String())
	}
	body := do(t, s, http.MethodGet, "/metrics", "").Body.String()
	// Collect every sample line carrying a shard label, in emission order.
	type sample struct{ family, shard string }
	var got []sample
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "sqe_search_shard_") || strings.HasPrefix(line, "#") {
			continue
		}
		open := strings.Index(line, "{shard=\"")
		close := strings.Index(line, "\"}")
		if open < 0 || close < 0 {
			t.Fatalf("malformed shard sample: %q", line)
		}
		got = append(got, sample{line[:open], line[open+len("{shard=\"") : close]})
	}
	var want []sample
	for _, fam := range []string{
		"sqe_search_shard_seconds_total",
		"sqe_search_shard_candidates_examined_total",
		"sqe_search_shard_postings_advanced_total",
		"sqe_search_shard_docs_skipped_total",
	} {
		for _, sh := range []string{"0", "1", "2", "3"} {
			want = append(want, sample{fam, sh})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("shard sample lines = %d, want %d:\n%+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard sample %d = %+v, want %+v (unstable label order)", i, got[i], want[i])
		}
	}
}

package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	sqe "repro"
)

var (
	envOnce sync.Once
	env     *sqe.DemoEnv
)

// testServer builds a Server over a shared DemoSmall engine (with the
// serving options on: cache + forced-parallel SQE_C) plus a fresh demo
// query to drive it with.
func testServer(t *testing.T, cfg Config) (*Server, sqe.DemoQuery) {
	t.Helper()
	envOnce.Do(func() { env = sqe.MustGenerateDemo(sqe.DemoSmall) })
	if cfg.Engine == nil {
		cfg.Engine = sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(),
			sqe.WithSQECWorkers(2), sqe.WithExpansionCache(256))
	}
	return New(cfg), env.Queries[0]
}

func do(t *testing.T, s *Server, method, target string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func entitiesParam(q sqe.DemoQuery) string {
	return strings.Join(q.EntityTitles, ",")
}

func decodeSearch(t *testing.T, w *httptest.ResponseRecorder) searchResponse {
	t.Helper()
	var resp searchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v\nbody: %s", err, w.Body.String())
	}
	return resp
}

func TestSearchEndpoint(t *testing.T) {
	s, q := testServer(t, Config{})
	w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q))+"&k=10", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeSearch(t, w)
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	if resp.K != 10 || resp.Results[0].Rank != 1 {
		t.Errorf("bad envelope: %+v", resp)
	}
	// The GET answer must match the engine called directly.
	want, err := s.cfg.Engine.Do(context.Background(),
		sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range want.Results {
		if resp.Results[i].Name != r.Name {
			t.Fatalf("rank %d: got %q want %q", i+1, resp.Results[i].Name, r.Name)
		}
	}
	// POST JSON body form.
	body, _ := json.Marshal(request{Query: q.Text, Entities: q.EntityTitles, K: 10})
	w = do(t, s, http.MethodPost, "/v1/search", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("POST status %d: %s", w.Code, w.Body.String())
	}
	if got := decodeSearch(t, w); len(got.Results) != len(resp.Results) || got.Results[0].Name != resp.Results[0].Name {
		t.Error("POST JSON answer diverges from GET answer")
	}
	// Single motif set.
	w = do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q))+"&set=T", "")
	if w.Code != http.StatusOK {
		t.Fatalf("set=T status %d: %s", w.Code, w.Body.String())
	}
	if resp := decodeSearch(t, w); len(resp.Results) == 0 || resp.Set != "T" {
		t.Errorf("set=T: %+v", resp)
	}
}

func TestBaselineEndpoint(t *testing.T) {
	s, q := testServer(t, Config{})
	w := do(t, s, http.MethodGet, "/v1/baseline?q="+paramEscape(q.Text)+"&k=5", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp := decodeSearch(t, w); len(resp.Results) == 0 {
		t.Fatal("baseline returned nothing")
	}
}

func TestExpandEndpoint(t *testing.T) {
	s, q := testServer(t, Config{})
	w := do(t, s, http.MethodGet, "/v1/expand?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q)), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp expandResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.QueryNodeTitles) != len(q.EntityTitles) {
		t.Errorf("query nodes %v != entities %v", resp.QueryNodeTitles, q.EntityTitles)
	}
	if resp.Set != "TS" {
		t.Errorf("default set should be TS, got %q", resp.Set)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, q := testServer(t, Config{})
	if w := do(t, s, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	// Serve one query so the pipeline counters are non-zero.
	if w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q)), ""); w.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", w.Code, w.Body.String())
	}
	w := do(t, s, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, m := range []string{
		"sqe_http_requests_total{endpoint=\"search\"} 1",
		"sqe_pipeline_queries_total 1",
		"sqe_pipeline_retrievals_total 3", // SQE_C = three runs
		"sqe_pipeline_stage_seconds_total{stage=\"retrieval\"}",
		"sqe_search_candidates_examined_total",
		"sqe_search_docs_skipped_total",
		"sqe_search_bound_evaluations_total",
		"sqe_expansion_cache_misses_total",
	} {
		if !strings.Contains(body, m) {
			t.Errorf("metrics output missing %q", m)
		}
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type %q", ct)
	}
}

// TestShardMetrics: a sharded engine surfaces per-shard evaluator
// counters in /metrics; baseline requests contribute pipeline stats too
// (they go through the same Do path as /search).
func TestShardMetrics(t *testing.T) {
	envOnce.Do(func() { env = sqe.MustGenerateDemo(sqe.DemoSmall) })
	eng := sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(), sqe.WithShards(4))
	s, q := testServer(t, Config{Engine: eng})
	if w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q))+"&set=TS", ""); w.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, s, http.MethodGet, "/v1/baseline?q="+paramEscape(q.Text), ""); w.Code != http.StatusOK {
		t.Fatalf("baseline status %d: %s", w.Code, w.Body.String())
	}
	body := do(t, s, http.MethodGet, "/metrics", "").Body.String()
	for _, m := range []string{
		"sqe_search_shard_seconds_total{shard=\"0\"}",
		"sqe_search_shard_seconds_total{shard=\"3\"}",
		"sqe_search_shard_candidates_examined_total{shard=\"0\"}",
		"sqe_search_shard_postings_advanced_total{shard=\"0\"}",
		"sqe_search_shard_docs_skipped_total{shard=\"0\"}",
		"sqe_pipeline_queries_total 2", // search + baseline both counted
		"sqe_pipeline_retrievals_total 2",
	} {
		if !strings.Contains(body, m) {
			t.Errorf("metrics output missing %q\n%s", m, body)
		}
	}
	ps := s.Pipeline()
	if len(ps.Search.Shards) != 4 {
		t.Fatalf("aggregated shard stats = %d entries, want 4", len(ps.Search.Shards))
	}
}

func TestBadRequests(t *testing.T) {
	s, q := testServer(t, Config{})
	cases := []struct {
		name, target string
	}{
		{"missing query", "/v1/search"},
		{"bad k", "/v1/search?q=x&k=abc"},
		{"unknown set", "/v1/search?q=x&set=XYZ"},
		{"unknown entity", "/v1/search?q=x&entities=No+Such+Article"},
	}
	for _, c := range cases {
		if w := do(t, s, http.MethodGet, c.target, ""); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, w.Code)
		}
	}
	if w := do(t, s, http.MethodDelete, "/v1/search?q="+paramEscape(q.Text), ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/search?q=x", "{not json"); w.Code != http.StatusBadRequest {
		t.Errorf("bad JSON body: status %d, want 400", w.Code)
	}
}

func TestMaxInFlightSheds(t *testing.T) {
	s, q := testServer(t, Config{MaxInFlight: 1})
	// Occupy the only slot directly, then any work request must shed.
	s.limiter <- struct{}{}
	defer func() { <-s.limiter }()
	w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q)), "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", s.shed.Load())
	}
	// Health stays green under shedding — it bypasses the limiter.
	if w := do(t, s, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz sheds: status %d", w.Code)
	}
}

func TestRequestTimeout(t *testing.T) {
	s, q := testServer(t, Config{Timeout: time.Nanosecond})
	w := do(t, s, http.MethodGet, "/v1/search?q="+paramEscape(q.Text)+"&entities="+paramEscape(entitiesParam(q)), "")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if s.timeouts.Load() == 0 {
		t.Error("timeout counter not incremented")
	}
}

// paramEscape is url.QueryEscape without importing net/url in every call
// site above.
func paramEscape(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "&", "%26"), " ", "+")
}
